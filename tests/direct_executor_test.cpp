// Tests for direct (materialised) query execution (core/direct_executor.h).
#include <gtest/gtest.h>

#include <cmath>

#include "core/direct_executor.h"
#include "util/rng.h"

namespace jaws::core {
namespace {

EngineConfig small_config() {
    EngineConfig c;
    c.grid.voxels_per_side = 64;
    c.grid.atom_side = 16;
    c.grid.ghost = 4;
    c.grid.timesteps = 4;
    c.field.modes = 6;
    c.field.max_wavenumber = 3.0;
    c.cache.capacity_atoms = 16;
    return c;
}

TEST(DirectExecutor, SamplesMatchAnalyticField) {
    DirectExecutor exec(small_config());
    util::Rng rng(90);
    std::vector<field::Vec3> positions;
    for (int i = 0; i < 40; ++i)
        positions.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
    const DirectResult result = exec.evaluate(2, positions, field::InterpOrder::kLag6);
    ASSERT_EQ(result.samples.size(), positions.size());
    for (std::size_t i = 0; i < positions.size(); ++i) {
        const field::FlowSample truth =
            exec.field().sample(positions[i], exec.grid().sim_time(2));
        ASSERT_NEAR(result.samples[i].velocity.x, truth.velocity.x, 1e-2);
        ASSERT_NEAR(result.samples[i].velocity.y, truth.velocity.y, 1e-2);
        ASSERT_NEAR(result.samples[i].velocity.z, truth.velocity.z, 1e-2);
        ASSERT_NEAR(result.samples[i].pressure, truth.pressure, 1e-2);
    }
}

TEST(DirectExecutor, ResultsInInputOrder) {
    DirectExecutor exec(small_config());
    // Positions deliberately out of Morton order.
    const std::vector<field::Vec3> positions = {
        {0.9, 0.9, 0.9}, {0.1, 0.1, 0.1}, {0.5, 0.2, 0.8}};
    const DirectResult result = exec.evaluate(0, positions);
    for (std::size_t i = 0; i < positions.size(); ++i) {
        const field::FlowSample truth = exec.field().sample(positions[i], 0.0);
        ASSERT_NEAR(result.samples[i].velocity.x, truth.velocity.x, 2e-2) << i;
    }
}

TEST(DirectExecutor, SecondEvaluationHitsCache) {
    DirectExecutor exec(small_config());
    const std::vector<field::Vec3> positions = {{0.3, 0.3, 0.3}, {0.32, 0.31, 0.3}};
    const DirectResult first = exec.evaluate(1, positions);
    EXPECT_GT(first.cache_misses, 0u);
    const DirectResult second = exec.evaluate(1, positions);
    EXPECT_EQ(second.cache_misses, 0u);
    EXPECT_GT(second.cache_hits, 0u);
    EXPECT_LT(second.virtual_cost.micros, first.virtual_cost.micros);
}

TEST(DirectExecutor, VirtualCostCharged) {
    DirectExecutor exec(small_config());
    const DirectResult r = exec.evaluate(0, {{0.5, 0.5, 0.5}});
    EXPECT_GT(r.virtual_cost.micros, 0);
}

TEST(DirectExecutor, EmptyPositions) {
    DirectExecutor exec(small_config());
    const DirectResult r = exec.evaluate(0, {});
    EXPECT_TRUE(r.samples.empty());
    EXPECT_EQ(r.cache_misses, 0u);
}

TEST(DirectExecutor, VolumeStatsMatchAnalyticMoments) {
    DirectExecutor exec(small_config());
    const VolumeStats stats = exec.evaluate_box(
        1, {0.2, 0.2, 0.2}, {0.6, 0.6, 0.6}, 12, field::InterpOrder::kLag6);
    EXPECT_EQ(stats.samples, 12u * 12 * 12);
    EXPECT_GT(stats.atoms_touched, 0u);
    // Compare against directly sampling the analytic field on the same box.
    util::Rng rng(4);
    double sum_speed2 = 0.0, sum_p = 0.0;
    constexpr int kProbes = 4000;
    for (int i = 0; i < kProbes; ++i) {
        const field::Vec3 p{rng.uniform(0.2, 0.6), rng.uniform(0.2, 0.6),
                            rng.uniform(0.2, 0.6)};
        const field::FlowSample s = exec.field().sample(p, exec.grid().sim_time(1));
        sum_speed2 += s.velocity.norm2();
        sum_p += s.pressure;
    }
    EXPECT_NEAR(stats.rms_velocity, std::sqrt(sum_speed2 / kProbes), 0.08);
    EXPECT_NEAR(stats.mean_pressure, sum_p / kProbes, 0.08);
    EXPECT_NEAR(stats.kinetic_energy, 0.5 * stats.rms_velocity * stats.rms_velocity,
                1e-9);
}

TEST(DirectExecutor, VolumeStatsWholeDomainRmsNearCalibration) {
    // The synthetic field is calibrated to rms_velocity = 1; a whole-domain
    // statistical array must recover it.
    DirectExecutor exec(small_config());
    const VolumeStats stats =
        exec.evaluate_box(0, {0.0, 0.0, 0.0}, {0.999, 0.999, 0.999}, 10);
    EXPECT_NEAR(stats.rms_velocity, 1.0, 0.25);
    EXPECT_LT(std::fabs(stats.mean_velocity.x), 0.35);
}

TEST(DirectExecutor, VolumeStatsSingleSampleAxis) {
    DirectExecutor exec(small_config());
    const VolumeStats stats = exec.evaluate_box(0, {0.5, 0.5, 0.5}, {0.5, 0.5, 0.5}, 1);
    EXPECT_EQ(stats.samples, 1u);
    const field::FlowSample truth = exec.field().sample({0.5, 0.5, 0.5}, 0.0);
    EXPECT_NEAR(stats.mean_pressure, truth.pressure, 1e-2);
}

}  // namespace
}  // namespace jaws::core
