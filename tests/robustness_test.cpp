// Robustness / edge-case tests across the stack: degenerate configurations,
// boundary datasets, hostile-but-legal inputs, and injected storage/node
// faults must not crash or violate invariants.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/cluster.h"
#include "core/engine.h"
#include "workload/generator.h"

namespace jaws {
namespace {

core::EngineConfig tiny_config() {
    core::EngineConfig c;
    c.grid.voxels_per_side = 64;
    c.grid.atom_side = 32;  // 2 atoms per side -> 8 atoms per step
    c.grid.ghost = 2;
    c.grid.timesteps = 2;
    c.field.modes = 4;
    c.cache.capacity_atoms = 2;
    return c;
}

workload::Job single_query_job(workload::QueryId qid, std::uint64_t morton,
                               std::uint32_t step = 0) {
    workload::Job job;
    job.id = qid;
    job.type = workload::JobType::kBatched;
    workload::Query q;
    q.id = qid;
    q.job = job.id;
    q.timestep = step;
    q.footprint.push_back(workload::AtomRequest{{step, morton}, 5});
    job.queries.push_back(q);
    return job;
}

TEST(Robustness, TinyDatasetTinyCache) {
    for (const core::SchedulerKind kind :
         {core::SchedulerKind::kNoShare, core::SchedulerKind::kLifeRaft,
          core::SchedulerKind::kJaws}) {
        core::EngineConfig config = tiny_config();
        config.scheduler.kind = kind;
        workload::Workload w;
        for (workload::QueryId i = 1; i <= 20; ++i)
            w.jobs.push_back(single_query_job(i, i % 8, i % 2));
        core::Engine engine(config);
        const core::RunReport report = engine.run(w);
        ASSERT_EQ(report.queries, 20u);
    }
}

TEST(Robustness, OneAtomCacheNeverUnderflows) {
    core::EngineConfig config = tiny_config();
    config.cache.capacity_atoms = 1;
    config.scheduler.kind = core::SchedulerKind::kJaws;
    workload::Workload w;
    for (workload::QueryId i = 1; i <= 30; ++i)
        w.jobs.push_back(single_query_job(i, i % 8));
    core::Engine engine(config);
    EXPECT_EQ(engine.run(w).queries, 30u);
}

TEST(Robustness, SingleJobSingleQuery) {
    core::EngineConfig config = tiny_config();
    workload::Workload w;
    w.jobs.push_back(single_query_job(1, 0));
    core::Engine engine(config);
    const core::RunReport report = engine.run(w);
    EXPECT_EQ(report.queries, 1u);
    EXPECT_GT(report.makespan.micros, 0);
}

TEST(Robustness, JobWithEmptyQueryListIsSkipped) {
    core::EngineConfig config = tiny_config();
    workload::Workload w;
    workload::Job empty;
    empty.id = 1;
    w.jobs.push_back(empty);
    w.jobs.push_back(single_query_job(2, 3));
    core::Engine engine(config);
    const core::RunReport report = engine.run(w);
    EXPECT_EQ(report.queries, 1u);
}

TEST(Robustness, ManyIdenticalQueriesCollapseToSharedReads) {
    core::EngineConfig config = tiny_config();
    config.scheduler.kind = core::SchedulerKind::kLifeRaft;
    workload::Workload w;
    for (workload::QueryId i = 1; i <= 50; ++i) w.jobs.push_back(single_query_job(i, 4));
    core::Engine engine(config);
    const core::RunReport report = engine.run(w);
    EXPECT_EQ(report.queries, 50u);
    // All fifty queries hit the same atom; the batcher needs very few reads.
    EXPECT_LE(report.atom_reads, 5u);
}

TEST(Robustness, HugeSpeedupCollapsesArrivals) {
    core::EngineConfig config = tiny_config();
    config.scheduler.kind = core::SchedulerKind::kJaws;
    workload::WorkloadSpec spec;
    spec.jobs = 15;
    const field::SyntheticField field(config.field);
    workload::Workload w = workload::generate_workload(spec, config.grid, field);
    workload::apply_speedup(w, 1e9);  // everything at t ~ first arrival
    core::Engine engine(config);
    EXPECT_EQ(engine.run(w).queries, w.total_queries());
}

TEST(Robustness, ExtremeSlowdownStillCompletes) {
    core::EngineConfig config = tiny_config();
    workload::WorkloadSpec spec;
    spec.jobs = 5;
    const field::SyntheticField field(config.field);
    workload::Workload w = workload::generate_workload(spec, config.grid, field);
    workload::apply_speedup(w, 1e-3);  // gaps stretched a thousandfold
    core::Engine engine(config);
    EXPECT_EQ(engine.run(w).queries, w.total_queries());
}

TEST(Robustness, ClusterWithMoreNodesThanAtoms) {
    core::ClusterConfig config;
    config.node = tiny_config();  // 8 atoms per step
    config.nodes = 16;            // more nodes than atoms
    workload::Workload w;
    for (workload::QueryId i = 1; i <= 10; ++i) w.jobs.push_back(single_query_job(i, i % 8));
    core::TurbulenceCluster cluster(config);
    const core::ClusterReport report = cluster.run(w);
    std::size_t total = 0;
    for (const auto& r : report.per_node) total += r.queries;
    EXPECT_EQ(total, 10u);
}

TEST(Robustness, QosAndPrefetchTogether) {
    core::EngineConfig config = tiny_config();
    config.scheduler.kind = core::SchedulerKind::kJaws;
    config.scheduler.jaws.qos.enabled = true;
    config.scheduler.jaws.qos.slack_factor = 10.0;
    config.prefetch.enabled = true;
    workload::WorkloadSpec spec;
    spec.jobs = 20;
    const field::SyntheticField field(config.field);
    const workload::Workload w = workload::generate_workload(spec, config.grid, field);
    core::Engine engine(config);
    const core::RunReport report = engine.run(w);
    EXPECT_EQ(report.queries, w.total_queries());
    EXPECT_EQ(report.qos.guaranteed, w.total_queries());
}

TEST(Robustness, ZeroRunLengthDisablesRunBoundaries) {
    core::EngineConfig config = tiny_config();
    config.run_length = 0;
    config.cache.policy = core::CachePolicy::kSlru;  // depends on run boundaries
    workload::Workload w;
    for (workload::QueryId i = 1; i <= 10; ++i) w.jobs.push_back(single_query_job(i, i % 8));
    core::Engine engine(config);
    EXPECT_EQ(engine.run(w).queries, 10u);
}

TEST(Robustness, AllSchedulersHandleMaterializedData) {
    for (const core::SchedulerKind kind :
         {core::SchedulerKind::kNoShare, core::SchedulerKind::kLifeRaft,
          core::SchedulerKind::kJaws}) {
        core::EngineConfig config = tiny_config();
        config.materialize_data = true;
        config.scheduler.kind = kind;
        workload::Workload w;
        for (workload::QueryId i = 1; i <= 6; ++i) w.jobs.push_back(single_query_job(i, i % 8));
        core::Engine engine(config);
        ASSERT_EQ(engine.run(w).queries, 6u);
    }
}

// ---------------------------------------------------------------------------
// Config validation (satellite: reject degenerate configs at construction).
// ---------------------------------------------------------------------------

TEST(ConfigValidation, RejectsDegenerateEngineConfigs) {
    {
        core::EngineConfig c = tiny_config();
        c.cache.capacity_atoms = 0;
        EXPECT_THROW(core::Engine{c}, std::invalid_argument);
    }
    {
        core::EngineConfig c = tiny_config();
        c.grid.atom_side = 24;  // does not divide 64
        EXPECT_THROW(core::Engine{c}, std::invalid_argument);
    }
    {
        core::EngineConfig c = tiny_config();
        c.grid.atom_side = 0;
        EXPECT_THROW(core::Engine{c}, std::invalid_argument);
    }
    {
        core::EngineConfig c = tiny_config();
        c.grid.timesteps = 0;
        EXPECT_THROW(core::Engine{c}, std::invalid_argument);
    }
    {
        core::EngineConfig c = tiny_config();
        c.estimates.t_b_ms = -1.0;
        EXPECT_THROW(core::Engine{c}, std::invalid_argument);
    }
    {
        core::EngineConfig c = tiny_config();
        c.disk.transfer_mb_per_s = 0.0;
        EXPECT_THROW(core::Engine{c}, std::invalid_argument);
    }
    {
        core::EngineConfig c = tiny_config();
        c.scheduler.jaws.batch_size_k = 0;
        EXPECT_THROW(core::Engine{c}, std::invalid_argument);
    }
    {
        core::EngineConfig c = tiny_config();
        c.faults.transient_error_rate = 1.5;
        EXPECT_THROW(core::Engine{c}, std::invalid_argument);
    }
    {
        core::EngineConfig c = tiny_config();
        c.retry.max_attempts = 0;
        EXPECT_THROW(core::Engine{c}, std::invalid_argument);
    }
}

TEST(ConfigValidation, RejectsInvertedBackoffSchedule) {
    // A cap below the base would silently clamp every retry delay to the cap
    // and invert the exponential schedule; reject it at construction.
    core::EngineConfig c = tiny_config();
    c.retry.backoff_base_ms = 50.0;
    c.retry.backoff_cap_ms = 10.0;
    EXPECT_THROW(core::Engine{c}, std::invalid_argument);
    c.retry.backoff_cap_ms = 50.0;  // cap == base is legal (constant backoff)
    EXPECT_NO_THROW(core::Engine{c});
}

TEST(ConfigValidation, RejectsDegenerateHedgeAndTailSpecs) {
    {
        core::EngineConfig c = tiny_config();
        c.hedge.enabled = true;
        c.hedge.trigger_ewma_multiplier = 0.0;
        EXPECT_THROW(core::Engine{c}, std::invalid_argument);
    }
    {
        core::EngineConfig c = tiny_config();
        c.hedge.enabled = true;
        c.hedge.ewma_alpha = 1.5;  // outside (0, 1]
        EXPECT_THROW(core::Engine{c}, std::invalid_argument);
    }
    {
        core::EngineConfig c = tiny_config();
        c.hedge.enabled = true;
        c.hedge.max_outstanding = 0;
        EXPECT_THROW(core::Engine{c}, std::invalid_argument);
    }
    {
        core::EngineConfig c = tiny_config();
        c.hedge.enabled = true;
        c.hedge.budget_per_query = 0;
        EXPECT_THROW(core::Engine{c}, std::invalid_argument);
    }
    {
        core::EngineConfig c = tiny_config();
        c.hedge.trigger_ms = -1.0;  // checked even while disabled
        EXPECT_THROW(core::Engine{c}, std::invalid_argument);
    }
    {
        core::EngineConfig c = tiny_config();
        c.disk.heavy_tail.rate = 1.5;  // not a probability
        EXPECT_THROW(core::Engine{c}, std::invalid_argument);
    }
    {
        core::EngineConfig c = tiny_config();
        c.disk.heavy_tail.rate = 0.5;
        c.disk.heavy_tail.pareto = true;
        c.disk.heavy_tail.pareto_min = 0.5;  // a multiplier below 1
        EXPECT_THROW(core::Engine{c}, std::invalid_argument);
    }
    {
        core::EngineConfig c = tiny_config();
        c.faults.stuck_read_rate = -0.1;
        EXPECT_THROW(core::Engine{c}, std::invalid_argument);
    }
    {
        core::EngineConfig c = tiny_config();
        c.deadline_budget_ms = -5.0;
        EXPECT_THROW(core::Engine{c}, std::invalid_argument);
    }
}

TEST(ConfigValidation, RejectsDegenerateClusterConfigs) {
    {
        core::ClusterConfig c;
        c.node = tiny_config();
        c.nodes = 0;
        EXPECT_THROW(core::TurbulenceCluster{c}, std::invalid_argument);
    }
    {
        core::ClusterConfig c;
        c.node = tiny_config();
        c.nodes = 2;
        c.replication = 3;  // more copies than nodes
        EXPECT_THROW(core::TurbulenceCluster{c}, std::invalid_argument);
    }
    {
        core::ClusterConfig c;
        c.node = tiny_config();
        c.nodes = 2;
        c.node.faults.node_down.push_back(
            storage::NodeDownEvent{util::NodeIndex{5}, util::SimTime::from_seconds(1)});
        EXPECT_THROW(core::TurbulenceCluster{c}, std::invalid_argument);
    }
    {
        core::ClusterConfig c;
        c.node = tiny_config();
        c.node.cache.capacity_atoms = 0;  // node template is validated too
        EXPECT_THROW(core::TurbulenceCluster{c}, std::invalid_argument);
    }
}

TEST(ConfigValidation, ApplySpeedupRejectsNonPositiveFactors) {
    workload::Workload w;
    w.jobs.push_back(single_query_job(1, 0));
    EXPECT_THROW(workload::apply_speedup(w, 0.0), std::invalid_argument);
    EXPECT_THROW(workload::apply_speedup(w, -2.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fault injection and recovery.
// ---------------------------------------------------------------------------

TEST(FaultRecovery, CertainTransientErrorsStillTerminate) {
    // Every read attempt fails: all retries exhaust, every query completes
    // degraded (partial results), and the run terminates instead of spinning.
    for (const core::SchedulerKind kind :
         {core::SchedulerKind::kNoShare, core::SchedulerKind::kLifeRaft,
          core::SchedulerKind::kJaws}) {
        core::EngineConfig config = tiny_config();
        config.scheduler.kind = kind;
        config.faults.transient_error_rate = 1.0;
        workload::Workload w;
        for (workload::QueryId i = 1; i <= 12; ++i)
            w.jobs.push_back(single_query_job(i, i % 8, i % 2));
        core::Engine engine(config);
        const core::RunReport report = engine.run(w);
        ASSERT_EQ(report.queries, 12u);
        EXPECT_EQ(report.degraded_queries, 12u);
        EXPECT_GT(report.read_failures, 0u);
        EXPECT_GT(report.read_retries, 0u);
        EXPECT_GT(report.retry_backoff_time.micros, 0);
        EXPECT_EQ(report.atom_reads, 0u);  // nothing ever made it to the cache
    }
}

TEST(FaultRecovery, ModerateErrorRateRecoversThroughRetries) {
    core::EngineConfig config = tiny_config();
    config.scheduler.kind = core::SchedulerKind::kJaws;
    config.faults.transient_error_rate = 0.3;
    workload::Workload w;
    for (workload::QueryId i = 1; i <= 40; ++i)
        w.jobs.push_back(single_query_job(i, i % 8, i % 2));
    core::Engine engine(config);
    const core::RunReport report = engine.run(w);
    ASSERT_EQ(report.queries, 40u);
    EXPECT_GT(report.read_retries, 0u);
    EXPECT_GT(report.faults.transient_faults, 0u);
    // With 4 attempts at 30 % error, per-read failure ~ 0.8 %: most queries
    // must survive undegraded.
    EXPECT_LT(report.degraded_queries, 10u);
}

TEST(FaultRecovery, PermanentBadRangeFailsFastWithoutRetries) {
    core::EngineConfig config = tiny_config();
    config.scheduler.kind = core::SchedulerKind::kJaws;
    config.faults.bad_ranges.push_back(storage::BadRange{3, 3});
    workload::Workload w;
    w.jobs.push_back(single_query_job(1, 3));  // on the bad atom
    w.jobs.push_back(single_query_job(2, 5));  // healthy
    core::Engine engine(config);
    const core::RunReport report = engine.run(w);
    ASSERT_EQ(report.queries, 2u);
    EXPECT_EQ(report.degraded_queries, 1u);
    EXPECT_EQ(report.read_failures, 1u);
    EXPECT_EQ(report.read_retries, 0u);  // permanent faults skip backoff
    EXPECT_EQ(report.faults.permanent_faults, 1u);
    for (const core::QueryOutcome& o : engine.outcomes())
        EXPECT_EQ(o.degraded(), o.query == 1u);
}

TEST(FaultRecovery, StragglerDiskWithPrefetchDoesNotDeadlock) {
    core::EngineConfig config = tiny_config();
    config.scheduler.kind = core::SchedulerKind::kJaws;
    config.prefetch.enabled = true;
    config.faults.latency_spike_rate = 0.5;
    config.faults.latency_spike_mean_ms = 200.0;
    config.faults.transient_error_rate = 0.2;
    workload::WorkloadSpec spec;
    spec.jobs = 15;
    const field::SyntheticField field(config.field);
    const workload::Workload w = workload::generate_workload(spec, config.grid, field);
    core::Engine engine(config);
    const core::RunReport report = engine.run(w);
    EXPECT_EQ(report.queries, w.total_queries());
    EXPECT_GT(report.faults.latency_spikes, 0u);
    EXPECT_GT(report.disk.fault_delay.micros, 0);
}

TEST(FaultRecovery, IdenticalSeedsGiveBitIdenticalRuns) {
    const auto run_once = [] {
        core::EngineConfig config = tiny_config();
        config.scheduler.kind = core::SchedulerKind::kJaws;
        config.faults.seed = 1234;
        config.faults.transient_error_rate = 0.25;
        config.faults.latency_spike_rate = 0.25;
        config.faults.latency_spike_mean_ms = 80.0;
        workload::WorkloadSpec spec;
        spec.jobs = 12;
        const field::SyntheticField field(config.field);
        const workload::Workload w = workload::generate_workload(spec, config.grid, field);
        core::Engine engine(config);
        return engine.run(w);
    };
    const core::RunReport a = run_once();
    const core::RunReport b = run_once();
    EXPECT_EQ(a.makespan.micros, b.makespan.micros);
    EXPECT_EQ(a.read_retries, b.read_retries);
    EXPECT_EQ(a.read_failures, b.read_failures);
    EXPECT_EQ(a.degraded_queries, b.degraded_queries);
    EXPECT_EQ(a.retry_backoff_time.micros, b.retry_backoff_time.micros);
    EXPECT_EQ(a.faults.transient_faults, b.faults.transient_faults);
    EXPECT_EQ(a.faults.latency_spikes, b.faults.latency_spikes);
    EXPECT_EQ(a.faults.spike_delay.micros, b.faults.spike_delay.micros);
}

TEST(FaultRecovery, RetryDuringInFlightPooledEvalMatchesSerialCounters) {
    // io_depth 4 / compute_workers 4 on materialised data: while one batch
    // item's demand read backs off after a transient fault, its siblings'
    // sub-queries are in flight on the evaluation pool. The retry machinery
    // and the pool must not interact — every fault counter, the virtual
    // timeline and the sample digest must equal the inline-evaluation
    // engine's, for it is the same virtual trace either way.
    const auto run_once = [](bool parallel) {
        core::EngineConfig config = tiny_config();
        config.grid.ghost = 4;  // generated workloads include kLag8 kernels
        config.scheduler.kind = core::SchedulerKind::kJaws;
        config.io_depth = 4;
        config.compute_workers = 4;
        config.materialize_data = true;
        config.eval.parallel = parallel;
        config.faults.seed = 77;
        config.faults.transient_error_rate = 0.35;
        config.faults.latency_spike_rate = 0.2;
        config.faults.latency_spike_mean_ms = 50.0;
        workload::WorkloadSpec spec;
        spec.jobs = 10;
        spec.seed = 9;
        spec.max_positions = 400;
        const field::SyntheticField field(config.field);
        workload::Workload w = workload::generate_workload(spec, config.grid, field);
        workload::materialize_positions(w, config.grid, 13);
        core::Engine engine(config);
        return engine.run(w);
    };
    const core::RunReport pooled = run_once(true);
    const core::RunReport serial = run_once(false);
    ASSERT_GT(pooled.read_retries, 0u);  // the scenario actually occurred
    ASSERT_GT(pooled.eval_tasks, 0u);    // ... with work on the pool
    EXPECT_EQ(serial.eval_tasks, 0u);
    EXPECT_EQ(pooled.read_retries, serial.read_retries);
    EXPECT_EQ(pooled.read_failures, serial.read_failures);
    EXPECT_EQ(pooled.failed_subqueries, serial.failed_subqueries);
    EXPECT_EQ(pooled.degraded_queries, serial.degraded_queries);
    EXPECT_EQ(pooled.retry_backoff_time.micros, serial.retry_backoff_time.micros);
    EXPECT_EQ(pooled.faults.transient_faults, serial.faults.transient_faults);
    EXPECT_EQ(pooled.faults.latency_spikes, serial.faults.latency_spikes);
    EXPECT_EQ(pooled.makespan.micros, serial.makespan.micros);
    EXPECT_EQ(pooled.samples_evaluated, serial.samples_evaluated);
    EXPECT_EQ(pooled.sample_digest, serial.sample_digest);
}

TEST(FaultRecovery, ZeroedFaultSpecReportsNoFaultActivity) {
    core::EngineConfig config = tiny_config();
    workload::Workload w;
    for (workload::QueryId i = 1; i <= 10; ++i) w.jobs.push_back(single_query_job(i, i % 8));
    core::Engine engine(config);
    const core::RunReport report = engine.run(w);
    EXPECT_EQ(report.queries, 10u);
    EXPECT_EQ(report.read_retries, 0u);
    EXPECT_EQ(report.read_failures, 0u);
    EXPECT_EQ(report.degraded_queries, 0u);
    EXPECT_EQ(report.retry_backoff_time.micros, 0);
    EXPECT_EQ(report.faults.transient_faults, 0u);
    EXPECT_EQ(report.faults.latency_spikes, 0u);
    EXPECT_EQ(report.disk.fault_delay.micros, 0);
    EXPECT_FALSE(report.halted);
}

// ---------------------------------------------------------------------------
// Node death and cluster failover.
// ---------------------------------------------------------------------------

namespace {
workload::Workload cluster_workload(std::size_t queries) {
    workload::Workload w;
    for (workload::QueryId i = 1; i <= queries; ++i) {
        workload::Job job = single_query_job(i, i % 8, i % 2);
        // Spread arrivals so a mid-run death leaves genuinely unfinished work.
        job.arrival = util::SimTime::from_millis(static_cast<double>(i) * 40.0);
        job.queries.front().think_time = util::SimTime::zero();
        w.jobs.push_back(std::move(job));
    }
    return w;
}

std::size_t completed_parts(const core::ClusterReport& report) {
    std::size_t total = 0;
    for (const auto& r : report.per_node) total += r.queries;
    for (const auto& r : report.recovery) total += r.queries;
    return total;
}
}  // namespace

TEST(Failover, NodeDeathWithoutReplicationLosesOnlyThatNodesTail) {
    core::ClusterConfig config;
    config.node = tiny_config();
    config.nodes = 2;
    config.replication = 1;
    config.node.faults.node_down.push_back(
        storage::NodeDownEvent{util::NodeIndex{0}, util::SimTime::from_millis(1.0)});
    const workload::Workload w = cluster_workload(24);
    core::TurbulenceCluster cluster(config);
    const core::ClusterReport report = cluster.run(w);
    EXPECT_EQ(report.dead_nodes, 1u);
    EXPECT_EQ(report.failovers, 0u);
    EXPECT_GT(report.lost_queries, 0u);
    // Lost + completed covers every projected query part; nothing vanishes
    // silently.
    EXPECT_EQ(completed_parts(report) + report.lost_queries,
              static_cast<std::size_t>(24));
}

TEST(Failover, NodeDeathWithReplicationCompletesEverything) {
    core::ClusterConfig config;
    config.node = tiny_config();
    config.nodes = 2;
    config.replication = 2;
    config.node.faults.node_down.push_back(
        storage::NodeDownEvent{util::NodeIndex{0}, util::SimTime::from_millis(1.0)});
    const workload::Workload w = cluster_workload(24);
    core::TurbulenceCluster cluster(config);
    const core::ClusterReport report = cluster.run(w);
    EXPECT_EQ(report.dead_nodes, 1u);
    EXPECT_GE(report.failovers, 1u);
    EXPECT_EQ(report.lost_queries, 0u);
    EXPECT_GT(report.requeued_queries, 0u);
    EXPECT_EQ(completed_parts(report), static_cast<std::size_t>(24));
    EXPECT_GT(report.makespan.micros, 0);
}

TEST(Failover, DeathAfterCompletionRequiresNoRecovery) {
    core::ClusterConfig config;
    config.node = tiny_config();
    config.nodes = 2;
    config.replication = 2;
    config.node.faults.node_down.push_back(
        storage::NodeDownEvent{util::NodeIndex{0}, util::SimTime::from_seconds(1e6)});
    const workload::Workload w = cluster_workload(10);
    core::TurbulenceCluster cluster(config);
    const core::ClusterReport report = cluster.run(w);
    EXPECT_EQ(report.dead_nodes, 1u);
    EXPECT_EQ(report.failovers, 0u);
    EXPECT_EQ(report.lost_queries, 0u);
    EXPECT_EQ(completed_parts(report), static_cast<std::size_t>(10));
}

TEST(Failover, HaltedEngineReportsPartialCompletion) {
    core::EngineConfig config = tiny_config();
    config.halt_at = util::SimTime::from_millis(1.0);
    const workload::Workload w = cluster_workload(12);
    core::Engine engine(config);
    const core::RunReport report = engine.run(w);
    EXPECT_TRUE(report.halted);
    EXPECT_LT(report.queries, 12u);
}

}  // namespace
}  // namespace jaws
