// Robustness / edge-case tests across the stack: degenerate configurations,
// boundary datasets, and hostile-but-legal inputs must not crash or violate
// invariants.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/engine.h"
#include "workload/generator.h"

namespace jaws {
namespace {

core::EngineConfig tiny_config() {
    core::EngineConfig c;
    c.grid.voxels_per_side = 64;
    c.grid.atom_side = 32;  // 2 atoms per side -> 8 atoms per step
    c.grid.ghost = 2;
    c.grid.timesteps = 2;
    c.field.modes = 4;
    c.cache.capacity_atoms = 2;
    return c;
}

workload::Job single_query_job(workload::QueryId qid, std::uint64_t morton,
                               std::uint32_t step = 0) {
    workload::Job job;
    job.id = qid;
    job.type = workload::JobType::kBatched;
    workload::Query q;
    q.id = qid;
    q.job = job.id;
    q.timestep = step;
    q.footprint.push_back(workload::AtomRequest{{step, morton}, 5});
    job.queries.push_back(q);
    return job;
}

TEST(Robustness, TinyDatasetTinyCache) {
    for (const core::SchedulerKind kind :
         {core::SchedulerKind::kNoShare, core::SchedulerKind::kLifeRaft,
          core::SchedulerKind::kJaws}) {
        core::EngineConfig config = tiny_config();
        config.scheduler.kind = kind;
        workload::Workload w;
        for (workload::QueryId i = 1; i <= 20; ++i)
            w.jobs.push_back(single_query_job(i, i % 8, i % 2));
        core::Engine engine(config);
        const core::RunReport report = engine.run(w);
        ASSERT_EQ(report.queries, 20u);
    }
}

TEST(Robustness, OneAtomCacheNeverUnderflows) {
    core::EngineConfig config = tiny_config();
    config.cache.capacity_atoms = 1;
    config.scheduler.kind = core::SchedulerKind::kJaws;
    workload::Workload w;
    for (workload::QueryId i = 1; i <= 30; ++i)
        w.jobs.push_back(single_query_job(i, i % 8));
    core::Engine engine(config);
    EXPECT_EQ(engine.run(w).queries, 30u);
}

TEST(Robustness, SingleJobSingleQuery) {
    core::EngineConfig config = tiny_config();
    workload::Workload w;
    w.jobs.push_back(single_query_job(1, 0));
    core::Engine engine(config);
    const core::RunReport report = engine.run(w);
    EXPECT_EQ(report.queries, 1u);
    EXPECT_GT(report.makespan.micros, 0);
}

TEST(Robustness, JobWithEmptyQueryListIsSkipped) {
    core::EngineConfig config = tiny_config();
    workload::Workload w;
    workload::Job empty;
    empty.id = 1;
    w.jobs.push_back(empty);
    w.jobs.push_back(single_query_job(2, 3));
    core::Engine engine(config);
    const core::RunReport report = engine.run(w);
    EXPECT_EQ(report.queries, 1u);
}

TEST(Robustness, ManyIdenticalQueriesCollapseToSharedReads) {
    core::EngineConfig config = tiny_config();
    config.scheduler.kind = core::SchedulerKind::kLifeRaft;
    workload::Workload w;
    for (workload::QueryId i = 1; i <= 50; ++i) w.jobs.push_back(single_query_job(i, 4));
    core::Engine engine(config);
    const core::RunReport report = engine.run(w);
    EXPECT_EQ(report.queries, 50u);
    // All fifty queries hit the same atom; the batcher needs very few reads.
    EXPECT_LE(report.atom_reads, 5u);
}

TEST(Robustness, HugeSpeedupCollapsesArrivals) {
    core::EngineConfig config = tiny_config();
    config.scheduler.kind = core::SchedulerKind::kJaws;
    workload::WorkloadSpec spec;
    spec.jobs = 15;
    const field::SyntheticField field(config.field);
    workload::Workload w = workload::generate_workload(spec, config.grid, field);
    workload::apply_speedup(w, 1e9);  // everything at t ~ first arrival
    core::Engine engine(config);
    EXPECT_EQ(engine.run(w).queries, w.total_queries());
}

TEST(Robustness, ExtremeSlowdownStillCompletes) {
    core::EngineConfig config = tiny_config();
    workload::WorkloadSpec spec;
    spec.jobs = 5;
    const field::SyntheticField field(config.field);
    workload::Workload w = workload::generate_workload(spec, config.grid, field);
    workload::apply_speedup(w, 1e-3);  // gaps stretched a thousandfold
    core::Engine engine(config);
    EXPECT_EQ(engine.run(w).queries, w.total_queries());
}

TEST(Robustness, ClusterWithMoreNodesThanAtoms) {
    core::ClusterConfig config;
    config.node = tiny_config();  // 8 atoms per step
    config.nodes = 16;            // more nodes than atoms
    workload::Workload w;
    for (workload::QueryId i = 1; i <= 10; ++i) w.jobs.push_back(single_query_job(i, i % 8));
    core::TurbulenceCluster cluster(config);
    const core::ClusterReport report = cluster.run(w);
    std::size_t total = 0;
    for (const auto& r : report.per_node) total += r.queries;
    EXPECT_EQ(total, 10u);
}

TEST(Robustness, QosAndPrefetchTogether) {
    core::EngineConfig config = tiny_config();
    config.scheduler.kind = core::SchedulerKind::kJaws;
    config.scheduler.jaws.qos.enabled = true;
    config.scheduler.jaws.qos.slack_factor = 10.0;
    config.prefetch.enabled = true;
    workload::WorkloadSpec spec;
    spec.jobs = 20;
    const field::SyntheticField field(config.field);
    const workload::Workload w = workload::generate_workload(spec, config.grid, field);
    core::Engine engine(config);
    const core::RunReport report = engine.run(w);
    EXPECT_EQ(report.queries, w.total_queries());
    EXPECT_EQ(report.qos.guaranteed, w.total_queries());
}

TEST(Robustness, ZeroRunLengthDisablesRunBoundaries) {
    core::EngineConfig config = tiny_config();
    config.run_length = 0;
    config.cache.policy = core::CachePolicy::kSlru;  // depends on run boundaries
    workload::Workload w;
    for (workload::QueryId i = 1; i <= 10; ++i) w.jobs.push_back(single_query_job(i, i % 8));
    core::Engine engine(config);
    EXPECT_EQ(engine.run(w).queries, 10u);
}

TEST(Robustness, AllSchedulersHandleMaterializedData) {
    for (const core::SchedulerKind kind :
         {core::SchedulerKind::kNoShare, core::SchedulerKind::kLifeRaft,
          core::SchedulerKind::kJaws}) {
        core::EngineConfig config = tiny_config();
        config.materialize_data = true;
        config.scheduler.kind = kind;
        workload::Workload w;
        for (workload::QueryId i = 1; i <= 6; ++i) w.jobs.push_back(single_query_job(i, i % 8));
        core::Engine engine(config);
        ASSERT_EQ(engine.run(w).queries, 6u);
    }
}

}  // namespace
}  // namespace jaws
