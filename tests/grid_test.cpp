// Tests for grid/atom geometry and voxel materialisation (field/grid.h).
#include <gtest/gtest.h>

#include <algorithm>

#include "field/grid.h"
#include "util/rng.h"

namespace jaws::field {
namespace {

GridSpec small_grid() {
    GridSpec g;
    g.voxels_per_side = 64;
    g.atom_side = 16;
    g.ghost = 2;
    g.timesteps = 4;
    return g;
}

TEST(GridSpec, DerivedCounts) {
    const GridSpec g = small_grid();
    EXPECT_EQ(g.atoms_per_side(), 4u);
    EXPECT_EQ(g.atoms_per_step(), 64u);
    EXPECT_EQ(g.total_atoms(), 256u);
}

TEST(GridSpec, ProductionScaleMatchesPaper) {
    const GridSpec g;  // defaults
    EXPECT_EQ(g.voxels_per_side, 1024u);
    EXPECT_EQ(g.atom_side, 64u);
    EXPECT_EQ(g.atoms_per_step(), 4096u);  // paper Sec. III-A
    EXPECT_EQ(g.timesteps, 31u);           // the 800 GB evaluation sample
    // 72^3 voxels * 16 bytes ~ the paper's "roughly 8 MB" atom.
    EXPECT_NEAR(static_cast<double>(g.atom_bytes()) / (1 << 20), 5.7, 0.3);
}

TEST(GridSpec, VoxelOfPositionCenterRoundTrip) {
    const GridSpec g = small_grid();
    util::Rng rng(30);
    for (int i = 0; i < 300; ++i) {
        const util::Coord3 v{static_cast<std::uint32_t>(rng.uniform_u64(64)),
                             static_cast<std::uint32_t>(rng.uniform_u64(64)),
                             static_cast<std::uint32_t>(rng.uniform_u64(64))};
        ASSERT_EQ(g.voxel_of(g.position_of(v)), v);
    }
}

TEST(GridSpec, VoxelOfWrapsOutOfRangePositions) {
    const GridSpec g = small_grid();
    const util::Coord3 a = g.voxel_of(Vec3{1.25, -0.75, 2.0});
    const util::Coord3 b = g.voxel_of(Vec3{0.25, 0.25, 0.0});
    EXPECT_EQ(a, b);
}

TEST(GridSpec, AtomOfVoxel) {
    const GridSpec g = small_grid();
    EXPECT_EQ(g.atom_of_voxel({0, 0, 0}), (util::Coord3{0, 0, 0}));
    EXPECT_EQ(g.atom_of_voxel({15, 15, 15}), (util::Coord3{0, 0, 0}));
    EXPECT_EQ(g.atom_of_voxel({16, 0, 32}), (util::Coord3{1, 0, 2}));
}

TEST(GridSpec, AtomMortonOfPosition) {
    const GridSpec g = small_grid();
    // Position at the centre of atom (1, 2, 3).
    const Vec3 p{(1 + 0.5) / 4.0, (2 + 0.5) / 4.0, (3 + 0.5) / 4.0};
    EXPECT_EQ(g.atom_morton_of(p), util::morton_encode(1, 2, 3));
}

TEST(GridSpec, SimTimeScalesWithStep) {
    const GridSpec g = small_grid();
    EXPECT_DOUBLE_EQ(g.sim_time(0), 0.0);
    EXPECT_DOUBLE_EQ(g.sim_time(3), 3 * g.dt);
}

TEST(GridSpec, KernelAtomsInteriorFitsGhost) {
    const GridSpec g = small_grid();
    // Kernel half-width 2 == ghost: single atom regardless of position.
    const Vec3 p{0.01, 0.01, 0.01};
    const auto atoms = g.kernel_atoms(p, 2);
    EXPECT_EQ(atoms.size(), 1u);
}

TEST(GridSpec, KernelAtomsSpillsPastGhost) {
    const GridSpec g = small_grid();
    // Half-width 4 > ghost 2, position at a low atom corner: spills into
    // lower neighbours (wrapping).
    const Vec3 p{0.001, 0.001, 0.001};
    const auto atoms = g.kernel_atoms(p, 4);
    EXPECT_GT(atoms.size(), 1u);
    // The primary atom always comes first.
    EXPECT_EQ(atoms.front(), g.atom_morton_of(p));
    // No duplicates.
    auto copy = atoms;
    std::sort(copy.begin(), copy.end());
    EXPECT_EQ(std::adjacent_find(copy.begin(), copy.end()), copy.end());
}

TEST(GridSpec, KernelAtomsCenterOfAtomNoSpill) {
    const GridSpec g = small_grid();
    const Vec3 p{(0.5) / 4.0, (0.5) / 4.0, (0.5) / 4.0};  // centre of atom 0
    EXPECT_EQ(g.kernel_atoms(p, 4).size(), 1u);
}

TEST(VoxelBlock, ExtentIncludesGhosts) {
    const GridSpec g = small_grid();
    const SyntheticField f({.seed = 40, .modes = 8});
    const VoxelBlock block(g, f, {1, 1, 1}, 0);
    EXPECT_EQ(block.extent(), g.atom_side + 2 * g.ghost);
    EXPECT_GT(block.bytes(), 0u);
}

TEST(VoxelBlock, InteriorVoxelMatchesField) {
    const GridSpec g = small_grid();
    const SyntheticField f({.seed = 41, .modes = 8});
    const util::Coord3 atom{2, 1, 3};
    const VoxelBlock block(g, f, atom, 2);
    // Local (5, 6, 7) with ghost 2 -> global voxel (2*16+3, 1*16+4, 3*16+5).
    const util::Coord3 global{2 * 16 + 5 - 2, 1 * 16 + 6 - 2, 3 * 16 + 7 - 2};
    const FlowSample expected = f.sample(g.position_of(global), g.sim_time(2));
    const FlowSample got = block.at(5, 6, 7);
    EXPECT_NEAR(got.velocity.x, expected.velocity.x, 1e-5);
    EXPECT_NEAR(got.pressure, expected.pressure, 1e-5);
}

TEST(VoxelBlock, GhostVoxelWrapsPeriodically) {
    const GridSpec g = small_grid();
    const SyntheticField f({.seed = 42, .modes = 8});
    // Atom (0,0,0): local (0,?,?) ghosts reach global voxel -2 == 62 (wrap).
    const VoxelBlock block(g, f, {0, 0, 0}, 1);
    const util::Coord3 wrapped{62, 5, 5};
    const FlowSample expected = f.sample(g.position_of(wrapped), g.sim_time(1));
    const FlowSample got = block.at(0, 5 + 2, 5 + 2);
    EXPECT_NEAR(got.velocity.y, expected.velocity.y, 1e-5);
}

TEST(VoxelBlock, DifferentTimestepsDiffer) {
    const GridSpec g = small_grid();
    const SyntheticField f({.seed = 43, .modes = 8});
    const VoxelBlock b0(g, f, {1, 1, 1}, 0);
    const VoxelBlock b3(g, f, {1, 1, 1}, 3);
    EXPECT_NE(b0.at(8, 8, 8).velocity.x, b3.at(8, 8, 8).velocity.x);
}

}  // namespace
}  // namespace jaws::field
