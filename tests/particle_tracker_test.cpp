// Tests for particle-tracking jobs (workload/particle_tracker.h).
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "workload/particle_tracker.h"

namespace jaws::workload {
namespace {

field::GridSpec small_grid() {
    field::GridSpec g;
    g.voxels_per_side = 64;
    g.atom_side = 16;
    g.ghost = 2;
    g.timesteps = 12;
    return g;
}

TEST(SeedParticles, CountAndContainment) {
    ParticleTrackingSpec spec;
    spec.particles = 300;
    spec.seed_center = {0.5, 0.5, 0.5};
    spec.seed_radius = 0.1;
    const auto cloud = seed_particles(spec);
    ASSERT_EQ(cloud.size(), 300u);
    for (const auto& p : cloud) {
        const double dx = p.x - 0.5, dy = p.y - 0.5, dz = p.z - 0.5;
        ASSERT_LE(std::sqrt(dx * dx + dy * dy + dz * dz), 0.1 + 1e-12);
    }
}

TEST(SeedParticles, DeterministicInSeed) {
    ParticleTrackingSpec spec;
    spec.particles = 50;
    const auto a = seed_particles(spec);
    const auto b = seed_particles(spec);
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_DOUBLE_EQ(a[i].x, b[i].x);
        ASSERT_DOUBLE_EQ(a[i].y, b[i].y);
        ASSERT_DOUBLE_EQ(a[i].z, b[i].z);
    }
}

TEST(SeedParticles, WrapsAcrossTorusBoundary) {
    ParticleTrackingSpec spec;
    spec.particles = 200;
    spec.seed_center = {0.02, 0.5, 0.98};
    spec.seed_radius = 0.05;
    for (const auto& p : seed_particles(spec)) {
        ASSERT_GE(p.x, 0.0);
        ASSERT_LT(p.x, 1.0);
        ASSERT_GE(p.z, 0.0);
        ASSERT_LT(p.z, 1.0);
    }
}

TEST(AdvectCloud, PreservesCount) {
    const field::SyntheticField f({.seed = 80, .modes = 6});
    ParticleTrackingSpec spec;
    spec.particles = 64;
    const auto cloud = seed_particles(spec);
    const auto moved = advect_cloud(f, cloud, 0.0, 0.01);
    EXPECT_EQ(moved.size(), cloud.size());
}

TEST(AdvectCloud, ParticlesActuallyMove) {
    const field::SyntheticField f({.seed = 81, .modes = 6});
    ParticleTrackingSpec spec;
    spec.particles = 32;
    const auto cloud = seed_particles(spec);
    const auto moved = advect_cloud(f, cloud, 0.0, 0.05);
    double displacement = 0.0;
    for (std::size_t i = 0; i < cloud.size(); ++i)
        displacement += std::fabs(moved[i].x - cloud[i].x);
    EXPECT_GT(displacement, 0.0);
}

TEST(FootprintOfPositions, GroupsByAtomAndSorts) {
    const field::GridSpec grid = small_grid();
    // Four positions: two in atom (0,0,0), one each in two other atoms.
    const std::vector<field::Vec3> positions = {
        {0.05, 0.05, 0.05}, {0.1, 0.1, 0.1}, {0.3, 0.05, 0.05}, {0.05, 0.3, 0.05}};
    const auto fp = footprint_of_positions(grid, 2, positions);
    ASSERT_EQ(fp.size(), 3u);
    std::uint64_t total = 0;
    for (const auto& r : fp) {
        ASSERT_EQ(r.atom.timestep, 2u);
        total += r.positions;
    }
    EXPECT_EQ(total, positions.size());
    EXPECT_TRUE(std::is_sorted(fp.begin(), fp.end(),
                               [](const AtomRequest& a, const AtomRequest& b) {
                                   return a.atom.morton < b.atom.morton;
                               }));
    EXPECT_EQ(fp.front().positions, 2u);  // atom (0,0,0) is Morton-first here
}

TEST(MakeParticleTrackingJob, StructureIsOrderedChain) {
    const field::GridSpec grid = small_grid();
    const field::SyntheticField f({.seed = 82, .modes = 6});
    ParticleTrackingSpec spec;
    spec.particles = 100;
    spec.start_step = 2;
    spec.steps = 5;
    const Job job = make_particle_tracking_job(spec, grid, f, 42, 3,
                                               util::SimTime::from_seconds(10));
    EXPECT_EQ(job.id, 42u);
    EXPECT_EQ(job.type, JobType::kOrdered);
    ASSERT_EQ(job.queries.size(), 5u);
    for (std::size_t i = 0; i < job.queries.size(); ++i) {
        const Query& q = job.queries[i];
        ASSERT_EQ(q.seq_in_job, i);
        ASSERT_EQ(q.timestep, 2 + i);
        ASSERT_EQ(q.positions.size(), 100u);
        ASSERT_FALSE(q.footprint.empty());
        // Footprint must match the explicit positions exactly.
        ASSERT_EQ(q.total_positions(), q.positions.size());
        for (const auto& p : q.positions)
            ASSERT_EQ(grid.atom_morton_of(p),
                      grid.atom_morton_of(p));  // well-formed position
    }
}

TEST(MakeParticleTrackingJob, ConsecutiveQueriesAreAdvectionsOfPredecessor) {
    const field::GridSpec grid = small_grid();
    const field::SyntheticField f({.seed = 83, .modes = 6});
    ParticleTrackingSpec spec;
    spec.particles = 20;
    spec.start_step = 0;
    spec.steps = 3;
    const Job job = make_particle_tracking_job(spec, grid, f, 1, 1, util::SimTime::zero());
    const auto expected =
        advect_cloud(f, job.queries[0].positions, grid.sim_time(0), grid.dt);
    for (std::size_t i = 0; i < expected.size(); ++i) {
        ASSERT_DOUBLE_EQ(job.queries[1].positions[i].x, expected[i].x);
        ASSERT_DOUBLE_EQ(job.queries[1].positions[i].y, expected[i].y);
    }
}

TEST(MakeParticleTrackingJob, BackwardTracking) {
    const field::GridSpec grid = small_grid();
    const field::SyntheticField f({.seed = 84, .modes = 6});
    ParticleTrackingSpec spec;
    spec.particles = 10;
    spec.start_step = 8;
    spec.steps = 4;
    spec.direction = -1;
    const Job job = make_particle_tracking_job(spec, grid, f, 1, 1, util::SimTime::zero());
    ASSERT_EQ(job.queries.size(), 4u);
    EXPECT_EQ(job.queries[0].timestep, 8u);
    EXPECT_EQ(job.queries[3].timestep, 5u);
}

}  // namespace
}  // namespace jaws::workload
