// Unit and property tests for 3-D Morton encoding (util/morton.h).
#include <gtest/gtest.h>

#include <algorithm>

#include "util/morton.h"
#include "util/rng.h"

namespace jaws::util {
namespace {

TEST(Morton, EncodeOrigin) { EXPECT_EQ(morton_encode(0, 0, 0), 0u); }

TEST(Morton, EncodeUnitAxes) {
    // Bit layout: x in bit 0, y in bit 1, z in bit 2.
    EXPECT_EQ(morton_encode(1, 0, 0), 0b001u);
    EXPECT_EQ(morton_encode(0, 1, 0), 0b010u);
    EXPECT_EQ(morton_encode(0, 0, 1), 0b100u);
    EXPECT_EQ(morton_encode(1, 1, 1), 0b111u);
}

TEST(Morton, EncodeSecondBits) {
    EXPECT_EQ(morton_encode(2, 0, 0), 0b001000u);
    EXPECT_EQ(morton_encode(0, 2, 0), 0b010000u);
    EXPECT_EQ(morton_encode(0, 0, 2), 0b100000u);
    EXPECT_EQ(morton_encode(3, 3, 3), 0b111111u);
}

TEST(Morton, SpreadCompactInverse) {
    Rng rng(100);
    for (int i = 0; i < 1000; ++i) {
        const auto v = static_cast<std::uint32_t>(rng()) & 0x1fffff;
        EXPECT_EQ(morton_compact(morton_spread(v)), v);
    }
}

TEST(Morton, SpreadBitsEveryThird) {
    const std::uint64_t s = morton_spread(0x1fffff);
    EXPECT_EQ(s, 0x1249249249249249ULL);
}

TEST(Morton, MaxCoordinateRoundTrip) {
    const std::uint32_t maxc = (1u << kMortonBitsPerAxis) - 1;
    const Coord3 c{maxc, maxc, maxc};
    EXPECT_EQ(morton_decode(morton_encode(c)), c);
}

class MortonRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MortonRoundTrip, DecodeEncodeIdentity) {
    Rng rng(GetParam());
    for (int i = 0; i < 2000; ++i) {
        const auto x = static_cast<std::uint32_t>(rng.uniform_u64(1u << 21));
        const auto y = static_cast<std::uint32_t>(rng.uniform_u64(1u << 21));
        const auto z = static_cast<std::uint32_t>(rng.uniform_u64(1u << 21));
        const Coord3 decoded = morton_decode(morton_encode(x, y, z));
        ASSERT_EQ(decoded.x, x);
        ASSERT_EQ(decoded.y, y);
        ASSERT_EQ(decoded.z, z);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MortonRoundTrip, ::testing::Values(1, 2, 3, 4, 5));

TEST(Morton, OrderPreservesLocalityWithinOctant) {
    // All codes of the low octant [0,2)^3 are below those of [2,4)^3's
    // corresponding cells shifted by one level.
    const std::uint64_t max_low = morton_encode(1, 1, 1);
    const std::uint64_t min_high = morton_encode(2, 0, 0);
    EXPECT_LT(max_low, min_high);
}

TEST(MortonBoxCover, SingleCell) {
    const auto cover = morton_box_cover({3, 4, 5}, {3, 4, 5});
    ASSERT_EQ(cover.size(), 1u);
    EXPECT_EQ(cover[0], morton_encode(3, 4, 5));
}

TEST(MortonBoxCover, EmptyWhenInverted) {
    EXPECT_TRUE(morton_box_cover({2, 0, 0}, {1, 5, 5}).empty());
}

TEST(MortonBoxCover, CountAndSorted) {
    const auto cover = morton_box_cover({1, 2, 3}, {4, 4, 5});
    EXPECT_EQ(cover.size(), 4u * 3u * 3u);
    EXPECT_TRUE(std::is_sorted(cover.begin(), cover.end()));
    // No duplicates.
    EXPECT_EQ(std::adjacent_find(cover.begin(), cover.end()), cover.end());
}

TEST(MortonBoxCover, ContainsExactlyBoxCells) {
    const auto cover = morton_box_cover({0, 0, 0}, {2, 1, 1});
    for (const std::uint64_t code : cover) {
        const Coord3 c = morton_decode(code);
        EXPECT_LE(c.x, 2u);
        EXPECT_LE(c.y, 1u);
        EXPECT_LE(c.z, 1u);
    }
}

TEST(MortonFaceNeighbors, InteriorHasSix) {
    const auto n = morton_face_neighbors(morton_encode(4, 4, 4), 16);
    EXPECT_EQ(n.size(), 6u);
}

TEST(MortonFaceNeighbors, CornerHasThree) {
    const auto n = morton_face_neighbors(morton_encode(0, 0, 0), 16);
    ASSERT_EQ(n.size(), 3u);
    EXPECT_NE(std::find(n.begin(), n.end(), morton_encode(1, 0, 0)), n.end());
    EXPECT_NE(std::find(n.begin(), n.end(), morton_encode(0, 1, 0)), n.end());
    EXPECT_NE(std::find(n.begin(), n.end(), morton_encode(0, 0, 1)), n.end());
}

TEST(MortonFaceNeighbors, UpperCornerClamped) {
    const auto n = morton_face_neighbors(morton_encode(15, 15, 15), 16);
    EXPECT_EQ(n.size(), 3u);
}

TEST(MortonFaceNeighbors, NeighborsAreAtManhattanDistanceOne) {
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        const auto x = static_cast<std::uint32_t>(rng.uniform_u64(16));
        const auto y = static_cast<std::uint32_t>(rng.uniform_u64(16));
        const auto z = static_cast<std::uint32_t>(rng.uniform_u64(16));
        for (const std::uint64_t code : morton_face_neighbors(morton_encode(x, y, z), 16)) {
            const Coord3 c = morton_decode(code);
            const int dist = std::abs(static_cast<int>(c.x) - static_cast<int>(x)) +
                             std::abs(static_cast<int>(c.y) - static_cast<int>(y)) +
                             std::abs(static_cast<int>(c.z) - static_cast<int>(z));
            ASSERT_EQ(dist, 1);
        }
    }
}

}  // namespace
}  // namespace jaws::util
