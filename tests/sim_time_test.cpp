// Tests for virtual time and the virtual clock (util/sim_time.h).
#include <gtest/gtest.h>

#include <limits>

#include "util/sim_time.h"

namespace jaws::util {
namespace {

TEST(SimTime, Conversions) {
    EXPECT_EQ(SimTime::from_seconds(1.5).micros, 1'500'000);
    EXPECT_EQ(SimTime::from_millis(2.5).micros, 2'500);
    EXPECT_DOUBLE_EQ(SimTime::from_micros(3'000'000).seconds(), 3.0);
    EXPECT_DOUBLE_EQ(SimTime::from_micros(1'500).millis(), 1.5);
}

TEST(SimTime, ConversionsRoundToNearestMicrosecond) {
    // Truncation used to drop up to 1 us per conversion: 0.0024 ms is 2.4 us
    // and must round to 2, not chop through intermediate float error; 2.6 us
    // rounds up to 3. Same for seconds.
    EXPECT_EQ(SimTime::from_millis(0.0024).micros, 2);
    EXPECT_EQ(SimTime::from_millis(0.0026).micros, 3);
    EXPECT_EQ(SimTime::from_millis(0.9999).micros, 1'000);
    EXPECT_EQ(SimTime::from_seconds(0.9999996).micros, 1'000'000);
    EXPECT_EQ(SimTime::from_seconds(1e-7).micros, 0);
    // Half-way cases round away from zero (llround semantics), including for
    // negative spans.
    EXPECT_EQ(SimTime::from_millis(0.0005).micros, 1);
    EXPECT_EQ(SimTime::from_millis(-0.0005).micros, -1);
    EXPECT_EQ(SimTime::from_millis(-0.0024).micros, -2);
    // 86.9 ms of exponential think time (a value the generator actually
    // produces) keeps its nearest microsecond.
    EXPECT_EQ(SimTime::from_seconds(0.0869995).micros, 87'000);
}

TEST(SimTime, Arithmetic) {
    const SimTime a = SimTime::from_millis(5);
    const SimTime b = SimTime::from_millis(3);
    EXPECT_EQ((a + b).micros, 8'000);
    EXPECT_EQ((a - b).micros, 2'000);
    SimTime c = a;
    c += b;
    EXPECT_EQ(c.micros, 8'000);
}

TEST(SimTime, Comparisons) {
    EXPECT_LT(SimTime::from_millis(1), SimTime::from_millis(2));
    EXPECT_EQ(SimTime::zero(), SimTime::from_micros(0));
    EXPECT_GE(SimTime::from_seconds(1), SimTime::from_millis(1000));
}

TEST(SimTime, ToStringPicksUnits) {
    EXPECT_EQ(to_string(SimTime::from_micros(12)), "12us");
    EXPECT_EQ(to_string(SimTime::from_millis(12)), "12ms");
    EXPECT_NE(to_string(SimTime::from_seconds(2)).find("s"), std::string::npos);
}

TEST(VirtualClock, StartsAtZero) {
    VirtualClock clock;
    EXPECT_EQ(clock.now(), SimTime::zero());
}

TEST(VirtualClock, AdvanceAccumulates) {
    VirtualClock clock;
    clock.advance(SimTime::from_millis(10));
    clock.advance(SimTime::from_millis(5));
    EXPECT_EQ(clock.now().micros, 15'000);
}

TEST(VirtualClock, NegativeAdvanceIgnored) {
    VirtualClock clock;
    clock.advance(SimTime::from_millis(10));
    clock.advance(SimTime::from_micros(-500));
    EXPECT_EQ(clock.now().micros, 10'000);
}

TEST(VirtualClock, AdvanceToNeverMovesBack) {
    VirtualClock clock;
    clock.advance_to(SimTime::from_millis(20));
    clock.advance_to(SimTime::from_millis(5));
    EXPECT_EQ(clock.now().micros, 20'000);
}

TEST(VirtualClock, ResetReturnsToZero) {
    VirtualClock clock;
    clock.advance(SimTime::from_seconds(1));
    clock.reset();
    EXPECT_EQ(clock.now(), SimTime::zero());
}

TEST(SimTime, RealConversionsSaturateInsteadOfOverflowing) {
    // Fuzz-pinned (fuzz/fuzz_config.cpp): heavy-tail pricing can hand
    // from_millis/from_seconds non-finite or astronomically large reals;
    // llround on those is UB, so the conversions saturate to the int64
    // extremes (and map NaN to zero) instead.
    constexpr double inf = std::numeric_limits<double>::infinity();
    constexpr std::int64_t lo = std::numeric_limits<std::int64_t>::min();
    constexpr std::int64_t hi = std::numeric_limits<std::int64_t>::max();
    EXPECT_EQ(SimTime::from_seconds(inf).micros, hi);
    EXPECT_EQ(SimTime::from_millis(inf).micros, hi);
    EXPECT_EQ(SimTime::from_seconds(-inf).micros, lo);
    EXPECT_EQ(SimTime::from_millis(-1e300).micros, lo);
    EXPECT_EQ(SimTime::from_seconds(1e300).micros, hi);
    EXPECT_EQ(
        SimTime::from_millis(std::numeric_limits<double>::quiet_NaN()).micros,
        0);
    // Values inside the representable band still round to nearest.
    EXPECT_EQ(SimTime::from_millis(2.0004).micros, 2'000);
}

}  // namespace
}  // namespace jaws::util
