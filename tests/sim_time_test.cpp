// Tests for virtual time and the virtual clock (util/sim_time.h).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "util/contracts.h"
#include "util/sim_time.h"

namespace jaws::util {
namespace {

TEST(SimTime, Conversions) {
    EXPECT_EQ(SimTime::from_seconds(1.5).micros, 1'500'000);
    EXPECT_EQ(SimTime::from_millis(2.5).micros, 2'500);
    EXPECT_DOUBLE_EQ(SimTime::from_micros(3'000'000).seconds(), 3.0);
    EXPECT_DOUBLE_EQ(SimTime::from_micros(1'500).millis(), 1.5);
}

TEST(SimTime, ConversionsRoundToNearestMicrosecond) {
    // Truncation used to drop up to 1 us per conversion: 0.0024 ms is 2.4 us
    // and must round to 2, not chop through intermediate float error; 2.6 us
    // rounds up to 3. Same for seconds.
    EXPECT_EQ(SimTime::from_millis(0.0024).micros, 2);
    EXPECT_EQ(SimTime::from_millis(0.0026).micros, 3);
    EXPECT_EQ(SimTime::from_millis(0.9999).micros, 1'000);
    EXPECT_EQ(SimTime::from_seconds(0.9999996).micros, 1'000'000);
    EXPECT_EQ(SimTime::from_seconds(1e-7).micros, 0);
    // Half-way cases round away from zero (llround semantics), including for
    // negative spans.
    EXPECT_EQ(SimTime::from_millis(0.0005).micros, 1);
    EXPECT_EQ(SimTime::from_millis(-0.0005).micros, -1);
    EXPECT_EQ(SimTime::from_millis(-0.0024).micros, -2);
    // 86.9 ms of exponential think time (a value the generator actually
    // produces) keeps its nearest microsecond.
    EXPECT_EQ(SimTime::from_seconds(0.0869995).micros, 87'000);
}

TEST(SimTime, Arithmetic) {
    const SimTime a = SimTime::from_millis(5);
    const SimTime b = SimTime::from_millis(3);
    EXPECT_EQ((a + b).micros, 8'000);
    EXPECT_EQ((a - b).micros, 2'000);
    SimTime c = a;
    c += b;
    EXPECT_EQ(c.micros, 8'000);
}

TEST(SimTime, Comparisons) {
    EXPECT_LT(SimTime::from_millis(1), SimTime::from_millis(2));
    EXPECT_EQ(SimTime::zero(), SimTime::from_micros(0));
    EXPECT_GE(SimTime::from_seconds(1), SimTime::from_millis(1000));
}

TEST(SimTime, ToStringPicksUnits) {
    EXPECT_EQ(to_string(SimTime::from_micros(12)), "12us");
    EXPECT_EQ(to_string(SimTime::from_millis(12)), "12ms");
    EXPECT_NE(to_string(SimTime::from_seconds(2)).find("s"), std::string::npos);
}

TEST(VirtualClock, StartsAtZero) {
    VirtualClock clock;
    EXPECT_EQ(clock.now(), SimTime::zero());
}

TEST(VirtualClock, AdvanceAccumulates) {
    VirtualClock clock;
    clock.advance(SimTime::from_millis(10));
    clock.advance(SimTime::from_millis(5));
    EXPECT_EQ(clock.now().micros, 15'000);
}

TEST(VirtualClock, NegativeAdvanceIgnored) {
    VirtualClock clock;
    clock.advance(SimTime::from_millis(10));
    clock.advance(SimTime::from_micros(-500));
    EXPECT_EQ(clock.now().micros, 10'000);
}

TEST(VirtualClock, AdvanceToNeverMovesBack) {
    VirtualClock clock;
    clock.advance_to(SimTime::from_millis(20));
    clock.advance_to(SimTime::from_millis(5));
    EXPECT_EQ(clock.now().micros, 20'000);
}

TEST(VirtualClock, ResetReturnsToZero) {
    VirtualClock clock;
    clock.advance(SimTime::from_seconds(1));
    clock.reset();
    EXPECT_EQ(clock.now(), SimTime::zero());
}

TEST(SimTime, RealConversionsSaturateInsteadOfOverflowing) {
    // Fuzz-pinned (fuzz/fuzz_config.cpp): heavy-tail pricing can hand
    // from_millis/from_seconds non-finite or astronomically large reals;
    // llround on those is UB, so the conversions saturate to the int64
    // extremes (and map NaN to zero) instead.
    constexpr double inf = std::numeric_limits<double>::infinity();
    constexpr std::int64_t lo = std::numeric_limits<std::int64_t>::min();
    constexpr std::int64_t hi = std::numeric_limits<std::int64_t>::max();
    EXPECT_EQ(SimTime::from_seconds(inf).micros, hi);
    EXPECT_EQ(SimTime::from_millis(inf).micros, hi);
    EXPECT_EQ(SimTime::from_seconds(-inf).micros, lo);
    EXPECT_EQ(SimTime::from_millis(-1e300).micros, lo);
    EXPECT_EQ(SimTime::from_seconds(1e300).micros, hi);
    EXPECT_EQ(
        SimTime::from_millis(std::numeric_limits<double>::quiet_NaN()).micros,
        0);
    // Values inside the representable band still round to nearest.
    EXPECT_EQ(SimTime::from_millis(2.0004).micros, 2'000);
}

// Deliberate saturations below trip JAWS_INVARIANT in audit builds, whose
// default handler aborts; swallow the reports so the same tests pass in
// every preset (release builds never generate any).
class SimTimeSaturation : public ::testing::Test {
  protected:
    static void swallow(const char*, int, const char*, const char*) {}
    void SetUp() override { prev_ = set_contract_handler(&swallow); }
    void TearDown() override { set_contract_handler(prev_); }

  private:
    ContractHandler prev_ = nullptr;
};

TEST_F(SimTimeSaturation, AdditionSaturatesAtInt64Rails) {
    // ISSUE 9 regression: these inputs used to be signed-overflow UB. The
    // exact boundary is fine; one past it clamps to the rail the overflow
    // was heading for.
    const SimTime one = SimTime::from_micros(1);
    EXPECT_EQ(SimTime::max() + one, SimTime::max());
    EXPECT_EQ(SimTime::max() + SimTime::max(), SimTime::max());
    EXPECT_EQ(SimTime::min() + SimTime::from_micros(-1), SimTime::min());
    EXPECT_EQ(SimTime::min() + SimTime::min(), SimTime::min());
    EXPECT_EQ((SimTime::max() + SimTime::from_micros(-1)).raw_micros(),
              std::numeric_limits<std::int64_t>::max() - 1);
    EXPECT_EQ(SimTime::from_micros(
                  std::numeric_limits<std::int64_t>::max() - 1) + one,
              SimTime::max());
}

TEST_F(SimTimeSaturation, SubtractionSaturatesAtInt64Rails) {
    const SimTime one = SimTime::from_micros(1);
    EXPECT_EQ(SimTime::min() - one, SimTime::min());
    EXPECT_EQ(SimTime::max() - SimTime::from_micros(-1), SimTime::max());
    // -INT64_MIN is not representable: subtracting the minimum from
    // anything non-negative rails at max.
    EXPECT_EQ(SimTime::zero() - SimTime::min(), SimTime::max());
    EXPECT_EQ((SimTime::min() + one) - one, SimTime::min());
}

TEST_F(SimTimeSaturation, CompoundAssignSaturates) {
    SimTime t = SimTime::max();
    t += SimTime::from_seconds(1.0);
    EXPECT_EQ(t, SimTime::max());
    t -= SimTime::from_micros(-1);
    EXPECT_EQ(t, SimTime::max());
    SimTime u = SimTime::min();
    u -= SimTime::from_micros(1);
    EXPECT_EQ(u, SimTime::min());
}

TEST_F(SimTimeSaturation, ScaledBySaturatesWithSignCorrectRails) {
    const SimTime big = SimTime::from_micros(std::int64_t{1} << 40);
    EXPECT_EQ(big.scaled_by(std::int64_t{1} << 40), SimTime::max());
    EXPECT_EQ(big.scaled_by(-(std::int64_t{1} << 40)), SimTime::min());
    EXPECT_EQ(SimTime::from_micros(-(std::int64_t{1} << 40))
                  .scaled_by(std::int64_t{1} << 40),
              SimTime::min());
    EXPECT_EQ(SimTime::from_micros(-(std::int64_t{1} << 40))
                  .scaled_by(-(std::int64_t{1} << 40)),
              SimTime::max());
    EXPECT_EQ(SimTime::from_millis(2).scaled_by(3).raw_micros(), 6'000);
    EXPECT_EQ(SimTime::max().scaled_by(0), SimTime::zero());
}

TEST(SimTime, MinusClampedNeverGoesNegative) {
    const SimTime five = SimTime::from_millis(5);
    const SimTime three = SimTime::from_millis(3);
    EXPECT_EQ(five.minus_clamped(three).raw_micros(), 2'000);
    EXPECT_EQ(three.minus_clamped(five), SimTime::zero());
    // A negative charge is treated as zero charge, not as a credit.
    EXPECT_EQ(five.minus_clamped(SimTime::from_millis(-3)), five);
    EXPECT_EQ(SimTime::zero().minus_clamped(SimTime::min()), SimTime::zero());
}

TEST_F(SimTimeSaturation, CheckedSumSaturatesPairwise) {
    EXPECT_EQ(SimTime::checked_sum(SimTime::from_micros(100),
                                   SimTime::from_micros(200),
                                   SimTime::from_micros(3))
                  .raw_micros(),
              303);
    EXPECT_EQ(SimTime::checked_sum(SimTime::max(), SimTime::max(),
                                   SimTime::from_micros(1)),
              SimTime::max());
    EXPECT_EQ(SimTime::checked_sum(SimTime::from_micros(7)).raw_micros(), 7);
}

TEST_F(SimTimeSaturation, RetryBackoffNearSaturationBoundStaysPinned) {
    // ISSUE 9 regression: exponential backoff priced through
    // from_real_micros lands on the rail, and further doubling or adding
    // think time must stay there instead of wrapping negative.
    SimTime backoff = SimTime::from_real_micros(9.3e18);
    EXPECT_EQ(backoff, SimTime::max());
    backoff = backoff.scaled_by(2);
    EXPECT_EQ(backoff, SimTime::max());
    backoff += SimTime::from_seconds(30.0);
    EXPECT_EQ(backoff, SimTime::max());
}

TEST_F(SimTimeSaturation, VirtualClockAdvanceSaturatesAtMax) {
    VirtualClock clock;
    clock.advance_to(SimTime::max());
    clock.advance(SimTime::from_seconds(1.0));
    EXPECT_EQ(clock.now(), SimTime::max());
    clock.advance_to(SimTime::max());
    EXPECT_EQ(clock.now(), SimTime::max());
}

#if defined(JAWS_AUDIT_BUILD) && JAWS_AUDIT_BUILD
TEST(SimTimeAudit, SaturationReportsContractViolations) {
    // Audit builds trap-and-report each saturation through the contract
    // handler (then still clamp); swallow the reports so the test survives.
    struct Guard {
        static void swallow(const char*, int, const char*, const char*) {}
        ContractHandler prev = set_contract_handler(&swallow);
        ~Guard() { set_contract_handler(prev); }
    } guard;
    const std::uint64_t before = contract_violations();
    EXPECT_EQ(SimTime::max() + SimTime::from_micros(1), SimTime::max());
    EXPECT_EQ(SimTime::min() - SimTime::from_micros(1), SimTime::min());
    EXPECT_EQ(SimTime::max().scaled_by(2), SimTime::max());
    EXPECT_EQ(contract_violations(), before + 3);
}
#else
TEST(SimTimeAudit, SaturationIsSilentInReleaseBuilds) {
    // Release builds clamp without reporting: saturation is a defined,
    // documented result, not a runtime error.
    const std::uint64_t before = contract_violations();
    EXPECT_EQ(SimTime::max() + SimTime::from_micros(1), SimTime::max());
    EXPECT_EQ(SimTime::max().scaled_by(2), SimTime::max());
    EXPECT_EQ(contract_violations(), before);
}
#endif

}  // namespace
}  // namespace jaws::util
