// Tests for the discrete-event kernel (util/event_queue.h): deterministic
// event ordering with FIFO tie-breaking, cancellation, and the modeled
// multi-channel resource (service, queuing, preemption, busy-time integral).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "util/event_queue.h"

namespace jaws::util {
namespace {

SimTime us(std::int64_t n) { return SimTime::from_micros(n); }

TEST(EventQueue, RunsEventsInTimeOrder) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(us(30), 0, [&] { order.push_back(3); });
    q.schedule(us(10), 0, [&] { order.push_back(1); });
    q.schedule(us(20), 0, [&] { order.push_back(2); });
    while (q.run_one()) {
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now().micros, 30);
}

TEST(EventQueue, EqualTimestampsFireInPriorityThenInsertionOrder) {
    EventQueue q;
    std::vector<std::string> order;
    q.schedule(us(5), 2, [&] { order.push_back("p2-first"); });
    q.schedule(us(5), 1, [&] { order.push_back("p1-first"); });
    q.schedule(us(5), 2, [&] { order.push_back("p2-second"); });
    q.schedule(us(5), 1, [&] { order.push_back("p1-second"); });
    while (q.run_one()) {
    }
    EXPECT_EQ(order, (std::vector<std::string>{"p1-first", "p1-second", "p2-first",
                                               "p2-second"}));
}

TEST(EventQueue, SameTickEventsTieBreakBySourceThenInsertion) {
    // The unified cluster kernel's determinism rule: at one (time, priority)
    // instant, events fire in (source, insertion) order regardless of the
    // order the sources interleaved their schedule() calls — node 0's events
    // before node 1's, and within a node strictly FIFO.
    EventQueue q;
    std::vector<std::string> order;
    q.schedule(us(5), 1, 2, [&] { order.push_back("n2-a"); });
    q.schedule(us(5), 1, 0, [&] { order.push_back("n0-a"); });
    q.schedule(us(5), 1, 1, [&] { order.push_back("n1-a"); });
    q.schedule(us(5), 1, 0, [&] { order.push_back("n0-b"); });
    q.schedule(us(5), 1, 2, [&] { order.push_back("n2-b"); });
    while (q.run_one()) {
    }
    EXPECT_EQ(order, (std::vector<std::string>{"n0-a", "n0-b", "n1-a", "n2-a",
                                               "n2-b"}));
}

TEST(EventQueue, PriorityStillDominatesSourceAtOneInstant) {
    // A higher-priority event of a later source fires before a lower-priority
    // event of an earlier source: the cross-node tie-break only refines
    // ordering *within* a priority class (a node death at kPriHalt must beat
    // every node's arrivals no matter whose it is).
    EventQueue q;
    std::vector<std::string> order;
    q.schedule(us(5), 2, 0, [&] { order.push_back("n0-p2"); });
    q.schedule(us(5), 1, 3, [&] { order.push_back("n3-p1"); });
    while (q.run_one()) {
    }
    EXPECT_EQ(order, (std::vector<std::string>{"n3-p1", "n0-p2"}));
}

TEST(EventQueue, PendingForTracksPerSourceCounts) {
    EventQueue q;
    const EventQueue::EventId a = q.schedule(us(10), 0, 1, [] {});
    q.schedule(us(20), 0, 1, [] {});
    q.schedule(us(30), 0, 2, [] {});
    EXPECT_EQ(q.pending_for(0), 0u);
    EXPECT_EQ(q.pending_for(1), 2u);
    EXPECT_EQ(q.pending_for(2), 1u);
    EXPECT_EQ(q.pending_for(7), 0u);  // never-seen source
    EXPECT_TRUE(q.cancel(a));
    EXPECT_EQ(q.pending_for(1), 1u);
    ASSERT_TRUE(q.run_one());  // fires the remaining source-1 event
    EXPECT_EQ(q.pending_for(1), 0u);
    EXPECT_EQ(q.pending_for(2), 1u);
    EXPECT_TRUE(q.audit());
}

TEST(EventQueue, LastSourceReportsTheFiredEventsSource) {
    EventQueue q;
    q.schedule(us(10), 0, 4, [] {});
    q.schedule(us(20), 0, 9, [] {});
    ASSERT_TRUE(q.run_one());
    EXPECT_EQ(q.last_source(), 4u);
    ASSERT_TRUE(q.run_one());
    EXPECT_EQ(q.last_source(), 9u);
}

TEST(EventQueue, SourcelessScheduleDefaultsToSourceZero) {
    // The two-argument overload used by standalone engines tags source 0, so
    // a single-source queue degenerates to the historical (time, priority,
    // insertion) order — the bit-equivalence bridge to the pre-kernel runs.
    EventQueue q;
    std::vector<int> order;
    q.schedule(us(5), 0, [&] { order.push_back(1); });
    q.schedule(us(5), 0, 0, [&] { order.push_back(2); });
    q.schedule(us(5), 0, [&] { order.push_back(3); });
    while (q.run_one()) {
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.pending_for(0), 0u);
}

TEST(EventQueue, FifoTieBreakIsStableAcrossManyEvents) {
    // Same instant, same priority: strictly insertion order, regardless of
    // how the underlying heap happens to rebalance.
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i) q.schedule(us(7), 0, [&, i] { order.push_back(i); });
    while (q.run_one()) {
    }
    ASSERT_EQ(order.size(), 100u);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, InterleavedInsertionDoesNotChangeKeyedOrder) {
    // Two schedules of the same event set in different insertion orders run
    // in the same (time, priority) order — determinism does not depend on
    // construction history when keys are distinct.
    const std::vector<std::pair<std::int64_t, int>> keys = {
        {40, 1}, {10, 0}, {10, 2}, {25, 1}, {40, 0}, {5, 3}};
    std::vector<std::pair<std::int64_t, int>> first, second;
    {
        EventQueue q;
        for (const auto& k : keys)
            q.schedule(us(k.first), k.second, [&, k] { first.push_back(k); });
        while (q.run_one()) {
        }
    }
    {
        EventQueue q;
        for (auto it = keys.rbegin(); it != keys.rend(); ++it) {
            const auto k = *it;
            q.schedule(us(k.first), k.second, [&, k] { second.push_back(k); });
        }
        while (q.run_one()) {
        }
    }
    EXPECT_EQ(first, second);
}

TEST(EventQueue, SchedulingIntoThePastClampsToNow) {
    EventQueue q;
    SimTime fired = SimTime::zero();
    q.schedule(us(100), 0, [&] {
        q.schedule(us(1), 0, [&] { fired = q.now(); });  // "1us" is long gone
    });
    while (q.run_one()) {
    }
    EXPECT_EQ(fired.micros, 100);
}

TEST(EventQueue, CancelledEventsDoNotFire) {
    EventQueue q;
    int fired = 0;
    const auto id = q.schedule(us(10), 0, [&] { ++fired; });
    q.schedule(us(20), 0, [&] { ++fired; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));  // already cancelled
    EXPECT_EQ(q.pending(), 1u);
    while (q.run_one()) {
    }
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelOnEmptyQueueIsANoOp) {
    EventQueue q;
    EXPECT_FALSE(q.cancel(0));     // nothing was ever scheduled
    EXPECT_FALSE(q.cancel(12345)); // id from nowhere
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.run_one());
    EXPECT_TRUE(q.audit());
}

TEST(EventQueue, CancelOfAlreadyFiredIdFailsAndDoesNotTouchLaterEvents) {
    EventQueue q;
    int fired = 0;
    const auto first = q.schedule(us(10), 0, [&] { ++fired; });
    q.schedule(us(20), 0, [&] { ++fired; });
    ASSERT_TRUE(q.run_one());       // fires `first`
    EXPECT_FALSE(q.pending(first));
    EXPECT_FALSE(q.cancel(first));  // already ran: reject, ids are never reused
    EXPECT_EQ(q.pending(), 1u);     // the 20us event is untouched
    while (q.run_one()) {
    }
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CancelFromInsideAHandlerSuppressesALaterEvent) {
    EventQueue q;
    std::vector<int> order;
    const auto doomed = q.schedule(us(30), 0, [&] { order.push_back(3); });
    q.schedule(us(10), 0, [&] {
        order.push_back(1);
        EXPECT_TRUE(q.cancel(doomed));
    });
    q.schedule(us(20), 0, [&] { order.push_back(2); });
    while (q.run_one()) {
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(q.now().micros, 20);  // the cancelled tail never advances the clock
}

TEST(EventQueue, InterleavedScheduleAndCancelPreservesDeterministicOrder) {
    // Build the same surviving event set twice — once cancelling as we go,
    // once cancelling in reverse at the end — and check both runs fire the
    // survivors in the identical (time, priority, insertion) order, with the
    // cancellations leaving no trace.
    const auto build = [](bool cancel_late, std::vector<int>& order) {
        EventQueue q;
        std::vector<EventQueue::EventId> doomed;
        for (int i = 0; i < 50; ++i) {
            const auto id =
                q.schedule(us(10 + (i * 7) % 40), i % 3, [&, i] { order.push_back(i); });
            if (i % 2 == 1) {
                doomed.push_back(id);
                if (!cancel_late) EXPECT_TRUE(q.cancel(id));
            }
        }
        if (cancel_late)
            for (auto it = doomed.rbegin(); it != doomed.rend(); ++it)
                EXPECT_TRUE(q.cancel(*it));
        EXPECT_EQ(q.pending(), 25u);
        EXPECT_TRUE(q.audit());
        while (q.run_one()) {
        }
        EXPECT_TRUE(q.empty());
    };
    std::vector<int> eager, late;
    build(false, eager);
    build(true, late);
    ASSERT_EQ(eager.size(), 25u);
    EXPECT_EQ(eager, late);
    for (int i : eager) EXPECT_EQ(i % 2, 0);  // every odd event was cancelled
}

TEST(EventQueue, NextTimeSkipsCancelledEntries) {
    EventQueue q;
    const auto id = q.schedule(us(10), 0, [] {});
    q.schedule(us(50), 0, [] {});
    q.cancel(id);
    EXPECT_EQ(q.next_time().micros, 50);
}

TEST(EventQueue, RunOneOnEmptyQueueReturnsFalse) {
    EventQueue q;
    EXPECT_FALSE(q.run_one());
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ResetToSetsClockAndRejectsPendingEvents) {
    EventQueue q;
    q.reset_to(us(500));
    EXPECT_EQ(q.now().micros, 500);
    q.schedule(us(600), 0, [] {});
    EXPECT_THROW(q.reset_to(us(0)), std::logic_error);
}

TEST(EventQueue, HandlersMayScheduleFurtherEvents) {
    EventQueue q;
    std::vector<std::int64_t> times;
    q.schedule(us(10), 0, [&] {
        times.push_back(q.now().micros);
        q.schedule(q.now() + us(15), 0, [&] { times.push_back(q.now().micros); });
    });
    while (q.run_one()) {
    }
    EXPECT_EQ(times, (std::vector<std::int64_t>{10, 25}));
}

// --------------------------------------------------------------------------
// SimResource
// --------------------------------------------------------------------------

SimResource::Job fixed_job(SimTime duration, std::vector<std::int64_t>& completions,
                           EventQueue& q, std::int64_t tag = 0) {
    SimResource::Job job;
    job.on_start = [duration](std::size_t) { return duration; };
    job.on_complete = [&completions, &q, tag](std::size_t) {
        completions.push_back(tag ? tag : q.now().micros);
    };
    return job;
}

TEST(SimResource, SingleChannelServesSerially) {
    EventQueue q;
    SimResource disk(q, 1, 0);
    std::vector<std::int64_t> done;
    disk.submit(fixed_job(us(10), done, q));
    disk.submit(fixed_job(us(5), done, q));  // queues behind the first
    EXPECT_EQ(disk.busy_channels(), 1u);
    EXPECT_EQ(disk.queued(), 1u);
    while (q.run_one()) {
    }
    EXPECT_EQ(done, (std::vector<std::int64_t>{10, 15}));
    EXPECT_TRUE(disk.idle());
}

TEST(SimResource, TwoChannelsServeInParallel) {
    EventQueue q;
    SimResource disk(q, 2, 0);
    std::vector<std::int64_t> done;
    disk.submit(fixed_job(us(10), done, q));
    disk.submit(fixed_job(us(10), done, q));
    EXPECT_EQ(disk.busy_channels(), 2u);
    EXPECT_EQ(disk.queued(), 0u);
    while (q.run_one()) {
    }
    // Both finish at t=10, not t=10 and t=20.
    EXPECT_EQ(done, (std::vector<std::int64_t>{10, 10}));
}

TEST(SimResource, WaitingQueueServesLowerPriorityClassFirst) {
    EventQueue q;
    SimResource disk(q, 1, 0);
    std::vector<std::int64_t> done;
    disk.submit(fixed_job(us(10), done, q, 1));  // occupies the channel
    auto low = fixed_job(us(10), done, q, 3);
    low.priority = 1;
    disk.submit(std::move(low));
    auto high = fixed_job(us(10), done, q, 2);
    high.priority = 0;  // submitted later, but a more urgent class
    disk.submit(std::move(high));
    while (q.run_one()) {
    }
    EXPECT_EQ(done, (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(SimResource, ServiceDurationDecidedAtStartNotSubmission) {
    // on_start runs when the channel begins service — a disk read's cost
    // depends on where the head is *then*, not at submission.
    EventQueue q;
    SimResource disk(q, 1, 0);
    std::vector<std::int64_t> done;
    SimTime second_duration = us(100);
    disk.submit(fixed_job(us(10), done, q));
    SimResource::Job job;
    job.on_start = [&second_duration](std::size_t) { return second_duration; };
    job.on_complete = [&done, &q](std::size_t) { done.push_back(q.now().micros); };
    disk.submit(std::move(job));
    second_duration = us(7);  // changed while the job waits in queue
    while (q.run_one()) {
    }
    EXPECT_EQ(done, (std::vector<std::int64_t>{10, 17}));
}

TEST(SimResource, NonPreemptibleJobPreemptsPreemptibleMidService) {
    EventQueue q;
    SimResource disk(q, 1, 0);
    std::vector<std::int64_t> done;
    SimTime abort_remaining = SimTime::zero();
    std::int64_t abort_at = -1;
    SimResource::Job spec;
    spec.preemptible = true;
    spec.priority = 1;
    spec.on_start = [](std::size_t) { return us(100); };
    spec.on_complete = [&done, &q](std::size_t) { done.push_back(-1); };
    spec.on_abort = [&](std::size_t, SimTime remaining) {
        abort_remaining = remaining;
        abort_at = q.now().micros;
    };
    disk.submit(std::move(spec));
    q.schedule(us(40), 0, [&] { disk.submit(fixed_job(us(10), done, q)); });
    while (q.run_one()) {
    }
    EXPECT_EQ(abort_at, 40);                    // preempted on demand arrival
    EXPECT_EQ(abort_remaining.micros, 60);      // 100 - 40 not rendered
    EXPECT_EQ(done, (std::vector<std::int64_t>{50}));  // demand runs 40..50
}

TEST(SimResource, NonPreemptibleJobsAreNeverPreempted) {
    EventQueue q;
    SimResource disk(q, 1, 0);
    std::vector<std::int64_t> done;
    disk.submit(fixed_job(us(100), done, q));   // non-preemptible by default
    q.schedule(us(40), 0, [&] { disk.submit(fixed_job(us(10), done, q)); });
    while (q.run_one()) {
    }
    EXPECT_EQ(done, (std::vector<std::int64_t>{100, 110}));
}

TEST(SimResource, BusyChannelTimeIntegratesAcrossChannels) {
    EventQueue q;
    SimResource disk(q, 2, 0);
    std::vector<std::int64_t> done;
    disk.submit(fixed_job(us(10), done, q));
    disk.submit(fixed_job(us(30), done, q));
    while (q.run_one()) {
    }
    // Channel 0 busy for 10us, channel 1 for 30us.
    EXPECT_EQ(disk.busy_channel_time().micros, 40);
}

TEST(SimResource, IdleHookFiresWhenAChannelFreesWithEmptyQueue) {
    EventQueue q;
    SimResource disk(q, 1, 0);
    std::vector<std::int64_t> done;
    std::vector<std::int64_t> idle_at;
    disk.set_idle_hook([&] { idle_at.push_back(q.now().micros); });
    disk.submit(fixed_job(us(10), done, q));
    disk.submit(fixed_job(us(5), done, q));
    while (q.run_one()) {
    }
    // Not at t=10 (a job was waiting) — only at t=15 when the queue is empty.
    EXPECT_EQ(idle_at, (std::vector<std::int64_t>{15}));
}

TEST(SimResource, ObserverSeesTheOldBusyCount) {
    EventQueue q;
    SimResource disk(q, 1, 0);
    std::vector<std::size_t> observed;
    disk.set_observer([&] { observed.push_back(disk.busy_channels()); });
    std::vector<std::int64_t> done;
    disk.submit(fixed_job(us(10), done, q));
    while (q.run_one()) {
    }
    // Before start: 0 busy; before completion: 1 busy.
    EXPECT_EQ(observed, (std::vector<std::size_t>{0, 1}));
}

TEST(SimResource, ZeroChannelsRejected) {
    EventQueue q;
    EXPECT_THROW(SimResource(q, 0, 0), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Explicit cancellation (SimResource::cancel — hedged-read straggler path)
// --------------------------------------------------------------------------

TEST(SimResource, CancelInServiceJobRunsOnAbortWithRemainder) {
    EventQueue q;
    SimResource disk(q, 1, 0);
    std::vector<std::int64_t> done;
    std::int64_t aborted_remaining = -1;
    SimResource::Job job = fixed_job(us(100), done, q);
    job.on_abort = [&](std::size_t, SimTime remaining) {
        aborted_remaining = remaining.micros;
    };
    const SimResource::JobId id = disk.submit(std::move(job));
    q.schedule(us(30), 0, [&] { EXPECT_TRUE(disk.cancel(id)); });
    while (q.run_one()) {
    }
    EXPECT_TRUE(done.empty());             // on_complete never ran
    EXPECT_EQ(aborted_remaining, 70);      // 100 - 30 unrendered
    EXPECT_TRUE(disk.idle());
    EXPECT_TRUE(disk.audit());
    EXPECT_TRUE(q.audit());
}

TEST(SimResource, CancelWaitingJobIsSilentAndCancelOfResolvedReturnsFalse) {
    EventQueue q;
    SimResource disk(q, 1, 0);
    std::vector<std::int64_t> done;
    const SimResource::JobId first = disk.submit(fixed_job(us(10), done, q, 1));
    bool waiting_aborted = false;
    SimResource::Job waiting = fixed_job(us(10), done, q, 2);
    waiting.on_abort = [&](std::size_t, SimTime) { waiting_aborted = true; };
    const SimResource::JobId second = disk.submit(std::move(waiting));
    EXPECT_TRUE(disk.cancel(second));   // removed from the queue silently
    EXPECT_FALSE(waiting_aborted);      // service never started
    while (q.run_one()) {
    }
    EXPECT_EQ(done, (std::vector<std::int64_t>{1}));
    EXPECT_FALSE(disk.cancel(first));   // already completed
    EXPECT_FALSE(disk.cancel(second));  // already cancelled
    EXPECT_TRUE(disk.audit());
}

TEST(SimResource, CancelBackfillsTheFreedChannelFromTheQueue) {
    EventQueue q;
    SimResource disk(q, 1, 0);
    std::vector<std::int64_t> done;
    const SimResource::JobId head = disk.submit(fixed_job(us(100), done, q, 1));
    disk.submit(fixed_job(us(5), done, q, 2));  // waits behind the head
    q.schedule(us(10), 0, [&] { disk.cancel(head); });
    while (q.run_one()) {
    }
    // The waiting job started at the cancel instant and ran to completion.
    EXPECT_EQ(done, (std::vector<std::int64_t>{2}));
    EXPECT_EQ(q.now().micros, 15);
    EXPECT_TRUE(disk.audit());
}

TEST(SimResource, HedgePairRaceAtExactCompletionTickHasOneWinner) {
    // The hedged-read race: primary and hedge finish at the same virtual
    // instant. Whichever completion event fires first (FIFO on equal time
    // and priority: the primary's) cancels the other; exactly one
    // on_complete runs, the loser's on_abort sees zero remaining, and both
    // kernel audits stay clean — no double-completion, no dangling event.
    EventQueue q;
    SimResource disk(q, 2, 0);
    int completions = 0;
    int aborts = 0;
    SimResource::JobId primary = 0, hedge = 0;
    std::int64_t abort_remaining = -1;

    SimResource::Job a;
    a.on_start = [](std::size_t) { return us(50); };
    a.on_complete = [&](std::size_t) {
        ++completions;
        EXPECT_TRUE(disk.cancel(hedge));  // loser cancelled at the same tick
    };
    a.on_abort = [&](std::size_t, SimTime r) {
        ++aborts;
        abort_remaining = r.micros;
    };
    SimResource::Job b;
    b.on_start = [](std::size_t) { return us(50); };
    b.on_complete = [&](std::size_t) {
        ++completions;
        EXPECT_TRUE(disk.cancel(primary));
    };
    b.on_abort = [&](std::size_t, SimTime r) {
        ++aborts;
        abort_remaining = r.micros;
    };
    primary = disk.submit(std::move(a));
    hedge = disk.submit(std::move(b));
    while (q.run_one()) {
    }
    EXPECT_EQ(completions, 1);      // exactly one winner
    EXPECT_EQ(aborts, 1);           // exactly one cancelled loser
    EXPECT_EQ(abort_remaining, 0);  // fully rendered, cancelled at the wire
    EXPECT_TRUE(disk.idle());
    EXPECT_TRUE(disk.audit());
    EXPECT_TRUE(q.audit());
}

TEST(SimResource, CancelUnknownIdReturnsFalse) {
    EventQueue q;
    SimResource disk(q, 1, 0);
    EXPECT_FALSE(disk.cancel(0));
    EXPECT_FALSE(disk.cancel(12345));
}

// --------------------------------------------------------------------------
// Same-tick cancel + repost interleavings. A handler cancelling a sibling
// scheduled at the *current* instant and immediately reposting is the
// schedule class the program fuzzer (fuzz/fuzz_event_queue.cpp) exercises
// hardest; these pin the documented golden orders.
// --------------------------------------------------------------------------

TEST(EventQueue, SameTickCancelAndRepostJoinsTheTickTail) {
    EventQueue q;
    std::vector<std::string> order;
    EventQueue::EventId c = 0;
    // `a` fires first, cancels `c` (same tick, same priority) and reposts a
    // replacement `d` at that tick. The replacement takes a fresh insertion
    // rank — it joins the tail of the tick behind `b`, never re-occupying
    // the cancelled slot.
    q.schedule(us(10), 1, [&] {
        order.push_back("a");
        EXPECT_TRUE(q.cancel(c));
        q.schedule(us(10), 1, [&] { order.push_back("d"); });
    });
    q.schedule(us(10), 1, [&] { order.push_back("b"); });
    c = q.schedule(us(10), 1, [&] { order.push_back("c"); });
    while (q.run_one()) {
    }
    EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "d"}));
    EXPECT_EQ(q.now().micros, 10);  // all of it happened at one instant
    EXPECT_TRUE(q.audit());
}

TEST(EventQueue, SameTickRepostAtHigherPriorityOvertakesRemainingSiblings) {
    EventQueue q;
    std::vector<std::string> order;
    EventQueue::EventId doomed = 0;
    q.schedule(us(10), 2, [&] {
        order.push_back("first");
        EXPECT_TRUE(q.cancel(doomed));
        // Lower priority value sorts earlier: the repost runs at this tick
        // *before* the remaining priority-2 siblings.
        q.schedule(us(10), 1, [&] { order.push_back("repost"); });
    });
    q.schedule(us(10), 2, [&] { order.push_back("second"); });
    doomed = q.schedule(us(10), 2, [&] { order.push_back("doomed"); });
    while (q.run_one()) {
    }
    EXPECT_EQ(order, (std::vector<std::string>{"first", "repost", "second"}));
}

TEST(EventQueue, CancelRepostChurnAtOneTickIsDeterministic) {
    // A chain of handlers at one instant, each cancelling the next pending
    // sibling and reposting a replacement. Run the program twice: the full
    // firing order is golden and the queue drains clean both times.
    const auto run = [] {
        EventQueue q;
        std::vector<int> order;
        std::vector<EventQueue::EventId> ids;
        for (int i = 0; i < 8; ++i) {
            ids.push_back(q.schedule(us(5), 1, [&, i] {
                order.push_back(i);
                // Cancel the next still-pending original (if any) and repost
                // a tagged replacement at the same tick.
                for (std::size_t j = static_cast<std::size_t>(i) + 1;
                     j < ids.size(); ++j) {
                    if (q.cancel(ids[j])) {
                        q.schedule(us(5), 1,
                                   [&order, j] { order.push_back(100 + static_cast<int>(j)); });
                        break;
                    }
                }
            }));
        }
        while (q.run_one()) {
        }
        EXPECT_TRUE(q.empty());
        EXPECT_TRUE(q.audit());
        return order;
    };
    const std::vector<int> first = run();
    const std::vector<int> second = run();
    EXPECT_EQ(first, second);
    // Golden: 0 cancels 1 and reposts 101; 2 cancels 3, reposts 103; ... the
    // reposts land behind the surviving originals, and each repost fires
    // after every original (reposts themselves cancel nothing).
    EXPECT_EQ(first, (std::vector<int>{0, 2, 4, 6, 101, 103, 105, 107}));
}

TEST(SimResource, SameTickCancelAndResubmitBackfillsAtOneInstant) {
    // Cancel an in-service job and resubmit its replacement from the same
    // event handler: the channel frees and re-fills at one virtual instant,
    // with the replacement's completion priced from the cancel tick.
    EventQueue q;
    SimResource disk(q, 1, 0);
    std::vector<std::int64_t> done;
    std::int64_t abort_remaining = -1;
    SimResource::Job head = fixed_job(us(100), done, q, 1);
    head.on_abort = [&](std::size_t, SimTime remaining) {
        abort_remaining = remaining.micros;
    };
    const SimResource::JobId id = disk.submit(std::move(head));
    q.schedule(us(40), 0, [&] {
        EXPECT_TRUE(disk.cancel(id));
        disk.submit(fixed_job(us(10), done, q, 2));
    });
    while (q.run_one()) {
    }
    EXPECT_EQ(abort_remaining, 60);  // 100 - 40 unrendered
    EXPECT_EQ(done, (std::vector<std::int64_t>{2}));
    EXPECT_EQ(q.now().micros, 50);  // replacement started at 40, ran 10
    EXPECT_TRUE(disk.idle());
    EXPECT_TRUE(disk.audit());
    EXPECT_TRUE(q.audit());
}

TEST(SimResource, CancelResubmitChurnAtOneTickKeepsConservation) {
    // Fuzz-shaped churn, pinned: at one instant, cancel a waiting job, the
    // in-service job, and resubmit two replacements on a two-channel
    // resource. Every started job resolves exactly once and the audits hold.
    EventQueue q;
    SimResource disk(q, 2, 0);
    std::vector<std::int64_t> done;
    const SimResource::JobId a = disk.submit(fixed_job(us(100), done, q, 1));
    disk.submit(fixed_job(us(100), done, q, 2));
    const SimResource::JobId c = disk.submit(fixed_job(us(100), done, q, 3));
    q.schedule(us(25), 0, [&] {
        EXPECT_TRUE(disk.cancel(c));  // still waiting: silent discard
        EXPECT_TRUE(disk.cancel(a));  // in service: aborts, channel backfills
        disk.submit(fixed_job(us(5), done, q, 4));
        disk.submit(fixed_job(us(15), done, q, 5));
    });
    while (q.run_one()) {
    }
    // Channel freed by `a` takes job 4 at t=25 (done 30), then job 5 at 30
    // (done 45); job 2 runs to its natural completion at t=100.
    EXPECT_EQ(done, (std::vector<std::int64_t>{4, 5, 2}));
    EXPECT_EQ(q.now().micros, 100);
    EXPECT_TRUE(disk.idle());
    EXPECT_TRUE(disk.audit());
    EXPECT_TRUE(q.audit());
}

}  // namespace
}  // namespace jaws::util
