// Multithreaded stress cases for the annotated concurrency layer.
//
// These tests exist primarily as ThreadSanitizer targets (the `tsan` preset
// runs the full suite): they force real contention on every mutex-protected
// structure this repository owns — the thread pool's queue, the logger's
// sink, and the cluster facade's node fan-out — so data races surface as
// TSan reports instead of flaky goldens. They also pin the determinism
// contract that motivates the whole layer: concurrent runs of the same
// configuration must produce bit-identical reports.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "core/cluster.h"
#include "core/engine.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "workload/generator.h"

namespace jaws {
namespace {

/// Mutex-guarded counter exercising util::Mutex/MutexLock under contention.
class GuardedCounter {
  public:
    void add(std::uint64_t v) {
        util::MutexLock lock(mu_);
        value_ += v;
    }
    std::uint64_t get() {
        util::MutexLock lock(mu_);
        return value_;
    }

  private:
    util::Mutex mu_;
    std::uint64_t value_ GUARDED_BY(mu_) = 0;
};

TEST(ThreadStress, OversubscribedPoolHammersOneGuardedCounter) {
    // Far more workers than cores, all incrementing the same guarded
    // counter: maximal lock contention plus constant queue churn.
    util::ThreadPool pool(32);
    GuardedCounter counter;
    constexpr int kTasks = 4000;
    for (int i = 0; i < kTasks; ++i) pool.submit([&counter] { counter.add(1); });
    pool.wait_idle();
    EXPECT_EQ(counter.get(), static_cast<std::uint64_t>(kTasks));
}

TEST(ThreadStress, ConcurrentProducersAgainstDrainingDestructor) {
    // N producer threads race submissions into the pool; the pool is then
    // destroyed while much of the queue is still outstanding. The destructor
    // contract: every task submitted before ~ThreadPool begins still runs.
    std::atomic<int> ran{0};
    constexpr int kProducers = 8;
    constexpr int kPerProducer = 200;
    {
        util::ThreadPool pool(4);
        std::vector<std::thread> producers;
        producers.reserve(kProducers);
        for (int p = 0; p < kProducers; ++p) {
            producers.emplace_back([&pool, &ran] {
                for (int i = 0; i < kPerProducer; ++i)
                    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
            });
        }
        for (auto& t : producers) t.join();
        // Pool destructor runs here, with tasks still queued on 4 workers.
    }
    EXPECT_EQ(ran.load(), kProducers * kPerProducer);
}

TEST(ThreadStress, WaitIdleRacesActiveWorkers) {
    util::ThreadPool pool(8);
    std::atomic<int> done{0};
    for (int round = 0; round < 20; ++round) {
        for (int i = 0; i < 64; ++i) {
            pool.submit([&done] {
                std::this_thread::sleep_for(std::chrono::microseconds(50));
                done.fetch_add(1, std::memory_order_relaxed);
            });
        }
        pool.wait_idle();
        EXPECT_EQ(done.load(), (round + 1) * 64);
    }
}

std::atomic<std::uint64_t> g_sink_records{0};

void counting_sink(util::LogLevel, std::string_view, std::string_view) {
    g_sink_records.fetch_add(1, std::memory_order_relaxed);
}

TEST(ThreadStress, ConcurrentLoggingThroughGuardedSink) {
    g_sink_records.store(0);
    util::set_log_sink(&counting_sink);
    util::set_log_level(util::LogLevel::kWarn);
    constexpr int kThreads = 8;
    constexpr int kLines = 250;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            for (int i = 0; i < kLines; ++i)
                JAWS_LOG_WARN("stress", "thread %d line %d", t, i);
        });
    }
    for (auto& t : threads) t.join();
    util::set_log_sink(nullptr);
    util::set_log_level(util::LogLevel::kWarn);
    EXPECT_EQ(g_sink_records.load(), static_cast<std::uint64_t>(kThreads * kLines));
}

core::ClusterConfig stress_cluster_config() {
    core::ClusterConfig config;
    // Pinned to the legacy per-node path: this test exists to race N node
    // engines on a thread pool (nested parallelism); the unified kernel is
    // single-threaded per run and is covered by cluster_equivalence_test.
    config.mode = core::ClusterMode::kLegacy;
    config.nodes = 4;
    config.replication = 2;
    config.node.grid.voxels_per_side = 128;
    config.node.grid.atom_side = 32;
    config.node.grid.timesteps = 4;
    config.node.field.modes = 4;
    config.node.cache.capacity_atoms = 16;
    config.node.run_length = 25;
    // Kill a node mid-run so the failover/recovery path runs concurrently
    // with the surviving nodes' engines.
    config.node.faults.node_down.push_back(
        storage::NodeDownEvent{util::NodeIndex{1}, util::SimTime::from_seconds(30.0)});
    return config;
}

workload::Workload stress_cluster_workload(const core::ClusterConfig& config) {
    workload::WorkloadSpec spec;
    spec.jobs = 16;
    spec.seed = 21;
    const field::SyntheticField field(config.node.field);
    return workload::generate_workload(spec, config.node.grid, field);
}

TEST(ThreadStress, ParallelClusterRunsAreRaceFreeAndIdentical) {
    // Two whole cluster runs execute concurrently, each fanning its node
    // engines out on its own thread pool (nested parallelism), while this
    // thread runs a third. Determinism contract: all three reports are
    // bit-identical even though their interleavings differ completely.
    const core::ClusterConfig config = stress_cluster_config();
    const workload::Workload workload = stress_cluster_workload(config);

    core::ClusterReport a, b;
    std::thread ta([&] {
        const core::TurbulenceCluster cluster(config);
        a = cluster.run(workload);
    });
    std::thread tb([&] {
        const core::TurbulenceCluster cluster(config);
        b = cluster.run(workload);
    });
    const core::TurbulenceCluster cluster(config);
    const core::ClusterReport c = cluster.run(workload);
    ta.join();
    tb.join();

    ASSERT_GT(c.makespan.micros, 0);
    EXPECT_EQ(a.makespan.micros, c.makespan.micros);
    EXPECT_EQ(b.makespan.micros, c.makespan.micros);
    EXPECT_EQ(a.dead_nodes, c.dead_nodes);
    EXPECT_EQ(b.failovers, c.failovers);
    EXPECT_EQ(a.requeued_queries, c.requeued_queries);
    EXPECT_DOUBLE_EQ(a.total_throughput_qps, c.total_throughput_qps);
    EXPECT_DOUBLE_EQ(b.mean_response_ms, c.mean_response_ms);
    ASSERT_EQ(a.per_node.size(), c.per_node.size());
    for (std::size_t n = 0; n < c.per_node.size(); ++n) {
        EXPECT_EQ(a.per_node[n].makespan.micros, c.per_node[n].makespan.micros);
        EXPECT_EQ(b.per_node[n].cache.hits, c.per_node[n].cache.hits);
        EXPECT_EQ(a.per_node[n].cache.policy_overhead_ns,
                  c.per_node[n].cache.policy_overhead_ns)
            << "virtual-tick overhead accounting must be reproducible";
    }
}

core::EngineConfig eval_stress_config() {
    core::EngineConfig c;
    c.grid.voxels_per_side = 128;
    c.grid.atom_side = 32;
    c.grid.timesteps = 4;
    c.field.modes = 4;
    c.cache.capacity_atoms = 16;
    c.run_length = 25;
    c.io_depth = 2;
    c.compute_workers = 4;
    c.materialize_data = true;  // real payloads so evaluation hits the pool
    return c;
}

workload::Workload eval_stress_workload(const core::EngineConfig& c) {
    workload::WorkloadSpec spec;
    spec.jobs = 6;
    spec.seed = 9;
    spec.max_positions = 400;
    const field::SyntheticField field(c.field);
    workload::Workload w = workload::generate_workload(spec, c.grid, field);
    workload::materialize_positions(w, c.grid, /*seed=*/13);
    return w;
}

TEST(ThreadStress, ConcurrentEnginesSharingOneEvalPoolStayBitIdentical) {
    // Three engines run concurrently, all dispatching real sub-query
    // interpolation onto ONE shared evaluation pool, while a fourth engine
    // evaluates everything inline on this thread as the reference. The
    // shared queue interleaves tasks from unrelated engines arbitrarily;
    // the deterministic reduction (join at the modeled completion event)
    // must make every report bit-identical to the inline reference anyway.
    core::EngineConfig cfg = eval_stress_config();
    const workload::Workload work = eval_stress_workload(cfg);

    core::EngineConfig inline_cfg = cfg;
    inline_cfg.eval.parallel = false;
    core::Engine reference(inline_cfg);
    const core::RunReport ref = reference.run(work);
    ASSERT_GT(ref.samples_evaluated, 0u);

    util::ThreadPool shared(4);
    cfg.eval.pool = &shared;
    constexpr int kEngines = 3;
    std::vector<core::RunReport> reports(kEngines);
    std::vector<std::thread> runners;
    runners.reserve(kEngines);
    for (int e = 0; e < kEngines; ++e)
        runners.emplace_back([&cfg, &work, &reports, e] {
            core::Engine engine(cfg);
            reports[static_cast<std::size_t>(e)] = engine.run(work);
        });
    for (auto& t : runners) t.join();

    for (int e = 0; e < kEngines; ++e) {
        const core::RunReport& r = reports[static_cast<std::size_t>(e)];
        EXPECT_GT(r.eval_tasks, 0u) << "engine " << e << " never used the pool";
        EXPECT_EQ(r.makespan.micros, ref.makespan.micros);
        EXPECT_EQ(r.samples_evaluated, ref.samples_evaluated);
        EXPECT_EQ(r.sample_digest, ref.sample_digest);
        EXPECT_EQ(r.cache.hits, ref.cache.hits);
        EXPECT_EQ(r.atom_reads, ref.atom_reads);
        EXPECT_EQ(r.subqueries, ref.subqueries);
    }
}

TEST(ThreadStress, RepeatedPooledEngineRunsAreBitIdentical) {
    // Back-to-back pooled runs of the same configuration: real-thread
    // interleaving differs every time, the reports must not. Two rounds
    // rather than many keeps the tsan run inside its time budget.
    const core::EngineConfig cfg = eval_stress_config();
    const workload::Workload work = eval_stress_workload(cfg);
    core::Engine first(cfg);
    const core::RunReport r1 = first.run(work);
    core::Engine second(cfg);
    const core::RunReport r2 = second.run(work);
    ASSERT_GT(r1.eval_tasks, 0u);
    ASSERT_GT(r1.samples_evaluated, 0u);
    EXPECT_EQ(r1.makespan.micros, r2.makespan.micros);
    EXPECT_EQ(r1.samples_evaluated, r2.samples_evaluated);
    EXPECT_EQ(r1.sample_digest, r2.sample_digest);
    EXPECT_EQ(r1.eval_tasks, r2.eval_tasks);
    EXPECT_EQ(r1.idle_time.micros, r2.idle_time.micros);
}

TEST(ThreadStress, CondVarPingPong) {
    // Direct Mutex/CondVar exercise: two threads alternate strictly via a
    // guarded turn flag, 500 rounds each way.
    struct Court {
        util::Mutex mu;
        util::CondVar cv;
        int turn GUARDED_BY(mu) = 0;
        int rallies GUARDED_BY(mu) = 0;
    } court;
    constexpr int kRallies = 1000;

    auto player = [&court](int me) {
        for (;;) {
            util::MutexLock lock(court.mu);
            while (court.turn != me && court.rallies < kRallies) court.cv.wait(court.mu);
            if (court.rallies >= kRallies) return;
            ++court.rallies;
            court.turn = 1 - me;
            court.cv.notify_all();
        }
    };
    std::thread a(player, 0), b(player, 1);
    a.join();
    b.join();
    util::MutexLock lock(court.mu);
    EXPECT_EQ(court.rallies, kRallies);
}

}  // namespace
}  // namespace jaws
