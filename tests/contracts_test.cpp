// Tests for the debug contract subsystem (util/contracts.h) and the audit()
// methods it reports through. Audits are always compiled — these tests run
// them directly in every build; JAWS_AUDIT_BUILD only adds the automatic
// invocation at state transitions (exercised by the audit CI preset running
// this same suite).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cache/buffer_cache.h"
#include "cache/lru.h"
#include "cache/lru_k.h"
#include "cache/slru.h"
#include "cache/two_q.h"
#include "cache/urc.h"
#include "sched/precedence_graph.h"
#include "sched/workload_manager.h"
#include "util/contracts.h"
#include "util/event_queue.h"

namespace jaws {
namespace {

// The handler is a plain function pointer, so captures go through globals.
std::uint64_t g_captured = 0;
std::string g_last_msg;

void capture_handler(const char*, int, const char*, const char* msg) {
    ++g_captured;
    g_last_msg = msg != nullptr ? msg : "";
}

/// Installs a counting handler for the test's scope so reported violations
/// are captured instead of aborting the process.
class HandlerGuard {
  public:
    HandlerGuard() : previous_(util::set_contract_handler(&capture_handler)) {
        g_captured = 0;
        g_last_msg.clear();
    }
    ~HandlerGuard() { util::set_contract_handler(previous_); }

  private:
    util::ContractHandler previous_;
};

TEST(Contracts, ViolationRoutesThroughInstalledHandlerAndCounts) {
    HandlerGuard guard;
    const std::uint64_t before = util::contract_violations();
    util::contract_violation("f.cpp", 1, "x == y", "test violation");
    EXPECT_EQ(g_captured, 1u);
    EXPECT_EQ(g_last_msg, "test violation");
    EXPECT_EQ(util::contract_violations(), before + 1);
}

TEST(Contracts, SetHandlerReturnsThePreviousOne) {
    const util::ContractHandler def = util::set_contract_handler(&capture_handler);
    EXPECT_EQ(util::set_contract_handler(def), &capture_handler);
}

TEST(Contracts, ContractCheckReportsOnlyWhenFalse) {
    HandlerGuard guard;
    EXPECT_TRUE(util::detail::contract_check(true, "f.cpp", 1, "ok", "unused"));
    EXPECT_EQ(g_captured, 0u);
    EXPECT_FALSE(util::detail::contract_check(false, "f.cpp", 2, "bad", "fired"));
    EXPECT_EQ(g_captured, 1u);
    EXPECT_EQ(g_last_msg, "fired");
}

TEST(Contracts, AuditCheckMacroIsCompiledInEveryBuild) {
    HandlerGuard guard;
    JAWS_AUDIT_CHECK(1 + 1 == 2, "arithmetic holds");
    EXPECT_EQ(g_captured, 0u);
    JAWS_AUDIT_CHECK(1 + 1 == 3, "arithmetic broke");
    EXPECT_EQ(g_captured, 1u);
}

// --------------------------------------------------------------------------
// EventQueue / SimResource audits
// --------------------------------------------------------------------------

util::SimTime us(std::int64_t n) { return util::SimTime::from_micros(n); }

TEST(Contracts, EventQueueAuditsCleanThroughScheduleCancelAndRun) {
    HandlerGuard guard;
    util::EventQueue q;
    EXPECT_TRUE(q.audit());
    std::vector<util::EventQueue::EventId> ids;
    for (int i = 0; i < 200; ++i) ids.push_back(q.schedule(us(1 + i % 17), i % 3, [] {}));
    EXPECT_TRUE(q.audit());
    for (std::size_t i = 0; i < ids.size(); i += 3) EXPECT_TRUE(q.cancel(ids[i]));
    EXPECT_TRUE(q.audit());
    int steps = 0;
    while (q.run_one()) {
        if (++steps % 10 == 0) EXPECT_TRUE(q.audit());
    }
    EXPECT_TRUE(q.audit());
    EXPECT_EQ(g_captured, 0u);
}

TEST(Contracts, EventQueuePendingTracksIdLifecycle) {
    util::EventQueue q;
    const auto id = q.schedule(us(10), 0, [] {});
    EXPECT_TRUE(q.pending(id));
    ASSERT_TRUE(q.run_one());
    EXPECT_FALSE(q.pending(id));
    const auto cancelled = q.schedule(us(20), 0, [] {});
    q.cancel(cancelled);
    EXPECT_FALSE(q.pending(cancelled));
}

TEST(Contracts, SimResourceAuditsCleanMidService) {
    HandlerGuard guard;
    util::EventQueue q;
    util::SimResource disk(q, 2, 0);
    EXPECT_TRUE(disk.audit());
    for (int i = 0; i < 6; ++i) {
        util::SimResource::Job job;
        job.on_start = [](std::size_t) { return us(10); };
        job.on_complete = [](std::size_t) {};
        disk.submit(std::move(job));
        EXPECT_TRUE(disk.audit());
    }
    while (q.run_one()) EXPECT_TRUE(disk.audit());
    EXPECT_TRUE(disk.idle());
    EXPECT_TRUE(disk.audit());
    EXPECT_EQ(g_captured, 0u);
}

// --------------------------------------------------------------------------
// BufferCache audits (every policy)
// --------------------------------------------------------------------------

/// Constant-utility oracle for URC (the policy only needs *an* oracle).
class FlatOracle final : public cache::UtilityOracle {
  public:
    double atom_utility(const storage::AtomId& atom) const override {
        return static_cast<double>(atom.morton % 7);
    }
    double timestep_mean_utility(std::uint32_t) const override { return 3.0; }
};

FlatOracle& flat_oracle() {
    static FlatOracle oracle;
    return oracle;
}

std::vector<std::unique_ptr<cache::ReplacementPolicy>> all_policies() {
    std::vector<std::unique_ptr<cache::ReplacementPolicy>> out;
    out.push_back(std::make_unique<cache::LruPolicy>());
    out.push_back(std::make_unique<cache::LruKPolicy>(2));
    out.push_back(std::make_unique<cache::SlruPolicy>(8));
    out.push_back(std::make_unique<cache::TwoQPolicy>(8));
    out.push_back(std::make_unique<cache::UrcPolicy>(flat_oracle()));
    return out;
}

TEST(Contracts, BufferCacheAuditsCleanAcrossEveryPolicy) {
    HandlerGuard guard;
    for (auto& policy : all_policies()) {
        const std::string name = policy->name();
        SCOPED_TRACE(name);
        cache::BufferCache cache(8, std::move(policy));
        // Mixed churn: admissions past capacity (evictions), re-touches,
        // run boundaries (SLRU promotion points), a stats reset (must not
        // unbalance the conservation ledger), and a full clear.
        for (std::uint64_t i = 0; i < 64; ++i) {
            const storage::AtomId a{static_cast<std::uint32_t>(i % 4), i % 24};
            if (!cache.lookup(a)) cache.insert(a);
            if (i % 16 == 15) cache.run_boundary();
            if (i == 40) cache.reset_stats();
            ASSERT_TRUE(cache.audit());
        }
        cache.clear();
        EXPECT_TRUE(cache.audit());
        EXPECT_EQ(cache.size(), 0u);
    }
    EXPECT_EQ(g_captured, 0u);
}

// --------------------------------------------------------------------------
// PrecedenceGraph / WorkloadManager audits
// --------------------------------------------------------------------------

workload::Job ordered_chain(workload::JobId id, std::initializer_list<std::uint64_t> regions) {
    workload::Job j;
    j.id = id;
    j.type = workload::JobType::kOrdered;
    std::uint32_t seq = 0;
    for (const std::uint64_t r : regions) {
        workload::Query q;
        q.id = id * 1000 + seq;
        q.job = id;
        q.seq_in_job = seq++;
        q.timestep = 0;
        q.footprint.push_back(workload::AtomRequest{{0, r}, 10});
        j.queries.push_back(std::move(q));
    }
    return j;
}

TEST(Contracts, PrecedenceGraphAuditsCleanThroughGatedLifecycle) {
    HandlerGuard guard;
    sched::PrecedenceGraph g(true);
    const workload::Job a = ordered_chain(1, {10, 20, 30});
    const workload::Job b = ordered_chain(2, {10, 20, 30});
    g.add_job(a);
    EXPECT_TRUE(g.audit());
    g.add_job(b);
    EXPECT_TRUE(g.audit());
    for (const auto& job : {a, b}) {
        for (const auto& query : job.queries) {
            g.on_query_visible(query.id);
            EXPECT_TRUE(g.audit());
        }
    }
    for (const auto& job : {a, b}) {
        for (const auto& query : job.queries) {
            g.on_query_done(query.id);
            EXPECT_TRUE(g.audit());
        }
    }
    EXPECT_EQ(g_captured, 0u);
}

sched::SubQuery pending_sub(workload::QueryId q, storage::AtomId a, std::uint64_t positions,
                            double enqueue_ms, double deadline_ms = -1.0) {
    sched::SubQuery s;
    s.query = q;
    s.atom = a;
    s.positions = positions;
    s.enqueue_time = util::SimTime::from_millis(enqueue_ms);
    if (deadline_ms >= 0.0) s.deadline = util::SimTime::from_millis(deadline_ms);
    return s;
}

TEST(Contracts, WorkloadManagerAuditsCleanThroughQueueChurn) {
    HandlerGuard guard;
    sched::CostConstants cost;
    cost.atoms_per_step = 64;
    sched::WorkloadManager m(cost, nullptr, 0.25);
    EXPECT_TRUE(m.audit());
    for (std::uint64_t i = 0; i < 48; ++i) {
        const storage::AtomId a{static_cast<std::uint32_t>(i % 3), i % 12};
        const double deadline = (i % 5 == 0) ? 1000.0 + static_cast<double>(i) : -1.0;
        m.enqueue(pending_sub(i, a, 100 + i * 7, static_cast<double>(i), deadline));
        ASSERT_TRUE(m.audit());
    }
    m.drain_atom(storage::AtomId{0, 0});
    EXPECT_TRUE(m.audit());
    m.on_residency_changed(storage::AtomId{1, 1});
    EXPECT_TRUE(m.audit());
    m.set_alpha(0.75);  // rebuilds the ordered index
    EXPECT_TRUE(m.audit());
    while (const auto best = m.pick_best_atom()) {
        m.drain_atom(*best);
        ASSERT_TRUE(m.audit());
    }
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(g_captured, 0u);
}

}  // namespace
}  // namespace jaws
