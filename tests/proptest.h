// Header-only deterministic property-testing harness.
//
// A property is a function of a Gen (a recorded stream of 64-bit choices)
// returning an empty string when it holds and a failure description when it
// does not. check() runs the property over `cases` generated choice streams
// — every stream derived from the fixed seed, no wall clock, no ambient
// randomness, so a failing case reproduces bit-identically forever — and on
// failure *shrinks* the recorded choices (bounded passes of truncation,
// zeroing and halving; a Gen replaying a shortened stream reads zeros past
// the end, so every shrunk stream is still a valid case) before reporting
// the minimal counterexample it kept.
//
// The harness lives in tests/ on purpose: it is test infrastructure, not
// simulation code, and src/ stays free of test-only machinery.
#pragma once

#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "util/rng.h"

namespace jaws::proptest {

/// Recorded (or replayed) stream of primitive choices.
class Gen {
  public:
    /// Recording mode: draw fresh choices from a seeded stream.
    explicit Gen(std::uint64_t seed) : rng_(seed), record_(true) {}

    /// Replay mode: read back a recorded (possibly shrunk) stream; reads
    /// past the end yield zero, so truncation always replays cleanly.
    explicit Gen(std::vector<std::uint64_t> choices)
        : rng_(0), record_(false), choices_(std::move(choices)) {}

    std::uint64_t u64() {
        if (record_) {
            choices_.push_back(rng_());
            return choices_.back();
        }
        return pos_ < choices_.size() ? choices_[pos_++] : 0;
    }

    bool boolean() { return (u64() & 1) != 0; }

    /// Uniform-ish value in [0, n); 0 when n == 0.
    std::uint64_t below(std::uint64_t n) { return n ? u64() % n : 0; }

    /// Uniform-ish value in the closed range [lo, hi].
    std::int64_t in_range(std::int64_t lo, std::int64_t hi) {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /// Double in [0, 1) from 53 mantissa bits.
    double unit() { return static_cast<double>(u64() >> 11) * 0x1.0p-53; }

    /// Double in [lo, hi).
    double in_real(double lo, double hi) { return lo + (hi - lo) * unit(); }

    const std::vector<std::uint64_t>& choices() const { return choices_; }

  private:
    util::Rng rng_;
    bool record_;
    std::vector<std::uint64_t> choices_;
    std::size_t pos_ = 0;
};

struct Config {
    std::uint64_t seed = 0x5EED;  ///< Base seed; case i runs seed ^ mix(i).
    int cases = 200;              ///< Generated cases per property.
    int max_shrinks = 300;        ///< Property evaluations the shrinker may spend.
};

/// Result of a check() run; `ok` with an empty message when the property
/// held over every case.
struct Outcome {
    bool ok = true;
    std::string message;  ///< Failure + minimal counterexample rendering.
};

namespace detail {

/// An exception escaping the property is a failure like any other (the
/// shrinker keeps working on it); contract aborts, by design, still abort.
template <typename Property>
std::string run_guarded(Property& property, Gen& gen) {
    try {
        return property(gen);
    } catch (const std::exception& e) {
        return std::string("unexpected exception: ") + e.what();
    }
}

template <typename Property>
std::string replay(Property& property, const std::vector<std::uint64_t>& choices) {
    Gen gen(choices);
    return run_guarded(property, gen);
}

inline std::string render(const std::vector<std::uint64_t>& choices) {
    std::string out = "{";
    for (std::size_t i = 0; i < choices.size(); ++i)
        out += (i ? "," : "") + std::to_string(choices[i]);
    return out + "}";
}

}  // namespace detail

/// Replay a specific counterexample (e.g. one printed by a past failure).
template <typename Property>
Outcome recheck(Property property, const std::vector<std::uint64_t>& choices) {
    const std::string failure = detail::replay(property, choices);
    if (failure.empty()) return {};
    return {false, failure + "\n  counterexample: " + detail::render(choices)};
}

/// Run `property` over `config.cases` generated choice streams; on failure,
/// shrink within the evaluation budget and report the smallest stream kept.
template <typename Property>
Outcome check(const Config& config, Property property) {
    for (int i = 0; i < config.cases; ++i) {
        std::uint64_t mix = config.seed + static_cast<std::uint64_t>(i);
        Gen gen(util::splitmix64(mix));
        std::string failure = detail::run_guarded(property, gen);
        if (failure.empty()) continue;

        // Shrink: keep any smaller stream that still fails. Each pass is a
        // deterministic sweep; the budget bounds total property evaluations.
        std::vector<std::uint64_t> best = gen.choices();
        int budget = config.max_shrinks;
        bool improved = true;
        while (improved && budget > 0) {
            improved = false;
            // 1. Truncate: drop the tail, keeping ever-larger prefixes until
            // one still fails (or the prefix stops being a strict shrink).
            for (std::size_t keep = best.size() / 2;
                 keep < best.size() && budget > 0;
                 keep += (best.size() - keep + 1) / 2) {
                std::vector<std::uint64_t> candidate(
                    best.begin(), best.begin() + static_cast<std::ptrdiff_t>(keep));
                --budget;
                const std::string f = detail::replay(property, candidate);
                if (!f.empty()) {
                    best = std::move(candidate);
                    failure = f;
                    improved = true;
                    break;
                }
            }
            // 2. Zero / halve single positions (simplest values first).
            for (std::size_t p = 0; p < best.size() && budget > 0; ++p) {
                if (best[p] == 0) continue;
                for (const std::uint64_t value :
                     {std::uint64_t{0}, best[p] / 2}) {
                    if (value == best[p]) continue;
                    std::vector<std::uint64_t> candidate = best;
                    candidate[p] = value;
                    --budget;
                    if (const std::string f = detail::replay(property, candidate);
                        !f.empty()) {
                        best = std::move(candidate);
                        failure = f;
                        improved = true;
                        break;
                    }
                    if (budget == 0) break;
                }
            }
        }
        return {false, "case " + std::to_string(i) + " (seed " +
                           std::to_string(config.seed) + "): " + failure +
                           "\n  minimal counterexample: " + detail::render(best) +
                           "\n  replay with jaws::proptest::recheck()"};
    }
    return {};
}

}  // namespace jaws::proptest
