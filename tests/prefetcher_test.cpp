// Tests for trajectory prefetching (sched/prefetcher.h) and its engine wiring.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.h"
#include "sched/prefetcher.h"
#include "util/morton.h"
#include "workload/generator.h"

namespace jaws::sched {
namespace {

std::vector<workload::AtomRequest> footprint_at(std::uint32_t step,
                                                std::initializer_list<util::Coord3> coords) {
    std::vector<workload::AtomRequest> out;
    for (const auto& c : coords)
        out.push_back(workload::AtomRequest{{step, util::morton_encode(c)}, 10});
    return out;
}

PrefetchConfig config() {
    PrefetchConfig c;
    c.enabled = true;
    c.min_history = 2;
    return c;
}

TEST(Prefetcher, NoPredictionWithoutHistory) {
    TrajectoryPrefetcher p(config(), 16);
    p.observe(1, 0, 0, footprint_at(0, {{4, 4, 4}}));
    EXPECT_TRUE(p.predict(1).empty());
}

TEST(Prefetcher, PredictsLinearSpatialDrift) {
    TrajectoryPrefetcher p(config(), 16);
    p.observe(1, 0, 3, footprint_at(3, {{4, 4, 4}}));
    p.observe(1, 1, 4, footprint_at(4, {{5, 4, 4}}));  // +1 in x, +1 step
    const auto predicted = p.predict(1);
    ASSERT_EQ(predicted.size(), 1u);
    EXPECT_EQ(predicted[0].timestep, 5u);
    EXPECT_EQ(predicted[0].morton, util::morton_encode(6, 4, 4));
}

TEST(Prefetcher, PredictsBackwardTimeIteration) {
    TrajectoryPrefetcher p(config(), 16);
    p.observe(1, 0, 8, footprint_at(8, {{2, 2, 2}}));
    p.observe(1, 1, 7, footprint_at(7, {{2, 2, 2}}));
    const auto predicted = p.predict(1);
    ASSERT_EQ(predicted.size(), 1u);
    EXPECT_EQ(predicted[0].timestep, 6u);
}

TEST(Prefetcher, TranslatesWholeFootprintShape) {
    TrajectoryPrefetcher p(config(), 16);
    p.observe(1, 0, 0, footprint_at(0, {{4, 4, 4}, {5, 4, 4}}));
    p.observe(1, 1, 1, footprint_at(1, {{4, 5, 4}, {5, 5, 4}}));  // +1 in y
    const auto predicted = p.predict(1);
    ASSERT_EQ(predicted.size(), 2u);
    EXPECT_TRUE(std::any_of(predicted.begin(), predicted.end(), [](const storage::AtomId& a) {
        return a.morton == util::morton_encode(4, 6, 4);
    }));
    EXPECT_TRUE(std::any_of(predicted.begin(), predicted.end(), [](const storage::AtomId& a) {
        return a.morton == util::morton_encode(5, 6, 4);
    }));
}

TEST(Prefetcher, WrapsOnTorus) {
    TrajectoryPrefetcher p(config(), 16);
    p.observe(1, 0, 0, footprint_at(0, {{14, 0, 0}}));
    p.observe(1, 1, 1, footprint_at(1, {{15, 0, 0}}));
    const auto predicted = p.predict(1);
    ASSERT_EQ(predicted.size(), 1u);
    EXPECT_EQ(predicted[0].morton, util::morton_encode(0, 0, 0));
}

TEST(Prefetcher, ErraticJobsNotPredicted) {
    PrefetchConfig c = config();
    c.max_centroid_jump = 0.1;  // 1.6 atoms at 16 per side
    TrajectoryPrefetcher p(c, 16);
    p.observe(1, 0, 0, footprint_at(0, {{0, 0, 0}}));
    p.observe(1, 1, 0, footprint_at(0, {{7, 7, 7}}));  // jumped across the box
    EXPECT_TRUE(p.predict(1).empty());
}

TEST(Prefetcher, NonConsecutiveSequenceResetsVelocity) {
    TrajectoryPrefetcher p(config(), 16);
    p.observe(1, 0, 0, footprint_at(0, {{4, 4, 4}}));
    p.observe(1, 2, 2, footprint_at(2, {{6, 4, 4}}));  // gap in seq
    EXPECT_TRUE(p.predict(1).empty());
}

TEST(Prefetcher, ForgetDropsState) {
    TrajectoryPrefetcher p(config(), 16);
    p.observe(1, 0, 0, footprint_at(0, {{4, 4, 4}}));
    p.observe(1, 1, 1, footprint_at(1, {{5, 4, 4}}));
    p.forget(1);
    EXPECT_TRUE(p.predict(1).empty());
}

TEST(Prefetcher, AccuracyAccounting) {
    TrajectoryPrefetcher p(config(), 16);
    const storage::AtomId a{0, 1}, b{0, 2};
    p.on_prefetched(a);
    p.on_prefetched(b);
    p.on_demand_access(a);  // a pays off
    p.on_evicted(a);
    p.on_evicted(b);  // b wasted
    EXPECT_EQ(p.stats().prefetches, 2u);
    EXPECT_EQ(p.stats().hits, 1u);
    EXPECT_EQ(p.stats().wasted, 1u);
    EXPECT_DOUBLE_EQ(p.stats().accuracy(), 0.5);
}

TEST(Prefetcher, DemandAccessOnlyCountsOnce) {
    TrajectoryPrefetcher p(config(), 16);
    const storage::AtomId a{0, 1};
    p.on_prefetched(a);
    p.on_demand_access(a);
    p.on_demand_access(a);
    EXPECT_EQ(p.stats().hits, 1u);
}

TEST(PrefetcherEngine, TrackingWorkloadBenefitsFromPrefetch) {
    // Ordered jobs marching through time steps are exactly what trajectory
    // prefetching predicts; a run with prefetching on must achieve nonzero
    // accuracy and must not change the computed work.
    core::EngineConfig base;
    base.grid.voxels_per_side = 256;
    base.grid.atom_side = 32;
    base.grid.timesteps = 10;
    base.field.modes = 6;
    base.cache.capacity_atoms = 128;
    base.scheduler.kind = core::SchedulerKind::kJaws;

    workload::WorkloadSpec spec;
    spec.jobs = 40;
    spec.seed = 77;
    spec.frac_single_step = 0.0;   // all multi-step ordered jobs
    spec.frac_full_span = 0.5;
    spec.drift_scale = 8.0;        // smooth trajectories: predictable motion
    spec.mean_burst_gap_s = 60.0;  // light load: short prediction-to-use gap
    const field::SyntheticField field(base.field);
    const workload::Workload w = workload::generate_workload(spec, base.grid, field);

    core::EngineConfig with = base;
    with.prefetch.enabled = true;
    core::Engine ea(base), eb(with);
    const core::RunReport off = ea.run(w);
    const core::RunReport on = eb.run(w);
    EXPECT_EQ(on.positions, off.positions);
    EXPECT_GT(on.prefetch.prefetches, 0u);
    EXPECT_GT(on.prefetch.hits, 0u);
    EXPECT_GT(on.prefetch.hits, 20u);
    EXPECT_GT(on.prefetch.accuracy(), 0.15);
    EXPECT_EQ(off.prefetch.prefetches, 0u);
}

}  // namespace
}  // namespace jaws::sched
