// Tests for the workload manager: Eq. 1/2 metrics, ordering, two-level
// selection and the URC oracle view (sched/workload_manager.h).
#include <gtest/gtest.h>

#include <unordered_set>

#include "sched/workload_manager.h"
#include "util/morton.h"

namespace jaws::sched {
namespace {

storage::AtomId atom(std::uint32_t t, std::uint64_t m) { return storage::AtomId{t, m}; }

SubQuery sub(workload::QueryId q, storage::AtomId a, std::uint64_t positions,
             double enqueue_ms = 0.0) {
    SubQuery s;
    s.query = q;
    s.atom = a;
    s.positions = positions;
    s.enqueue_time = util::SimTime::from_millis(enqueue_ms);
    return s;
}

/// Scripted residency probe.
class FakeProbe final : public ResidencyProbe {
  public:
    bool resident(const storage::AtomId& a) const override { return cached.contains(a); }
    std::unordered_set<storage::AtomId, storage::AtomIdHash> cached;
};

CostConstants cost() {
    CostConstants c;
    c.t_b_ms = 25.0;
    c.t_m_ms = 0.005;
    c.atoms_per_step = 64;
    return c;
}

TEST(WorkloadManager, EmptyInitially) {
    WorkloadManager m(cost(), nullptr, 0.0);
    EXPECT_TRUE(m.empty());
    EXPECT_FALSE(m.pick_best_atom().has_value());
    EXPECT_TRUE(m.pick_two_level_batch(5, util::SimTime::zero()).empty());
}

TEST(WorkloadManager, UtilityMatchesEquationOne) {
    WorkloadManager m(cost(), nullptr, 0.0);
    m.enqueue(sub(1, atom(0, 3), 1000));
    // U_t = W / (T_b * phi + T_m * W) = 1000 / (25 + 5) with phi = 1.
    EXPECT_NEAR(m.atom_utility(atom(0, 3)), 1000.0 / 30.0, 1e-9);
}

TEST(WorkloadManager, UtilityAggregatesQueue) {
    WorkloadManager m(cost(), nullptr, 0.0);
    m.enqueue(sub(1, atom(0, 3), 600));
    m.enqueue(sub(2, atom(0, 3), 400));
    EXPECT_NEAR(m.atom_utility(atom(0, 3)), 1000.0 / 30.0, 1e-9);
    EXPECT_EQ(m.pending_positions(), 1000u);
    EXPECT_EQ(m.pending_subqueries(), 2u);
    EXPECT_EQ(m.pending_atoms(), 1u);
}

TEST(WorkloadManager, CachedAtomHasPhiZero) {
    FakeProbe probe;
    probe.cached.insert(atom(0, 3));
    WorkloadManager m(cost(), &probe, 0.0);
    m.enqueue(sub(1, atom(0, 3), 1000));
    // phi = 0 => U_t = W / (T_m W) = 1/T_m = 200.
    EXPECT_NEAR(m.atom_utility(atom(0, 3)), 200.0, 1e-9);
}

TEST(WorkloadManager, ResidencyChangeReordersPicks) {
    FakeProbe probe;
    WorkloadManager m(cost(), &probe, 0.0);
    m.enqueue(sub(1, atom(0, 1), 5000));  // hot but uncached
    m.enqueue(sub(2, atom(0, 2), 100));   // cold
    EXPECT_EQ(m.pick_best_atom()->morton, 1u);
    // Atom 2 becomes cached: its U_t jumps to 200, beating atom 1's ~90.9.
    probe.cached.insert(atom(0, 2));
    m.on_residency_changed(atom(0, 2));
    EXPECT_EQ(m.pick_best_atom()->morton, 2u);
}

TEST(WorkloadManager, ContentionOrderAtAlphaZero) {
    WorkloadManager m(cost(), nullptr, 0.0);
    m.enqueue(sub(1, atom(0, 1), 100, 0.0));
    m.enqueue(sub(2, atom(0, 2), 5000, 1e6));  // newer but far more contended
    EXPECT_EQ(m.pick_best_atom()->morton, 2u);
}

TEST(WorkloadManager, ArrivalOrderAtAlphaOne) {
    WorkloadManager m(cost(), nullptr, 1.0);
    m.enqueue(sub(1, atom(0, 1), 100, 0.0));    // older
    m.enqueue(sub(2, atom(0, 2), 5000, 10.0));  // hotter but newer
    EXPECT_EQ(m.pick_best_atom()->morton, 1u);
}

TEST(WorkloadManager, SetAlphaRebuildsOrdering) {
    WorkloadManager m(cost(), nullptr, 0.0);
    m.enqueue(sub(1, atom(0, 1), 100, 0.0));
    m.enqueue(sub(2, atom(0, 2), 5000, 100000.0));
    EXPECT_EQ(m.pick_best_atom()->morton, 2u);
    m.set_alpha(1.0);
    EXPECT_EQ(m.pick_best_atom()->morton, 1u);
    EXPECT_DOUBLE_EQ(m.alpha(), 1.0);
}

TEST(WorkloadManager, DrainRemovesQueue) {
    WorkloadManager m(cost(), nullptr, 0.0);
    m.enqueue(sub(1, atom(0, 1), 100));
    m.enqueue(sub(2, atom(0, 1), 200));
    const auto items = m.drain_atom(atom(0, 1));
    ASSERT_EQ(items.size(), 2u);
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.atom_utility(atom(0, 1)), 0.0);
    EXPECT_TRUE(m.drain_atom(atom(0, 1)).empty());
}

TEST(WorkloadManager, DrainPreservesEnqueueOrder) {
    WorkloadManager m(cost(), nullptr, 0.0);
    for (workload::QueryId q = 1; q <= 5; ++q) m.enqueue(sub(q, atom(0, 1), 10));
    const auto items = m.drain_atom(atom(0, 1));
    for (std::size_t i = 0; i < items.size(); ++i) ASSERT_EQ(items[i].query, i + 1);
}

TEST(WorkloadManager, TimestepMeanUtility) {
    WorkloadManager m(cost(), nullptr, 0.0);
    m.enqueue(sub(1, atom(3, 1), 1000));
    m.enqueue(sub(2, atom(3, 2), 1000));
    const double single = 1000.0 / 30.0;
    EXPECT_NEAR(m.timestep_mean_utility(3), single, 1e-9);
    EXPECT_EQ(m.timestep_mean_utility(4), 0.0);
}

TEST(WorkloadManager, TwoLevelPicksBusiestStep) {
    WorkloadManager m(cost(), nullptr, 0.0);
    // Step 1: one hot atom; step 2: three moderately hot atoms — more total
    // contention mass, so the mean over all 64 atoms of the step is higher.
    m.enqueue(sub(1, atom(1, 1), 2000));
    m.enqueue(sub(2, atom(2, 1), 1500));
    m.enqueue(sub(3, atom(2, 2), 1500));
    m.enqueue(sub(4, atom(2, 3), 1500));
    const auto batch = m.pick_two_level_batch(10, util::SimTime::zero());
    ASSERT_FALSE(batch.empty());
    for (const auto& a : batch) EXPECT_EQ(a.timestep, 2u);
}

TEST(WorkloadManager, TwoLevelCapsAtK) {
    WorkloadManager m(cost(), nullptr, 0.0);
    for (std::uint64_t i = 0; i < 20; ++i) m.enqueue(sub(i + 1, atom(0, i), 1000));
    EXPECT_EQ(m.pick_two_level_batch(5, util::SimTime::zero()).size(), 5u);
}

TEST(WorkloadManager, TwoLevelMortonSorted) {
    WorkloadManager m(cost(), nullptr, 0.0);
    m.enqueue(sub(1, atom(0, 9), 1000));
    m.enqueue(sub(2, atom(0, 2), 1000));
    m.enqueue(sub(3, atom(0, 5), 1000));
    const auto batch = m.pick_two_level_batch(10, util::SimTime::zero());
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_EQ(batch[0].morton, 2u);
    EXPECT_EQ(batch[1].morton, 5u);
    EXPECT_EQ(batch[2].morton, 9u);
}

TEST(WorkloadManager, TwoLevelExcludesBelowMeanAtoms) {
    WorkloadManager m(cost(), nullptr, 0.0);
    // One very hot atom and one barely-pending atom in the same step. The
    // step mean over 64 atoms is small but positive; an atom whose U_t is
    // below it (impossible here) would be excluded — instead verify that all
    // returned atoms meet the bar and the hot atom is present.
    m.enqueue(sub(1, atom(0, 1), 20000));
    m.enqueue(sub(2, atom(0, 2), 16));
    const auto batch = m.pick_two_level_batch(10, util::SimTime::zero());
    const double mean = m.timestep_mean_utility(0) * 2 / 64.0;
    for (const auto& a : batch) EXPECT_GE(m.atom_utility(a), mean - 1e-9);
    EXPECT_NE(std::find_if(batch.begin(), batch.end(),
                           [](const storage::AtomId& a) { return a.morton == 1; }),
              batch.end());
}

TEST(WorkloadManager, AgedStepSelectionPrefersOldWorkAtHighAlpha) {
    WorkloadManager m(cost(), nullptr, 1.0);
    // Step 0 has old work, step 1 newer but hotter.
    m.enqueue(sub(1, atom(0, 1), 100, 0.0));
    m.enqueue(sub(2, atom(1, 1), 9000, 500000.0));
    const auto batch = m.pick_two_level_batch(5, util::SimTime::from_millis(600000.0));
    ASSERT_FALSE(batch.empty());
    EXPECT_EQ(batch.front().timestep, 0u);
}

TEST(WorkloadManager, OldestTimeTracksFirstEnqueue) {
    WorkloadManager m(cost(), nullptr, 1.0);
    m.enqueue(sub(1, atom(0, 1), 10, 100.0));
    m.enqueue(sub(2, atom(0, 1), 10, 50.0));  // later enqueue, but queue's
                                              // oldest stays at 100 (arrival
                                              // order within an atom is FIFO)
    m.enqueue(sub(3, atom(0, 2), 10, 80.0));
    // At alpha 1, atom 2 (age key -80) beats atom 1 (age key -100)? No:
    // older = smaller oldest => larger key. Atom 2 enqueued at 80 is older
    // than atom 1's first enqueue at 100.
    EXPECT_EQ(m.pick_best_atom()->morton, 2u);
}

}  // namespace
}  // namespace jaws::sched
