// Serial-equivalence regression for the event kernel (core/engine.h).
//
// The engine was rewritten from an implicit-clock serial loop into a
// discrete-event pipeline over modeled disk/CPU resources. The refactor's
// contract: with io_depth = 1 and compute_workers = 1 the event-ordered
// execution reproduces the old strictly-serial semantics *bit-for-bit*. The
// golden numbers below were captured by running the pre-refactor engine
// (commit daebd9b, the last serial engine) on this exact fixture; every
// integer field must match exactly and every derived double to float
// precision. If this test breaks, the kernel's event ordering diverged from
// the serial schedule — that is a bug even if throughput "improved".
//
// The second half checks the point of the refactor: on a saturated,
// I/O-bound workload a deeper pipeline strictly shortens the makespan and
// reports genuine I/O-compute overlap, while doing the identical work.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "workload/generator.h"

namespace jaws::core {
namespace {

EngineConfig fixture_config(SchedulerKind kind) {
    EngineConfig c;
    c.grid.voxels_per_side = 256;
    c.grid.atom_side = 32;
    c.grid.ghost = 2;
    c.grid.timesteps = 8;
    c.field.modes = 6;
    c.cache.capacity_atoms = 32;
    c.scheduler.kind = kind;
    c.run_length = 50;
    return c;
}

workload::Workload fixture_workload(const EngineConfig& config) {
    workload::WorkloadSpec spec;
    spec.jobs = 40;
    spec.seed = 3;
    const field::SyntheticField field(config.field);
    return workload::generate_workload(spec, config.grid, field);
}

struct Golden {
    SchedulerKind kind;
    std::int64_t makespan_us;
    double throughput_qps;
    double busy_throughput_qps;
    std::uint64_t cache_hits;
    std::uint64_t cache_misses;
    std::uint64_t atom_reads;
    std::uint64_t support_reads;
    double mean_response_ms;
    std::int64_t idle_us;
};

// Captured from the pre-refactor serial engine on the fixture above, then
// re-pinned once when SimTime::from_millis/from_seconds switched from
// truncation to round-to-nearest: the 1/1 pipeline still reproduces the
// serial schedule bit-for-bit, but every modeled duration is now up to 1 us
// longer, which shifts the absolute timings (and, through eviction timing, a
// handful of cache counters) by a few ppm.
constexpr Golden kGoldens[] = {
    {SchedulerKind::kNoShare, 544246896, 2.623809176488, 7.704911639447, 41720, 43609,
     18076, 25533, 13221.418023109238, 358910572},
    {SchedulerKind::kLifeRaft, 558359694, 2.557491193123, 9.263224407501, 12184, 15408,
     6141, 9267, 2352.186577030813, 404201710},
    {SchedulerKind::kJaws, 545061129, 2.619889630765, 14.350468838258, 14386, 14226,
     6102, 8124, 1443.275448879554, 445552185},
};

TEST(SerialEquivalence, DefaultDepthReproducesTheSerialEngineExactly) {
    for (const Golden& g : kGoldens) {
        const EngineConfig c = fixture_config(g.kind);
        ASSERT_EQ(c.io_depth, 1u);
        ASSERT_EQ(c.compute_workers, 1u);
        const workload::Workload w = fixture_workload(c);
        Engine engine(c);
        const RunReport r = engine.run(w);
        SCOPED_TRACE(r.scheduler_name);
        EXPECT_EQ(r.makespan.micros, g.makespan_us);
        EXPECT_EQ(r.idle_time.micros, g.idle_us);
        EXPECT_EQ(r.cache.hits, g.cache_hits);
        EXPECT_EQ(r.cache.misses, g.cache_misses);
        EXPECT_EQ(r.atom_reads, g.atom_reads);
        EXPECT_EQ(r.support_reads, g.support_reads);
        EXPECT_NEAR(r.throughput_qps, g.throughput_qps, 1e-6);
        EXPECT_NEAR(r.busy_throughput_qps, g.busy_throughput_qps, 1e-6);
        EXPECT_NEAR(r.mean_response_ms, g.mean_response_ms, 1e-6);
    }
}

TEST(SerialEquivalence, FaultyRunReproducesRetryAndBackoffAccountingExactly) {
    EngineConfig c = fixture_config(SchedulerKind::kJaws);
    c.faults.seed = 1234;
    c.faults.transient_error_rate = 0.25;
    c.faults.latency_spike_rate = 0.25;
    c.faults.latency_spike_mean_ms = 80.0;
    const workload::Workload w = fixture_workload(c);
    Engine engine(c);
    const RunReport r = engine.run(w);
    // Pre-refactor serial engine on the same faulty fixture (re-pinned with
    // the SimTime rounding fix, same as kGoldens above).
    EXPECT_EQ(r.makespan.micros, 582002734);
    EXPECT_EQ(r.read_retries, 2064u);
    EXPECT_EQ(r.read_failures, 36u);
    EXPECT_EQ(r.degraded_queries, 54u);
    EXPECT_EQ(r.retry_backoff_time.micros, 13855000);
    EXPECT_EQ(r.atom_reads, 6184u);
}

TEST(SerialEquivalence, SerialPipelineNeverOverlapsIoAndCompute) {
    // At 1/1 the pipeline window forces read -> evaluate -> next read, so the
    // disk and the CPU pool must never be busy at the same instant.
    const EngineConfig c = fixture_config(SchedulerKind::kJaws);
    const workload::Workload w = fixture_workload(c);
    Engine engine(c);
    const RunReport r = engine.run(w);
    EXPECT_EQ(r.overlap_time.micros, 0);
    EXPECT_EQ(r.overlap_fraction, 0.0);
    EXPECT_EQ(r.io_depth, 1u);
    EXPECT_EQ(r.compute_workers, 1u);
    EXPECT_GT(r.disk_busy_time.micros, 0);
    EXPECT_GT(r.cpu_busy_time.micros, 0);
    // With zero overlap, busy intervals are disjoint and fit in the non-idle
    // span (the remainder is dispatch overhead and retry backoff, which
    // occupy neither resource).
    EXPECT_LE(r.disk_busy_time.micros + r.cpu_busy_time.micros,
              r.makespan.micros - r.idle_time.micros);
}

// A dense, cold-cache workload where nearly every batch item needs a disk
// read: the regime where pipelining reads against evaluation pays.
EngineConfig saturated_config(std::size_t io_depth, std::size_t workers) {
    EngineConfig c = fixture_config(SchedulerKind::kJaws);
    c.cache.capacity_atoms = 16;
    c.io_depth = io_depth;
    c.compute_workers = workers;
    return c;
}

workload::Workload saturated_workload(const EngineConfig& config) {
    workload::WorkloadSpec spec;
    spec.jobs = 24;
    spec.seed = 11;
    spec.mean_burst_gap_s = 0.05;        // everything arrives almost at once
    spec.mean_jobs_per_burst = 8.0;
    spec.mean_intra_burst_gap_s = 0.05;
    spec.mean_think_time_s = 0.01;
    spec.frac_single_step = 1.0;         // unordered batches: no chain gating
    spec.frac_ordered_single_step = 0.0;
    const field::SyntheticField field(config.field);
    return workload::generate_workload(spec, config.grid, field);
}

TEST(OverlappedIo, DeeperPipelineStrictlyShortensAnIoBoundRun) {
    const EngineConfig serial = saturated_config(1, 1);
    const workload::Workload w = saturated_workload(serial);
    Engine e1(serial);
    const RunReport r1 = e1.run(w);
    Engine e4(saturated_config(4, 2));
    const RunReport r4 = e4.run(w);

    EXPECT_LT(r4.makespan.micros, r1.makespan.micros);
    EXPECT_GT(r4.overlap_fraction, 0.0);
    EXPECT_GT(r4.overlap_time.micros, 0);
    EXPECT_EQ(r1.overlap_time.micros, 0);
    // The pipeline reorders work in time, never in substance.
    EXPECT_EQ(r4.positions, r1.positions);
    EXPECT_EQ(r4.subqueries, r1.subqueries);
    EXPECT_EQ(r4.queries, r1.queries);
}

TEST(OverlappedIo, ReportEchoesConfiguredDepths) {
    Engine engine(saturated_config(4, 2));
    const RunReport r = engine.run(saturated_workload(saturated_config(4, 2)));
    EXPECT_EQ(r.io_depth, 4u);
    EXPECT_EQ(r.compute_workers, 2u);
    EXPECT_GE(r.disk_busy_time.micros, r.overlap_time.micros);
    EXPECT_GE(r.cpu_busy_time.micros, r.overlap_time.micros);
    EXPECT_GT(r.disk_utilization, 0.0);
    EXPECT_GT(r.cpu_utilization, 0.0);
    EXPECT_LE(r.disk_utilization, 1.0);
    EXPECT_LE(r.cpu_utilization, 1.0);
}

TEST(OverlappedIo, DepthSweepIsMonotoneOnTheSaturatedFixture) {
    const workload::Workload w = saturated_workload(saturated_config(1, 1));
    std::int64_t prev = INT64_MAX;
    for (const std::size_t depth : {1u, 2u, 4u}) {
        Engine engine(saturated_config(depth, 2));
        const RunReport r = engine.run(w);
        EXPECT_LE(r.makespan.micros, prev) << "io_depth=" << depth;
        prev = r.makespan.micros;
    }
}

}  // namespace
}  // namespace jaws::core
