// Parallel-evaluation equivalence harness (core/engine.h + EvalSpec).
//
// The engine dispatches real sub-query interpolation onto util::ThreadPool
// while the modeled T_m service on SimResource stays authoritative for
// virtual time, and reduces worker results strictly in virtual
// completion-event order. The contract under test: for every worker count,
// a pooled run is bit-identical to the inline (serial-evaluation) engine —
// same virtual trace, same samples, same digests — and repeat runs are
// bit-identical to each other, including under seeded fault injection. The
// golden rows below pin the per-worker-count traces so a silent divergence
// in either the virtual schedule or the reduction order fails loudly.
//
// Note the modeled trace *does* legitimately differ across worker counts
// (more CPU channels change the schedule); what must never differ is
// pooled-vs-inline at the same count, or run-vs-run at the same config.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/engine.h"
#include "util/thread_pool.h"
#include "workload/generator.h"

namespace jaws::core {
namespace {

EngineConfig fixture_config(std::size_t workers, bool parallel) {
    EngineConfig c;
    c.grid.voxels_per_side = 128;
    c.grid.atom_side = 32;
    c.grid.ghost = 4;  // kLag8 kernels need 4 ghost voxels at atom edges
    c.grid.timesteps = 4;
    c.field.modes = 4;
    c.cache.capacity_atoms = 16;
    c.run_length = 25;
    c.io_depth = 2;
    c.compute_workers = workers;
    c.materialize_data = true;  // real voxel payloads -> real interpolation
    c.eval.parallel = parallel;
    return c;
}

workload::Workload fixture_workload(const EngineConfig& c) {
    workload::WorkloadSpec spec;
    spec.jobs = 8;
    spec.seed = 5;
    spec.max_positions = 800;  // bound the real interpolation work per query
    const field::SyntheticField field(c.field);
    workload::Workload w = workload::generate_workload(spec, c.grid, field);
    workload::materialize_positions(w, c.grid, /*seed=*/17);
    return w;
}

void expect_reports_identical(const RunReport& pooled, const RunReport& inline_r) {
    EXPECT_EQ(pooled.makespan.micros, inline_r.makespan.micros);
    EXPECT_EQ(pooled.idle_time.micros, inline_r.idle_time.micros);
    EXPECT_EQ(pooled.sample_digest, inline_r.sample_digest);
    EXPECT_EQ(pooled.samples_evaluated, inline_r.samples_evaluated);
    EXPECT_EQ(pooled.cache.hits, inline_r.cache.hits);
    EXPECT_EQ(pooled.cache.misses, inline_r.cache.misses);
    EXPECT_EQ(pooled.atom_reads, inline_r.atom_reads);
    EXPECT_EQ(pooled.support_reads, inline_r.support_reads);
    EXPECT_EQ(pooled.subqueries, inline_r.subqueries);
    EXPECT_EQ(pooled.positions, inline_r.positions);
    EXPECT_EQ(pooled.queries, inline_r.queries);
    EXPECT_EQ(pooled.read_retries, inline_r.read_retries);
    EXPECT_EQ(pooled.read_failures, inline_r.read_failures);
    EXPECT_EQ(pooled.failed_subqueries, inline_r.failed_subqueries);
    EXPECT_EQ(pooled.degraded_queries, inline_r.degraded_queries);
    EXPECT_EQ(pooled.retry_backoff_time.micros, inline_r.retry_backoff_time.micros);
    EXPECT_EQ(pooled.peak_cpu_busy, inline_r.peak_cpu_busy);
    EXPECT_EQ(pooled.peak_disk_busy, inline_r.peak_disk_busy);
}

void expect_outcomes_identical(const std::vector<QueryOutcome>& a,
                               const std::vector<QueryOutcome>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].query, b[i].query);
        EXPECT_EQ(a[i].completed.micros, b[i].completed.micros);
        EXPECT_EQ(a[i].samples_evaluated, b[i].samples_evaluated);
        EXPECT_EQ(a[i].sample_digest, b[i].sample_digest);
        EXPECT_EQ(a[i].failed_subqueries, b[i].failed_subqueries);
    }
}

constexpr std::size_t kWorkerCounts[] = {1, 2, 4, 8};

TEST(ParallelEquivalence, PooledEvalIsBitIdenticalToInlineAtEveryWorkerCount) {
    for (const std::size_t w : kWorkerCounts) {
        SCOPED_TRACE("compute_workers=" + std::to_string(w));
        const EngineConfig pooled_cfg = fixture_config(w, /*parallel=*/true);
        const workload::Workload work = fixture_workload(pooled_cfg);

        Engine pooled(pooled_cfg);
        const RunReport rp = pooled.run(work);
        Engine inline_e(fixture_config(w, /*parallel=*/false));
        const RunReport ri = inline_e.run(work);

        // The pooled run really ran on the pool; the inline run never did.
        EXPECT_EQ(rp.eval_threads, w);
        EXPECT_GT(rp.eval_tasks, 0u);
        EXPECT_EQ(ri.eval_threads, 0u);
        EXPECT_EQ(ri.eval_tasks, 0u);
        EXPECT_GT(rp.samples_evaluated, 0u);

        expect_reports_identical(rp, ri);
        expect_outcomes_identical(pooled.outcomes(), inline_e.outcomes());
    }
}

TEST(ParallelEquivalence, BatchedKernelIsBitIdenticalToScalarKernel) {
    // EvalSpec::batch switches the materialised hot path between the scalar
    // one-position-at-a-time kernel and field::BatchInterpolator. The knob
    // must be invisible in every report field and digest — same contract as
    // pooled vs inline — in both inline and pooled evaluation shapes.
    for (const bool parallel : {false, true}) {
        SCOPED_TRACE(parallel ? "pooled" : "inline");
        EngineConfig batched_cfg = fixture_config(2, parallel);
        batched_cfg.eval.batch = true;
        const workload::Workload work = fixture_workload(batched_cfg);

        Engine batched(batched_cfg);
        const RunReport rb = batched.run(work);
        EngineConfig scalar_cfg = batched_cfg;
        scalar_cfg.eval.batch = false;
        Engine scalar(scalar_cfg);
        const RunReport rs = scalar.run(work);

        EXPECT_GT(rb.samples_evaluated, 0u);
        expect_reports_identical(rb, rs);
        expect_outcomes_identical(batched.outcomes(), scalar.outcomes());
    }
}

TEST(ParallelEquivalence, RepeatedPooledRunsAreBitIdentical) {
    for (const std::size_t w : kWorkerCounts) {
        SCOPED_TRACE("compute_workers=" + std::to_string(w));
        const EngineConfig cfg = fixture_config(w, /*parallel=*/true);
        const workload::Workload work = fixture_workload(cfg);
        Engine first(cfg);
        const RunReport r1 = first.run(work);
        Engine second(cfg);
        const RunReport r2 = second.run(work);
        expect_reports_identical(r1, r2);
        expect_outcomes_identical(first.outcomes(), second.outcomes());
    }
}

TEST(ParallelEquivalence, ExternalSharedPoolMatchesEngineOwnedPool) {
    // A pool shared across engines (the cluster facade's arrangement) must
    // not change anything: the reduction order is fixed by virtual events,
    // not by which pool ran the work.
    util::ThreadPool shared(3);  // deliberately != compute_workers
    for (const std::size_t w : {2, 4}) {
        SCOPED_TRACE("compute_workers=" + std::to_string(w));
        EngineConfig ext_cfg = fixture_config(w, /*parallel=*/true);
        ext_cfg.eval.pool = &shared;
        const workload::Workload work = fixture_workload(ext_cfg);
        Engine ext(ext_cfg);
        const RunReport re = ext.run(work);
        EXPECT_EQ(re.eval_threads, shared.size());
        Engine owned(fixture_config(w, /*parallel=*/true));
        const RunReport ro = owned.run(work);
        expect_reports_identical(re, ro);
        expect_outcomes_identical(ext.outcomes(), owned.outcomes());
    }
}

// ---------------------------------------------------------------------------
// Golden-pinned traces. Captured from this fixture at the introduction of
// the parallel-evaluation path (pooled and inline agreed bit-for-bit at
// capture time, and the suite above keeps proving they agree). If a row
// breaks, the virtual schedule or the deterministic reduction order changed.
// ---------------------------------------------------------------------------

struct Golden {
    std::size_t workers;
    std::int64_t makespan_us;
    std::uint64_t samples;
    std::uint64_t digest;
};

constexpr Golden kGoldens[] = {
    {1, 447461354, 321333, 0x328d815406c1a72ull},
    {2, 447194614, 321332, 0x75d8134506426ad0ull},
    {4, 447194614, 321332, 0x75d8134506426ad0ull},
    {8, 447194614, 321332, 0x75d8134506426ad0ull},
};

TEST(ParallelEquivalence, GoldenPinnedTracePerWorkerCount) {
    for (const Golden& g : kGoldens) {
        SCOPED_TRACE("compute_workers=" + std::to_string(g.workers));
        const EngineConfig cfg = fixture_config(g.workers, /*parallel=*/true);
        Engine engine(cfg);
        const RunReport r = engine.run(fixture_workload(cfg));
        EXPECT_EQ(r.makespan.micros, g.makespan_us);
        EXPECT_EQ(r.samples_evaluated, g.samples);
        EXPECT_EQ(r.sample_digest, g.digest);
    }
}

// --- seeded fault injection: retries and failures must not disturb the
// reduction, and the recovery counters must match the inline engine exactly.

EngineConfig faulted_config(std::size_t workers, bool parallel) {
    EngineConfig c = fixture_config(workers, parallel);
    c.faults.seed = 1234;
    c.faults.transient_error_rate = 0.25;
    c.faults.latency_spike_rate = 0.25;
    c.faults.latency_spike_mean_ms = 40.0;
    return c;
}

TEST(ParallelEquivalence, FaultedPooledRunMatchesInlineRecoveryExactly) {
    for (const std::size_t w : kWorkerCounts) {
        SCOPED_TRACE("compute_workers=" + std::to_string(w));
        const EngineConfig pooled_cfg = faulted_config(w, /*parallel=*/true);
        const workload::Workload work = fixture_workload(pooled_cfg);
        Engine pooled(pooled_cfg);
        const RunReport rp = pooled.run(work);
        Engine inline_e(faulted_config(w, /*parallel=*/false));
        const RunReport ri = inline_e.run(work);
        EXPECT_GT(rp.read_retries, 0u);  // the faults actually fired
        expect_reports_identical(rp, ri);
        expect_outcomes_identical(pooled.outcomes(), inline_e.outcomes());
    }
}

struct FaultGolden {
    std::size_t workers;
    std::int64_t makespan_us;
    std::uint64_t retries;
    std::uint64_t digest;
};

constexpr FaultGolden kFaultGoldens[] = {
    {1, 447533482, 26, 0xe8fbc78f3d3a1050ull},
    {2, 447194614, 26, 0x415b0b2f5b5f07a8ull},
    {4, 447194614, 26, 0x415b0b2f5b5f07a8ull},
    {8, 447194614, 26, 0x415b0b2f5b5f07a8ull},
};

TEST(ParallelEquivalence, GoldenPinnedFaultedTracePerWorkerCount) {
    for (const FaultGolden& g : kFaultGoldens) {
        SCOPED_TRACE("compute_workers=" + std::to_string(g.workers));
        const EngineConfig cfg = faulted_config(g.workers, /*parallel=*/true);
        Engine engine(cfg);
        const RunReport r = engine.run(fixture_workload(cfg));
        EXPECT_EQ(r.makespan.micros, g.makespan_us);
        EXPECT_EQ(r.read_retries, g.retries);
        EXPECT_EQ(r.sample_digest, g.digest);
    }
}

}  // namespace
}  // namespace jaws::core
