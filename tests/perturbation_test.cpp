// Schedule-perturbation determinism checker (core/engine.h + util/event_queue.h).
//
// The kernel's ordering contract fixes (time, priority, source); the final
// insertion-order component is *arbitrary but stable*, and for commutative
// event classes — arrivals, visibility promotions, dispatch ticks — no
// observable result may depend on it. This suite runs the same fixtures
// under util::TiePerturbation (salted permutation of same-tick ties in the
// commutative classes, offset event ids, tombstone entries disturbing the
// heap layout) and asserts every report digest is bit-identical to the
// unperturbed run. Service completions (Engine::kPriService) are
// deliberately *not* permuted: RunReport::sample_digest folds sample bytes
// in completion-event order, so their same-tick order is semantically
// visible — that boundary is part of the documented contract, and the
// checker's own teeth are proved by a toy client below that the permutation
// demonstrably reorders.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/engine.h"
#include "util/event_queue.h"
#include "workload/generator.h"

namespace jaws::core {
namespace {

/// Commutative priority classes: everything the engine schedules except
/// service completions and the (singleton, class-exclusive) halt event.
constexpr std::uint64_t kCommutativeMask = (1ULL << Engine::kPriArrival) |
                                           (1ULL << Engine::kPriVisibility) |
                                           (1ULL << Engine::kPriDispatch);

/// The perturbations every fixture must be invariant under.
std::vector<std::pair<std::string, util::TiePerturbation>> perturbations() {
    std::vector<std::pair<std::string, util::TiePerturbation>> out;
    out.emplace_back("identity", util::TiePerturbation{});
    util::TiePerturbation salted;
    salted.salt = 0x9E3779B97F4A7C15ULL;
    salted.permute_priorities = kCommutativeMask;
    out.emplace_back("salted-commutative", salted);
    util::TiePerturbation offset;
    offset.id_offset = 1ULL << 40;
    out.emplace_back("id-offset", offset);
    util::TiePerturbation tombstones;
    tombstones.tombstone_stride = 3;
    out.emplace_back("tombstones", tombstones);
    util::TiePerturbation everything;
    everything.salt = 0xD1B54A32D192ED03ULL;
    everything.permute_priorities = kCommutativeMask;
    everything.id_offset = 12345;
    everything.tombstone_stride = 5;
    out.emplace_back("all-at-once", everything);
    return out;
}

EngineConfig fixture_config() {
    EngineConfig c;
    c.grid.voxels_per_side = 256;
    c.grid.atom_side = 32;
    c.grid.ghost = 2;
    c.grid.timesteps = 8;
    c.field.modes = 6;
    c.cache.capacity_atoms = 32;
    c.run_length = 50;
    // A concurrent pipeline maximises same-tick ties (the serial engine
    // rarely has two pending events at one instant).
    c.io_depth = 4;
    c.compute_workers = 3;
    c.timeline_window_s = 50.0;
    return c;
}

workload::Workload fixture_workload(const EngineConfig& config, std::uint64_t seed) {
    workload::WorkloadSpec spec;
    spec.jobs = 30;
    spec.seed = seed;
    const field::SyntheticField field(config.field);
    return workload::generate_workload(spec, config.grid, field);
}

/// The observable fingerprint of a run: every integer field that pins the
/// schedule, folded with FNV so a mismatch names no particular field but
/// misses nothing.
std::uint64_t fingerprint(const RunReport& r) {
    std::uint64_t h = kFnvOffset;
    const auto fold = [&h](std::uint64_t v) { h = fnv1a64(h, &v, sizeof v); };
    fold(static_cast<std::uint64_t>(r.makespan.micros));
    fold(r.sample_digest);
    fold(r.samples_evaluated);
    fold(r.atoms_processed);
    fold(r.atom_reads);
    fold(r.support_reads);
    fold(r.subqueries);
    fold(r.positions);
    fold(r.peak_cpu_busy);
    fold(r.peak_disk_busy);
    fold(r.read_retries);
    fold(r.read_failures);
    fold(r.hedges_issued);
    for (const TimelinePoint& p : r.timeline) {
        fold(static_cast<std::uint64_t>(p.window_end.micros));
        fold(p.completions);
    }
    return h;
}

/// Per-query outcomes live on the engine, not the report; fold them too so
/// the checker sees every completion instant and per-query sample digest.
std::uint64_t fingerprint(const Engine& engine, const RunReport& r) {
    std::uint64_t h = fingerprint(r);
    const auto fold = [&h](std::uint64_t v) { h = fnv1a64(h, &v, sizeof v); };
    for (const QueryOutcome& q : engine.outcomes()) {
        fold(q.query);
        fold(static_cast<std::uint64_t>(q.visible.micros));
        fold(static_cast<std::uint64_t>(q.completed.micros));
        fold(q.sample_digest);
        fold(q.samples_evaluated);
    }
    return h;
}

std::uint64_t fingerprint(const ClusterReport& r) {
    std::uint64_t h = kFnvOffset;
    const auto fold = [&h](std::uint64_t v) { h = fnv1a64(h, &v, sizeof v); };
    fold(static_cast<std::uint64_t>(r.makespan.micros));
    fold(r.routed_queries);
    fold(r.rerouted_arrivals);
    fold(r.replica_reads);
    fold(r.degraded_queries);
    fold(static_cast<std::uint64_t>(r.failovers));
    for (const RunReport& node : r.per_node) fold(fingerprint(node));
    for (const RunReport& rec : r.recovery) fold(fingerprint(rec));
    return h;
}

TEST(Perturbation, SingleNodeReportsAreTieBreakInvariant) {
    const EngineConfig base = fixture_config();
    const workload::Workload w = fixture_workload(base, 3);

    Engine reference(base);
    const RunReport ref = reference.run(w);
    const std::uint64_t expected = fingerprint(reference, ref);

    for (const auto& [name, perturbation] : perturbations()) {
        EngineConfig cfg = base;
        cfg.tie_perturbation = perturbation;
        Engine engine(cfg);
        const RunReport r = engine.run(w);
        EXPECT_EQ(fingerprint(engine, r), expected)
            << "report drifted under perturbation `" << name << "`";
    }
}

TEST(Perturbation, MaterializedSampleDigestIsTieBreakInvariant) {
    EngineConfig base = fixture_config();
    base.materialize_data = true;
    base.grid.voxels_per_side = 128;  // small but real voxel payloads
    base.grid.ghost = 4;  // materialised runs need the full kernel half-width
    base.grid.timesteps = 4;
    base.field.modes = 4;
    base.cache.capacity_atoms = 16;

    workload::WorkloadSpec spec;
    spec.jobs = 8;
    spec.seed = 5;
    spec.max_positions = 800;  // bound the real interpolation work per query
    const field::SyntheticField field(base.field);
    workload::Workload w = workload::generate_workload(spec, base.grid, field);
    workload::materialize_positions(w, base.grid, /*seed=*/17);

    Engine reference(base);
    const RunReport ref = reference.run(w);
    ASSERT_NE(ref.sample_digest, kFnvOffset) << "fixture produced no samples";

    for (const auto& [name, perturbation] : perturbations()) {
        EngineConfig cfg = base;
        cfg.tie_perturbation = perturbation;
        Engine engine(cfg);
        const RunReport r = engine.run(w);
        EXPECT_EQ(r.sample_digest, ref.sample_digest)
            << "sample bytes drifted under perturbation `" << name << "`";
        EXPECT_EQ(fingerprint(engine, r), fingerprint(reference, ref))
            << "report drifted under perturbation `" << name << "`";
    }
}

TEST(Perturbation, UnifiedClusterReportsAreTieBreakInvariant) {
    ClusterConfig base;
    base.node = fixture_config();
    base.nodes = 3;
    base.replication = 2;
    const workload::Workload w = fixture_workload(base.node, 7);

    const std::uint64_t expected =
        fingerprint(TurbulenceCluster(base).run(w));

    for (const auto& [name, perturbation] : perturbations()) {
        ClusterConfig cfg = base;
        cfg.node.tie_perturbation = perturbation;
        EXPECT_EQ(fingerprint(TurbulenceCluster(cfg).run(w)), expected)
            << "cluster report drifted under perturbation `" << name << "`";
    }
}

// --- the checker has teeth -------------------------------------------------
//
// A deliberately order-dependent toy client: two same-tick events of one
// permuted class append to a log. The salted permutation must actually flip
// their firing order — if it did not, every invariance test above would
// pass vacuously.

std::vector<int> toy_firing_order(const util::TiePerturbation& p) {
    util::EventQueue q;
    q.set_perturbation(p);
    std::vector<int> order;
    for (int i = 0; i < 4; ++i)
        q.schedule(util::SimTime::from_micros(10), /*priority=*/2,
                   [&order, i] { order.push_back(i); });
    while (q.run_one()) {
    }
    return order;
}

TEST(Perturbation, SaltedPermutationReallyReordersSameTickTies) {
    const std::vector<int> fifo = toy_firing_order(util::TiePerturbation{});
    EXPECT_EQ(fifo, (std::vector<int>{0, 1, 2, 3}));

    util::TiePerturbation salted;
    salted.salt = 0x3;  // flips the low id bits: 0<->3, 1<->2 within the tick
    salted.permute_priorities = 1ULL << 2;
    EXPECT_EQ(toy_firing_order(salted), (std::vector<int>{3, 2, 1, 0}))
        << "the salt failed to permute same-tick insertion ties";
}

TEST(Perturbation, UnpermutedClassesKeepFifoOrderUnderSalt) {
    util::TiePerturbation salted;
    salted.salt = 0x3;
    salted.permute_priorities = 1ULL << 5;  // some *other* class
    EXPECT_EQ(toy_firing_order(salted), (std::vector<int>{0, 1, 2, 3}))
        << "the salt leaked into a class it was not asked to permute";
}

TEST(Perturbation, PerturbationRejectedOnceEventsWereIssued) {
    util::EventQueue q;
    q.schedule(util::SimTime::zero(), 0, [] {});
    EXPECT_THROW(q.set_perturbation(util::TiePerturbation{}), std::logic_error);
}

}  // namespace
}  // namespace jaws::core
