// Tests for the atom store (storage/atom_store.h).
#include <gtest/gtest.h>

#include <stdexcept>

#include "storage/atom_store.h"
#include "util/morton.h"

namespace jaws::storage {
namespace {

AtomStoreSpec small_spec(bool materialize = false) {
    AtomStoreSpec spec;
    spec.grid.voxels_per_side = 64;
    spec.grid.atom_side = 16;
    spec.grid.ghost = 2;
    spec.grid.timesteps = 3;
    spec.field.modes = 6;
    spec.materialize_data = materialize;
    return spec;
}

TEST(AtomStore, IndexCoversWholeDataset) {
    AtomStore store(small_spec());
    EXPECT_EQ(store.index().size(), store.grid().total_atoms());
    EXPECT_TRUE(store.index().check_invariants());
}

TEST(AtomStore, ContainsInBounds) {
    AtomStore store(small_spec());
    EXPECT_TRUE(store.contains({0, 0}));
    EXPECT_TRUE(store.contains({2, util::morton_encode(3, 3, 3)}));
    EXPECT_FALSE(store.contains({3, 0}));  // timestep out of range
    EXPECT_FALSE(store.contains({0, util::morton_encode(4, 0, 0)}));
}

TEST(AtomStore, ReadChargesIo) {
    AtomStore store(small_spec());
    const ReadResult r = store.read({1, util::morton_encode(2, 1, 0)});
    EXPECT_GT(r.io_cost.micros, 0);
    EXPECT_EQ(r.data, nullptr);  // not materialising
    EXPECT_EQ(store.disk_stats().requests, 1u);
}

TEST(AtomStore, ReadOutOfRangeThrows) {
    AtomStore store(small_spec());
    EXPECT_THROW(store.read({9, 0}), std::out_of_range);
}

TEST(AtomStore, MortonNeighborsAreCheapAfterRead) {
    // Atoms adjacent in Morton order within a time step sit adjacently on
    // disk: reading them in Morton order is sequential (no seek).
    AtomStore store(small_spec());
    std::uint64_t codes[2] = {util::morton_encode(0, 0, 0), util::morton_encode(1, 0, 0)};
    const util::SimTime first = store.read({0, codes[0]}).io_cost;
    const util::SimTime second = store.read({0, codes[1]}).io_cost;
    EXPECT_LT(second.micros, first.micros + 1);  // no seek on the second
}

TEST(AtomStore, CrossTimestepReadSeeks) {
    AtomStore store(small_spec());
    store.read({0, 0});
    const util::SimTime near = store.read({0, 1}).io_cost;  // sequential
    store.read({0, 2});
    const util::SimTime far = store.read({2, 0}).io_cost;  // jumps two steps
    EXPECT_GT(far.micros, near.micros);
}

TEST(AtomStore, MaterializesVoxelData) {
    AtomStore store(small_spec(true));
    const ReadResult r = store.read({1, util::morton_encode(1, 1, 1)});
    ASSERT_NE(r.data, nullptr);
    EXPECT_EQ(r.data->extent(), store.grid().atom_side + 2 * store.grid().ghost);
}

TEST(AtomStore, MaterializedDataIsDeterministic) {
    AtomStore a(small_spec(true));
    AtomStore b(small_spec(true));
    const AtomId id{0, util::morton_encode(2, 0, 1)};
    const auto da = a.read(id).data;
    const auto db = b.read(id).data;
    EXPECT_EQ(da->at(3, 4, 5).velocity.x, db->at(3, 4, 5).velocity.x);
    EXPECT_EQ(da->at(3, 4, 5).pressure, db->at(3, 4, 5).pressure);
}

TEST(AtomStore, ResetStatsClearsCounters) {
    AtomStore store(small_spec());
    store.read({0, 0});
    store.reset_stats();
    EXPECT_EQ(store.disk_stats().requests, 0u);
}

}  // namespace
}  // namespace jaws::storage
