// Cross-module integration tests: the full pipeline from workload generation
// through scheduling, caching and execution, plus particle tracking with real
// data through the batch engine.
#include <gtest/gtest.h>

#include <cmath>

#include "core/direct_executor.h"
#include "core/engine.h"
#include "workload/generator.h"
#include "workload/particle_tracker.h"

namespace jaws {
namespace {

core::EngineConfig small_config() {
    core::EngineConfig c;
    c.grid.voxels_per_side = 256;
    c.grid.atom_side = 32;
    c.grid.ghost = 4;
    c.grid.timesteps = 8;
    c.field.modes = 6;
    c.field.max_wavenumber = 3.0;
    c.cache.capacity_atoms = 32;
    return c;
}

TEST(Integration, FiveSystemOrderingOnSharedTrace) {
    // The headline sanity check: on a contended trace, every batch scheduler
    // reads less than NoShare, and JAWS_2 never reads more than JAWS_1.
    core::EngineConfig base = small_config();
    workload::WorkloadSpec spec;
    spec.jobs = 70;
    spec.seed = 2;
    const field::SyntheticField field(base.field);
    const workload::Workload w = workload::generate_workload(spec, base.grid, field);

    const auto run = [&](core::SchedulerSpec s) {
        core::EngineConfig config = base;
        config.scheduler = s;
        core::Engine engine(config);
        return engine.run(w);
    };
    core::SchedulerSpec noshare;
    noshare.kind = core::SchedulerKind::kNoShare;
    core::SchedulerSpec liferaft;
    liferaft.kind = core::SchedulerKind::kLifeRaft;
    core::SchedulerSpec jaws1;
    jaws1.kind = core::SchedulerKind::kJaws;
    jaws1.jaws.job_aware = false;
    core::SchedulerSpec jaws2;
    jaws2.kind = core::SchedulerKind::kJaws;

    const auto rn = run(noshare);
    const auto rl = run(liferaft);
    const auto r1 = run(jaws1);
    const auto r2 = run(jaws2);
    EXPECT_LT(rl.atom_reads, rn.atom_reads);
    EXPECT_LT(r1.atom_reads, rn.atom_reads);
    EXPECT_LT(r2.atom_reads, rn.atom_reads);
    EXPECT_LE(r2.atom_reads, r1.atom_reads + r1.atom_reads / 20);
    EXPECT_EQ(r2.gating.forced_promotions, 0u);
    // All four executed exactly the same logical work.
    EXPECT_EQ(rn.positions, r2.positions);
    EXPECT_EQ(rn.queries, r2.queries);
}

TEST(Integration, ParticleTrackingThroughBatchEngineWithRealData) {
    // Build an ordered tracking job with explicit positions, run it through
    // the batch engine with materialised data, and verify the whole pipeline
    // completes with the job's dependencies respected.
    core::EngineConfig config = small_config();
    config.materialize_data = true;
    config.scheduler.kind = core::SchedulerKind::kJaws;
    const field::SyntheticField field(config.field);

    workload::ParticleTrackingSpec pspec;
    pspec.particles = 64;
    pspec.steps = 5;
    pspec.seed_center = {0.4, 0.5, 0.6};
    workload::Job job = workload::make_particle_tracking_job(pspec, config.grid, field, 1, 1,
                                                             util::SimTime::zero());
    workload::QueryId next_id = 1;
    for (auto& q : job.queries) q.id = next_id++;

    workload::Workload w;
    w.jobs.push_back(std::move(job));
    core::Engine engine(config);
    const core::RunReport report = engine.run(w);
    EXPECT_EQ(report.queries, 5u);
    // Sequential completion of the chain.
    for (std::size_t i = 1; i < engine.outcomes().size(); ++i)
        EXPECT_GE(engine.outcomes()[i].completed.micros,
                  engine.outcomes()[i - 1].completed.micros);
}

TEST(Integration, InterpolatedAdvectionTracksAnalyticTrajectory) {
    // Drive a particle cloud with *interpolated* velocities (the database
    // path) and compare against advection using the analytic field: the two
    // trajectories must stay close over several steps — the data dependency
    // of ordered jobs is genuine, not scripted.
    core::EngineConfig config = small_config();
    core::DirectExecutor exec(config);
    const field::SyntheticField& truth = exec.field();

    workload::ParticleTrackingSpec pspec;
    pspec.particles = 32;
    pspec.seed_center = {0.5, 0.5, 0.5};
    pspec.seed_radius = 0.04;
    std::vector<field::Vec3> via_db = workload::seed_particles(pspec);
    std::vector<field::Vec3> via_field = via_db;

    const double dt = config.grid.dt;
    for (std::uint32_t step = 0; step + 1 < 5; ++step) {
        const double t = config.grid.sim_time(step);
        // Database path: interpolate velocity, explicit Euler step.
        const core::DirectResult result =
            exec.evaluate(step, via_db, field::InterpOrder::kLag6);
        for (std::size_t i = 0; i < via_db.size(); ++i) {
            via_db[i] = field::Vec3{
                field::wrap01(via_db[i].x + dt * result.samples[i].velocity.x),
                field::wrap01(via_db[i].y + dt * result.samples[i].velocity.y),
                field::wrap01(via_db[i].z + dt * result.samples[i].velocity.z)};
        }
        // Ground-truth path with the same integrator.
        for (auto& p : via_field) {
            const field::Vec3 v = truth.velocity(p, t);
            p = field::Vec3{field::wrap01(p.x + dt * v.x), field::wrap01(p.y + dt * v.y),
                            field::wrap01(p.z + dt * v.z)};
        }
    }
    double max_err = 0.0;
    for (std::size_t i = 0; i < via_db.size(); ++i) {
        const auto dist1 = [](double a, double b) {
            const double d = std::fabs(a - b);
            return std::min(d, 1.0 - d);
        };
        max_err = std::max(max_err, dist1(via_db[i].x, via_field[i].x));
        max_err = std::max(max_err, dist1(via_db[i].y, via_field[i].y));
        max_err = std::max(max_err, dist1(via_db[i].z, via_field[i].z));
    }
    EXPECT_LT(max_err, 1e-3);
}

TEST(Integration, CachePoliciesAllCompleteSameWork) {
    core::EngineConfig base = small_config();
    base.scheduler.kind = core::SchedulerKind::kJaws;
    workload::WorkloadSpec spec;
    spec.jobs = 40;
    spec.seed = 8;
    const field::SyntheticField field(base.field);
    const workload::Workload w = workload::generate_workload(spec, base.grid, field);
    std::uint64_t positions = 0;
    for (const auto& job : w.jobs) positions += job.total_positions();

    for (const core::CachePolicy policy :
         {core::CachePolicy::kLruK, core::CachePolicy::kSlru, core::CachePolicy::kUrc}) {
        core::EngineConfig config = base;
        config.cache.policy = policy;
        core::Engine engine(config);
        const core::RunReport report = engine.run(w);
        ASSERT_EQ(report.positions, positions);
        ASSERT_EQ(report.queries, w.total_queries());
    }
}

TEST(Integration, SaturationSweepIsMonotoneInArrivalCompression) {
    // As speedup rises the same work arrives in less time, so the virtual
    // makespan must not increase.
    core::EngineConfig config = small_config();
    config.scheduler.kind = core::SchedulerKind::kJaws;
    workload::WorkloadSpec spec;
    spec.jobs = 40;
    spec.seed = 10;
    const field::SyntheticField field(config.field);
    const workload::Workload base = workload::generate_workload(spec, config.grid, field);

    util::SimTime previous_makespan{INT64_MAX};
    for (const double speedup : {0.5, 2.0, 8.0}) {
        workload::Workload w = base;
        workload::apply_speedup(w, speedup);
        core::Engine engine(config);
        const core::RunReport report = engine.run(w);
        EXPECT_LE(report.makespan.micros, previous_makespan.micros);
        previous_makespan = report.makespan;
    }
}

}  // namespace
}  // namespace jaws
