// Tests for the 2Q replacement policy (cache/two_q.h).
#include <gtest/gtest.h>

#include <memory>

#include "cache/buffer_cache.h"
#include "cache/two_q.h"

namespace jaws::cache {
namespace {

storage::AtomId atom(std::uint64_t m) { return storage::AtomId{0, m}; }

TEST(TwoQ, NewAtomsEnterA1in) {
    auto policy = std::make_unique<TwoQPolicy>(8, 0.5);
    TwoQPolicy* raw = policy.get();
    BufferCache cache(8, std::move(policy));
    cache.insert(atom(1));
    cache.insert(atom(2));
    EXPECT_EQ(raw->a1in_size(), 2u);
    EXPECT_EQ(raw->am_size(), 0u);
}

TEST(TwoQ, A1inEvictsFifo) {
    auto policy = std::make_unique<TwoQPolicy>(2, 0.5);  // in_cap = 1
    BufferCache cache(2, std::move(policy));
    cache.insert(atom(1));
    cache.insert(atom(2));
    const auto evicted = cache.insert(atom(3));
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, atom(1));  // oldest FIFO entry
}

TEST(TwoQ, GhostReReferencePromotesToAm) {
    auto policy = std::make_unique<TwoQPolicy>(2, 0.5);
    TwoQPolicy* raw = policy.get();
    BufferCache cache(2, std::move(policy));
    cache.insert(atom(1));
    cache.insert(atom(2));
    cache.insert(atom(3));  // evicts 1 -> ghost
    EXPECT_EQ(raw->ghost_size(), 1u);
    cache.insert(atom(1));  // ghosted atom returns -> straight into Am
    EXPECT_EQ(raw->am_size(), 1u);
}

TEST(TwoQ, A1inAccessDoesNotPromote) {
    auto policy = std::make_unique<TwoQPolicy>(4, 0.5);
    TwoQPolicy* raw = policy.get();
    BufferCache cache(4, std::move(policy));
    cache.insert(atom(1));
    cache.lookup(atom(1));  // correlated reference
    cache.lookup(atom(1));
    EXPECT_EQ(raw->am_size(), 0u);
    EXPECT_EQ(raw->a1in_size(), 1u);
}

TEST(TwoQ, ScanResistance) {
    // A hot atom promoted to Am survives a long one-shot scan.
    auto policy = std::make_unique<TwoQPolicy>(4, 0.25);  // in_cap = 1
    BufferCache cache(4, std::move(policy));
    const auto hot = atom(99);
    cache.insert(hot);
    // Fill to capacity and push one more: hot is the A1in FIFO victim.
    for (std::uint64_t i = 1; i <= 4; ++i) cache.insert(atom(i));
    ASSERT_FALSE(cache.contains(hot));  // ghosted now
    cache.insert(hot);                  // ghost re-reference -> Am
    // Scan 20 cold atoms through the cache: victims drain A1in, not Am.
    for (std::uint64_t i = 10; i < 30; ++i) cache.insert(atom(i));
    EXPECT_TRUE(cache.contains(hot));
}

TEST(TwoQ, AmUsesLruOrder) {
    auto policy = std::make_unique<TwoQPolicy>(3, 0.34);  // in_cap = 1
    TwoQPolicy* raw = policy.get();
    BufferCache cache(3, std::move(policy));
    cache.insert(atom(1));
    cache.insert(atom(2));
    cache.insert(atom(3));   // at capacity; A1in = [3, 2, 1]
    cache.insert(atom(4));   // evicts 1 (FIFO) -> ghost
    cache.insert(atom(1));   // 1 -> Am; evicts 2 -> ghost
    cache.insert(atom(2));   // 2 -> Am (MRU); evicts 3 -> ghost; A1in = [4]
    ASSERT_EQ(raw->am_size(), 2u);
    cache.lookup(atom(1));   // refresh: Am = [1 (MRU), 2]
    // A1in is within its cap, so the next eviction takes the Am LRU tail.
    const auto evicted = cache.insert(atom(5));
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, atom(2));
}

TEST(TwoQ, GhostListBounded) {
    auto policy = std::make_unique<TwoQPolicy>(2, 0.5);
    TwoQPolicy* raw = policy.get();
    BufferCache cache(2, std::move(policy));
    for (std::uint64_t i = 0; i < 50; ++i) cache.insert(atom(i));
    EXPECT_LE(raw->ghost_size(), 2u);  // ghost cap == capacity
}

TEST(TwoQ, WorksAsEnginePolicy) {
    BufferCache cache(4, std::make_unique<TwoQPolicy>(4));
    for (std::uint64_t i = 0; i < 100; ++i) {
        const auto a = atom(i % 7);
        if (!cache.lookup(a)) cache.insert(a);
    }
    EXPECT_EQ(cache.size(), 4u);
    EXPECT_GT(cache.stats().hits, 0u);
}

}  // namespace
}  // namespace jaws::cache
