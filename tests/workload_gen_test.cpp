// Tests for the calibrated workload generator (workload/generator.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <tuple>
#include <utility>
#include <vector>

#include "util/morton.h"
#include "workload/generator.h"

namespace jaws::workload {
namespace {

struct Fixture {
    Fixture() : field(field::FieldSpec{.modes = 8}), grid(field::GridSpec{}) {
        WorkloadSpec spec;
        spec.jobs = 400;
        spec.seed = 123;
        workload = generate_workload(spec, grid, field);
    }

    field::SyntheticField field;
    field::GridSpec grid;
    Workload workload;
};

Fixture& fixture() {
    static Fixture f;
    return f;
}

TEST(Generator, ProducesRequestedJobCount) {
    EXPECT_EQ(fixture().workload.jobs.size(), 400u);
}

TEST(Generator, DeterministicInSeed) {
    WorkloadSpec spec;
    spec.jobs = 50;
    spec.seed = 9;
    const Workload a = generate_workload(spec, fixture().grid, fixture().field);
    const Workload b = generate_workload(spec, fixture().grid, fixture().field);
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
        ASSERT_EQ(a.jobs[i].queries.size(), b.jobs[i].queries.size());
        ASSERT_EQ(a.jobs[i].arrival, b.jobs[i].arrival);
        for (std::size_t j = 0; j < a.jobs[i].queries.size(); ++j) {
            ASSERT_EQ(a.jobs[i].queries[j].footprint.size(),
                      b.jobs[i].queries[j].footprint.size());
            ASSERT_EQ(a.jobs[i].queries[j].total_positions(),
                      b.jobs[i].queries[j].total_positions());
        }
    }
}

TEST(Generator, DifferentSeedsDiffer) {
    WorkloadSpec spec;
    spec.jobs = 30;
    spec.seed = 1;
    const Workload a = generate_workload(spec, fixture().grid, fixture().field);
    spec.seed = 2;
    const Workload b = generate_workload(spec, fixture().grid, fixture().field);
    EXPECT_NE(a.total_queries(), b.total_queries());
}

TEST(Generator, JobsSortedByArrival) {
    const auto& jobs = fixture().workload.jobs;
    EXPECT_TRUE(std::is_sorted(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
        return a.arrival < b.arrival;
    }));
}

TEST(Generator, QueryIdsGloballyUnique) {
    std::vector<QueryId> ids;
    for (const auto& job : fixture().workload.jobs)
        for (const auto& q : job.queries) ids.push_back(q.id);
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(Generator, SequenceNumbersContiguous) {
    for (const auto& job : fixture().workload.jobs)
        for (std::size_t i = 0; i < job.queries.size(); ++i)
            ASSERT_EQ(job.queries[i].seq_in_job, i);
}

TEST(Generator, FootprintsMortonSorted) {
    for (const auto& job : fixture().workload.jobs) {
        for (const auto& q : job.queries) {
            ASSERT_FALSE(q.footprint.empty());
            ASSERT_TRUE(std::is_sorted(q.footprint.begin(), q.footprint.end(),
                                       [](const AtomRequest& a, const AtomRequest& b) {
                                           return a.atom.morton < b.atom.morton;
                                       }));
        }
    }
}

TEST(Generator, FootprintAtomsWithinDataset) {
    const auto& grid = fixture().grid;
    const std::uint64_t aps = grid.atoms_per_side();
    for (const auto& job : fixture().workload.jobs) {
        for (const auto& q : job.queries) {
            ASSERT_LT(q.timestep, grid.timesteps);
            for (const auto& req : q.footprint) {
                ASSERT_EQ(req.atom.timestep, q.timestep);
                const util::Coord3 c = util::morton_decode(req.atom.morton);
                ASSERT_LT(c.x, aps);
                ASSERT_LT(c.y, aps);
                ASSERT_LT(c.z, aps);
                ASSERT_GT(req.positions, 0u);
            }
        }
    }
}

TEST(Generator, PositionCountsWithinBounds) {
    const WorkloadSpec spec;
    for (const auto& job : fixture().workload.jobs)
        for (const auto& q : job.queries) {
            ASSERT_GE(q.total_positions(), spec.min_positions);
            ASSERT_LE(q.total_positions(), spec.max_positions);
        }
}

TEST(Generator, OrderedJobsAdjacentStepsDifferByAtMostOne) {
    for (const auto& job : fixture().workload.jobs) {
        if (job.type != JobType::kOrdered) continue;
        for (std::size_t i = 1; i < job.queries.size(); ++i) {
            const auto delta = static_cast<std::int64_t>(job.queries[i].timestep) -
                               static_cast<std::int64_t>(job.queries[i - 1].timestep);
            ASSERT_LE(std::llabs(delta), 1);
        }
    }
}

TEST(Generator, BatchedJobsStayOnOneStep) {
    for (const auto& job : fixture().workload.jobs) {
        if (job.type != JobType::kBatched) continue;
        for (const auto& q : job.queries)
            ASSERT_EQ(q.timestep, job.queries.front().timestep);
    }
}

TEST(Generator, SingleStepFractionNearPaper) {
    std::size_t single = 0;
    for (const auto& job : fixture().workload.jobs)
        if (job.timestep_span() <= 1) ++single;
    const double frac =
        static_cast<double>(single) / static_cast<double>(fixture().workload.jobs.size());
    EXPECT_NEAR(frac, 0.88, 0.08);  // paper Sec. VI-A
}

TEST(Generator, MostQueriesBelongToJobs) {
    std::size_t in_jobs = 0, total = 0;
    for (const auto& job : fixture().workload.jobs) {
        total += job.queries.size();
        if (job.queries.size() > 1) in_jobs += job.queries.size();
    }
    EXPECT_GT(static_cast<double>(in_jobs) / static_cast<double>(total), 0.95);
}

TEST(Generator, HotStepsCarryMostQueries) {
    const auto counts = queries_per_timestep(fixture().workload, fixture().grid.timesteps);
    std::vector<std::uint64_t> sorted(counts.begin(), counts.end());
    std::sort(sorted.rbegin(), sorted.rend());
    const std::uint64_t total = std::accumulate(sorted.begin(), sorted.end(), 0ULL);
    std::uint64_t top12 = 0;
    for (std::size_t i = 0; i < 12 && i < sorted.size(); ++i) top12 += sorted[i];
    EXPECT_GT(static_cast<double>(top12) / static_cast<double>(total), 0.55);
}

TEST(Generator, EndsHotterThanMiddle) {
    const auto counts = queries_per_timestep(fixture().workload, fixture().grid.timesteps);
    const std::size_t n = counts.size();
    const std::uint64_t ends = counts[0] + counts[1] + counts[n - 2] + counts[n - 1];
    const std::uint64_t middle =
        counts[n / 2 - 2] + counts[n / 2 - 1] + counts[n / 2] + counts[n / 2 + 1];
    EXPECT_GT(ends, middle);
}

TEST(Generator, ThinkTimesNonNegativeAndFirstZeroForOrdered) {
    for (const auto& job : fixture().workload.jobs) {
        if (job.type != JobType::kOrdered) continue;
        ASSERT_EQ(job.queries.front().think_time, util::SimTime::zero());
        for (const auto& q : job.queries) ASSERT_GE(q.think_time.micros, 0);
    }
}

TEST(ApplySpeedup, CompressesGapsExactly) {
    Workload w;
    for (int i = 0; i < 3; ++i) {
        Job job;
        job.id = static_cast<JobId>(i + 1);
        job.arrival = util::SimTime::from_seconds(120.0 * i);
        w.jobs.push_back(job);
    }
    apply_speedup(w, 2.0);
    EXPECT_EQ(w.jobs[0].arrival.micros, 0);
    EXPECT_EQ(w.jobs[1].arrival.micros, 60'000'000);
    EXPECT_EQ(w.jobs[2].arrival.micros, 120'000'000);
}

TEST(ApplySpeedup, SlowdownStretchesGaps) {
    Workload w;
    Job a, b;
    a.arrival = util::SimTime::from_seconds(10);
    b.arrival = util::SimTime::from_seconds(20);
    w.jobs = {a, b};
    apply_speedup(w, 0.5);
    EXPECT_EQ((w.jobs[1].arrival - w.jobs[0].arrival).micros, 20'000'000);
}

TEST(ApplySpeedup, IdentityAtOne) {
    WorkloadSpec spec;
    spec.jobs = 20;
    Workload w = generate_workload(spec, fixture().grid, fixture().field);
    const Workload copy = w;
    apply_speedup(w, 1.0);
    for (std::size_t i = 0; i < w.jobs.size(); ++i)
        ASSERT_EQ(w.jobs[i].arrival, copy.jobs[i].arrival);
}

TEST(QueriesPerTimestep, SumsToTotal) {
    const auto counts = queries_per_timestep(fixture().workload, fixture().grid.timesteps);
    const std::uint64_t total = std::accumulate(counts.begin(), counts.end(), 0ULL);
    EXPECT_EQ(total, fixture().workload.total_queries());
}

TEST(MortonBlockPositions, PermutesIntoBlockedOrderWithFootprintUnchanged) {
    using field::Vec3;
    WorkloadSpec spec;
    spec.jobs = 12;
    spec.seed = 31;
    spec.max_positions = 300;
    Workload w = generate_workload(spec, fixture().grid, fixture().field);
    materialize_positions(w, fixture().grid, /*seed=*/17);
    Workload blocked = w;
    morton_block_positions(blocked, fixture().grid);

    ASSERT_EQ(blocked.jobs.size(), w.jobs.size());
    for (std::size_t j = 0; j < w.jobs.size(); ++j) {
        ASSERT_EQ(blocked.jobs[j].queries.size(), w.jobs[j].queries.size());
        for (std::size_t k = 0; k < w.jobs[j].queries.size(); ++k) {
            const Query& before = w.jobs[j].queries[k];
            const Query& after = blocked.jobs[j].queries[k];

            // Footprint (hence the virtual trace) untouched.
            ASSERT_EQ(after.footprint.size(), before.footprint.size());
            for (std::size_t f = 0; f < before.footprint.size(); ++f) {
                EXPECT_EQ(after.footprint[f].atom.morton, before.footprint[f].atom.morton);
                EXPECT_EQ(after.footprint[f].positions, before.footprint[f].positions);
            }

            // The positions are a permutation of the originals...
            const auto key = [](const Vec3& p) { return std::tie(p.x, p.y, p.z); };
            std::vector<Vec3> a = before.positions, b = after.positions;
            std::sort(a.begin(), a.end(),
                      [&](const Vec3& l, const Vec3& r) { return key(l) < key(r); });
            std::sort(b.begin(), b.end(),
                      [&](const Vec3& l, const Vec3& r) { return key(l) < key(r); });
            ASSERT_EQ(a.size(), b.size());
            for (std::size_t i = 0; i < a.size(); ++i) {
                EXPECT_EQ(a[i].x, b[i].x);
                EXPECT_EQ(a[i].y, b[i].y);
                EXPECT_EQ(a[i].z, b[i].z);
            }

            // ...sorted by (atom Morton, voxel Morton).
            for (std::size_t i = 1; i < after.positions.size(); ++i) {
                const auto morton_key = [&](const Vec3& p) {
                    return std::make_pair(
                        fixture().grid.atom_morton_of(p),
                        util::morton_encode(fixture().grid.voxel_of(p)));
                };
                EXPECT_LE(morton_key(after.positions[i - 1]),
                          morton_key(after.positions[i]));
            }
        }
    }

    // Idempotent and deterministic: blocking a blocked workload is a no-op.
    Workload again = blocked;
    morton_block_positions(again, fixture().grid);
    for (std::size_t j = 0; j < blocked.jobs.size(); ++j)
        for (std::size_t k = 0; k < blocked.jobs[j].queries.size(); ++k)
            for (std::size_t i = 0; i < blocked.jobs[j].queries[k].positions.size(); ++i)
                EXPECT_EQ(again.jobs[j].queries[k].positions[i].x,
                          blocked.jobs[j].queries[k].positions[i].x);
}

TEST(Job, TimestepSpan) {
    Job job;
    EXPECT_EQ(job.timestep_span(), 0u);
    Query q1, q2;
    q1.timestep = 3;
    q2.timestep = 7;
    job.queries = {q1, q2};
    EXPECT_EQ(job.timestep_span(), 5u);
}

TEST(Job, TotalPositions) {
    Job job;
    Query q;
    q.footprint = {AtomRequest{{0, 0}, 10}, AtomRequest{{0, 1}, 20}};
    job.queries = {q, q};
    EXPECT_EQ(job.total_positions(), 60u);
}

}  // namespace
}  // namespace jaws::workload
