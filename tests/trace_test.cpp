// Tests for trace flattening and CSV round-trip (workload/trace.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "workload/generator.h"
#include "workload/trace.h"

namespace jaws::workload {
namespace {

Workload small_workload() {
    WorkloadSpec spec;
    spec.jobs = 40;
    spec.seed = 77;
    const field::GridSpec grid;
    const field::SyntheticField field(field::FieldSpec{.modes = 6});
    return generate_workload(spec, grid, field);
}

TEST(Trace, FlattenCountMatches) {
    const Workload w = small_workload();
    const auto records = flatten(w);
    EXPECT_EQ(records.size(), w.total_queries());
}

TEST(Trace, FlattenSortedBySubmitTime) {
    const auto records = flatten(small_workload());
    EXPECT_TRUE(std::is_sorted(records.begin(), records.end(),
                               [](const TraceRecord& a, const TraceRecord& b) {
                                   return a.submit < b.submit;
                               }));
}

TEST(Trace, OrderedJobsSubmitSequentially) {
    const Workload w = small_workload();
    const auto records = flatten(w);
    // Within a job, submission times must ascend with sequence number.
    std::unordered_map<JobId, util::SimTime> last;
    std::unordered_map<JobId, std::uint32_t> last_seq;
    for (const auto& r : records) {
        if (r.job_type != JobType::kOrdered) continue;
        const auto it = last.find(r.true_job);
        if (it != last.end()) {
            ASSERT_GE(r.submit.micros, it->second.micros);
            ASSERT_EQ(r.seq_in_job, last_seq[r.true_job] + 1);
        }
        last[r.true_job] = r.submit;
        last_seq[r.true_job] = r.seq_in_job;
    }
}

TEST(Trace, RecordsCarryFootprintSummary) {
    const Workload w = small_workload();
    const auto records = flatten(w);
    std::unordered_map<QueryId, const Query*> queries;
    for (const auto& job : w.jobs)
        for (const auto& q : job.queries) queries[q.id] = &q;
    for (const auto& r : records) {
        const Query* q = queries.at(r.query);
        ASSERT_EQ(r.positions, q->total_positions());
        ASSERT_EQ(r.atoms, q->footprint.size());
        ASSERT_EQ(r.timestep, q->timestep);
        ASSERT_EQ(r.user, q->user);
    }
}

TEST(Trace, CsvRoundTrip) {
    const auto records = flatten(small_workload());
    const std::string path = ::testing::TempDir() + "/jaws_trace_test.csv";
    save_csv(path, records);
    const auto loaded = load_csv(path);
    ASSERT_EQ(loaded.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        ASSERT_EQ(loaded[i].query, records[i].query);
        ASSERT_EQ(loaded[i].true_job, records[i].true_job);
        ASSERT_EQ(loaded[i].seq_in_job, records[i].seq_in_job);
        ASSERT_EQ(loaded[i].user, records[i].user);
        ASSERT_EQ(loaded[i].job_type, records[i].job_type);
        ASSERT_EQ(loaded[i].timestep, records[i].timestep);
        ASSERT_EQ(loaded[i].kind, records[i].kind);
        ASSERT_EQ(loaded[i].positions, records[i].positions);
        ASSERT_EQ(loaded[i].atoms, records[i].atoms);
        ASSERT_EQ(loaded[i].submit, records[i].submit);
    }
    std::remove(path.c_str());
}

TEST(Trace, LoadMissingFileThrows) {
    EXPECT_THROW(load_csv("/nonexistent/path/trace.csv"), std::runtime_error);
}

TEST(Trace, LoadMalformedThrows) {
    const std::string path = ::testing::TempDir() + "/jaws_trace_bad.csv";
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fprintf(f, "header\nnot,a,valid,row\n");
    std::fclose(f);
    EXPECT_THROW(load_csv(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(Trace, EmptyWorkloadFlattensEmpty) {
    EXPECT_TRUE(flatten(Workload{}).empty());
}

// --------------------------------------------------------------------------
// Fuzz-pinned parser regressions (fuzz/fuzz_trace.cpp). Each literal below
// mirrors a corpus file under fuzz/corpus/fuzz_trace/, replayed as the
// FuzzReplay.fuzz_trace ctest in every build.
// --------------------------------------------------------------------------

constexpr const char* kHeader =
    "query,job,seq,user,job_type,timestep,kind,positions,atoms,submit_us\n";

TEST(Trace, ParseCsvAcceptsAValidRow) {
    const auto records = parse_csv(
        std::string(kHeader) + "7,3,2,1,1,40,2,1200,9,500000\n");
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].query, 7u);
    EXPECT_EQ(records[0].job_type, JobType::kBatched);
    EXPECT_EQ(records[0].kind, storage::ComputeKind::kFlowStats);
    EXPECT_EQ(records[0].submit.micros, 500'000);
}

TEST(Trace, ParseCsvRejectsOverflowingField) {
    // regression-overflow.csv: a seq column wider than any integer type.
    // The old scanf-based parser silently wrapped (UB for the unsigned
    // conversions); the from_chars parser must reject the row.
    EXPECT_THROW(
        parse_csv(std::string(kHeader) +
                  "1,1,99999999999999999999999,0,0,1,0,10,1,0\n"),
        std::runtime_error);
}

TEST(Trace, ParseCsvRejectsOutOfRangeEnums) {
    // regression-bad-enum.csv: numeric but undeclared enumerators must not
    // materialise as TraceRecord fields.
    EXPECT_THROW(parse_csv(std::string(kHeader) + "1,1,0,0,7,1,0,10,1,0\n"),
                 std::runtime_error);  // job_type 7
    EXPECT_THROW(parse_csv(std::string(kHeader) + "1,1,0,0,0,1,9,10,1,0\n"),
                 std::runtime_error);  // kind 9
}

TEST(Trace, ParseCsvRejectsTruncatedAndOverlongRows) {
    // regression-truncated-row.csv: nine fields, or eleven, is not a record.
    EXPECT_THROW(parse_csv(std::string(kHeader) + "1,1,0,0,0,1,0,10,1\n"),
                 std::runtime_error);
    EXPECT_THROW(parse_csv(std::string(kHeader) + "1,1,0,0,0,1,0,10,1,0,5\n"),
                 std::runtime_error);
}

TEST(Trace, ParseCsvAcceptsCrlfAndMissingTrailingNewline) {
    const auto crlf = parse_csv(std::string(kHeader) +
                                "1,1,0,0,0,1,0,10,1,0\r\n"
                                "2,1,1,0,0,1,0,10,1,5");
    ASSERT_EQ(crlf.size(), 2u);
    EXPECT_EQ(crlf[1].query, 2u);
}

TEST(Trace, ToCsvRoundTripsInMemory) {
    // The filesystem-free counterpart of CsvRoundTrip, and the oracle the
    // fuzzer uses: parse_csv(to_csv(r)) == r, field for field.
    const auto records = flatten(small_workload());
    const auto reparsed = parse_csv(to_csv(records));
    ASSERT_EQ(reparsed.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        ASSERT_EQ(reparsed[i].query, records[i].query);
        ASSERT_EQ(reparsed[i].true_job, records[i].true_job);
        ASSERT_EQ(reparsed[i].seq_in_job, records[i].seq_in_job);
        ASSERT_EQ(reparsed[i].user, records[i].user);
        ASSERT_EQ(reparsed[i].job_type, records[i].job_type);
        ASSERT_EQ(reparsed[i].timestep, records[i].timestep);
        ASSERT_EQ(reparsed[i].kind, records[i].kind);
        ASSERT_EQ(reparsed[i].positions, records[i].positions);
        ASSERT_EQ(reparsed[i].atoms, records[i].atoms);
        ASSERT_EQ(reparsed[i].submit, records[i].submit);
    }
}

}  // namespace
}  // namespace jaws::workload
