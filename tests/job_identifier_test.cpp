// Tests for the job-identification heuristics (workload/job_identifier.h).
#include <gtest/gtest.h>

#include "workload/generator.h"
#include "workload/job_identifier.h"

namespace jaws::workload {
namespace {

TraceRecord record(QueryId id, JobId job, UserId user, std::uint32_t step,
                   double submit_s, storage::ComputeKind kind = storage::ComputeKind::kVelocity) {
    TraceRecord r;
    r.query = id;
    r.true_job = job;
    r.user = user;
    r.timestep = step;
    r.submit = util::SimTime::from_seconds(submit_s);
    r.kind = kind;
    return r;
}

TEST(JobIdentifier, SingleChainRecovered) {
    std::vector<TraceRecord> records;
    for (std::uint32_t i = 0; i < 10; ++i)
        records.push_back(record(i + 1, 1, 7, i, 10.0 * i));
    const auto labels = identify_jobs(records);
    for (std::size_t i = 1; i < labels.size(); ++i) ASSERT_EQ(labels[i], labels[0]);
}

TEST(JobIdentifier, DifferentUsersNeverMerge) {
    std::vector<TraceRecord> records;
    records.push_back(record(1, 1, 1, 0, 0.0));
    records.push_back(record(2, 2, 2, 0, 1.0));
    const auto labels = identify_jobs(records);
    EXPECT_NE(labels[0], labels[1]);
}

TEST(JobIdentifier, DifferentOperationsSplit) {
    std::vector<TraceRecord> records;
    records.push_back(record(1, 1, 1, 0, 0.0, storage::ComputeKind::kVelocity));
    records.push_back(record(2, 1, 1, 0, 1.0, storage::ComputeKind::kFlowStats));
    const auto labels = identify_jobs(records);
    EXPECT_NE(labels[0], labels[1]);
}

TEST(JobIdentifier, LongGapSplitsSessions) {
    JobIdentifierConfig config;
    config.max_gap_s = 100.0;
    std::vector<TraceRecord> records;
    records.push_back(record(1, 1, 1, 0, 0.0));
    records.push_back(record(2, 1, 1, 1, 500.0));  // half an hour later
    const auto labels = identify_jobs(records, config);
    EXPECT_NE(labels[0], labels[1]);
}

TEST(JobIdentifier, StepJumpSplits) {
    std::vector<TraceRecord> records;
    records.push_back(record(1, 1, 1, 0, 0.0));
    records.push_back(record(2, 2, 1, 15, 5.0));  // jump of 15 steps
    const auto labels = identify_jobs(records);
    EXPECT_NE(labels[0], labels[1]);
}

TEST(JobIdentifier, DirectionReversalSplits) {
    // An ordered iteration that went 3 -> 4 -> 5 should not absorb a query at
    // step 4 going backwards (different experiment pass).
    std::vector<TraceRecord> records;
    records.push_back(record(1, 1, 1, 3, 0.0));
    records.push_back(record(2, 1, 1, 4, 5.0));
    records.push_back(record(3, 1, 1, 5, 10.0));
    records.push_back(record(4, 2, 1, 4, 15.0));
    const auto labels = identify_jobs(records);
    EXPECT_EQ(labels[0], labels[1]);
    EXPECT_EQ(labels[1], labels[2]);
    EXPECT_NE(labels[3], labels[2]);
}

TEST(JobIdentifier, ConcurrentSameUserSessionsSeparatedByStep) {
    // One user runs two interleaved experiments on distant steps.
    std::vector<TraceRecord> records;
    for (std::uint32_t i = 0; i < 6; ++i) {
        records.push_back(record(2 * i + 1, 1, 1, i, 10.0 * i));
        records.push_back(record(2 * i + 2, 2, 1, 20 + i, 10.0 * i + 5.0));
    }
    const auto labels = identify_jobs(records);
    for (std::size_t i = 0; i < records.size(); i += 2) ASSERT_EQ(labels[i], labels[0]);
    for (std::size_t i = 1; i < records.size(); i += 2) ASSERT_EQ(labels[i], labels[1]);
    EXPECT_NE(labels[0], labels[1]);
}

TEST(EvaluateIdentification, PerfectAssignmentScoresOne) {
    std::vector<TraceRecord> records;
    for (std::uint32_t i = 0; i < 8; ++i) records.push_back(record(i, i / 4 + 1, 1, 0, i));
    std::vector<JobId> labels = {10, 10, 10, 10, 20, 20, 20, 20};
    const auto q = evaluate_identification(records, labels);
    EXPECT_DOUBLE_EQ(q.pair_precision, 1.0);
    EXPECT_DOUBLE_EQ(q.pair_recall, 1.0);
    EXPECT_DOUBLE_EQ(q.exact_jobs, 1.0);
    EXPECT_DOUBLE_EQ(q.f1(), 1.0);
}

TEST(EvaluateIdentification, OverMergedHurtsPrecision) {
    std::vector<TraceRecord> records;
    for (std::uint32_t i = 0; i < 4; ++i) records.push_back(record(i, i / 2 + 1, 1, 0, i));
    const std::vector<JobId> labels = {1, 1, 1, 1};  // everything merged
    const auto q = evaluate_identification(records, labels);
    EXPECT_LT(q.pair_precision, 1.0);
    EXPECT_DOUBLE_EQ(q.pair_recall, 1.0);
    EXPECT_DOUBLE_EQ(q.exact_jobs, 0.0);
}

TEST(EvaluateIdentification, OverSplitHurtsRecall) {
    std::vector<TraceRecord> records;
    for (std::uint32_t i = 0; i < 4; ++i) records.push_back(record(i, 1, 1, 0, i));
    const std::vector<JobId> labels = {1, 2, 3, 4};  // everything split
    const auto q = evaluate_identification(records, labels);
    EXPECT_DOUBLE_EQ(q.pair_precision, 1.0);
    EXPECT_LT(q.pair_recall, 1.0);
}

TEST(JobIdentifier, HighAccuracyOnGeneratedTrace) {
    // The paper calls the heuristics "highly accurate in practice"; require a
    // strong pairwise F1 on a realistic generated trace.
    WorkloadSpec spec;
    spec.jobs = 150;
    spec.seed = 5;
    const field::GridSpec grid;
    const field::SyntheticField field(field::FieldSpec{.modes = 6});
    const Workload w = generate_workload(spec, grid, field);
    const auto records = flatten(w);
    const auto labels = identify_jobs(records);
    const auto q = evaluate_identification(records, labels);
    EXPECT_GT(q.pair_precision, 0.6);
    EXPECT_GT(q.pair_recall, 0.6);
    EXPECT_GT(q.f1(), 0.7);
}

}  // namespace
}  // namespace jaws::workload
