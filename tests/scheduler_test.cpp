// Tests for the three scheduler policies in isolation (sched/*.h).
#include <gtest/gtest.h>

#include "sched/jaws.h"
#include "sched/liferaft.h"
#include "sched/noshare.h"
#include "util/morton.h"

namespace jaws::sched {
namespace {

workload::Query query_on(workload::QueryId id, std::uint32_t step,
                         std::initializer_list<std::uint64_t> mortons,
                         std::uint64_t positions = 100) {
    workload::Query q;
    q.id = id;
    q.timestep = step;
    for (const std::uint64_t m : mortons)
        q.footprint.push_back(workload::AtomRequest{{step, m}, positions});
    std::sort(q.footprint.begin(), q.footprint.end(),
              [](const workload::AtomRequest& a, const workload::AtomRequest& b) {
                  return a.atom.morton < b.atom.morton;
              });
    return q;
}

TEST(NoShare, FifoOneQueryPerBatch) {
    NoShareScheduler s;
    const auto q1 = query_on(1, 0, {5, 9});
    const auto q2 = query_on(2, 0, {5});
    s.on_query_visible(q1, util::SimTime::zero());
    s.on_query_visible(q2, util::SimTime::from_millis(1));
    ASSERT_TRUE(s.has_pending());

    auto batch = s.next_batch(util::SimTime::from_millis(2));
    ASSERT_EQ(batch.size(), 2u);  // q1's two atoms
    for (const auto& item : batch) {
        ASSERT_EQ(item.subqueries.size(), 1u);
        EXPECT_EQ(item.subqueries[0].query, 1u);
    }
    batch = s.next_batch(util::SimTime::from_millis(3));
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].subqueries[0].query, 2u);
    EXPECT_FALSE(s.has_pending());
    EXPECT_TRUE(s.next_batch(util::SimTime::zero()).empty());
}

TEST(NoShare, NeverMergesQueries) {
    NoShareScheduler s;
    s.on_query_visible(query_on(1, 0, {5}), util::SimTime::zero());
    s.on_query_visible(query_on(2, 0, {5}), util::SimTime::zero());
    const auto b1 = s.next_batch(util::SimTime::zero());
    ASSERT_EQ(b1.size(), 1u);
    EXPECT_EQ(b1[0].subqueries.size(), 1u);  // only query 1's sub-query
}

TEST(LifeRaft, DrainsMostContendedAtom) {
    LifeRaftScheduler s(CostConstants{}, nullptr, 0.0);
    s.on_query_visible(query_on(1, 0, {5}, 100), util::SimTime::zero());
    s.on_query_visible(query_on(2, 0, {9}, 5000), util::SimTime::zero());
    s.on_query_visible(query_on(3, 0, {9}, 5000), util::SimTime::zero());
    const auto batch = s.next_batch(util::SimTime::zero());
    ASSERT_EQ(batch.size(), 1u);  // single-atom scheduling
    EXPECT_EQ(batch[0].atom.morton, 9u);
    EXPECT_EQ(batch[0].subqueries.size(), 2u);  // both queries co-scheduled
    EXPECT_TRUE(s.has_pending());  // atom 5 still queued
}

TEST(LifeRaft, AlphaOneFollowsArrivalOrder) {
    LifeRaftScheduler s(CostConstants{}, nullptr, 1.0);
    s.on_query_visible(query_on(1, 0, {5}, 10), util::SimTime::from_millis(1));
    s.on_query_visible(query_on(2, 0, {9}, 9000), util::SimTime::from_millis(2));
    const auto batch = s.next_batch(util::SimTime::from_millis(3));
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].atom.morton, 5u);
    EXPECT_DOUBLE_EQ(s.current_alpha(), 1.0);
}

TEST(LifeRaft, NamesIncludeAlpha) {
    LifeRaftScheduler s(CostConstants{}, nullptr, 0.25);
    EXPECT_NE(s.name().find("0.25"), std::string::npos);
}

JawsConfig jaws_config(bool job_aware, std::size_t k = 4) {
    JawsConfig c;
    c.batch_size_k = k;
    c.job_aware = job_aware;
    c.adaptive_alpha = false;
    c.alpha.initial_alpha = 0.0;
    return c;
}

workload::Job two_query_job(workload::JobId id, std::uint64_t region) {
    workload::Job j;
    j.id = id;
    j.type = workload::JobType::kOrdered;
    auto q1 = query_on(id * 100, 0, {region});
    auto q2 = query_on(id * 100 + 1, 0, {region + 1});
    q1.job = j.id;
    q1.seq_in_job = 0;
    q2.job = j.id;
    q2.seq_in_job = 1;
    j.queries = {q1, q2};
    return j;
}

TEST(Jaws, TwoLevelBatchesUpToK) {
    JawsScheduler s(CostConstants{}, nullptr, jaws_config(false, 2));
    workload::Job j;
    j.id = 1;
    j.type = workload::JobType::kBatched;
    for (workload::QueryId i = 0; i < 5; ++i) {
        auto q = query_on(i + 1, 0, {i * 7});
        q.job = 1;
        q.seq_in_job = static_cast<std::uint32_t>(i);
        j.queries.push_back(q);
    }
    s.on_job_submitted(j);
    for (const auto& q : j.queries) s.on_query_visible(q, util::SimTime::zero());
    const auto batch = s.next_batch(util::SimTime::zero());
    EXPECT_EQ(batch.size(), 2u);  // capped at k
}

TEST(Jaws, GatingWithholdsUntilPartnersReady) {
    JawsScheduler s(CostConstants{}, nullptr, jaws_config(true));
    const auto a = two_query_job(1, 10);
    const auto b = two_query_job(2, 10);
    s.on_job_submitted(a);
    s.on_job_submitted(b);
    ASSERT_EQ(s.gating_stats()->edges_admitted, 2u);

    s.on_query_visible(a.queries[0], util::SimTime::zero());
    EXPECT_FALSE(s.has_pending());  // gated: partner not yet visible
    s.on_query_visible(b.queries[0], util::SimTime::zero());
    EXPECT_TRUE(s.has_pending());   // both released together
    const auto batch = s.next_batch(util::SimTime::zero());
    ASSERT_FALSE(batch.empty());
    EXPECT_EQ(batch[0].subqueries.size(), 2u);  // shared atom, both queries
}

TEST(Jaws, UnstickReleasesGatedWork) {
    JawsScheduler s(CostConstants{}, nullptr, jaws_config(true));
    const auto a = two_query_job(1, 10);
    const auto b = two_query_job(2, 10);
    s.on_job_submitted(a);
    s.on_job_submitted(b);
    s.on_query_visible(a.queries[0], util::SimTime::zero());
    ASSERT_FALSE(s.has_pending());
    EXPECT_TRUE(s.unstick(util::SimTime::zero()));
    EXPECT_TRUE(s.has_pending());
    EXPECT_EQ(s.gating_stats()->forced_promotions, 1u);
}

TEST(Jaws, UnstickWithNothingReadyReturnsFalse) {
    JawsScheduler s(CostConstants{}, nullptr, jaws_config(true));
    EXPECT_FALSE(s.unstick(util::SimTime::zero()));
}

TEST(Jaws, CompletionReleasesSuccessorThroughGraph) {
    JawsScheduler s(CostConstants{}, nullptr, jaws_config(true));
    const auto a = two_query_job(1, 10);
    s.on_job_submitted(a);
    s.on_query_visible(a.queries[0], util::SimTime::zero());
    auto batch = s.next_batch(util::SimTime::zero());
    ASSERT_FALSE(batch.empty());
    s.on_query_completed(a.queries[0].id, util::SimTime::from_millis(5),
                         util::SimTime::from_millis(5));
    // Successor is WAIT until the engine declares it visible.
    EXPECT_FALSE(s.has_pending());
    s.on_query_visible(a.queries[1], util::SimTime::from_millis(6));
    EXPECT_TRUE(s.has_pending());
}

TEST(Jaws, SingleLevelModeUsesBestAtom) {
    JawsConfig c = jaws_config(false);
    c.two_level = false;
    JawsScheduler s(CostConstants{}, nullptr, c);
    workload::Job j;
    j.id = 1;
    j.type = workload::JobType::kBatched;
    auto q1 = query_on(1, 0, {5}, 100);
    auto q2 = query_on(2, 1, {9}, 9000);
    q1.job = q2.job = 1;
    q1.seq_in_job = 0;
    q2.seq_in_job = 1;
    j.queries = {q1, q2};
    s.on_job_submitted(j);
    s.on_query_visible(j.queries[0], util::SimTime::zero());
    s.on_query_visible(j.queries[1], util::SimTime::zero());
    const auto batch = s.next_batch(util::SimTime::zero());
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].atom.morton, 9u);
}

}  // namespace
}  // namespace jaws::sched
