// Tests for the simulated disk (storage/disk_model.h).
#include <gtest/gtest.h>

#include <stdexcept>

#include "storage/disk_model.h"

namespace jaws::storage {
namespace {

DiskSpec spec() {
    DiskSpec s;
    s.settle_ms = 1.0;
    s.seek_full_stroke_ms = 14.0;
    s.transfer_mb_per_s = 100.0;  // 1 MB = 10 ms
    s.capacity_bytes = 100ULL << 20;
    return s;
}

// Pure transfer time of `bytes` under spec(): bytes / (100 MB/s), in ms.
double transfer_ms(std::uint64_t bytes) {
    return static_cast<double>(bytes) / (100.0 * 1e6) * 1e3;
}

TEST(DiskModel, SequentialReadPaysNoSeek) {
    DiskModel disk(spec());
    disk.read(0, 1 << 20);  // head now at 1 MiB
    const util::SimTime cost = disk.read(1 << 20, 1 << 20);
    EXPECT_NEAR(cost.millis(), transfer_ms(1 << 20), 2e-3);  // SimTime quantises to us
}

TEST(DiskModel, FirstReadAtNonZeroOffsetSeeks) {
    DiskModel disk(spec());
    const util::SimTime cost = disk.read(10 << 20, 1 << 20);
    EXPECT_GT(cost.millis(), transfer_ms(1 << 20) + 0.9);
}

TEST(DiskModel, SeekGrowsWithDistance) {
    DiskModel disk(spec());
    disk.read(0, 1);  // park the head near 0
    const double near = disk.peek_cost(1 << 20, 1 << 20).millis();
    const double far = disk.peek_cost(90ULL << 20, 1 << 20).millis();
    EXPECT_GT(far, near);
}

TEST(DiskModel, FullStrokeBounded) {
    DiskModel disk(spec());
    disk.read(0, 1);
    const double cost = disk.peek_cost(100ULL << 20, 1 << 20).millis();
    // settle + full stroke + transfer.
    EXPECT_NEAR(cost, 1.0 + 14.0 + transfer_ms(1 << 20), 0.6);
}

TEST(DiskModel, TransferProportionalToBytes) {
    DiskModel disk(spec());
    const double one = disk.read(0, 1 << 20).millis();
    DiskModel disk2(spec());
    const double four = disk2.read(0, 4 << 20).millis();
    EXPECT_NEAR(four, 4.0 * one, 5e-3);
}

TEST(DiskModel, PeekDoesNotMoveHead) {
    DiskModel disk(spec());
    disk.read(0, 1 << 20);
    const double peeked = disk.peek_cost(50ULL << 20, 1 << 20).millis();
    EXPECT_DOUBLE_EQ(disk.peek_cost(50ULL << 20, 1 << 20).millis(), peeked);
    EXPECT_EQ(disk.stats().requests, 1u);
}

TEST(DiskModel, PeekMatchesRead) {
    DiskModel disk(spec());
    disk.read(0, 1 << 20);
    const double peeked = disk.peek_cost(7 << 20, 2 << 20).millis();
    EXPECT_DOUBLE_EQ(disk.read(7 << 20, 2 << 20).millis(), peeked);
}

TEST(DiskModel, StatsAccounting) {
    DiskModel disk(spec());
    disk.read(0, 1 << 20);
    disk.read(1 << 20, 1 << 20);  // sequential
    disk.read(50 << 20, 1 << 20);
    const DiskStats& s = disk.stats();
    EXPECT_EQ(s.requests, 3u);
    EXPECT_EQ(s.sequential_requests, 2u);  // the first read starts at head 0
    EXPECT_EQ(s.bytes_read, 3u << 20);
    EXPECT_GT(s.service_time.millis(), 0.0);
    // No fault injector attached: all busy time is rendered service.
    EXPECT_EQ(s.fault_delay.micros, 0);
    EXPECT_EQ(s.total_busy().micros, s.service_time.micros);
}

TEST(DiskModel, ChargeDelayIsDisjointFromServiceTime) {
    DiskModel disk(spec());
    disk.read(0, 1 << 20);
    const util::SimTime service = disk.stats().service_time;
    disk.charge_delay(util::SimTime::from_millis(80.0));
    const DiskStats& s = disk.stats();
    EXPECT_EQ(s.service_time.micros, service.micros);  // unchanged
    EXPECT_EQ(s.fault_delay.micros, util::SimTime::from_millis(80.0).micros);
    EXPECT_EQ(s.total_busy().micros, (service + s.fault_delay).micros);
}

TEST(DiskModel, ChannelsKeepIndependentHeads) {
    DiskModel disk(spec(), /*channels=*/2);
    disk.read(0, 1 << 20, /*channel=*/0);  // channel 0 head at 1 MiB
    // Channel 1's head is still parked at 0: the same sequential-continuation
    // read is cheap on channel 0 but pays a seek on channel 1.
    const double chan0 = disk.peek_cost(1 << 20, 1 << 20, 0).millis();
    const double chan1 = disk.peek_cost(1 << 20, 1 << 20, 1).millis();
    EXPECT_NEAR(chan0, transfer_ms(1 << 20), 2e-3);
    EXPECT_GT(chan1, chan0 + 0.9);  // settle_ms at least
}

TEST(DiskModel, ChannelOutOfRangeThrows) {
    DiskModel disk(spec(), /*channels=*/2);
    EXPECT_THROW(disk.read(0, 1 << 20, /*channel=*/2), std::out_of_range);
    EXPECT_THROW(disk.peek_cost(0, 1 << 20, 7), std::out_of_range);
}

TEST(DiskModel, CancelTailRefundsUnrenderedServiceTime) {
    DiskModel disk(spec());
    const util::SimTime cost = disk.read(0, 4 << 20);
    const util::SimTime tail{cost.micros / 2};
    disk.cancel_tail(tail);
    const DiskStats& s = disk.stats();
    EXPECT_EQ(s.aborted_requests, 1u);
    EXPECT_EQ(s.requests, 1u);  // the request still happened
    EXPECT_EQ(s.service_time.micros, (cost - tail).micros);
}

TEST(DiskModel, ResetStatsKeepsHead) {
    DiskModel disk(spec());
    disk.read(0, 1 << 20);
    disk.reset_stats();
    EXPECT_EQ(disk.stats().requests, 0u);
    // Head survives the reset: continuing at 1 MiB is sequential.
    EXPECT_NEAR(disk.read(1 << 20, 1 << 20).millis(), transfer_ms(1 << 20), 2e-3);
}

}  // namespace
}  // namespace jaws::storage
