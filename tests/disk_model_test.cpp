// Tests for the simulated disk (storage/disk_model.h).
#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>
#include <vector>

#include "storage/disk_model.h"

namespace jaws::storage {
namespace {

DiskSpec spec() {
    DiskSpec s;
    s.settle_ms = 1.0;
    s.seek_full_stroke_ms = 14.0;
    s.transfer_mb_per_s = 100.0;  // 1 MB = 10 ms
    s.capacity_bytes = 100ULL << 20;
    return s;
}

// Pure transfer time of `bytes` under spec(): bytes / (100 MB/s), in ms.
double transfer_ms(std::uint64_t bytes) {
    return static_cast<double>(bytes) / (100.0 * 1e6) * 1e3;
}

TEST(DiskModel, SequentialReadPaysNoSeek) {
    DiskModel disk(spec());
    disk.read(0, 1 << 20);  // head now at 1 MiB
    const util::SimTime cost = disk.read(1 << 20, 1 << 20);
    EXPECT_NEAR(cost.millis(), transfer_ms(1 << 20), 2e-3);  // SimTime quantises to us
}

TEST(DiskModel, FirstReadAtNonZeroOffsetSeeks) {
    DiskModel disk(spec());
    const util::SimTime cost = disk.read(10 << 20, 1 << 20);
    EXPECT_GT(cost.millis(), transfer_ms(1 << 20) + 0.9);
}

TEST(DiskModel, SeekGrowsWithDistance) {
    DiskModel disk(spec());
    disk.read(0, 1);  // park the head near 0
    const double near = disk.peek_cost(1 << 20, 1 << 20).millis();
    const double far = disk.peek_cost(90ULL << 20, 1 << 20).millis();
    EXPECT_GT(far, near);
}

TEST(DiskModel, FullStrokeBounded) {
    DiskModel disk(spec());
    disk.read(0, 1);
    const double cost = disk.peek_cost(100ULL << 20, 1 << 20).millis();
    // settle + full stroke + transfer.
    EXPECT_NEAR(cost, 1.0 + 14.0 + transfer_ms(1 << 20), 0.6);
}

TEST(DiskModel, TransferProportionalToBytes) {
    DiskModel disk(spec());
    const double one = disk.read(0, 1 << 20).millis();
    DiskModel disk2(spec());
    const double four = disk2.read(0, 4 << 20).millis();
    EXPECT_NEAR(four, 4.0 * one, 5e-3);
}

TEST(DiskModel, PeekDoesNotMoveHead) {
    DiskModel disk(spec());
    disk.read(0, 1 << 20);
    const double peeked = disk.peek_cost(50ULL << 20, 1 << 20).millis();
    EXPECT_DOUBLE_EQ(disk.peek_cost(50ULL << 20, 1 << 20).millis(), peeked);
    EXPECT_EQ(disk.stats().requests, 1u);
}

TEST(DiskModel, PeekMatchesRead) {
    DiskModel disk(spec());
    disk.read(0, 1 << 20);
    const double peeked = disk.peek_cost(7 << 20, 2 << 20).millis();
    EXPECT_DOUBLE_EQ(disk.read(7 << 20, 2 << 20).millis(), peeked);
}

TEST(DiskModel, StatsAccounting) {
    DiskModel disk(spec());
    disk.read(0, 1 << 20);
    disk.read(1 << 20, 1 << 20);  // sequential
    disk.read(50 << 20, 1 << 20);
    const DiskStats& s = disk.stats();
    EXPECT_EQ(s.requests, 3u);
    EXPECT_EQ(s.sequential_requests, 2u);  // the first read starts at head 0
    EXPECT_EQ(s.bytes_read, 3u << 20);
    EXPECT_GT(s.service_time.millis(), 0.0);
    // No fault injector attached: all busy time is rendered service.
    EXPECT_EQ(s.fault_delay.micros, 0);
    EXPECT_EQ(s.total_busy().micros, s.service_time.micros);
}

TEST(DiskModel, ChargeDelayIsDisjointFromServiceTime) {
    DiskModel disk(spec());
    disk.read(0, 1 << 20);
    const util::SimTime service = disk.stats().service_time;
    disk.charge_delay(util::SimTime::from_millis(80.0));
    const DiskStats& s = disk.stats();
    EXPECT_EQ(s.service_time.micros, service.micros);  // unchanged
    EXPECT_EQ(s.fault_delay.micros, util::SimTime::from_millis(80.0).micros);
    EXPECT_EQ(s.total_busy().micros, (service + s.fault_delay).micros);
}

TEST(DiskModel, ChannelsKeepIndependentHeads) {
    DiskModel disk(spec(), /*channels=*/2);
    disk.read(0, 1 << 20, util::ChannelIndex{0});  // channel 0 head at 1 MiB
    // Channel 1's head is still parked at 0: the same sequential-continuation
    // read is cheap on channel 0 but pays a seek on channel 1.
    const double chan0 = disk.peek_cost(1 << 20, 1 << 20, util::ChannelIndex{0}).millis();
    const double chan1 = disk.peek_cost(1 << 20, 1 << 20, util::ChannelIndex{1}).millis();
    EXPECT_NEAR(chan0, transfer_ms(1 << 20), 2e-3);
    EXPECT_GT(chan1, chan0 + 0.9);  // settle_ms at least
}

TEST(DiskModel, ChannelOutOfRangeThrows) {
    DiskModel disk(spec(), /*channels=*/2);
    EXPECT_THROW(disk.read(0, 1 << 20, util::ChannelIndex{2}), std::out_of_range);
    EXPECT_THROW(disk.peek_cost(0, 1 << 20, util::ChannelIndex{7}), std::out_of_range);
}

TEST(DiskModel, CancelTailRefundsUnrenderedServiceTime) {
    DiskModel disk(spec());
    const util::SimTime cost = disk.read(0, 4 << 20);
    const util::SimTime tail{cost.micros / 2};
    disk.cancel_tail(tail);
    const DiskStats& s = disk.stats();
    EXPECT_EQ(s.aborted_requests, 1u);
    EXPECT_EQ(s.requests, 1u);  // the request still happened
    EXPECT_EQ(s.service_time.micros, (cost - tail).micros);
}

TEST(DiskModel, CancelTailClampsOverCancelToZero) {
    // A tail larger than the service time charged so far (e.g. a refund of
    // injected delay mistakenly routed here) must clamp at zero, never drive
    // the aggregate negative.
    DiskModel disk(spec());
    const util::SimTime cost = disk.read(0, 1 << 20);
    disk.cancel_tail(cost + util::SimTime::from_millis(999.0));
    EXPECT_EQ(disk.stats().service_time.micros, 0);
    EXPECT_EQ(disk.stats().aborted_requests, 1u);
}

TEST(DiskModel, CancelTailWithZeroServiceIsANoOpOnTheLedger) {
    DiskModel disk(spec());
    disk.cancel_tail(util::SimTime::zero());
    EXPECT_EQ(disk.stats().service_time.micros, 0);
    EXPECT_EQ(disk.stats().aborted_requests, 1u);  // the abort itself counts
}

TEST(DiskModel, MixedCancelsKeepServiceAndFaultLedgersDisjoint) {
    // A read carrying injected delay is cancelled mid-stall: the fault part
    // goes back through refund_delay, the service tail through cancel_tail,
    // and neither ledger bleeds into the other.
    DiskModel disk(spec());
    const util::SimTime service = disk.read(0, 1 << 20);
    const auto injected = util::SimTime::from_millis(500.0);
    disk.charge_delay(injected);
    ASSERT_EQ(disk.stats().service_time.micros, service.micros);
    ASSERT_EQ(disk.stats().fault_delay.micros, injected.micros);
    // Cancel with 400 ms of the stall plus half the service unrendered.
    const util::SimTime fault_part = util::SimTime::from_millis(400.0);
    const util::SimTime service_part{service.micros / 2};
    disk.refund_delay(fault_part);
    disk.cancel_tail(service_part);
    EXPECT_EQ(disk.stats().fault_delay.micros, (injected - fault_part).micros);
    EXPECT_EQ(disk.stats().service_time.micros, (service - service_part).micros);
    // Over-refunding the remaining delay clamps at zero as well.
    disk.refund_delay(util::SimTime::from_millis(1e6));
    EXPECT_EQ(disk.stats().fault_delay.micros, 0);
    EXPECT_EQ(disk.stats().service_time.micros, (service - service_part).micros);
}

// --------------------------------------------------------------------------
// Heavy-tailed service draws (DiskSpec::heavy_tail)
// --------------------------------------------------------------------------

TEST(DiskModel, HeavyTailOffIsIndistinguishableFromBaseline) {
    DiskModel plain(spec());
    DiskSpec with_field = spec();
    with_field.heavy_tail = HeavyTailSpec{};  // rate 0 = disabled
    DiskModel gated(with_field);
    for (int i = 0; i < 32; ++i) {
        const auto off = static_cast<std::uint64_t>(i) * (1 << 20);
        EXPECT_EQ(plain.read(off, 1 << 20).micros, gated.read(off, 1 << 20).micros);
    }
    EXPECT_EQ(gated.stats().slow_draws, 0u);
    EXPECT_EQ(gated.stats().slow_service_extra.micros, 0);
}

TEST(DiskModel, HeavyTailDrawsInflateSomeReadsDeterministically) {
    DiskSpec s = spec();
    s.heavy_tail.rate = 0.3;
    s.heavy_tail.lognormal_mu = 2.0;
    s.heavy_tail.seed = 42;
    const auto run = [&s] {
        DiskModel disk(s);
        std::vector<std::int64_t> costs;
        for (int i = 0; i < 64; ++i)
            costs.push_back(disk.read(static_cast<std::uint64_t>(i) * (1 << 20),
                                      1 << 20).micros);
        return std::make_pair(costs, disk.stats().slow_draws);
    };
    const auto [a, drew_a] = run();
    const auto [b, drew_b] = run();
    EXPECT_EQ(a, b);  // same seed, same request sequence -> identical costs
    EXPECT_EQ(drew_a, drew_b);
    EXPECT_GT(drew_a, 0u);
    EXPECT_LT(drew_a, 64u);  // rate 0.3 straggles some, not all
}

TEST(DiskModel, HeavyTailSlowReadsExceedPeekCost) {
    DiskSpec s = spec();
    s.heavy_tail.rate = 1.0;  // every read straggles
    s.heavy_tail.pareto = true;
    s.heavy_tail.pareto_min = 2.0;
    DiskModel disk(s);
    const util::SimTime peek = disk.peek_cost(0, 1 << 20);
    const util::SimTime paid = disk.read(0, 1 << 20);
    // Pareto multipliers are >= pareto_min, so the straggler at least
    // doubles the straggler-free price peek_cost() quotes.
    EXPECT_GE(paid.micros, 2 * peek.micros);
    EXPECT_EQ(disk.stats().slow_draws, 1u);
    EXPECT_EQ(disk.stats().slow_service_extra.micros, (paid - peek).micros);
}

TEST(DiskModel, ResetStatsKeepsHead) {
    DiskModel disk(spec());
    disk.read(0, 1 << 20);
    disk.reset_stats();
    EXPECT_EQ(disk.stats().requests, 0u);
    // Head survives the reset: continuing at 1 MiB is sequential.
    EXPECT_NEAR(disk.read(1 << 20, 1 << 20).millis(), transfer_ms(1 << 20), 2e-3);
}

// --------------------------------------------------------------------------
// Fuzz-pinned ledger regressions (fuzz/fuzz_disk_model.cpp). The byte-level
// triggering inputs live in fuzz/corpus/fuzz_disk_model/ and replay as the
// FuzzReplay.fuzz_disk_model ctest in every build.
// --------------------------------------------------------------------------

TEST(DiskModel, NegativeCancelTailCannotInflateServiceTime) {
    DiskModel disk(spec());
    const std::int64_t charged = disk.read(0, 1 << 20).micros;
    disk.cancel_tail(util::SimTime::from_micros(-100'000));
    EXPECT_EQ(disk.stats().service_time.micros, charged);
}

TEST(DiskModel, OverRefundAfterNegativeCancelClampsAtZero) {
    // The regression-negative-refund corpus input: a negative cancel must
    // not bank credit that a later over-sized cancel could turn into a
    // negative ledger.
    DiskModel disk(spec());
    disk.cancel_tail(util::SimTime::from_micros(-100'000));  // ignored
    disk.refund_delay(util::SimTime::zero());                // no-op
    disk.cancel_tail(util::SimTime::from_micros(200'000));   // > ever charged
    EXPECT_EQ(disk.stats().service_time.micros, 0);
}

TEST(DiskModel, NegativeAndOverSizedDelayRefundsClampOnTheFaultLedger) {
    DiskModel disk(spec());
    disk.charge_delay(util::SimTime::from_micros(-50));  // ignored
    EXPECT_EQ(disk.stats().fault_delay.micros, 0);
    disk.charge_delay(util::SimTime::from_micros(70));
    disk.refund_delay(util::SimTime::from_micros(-30));  // ignored
    EXPECT_EQ(disk.stats().fault_delay.micros, 70);
    disk.refund_delay(util::SimTime::from_micros(200));  // clamps to zero
    EXPECT_EQ(disk.stats().fault_delay.micros, 0);
}

TEST(DiskModel, ExtremeParetoTailSaturatesInsteadOfOverflowing) {
    // pareto_alpha at its legal floor draws astronomically large (even
    // infinite) multipliers; the model caps the straggler factor at 1e6 so
    // every read cost stays a finite, non-negative count of microseconds
    // and the service ledger cannot overflow within a run.
    DiskSpec s = spec();
    s.heavy_tail.rate = 1.0;
    s.heavy_tail.pareto = true;
    s.heavy_tail.pareto_alpha = 0.05;
    s.heavy_tail.pareto_min = 1.0;
    DiskModel disk(s);
    for (int i = 0; i < 256; ++i) {
        // peek_cost tracks the head, so the bound is per-read.
        const std::int64_t base = disk.peek_cost(0, 1 << 20).micros;
        const std::int64_t cost = disk.read(0, 1 << 20).micros;
        EXPECT_GE(cost, 0);
        EXPECT_LE(cost, base * 1'000'000 + 1);  // the 1e6 multiplier cap
    }
    EXPECT_GE(disk.stats().service_time.micros, 0);
}

}  // namespace
}  // namespace jaws::storage
