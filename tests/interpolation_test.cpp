// Tests for Lagrange interpolation (field/interpolation.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "field/grid.h"
#include "field/interpolation.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace jaws::field {
namespace {

GridSpec test_grid() {
    GridSpec g;
    g.voxels_per_side = 64;
    g.atom_side = 16;
    g.ghost = 4;  // room for order-8 kernels
    g.timesteps = 2;
    return g;
}

TEST(KernelHalfWidth, MatchesOrder) {
    EXPECT_EQ(kernel_half_width(InterpOrder::kLinear), 1u);
    EXPECT_EQ(kernel_half_width(InterpOrder::kLag4), 2u);
    EXPECT_EQ(kernel_half_width(InterpOrder::kLag6), 3u);
    EXPECT_EQ(kernel_half_width(InterpOrder::kLag8), 4u);
}

class LagrangeWeights : public ::testing::TestWithParam<InterpOrder> {};

TEST_P(LagrangeWeights, PartitionOfUnity) {
    util::Rng rng(50);
    for (int i = 0; i < 100; ++i) {
        const double frac = rng.uniform();
        double w[8];
        lagrange_weights(frac, GetParam(), w);
        double sum = 0.0;
        for (int j = 0; j < static_cast<int>(GetParam()); ++j) sum += w[j];
        ASSERT_NEAR(sum, 1.0, 1e-12);
    }
}

TEST_P(LagrangeWeights, ReproducesLinearFunctions) {
    // Lagrange weights of any order reproduce polynomials up to order-1
    // exactly; check degree 1 at the nodes' coordinates.
    util::Rng rng(51);
    const int n = static_cast<int>(GetParam());
    for (int i = 0; i < 50; ++i) {
        const double frac = rng.uniform();
        double w[8];
        lagrange_weights(frac, GetParam(), w);
        double interpolated = 0.0;
        for (int j = 0; j < n; ++j) {
            const double node = static_cast<double>(j - (n / 2 - 1));
            interpolated += w[j] * (3.0 * node - 2.0);
        }
        ASSERT_NEAR(interpolated, 3.0 * frac - 2.0, 1e-10);
    }
}

TEST_P(LagrangeWeights, ExactAtNodes) {
    const int n = static_cast<int>(GetParam());
    // frac = 0 corresponds to node index n/2 - 1.
    double w[8];
    lagrange_weights(0.0, GetParam(), w);
    for (int j = 0; j < n; ++j)
        EXPECT_NEAR(w[j], j == n / 2 - 1 ? 1.0 : 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllOrders, LagrangeWeights,
                         ::testing::Values(InterpOrder::kLinear, InterpOrder::kLag4,
                                           InterpOrder::kLag6, InterpOrder::kLag8));

class InterpolateField : public ::testing::TestWithParam<InterpOrder> {};

TEST_P(InterpolateField, ApproximatesAnalyticField) {
    const GridSpec g = test_grid();
    const SyntheticField f({.seed = 52, .modes = 6, .max_wavenumber = 3.0});
    const util::Coord3 atom{1, 2, 1};
    const VoxelBlock block(g, f, atom, 0);
    util::Rng rng(53);
    const double atom_extent = 1.0 / g.atoms_per_side();
    double max_err = 0.0;
    for (int i = 0; i < 60; ++i) {
        // Random position strictly inside the atom.
        const Vec3 p{(atom.x + 0.1 + 0.8 * rng.uniform()) * atom_extent,
                     (atom.y + 0.1 + 0.8 * rng.uniform()) * atom_extent,
                     (atom.z + 0.1 + 0.8 * rng.uniform()) * atom_extent};
        const FlowSample got = interpolate(g, block, atom, p, GetParam());
        const FlowSample want = f.sample(p, 0.0);
        max_err = std::max(max_err, std::fabs(got.velocity.x - want.velocity.x));
        max_err = std::max(max_err, std::fabs(got.pressure - want.pressure));
    }
    // The 64-voxel grid resolves wavenumber <= 3 well; even linear
    // interpolation lands within a few percent, higher orders much closer.
    const double tolerance = GetParam() == InterpOrder::kLinear ? 5e-2 : 5e-3;
    EXPECT_LT(max_err, tolerance);
}

INSTANTIATE_TEST_SUITE_P(AllOrders, InterpolateField,
                         ::testing::Values(InterpOrder::kLinear, InterpOrder::kLag4,
                                           InterpOrder::kLag6, InterpOrder::kLag8));

TEST(Interpolate, HigherOrderIsMoreAccurate) {
    const GridSpec g = test_grid();
    const SyntheticField f({.seed = 54, .modes = 10, .max_wavenumber = 5.0});
    const util::Coord3 atom{2, 2, 2};
    const VoxelBlock block(g, f, atom, 0);
    util::Rng rng(55);
    const double atom_extent = 1.0 / g.atoms_per_side();
    double err2 = 0.0, err8 = 0.0;
    for (int i = 0; i < 100; ++i) {
        const Vec3 p{(atom.x + 0.1 + 0.8 * rng.uniform()) * atom_extent,
                     (atom.y + 0.1 + 0.8 * rng.uniform()) * atom_extent,
                     (atom.z + 0.1 + 0.8 * rng.uniform()) * atom_extent};
        const FlowSample want = f.sample(p, 0.0);
        err2 += std::fabs(
            interpolate(g, block, atom, p, InterpOrder::kLinear).velocity.x -
            want.velocity.x);
        err8 += std::fabs(interpolate(g, block, atom, p, InterpOrder::kLag8).velocity.x -
                          want.velocity.x);
    }
    EXPECT_LT(err8, err2);
}

// Regression for the documented-but-unenforced "weights sum to 1" contract:
// the order-8 basis is the worst conditioned, and its deviation must stay
// far below the audit tolerance for every frac in [0, 1). Observed worst
// case on this toolchain is ~9e-16 over a 2M-point sweep; 1e-13 pins that
// with margin while still catching a genuinely dropped basis term.
TEST(LagrangeWeightSum, Order8WorstConditionedFracsStayTight) {
    double worst = 0.0;
    for (int i = 0; i < 200000; ++i) {
        const double frac = static_cast<double>(i) / 200000.0;
        double w[8];
        lagrange_weights(frac, InterpOrder::kLag8, w);
        double sum = 0.0;
        for (double v : w) sum += v;
        worst = std::max(worst, std::fabs(sum - 1.0));
    }
    // The sweep lands on the worst-conditioned fracs (near 0.444 the basis
    // terms reach their largest cancellation); nextafter(1, 0) is the most
    // extreme in-range frac.
    double w[8];
    lagrange_weights(std::nextafter(1.0, 0.0), InterpOrder::kLag8, w);
    double sum = 0.0;
    for (double v : w) sum += v;
    worst = std::max(worst, std::fabs(sum - 1.0));
    EXPECT_LT(worst, 1e-13);
}

namespace audit_capture {
std::uint64_t fired = 0;
void handler(const char*, int, const char*, const char*) { ++fired; }
}  // namespace audit_capture

// The kernel-side enforcement is sampled (every 256th call, to keep audit
// builds fast), so drive the helper well past the sampling window and
// assert the contract actually fires on corrupted weights — and stays
// silent on valid ones.
TEST(LagrangeWeightSum, AuditFiresOnCorruptedWeights) {
    const util::ContractHandler previous =
        util::set_contract_handler(&audit_capture::handler);
    audit_capture::fired = 0;

    double good[8];
    lagrange_weights(0.375, InterpOrder::kLag8, good);
    for (int i = 0; i < 512; ++i) detail::audit_weight_sum(good, 8);
    EXPECT_EQ(audit_capture::fired, 0u) << "audit fired on weights that sum to 1";

    double bad[8];
    for (int i = 0; i < 8; ++i) bad[i] = good[i];
    bad[3] += 1e-6;  // well past the 1e-9 tolerance
    for (int i = 0; i < 512; ++i) detail::audit_weight_sum(bad, 8);
    EXPECT_GE(audit_capture::fired, 1u)
        << "sampled audit never fired across two full sampling windows";

    util::set_contract_handler(previous);
}

TEST(Interpolate, BoundaryPositionsUseGhosts) {
    // Positions at the very edge of the atom must still interpolate (the
    // ghost replication exists precisely for this) and match the field.
    const GridSpec g = test_grid();
    const SyntheticField f({.seed = 56, .modes = 6, .max_wavenumber = 3.0});
    const util::Coord3 atom{0, 0, 0};
    const VoxelBlock block(g, f, atom, 1);
    const double atom_extent = 1.0 / g.atoms_per_side();
    const double eps = 1e-4;
    const Vec3 corners[] = {
        {eps, eps, eps},
        {atom_extent - eps, atom_extent - eps, atom_extent - eps},
        {eps, atom_extent - eps, eps},
    };
    for (const Vec3& p : corners) {
        const FlowSample got = interpolate(g, block, atom, p, InterpOrder::kLag8);
        const FlowSample want = f.sample(p, g.sim_time(1));
        EXPECT_NEAR(got.velocity.x, want.velocity.x, 5e-3);
        EXPECT_NEAR(got.velocity.z, want.velocity.z, 5e-3);
    }
}

}  // namespace
}  // namespace jaws::field
