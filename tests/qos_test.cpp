// Tests for completion-time guarantees (sched/qos.h + scheduler/engine wiring).
#include <gtest/gtest.h>

#include "core/engine.h"
#include "sched/jaws.h"
#include "workload/generator.h"

namespace jaws::sched {
namespace {

workload::Job one_query_job(workload::JobId id, std::uint64_t morton,
                            std::uint64_t positions) {
    workload::Job j;
    j.id = id;
    j.type = workload::JobType::kBatched;
    workload::Query q;
    q.id = id * 100;
    q.job = id;
    q.timestep = 0;
    q.footprint.push_back(workload::AtomRequest{{0, morton}, positions});
    j.queries.push_back(q);
    return j;
}

JawsConfig qos_config(double slack, double margin_ms) {
    JawsConfig c;
    c.adaptive_alpha = false;
    c.alpha.initial_alpha = 0.0;
    c.job_aware = false;
    c.qos.enabled = true;
    c.qos.slack_factor = slack;
    c.qos.margin_ms = margin_ms;
    return c;
}

TEST(QosScheduler, AssignsSizeProportionalDeadlines) {
    JawsScheduler s(CostConstants{}, nullptr, qos_config(4.0, 100.0));
    const auto small = one_query_job(1, 5, 100);
    const auto large = one_query_job(2, 9, 10000);
    s.on_job_submitted(small);
    s.on_job_submitted(large);
    s.on_query_visible(small.queries[0], util::SimTime::zero());
    s.on_query_visible(large.queries[0], util::SimTime::zero());
    EXPECT_EQ(s.qos_stats()->guaranteed, 2u);
    // Earliest deadline belongs to the small query (shorter service estimate).
    const auto urgent = s.manager().earliest_deadline_atom();
    ASSERT_TRUE(urgent.has_value());
    EXPECT_EQ(urgent->first.morton, 5u);
}

TEST(QosScheduler, RescueOverridesContentionOrder) {
    // A barely-contended query whose deadline is imminent must be dispatched
    // before a heavily contended atom.
    JawsScheduler s(CostConstants{}, nullptr, qos_config(1.0, 1e9));  // huge margin
    const auto urgent = one_query_job(1, 5, 16);
    const auto heavy = one_query_job(2, 9, 20000);
    s.on_job_submitted(urgent);
    s.on_job_submitted(heavy);
    s.on_query_visible(urgent.queries[0], util::SimTime::zero());
    s.on_query_visible(heavy.queries[0], util::SimTime::zero());
    const auto batch = s.next_batch(util::SimTime::zero());
    ASSERT_FALSE(batch.empty());
    EXPECT_EQ(batch[0].atom.morton, 5u);  // EDF rescue, not contention
    EXPECT_GE(s.qos_stats()->edf_dispatches, 1u);
}

TEST(QosScheduler, NoRescueWhenDeadlinesSafe) {
    JawsScheduler s(CostConstants{}, nullptr, qos_config(1e6, 1.0));  // tiny margin
    const auto a = one_query_job(1, 5, 16);
    const auto b = one_query_job(2, 9, 20000);
    s.on_job_submitted(a);
    s.on_job_submitted(b);
    s.on_query_visible(a.queries[0], util::SimTime::zero());
    s.on_query_visible(b.queries[0], util::SimTime::zero());
    s.next_batch(util::SimTime::zero());
    EXPECT_EQ(s.qos_stats()->edf_dispatches, 0u);
}

TEST(QosScheduler, MissAccounting) {
    JawsScheduler s(CostConstants{}, nullptr, qos_config(0.001, 0.0));  // impossible
    const auto a = one_query_job(1, 5, 1000);
    s.on_job_submitted(a);
    s.on_query_visible(a.queries[0], util::SimTime::zero());
    s.next_batch(util::SimTime::zero());
    s.on_query_completed(a.queries[0].id, util::SimTime::from_seconds(100),
                         util::SimTime::from_seconds(100));
    EXPECT_EQ(s.qos_stats()->misses, 1u);
    EXPECT_GT(s.qos_stats()->mean_tardiness_ms(), 0.0);
    EXPECT_DOUBLE_EQ(s.qos_stats()->miss_rate(), 1.0);
}

TEST(QosEngine, GenerousDeadlinesMostlyMet) {
    core::EngineConfig config;
    config.grid.voxels_per_side = 256;
    config.grid.atom_side = 32;
    config.grid.timesteps = 8;
    config.field.modes = 6;
    config.cache.capacity_atoms = 48;
    config.scheduler.kind = core::SchedulerKind::kJaws;
    config.scheduler.jaws.qos.enabled = true;
    config.scheduler.jaws.qos.slack_factor = 5000.0;  // very generous
    config.scheduler.jaws.qos.margin_ms = 1000.0;

    workload::WorkloadSpec spec;
    spec.jobs = 40;
    spec.seed = 5;
    const field::SyntheticField field(config.field);
    const workload::Workload w = workload::generate_workload(spec, config.grid, field);
    core::Engine engine(config);
    const core::RunReport report = engine.run(w);
    EXPECT_EQ(report.qos.guaranteed, w.total_queries());
    EXPECT_LT(report.qos.miss_rate(), 0.05);
}

TEST(QosEngine, TightDeadlinesReduceMissesVersusNoQos) {
    // With QoS on, short queries get rescued; their completion times (and
    // miss rate against the same hypothetical deadlines) must improve over
    // the contention-only scheduler.
    core::EngineConfig base;
    base.grid.voxels_per_side = 256;
    base.grid.atom_side = 32;
    base.grid.timesteps = 8;
    base.field.modes = 6;
    base.cache.capacity_atoms = 48;
    base.scheduler.kind = core::SchedulerKind::kJaws;

    workload::WorkloadSpec spec;
    spec.jobs = 60;
    spec.seed = 9;
    spec.mean_burst_gap_s = 4.0;  // saturate so deadlines are actually at risk
    const field::SyntheticField field(base.field);
    const workload::Workload w = workload::generate_workload(spec, base.grid, field);

    core::EngineConfig qos = base;
    qos.scheduler.jaws.qos.enabled = true;
    qos.scheduler.jaws.qos.slack_factor = 50.0;
    qos.scheduler.jaws.qos.margin_ms = 2000.0;
    core::Engine engine(qos);
    const core::RunReport report = engine.run(w);
    EXPECT_GT(report.qos.edf_dispatches, 0u);
    // Guarantees are proportional: the miss rate should stay moderate even
    // under saturation because rescue dispatches pull at-risk queries ahead.
    EXPECT_LT(report.qos.miss_rate(), 0.5);
}

}  // namespace
}  // namespace jaws::sched
