// Tests for streaming statistics, histograms, percentiles, EWMA (util/stats.h).
#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"
#include "util/stats.h"

namespace jaws::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, KnownValues) {
    RunningStats s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValue) {
    RunningStats s;
    s.add(3.25);
    EXPECT_DOUBLE_EQ(s.mean(), 3.25);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.25);
    EXPECT_DOUBLE_EQ(s.max(), 3.25);
}

TEST(RunningStats, MergeMatchesSequential) {
    Rng rng(21);
    RunningStats whole, left, right;
    for (int i = 0; i < 500; ++i) {
        const double x = rng.normal(1.0, 2.0);
        whole.add(x);
        (i < 200 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
    RunningStats a, b;
    a.add(1.0);
    a.add(2.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Histogram, BasicBinning) {
    Histogram h({0.0, 1.0, 2.0, 5.0});
    h.add(0.5);
    h.add(1.0);  // lands in [1,2)
    h.add(1.9);
    h.add(4.99);
    EXPECT_EQ(h.bins(), 3u);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(2), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderAndOverflow) {
    Histogram h({0.0, 1.0});
    h.add(-0.1);
    h.add(1.0);  // at the last edge => overflow
    h.add(5.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(0), 0u);
}

TEST(Histogram, Fractions) {
    Histogram h({0.0, 10.0, 20.0});
    for (int i = 0; i < 3; ++i) h.add(5.0);
    h.add(15.0);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
}

TEST(Histogram, EdgesAccessors) {
    Histogram h({1.0, 2.0, 4.0});
    EXPECT_DOUBLE_EQ(h.lower_edge(1), 2.0);
    EXPECT_DOUBLE_EQ(h.upper_edge(1), 4.0);
}

TEST(Histogram, TableRendersEveryBin) {
    Histogram h({0.0, 1.0, 2.0});
    h.add(0.5);
    h.add(1.5);
    const std::string table = h.to_table("value");
    EXPECT_NE(table.find("value"), std::string::npos);
    EXPECT_NE(table.find("50.0%"), std::string::npos);
}

TEST(Percentile, EmptySampleIsNaN) {
    // An empty distribution has no percentiles; 0.0 would read as "zero
    // latency" in reports, so the contract is NaN (rendered "n/a").
    EXPECT_TRUE(std::isnan(percentile({}, 50.0)));
    EXPECT_TRUE(std::isnan(percentile({}, 99.9)));
}

TEST(Percentile, FormatQuantileRendersNaNAsNA) {
    EXPECT_EQ(format_quantile(percentile({}, 99.0)), "n/a");
    EXPECT_EQ(format_quantile(12.34), "12.3");
}

TEST(Percentile, MedianOfOddSample) {
    EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Percentile, Interpolates) {
    // rank = 0.5 between 1 and 2.
    EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 50.0), 1.5);
}

TEST(Percentile, Extremes) {
    const std::vector<double> v{5.0, 1.0, 3.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(Ewma, FirstObservationPrimes) {
    Ewma e(0.2);
    EXPECT_FALSE(e.primed());
    EXPECT_DOUBLE_EQ(e.update(10.0), 10.0);
    EXPECT_TRUE(e.primed());
}

TEST(Ewma, PaperSmoothingFormula) {
    // rt'(i) = 0.2 rt(i) + 0.8 rt'(i-1), rt'(0) = rt(0) — Sec. V-A.
    Ewma e(0.2);
    e.update(100.0);
    EXPECT_DOUBLE_EQ(e.update(50.0), 0.2 * 50.0 + 0.8 * 100.0);
}

TEST(Ewma, ConvergesToConstant) {
    Ewma e(0.2);
    for (int i = 0; i < 200; ++i) e.update(7.0);
    EXPECT_NEAR(e.value(), 7.0, 1e-9);
}

TEST(Ewma, ResetForgets) {
    Ewma e(0.5);
    e.update(4.0);
    e.reset();
    EXPECT_FALSE(e.primed());
    EXPECT_DOUBLE_EQ(e.update(1.0), 1.0);
}

}  // namespace
}  // namespace jaws::util
