// Tests for the adaptive age-bias controller (sched/adaptive_alpha.h).
#include <gtest/gtest.h>

#include "sched/adaptive_alpha.h"

namespace jaws::sched {
namespace {

AdaptiveAlphaConfig config(std::size_t run_length = 4, double smoothing = 1.0) {
    AdaptiveAlphaConfig c;
    c.initial_alpha = 0.5;
    c.run_length = run_length;
    c.smoothing = smoothing;  // 1.0 disables EWMA memory for exact rule tests
    c.stall_epsilon = 0.001;
    c.explore_step = 0.08;
    return c;
}

/// Feed one run of `n` completions with the given constant response time,
/// ending at absolute time `end_s` (throughput = n / (end_s - start_s)).
void feed_run(AdaptiveAlphaController& c, std::size_t n, double rt_ms, double start_s,
              double end_s) {
    for (std::size_t i = 0; i < n; ++i) {
        const double t = start_s + (end_s - start_s) * static_cast<double>(i + 1) /
                                       static_cast<double>(n);
        c.on_query_completed(util::SimTime::from_millis(rt_ms),
                             util::SimTime::from_seconds(t));
    }
}

TEST(AdaptiveAlpha, StartsAtInitial) {
    AdaptiveAlphaController c(config());
    EXPECT_DOUBLE_EQ(c.alpha(), 0.5);
    EXPECT_EQ(c.runs(), 0u);
}

TEST(AdaptiveAlpha, RunBoundaryEveryRunLengthCompletions) {
    AdaptiveAlphaController c(config(3));
    EXPECT_FALSE(c.on_query_completed(util::SimTime::from_millis(1),
                                      util::SimTime::from_seconds(1)));
    EXPECT_FALSE(c.on_query_completed(util::SimTime::from_millis(1),
                                      util::SimTime::from_seconds(2)));
    EXPECT_TRUE(c.on_query_completed(util::SimTime::from_millis(1),
                                     util::SimTime::from_seconds(3)));
    EXPECT_EQ(c.runs(), 1u);
}

TEST(AdaptiveAlpha, FirstRunOnlyPrimes) {
    AdaptiveAlphaController c(config());
    feed_run(c, 4, 100.0, 0.0, 10.0);
    EXPECT_DOUBLE_EQ(c.alpha(), 0.5);  // no previous run to compare against
}

TEST(AdaptiveAlpha, RuleOneDecreasesAlphaUnderRisingSaturation) {
    // rt doubles (ratio 2) while throughput stays flat (ratio 1):
    // alpha -= min(2 - 1, alpha) -> 0.5 - 0.5 = 0.
    AdaptiveAlphaController c(config());
    feed_run(c, 4, 100.0, 0.0, 10.0);   // rt 100, tp 0.4
    feed_run(c, 4, 200.0, 10.0, 20.0);  // rt 200, tp 0.4
    EXPECT_DOUBLE_EQ(c.alpha(), 0.0);
}

TEST(AdaptiveAlpha, RuleOnePartialDecrease) {
    // rt ratio 1.2, tp ratio 1.0 -> alpha -= 0.2.
    AdaptiveAlphaController c(config());
    feed_run(c, 4, 100.0, 0.0, 10.0);
    feed_run(c, 4, 120.0, 10.0, 20.0);
    EXPECT_NEAR(c.alpha(), 0.3, 1e-9);
}

TEST(AdaptiveAlpha, RuleTwoIncreasesAlphaUnderFallingSaturation) {
    // rt ratio 0.9 while tp ratio 0.5: alpha += min(0.4, 1 - alpha).
    AdaptiveAlphaController c(config());
    feed_run(c, 4, 100.0, 0.0, 10.0);        // tp 0.4
    feed_run(c, 4, 90.0, 20.0, 40.0);        // tp 0.2, rt 90
    EXPECT_NEAR(c.alpha(), 0.9, 1e-9);
}

TEST(AdaptiveAlpha, NoRuleFiresWhenThroughputKeepsUp) {
    // rt ratio 1.5, tp ratio 2.0 (>= rt ratio): neither rule applies.
    AdaptiveAlphaController c(config());
    feed_run(c, 4, 100.0, 0.0, 10.0);  // tp 0.4
    feed_run(c, 4, 150.0, 10.0, 15.0);  // tp 0.8
    EXPECT_DOUBLE_EQ(c.alpha(), 0.5);
}

TEST(AdaptiveAlpha, ClampsToZeroAndOne) {
    AdaptiveAlphaConfig cfg = config();
    cfg.initial_alpha = 0.1;
    AdaptiveAlphaController c(cfg);
    feed_run(c, 4, 100.0, 0.0, 10.0);
    feed_run(c, 4, 500.0, 10.0, 20.0);  // huge rt ratio -> clamp at 0
    EXPECT_DOUBLE_EQ(c.alpha(), 0.0);
    // Now tp collapse with improving rt -> rule 2 pushes up, clamped at 1.
    feed_run(c, 4, 50.0, 30.0, 130.0);
    EXPECT_LE(c.alpha(), 1.0);
}

TEST(AdaptiveAlpha, ExplorationAfterTwoFlatRuns) {
    AdaptiveAlphaController c(config());
    feed_run(c, 4, 100.0, 0.0, 10.0);
    feed_run(c, 4, 100.0, 10.0, 20.0);   // flat run 1
    feed_run(c, 4, 100.0, 20.0, 30.0);   // flat run 2 -> explore
    EXPECT_EQ(c.explorations(), 1u);
    EXPECT_NE(c.alpha(), 0.5);
}

TEST(AdaptiveAlpha, ExplorationReversesAtBounds) {
    AdaptiveAlphaConfig cfg = config();
    cfg.initial_alpha = 0.96;
    AdaptiveAlphaController c(cfg);
    double start = 0.0;
    // Keep the workload perfectly flat; exploration should bounce off 1.0
    // and come back down rather than sticking.
    for (int i = 0; i < 12; ++i) {
        feed_run(c, 4, 100.0, start, start + 10.0);
        start += 10.0;
    }
    EXPECT_GT(c.explorations(), 1u);
    EXPECT_LE(c.alpha(), 1.0);
    EXPECT_GE(c.alpha(), 0.0);
}

TEST(AdaptiveAlpha, EwmaSmoothsRatioSwings) {
    // With smoothing 0.2, one noisy run barely moves the smoothed ratios.
    AdaptiveAlphaConfig cfg = config(4, 0.2);
    AdaptiveAlphaController c(cfg);
    feed_run(c, 4, 100.0, 0.0, 10.0);
    feed_run(c, 4, 200.0, 10.0, 20.0);  // raw rt ratio 2, smoothed much less
    EXPECT_GT(c.alpha(), 0.25);  // far milder than the unsmoothed drop to 0
    EXPECT_LT(c.alpha(), 0.5);
}

}  // namespace
}  // namespace jaws::sched
