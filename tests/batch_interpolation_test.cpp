// Batched == scalar bit-identity for field::BatchInterpolator.
//
// The batched kernel's whole contract is that its restructuring — Morton
// blocked traversal, shared weight planes, fixed-trip-count stencils — is
// invisible in the results: every output is bit-for-bit the sample the
// scalar interpolate() produces. These tests pin that across every order,
// batch sizes {1, 3, 17, 256}, shuffled input orders, positions exactly on
// atom ghost faces and on the torus wrap, plus golden FNV-1a digests so a
// numerical drift that hit *both* kernels equally would still be caught.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "core/direct_executor.h"
#include "core/metrics.h"
#include "field/batch_interpolator.h"
#include "field/grid.h"
#include "field/interpolation.h"
#include "field/synthetic_field.h"
#include "util/rng.h"

namespace jaws::field {
namespace {

constexpr InterpOrder kOrders[] = {InterpOrder::kLinear, InterpOrder::kLag4,
                                   InterpOrder::kLag6, InterpOrder::kLag8};
constexpr std::size_t kBatchSizes[] = {1, 3, 17, 256};

GridSpec test_grid() {
    GridSpec g;
    g.voxels_per_side = 64;
    g.atom_side = 16;
    g.ghost = 4;  // room for order-8 kernels on atom faces
    g.timesteps = 2;
    return g;
}

FieldSpec test_field() {
    FieldSpec f;
    f.seed = 77;
    f.modes = 6;
    f.max_wavenumber = 3.0;
    return f;
}

/// Deterministic positions inside `atom`, biased toward the adversarial
/// placements: exact lower/upper faces (the window reaches into the ghost
/// layers) and near-face interior points. Atom 0's lower face sits on the
/// torus wrap: its ghost voxels replicate the far end of the domain.
std::vector<Vec3> make_positions(const GridSpec& grid, const util::Coord3& atom,
                                 std::size_t count, std::uint64_t seed) {
    util::Rng rng(seed);
    const double aext = 1.0 / grid.atoms_per_side();
    std::vector<Vec3> out(count);
    for (std::size_t i = 0; i < count; ++i) {
        const auto axis = [&](std::uint32_t atom_c) {
            switch (rng.uniform_u64(5)) {
                case 0: return atom_c * aext;  // lower face (wrap for atom 0)
                case 1:                        // upper face, inside the domain
                    if (atom_c + 1 < grid.atoms_per_side()) return (atom_c + 1.0) * aext;
                    return atom_c * aext;
                default: return (atom_c + rng.uniform()) * aext;
            }
        };
        out[i] = Vec3{axis(atom.x), axis(atom.y), axis(atom.z)};
    }
    return out;
}

std::vector<FlowSample> scalar_reference(const GridSpec& grid, const VoxelBlock& block,
                                         const util::Coord3& atom,
                                         const std::vector<Vec3>& positions,
                                         InterpOrder order) {
    std::vector<FlowSample> out(positions.size());
    for (std::size_t i = 0; i < positions.size(); ++i)
        out[i] = interpolate(grid, block, atom, positions[i], order);
    return out;
}

std::uint64_t digest(const std::vector<FlowSample>& samples) {
    std::uint64_t h = core::kFnvOffset;
    for (const FlowSample& s : samples) {
        const double fields[4] = {s.velocity.x, s.velocity.y, s.velocity.z, s.pressure};
        h = core::fnv1a64(h, fields, sizeof fields);
    }
    return h;
}

class BatchInterpolation : public ::testing::TestWithParam<InterpOrder> {};

TEST_P(BatchInterpolation, BitIdenticalToScalarAcrossBatchSizesAndShuffles) {
    const GridSpec grid = test_grid();
    const SyntheticField synth(test_field());
    const util::Coord3 atom{1, 2, 3};
    const VoxelBlock block(grid, synth, atom, 1);
    BatchInterpolator interp;
    for (const std::size_t count : kBatchSizes) {
        std::vector<Vec3> positions = make_positions(grid, atom, count, 7 + count);
        std::vector<FlowSample> want =
            scalar_reference(grid, block, atom, positions, GetParam());
        for (int shuffle = 0; shuffle < 3; ++shuffle) {
            std::vector<FlowSample> got(count);
            interp.evaluate(grid, block, atom, positions.data(), count, GetParam(),
                            got.data());
            for (std::size_t i = 0; i < count; ++i)
                ASSERT_EQ(std::memcmp(&got[i], &want[i], sizeof(FlowSample)), 0)
                    << "order " << static_cast<int>(GetParam()) << " batch " << count
                    << " shuffle " << shuffle << " position " << i;
            // Re-evaluate a permuted batch next round; the outputs above were
            // compared slot-by-slot so each permutation is fresh coverage.
            util::Rng rng(100 + static_cast<std::uint64_t>(shuffle));
            for (std::size_t i = count; i > 1; --i) {
                const std::size_t j = rng.uniform_u64(i);
                std::swap(positions[i - 1], positions[j]);
                std::swap(want[i - 1], want[j]);
            }
        }
    }
}

TEST_P(BatchInterpolation, TorusWrapFacesBitIdentical) {
    const GridSpec grid = test_grid();
    const SyntheticField synth(test_field());
    const util::Coord3 atom{0, 0, 0};  // lower faces sit on the torus wrap
    const VoxelBlock block(grid, synth, atom, 0);
    std::vector<Vec3> positions = make_positions(grid, atom, 64, 13);
    positions.push_back(Vec3{0.0, 0.0, 0.0});  // the wrap corner itself
    BatchInterpolator interp;
    std::vector<FlowSample> got(positions.size());
    interp.evaluate(grid, block, atom, positions.data(), positions.size(), GetParam(),
                    got.data());
    const std::vector<FlowSample> want =
        scalar_reference(grid, block, atom, positions, GetParam());
    ASSERT_EQ(std::memcmp(got.data(), want.data(),
                          positions.size() * sizeof(FlowSample)),
              0);
}

INSTANTIATE_TEST_SUITE_P(AllOrders, BatchInterpolation, ::testing::ValuesIn(kOrders));

// Golden digests of the batched kernel over the fixed fixture. These pin the
// *values*, not just batched == scalar agreement: a change that altered both
// kernels identically (different weights, different placement) would slip
// past the equivalence tests but trips these. Regenerate only for a justified
// numerical policy change (see the FP-contraction note in CMakeLists.txt).
TEST(BatchInterpolationGolden, DigestsPinned) {
    const GridSpec grid = test_grid();
    const SyntheticField synth(test_field());
    const util::Coord3 atom{1, 2, 3};
    const VoxelBlock block(grid, synth, atom, 1);
    const std::vector<Vec3> positions = make_positions(grid, atom, 256, 99);
    struct Golden {
        InterpOrder order;
        std::uint64_t digest;
    };
    const Golden goldens[] = {
        {InterpOrder::kLinear, 0x4658fee66db787c3ULL},
        {InterpOrder::kLag4, 0x6c848bbf581436b0ULL},
        {InterpOrder::kLag6, 0xeab96be46832d3a8ULL},
        {InterpOrder::kLag8, 0xedde91997d7bf930ULL},
    };
    BatchInterpolator interp;
    for (const Golden& g : goldens) {
        std::vector<FlowSample> got(positions.size());
        interp.evaluate(grid, block, atom, positions.data(), positions.size(), g.order,
                        got.data());
        EXPECT_EQ(digest(got), g.digest)
            << "order " << static_cast<int>(g.order) << ": digest 0x" << std::hex
            << digest(got);
        EXPECT_EQ(digest(scalar_reference(grid, block, atom, positions, g.order)),
                  g.digest)
            << "scalar path drifted from the pinned golden, order "
            << static_cast<int>(g.order);
    }
}

// The EvalSpec::batch knob is a pure throughput A/B: both settings must
// produce bit-identical samples and identical modeled costs end to end.
TEST(DirectExecutorBatchKnob, OnOffBitIdentical) {
    core::EngineConfig config;
    config.grid = test_grid();
    config.field = test_field();
    config.grid.timesteps = 4;
    config.cache.capacity_atoms = 16;
    core::EngineConfig scalar_config = config;
    scalar_config.eval.batch = false;

    core::DirectExecutor batched(config);
    core::DirectExecutor scalar(scalar_config);
    util::Rng rng(41);
    std::vector<Vec3> positions;
    for (int i = 0; i < 300; ++i)
        positions.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
    for (const InterpOrder order : kOrders) {
        const core::DirectResult a = batched.evaluate(2, positions, order);
        const core::DirectResult b = scalar.evaluate(2, positions, order);
        ASSERT_EQ(a.samples.size(), b.samples.size());
        ASSERT_EQ(std::memcmp(a.samples.data(), b.samples.data(),
                              a.samples.size() * sizeof(FlowSample)),
                  0)
            << "order " << static_cast<int>(order);
        EXPECT_EQ(a.virtual_cost, b.virtual_cost);
    }
}

}  // namespace
}  // namespace jaws::field
