// Tests for query pre-processing into sub-queries (sched/subquery.h).
#include <gtest/gtest.h>

#include <algorithm>

#include "sched/subquery.h"
#include "util/morton.h"

namespace jaws::sched {
namespace {

workload::Query query_with_atoms(const std::vector<util::Coord3>& coords,
                                 std::uint64_t positions_each = 10) {
    workload::Query q;
    q.id = 1;
    q.timestep = 2;
    for (const auto& c : coords)
        q.footprint.push_back(
            workload::AtomRequest{{2, util::morton_encode(c)}, positions_each});
    std::sort(q.footprint.begin(), q.footprint.end(),
              [](const workload::AtomRequest& a, const workload::AtomRequest& b) {
                  return a.atom.morton < b.atom.morton;
              });
    return q;
}

TEST(Preprocess, OneSubQueryPerFootprintAtom) {
    const auto q = query_with_atoms({{0, 0, 0}, {1, 0, 0}, {5, 5, 5}});
    const auto subs = preprocess(q, util::SimTime::from_millis(7));
    ASSERT_EQ(subs.size(), 3u);
    for (const auto& s : subs) {
        EXPECT_EQ(s.query, q.id);
        EXPECT_EQ(s.positions, 10u);
        EXPECT_EQ(s.enqueue_time.micros, 7000);
        EXPECT_EQ(s.atom.timestep, 2u);
    }
}

TEST(Preprocess, PreservesMortonOrder) {
    const auto q = query_with_atoms({{3, 3, 3}, {0, 0, 0}, {1, 1, 1}});
    const auto subs = preprocess(q, util::SimTime::zero());
    EXPECT_TRUE(std::is_sorted(subs.begin(), subs.end(),
                               [](const SubQuery& a, const SubQuery& b) {
                                   return a.atom.morton < b.atom.morton;
                               }));
}

TEST(Preprocess, SingleAtomHasNoSupports) {
    const auto q = query_with_atoms({{4, 4, 4}});
    const auto subs = preprocess(q, util::SimTime::zero());
    ASSERT_EQ(subs.size(), 1u);
    EXPECT_TRUE(subs[0].supports.empty());
}

TEST(Preprocess, AdjacentAtomsGainDownwardSupports) {
    // Two atoms adjacent along x: the higher-coordinate one owns the shared
    // face and lists its -x neighbour as support; the lower one does not —
    // so a Morton-ordered pass has always just read what a spill needs.
    const auto q = query_with_atoms({{2, 2, 2}, {3, 2, 2}});
    const auto subs = preprocess(q, util::SimTime::zero());
    ASSERT_EQ(subs.size(), 2u);
    const SubQuery& lower =
        subs[0].atom.morton == util::morton_encode(2, 2, 2) ? subs[0] : subs[1];
    const SubQuery& upper =
        subs[0].atom.morton == util::morton_encode(3, 2, 2) ? subs[0] : subs[1];
    ASSERT_EQ(upper.supports.size(), 1u);
    EXPECT_EQ(upper.supports[0], util::morton_encode(2, 2, 2));
    EXPECT_TRUE(lower.supports.empty());
}

TEST(Preprocess, NonAdjacentAtomsNoSupports) {
    const auto q = query_with_atoms({{0, 0, 0}, {5, 5, 5}});
    for (const auto& s : preprocess(q, util::SimTime::zero()))
        EXPECT_TRUE(s.supports.empty());
}

TEST(Preprocess, SupportsOnlyWithinFootprint) {
    // A 2x1x1 bar: supports never point to atoms outside the footprint.
    const auto q = query_with_atoms({{1, 1, 1}, {2, 1, 1}});
    for (const auto& s : preprocess(q, util::SimTime::zero())) {
        for (const std::uint64_t code : s.supports) {
            const bool in_footprint = std::any_of(
                q.footprint.begin(), q.footprint.end(),
                [code](const workload::AtomRequest& r) { return r.atom.morton == code; });
            ASSERT_TRUE(in_footprint);
        }
    }
}

TEST(Preprocess, DenseBlockSupportsCountMatchesFaces) {
    // A full 2x2x2 block: each atom has exactly three +direction neighbours
    // inside the block at the low corner, fewer elsewhere; the total number
    // of support entries equals the number of interior faces (12 for 2^3).
    std::vector<util::Coord3> coords;
    for (std::uint32_t x = 0; x < 2; ++x)
        for (std::uint32_t y = 0; y < 2; ++y)
            for (std::uint32_t z = 0; z < 2; ++z) coords.push_back({x, y, z});
    const auto q = query_with_atoms(coords);
    std::size_t total_supports = 0;
    for (const auto& s : preprocess(q, util::SimTime::zero()))
        total_supports += s.supports.size();
    EXPECT_EQ(total_supports, 12u);
}

TEST(Preprocess, EmptyFootprintYieldsNothing) {
    workload::Query q;
    EXPECT_TRUE(preprocess(q, util::SimTime::zero()).empty());
}

}  // namespace
}  // namespace jaws::sched
