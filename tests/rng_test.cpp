// Tests for the deterministic PRNG and its distributions (util/rng.h).
#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"
#include "util/stats.h"

namespace jaws::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) ASSERT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a() == b()) ++equal;
    EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsStream) {
    Rng a(7);
    const std::uint64_t first = a();
    a();
    a.reseed(7);
    EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-2.5, 3.5);
        ASSERT_GE(u, -2.5);
        ASSERT_LT(u, 3.5);
    }
}

TEST(Rng, UniformU64InRange) {
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) ASSERT_LT(rng.uniform_u64(17), 17u);
}

TEST(Rng, UniformU64CoversAllValues) {
    Rng rng(6);
    bool seen[7] = {};
    for (int i = 0; i < 1000; ++i) seen[rng.uniform_u64(7)] = true;
    for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, UniformIntClosedRange) {
    Rng rng(8);
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.uniform_int(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
    }
}

TEST(Rng, BernoulliMean) {
    Rng rng(9);
    int hits = 0;
    for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
    Rng rng(10);
    RunningStats stats;
    for (int i = 0; i < 20000; ++i) stats.add(rng.exponential(4.0));
    EXPECT_NEAR(stats.mean(), 4.0, 0.15);
    EXPECT_GE(stats.min(), 0.0);
}

TEST(Rng, NormalMoments) {
    Rng rng(11);
    RunningStats stats;
    for (int i = 0; i < 40000; ++i) stats.add(rng.normal(2.0, 3.0));
    EXPECT_NEAR(stats.mean(), 2.0, 0.1);
    EXPECT_NEAR(stats.stddev(), 3.0, 0.1);
}

TEST(Rng, LognormalMedian) {
    Rng rng(12);
    std::vector<double> sample;
    for (int i = 0; i < 20000; ++i) sample.push_back(rng.lognormal(1.5, 0.7));
    EXPECT_NEAR(percentile(sample, 50.0), std::exp(1.5), 0.15);
}

TEST(Rng, ZipfRankZeroMostFrequent) {
    Rng rng(13);
    std::uint64_t counts[10] = {};
    for (int i = 0; i < 30000; ++i) ++counts[rng.zipf(10, 1.2)];
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GT(counts[1], counts[4]);
    EXPECT_GT(counts[4], counts[9]);
}

TEST(Rng, ZipfWithinRange) {
    Rng rng(14);
    for (int i = 0; i < 5000; ++i) ASSERT_LT(rng.zipf(5, 1.0), 5u);
}

TEST(Rng, PoissonMean) {
    Rng rng(15);
    RunningStats stats;
    for (int i = 0; i < 20000; ++i) stats.add(static_cast<double>(rng.poisson(3.0)));
    EXPECT_NEAR(stats.mean(), 3.0, 0.1);
}

TEST(Rng, SplitProducesIndependentStream) {
    Rng a(16);
    Rng child = a.split();
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a() == child()) ++equal;
    EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace jaws::util
