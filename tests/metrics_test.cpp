// Tests for run-report metrics helpers (core/metrics.h).
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/metrics.h"

namespace jaws::core {
namespace {

QueryOutcome outcome(double visible_s, double completed_s) {
    QueryOutcome o;
    o.visible = util::SimTime::from_seconds(visible_s);
    o.completed = util::SimTime::from_seconds(completed_s);
    return o;
}

TEST(Metrics, ResponseIsCompletedMinusVisible) {
    const QueryOutcome o = outcome(2.0, 5.5);
    EXPECT_DOUBLE_EQ(o.response().seconds(), 3.5);
}

TEST(Metrics, FillResponseStatsEmptyIsNoop) {
    RunReport report;
    fill_response_stats({}, report);
    EXPECT_EQ(report.mean_response_ms, 0.0);
    EXPECT_EQ(report.steady_throughput_qps, 0.0);
}

TEST(Metrics, EmptyRunPercentilesAreNaNAndRenderAsNA) {
    // Percentiles of an empty completion set are NaN — a 0.0 would read as
    // "zero latency" — and the summary line renders them "n/a".
    RunReport report;
    report.scheduler_name = "empty";
    fill_response_stats({}, report);
    EXPECT_TRUE(std::isnan(report.median_response_ms));
    EXPECT_TRUE(std::isnan(report.p95_response_ms));
    EXPECT_TRUE(std::isnan(report.p99_response_ms));
    EXPECT_TRUE(std::isnan(report.p999_response_ms));
    const std::string line = report.summary();
    EXPECT_NE(line.find("n/a"), std::string::npos);
}

TEST(Metrics, TailPercentilesAreMonotone) {
    std::vector<QueryOutcome> outcomes;
    for (int i = 1; i <= 1000; ++i) outcomes.push_back(outcome(0.0, i * 0.001));
    RunReport report;
    fill_response_stats(outcomes, report);
    EXPECT_GE(report.p99_response_ms, report.p95_response_ms);
    EXPECT_GE(report.p999_response_ms, report.p99_response_ms);
    EXPECT_EQ(report.response_ms.size(), 1000u);  // pooled samples retained
}

TEST(Metrics, FillResponseStatsMeanMedianP95) {
    std::vector<QueryOutcome> outcomes;
    for (int i = 1; i <= 100; ++i) outcomes.push_back(outcome(0.0, i * 0.001));
    RunReport report;
    fill_response_stats(outcomes, report);
    EXPECT_NEAR(report.mean_response_ms, 50.5, 1e-9);
    EXPECT_NEAR(report.median_response_ms, 50.5, 0.6);
    EXPECT_NEAR(report.p95_response_ms, 95.05, 0.6);
}

TEST(Metrics, SteadyThroughputUsesPercentileWindow) {
    // 100 completions spread uniformly over [0, 100] s: t10 ~ 10.9 s,
    // t90 ~ 90.1 s -> steady tp ~ 80 / 79.2.
    std::vector<QueryOutcome> outcomes;
    for (int i = 1; i <= 100; ++i) outcomes.push_back(outcome(0.0, i * 1.0));
    RunReport report;
    fill_response_stats(outcomes, report);
    EXPECT_NEAR(report.steady_throughput_qps, 1.0, 0.05);
}

TEST(Metrics, SteadyThroughputDegenerateWindowFallsBack) {
    std::vector<QueryOutcome> outcomes(5, outcome(0.0, 1.0));  // all at once
    RunReport report;
    report.throughput_qps = 7.0;
    fill_response_stats(outcomes, report);
    EXPECT_DOUBLE_EQ(report.steady_throughput_qps, 7.0);
}

TEST(Metrics, SummaryMentionsSchedulerAndNumbers) {
    RunReport report;
    report.scheduler_name = "JAWS-test";
    report.throughput_qps = 1.25;
    report.cache.hits = 3;
    report.cache.misses = 1;
    const std::string s = report.summary();
    EXPECT_NE(s.find("JAWS-test"), std::string::npos);
    EXPECT_NE(s.find("1.25"), std::string::npos);
    EXPECT_NE(s.find("75.0%"), std::string::npos);
}

TEST(Metrics, CacheStatsHitRate) {
    cache::CacheStats stats;
    EXPECT_EQ(stats.hit_rate(), 0.0);
    stats.hits = 9;
    stats.misses = 1;
    EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.9);
}

TEST(Metrics, QosStatsRates) {
    sched::QosStats qos;
    EXPECT_EQ(qos.miss_rate(), 0.0);
    EXPECT_EQ(qos.mean_tardiness_ms(), 0.0);
    qos.guaranteed = 10;
    qos.misses = 2;
    qos.tardiness_ms_sum = 50.0;
    EXPECT_DOUBLE_EQ(qos.miss_rate(), 0.2);
    EXPECT_DOUBLE_EQ(qos.mean_tardiness_ms(), 25.0);
}

TEST(Metrics, PrefetchAccuracy) {
    sched::PrefetchStats stats;
    EXPECT_EQ(stats.accuracy(), 0.0);
    stats.hits = 3;
    stats.wasted = 1;
    EXPECT_DOUBLE_EQ(stats.accuracy(), 0.75);
}

}  // namespace
}  // namespace jaws::core
