// Tests for the synthetic turbulence field (field/synthetic_field.h).
#include <gtest/gtest.h>

#include <cmath>

#include "field/synthetic_field.h"
#include "util/rng.h"
#include "util/stats.h"

namespace jaws::field {
namespace {

TEST(SyntheticField, DeterministicInSeed) {
    const SyntheticField a({.seed = 5});
    const SyntheticField b({.seed = 5});
    const Vec3 p{0.3, 0.6, 0.9};
    const Vec3 va = a.velocity(p, 0.1), vb = b.velocity(p, 0.1);
    EXPECT_DOUBLE_EQ(va.x, vb.x);
    EXPECT_DOUBLE_EQ(va.y, vb.y);
    EXPECT_DOUBLE_EQ(va.z, vb.z);
    EXPECT_DOUBLE_EQ(a.pressure(p, 0.1), b.pressure(p, 0.1));
}

TEST(SyntheticField, DifferentSeedsDiffer) {
    const SyntheticField a({.seed = 1});
    const SyntheticField b({.seed = 2});
    const Vec3 p{0.25, 0.5, 0.75};
    EXPECT_NE(a.velocity(p, 0.0).x, b.velocity(p, 0.0).x);
}

TEST(SyntheticField, PeriodicOnUnitTorus) {
    const SyntheticField f({.seed = 3});
    const Vec3 p{0.12, 0.34, 0.56};
    const Vec3 q{p.x + 1.0, p.y + 2.0, p.z - 1.0};
    const Vec3 vp = f.velocity(p, 0.2), vq = f.velocity(q, 0.2);
    EXPECT_NEAR(vp.x, vq.x, 1e-9);
    EXPECT_NEAR(vp.y, vq.y, 1e-9);
    EXPECT_NEAR(vp.z, vq.z, 1e-9);
    EXPECT_NEAR(f.pressure(p, 0.2), f.pressure(q, 0.2), 1e-9);
}

TEST(SyntheticField, DivergenceFree) {
    // Numerical divergence via central differences should vanish to O(h^2):
    // the velocity is a curl by construction.
    const SyntheticField f({.seed = 4});
    util::Rng rng(17);
    const double h = 1e-5;
    for (int i = 0; i < 50; ++i) {
        const Vec3 p{rng.uniform(), rng.uniform(), rng.uniform()};
        const double dudx =
            (f.velocity({p.x + h, p.y, p.z}, 0.0).x - f.velocity({p.x - h, p.y, p.z}, 0.0).x) /
            (2 * h);
        const double dvdy =
            (f.velocity({p.x, p.y + h, p.z}, 0.0).y - f.velocity({p.x, p.y - h, p.z}, 0.0).y) /
            (2 * h);
        const double dwdz =
            (f.velocity({p.x, p.y, p.z + h}, 0.0).z - f.velocity({p.x, p.y, p.z - h}, 0.0).z) /
            (2 * h);
        ASSERT_NEAR(dudx + dvdy + dwdz, 0.0, 1e-4);
    }
}

TEST(SyntheticField, RmsVelocityCalibrated) {
    const SyntheticField f({.seed = 6, .rms_velocity = 2.0});
    util::Rng rng(18);
    double sum2 = 0.0;
    constexpr int kSamples = 2000;
    for (int i = 0; i < kSamples; ++i) {
        const Vec3 p{rng.uniform(), rng.uniform(), rng.uniform()};
        sum2 += f.velocity(p, 0.0).norm2();
    }
    EXPECT_NEAR(std::sqrt(sum2 / kSamples), 2.0, 0.3);
}

TEST(SyntheticField, SampleMatchesSeparateEvaluation) {
    const SyntheticField f({.seed = 7});
    const Vec3 p{0.4, 0.1, 0.8};
    const FlowSample s = f.sample(p, 0.3);
    const Vec3 v = f.velocity(p, 0.3);
    EXPECT_NEAR(s.velocity.x, v.x, 1e-12);
    EXPECT_NEAR(s.velocity.y, v.y, 1e-12);
    EXPECT_NEAR(s.velocity.z, v.z, 1e-12);
    EXPECT_NEAR(s.pressure, f.pressure(p, 0.3), 1e-12);
}

TEST(SyntheticField, TimeVaries) {
    const SyntheticField f({.seed = 8});
    const Vec3 p{0.5, 0.5, 0.5};
    EXPECT_NE(f.velocity(p, 0.0).x, f.velocity(p, 0.5).x);
}

TEST(Wrap01, MapsIntoUnitInterval) {
    EXPECT_DOUBLE_EQ(wrap01(0.25), 0.25);
    EXPECT_DOUBLE_EQ(wrap01(1.25), 0.25);
    EXPECT_DOUBLE_EQ(wrap01(-0.25), 0.75);
    EXPECT_EQ(wrap01(1.0), 0.0);
    const double w = wrap01(-1e-18);
    EXPECT_GE(w, 0.0);
    EXPECT_LT(w, 1.0);
}

TEST(AdvectRk2, StaysOnTorus) {
    const SyntheticField f({.seed = 9});
    util::Rng rng(19);
    Vec3 p{rng.uniform(), rng.uniform(), rng.uniform()};
    for (int i = 0; i < 100; ++i) {
        p = advect_rk2(f, p, i * 0.01, 0.01);
        ASSERT_GE(p.x, 0.0);
        ASSERT_LT(p.x, 1.0);
        ASSERT_GE(p.y, 0.0);
        ASSERT_LT(p.y, 1.0);
        ASSERT_GE(p.z, 0.0);
        ASSERT_LT(p.z, 1.0);
    }
}

TEST(AdvectRk2, ConvergesToSmallStepLimit) {
    // Two half steps should land closer to the fine solution than one full
    // step of twice the size (2nd-order accuracy sanity check).
    const SyntheticField f({.seed = 10});
    const Vec3 p{0.3, 0.3, 0.3};
    const double dt = 0.02;
    // Reference: many tiny steps.
    Vec3 ref = p;
    for (int i = 0; i < 64; ++i) ref = advect_rk2(f, ref, i * dt / 64, dt / 64);
    const Vec3 coarse = advect_rk2(f, p, 0.0, dt);
    Vec3 fine = advect_rk2(f, p, 0.0, dt / 2);
    fine = advect_rk2(f, fine, dt / 2, dt / 2);
    const auto dist = [](const Vec3& a, const Vec3& b) {
        const Vec3 d = a - b;
        return std::sqrt(d.norm2());
    };
    EXPECT_LT(dist(fine, ref), dist(coarse, ref) + 1e-12);
}

TEST(AdvectRk2, ZeroStepIsIdentity) {
    const SyntheticField f({.seed = 11});
    const Vec3 p{0.6, 0.7, 0.8};
    const Vec3 q = advect_rk2(f, p, 0.0, 0.0);
    EXPECT_DOUBLE_EQ(q.x, p.x);
    EXPECT_DOUBLE_EQ(q.y, p.y);
    EXPECT_DOUBLE_EQ(q.z, p.z);
}

}  // namespace
}  // namespace jaws::field
