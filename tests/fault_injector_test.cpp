// Fault injector unit tests: determinism, zero-cost-when-disabled, and each
// fault class in isolation.
#include <gtest/gtest.h>

#include <vector>

#include "storage/atom_store.h"
#include "storage/fault_injector.h"

namespace jaws::storage {
namespace {

TEST(FaultInjector, DefaultSpecIsDisabled) {
    FaultInjector injector{FaultSpec{}};
    EXPECT_FALSE(injector.enabled());
    EXPECT_FALSE(FaultSpec{}.storage_faults_enabled());
}

TEST(FaultInjector, NodeDownAloneDoesNotEnableStorageFaults) {
    FaultSpec spec;
    spec.node_down.push_back(NodeDownEvent{util::NodeIndex{0}, util::SimTime::from_seconds(1)});
    EXPECT_FALSE(spec.storage_faults_enabled());
}

TEST(FaultInjector, ZeroRatesNeverFail) {
    FaultSpec spec;
    spec.latency_spike_mean_ms = 100.0;  // mean without a rate: never fires
    FaultInjector injector{spec};
    for (std::uint32_t m = 0; m < 64; ++m) {
        const FaultOutcome out = injector.on_read(AtomId{0, m});
        EXPECT_FALSE(out.failed);
        EXPECT_EQ(out.extra_latency.micros, 0);
    }
    EXPECT_EQ(injector.stats().transient_faults, 0u);
    EXPECT_EQ(injector.stats().latency_spikes, 0u);
}

TEST(FaultInjector, CertainErrorRateAlwaysFails) {
    FaultSpec spec;
    spec.transient_error_rate = 1.0;
    FaultInjector injector{spec};
    for (std::uint32_t m = 0; m < 32; ++m) {
        const FaultOutcome out = injector.on_read(AtomId{1, m});
        EXPECT_TRUE(out.failed);
        EXPECT_FALSE(out.permanent);
    }
    EXPECT_EQ(injector.stats().transient_faults, 32u);
}

TEST(FaultInjector, TransientRateIsRoughlyCalibrated) {
    FaultSpec spec;
    spec.transient_error_rate = 0.25;
    FaultInjector injector{spec};
    std::uint64_t failures = 0;
    const std::uint64_t trials = 4000;
    for (std::uint64_t i = 0; i < trials; ++i)
        failures += injector.on_read(AtomId{0, i % 500}).failed ? 1 : 0;
    const double rate = static_cast<double>(failures) / static_cast<double>(trials);
    EXPECT_NEAR(rate, 0.25, 0.05);
}

TEST(FaultInjector, BadRangeIsPermanentAcrossTimesteps) {
    FaultSpec spec;
    spec.bad_ranges.push_back(BadRange{10, 20});
    FaultInjector injector{spec};
    for (std::uint32_t t = 0; t < 3; ++t) {
        const FaultOutcome out = injector.on_read(AtomId{t, 15});
        EXPECT_TRUE(out.failed);
        EXPECT_TRUE(out.permanent);
    }
    EXPECT_FALSE(injector.on_read(AtomId{0, 9}).permanent);
    EXPECT_FALSE(injector.on_read(AtomId{0, 21}).permanent);
    EXPECT_TRUE(injector.permanently_bad(AtomId{7, 10}));
    EXPECT_TRUE(injector.permanently_bad(AtomId{7, 20}));
    EXPECT_FALSE(injector.permanently_bad(AtomId{7, 21}));
    EXPECT_EQ(injector.stats().permanent_faults, 3u);
}

TEST(FaultInjector, SpikesCarryExponentialLatency) {
    FaultSpec spec;
    spec.latency_spike_rate = 1.0;
    spec.latency_spike_mean_ms = 40.0;
    FaultInjector injector{spec};
    util::SimTime total;
    const int n = 500;
    for (int i = 0; i < n; ++i) {
        const FaultOutcome out = injector.on_read(AtomId{0, static_cast<std::uint64_t>(i)});
        EXPECT_FALSE(out.failed);
        EXPECT_GE(out.extra_latency.micros, 0);
        total += out.extra_latency;
    }
    EXPECT_EQ(injector.stats().latency_spikes, static_cast<std::uint64_t>(n));
    EXPECT_EQ(injector.stats().spike_delay.micros, total.micros);
    // Mean of n exponential draws should land near the configured mean.
    EXPECT_NEAR(total.millis() / n, 40.0, 12.0);
}

TEST(FaultInjector, SameSeedSameSchedule) {
    FaultSpec spec;
    spec.seed = 99;
    spec.transient_error_rate = 0.3;
    spec.latency_spike_rate = 0.2;
    FaultInjector a{spec}, b{spec};
    for (std::uint32_t t = 0; t < 2; ++t)
        for (std::uint64_t m = 0; m < 200; ++m) {
            const FaultOutcome oa = a.on_read(AtomId{t, m});
            const FaultOutcome ob = b.on_read(AtomId{t, m});
            EXPECT_EQ(oa.failed, ob.failed);
            EXPECT_EQ(oa.extra_latency.micros, ob.extra_latency.micros);
        }
}

TEST(FaultInjector, ScheduleIsIndependentOfInterleaving) {
    FaultSpec spec;
    spec.transient_error_rate = 0.5;
    FaultInjector forward{spec}, backward{spec};
    std::vector<bool> fwd, bwd(100);
    for (std::uint64_t m = 0; m < 100; ++m)
        fwd.push_back(forward.on_read(AtomId{0, m}).failed);
    for (std::uint64_t m = 100; m-- > 0;)
        bwd[m] = backward.on_read(AtomId{0, m}).failed;
    for (std::uint64_t m = 0; m < 100; ++m) EXPECT_EQ(fwd[m], bwd[m]);
}

TEST(FaultInjector, DifferentSeedsDiffer) {
    FaultSpec a_spec, b_spec;
    a_spec.transient_error_rate = b_spec.transient_error_rate = 0.5;
    a_spec.seed = 1;
    b_spec.seed = 2;
    FaultInjector a{a_spec}, b{b_spec};
    int differing = 0;
    for (std::uint64_t m = 0; m < 200; ++m)
        if (a.on_read(AtomId{0, m}).failed != b.on_read(AtomId{0, m}).failed) ++differing;
    EXPECT_GT(differing, 0);
}

TEST(FaultInjector, RetriesRedrawPerAttempt) {
    FaultSpec spec;
    spec.transient_error_rate = 0.5;
    FaultInjector injector{spec};
    // Repeated attempts against one atom must not all share one fate.
    bool saw_fail = false, saw_ok = false;
    for (int attempt = 0; attempt < 64; ++attempt) {
        if (injector.on_read(AtomId{0, 7}).failed)
            saw_fail = true;
        else
            saw_ok = true;
    }
    EXPECT_TRUE(saw_fail);
    EXPECT_TRUE(saw_ok);
}

TEST(AtomStoreFaults, FailedReadChargesDiskButReturnsNoData) {
    AtomStoreSpec spec;
    spec.grid.voxels_per_side = 64;
    spec.grid.atom_side = 32;
    spec.grid.timesteps = 1;
    spec.materialize_data = true;
    spec.faults.transient_error_rate = 1.0;
    AtomStore store(spec);
    const ReadResult rr = store.read(AtomId{0, 0});
    EXPECT_TRUE(rr.failed);
    EXPECT_FALSE(rr.permanent);
    EXPECT_EQ(rr.data, nullptr);
    EXPECT_GT(rr.io_cost.micros, 0);  // the head still moved
    EXPECT_EQ(store.disk_stats().requests, 1u);
    EXPECT_EQ(store.fault_stats().transient_faults, 1u);
}

TEST(AtomStoreFaults, SpikeInflatesIoCostAndDiskBusyTime) {
    AtomStoreSpec spec;
    spec.grid.voxels_per_side = 64;
    spec.grid.atom_side = 32;
    spec.grid.timesteps = 1;
    spec.faults.latency_spike_rate = 1.0;
    spec.faults.latency_spike_mean_ms = 200.0;

    AtomStoreSpec clean = spec;
    clean.faults = FaultSpec{};

    AtomStore faulty(spec), baseline(clean);
    const ReadResult slow = faulty.read(AtomId{0, 3});
    const ReadResult fast = baseline.read(AtomId{0, 3});
    EXPECT_FALSE(slow.failed);
    EXPECT_GE(slow.io_cost.micros, fast.io_cost.micros);
    EXPECT_EQ(faulty.disk_stats().fault_delay.micros,
              slow.io_cost.micros - fast.io_cost.micros);
    EXPECT_EQ(baseline.disk_stats().fault_delay.micros, 0);
}

}  // namespace
}  // namespace jaws::storage
