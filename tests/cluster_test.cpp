// Tests for the multi-node cluster facade (core/cluster.h).
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/engine.h"
#include "workload/generator.h"

namespace jaws::core {
namespace {

ClusterConfig small_cluster(std::size_t nodes) {
    ClusterConfig c;
    c.nodes = nodes;
    c.node.grid.voxels_per_side = 256;
    c.node.grid.atom_side = 32;
    c.node.grid.ghost = 2;
    c.node.grid.timesteps = 6;
    c.node.field.modes = 6;
    c.node.cache.capacity_atoms = 32;
    c.node.scheduler.kind = SchedulerKind::kJaws;
    return c;
}

workload::Workload small_workload(const ClusterConfig& config, std::size_t jobs = 30) {
    workload::WorkloadSpec spec;
    spec.jobs = jobs;
    spec.seed = 41;
    const field::SyntheticField field(config.node.field);
    return workload::generate_workload(spec, config.node.grid, field);
}

TEST(ClusterNodeOf, CoversAllNodesContiguously) {
    const std::uint64_t aps = 512;
    const std::size_t nodes = 4;
    std::size_t last = 0;
    std::vector<bool> seen(nodes, false);
    for (std::uint64_t m = 0; m < aps; ++m) {
        const std::size_t n = TurbulenceCluster::node_of(m, aps, nodes);
        ASSERT_LT(n, nodes);
        ASSERT_GE(n, last);  // monotone in Morton order (contiguous ranges)
        last = n;
        seen[n] = true;
    }
    for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(ClusterNodeOf, SingleNodeTakesAll) {
    EXPECT_EQ(TurbulenceCluster::node_of(123, 4096, 1), 0u);
}

TEST(ClusterPartition, PreservesEveryAtomRequest) {
    const ClusterConfig config = small_cluster(4);
    const workload::Workload w = small_workload(config);
    TurbulenceCluster cluster(config);
    const auto parts = cluster.partition(w);
    ASSERT_EQ(parts.size(), 4u);

    std::uint64_t original_positions = 0, split_positions = 0;
    std::size_t original_atoms = 0, split_atoms = 0;
    for (const auto& job : w.jobs)
        for (const auto& q : job.queries) {
            original_positions += q.total_positions();
            original_atoms += q.footprint.size();
        }
    for (const auto& part : parts)
        for (const auto& job : part.jobs)
            for (const auto& q : job.queries) {
                split_positions += q.total_positions();
                split_atoms += q.footprint.size();
            }
    EXPECT_EQ(split_positions, original_positions);
    EXPECT_EQ(split_atoms, original_atoms);
}

TEST(ClusterPartition, EachPartOwnsOnlyItsAtoms) {
    const ClusterConfig config = small_cluster(4);
    const workload::Workload w = small_workload(config);
    TurbulenceCluster cluster(config);
    const auto parts = cluster.partition(w);
    const std::uint64_t aps = config.node.grid.atoms_per_step();
    for (std::size_t n = 0; n < parts.size(); ++n)
        for (const auto& job : parts[n].jobs)
            for (const auto& q : job.queries)
                for (const auto& req : q.footprint)
                    ASSERT_EQ(TurbulenceCluster::node_of(req.atom.morton, aps, 4), n);
}

TEST(ClusterPartition, SequencesStayContiguous) {
    const ClusterConfig config = small_cluster(4);
    const workload::Workload w = small_workload(config);
    TurbulenceCluster cluster(config);
    for (const auto& part : cluster.partition(w))
        for (const auto& job : part.jobs) {
            ASSERT_FALSE(job.queries.empty());
            for (std::size_t i = 0; i < job.queries.size(); ++i)
                ASSERT_EQ(job.queries[i].seq_in_job, i);
        }
}

TEST(ClusterRun, AggregatesAllNodes) {
    const ClusterConfig config = small_cluster(4);
    const workload::Workload w = small_workload(config);
    TurbulenceCluster cluster(config);
    const ClusterReport report = cluster.run(w);
    EXPECT_EQ(report.per_node.size(), 4u);
    EXPECT_GT(report.total_throughput_qps, 0.0);
    EXPECT_GT(report.makespan.micros, 0);
    std::size_t parts = 0;
    for (const auto& r : report.per_node) parts += r.queries;
    EXPECT_GT(parts, 0u);
    EXPECT_GE(report.cache_hit_rate, 0.0);
    EXPECT_LE(report.cache_hit_rate, 1.0);
}

TEST(ClusterRun, SingleNodeMatchesEngine) {
    ClusterConfig config = small_cluster(1);
    const workload::Workload w = small_workload(config, 15);
    TurbulenceCluster cluster(config);
    const ClusterReport cr = cluster.run(w);
    Engine engine(config.node);
    const RunReport er = engine.run(w);
    ASSERT_EQ(cr.per_node.size(), 1u);
    EXPECT_EQ(cr.per_node[0].queries, er.queries);
    EXPECT_EQ(cr.per_node[0].atom_reads, er.atom_reads);
    EXPECT_EQ(cr.makespan, er.makespan);
}

TEST(ClusterRun, MoreNodesFinishSooner) {
    ClusterConfig one = small_cluster(1);
    ClusterConfig four = small_cluster(4);
    const workload::Workload w = small_workload(one, 40);
    const ClusterReport r1 = TurbulenceCluster(one).run(w);
    const ClusterReport r4 = TurbulenceCluster(four).run(w);
    // Four nodes each serve a quarter of the atoms: the slowest node's
    // makespan must not exceed the single node's.
    EXPECT_LE(r4.makespan.micros, r1.makespan.micros);
}

}  // namespace
}  // namespace jaws::core
