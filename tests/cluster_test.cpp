// Tests for the multi-node cluster facade (core/cluster.h).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/cluster.h"
#include "core/engine.h"
#include "storage/replica_router.h"
#include "workload/generator.h"

namespace jaws::core {
namespace {

ClusterConfig small_cluster(std::size_t nodes) {
    ClusterConfig c;
    c.nodes = nodes;
    c.node.grid.voxels_per_side = 256;
    c.node.grid.atom_side = 32;
    c.node.grid.ghost = 2;
    c.node.grid.timesteps = 6;
    c.node.field.modes = 6;
    c.node.cache.capacity_atoms = 32;
    c.node.scheduler.kind = SchedulerKind::kJaws;
    return c;
}

workload::Workload small_workload(const ClusterConfig& config, std::size_t jobs = 30) {
    workload::WorkloadSpec spec;
    spec.jobs = jobs;
    spec.seed = 41;
    const field::SyntheticField field(config.node.field);
    return workload::generate_workload(spec, config.node.grid, field);
}

TEST(ClusterNodeOf, CoversAllNodesContiguously) {
    const std::uint64_t aps = 512;
    const std::size_t nodes = 4;
    std::size_t last = 0;
    std::vector<bool> seen(nodes, false);
    for (std::uint64_t m = 0; m < aps; ++m) {
        const std::size_t n = TurbulenceCluster::node_of(m, aps, nodes).value();
        ASSERT_LT(n, nodes);
        ASSERT_GE(n, last);  // monotone in Morton order (contiguous ranges)
        last = n;
        seen[n] = true;
    }
    for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(ClusterNodeOf, SingleNodeTakesAll) {
    EXPECT_EQ(TurbulenceCluster::node_of(123, 4096, 1).value(), 0u);
}

TEST(ClusterNodeOf, RangeBoundariesWithIndivisibleAtomCount) {
    // 10 atoms over 4 nodes: ceil(10/4) = 3 per range, so the ranges are
    // [0,3) [3,6) [6,9) [9,10) — the last node's range is short, never empty.
    const std::uint64_t aps = 10;
    const std::size_t nodes = 4;
    const std::uint64_t per_node = (aps + nodes - 1) / nodes;
    ASSERT_EQ(per_node, 3u);
    for (std::size_t n = 0; n < nodes; ++n) {
        const std::uint64_t first = n * per_node;
        const std::uint64_t last = std::min<std::uint64_t>((n + 1) * per_node, aps) - 1;
        // First and last atom of each range land on that node.
        EXPECT_EQ(TurbulenceCluster::node_of(first, aps, nodes).value(), n);
        EXPECT_EQ(TurbulenceCluster::node_of(last, aps, nodes).value(), n);
        // One before the range belongs to the previous node.
        if (n > 0)
            EXPECT_EQ(TurbulenceCluster::node_of(first - 1, aps, nodes).value(), n - 1);
    }
    // Morton codes past atoms_per_step clamp to the last node rather than
    // running off the end of the node array.
    EXPECT_EQ(TurbulenceCluster::node_of(aps, aps, nodes).value(), nodes - 1);
    EXPECT_EQ(TurbulenceCluster::node_of(aps + 100, aps, nodes).value(), nodes - 1);
}

TEST(ClusterNodeOf, MoreNodesThanAtomsLeavesTrailingNodesEmpty) {
    // 2 atoms over 4 nodes: per_node = 1, atoms 0 and 1 land on nodes 0 and
    // 1; nodes 2 and 3 own no atom (and node_of never returns them).
    const std::uint64_t aps = 2;
    EXPECT_EQ(TurbulenceCluster::node_of(0, aps, 4).value(), 0u);
    EXPECT_EQ(TurbulenceCluster::node_of(1, aps, 4).value(), 1u);
    for (std::uint64_t m = 0; m < aps; ++m)
        EXPECT_LT(TurbulenceCluster::node_of(m, aps, 4).value(), 2u);
}

TEST(ClusterNodeOf, HandlesClustersAtTheNodeIndexCeiling) {
    // ISSUE 9 boundary: the old API returned size_t while callers stored
    // uint32; a cluster at the 32-bit ceiling is now an explicit, tested
    // edge instead of a silent truncation site. per_node = 1 here, so the
    // last atom lands on the last representable node index.
    const std::uint64_t n32 = std::numeric_limits<std::uint32_t>::max();
    EXPECT_EQ(TurbulenceCluster::node_of(n32 - 1, n32, n32).value(), n32 - 1);
    EXPECT_EQ(TurbulenceCluster::node_of(0, n32, n32).value(), 0u);
    // Morton codes past the step clamp to the last node, even at the rail.
    EXPECT_EQ(TurbulenceCluster::node_of(n32 + 100, n32, n32).value(), n32 - 1);
}

TEST(ClusterValidate, RejectsNodeCountsBeyondNodeIndex) {
    ClusterConfig c = small_cluster(2);
    c.nodes = (std::uint64_t{1} << 32) + 1;
    c.replication = 1;
    try {
        c.validate();
        FAIL() << "node counts beyond NodeIndex's 32-bit range must be rejected";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("NodeIndex"), std::string::npos);
    }
}

TEST(ReplicaChain, WrapsAtTheNodeIndexCeiling) {
    // The chain arithmetic runs in size_t and re-wraps into NodeIndex: the
    // last representable node's replica is node 0, not a truncated value.
    const std::size_t nodes = std::numeric_limits<std::uint32_t>::max();
    const auto chain = storage::replica_chain(
        util::NodeIndex{std::numeric_limits<std::uint32_t>::max() - 1}, 2,
        nodes);
    ASSERT_EQ(chain.size(), 2u);
    EXPECT_EQ(chain[0].value(), std::numeric_limits<std::uint32_t>::max() - 1);
    EXPECT_EQ(chain[1].value(), 0u);
}

std::vector<util::NodeIndex> ring(std::initializer_list<std::uint32_t> raw) {
    std::vector<util::NodeIndex> out;
    for (const std::uint32_t n : raw) out.push_back(util::NodeIndex{n});
    return out;
}

TEST(ReplicaChain, FollowsChainedDeclusteringOrder) {
    const auto chain = storage::replica_chain(util::NodeIndex{1}, 3, 5);
    EXPECT_EQ(chain, ring({1, 2, 3}));
}

TEST(ReplicaChain, WrapsAroundTheLastNode) {
    // The ranges owned by the tail nodes replicate onto the head of the ring.
    EXPECT_EQ(storage::replica_chain(util::NodeIndex{3}, 3, 4), ring({3, 0, 1}));
    EXPECT_EQ(storage::replica_chain(util::NodeIndex{4}, 2, 5), ring({4, 0}));
}

TEST(ReplicaChain, ClampsReplicationToClusterSize) {
    // replication > nodes cannot place two copies on one node: the chain
    // covers each node exactly once.
    EXPECT_EQ(storage::replica_chain(util::NodeIndex{2}, 9, 3), ring({2, 0, 1}));
    EXPECT_TRUE(storage::replica_chain(util::NodeIndex{0}, 2, 0).empty());
}

TEST(ClusterValidate, RejectsDuplicateNodeDownEvents) {
    ClusterConfig c = small_cluster(2);
    c.node.faults.node_down.push_back(
        storage::NodeDownEvent{util::NodeIndex{1}, util::SimTime::from_seconds(5.0)});
    c.node.faults.node_down.push_back(
        storage::NodeDownEvent{util::NodeIndex{1}, util::SimTime::from_seconds(9.0)});
    try {
        c.validate();
        FAIL() << "duplicate node_down events must be rejected";
    } catch (const std::invalid_argument& e) {
        // The message names the offending field and node.
        EXPECT_NE(std::string(e.what()).find("node.faults.node_down"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("node 1"), std::string::npos);
    }
}

TEST(ClusterValidate, RejectsNodeDownAtTickZero) {
    ClusterConfig c = small_cluster(2);
    c.node.faults.node_down.push_back(storage::NodeDownEvent{util::NodeIndex{0}, util::SimTime::zero()});
    try {
        c.validate();
        FAIL() << "a node-down at tick 0 must be rejected";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("node.faults.node_down"),
                  std::string::npos);
    }
}

TEST(ClusterValidate, AcceptsDistinctDeathsOnDistinctNodes) {
    ClusterConfig c = small_cluster(3);
    c.replication = 2;
    c.node.faults.node_down.push_back(
        storage::NodeDownEvent{util::NodeIndex{0}, util::SimTime::from_seconds(5.0)});
    c.node.faults.node_down.push_back(
        storage::NodeDownEvent{util::NodeIndex{2}, util::SimTime::from_seconds(7.0)});
    EXPECT_NO_THROW(c.validate());
}

TEST(ClusterPartition, PreservesEveryAtomRequest) {
    const ClusterConfig config = small_cluster(4);
    const workload::Workload w = small_workload(config);
    TurbulenceCluster cluster(config);
    const auto parts = cluster.partition(w);
    ASSERT_EQ(parts.size(), 4u);

    std::uint64_t original_positions = 0, split_positions = 0;
    std::size_t original_atoms = 0, split_atoms = 0;
    for (const auto& job : w.jobs)
        for (const auto& q : job.queries) {
            original_positions += q.total_positions();
            original_atoms += q.footprint.size();
        }
    for (const auto& part : parts)
        for (const auto& job : part.jobs)
            for (const auto& q : job.queries) {
                split_positions += q.total_positions();
                split_atoms += q.footprint.size();
            }
    EXPECT_EQ(split_positions, original_positions);
    EXPECT_EQ(split_atoms, original_atoms);
}

TEST(ClusterPartition, EachPartOwnsOnlyItsAtoms) {
    const ClusterConfig config = small_cluster(4);
    const workload::Workload w = small_workload(config);
    TurbulenceCluster cluster(config);
    const auto parts = cluster.partition(w);
    const std::uint64_t aps = config.node.grid.atoms_per_step();
    for (std::size_t n = 0; n < parts.size(); ++n)
        for (const auto& job : parts[n].jobs)
            for (const auto& q : job.queries)
                for (const auto& req : q.footprint)
                    ASSERT_EQ(TurbulenceCluster::node_of(req.atom.morton, aps, 4).value(), n);
}

TEST(ClusterPartition, SequencesStayContiguous) {
    const ClusterConfig config = small_cluster(4);
    const workload::Workload w = small_workload(config);
    TurbulenceCluster cluster(config);
    for (const auto& part : cluster.partition(w))
        for (const auto& job : part.jobs) {
            ASSERT_FALSE(job.queries.empty());
            for (std::size_t i = 0; i < job.queries.size(); ++i)
                ASSERT_EQ(job.queries[i].seq_in_job, i);
        }
}

TEST(ClusterRun, AggregatesAllNodes) {
    const ClusterConfig config = small_cluster(4);
    const workload::Workload w = small_workload(config);
    TurbulenceCluster cluster(config);
    const ClusterReport report = cluster.run(w);
    EXPECT_EQ(report.per_node.size(), 4u);
    EXPECT_GT(report.total_throughput_qps, 0.0);
    EXPECT_GT(report.makespan.micros, 0);
    std::size_t parts = 0;
    for (const auto& r : report.per_node) parts += r.queries;
    EXPECT_GT(parts, 0u);
    EXPECT_GE(report.cache_hit_rate, 0.0);
    EXPECT_LE(report.cache_hit_rate, 1.0);
}

TEST(ClusterRun, SingleNodeMatchesEngine) {
    ClusterConfig config = small_cluster(1);
    const workload::Workload w = small_workload(config, 15);
    TurbulenceCluster cluster(config);
    const ClusterReport cr = cluster.run(w);
    Engine engine(config.node);
    const RunReport er = engine.run(w);
    ASSERT_EQ(cr.per_node.size(), 1u);
    EXPECT_EQ(cr.per_node[0].queries, er.queries);
    EXPECT_EQ(cr.per_node[0].atom_reads, er.atom_reads);
    EXPECT_EQ(cr.makespan, er.makespan);
}

TEST(ClusterRun, MoreNodesFinishSooner) {
    ClusterConfig one = small_cluster(1);
    ClusterConfig four = small_cluster(4);
    const workload::Workload w = small_workload(one, 40);
    const ClusterReport r1 = TurbulenceCluster(one).run(w);
    const ClusterReport r4 = TurbulenceCluster(four).run(w);
    // Four nodes each serve a quarter of the atoms: the slowest node's
    // makespan must not exceed the single node's.
    EXPECT_LE(r4.makespan.micros, r1.makespan.micros);
}

}  // namespace
}  // namespace jaws::core
