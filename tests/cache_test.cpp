// Tests for the buffer cache and all replacement policies (cache/*).
#include <gtest/gtest.h>

#include <memory>

#include "cache/buffer_cache.h"
#include "cache/lru.h"
#include "cache/lru_k.h"
#include "cache/slru.h"
#include "cache/urc.h"

namespace jaws::cache {
namespace {

storage::AtomId atom(std::uint32_t t, std::uint64_t m) { return storage::AtomId{t, m}; }

// ---------- BufferCache semantics ----------

TEST(BufferCache, MissThenHit) {
    BufferCache cache(4, std::make_unique<LruPolicy>());
    EXPECT_FALSE(cache.lookup(atom(0, 1)));
    cache.insert(atom(0, 1));
    EXPECT_TRUE(cache.lookup(atom(0, 1)));
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(BufferCache, EvictsAtCapacity) {
    BufferCache cache(2, std::make_unique<LruPolicy>());
    cache.insert(atom(0, 1));
    cache.insert(atom(0, 2));
    const auto evicted = cache.insert(atom(0, 3));
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, atom(0, 1));  // LRU victim
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_FALSE(cache.contains(atom(0, 1)));
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(BufferCache, ReinsertResidentIsNoop) {
    BufferCache cache(2, std::make_unique<LruPolicy>());
    cache.insert(atom(0, 1));
    const auto evicted = cache.insert(atom(0, 1));
    EXPECT_FALSE(evicted.has_value());
    EXPECT_EQ(cache.size(), 1u);
}

TEST(BufferCache, LookupRefreshesRecency) {
    BufferCache cache(2, std::make_unique<LruPolicy>());
    cache.insert(atom(0, 1));
    cache.insert(atom(0, 2));
    cache.lookup(atom(0, 1));  // 1 becomes MRU
    const auto evicted = cache.insert(atom(0, 3));
    EXPECT_EQ(*evicted, atom(0, 2));
}

TEST(BufferCache, PayloadStoredAndRetrieved) {
    BufferCache cache(2, std::make_unique<LruPolicy>());
    cache.insert(atom(0, 1), nullptr);
    EXPECT_EQ(cache.payload(atom(0, 1)), nullptr);
    EXPECT_EQ(cache.payload(atom(0, 9)), nullptr);
}

TEST(BufferCache, ClearEmptiesEverything) {
    BufferCache cache(4, std::make_unique<LruPolicy>());
    cache.insert(atom(0, 1));
    cache.insert(atom(0, 2));
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.contains(atom(0, 1)));
    // Policy state was cleared too: filling again must not assert/evict wrong.
    cache.insert(atom(0, 1));
    cache.insert(atom(0, 2));
    EXPECT_EQ(cache.size(), 2u);
}

TEST(BufferCache, CapacityAtLeastOne) {
    BufferCache cache(0, std::make_unique<LruPolicy>());
    EXPECT_EQ(cache.capacity(), 1u);
}

TEST(BufferCache, HitRateComputation) {
    BufferCache cache(4, std::make_unique<LruPolicy>());
    cache.lookup(atom(0, 1));  // miss
    cache.insert(atom(0, 1));
    cache.lookup(atom(0, 1));  // hit
    cache.lookup(atom(0, 1));  // hit
    EXPECT_NEAR(cache.stats().hit_rate(), 2.0 / 3.0, 1e-12);
}

TEST(BufferCache, OverheadMeasured) {
    BufferCache cache(2, std::make_unique<LruPolicy>());
    for (std::uint64_t i = 0; i < 100; ++i) {
        if (!cache.lookup(atom(0, i % 4))) cache.insert(atom(0, i % 4));
    }
    EXPECT_GT(cache.stats().policy_overhead_ns, 0u);
}

// ---------- LRU-K ----------

TEST(LruK, ScanResistance) {
    // Hot atoms referenced >= K times survive a one-shot scan.
    BufferCache cache(4, std::make_unique<LruKPolicy>(2));
    const auto hot1 = atom(0, 100), hot2 = atom(0, 101);
    cache.insert(hot1);
    cache.insert(hot2);
    cache.lookup(hot1);
    cache.lookup(hot2);  // both now have 2 references
    // One-shot scan through 6 cold atoms.
    for (std::uint64_t i = 0; i < 6; ++i) cache.insert(atom(1, i));
    EXPECT_TRUE(cache.contains(hot1));
    EXPECT_TRUE(cache.contains(hot2));
}

TEST(LruK, SingleReferenceVictimIsOldest) {
    BufferCache cache(3, std::make_unique<LruKPolicy>(2));
    cache.insert(atom(0, 1));
    cache.insert(atom(0, 2));
    cache.insert(atom(0, 3));
    const auto evicted = cache.insert(atom(0, 4));
    EXPECT_EQ(*evicted, atom(0, 1));
}

TEST(LruK, RetainedHistorySurvivesEviction) {
    // An atom evicted and quickly re-admitted keeps its K-distance rank.
    BufferCache cache(2, std::make_unique<LruKPolicy>(2, 16));
    const auto a = atom(0, 1);
    cache.insert(a);
    cache.lookup(a);
    cache.lookup(a);      // a has rich history
    cache.insert(atom(0, 2));
    cache.insert(atom(0, 3));  // evicts a (or 2) — fills cache with cold atoms
    // Re-admit a: history says it's hot, so the next insert evicts a cold one.
    if (!cache.contains(a)) cache.insert(a);
    cache.lookup(a);
    const auto evicted = cache.insert(atom(0, 4));
    ASSERT_TRUE(evicted.has_value());
    EXPECT_NE(*evicted, a);
}

TEST(LruK, KEqualsOneBehavesLikeLru) {
    BufferCache cache(2, std::make_unique<LruKPolicy>(1));
    cache.insert(atom(0, 1));
    cache.insert(atom(0, 2));
    cache.lookup(atom(0, 1));
    const auto evicted = cache.insert(atom(0, 3));
    EXPECT_EQ(*evicted, atom(0, 2));
}

// ---------- SLRU ----------

TEST(Slru, RunBoundaryPromotesFrequent) {
    auto policy = std::make_unique<SlruPolicy>(10, 0.2);  // protected cap = 2
    SlruPolicy* raw = policy.get();
    BufferCache cache(10, std::move(policy));
    for (std::uint64_t i = 0; i < 5; ++i) cache.insert(atom(0, i));
    // Atom 3 is the clear frequency winner this run.
    for (int i = 0; i < 5; ++i) cache.lookup(atom(0, 3));
    cache.lookup(atom(0, 4));
    cache.run_boundary();
    EXPECT_EQ(raw->protected_size(), 2u);
}

TEST(Slru, ProtectedSurvivesProbationaryChurn) {
    auto policy = std::make_unique<SlruPolicy>(4, 0.25);  // protected cap = 1
    BufferCache cache(4, std::move(policy));
    const auto hot = atom(0, 99);
    cache.insert(hot);
    for (int i = 0; i < 10; ++i) cache.lookup(hot);
    cache.run_boundary();  // hot promoted
    // Churn many cold atoms through the probationary segment.
    for (std::uint64_t i = 0; i < 20; ++i) cache.insert(atom(1, i));
    EXPECT_TRUE(cache.contains(hot));
}

TEST(Slru, DemotedAtomGoesToProbationaryMru) {
    auto policy = std::make_unique<SlruPolicy>(4, 0.25);  // protected cap = 1
    SlruPolicy* raw = policy.get();
    BufferCache cache(4, std::move(policy));
    const auto a = atom(0, 1), cold1 = atom(0, 2), hot = atom(0, 3);
    cache.insert(a);
    for (int i = 0; i < 3; ++i) cache.lookup(a);
    cache.insert(cold1);
    cache.insert(hot);
    cache.run_boundary();  // a is the run's frequency winner -> protected
    EXPECT_EQ(raw->protected_size(), 1u);
    for (int i = 0; i < 5; ++i) cache.lookup(hot);
    cache.run_boundary();  // hot displaces a; a re-enters probationary at MRU
    EXPECT_EQ(raw->protected_size(), 1u);
    // Probationary is now [a (MRU), cold1 (LRU)]: cold1 evicts before a.
    cache.insert(atom(1, 10));  // fills to capacity 4
    const auto evicted = cache.insert(atom(2, 0));
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, cold1);
}

TEST(Slru, VictimFromProbationaryFirst) {
    auto policy = std::make_unique<SlruPolicy>(3, 0.34);  // protected cap = 1
    BufferCache cache(3, std::move(policy));
    const auto hot = atom(0, 7);
    cache.insert(hot);
    for (int i = 0; i < 4; ++i) cache.lookup(hot);
    cache.run_boundary();
    cache.insert(atom(0, 1));
    cache.insert(atom(0, 2));
    const auto evicted = cache.insert(atom(0, 3));
    ASSERT_TRUE(evicted.has_value());
    EXPECT_NE(*evicted, hot);
}

// ---------- URC ----------

/// Scripted oracle for URC tests.
class FakeOracle final : public UtilityOracle {
  public:
    double atom_utility(const storage::AtomId& a) const override {
        const auto it = atom_utilities.find(a);
        return it == atom_utilities.end() ? 0.0 : it->second;
    }
    double timestep_mean_utility(std::uint32_t t) const override {
        const auto it = step_means.find(t);
        return it == step_means.end() ? 0.0 : it->second;
    }

    std::unordered_map<storage::AtomId, double, storage::AtomIdHash> atom_utilities;
    std::unordered_map<std::uint32_t, double> step_means;
};

TEST(Urc, EvictsLowestMeanTimestepFirst) {
    FakeOracle oracle;
    oracle.step_means[0] = 10.0;
    oracle.step_means[1] = 1.0;  // step 1 is the losing time step
    oracle.atom_utilities[atom(0, 1)] = 5.0;
    oracle.atom_utilities[atom(1, 1)] = 50.0;  // high own utility, low step
    BufferCache cache(2, std::make_unique<UrcPolicy>(oracle));
    cache.insert(atom(0, 1));
    cache.insert(atom(1, 1));
    const auto evicted = cache.insert(atom(0, 2));
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, atom(1, 1));
}

TEST(Urc, WithinStepEvictsLowestUtility) {
    FakeOracle oracle;
    oracle.step_means[0] = 5.0;
    oracle.atom_utilities[atom(0, 1)] = 1.0;
    oracle.atom_utilities[atom(0, 2)] = 9.0;
    BufferCache cache(2, std::make_unique<UrcPolicy>(oracle));
    cache.insert(atom(0, 1));
    cache.insert(atom(0, 2));
    const auto evicted = cache.insert(atom(0, 3));
    EXPECT_EQ(*evicted, atom(0, 1));
}

TEST(Urc, RecencyBreaksZeroUtilityTies) {
    FakeOracle oracle;  // everything zero
    BufferCache cache(2, std::make_unique<UrcPolicy>(oracle));
    cache.insert(atom(0, 1));
    cache.insert(atom(0, 2));
    cache.lookup(atom(0, 1));  // refresh 1
    const auto evicted = cache.insert(atom(0, 3));
    EXPECT_EQ(*evicted, atom(0, 2));
}

TEST(Urc, NullOracleBehaviourViaZeroUtilities) {
    FakeOracle oracle;
    BufferCache cache(3, std::make_unique<UrcPolicy>(oracle));
    for (std::uint64_t i = 0; i < 10; ++i) {
        if (!cache.lookup(atom(0, i % 5))) cache.insert(atom(0, i % 5));
    }
    EXPECT_EQ(cache.size(), 3u);
}

}  // namespace
}  // namespace jaws::cache
