// Unified-kernel vs legacy cluster equivalence harness (core/cluster.h).
//
// The contract under test: at replication = 1 with no node deaths, the
// unified kernel (one shared EventQueue, route-time arrivals, replica-aware
// reads) produces per-query outcomes and sample digests bit-identical to the
// legacy per-node path (N isolated engines over a partition-time split) —
// the cross-node tie-break (time, priority, node, insertion) degenerates to
// each node's private order, and self-routing is the identity. The golden
// row pins the shared trace so a silent divergence in either path fails
// loudly. Beyond the pinned regime, the suite covers what only the unified
// kernel can do: replica-served reads, in-kernel failover into survivors'
// resources, and the merged cluster timeline.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/cluster.h"
#include "core/engine.h"
#include "core/metrics.h"
#include "workload/generator.h"

namespace jaws::core {
namespace {

// --- materialised fixture: real payloads, real digests --------------------

ClusterConfig fixture_cluster(std::size_t nodes, ClusterMode mode) {
    ClusterConfig c;
    c.nodes = nodes;
    c.mode = mode;
    c.node.grid.voxels_per_side = 128;
    c.node.grid.atom_side = 32;
    c.node.grid.ghost = 4;
    c.node.grid.timesteps = 4;
    c.node.field.modes = 4;
    c.node.cache.capacity_atoms = 16;
    c.node.run_length = 25;
    c.node.io_depth = 2;
    c.node.compute_workers = 2;
    c.node.materialize_data = true;
    c.node.scheduler.kind = SchedulerKind::kJaws;
    return c;
}

workload::Workload fixture_workload(const ClusterConfig& c, std::size_t jobs = 8) {
    workload::WorkloadSpec spec;
    spec.jobs = jobs;
    spec.seed = 11;
    spec.max_positions = 600;  // bound the real interpolation work per query
    const field::SyntheticField field(c.node.field);
    workload::Workload w = workload::generate_workload(spec, c.node.grid, field);
    workload::materialize_positions(w, c.node.grid, /*seed=*/23);
    return w;
}

void expect_node_reports_identical(const RunReport& u, const RunReport& l) {
    EXPECT_EQ(u.queries, l.queries);
    EXPECT_EQ(u.jobs, l.jobs);
    EXPECT_EQ(u.makespan.micros, l.makespan.micros);
    EXPECT_EQ(u.idle_time.micros, l.idle_time.micros);
    EXPECT_EQ(u.sample_digest, l.sample_digest);
    EXPECT_EQ(u.samples_evaluated, l.samples_evaluated);
    EXPECT_EQ(u.cache.hits, l.cache.hits);
    EXPECT_EQ(u.cache.misses, l.cache.misses);
    EXPECT_EQ(u.atom_reads, l.atom_reads);
    EXPECT_EQ(u.replica_reads, l.replica_reads);
    EXPECT_EQ(u.support_reads, l.support_reads);
    EXPECT_EQ(u.subqueries, l.subqueries);
    EXPECT_EQ(u.positions, l.positions);
    EXPECT_EQ(u.mean_response_ms, l.mean_response_ms);
    EXPECT_EQ(u.peak_cpu_busy, l.peak_cpu_busy);
    EXPECT_EQ(u.peak_disk_busy, l.peak_disk_busy);
    ASSERT_EQ(u.response_ms.size(), l.response_ms.size());
    for (std::size_t i = 0; i < u.response_ms.size(); ++i)
        EXPECT_EQ(u.response_ms[i], l.response_ms[i]);
}

TEST(ClusterEquivalence, UnifiedMatchesLegacyBitExactlyAtReplicationOne) {
    for (const std::size_t nodes : {std::size_t{1}, std::size_t{3}}) {
        SCOPED_TRACE("nodes=" + std::to_string(nodes));
        const ClusterConfig unified = fixture_cluster(nodes, ClusterMode::kUnified);
        const ClusterConfig legacy = fixture_cluster(nodes, ClusterMode::kLegacy);
        const workload::Workload w = fixture_workload(unified);

        const ClusterReport ru = TurbulenceCluster(unified).run(w);
        const ClusterReport rl = TurbulenceCluster(legacy).run(w);

        ASSERT_EQ(ru.per_node.size(), nodes);
        ASSERT_EQ(rl.per_node.size(), nodes);
        for (std::size_t n = 0; n < nodes; ++n) {
            SCOPED_TRACE("node=" + std::to_string(n));
            expect_node_reports_identical(ru.per_node[n], rl.per_node[n]);
        }
        EXPECT_EQ(ru.makespan.micros, rl.makespan.micros);
        EXPECT_EQ(ru.total_throughput_qps, rl.total_throughput_qps);
        EXPECT_EQ(ru.mean_response_ms, rl.mean_response_ms);
        EXPECT_EQ(ru.cache_hit_rate, rl.cache_hit_rate);
        EXPECT_EQ(ru.p99_response_ms, rl.p99_response_ms);
        EXPECT_EQ(ru.p999_response_ms, rl.p999_response_ms);

        // Routing accounting: everything routed to its owner, nothing moved
        // or lost, no cross-node reads at replication 1.
        std::size_t projected = 0;
        for (const auto& part : TurbulenceCluster(unified).partition(w))
            projected += part.total_queries();
        EXPECT_EQ(ru.routed_queries, projected);
        EXPECT_EQ(ru.rerouted_arrivals, 0u);
        EXPECT_EQ(ru.replica_reads, 0u);
        EXPECT_EQ(ru.lost_queries, 0u);
        EXPECT_EQ(rl.routed_queries, 0u);  // legacy path does not route
    }
}

// Golden-pinned trace of the 3-node fixture, captured when the unified
// kernel was introduced (unified and legacy agreed bit-for-bit at capture
// time, and the test above keeps proving they agree). If this row breaks,
// the virtual schedule, the partition split or the reduction order changed.
TEST(ClusterEquivalence, GoldenPinnedThreeNodeTrace) {
    const ClusterConfig config = fixture_cluster(3, ClusterMode::kUnified);
    const workload::Workload w = fixture_workload(config);
    const ClusterReport r = TurbulenceCluster(config).run(w);

    std::uint64_t samples = 0;
    std::uint64_t digest = kFnvOffset;
    for (const RunReport& n : r.per_node) {
        samples += n.samples_evaluated;
        digest = fnv1a64(digest, &n.sample_digest, sizeof(n.sample_digest));
    }
    EXPECT_EQ(r.makespan.micros, INT64_C(916033023));
    EXPECT_EQ(samples, UINT64_C(307798));
    EXPECT_EQ(digest, UINT64_C(0x6d1c2f7bf5529d87));
}

// --- descriptor-only fixtures: routing, failover, timeline ----------------

ClusterConfig tiny_cluster(std::size_t nodes, std::size_t replication) {
    ClusterConfig c;
    c.nodes = nodes;
    c.replication = replication;
    c.node.grid.voxels_per_side = 64;
    c.node.grid.atom_side = 32;  // 2 atoms per side -> 8 atoms per step
    c.node.grid.ghost = 2;
    c.node.grid.timesteps = 2;
    c.node.field.modes = 4;
    c.node.cache.capacity_atoms = 2;
    return c;
}

workload::Job single_query_job(workload::QueryId qid, std::uint64_t morton,
                               util::SimTime arrival, std::uint32_t step = 0) {
    workload::Job job;
    job.id = qid;
    job.type = workload::JobType::kBatched;
    job.arrival = arrival;
    workload::Query q;
    q.id = qid;
    q.job = job.id;
    q.timestep = step;
    q.footprint.push_back(workload::AtomRequest{{step, morton}, 5});
    job.queries.push_back(q);
    return job;
}

std::size_t completed_parts(const ClusterReport& r) {
    std::size_t total = 0;
    for (const auto& n : r.per_node) total += n.queries;
    for (const auto& n : r.recovery) total += n.queries;
    return total;
}

TEST(ClusterReplicaReads, ReplicatedReadsSpreadOntoTheChain) {
    // Two nodes, replication 2: every atom is readable on both. Jobs hammer
    // node 0's range (morton 0..3) in quick succession, so node 0's modeled
    // disk queue is deeper than node 1's when reads are routed — the kernel
    // serves part of them from the replica. Nothing of this exists on the
    // legacy path. io_depth 4 keeps several reads in flight per node — with
    // a pipeline window of 1 the owner's disk is idle at every route instant
    // and the chain never diverts; the 1 ms arrival spacing builds the
    // owner-side backlog the divert margin requires.
    ClusterConfig config = tiny_cluster(2, 2);
    config.node.io_depth = 4;
    workload::Workload w;
    for (workload::QueryId i = 1; i <= 60; ++i)
        w.jobs.push_back(single_query_job(
            i, i % 4, util::SimTime::from_millis(static_cast<double>(i) * 1.0)));
    const ClusterReport r = TurbulenceCluster(config).run(w);
    EXPECT_EQ(completed_parts(r), 60u);
    EXPECT_EQ(r.routed_queries, 60u);
    EXPECT_EQ(r.lost_queries, 0u);
    EXPECT_GT(r.replica_reads, 0u);  // replication acted as load balancing
    std::uint64_t per_node_replica = 0;
    for (const auto& n : r.per_node) per_node_replica += n.replica_reads;
    EXPECT_EQ(r.replica_reads, per_node_replica);
}

TEST(ClusterReplicaReads, UnifiedRunsAreBitIdenticalAcrossRepeats) {
    ClusterConfig config = tiny_cluster(2, 2);
    config.node.io_depth = 4;  // keep replica routing active (see above)
    workload::Workload w;
    for (workload::QueryId i = 1; i <= 40; ++i)
        w.jobs.push_back(single_query_job(
            i, i % 8, util::SimTime::from_millis(static_cast<double>(i) * 2.0)));
    const ClusterReport a = TurbulenceCluster(config).run(w);
    const ClusterReport b = TurbulenceCluster(config).run(w);
    EXPECT_EQ(a.makespan.micros, b.makespan.micros);
    EXPECT_EQ(a.replica_reads, b.replica_reads);
    ASSERT_EQ(a.per_node.size(), b.per_node.size());
    for (std::size_t n = 0; n < a.per_node.size(); ++n) {
        EXPECT_EQ(a.per_node[n].queries, b.per_node[n].queries);
        EXPECT_EQ(a.per_node[n].makespan.micros, b.per_node[n].makespan.micros);
        EXPECT_EQ(a.per_node[n].atom_reads, b.per_node[n].atom_reads);
        EXPECT_EQ(a.per_node[n].replica_reads, b.per_node[n].replica_reads);
    }
}

TEST(ClusterFailover, InKernelFailoverAbsorbsTheDeadNodesWork) {
    // Node 0 dies a third of the way through the arrival schedule. Its
    // unfinished share is re-injected into node 1 *inside the kernel* (no
    // recovery re-run), where it contends with node 1's own queue.
    ClusterConfig config = tiny_cluster(2, 2);
    config.node.faults.node_down.push_back(
        storage::NodeDownEvent{util::NodeIndex{0}, util::SimTime::from_millis(300.0)});
    workload::Workload w;
    for (workload::QueryId i = 1; i <= 24; ++i)
        w.jobs.push_back(single_query_job(
            i, i % 8, util::SimTime::from_millis(static_cast<double>(i) * 40.0)));
    TurbulenceCluster cluster(config);
    const ClusterReport r = cluster.run(w);

    EXPECT_EQ(r.dead_nodes, 1u);
    EXPECT_GE(r.failovers, 1u);
    EXPECT_EQ(r.lost_queries, 0u);
    EXPECT_GT(r.requeued_queries, 0u);
    EXPECT_TRUE(r.recovery.empty());  // absorbed in-kernel, not re-run after
    EXPECT_EQ(completed_parts(r), 24u);

    // The survivor completed strictly more than its own partition share.
    const auto parts = cluster.partition(w);
    EXPECT_GT(r.per_node[1].queries, parts[1].total_queries());
    // And the dead node stopped short.
    EXPECT_LT(r.per_node[0].queries, parts[0].total_queries());
}

TEST(ClusterFailover, NoSurvivingReplicaLosesTheTailInKernel) {
    ClusterConfig config = tiny_cluster(2, 1);  // no redundancy
    config.node.faults.node_down.push_back(
        storage::NodeDownEvent{util::NodeIndex{0}, util::SimTime::from_millis(300.0)});
    workload::Workload w;
    for (workload::QueryId i = 1; i <= 24; ++i)
        w.jobs.push_back(single_query_job(
            i, i % 8, util::SimTime::from_millis(static_cast<double>(i) * 40.0)));
    const ClusterReport r = TurbulenceCluster(config).run(w);
    EXPECT_EQ(r.dead_nodes, 1u);
    EXPECT_EQ(r.failovers, 0u);
    EXPECT_GT(r.lost_queries, 0u);
    EXPECT_EQ(completed_parts(r) + r.lost_queries, 24u);
}

TEST(ClusterFailover, SurvivorsDiskUtilizationRisesAfterTheDeath) {
    // The acceptance check on in-kernel failover: the survivor's *own*
    // timeline shows its disk working harder after the death than before —
    // the dead node's reads really run on the survivor's modeled channels,
    // not in a post-hoc summed report.
    ClusterConfig config = tiny_cluster(2, 2);
    config.node.timeline_window_s = 0.1;
    const util::SimTime death = util::SimTime::from_millis(300.0);
    config.node.faults.node_down.push_back(storage::NodeDownEvent{util::NodeIndex{0}, death});
    workload::Workload w;
    for (workload::QueryId i = 1; i <= 48; ++i)
        w.jobs.push_back(single_query_job(
            i, i % 4, util::SimTime::from_millis(static_cast<double>(i) * 20.0)));
    const ClusterReport r = TurbulenceCluster(config).run(w);
    ASSERT_EQ(r.lost_queries, 0u);
    ASSERT_GT(r.requeued_queries, 0u);

    double before = 0.0, after = 0.0;
    std::size_t n_before = 0, n_after = 0;
    for (const TimelinePoint& tp : r.per_node[1].timeline) {
        if (tp.window_end <= death) {
            before += tp.disk_utilization;
            ++n_before;
        } else {
            after += tp.disk_utilization;
            ++n_after;
        }
    }
    ASSERT_GT(n_before, 0u);
    ASSERT_GT(n_after, 0u);
    EXPECT_GT(after / static_cast<double>(n_after),
              before / static_cast<double>(n_before));
}

TEST(ClusterTimeline, MergedClusterTimelineCoversEveryNodeCompletion) {
    ClusterConfig config = tiny_cluster(2, 2);
    config.node.timeline_window_s = 0.1;
    workload::Workload w;
    for (workload::QueryId i = 1; i <= 30; ++i)
        w.jobs.push_back(single_query_job(
            i, i % 8, util::SimTime::from_millis(static_cast<double>(i) * 20.0)));
    const ClusterReport r = TurbulenceCluster(config).run(w);
    ASSERT_FALSE(r.timeline.empty());

    std::uint64_t merged = 0;
    for (const TimelinePoint& tp : r.timeline) merged += tp.completions;
    std::uint64_t per_node = 0;
    for (const RunReport& n : r.per_node)
        for (const TimelinePoint& tp : n.timeline) per_node += tp.completions;
    EXPECT_EQ(merged, per_node);
    for (std::size_t i = 1; i < r.timeline.size(); ++i)
        EXPECT_LT(r.timeline[i - 1].window_end.micros, r.timeline[i].window_end.micros);
}

TEST(ClusterLegacyMode, PostHocRecoveryPathStillWorks) {
    // The golden baseline stays exercisable: legacy mode re-runs a dead
    // node's share on a fresh replica engine after the fact.
    ClusterConfig config = tiny_cluster(2, 2);
    config.mode = ClusterMode::kLegacy;
    config.node.faults.node_down.push_back(
        storage::NodeDownEvent{util::NodeIndex{0}, util::SimTime::from_millis(300.0)});
    workload::Workload w;
    for (workload::QueryId i = 1; i <= 24; ++i)
        w.jobs.push_back(single_query_job(
            i, i % 8, util::SimTime::from_millis(static_cast<double>(i) * 40.0)));
    const ClusterReport r = TurbulenceCluster(config).run(w);
    EXPECT_EQ(r.dead_nodes, 1u);
    EXPECT_GE(r.failovers, 1u);
    EXPECT_EQ(r.lost_queries, 0u);
    ASSERT_FALSE(r.recovery.empty());
    EXPECT_EQ(completed_parts(r), 24u);
    EXPECT_EQ(r.routed_queries, 0u);
    EXPECT_EQ(r.replica_reads, 0u);
}

TEST(ClusterEquivalence, MaterializedRunRejectsKernelsWiderThanGhost) {
    // With real data an interpolation kernel must fit inside the atom's
    // ghost region (descriptor-only runs model the spill as support reads;
    // the data path cannot). An order-8 kernel against ghost=2 must throw
    // from workload intake — in both modes — instead of reading out of
    // bounds inside field::interpolate.
    for (const ClusterMode mode : {ClusterMode::kUnified, ClusterMode::kLegacy}) {
        ClusterConfig config = tiny_cluster(2, 1);
        config.mode = mode;
        config.node.materialize_data = true;
        workload::Workload w;
        w.jobs.push_back(single_query_job(1, 0, util::SimTime::zero()));
        w.jobs.back().queries.front().order = field::InterpOrder::kLag8;
        workload::materialize_positions(w, config.node.grid, /*seed=*/23);
        EXPECT_THROW(TurbulenceCluster(config).run(w), std::invalid_argument);
    }
    // The same workload passes once the grid carries enough ghost voxels.
    ClusterConfig ok = tiny_cluster(2, 1);
    ok.node.grid.ghost = 4;
    ok.node.materialize_data = true;
    workload::Workload w;
    w.jobs.push_back(single_query_job(1, 0, util::SimTime::zero()));
    w.jobs.back().queries.front().order = field::InterpOrder::kLag8;
    workload::materialize_positions(w, ok.node.grid, /*seed=*/23);
    const ClusterReport r = TurbulenceCluster(ok).run(w);
    EXPECT_EQ(completed_parts(r), 1u);
}

}  // namespace
}  // namespace jaws::core
