// Property-based conservation laws of the simulation kernel (tests/proptest.h).
//
// Each property generates a random-but-seeded program against one component
// and checks an invariant that must hold for *every* program, not just the
// fixtures the unit tests pin:
//
//   * EventQueue — no event fires before its post tick or scheduled time,
//     and same-key events fire in insertion order;
//   * SimResource — channel-time conservation: the busy integral never
//     exceeds channels * elapsed, and started + discarded == submitted;
//   * DiskModel — ledger conservation: charged service equals rendered
//     service minus clamped refunds, and the ledger never goes negative;
//   * util::percentile — monotone in p and bounded by the sample extremes;
//   * field::lagrange_weights — partition of unity, polynomial reproduction
//     up to degree order-1, symmetry at frac = 0.5 and finiteness over
//     [0, 1), with the batched plane writer bitwise equal to the scalar one.
//
// The harness is deterministic (fixed seeds, no wall clock); a failure
// prints a shrunk choice stream that reproduces forever.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <cstdint>
#include <string>
#include <vector>

#include "field/interpolation.h"
#include "proptest.h"
#include "storage/disk_model.h"
#include "util/event_queue.h"
#include "util/sim_time.h"
#include "util/stats.h"

namespace jaws {
namespace {

using proptest::Config;
using proptest::Gen;
using proptest::Outcome;
using util::EventQueue;
using util::SimResource;
using util::SimTime;

// --- EventQueue: causality and FIFO ties -----------------------------------

std::string event_queue_causality(Gen& g) {
    EventQueue q;
    std::string failure;
    struct Posted {
        SimTime post_tick, due;
    };

    const int ops = static_cast<int>(g.below(64)) + 1;
    for (int i = 0; i < ops; ++i) {
        if (g.below(4) == 0) {
            q.run_one();
            continue;
        }
        const SimTime at = q.now() + SimTime::from_micros(g.in_range(-50, 200));
        const Posted p{q.now(), std::max(at, q.now())};
        q.schedule(at, static_cast<int>(g.below(3)), [&failure, &q, p] {
            if (q.now() < p.post_tick)
                failure = "event fired before its post tick";
            if (q.now() != p.due)
                failure = "event fired away from its (clamped) due time";
        });
    }
    while (q.run_one()) {
    }
    if (!q.empty()) return "queue failed to drain";
    return failure;
}

std::string event_queue_fifo_ties(Gen& g) {
    EventQueue q;
    std::vector<std::uint64_t> firing;
    const std::uint64_t n = g.below(16) + 2;
    const SimTime at = SimTime::from_micros(static_cast<std::int64_t>(g.below(100)));
    for (std::uint64_t i = 0; i < n; ++i)
        q.schedule(at, /*priority=*/1, [&firing, i] { firing.push_back(i); });
    while (q.run_one()) {
    }
    if (!std::is_sorted(firing.begin(), firing.end()))
        return "same-key events fired out of insertion order";
    if (firing.size() != n) return "an event was lost or duplicated";
    return "";
}

// --- SimResource: channel-time conservation --------------------------------

std::string resource_conservation(Gen& g) {
    EventQueue q;
    const std::size_t channels = g.below(4) + 1;
    SimResource res(q, channels, /*completion_priority=*/1);
    const SimTime start = q.now();

    std::size_t submitted = 0, started = 0, resolved = 0;
    std::vector<SimResource::JobId> ids;
    const int ops = static_cast<int>(g.below(48)) + 1;
    for (int i = 0; i < ops; ++i) {
        switch (g.below(4)) {
            case 0:
            case 1: {
                SimResource::Job job;
                job.priority = static_cast<int>(g.below(3));
                job.preemptible = g.boolean();
                const SimTime duration = SimTime::from_micros(g.in_range(0, 300));
                job.on_start = [&started, duration](std::size_t) {
                    ++started;
                    return duration;
                };
                job.on_complete = [&resolved](std::size_t) { ++resolved; };
                job.on_abort = [&resolved](std::size_t, SimTime) { ++resolved; };
                ids.push_back(res.submit(std::move(job)));
                ++submitted;
                break;
            }
            case 2:
                if (!ids.empty()) res.cancel(ids[g.below(ids.size())]);
                break;
            case 3: q.run_one(); break;
        }
    }
    // Draining cancel: waiting jobs discard silently, in-service jobs
    // resolve through on_abort (counted in `resolved`).
    for (const SimResource::JobId id : ids) res.cancel(id);
    while (q.run_one()) {
    }
    if (resolved != started)
        return "job conservation: a started job never resolved (or resolved "
               "twice)";
    if (started > submitted) return "more jobs started than submitted";
    if (!res.idle()) return "resource busy after drain";
    const SimTime elapsed = q.now() - start;
    if (res.busy_channel_time().micros >
        static_cast<std::int64_t>(channels) * elapsed.micros)
        return "busy-channel time exceeds channels * elapsed (the per-channel "
               "busy share would exceed the makespan)";
    if (res.peak_busy_channels() > channels)
        return "peak busy channels exceeds the channel count";
    if (!res.audit()) return "SimResource audit failed after drain";
    return "";
}

// --- DiskModel: ledger conservation ----------------------------------------

std::string disk_ledger_conservation(Gen& g) {
    storage::DiskSpec spec;
    spec.settle_ms = g.in_real(0.0, 5.0);
    spec.seek_full_stroke_ms = g.in_real(0.0, 20.0);
    spec.transfer_mb_per_s = g.in_real(0.5, 500.0);
    spec.heavy_tail.rate = g.boolean() ? g.unit() : 0.0;
    spec.heavy_tail.pareto = g.boolean();
    spec.heavy_tail.pareto_alpha = g.in_real(0.05, 4.0);
    spec.heavy_tail.pareto_min = g.in_real(1.0, 8.0);
    spec.heavy_tail.seed = g.u64();
    storage::DiskModel disk(spec);

    std::int64_t rendered = 0;   // sum of read() costs
    std::int64_t refunded = 0;   // cancel_tail refunds actually applied
    std::int64_t service = 0;    // mirror of stats_.service_time
    const int ops = static_cast<int>(g.below(64)) + 1;
    for (int i = 0; i < ops; ++i) {
        if (g.below(3) != 0) {
            const SimTime cost =
                disk.read(g.below(1ULL << 40), g.below(1ULL << 24));
            if (cost.micros < 0) return "negative read cost";
            rendered += cost.micros;
            service += cost.micros;
        } else {
            const std::int64_t tail = g.in_range(-50000, 200000);
            disk.cancel_tail(SimTime::from_micros(tail));
            const std::int64_t applied =
                std::min(std::max<std::int64_t>(0, tail), service);
            refunded += applied;
            service -= applied;
        }
        if (disk.stats().service_time.micros < 0)
            return "service_time went negative";
        if (disk.stats().service_time.micros != service)
            return "service_time diverged from the mirrored ledger";
    }
    // Conservation: what the disk rendered splits exactly into what it still
    // charges plus what cancellation refunded.
    if (rendered != service + refunded)
        return "rendered service != charged service + refunds";
    if (disk.stats().total_busy() !=
        disk.stats().service_time + disk.stats().fault_delay)
        return "total_busy is not the sum of its parts";
    return "";
}

// --- percentile: monotone and bounded --------------------------------------

std::string percentile_monotone(Gen& g) {
    const std::size_t n = g.below(64) + 1;
    std::vector<double> sample;
    sample.reserve(n);
    for (std::size_t i = 0; i < n; ++i) sample.push_back(g.in_real(-1e6, 1e6));
    const double p1 = g.unit() * 100.0;
    const double p2 = g.unit() * 100.0;
    const double lo = util::percentile(sample, std::min(p1, p2));
    const double hi = util::percentile(sample, std::max(p1, p2));
    if (!(lo <= hi)) return "percentile not monotone in p";
    const auto [mn, mx] = std::minmax_element(sample.begin(), sample.end());
    if (!(util::percentile(sample, 0.0) >= *mn) ||
        !(util::percentile(sample, 100.0) <= *mx))
        return "percentile escapes the sample range";
    return "";
}

// --- Lagrange weights (field/interpolation.h) ------------------------------

constexpr field::InterpOrder kOrders[] = {field::InterpOrder::kLinear,
                                          field::InterpOrder::kLag4,
                                          field::InterpOrder::kLag6,
                                          field::InterpOrder::kLag8};

// Partition of unity at every order, and the batched plane writer bitwise
// equal to the scalar writer for the same fracs.
std::string weights_partition_of_unity(Gen& g) {
    const field::InterpOrder order = kOrders[g.below(4)];
    const int n = static_cast<int>(order);
    const std::size_t count = g.below(32) + 1;
    std::vector<double> fracs(count);
    for (double& f : fracs) f = g.unit();
    if (count > 1) fracs[0] = 0.0;  // the exact node is a boundary case
    std::vector<double> planes(count * static_cast<std::size_t>(n));
    field::lagrange_weight_planes(fracs.data(), count, order, planes.data());
    for (std::size_t i = 0; i < count; ++i) {
        double scalar[8];
        field::lagrange_weights(fracs[i], order, scalar);
        if (std::memcmp(scalar, &planes[i * static_cast<std::size_t>(n)],
                        static_cast<std::size_t>(n) * sizeof(double)) != 0)
            return "batched weight plane is not bitwise equal to the scalar weights";
        double sum = 0.0;
        for (int k = 0; k < n; ++k) sum += scalar[k];
        if (!(std::fabs(sum - 1.0) <= 1e-9))
            return "weights of order " + std::to_string(n) + " sum to " +
                   std::to_string(sum) + " at frac " + std::to_string(fracs[i]);
    }
    return "";
}

// Exact reproduction of polynomials up to degree order - 1: interpolating
// p(x) at the integer nodes and evaluating at `frac` must reproduce p(frac)
// up to rounding in the basis (scaled tolerance, not bitwise).
std::string weights_reproduce_polynomials(Gen& g) {
    const field::InterpOrder order = kOrders[g.below(4)];
    const int n = static_cast<int>(order);
    const int degree = static_cast<int>(g.below(static_cast<std::uint64_t>(n)));
    double coeff[8];
    for (int d = 0; d <= degree; ++d) coeff[d] = g.in_real(-1.0, 1.0);
    const auto poly = [&](double x) {
        double acc = 0.0;
        for (int d = degree; d >= 0; --d) acc = acc * x + coeff[d];
        return acc;
    };
    const double frac = g.unit();
    double w[8];
    field::lagrange_weights(frac, order, w);
    double acc = 0.0, scale = 1.0;
    for (int i = 0; i < n; ++i) {
        const double node = static_cast<double>(i - (n / 2 - 1));
        acc += w[i] * poly(node);
        scale += std::fabs(w[i] * poly(node));
    }
    if (!(std::fabs(acc - poly(frac)) <= 1e-10 * scale))
        return "order " + std::to_string(n) + " failed to reproduce a degree-" +
               std::to_string(degree) + " polynomial at frac " + std::to_string(frac) +
               " (got " + std::to_string(acc) + ", want " + std::to_string(poly(frac)) +
               ")";
    return "";
}

// The node layout is symmetric about frac = 0.5, so the weights must be too
// (to rounding: the mirrored products associate differently).
std::string weights_symmetric_at_half(Gen& g) {
    const field::InterpOrder order = kOrders[g.below(4)];
    const int n = static_cast<int>(order);
    double w[8];
    field::lagrange_weights(0.5, order, w);
    for (int i = 0; i < n / 2; ++i)
        if (!(std::fabs(w[i] - w[n - 1 - i]) <= 1e-14))
            return "order " + std::to_string(n) + " weights not symmetric at 0.5 (w[" +
                   std::to_string(i) + "]=" + std::to_string(w[i]) + ", mirror " +
                   std::to_string(w[n - 1 - i]) + ")";
    return "";
}

// Finite weights for every frac in [0, 1), including the endpoints' closest
// representable neighbours.
std::string weights_finite(Gen& g) {
    const field::InterpOrder order = kOrders[g.below(4)];
    const int n = static_cast<int>(order);
    double frac;
    switch (g.below(4)) {
        case 0: frac = 0.0; break;
        case 1: frac = std::nextafter(1.0, 0.0); break;
        case 2: frac = std::nextafter(0.0, 1.0); break;
        default: frac = g.unit(); break;
    }
    double w[8];
    field::lagrange_weights(frac, order, w);
    for (int i = 0; i < n; ++i)
        if (!std::isfinite(w[i]))
            return "order " + std::to_string(n) + " weight " + std::to_string(i) +
                   " not finite at frac " + std::to_string(frac);
    return "";
}

TEST(Property, EventQueueCausality) {
    const Outcome o = proptest::check(Config{}, event_queue_causality);
    EXPECT_TRUE(o.ok) << o.message;
}

TEST(Property, EventQueueFifoTies) {
    const Outcome o = proptest::check(Config{}, event_queue_fifo_ties);
    EXPECT_TRUE(o.ok) << o.message;
}

TEST(Property, ResourceChannelTimeConservation) {
    const Outcome o = proptest::check(Config{}, resource_conservation);
    EXPECT_TRUE(o.ok) << o.message;
}

TEST(Property, DiskLedgerConservation) {
    const Outcome o = proptest::check(Config{}, disk_ledger_conservation);
    EXPECT_TRUE(o.ok) << o.message;
}

TEST(Property, PercentileMonotoneAndBounded) {
    const Outcome o = proptest::check(Config{}, percentile_monotone);
    EXPECT_TRUE(o.ok) << o.message;
}

TEST(Property, LagrangeWeightsPartitionOfUnity) {
    const Outcome o = proptest::check(Config{}, weights_partition_of_unity);
    EXPECT_TRUE(o.ok) << o.message;
}

TEST(Property, LagrangeWeightsReproducePolynomials) {
    const Outcome o = proptest::check(Config{}, weights_reproduce_polynomials);
    EXPECT_TRUE(o.ok) << o.message;
}

TEST(Property, LagrangeWeightsSymmetricAtHalf) {
    const Outcome o = proptest::check(Config{}, weights_symmetric_at_half);
    EXPECT_TRUE(o.ok) << o.message;
}

TEST(Property, LagrangeWeightsFinite) {
    const Outcome o = proptest::check(Config{}, weights_finite);
    EXPECT_TRUE(o.ok) << o.message;
}

// --- the harness has teeth --------------------------------------------------

TEST(Property, HarnessFindsAndShrinksCounterexamples) {
    // A property that fails whenever any choice is >= 2^32: the harness must
    // find a failure and shrink it (halving can bring values down to the
    // boundary, truncation strips unrelated tail choices).
    const auto bounded = [](Gen& g) -> std::string {
        const std::size_t n = g.below(16) + 1;
        for (std::size_t i = 0; i < n; ++i)
            if (g.u64() >= (1ULL << 32)) return "choice exceeds 2^32";
        return "";
    };
    const Outcome o = proptest::check(Config{}, bounded);
    ASSERT_FALSE(o.ok) << "the harness missed a property that almost always fails";
    EXPECT_NE(o.message.find("minimal counterexample"), std::string::npos);

    // Determinism: the same config reproduces the identical report.
    const Outcome again = proptest::check(Config{}, bounded);
    EXPECT_EQ(o.message, again.message);
}

TEST(Property, RecheckReplaysACounterexampleExactly) {
    const auto never_large = [](Gen& g) -> std::string {
        return g.u64() > 100 ? "too large" : "";
    };
    const Outcome bad = proptest::recheck(never_large, {101});
    EXPECT_FALSE(bad.ok);
    const Outcome good = proptest::recheck(never_large, {100});
    EXPECT_TRUE(good.ok);
}

}  // namespace
}  // namespace jaws
