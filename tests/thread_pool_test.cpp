// Tests for the thread pool (util/thread_pool.h).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>

#include "util/thread_pool.h"

namespace jaws::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
    for (auto& f : futures) f.get();
    EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, ReturnsValuesThroughFutures) {
    ThreadPool pool(2);
    auto f = pool.submit([](int a, int b) { return a * b; }, 6, 7);
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SizeReflectsWorkerCount) {
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
    ThreadPool pool;
    EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
    ThreadPool pool(1);
    auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
    ThreadPool pool(2);
    std::atomic<int> done{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&done] {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            done.fetch_add(1);
        });
    pool.wait_idle();
    EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 16; ++i) pool.submit([&done] { done.fetch_add(1); });
    }
    EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, ManyTasksOnSingleWorkerPreserveAllResults) {
    ThreadPool pool(1);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 100; ++i) futures.push_back(pool.submit([i] { return i; }));
    for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
}

TEST(ThreadPool, ShutdownDrainsPendingWorkBeforeReturning) {
    // One slow worker, a deep queue: shutdown() must run every task accepted
    // before it, not abandon the backlog.
    ThreadPool pool(1);
    std::atomic<int> done{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit([&done] {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            done.fetch_add(1);
        }));
    pool.shutdown();
    EXPECT_EQ(done.load(), 64);
    for (auto& f : futures) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
        f.get();
    }
}

TEST(ThreadPool, SubmitAfterShutdownIsRejectedDeterministically) {
    ThreadPool pool(2);
    pool.submit([] {});
    pool.shutdown();
    // Every post-shutdown submit throws — no task may queue behind workers
    // that have already exited (its future would never become ready).
    for (int i = 0; i < 4; ++i)
        EXPECT_THROW(pool.submit([] { return 1; }), std::runtime_error);
}

TEST(ThreadPool, ShutdownIsIdempotentAndSafeBeforeDestruction) {
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 16; ++i) pool.submit([&done] { done.fetch_add(1); });
        pool.shutdown();
        pool.shutdown();  // second call returns once the drain is complete
        EXPECT_EQ(done.load(), 16);
        // Destructor runs after an explicit shutdown: must not double-join.
    }
    EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, ConcurrentShutdownCallersAllObserveTheDrain) {
    // Several threads race shutdown() while the queue still holds work. The
    // first caller claims and joins the workers; the others must block until
    // the drain completes — none may return early or deadlock.
    ThreadPool pool(2);
    std::atomic<int> done{0};
    for (int i = 0; i < 128; ++i)
        pool.submit([&done] {
            std::this_thread::sleep_for(std::chrono::microseconds(100));
            done.fetch_add(1);
        });
    std::vector<std::thread> callers;
    for (int t = 0; t < 4; ++t)
        callers.emplace_back([&pool, &done] {
            pool.shutdown();
            EXPECT_EQ(done.load(), 128);
        });
    for (auto& t : callers) t.join();
    EXPECT_EQ(done.load(), 128);
}

TEST(ThreadPool, TasksRunningDuringShutdownStillCompleteTheirFutures) {
    ThreadPool pool(2);
    std::atomic<bool> entered{false};
    auto slow = pool.submit([&entered] {
        entered.store(true);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return 99;
    });
    while (!entered.load()) std::this_thread::yield();
    pool.shutdown();  // called mid-task: waits for it
    ASSERT_EQ(slow.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_EQ(slow.get(), 99);
}

}  // namespace
}  // namespace jaws::util
