// Tests for the thread pool (util/thread_pool.h).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>

#include "util/thread_pool.h"

namespace jaws::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
    for (auto& f : futures) f.get();
    EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, ReturnsValuesThroughFutures) {
    ThreadPool pool(2);
    auto f = pool.submit([](int a, int b) { return a * b; }, 6, 7);
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SizeReflectsWorkerCount) {
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
    ThreadPool pool;
    EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
    ThreadPool pool(1);
    auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
    ThreadPool pool(2);
    std::atomic<int> done{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&done] {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            done.fetch_add(1);
        });
    pool.wait_idle();
    EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 16; ++i) pool.submit([&done] { done.fetch_add(1); });
    }
    EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, ManyTasksOnSingleWorkerPreserveAllResults) {
    ThreadPool pool(1);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 100; ++i) futures.push_back(pool.submit([i] { return i; }));
    for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
}

}  // namespace
}  // namespace jaws::util
