// Tests for the clustered B+ tree (storage/bptree.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "storage/atom.h"
#include "storage/bptree.h"
#include "util/rng.h"

namespace jaws::storage {
namespace {

/// Shorthand for building the strong key type from a raw literal.
util::AtomKey K(std::uint64_t v) { return util::AtomKey{v}; }

TEST(BPlusTree, EmptyTree) {
    BPlusTree tree;
    EXPECT_EQ(tree.size(), 0u);
    EXPECT_EQ(tree.height(), 1u);
    EXPECT_FALSE(tree.find(K(42)).has_value());
    EXPECT_TRUE(tree.check_invariants());
}

TEST(BPlusTree, InsertAndFind) {
    BPlusTree tree;
    tree.insert(K(10), {100, 8});
    tree.insert(K(5), {50, 8});
    tree.insert(K(20), {200, 8});
    EXPECT_EQ(tree.size(), 3u);
    EXPECT_EQ(tree.find(K(10))->offset, 100u);
    EXPECT_EQ(tree.find(K(5))->offset, 50u);
    EXPECT_EQ(tree.find(K(20))->offset, 200u);
    EXPECT_FALSE(tree.find(K(15)).has_value());
}

TEST(BPlusTree, OverwriteKeepsSize) {
    BPlusTree tree;
    tree.insert(K(7), {1, 1});
    tree.insert(K(7), {2, 2});
    EXPECT_EQ(tree.size(), 1u);
    EXPECT_EQ(tree.find(K(7))->offset, 2u);
}

TEST(BPlusTree, SplitsGrowHeight) {
    BPlusTree tree;
    for (std::uint64_t i = 0; i < 10000; ++i) tree.insert(K(i), {i, 1});
    EXPECT_EQ(tree.size(), 10000u);
    EXPECT_GT(tree.height(), 1u);
    EXPECT_TRUE(tree.check_invariants());
    for (std::uint64_t i = 0; i < 10000; i += 37)
        ASSERT_EQ(tree.find(K(i))->offset, i);
}

TEST(BPlusTree, ReverseInsertionOrder) {
    BPlusTree tree;
    for (std::uint64_t i = 5000; i-- > 0;) tree.insert(K(i), {i, 1});
    EXPECT_EQ(tree.size(), 5000u);
    EXPECT_TRUE(tree.check_invariants());
    EXPECT_EQ(tree.find(K(0))->offset, 0u);
    EXPECT_EQ(tree.find(K(4999))->offset, 4999u);
}

TEST(BPlusTree, RandomInsertMatchesStdMap) {
    BPlusTree tree;
    std::map<std::uint64_t, std::uint64_t> reference;
    util::Rng rng(60);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t key = rng.uniform_u64(30000);
        const std::uint64_t value = rng();
        tree.insert(K(key), {value, 1});
        reference[key] = value;
    }
    EXPECT_EQ(tree.size(), reference.size());
    EXPECT_TRUE(tree.check_invariants());
    for (const auto& [k, v] : reference) ASSERT_EQ(tree.find(K(k))->offset, v);
}

TEST(BPlusTree, ScanVisitsRangeInOrder) {
    BPlusTree tree;
    for (std::uint64_t i = 0; i < 1000; ++i) tree.insert(K(i * 3), {i, 1});
    std::vector<std::uint64_t> seen;
    tree.scan(K(30), K(90), [&](util::AtomKey k, const DiskExtent&) {
        seen.push_back(k.value());
        return true;
    });
    // Multiples of 3 in [30, 90]: 30, 33, ..., 90 -> 21 keys.
    ASSERT_EQ(seen.size(), 21u);
    EXPECT_EQ(seen.front(), 30u);
    EXPECT_EQ(seen.back(), 90u);
    EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(BPlusTree, ScanEarlyStop) {
    BPlusTree tree;
    for (std::uint64_t i = 0; i < 100; ++i) tree.insert(K(i), {i, 1});
    int visits = 0;
    tree.scan(K(0), K(99),
              [&](util::AtomKey, const DiskExtent&) { return ++visits < 5; });
    EXPECT_EQ(visits, 5);
}

TEST(BPlusTree, ScanEmptyRange) {
    BPlusTree tree;
    for (std::uint64_t i = 0; i < 100; i += 10) tree.insert(K(i), {i, 1});
    int visits = 0;
    tree.scan(K(41), K(49), [&](util::AtomKey, const DiskExtent&) {
        ++visits;
        return true;
    });
    EXPECT_EQ(visits, 0);
}

TEST(BPlusTree, BulkLoadThenFind) {
    std::vector<std::pair<util::AtomKey, DiskExtent>> records;
    for (std::uint64_t i = 0; i < 50000; ++i)
        records.emplace_back(K(i * 2), DiskExtent{i, 4});
    BPlusTree tree;
    tree.bulk_load(records);
    EXPECT_EQ(tree.size(), records.size());
    EXPECT_TRUE(tree.check_invariants());
    EXPECT_EQ(tree.find(K(0))->offset, 0u);
    EXPECT_EQ(tree.find(K(99998))->offset, 49999u);
    EXPECT_FALSE(tree.find(K(99999)).has_value());
    EXPECT_FALSE(tree.find(K(1)).has_value());
}

TEST(BPlusTree, BulkLoadEmpty) {
    BPlusTree tree;
    tree.insert(K(1), {1, 1});
    tree.bulk_load({});
    EXPECT_EQ(tree.size(), 0u);
    EXPECT_TRUE(tree.check_invariants());
}

TEST(BPlusTree, InsertAfterBulkLoad) {
    std::vector<std::pair<util::AtomKey, DiskExtent>> records;
    for (std::uint64_t i = 0; i < 1000; ++i)
        records.emplace_back(K(i * 10), DiskExtent{i, 1});
    BPlusTree tree;
    tree.bulk_load(records);
    for (std::uint64_t i = 0; i < 1000; ++i) tree.insert(K(i * 10 + 5), {i, 2});
    EXPECT_EQ(tree.size(), 2000u);
    EXPECT_TRUE(tree.check_invariants());
    EXPECT_EQ(tree.find(K(15))->length, 2u);
    EXPECT_EQ(tree.find(K(10))->length, 1u);
}

TEST(BPlusTree, MoveConstructionTransfersOwnership) {
    BPlusTree a;
    for (std::uint64_t i = 0; i < 500; ++i) a.insert(K(i), {i, 1});
    BPlusTree b(std::move(a));
    EXPECT_EQ(b.size(), 500u);
    EXPECT_TRUE(b.check_invariants());
    EXPECT_EQ(b.find(K(123))->offset, 123u);
}

TEST(BPlusTree, MoveAssignmentReleasesOld) {
    BPlusTree a, b;
    for (std::uint64_t i = 0; i < 300; ++i) a.insert(K(i), {i, 1});
    b.insert(K(9999), {1, 1});
    b = std::move(a);
    EXPECT_EQ(b.size(), 300u);
    EXPECT_FALSE(b.find(K(9999)).has_value());
    EXPECT_TRUE(b.check_invariants());
}

TEST(BPlusTree, FullScanAscending) {
    BPlusTree tree;
    util::Rng rng(61);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t k = rng();
        keys.push_back(k);
        tree.insert(K(k), {k, 1});
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    std::vector<std::uint64_t> seen;
    tree.scan(K(0), K(~0ULL), [&](util::AtomKey k, const DiskExtent&) {
        seen.push_back(k.value());
        return true;
    });
    EXPECT_EQ(seen, keys);
}

TEST(AtomId, KeyRoundTrip) {
    const AtomId id{17, 0xABCDEF};
    EXPECT_EQ(AtomId::from_key(id.key()), id);
}

TEST(AtomId, KeyOrdersByTimestepThenMorton) {
    const AtomId a{1, 999999}, b{2, 0};
    EXPECT_LT(a.key(), b.key());
    const AtomId c{1, 5}, d{1, 6};
    EXPECT_LT(c.key(), d.key());
}

}  // namespace
}  // namespace jaws::storage
