// End-to-end tests for the single-node engine (core/engine.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "core/engine.h"
#include "workload/generator.h"

namespace jaws::core {
namespace {

EngineConfig small_config(SchedulerKind kind) {
    EngineConfig c;
    c.grid.voxels_per_side = 256;
    c.grid.atom_side = 32;
    c.grid.ghost = 2;
    c.grid.timesteps = 8;
    c.field.modes = 6;
    c.cache.capacity_atoms = 32;
    c.scheduler.kind = kind;
    c.run_length = 50;
    return c;
}

workload::Workload small_workload(const EngineConfig& config, std::size_t jobs = 40,
                                  std::uint64_t seed = 3) {
    workload::WorkloadSpec spec;
    spec.jobs = jobs;
    spec.seed = seed;
    const field::SyntheticField field(config.field);
    return workload::generate_workload(spec, config.grid, field);
}

class EngineAllSchedulers : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(EngineAllSchedulers, CompletesEveryQueryExactlyOnce) {
    const EngineConfig config = small_config(GetParam());
    const workload::Workload w = small_workload(config);
    Engine engine(config);
    const RunReport report = engine.run(w);
    EXPECT_EQ(report.queries, w.total_queries());
    EXPECT_EQ(report.jobs, w.jobs.size());

    std::unordered_set<workload::QueryId> seen;
    for (const auto& o : engine.outcomes()) {
        ASSERT_TRUE(seen.insert(o.query).second) << "query completed twice";
        ASSERT_GE(o.response().micros, 0);
        ASSERT_GE(o.completed.micros, o.visible.micros);
    }
    EXPECT_EQ(seen.size(), w.total_queries());
}

TEST_P(EngineAllSchedulers, ConservesPositionsAndSubqueries) {
    const EngineConfig config = small_config(GetParam());
    const workload::Workload w = small_workload(config);
    std::uint64_t positions = 0, subqueries = 0;
    for (const auto& job : w.jobs)
        for (const auto& q : job.queries) {
            positions += q.total_positions();
            subqueries += q.footprint.size();
        }
    Engine engine(config);
    const RunReport report = engine.run(w);
    EXPECT_EQ(report.positions, positions);
    EXPECT_EQ(report.subqueries, subqueries);
}

TEST_P(EngineAllSchedulers, OrderedJobsCompleteInSequence) {
    const EngineConfig config = small_config(GetParam());
    const workload::Workload w = small_workload(config);
    Engine engine(config);
    engine.run(w);
    // Completion times within an ordered job must ascend with seq.
    std::unordered_map<workload::QueryId, util::SimTime> completed;
    for (const auto& o : engine.outcomes()) completed[o.query] = o.completed;
    for (const auto& job : w.jobs) {
        if (job.type != workload::JobType::kOrdered) continue;
        for (std::size_t i = 1; i < job.queries.size(); ++i)
            ASSERT_GE(completed.at(job.queries[i].id).micros,
                      completed.at(job.queries[i - 1].id).micros);
    }
}

TEST_P(EngineAllSchedulers, ReportInternallyConsistent) {
    const EngineConfig config = small_config(GetParam());
    const workload::Workload w = small_workload(config);
    Engine engine(config);
    const RunReport report = engine.run(w);
    EXPECT_GT(report.makespan.micros, 0);
    EXPECT_GT(report.throughput_qps, 0.0);
    EXPECT_GT(report.busy_throughput_qps, 0.0);
    EXPECT_GE(report.busy_throughput_qps, report.throughput_qps);
    EXPECT_GT(report.mean_response_ms, 0.0);
    EXPECT_GE(report.p95_response_ms, report.median_response_ms);
    // Disk requests == cache-fill reads (primary misses only; support ghost
    // reads are charged without going through the store).
    EXPECT_EQ(report.disk.requests, report.atom_reads);
    EXPECT_EQ(report.cache.misses >= report.atom_reads, true);
    EXPECT_EQ(report.job_span_ms.size(), w.jobs.size());
}

TEST_P(EngineAllSchedulers, DeterministicAcrossRuns) {
    const EngineConfig config = small_config(GetParam());
    const workload::Workload w = small_workload(config);
    Engine a(config), b(config);
    const RunReport ra = a.run(w);
    const RunReport rb = b.run(w);
    EXPECT_EQ(ra.makespan, rb.makespan);
    EXPECT_EQ(ra.atom_reads, rb.atom_reads);
    EXPECT_EQ(ra.cache.hits, rb.cache.hits);
    EXPECT_DOUBLE_EQ(ra.mean_response_ms, rb.mean_response_ms);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, EngineAllSchedulers,
                         ::testing::Values(SchedulerKind::kNoShare,
                                           SchedulerKind::kLifeRaft,
                                           SchedulerKind::kJaws));

TEST(Engine, SingleShot) {
    const EngineConfig config = small_config(SchedulerKind::kNoShare);
    const workload::Workload w = small_workload(config, 5);
    Engine engine(config);
    engine.run(w);
    EXPECT_THROW(engine.run(w), std::logic_error);
}

TEST(Engine, EmptyWorkloadTrivially) {
    const EngineConfig config = small_config(SchedulerKind::kJaws);
    Engine engine(config);
    const RunReport report = engine.run(workload::Workload{});
    EXPECT_EQ(report.queries, 0u);
}

TEST(Engine, GatingNeverForcesPromotions) {
    EngineConfig config = small_config(SchedulerKind::kJaws);
    config.scheduler.jaws.job_aware = true;
    const workload::Workload w = small_workload(config, 60, 17);
    Engine engine(config);
    const RunReport report = engine.run(w);
    EXPECT_GT(report.gating.alignments_run, 0u);
    EXPECT_EQ(report.gating.forced_promotions, 0u);
}

TEST(Engine, JobAwareReducesReads) {
    EngineConfig with = small_config(SchedulerKind::kJaws);
    with.scheduler.jaws.job_aware = true;
    EngineConfig without = with;
    without.scheduler.jaws.job_aware = false;
    const workload::Workload w = small_workload(with, 80, 23);
    Engine ea(with), eb(without);
    const RunReport ra = ea.run(w);
    const RunReport rb = eb.run(w);
    // Job-awareness must not increase I/O (usually strictly decreases it).
    EXPECT_LE(ra.atom_reads, rb.atom_reads + rb.atom_reads / 20);
}

TEST(Engine, CachePolicySelectionWired) {
    for (const CachePolicy policy :
         {CachePolicy::kLru, CachePolicy::kLruK, CachePolicy::kSlru, CachePolicy::kUrc}) {
        EngineConfig config = small_config(SchedulerKind::kJaws);
        config.cache.policy = policy;
        Engine engine(config);
        const RunReport report = engine.run(small_workload(config, 10));
        EXPECT_GT(report.queries, 0u);
        EXPECT_FALSE(report.cache_policy.empty());
    }
}

TEST(Engine, BatchSchedulersShareMoreThanNoShare) {
    EngineConfig noshare = small_config(SchedulerKind::kNoShare);
    EngineConfig jaws = small_config(SchedulerKind::kJaws);
    const workload::Workload w = small_workload(noshare, 80, 29);
    Engine en(noshare), ej(jaws);
    const RunReport rn = en.run(w);
    const RunReport rj = ej.run(w);
    EXPECT_LT(rj.atom_reads, rn.atom_reads);
}

TEST(Engine, SpeedupIncreasesResponseTimes) {
    EngineConfig config = small_config(SchedulerKind::kNoShare);
    workload::Workload base = small_workload(config, 60, 31);
    workload::Workload fast = base;
    workload::apply_speedup(fast, 8.0);
    Engine ea(config), eb(config);
    const RunReport slow = ea.run(base);
    const RunReport quick = eb.run(fast);
    EXPECT_GT(quick.mean_response_ms, slow.mean_response_ms * 0.9);
}

TEST(Engine, AdaptiveAlphaMovesUnderLoad) {
    EngineConfig config = small_config(SchedulerKind::kJaws);
    config.scheduler.jaws.adaptive_alpha = true;
    config.scheduler.jaws.alpha.initial_alpha = 0.5;
    config.run_length = 40;
    workload::Workload w = small_workload(config, 100, 37);
    workload::apply_speedup(w, 8.0);  // heavy saturation
    Engine engine(config);
    const RunReport report = engine.run(w);
    // Under sustained saturation the controller should have moved alpha away
    // from its initial value (typically towards contention, i.e. below 0.5).
    EXPECT_NE(report.final_alpha, 0.5);
}


TEST(Engine, TimelineCollectsWindows) {
    EngineConfig config = small_config(SchedulerKind::kJaws);
    config.timeline_window_s = 30.0;
    const workload::Workload w = small_workload(config, 40, 3);
    Engine engine(config);
    const RunReport report = engine.run(w);
    ASSERT_FALSE(report.timeline.empty());
    std::uint64_t completions = 0;
    util::SimTime last{-1};
    for (const auto& point : report.timeline) {
        completions += point.completions;
        ASSERT_GT(point.window_end.micros, last.micros);
        last = point.window_end;
        ASSERT_GE(point.cache_hit_rate, 0.0);
        ASSERT_LE(point.cache_hit_rate, 1.0);
        ASSERT_GE(point.alpha, 0.0);
        ASSERT_LE(point.alpha, 1.0);
    }
    EXPECT_EQ(completions, report.queries);
}

TEST(Engine, TimelineDisabledByDefault) {
    const EngineConfig config = small_config(SchedulerKind::kNoShare);
    const workload::Workload w = small_workload(config, 10);
    Engine engine(config);
    EXPECT_TRUE(engine.run(w).timeline.empty());
}

}  // namespace
}  // namespace jaws::core
