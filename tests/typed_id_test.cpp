// Tests for the strong identifier wrappers (util/typed_id.h).
#include <gtest/gtest.h>

#include <concepts>
#include <cstdint>
#include <limits>
#include <sstream>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>

#include "util/typed_id.h"

namespace jaws::util {
namespace {

// The point of the types is what does NOT compile: raw integers do not
// convert in, ids do not convert out, and distinct id spaces do not compare
// or combine. Pin all of that at compile time.
static_assert(!std::is_convertible_v<std::uint64_t, AtomKey>,
              "construction from the raw representation must be explicit");
static_assert(!std::is_convertible_v<AtomKey, std::uint64_t>,
              "extraction must go through value()");
static_assert(!std::is_convertible_v<AtomKey, NodeIndex>,
              "id spaces must not interconvert");
static_assert(!std::is_convertible_v<NodeIndex, ChannelIndex>,
              "id spaces must not interconvert");
static_assert(!std::equality_comparable_with<AtomKey, NodeIndex>,
              "cross-space comparison must not compile");

template <class A, class B>
concept Addable = requires(A a, B b) { a + b; };
static_assert(!Addable<AtomKey, AtomKey>,
              "ids are identities, not quantities: no arithmetic");
static_assert(!Addable<AtomKey, std::uint64_t>,
              "ids must not mix with raw integers arithmetically");

static_assert(std::is_same_v<NodeIndex::rep, std::uint32_t>,
              "node indices are 32-bit on purpose (event-queue sources)");
static_assert(std::is_trivially_copyable_v<AtomKey> && sizeof(AtomKey) == 8,
              "the wrapper must stay zero-cost");

TEST(TypedId, ValueRoundTrips) {
    const AtomKey k{0x0123456789ABCDEFULL};
    EXPECT_EQ(k.value(), 0x0123456789ABCDEFULL);
    EXPECT_EQ(NodeIndex{}.value(), 0u);
    EXPECT_EQ(ChannelIndex{3}.value(), 3u);
}

TEST(TypedId, ComparesWithinOneSpace) {
    EXPECT_EQ(NodeIndex{2}, NodeIndex{2});
    EXPECT_NE(NodeIndex{2}, NodeIndex{3});
    EXPECT_LT(AtomKey{1}, AtomKey{2});
    EXPECT_GE(ChannelIndex{5}, ChannelIndex{5});
}

TEST(TypedId, HashKeysUnorderedContainers) {
    std::unordered_map<AtomKey, int, AtomKey::Hash> hits;
    hits[AtomKey{42}] = 7;
    hits[AtomKey{42}] += 1;
    hits[AtomKey{43}] = 1;
    EXPECT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[AtomKey{42}], 8);

    std::unordered_set<NodeIndex, NodeIndex::Hash> dead;
    dead.insert(NodeIndex{1});
    dead.insert(NodeIndex{1});
    EXPECT_EQ(dead.size(), 1u);
    EXPECT_TRUE(dead.count(NodeIndex{1}));
    EXPECT_FALSE(dead.count(NodeIndex{2}));
}

TEST(TypedId, StreamsItsRawValue) {
    std::ostringstream os;
    os << NodeIndex{17} << "/" << AtomKey{9};
    EXPECT_EQ(os.str(), "17/9");
}

TEST(TypedId, NodeIndexBoundary) {
    // The 32-bit ceiling ClusterConfig::validate() guards.
    const NodeIndex last{std::numeric_limits<std::uint32_t>::max()};
    EXPECT_EQ(last.value(), std::numeric_limits<std::uint32_t>::max());
    EXPECT_GT(last, NodeIndex{0});
}

}  // namespace
}  // namespace jaws::util
