// Tests for the precedence/gating graph (sched/precedence_graph.h).
#include <gtest/gtest.h>

#include <algorithm>

#include "sched/precedence_graph.h"
#include "util/rng.h"

namespace jaws::sched {
namespace {

workload::Query query_on(workload::JobId job, std::uint32_t seq, std::uint32_t step,
                         std::initializer_list<std::uint64_t> mortons) {
    workload::Query q;
    q.id = job * 1000 + seq;
    q.job = job;
    q.seq_in_job = seq;
    q.timestep = step;
    for (const std::uint64_t m : mortons)
        q.footprint.push_back(workload::AtomRequest{{step, m}, 10});
    std::sort(q.footprint.begin(), q.footprint.end(),
              [](const workload::AtomRequest& a, const workload::AtomRequest& b) {
                  return a.atom.morton < b.atom.morton;
              });
    return q;
}

/// Ordered job visiting the given atom per query (single shared step).
workload::Job chain(workload::JobId id, std::initializer_list<std::uint64_t> regions,
                    std::uint32_t step = 0) {
    workload::Job j;
    j.id = id;
    j.type = workload::JobType::kOrdered;
    std::uint32_t seq = 0;
    for (const std::uint64_t r : regions) j.queries.push_back(query_on(id, seq++, step, {r}));
    return j;
}

TEST(PrecedenceGraph, BatchedQueriesPromoteImmediately) {
    PrecedenceGraph g(true);
    workload::Job j;
    j.id = 1;
    j.type = workload::JobType::kBatched;
    j.queries.push_back(query_on(1, 0, 0, {1}));
    j.queries.push_back(query_on(1, 1, 0, {2}));
    g.add_job(j);
    EXPECT_EQ(g.state(1000), QueryState::kWait);
    const auto p0 = g.on_query_visible(1000);
    ASSERT_EQ(p0.size(), 1u);
    EXPECT_EQ(g.state(1000), QueryState::kQueue);
    const auto p1 = g.on_query_visible(1001);
    ASSERT_EQ(p1.size(), 1u);
}

TEST(PrecedenceGraph, OrderedChainStateMachine) {
    PrecedenceGraph g(true);
    const workload::Job j = chain(1, {10, 20, 30});
    g.add_job(j);
    for (const auto& q : j.queries) EXPECT_EQ(g.state(q.id), QueryState::kWait);

    auto promoted = g.on_query_visible(1000);
    ASSERT_EQ(promoted.size(), 1u);
    EXPECT_EQ(g.state(1000), QueryState::kQueue);
    EXPECT_EQ(g.state(1001), QueryState::kWait);

    g.on_query_done(1000);
    EXPECT_EQ(g.state(1000), QueryState::kDone);  // pruned => reports done
    promoted = g.on_query_visible(1001);
    ASSERT_EQ(promoted.size(), 1u);
    EXPECT_TRUE(g.check_invariants());
}

TEST(PrecedenceGraph, GatingAlignsTwoIdenticalChains) {
    PrecedenceGraph g(true);
    const workload::Job a = chain(1, {10, 20, 30});
    const workload::Job b = chain(2, {10, 20, 30});
    g.add_job(a);
    g.add_job(b);
    EXPECT_EQ(g.stats().edges_admitted, 3u);
    EXPECT_EQ(g.partner_count(1000), 1u);
    EXPECT_EQ(g.partner_count(2000), 1u);

    // Job 1's head becomes visible: gated on job 2's head (still WAIT).
    auto promoted = g.on_query_visible(1000);
    EXPECT_TRUE(promoted.empty());
    EXPECT_EQ(g.state(1000), QueryState::kReady);
    EXPECT_TRUE(g.has_ready());

    // Job 2's head becomes visible: both promote together (co-scheduled).
    promoted = g.on_query_visible(2000);
    ASSERT_EQ(promoted.size(), 2u);
    EXPECT_EQ(g.state(1000), QueryState::kQueue);
    EXPECT_EQ(g.state(2000), QueryState::kQueue);
    EXPECT_FALSE(g.has_ready());
    EXPECT_TRUE(g.check_invariants());
}

TEST(PrecedenceGraph, DonePartnerSatisfiesGate) {
    PrecedenceGraph g(true);
    const workload::Job a = chain(1, {10, 20});
    const workload::Job b = chain(2, {10, 20});
    g.add_job(a);
    g.add_job(b);
    g.on_query_visible(1000);
    g.on_query_visible(2000);  // both queue
    g.on_query_done(2000);     // job 2's head finishes first
    // Job 2's second query promotes alone if job 1's q2 is not yet ready...
    auto promoted = g.on_query_visible(2001);
    EXPECT_TRUE(promoted.empty());  // gated on job 1's q1 (WAIT)
    g.on_query_done(1000);
    promoted = g.on_query_visible(1001);
    ASSERT_EQ(promoted.size(), 2u);  // both seconds co-scheduled
}

TEST(PrecedenceGraph, OffsetAlignmentGatesMatchingRegions) {
    PrecedenceGraph g(true);
    const workload::Job a = chain(1, {1, 2, 3, 4});
    const workload::Job b = chain(2, {3, 4, 5});
    g.add_job(a);
    g.add_job(b);
    // Alignment (Fig. 2): a[2]~b[0], a[3]~b[1].
    EXPECT_EQ(g.stats().edges_admitted, 2u);
    EXPECT_EQ(g.partner_count(1002), 1u);
    EXPECT_EQ(g.partner_count(1003), 1u);
    EXPECT_EQ(g.partner_count(1000), 0u);
}

TEST(PrecedenceGraph, NoGatingWhenDisabled) {
    PrecedenceGraph g(false);
    const workload::Job a = chain(1, {10, 20});
    const workload::Job b = chain(2, {10, 20});
    g.add_job(a);
    g.add_job(b);
    EXPECT_EQ(g.stats().edges_admitted, 0u);
    EXPECT_EQ(g.stats().alignments_run, 0u);
    const auto promoted = g.on_query_visible(1000);
    ASSERT_EQ(promoted.size(), 1u);  // no gate, promotes alone
}

TEST(PrecedenceGraph, NoEdgesToCompletedQueries) {
    PrecedenceGraph g(true);
    const workload::Job a = chain(1, {10, 20, 30});
    g.add_job(a);
    g.on_query_visible(1000);
    g.on_query_done(1000);  // a's first query already finished
    const workload::Job b = chain(2, {10, 20, 30});
    g.add_job(b);
    // b's head cannot gate with a's pruned head; only 20/30 align.
    EXPECT_EQ(g.partner_count(2000), 0u);
    EXPECT_EQ(g.partner_count(2001), 1u);
    EXPECT_EQ(g.partner_count(2002), 1u);
}

TEST(PrecedenceGraph, TransitiveInheritanceBuildsGroups) {
    PrecedenceGraph g(true);
    const workload::Job a = chain(1, {10, 20});
    const workload::Job b = chain(2, {10, 20});
    const workload::Job c = chain(3, {10, 20});
    g.add_job(a);
    g.add_job(b);
    g.add_job(c);
    // Job 3's head inherits job 2's edge to job 1: a triangle.
    EXPECT_EQ(g.partner_count(3000), 2u);
    EXPECT_EQ(g.partner_count(1000), 2u);
    EXPECT_EQ(g.partner_count(2000), 2u);
    // The whole group promotes only when all three are visible.
    EXPECT_TRUE(g.on_query_visible(1000).empty());
    EXPECT_TRUE(g.on_query_visible(2000).empty());
    EXPECT_EQ(g.on_query_visible(3000).size(), 3u);
    EXPECT_TRUE(g.check_invariants());
}

TEST(PrecedenceGraph, OneEdgePerQueryPerJobPair) {
    PrecedenceGraph g(true);
    // Both queries of job 2 share data with job 1's single query region.
    const workload::Job a = chain(1, {10, 10});
    const workload::Job b = chain(2, {10, 10});
    g.add_job(a);
    g.add_job(b);
    // Each query has at most one edge to the other job.
    EXPECT_LE(g.partner_count(2000), 2u);
    EXPECT_TRUE(g.check_invariants());
}

TEST(PrecedenceGraph, ForcePromoteReleasesOldestReady) {
    PrecedenceGraph g(true);
    const workload::Job a = chain(1, {10, 20});
    const workload::Job b = chain(2, {10, 20});
    g.add_job(a);
    g.add_job(b);
    g.on_query_visible(1000);  // READY, gated forever if job 2 never starts
    ASSERT_TRUE(g.has_ready());
    const auto released = g.force_promote_oldest_ready();
    ASSERT_EQ(released.size(), 1u);
    EXPECT_EQ(released[0], 1000u);
    EXPECT_EQ(g.state(1000), QueryState::kQueue);
    EXPECT_EQ(g.stats().forced_promotions, 1u);
}

TEST(PrecedenceGraph, ForcePromoteNoReadyReturnsEmpty) {
    PrecedenceGraph g(true);
    const workload::Job a = chain(1, {10});
    g.add_job(a);
    EXPECT_TRUE(g.force_promote_oldest_ready().empty());
}

TEST(PrecedenceGraph, GatingNumbersCountEdgedPrefix) {
    PrecedenceGraph g(true);
    const workload::Job a = chain(1, {10, 99, 20, 30});
    const workload::Job b = chain(2, {10, 20, 30});
    g.add_job(a);
    g.add_job(b);
    // a: edges at seq 0 (R10), 2 (R20), 3 (R30); seq 1 (R99) unshared.
    EXPECT_EQ(g.gating_number(1000), 1);
    EXPECT_EQ(g.gating_number(1001), 1);
    EXPECT_EQ(g.gating_number(1002), 2);
    EXPECT_EQ(g.gating_number(1003), 3);
}

TEST(PrecedenceGraph, RejectsDeadlockCycleAcrossThreeJobs) {
    // Construct the rock-paper-scissors hazard: j1=[A,B], j2=[B,C], j3=[C,A].
    // Pairwise alignments: j1.B~j2.B, j2.C~j3.C, j3.A~j1.A. Admitting all
    // three would create the wait cycle j1.A<j1.B~j2.B<j2.C~j3.C... admission
    // must reject at least the closing edge; the graph must stay acyclic.
    PrecedenceGraph g(true);
    const workload::Job j1 = chain(1, {100, 200});
    const workload::Job j2 = chain(2, {200, 300});
    const workload::Job j3 = chain(3, {300, 100});
    g.add_job(j1);
    g.add_job(j2);
    g.add_job(j3);
    EXPECT_TRUE(g.check_invariants());
    // Drive everything to completion to prove no deadlock at runtime.
    std::vector<workload::QueryId> queue;
    const auto visible = [&](workload::QueryId id) {
        for (const auto q : g.on_query_visible(id)) queue.push_back(q);
    };
    visible(1000);
    visible(2000);
    visible(3000);
    std::size_t executed = 0;
    std::size_t guard = 0;
    while (executed < 6 && guard++ < 100) {
        if (queue.empty()) {
            const auto released = g.force_promote_oldest_ready();
            ASSERT_FALSE(released.empty()) << "graph stalled";
            for (const auto q : released) queue.push_back(q);
        }
        const workload::QueryId id = queue.back();
        queue.pop_back();
        g.on_query_done(id);
        ++executed;
        // Successor becomes visible.
        const workload::QueryId succ = id + 1;
        if (succ % 1000 == 1) visible(succ);
    }
    EXPECT_EQ(executed, 6u);
    // The admission rules should have prevented the cycle outright, so no
    // forced promotions were necessary.
    EXPECT_EQ(g.stats().forced_promotions, 0u);
}

TEST(PrecedenceGraph, RandomCampaignDrainsWithoutForcedPromotions) {
    // Property test: many random overlapping chains must always drain through
    // the normal promotion path (gating never deadlocks the schedule).
    util::Rng rng(1234);
    for (int trial = 0; trial < 10; ++trial) {
        PrecedenceGraph g(true);
        std::vector<workload::Job> jobs;
        const std::size_t n = 4 + rng.uniform_u64(4);
        for (std::size_t j = 0; j < n; ++j) {
            std::vector<std::uint64_t> regions;
            const std::size_t m = 2 + rng.uniform_u64(5);
            for (std::size_t i = 0; i < m; ++i) regions.push_back(rng.uniform_u64(6));
            workload::Job job;
            job.id = j + 1;
            job.type = workload::JobType::kOrdered;
            for (std::size_t i = 0; i < regions.size(); ++i)
                job.queries.push_back(query_on(job.id, static_cast<std::uint32_t>(i), 0,
                                               {regions[i]}));
            jobs.push_back(job);
        }
        for (const auto& job : jobs) g.add_job(job);
        ASSERT_TRUE(g.check_invariants());

        std::vector<workload::QueryId> runnable;
        for (const auto& job : jobs)
            for (const auto id : g.on_query_visible(job.queries.front().id))
                runnable.push_back(id);
        std::size_t total = 0;
        for (const auto& job : jobs) total += job.queries.size();
        std::size_t executed = 0;
        std::size_t guard = 0;
        while (executed < total && guard++ < 1000) {
            ASSERT_FALSE(runnable.empty()) << "stall in trial " << trial;
            const workload::QueryId id = runnable.back();
            runnable.pop_back();
            g.on_query_done(id);
            ++executed;
            const workload::JobId job_id = id / 1000;
            const std::uint32_t seq = static_cast<std::uint32_t>(id % 1000);
            if (seq + 1 < jobs[job_id - 1].queries.size())
                for (const auto next : g.on_query_visible(id + 1)) runnable.push_back(next);
        }
        ASSERT_EQ(executed, total);
        ASSERT_EQ(g.stats().forced_promotions, 0u);
    }
}

}  // namespace
}  // namespace jaws::sched
