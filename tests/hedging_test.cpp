// Hedged replica reads, straggler cancellation, deadline budgets and the
// retry circuit breaker (tail-latency robustness).
//
// The scenarios run a heavy-tailed disk (DiskSpec::heavy_tail) so a known
// fraction of demand reads straggle; hedging must cut the response-time tail
// (p99) relative to the same seeds unhedged, stay bit-deterministic, respect
// its budgets, and — when disabled — leave the engine's behaviour untouched.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "util/stats.h"
#include "workload/job.h"

namespace jaws {
namespace {

core::EngineConfig tail_config() {
    core::EngineConfig c;
    c.grid.voxels_per_side = 64;
    c.grid.atom_side = 32;  // 2 atoms per side -> 8 atoms per step
    c.grid.ghost = 2;
    c.grid.timesteps = 2;
    c.field.modes = 4;
    c.cache.capacity_atoms = 2;
    c.io_depth = 2;  // a hedge needs a replica channel to run on
    // One read in five draws a large straggler multiplier: the tail, not the
    // mean, dominates p99.
    c.disk.heavy_tail.rate = 0.2;
    c.disk.heavy_tail.lognormal_mu = 3.0;
    c.disk.heavy_tail.lognormal_sigma = 0.5;
    c.disk.heavy_tail.seed = 99;
    return c;
}

workload::Job single_query_job(workload::QueryId qid, std::uint64_t morton,
                               std::uint32_t step, double arrival_ms) {
    workload::Job job;
    job.id = qid;
    job.type = workload::JobType::kBatched;
    job.arrival = util::SimTime::from_millis(arrival_ms);
    workload::Query q;
    q.id = qid;
    q.job = job.id;
    q.timestep = step;
    q.footprint.push_back(workload::AtomRequest{{step, morton}, 5});
    job.queries.push_back(q);
    return job;
}

/// Queries spread far enough apart that each runs as its own batch (its own
/// demand read), so per-query response time is dominated by that one read.
workload::Workload spread_workload(std::size_t queries) {
    workload::Workload w;
    for (workload::QueryId i = 1; i <= queries; ++i)
        w.jobs.push_back(single_query_job(i, (i * 3) % 8, i % 2,
                                          static_cast<double>(i) * 400.0));
    return w;
}

core::RunReport run_with(const core::EngineConfig& config, std::size_t queries = 60) {
    core::Engine engine(config);
    return engine.run(spread_workload(queries));
}

// ---------------------------------------------------------------------------
// The headline property: hedging cuts the tail at equal seeds.
// ---------------------------------------------------------------------------

TEST(Hedging, CutsP99AgainstHeavyTailAtEqualSeeds) {
    core::EngineConfig off = tail_config();
    core::EngineConfig on = tail_config();
    on.hedge.enabled = true;  // adaptive EWMA trigger (trigger_ms = 0)
    const core::RunReport r_off = run_with(off);
    const core::RunReport r_on = run_with(on);
    ASSERT_EQ(r_off.queries, 60u);
    ASSERT_EQ(r_on.queries, 60u);
    ASSERT_GT(r_off.disk.slow_draws, 0u);  // the tail scenario actually fired
    EXPECT_GT(r_on.hedges_issued, 0u);
    EXPECT_GT(r_on.hedges_won, 0u);
    // The whole point: duplicated reads rescue stragglers at the tail.
    EXPECT_LT(r_on.p99_response_ms, r_off.p99_response_ms);
    // The price is wasted work on cancelled losers, and it is accounted.
    EXPECT_GT(r_on.cancellations, 0u);
    EXPECT_GT(r_on.wasted_service.micros, 0);
    EXPECT_EQ(r_off.hedges_issued, 0u);
    EXPECT_EQ(r_off.cancellations, 0u);
    EXPECT_EQ(r_off.wasted_service.micros, 0);
}

TEST(Hedging, FixedTriggerAlsoCutsTheTail) {
    core::EngineConfig off = tail_config();
    core::EngineConfig on = tail_config();
    on.hedge.enabled = true;
    on.hedge.trigger_ms = 60.0;
    const core::RunReport r_off = run_with(off);
    const core::RunReport r_on = run_with(on);
    EXPECT_GT(r_on.hedges_won, 0u);
    EXPECT_LT(r_on.p99_response_ms, r_off.p99_response_ms);
}

// ---------------------------------------------------------------------------
// Determinism and accounting invariants.
// ---------------------------------------------------------------------------

TEST(Hedging, RepeatRunsAreBitIdentical) {
    core::EngineConfig config = tail_config();
    config.hedge.enabled = true;
    const core::RunReport a = run_with(config);
    const core::RunReport b = run_with(config);
    EXPECT_EQ(a.makespan.micros, b.makespan.micros);
    EXPECT_EQ(a.hedges_issued, b.hedges_issued);
    EXPECT_EQ(a.hedges_won, b.hedges_won);
    EXPECT_EQ(a.hedges_lost, b.hedges_lost);
    EXPECT_EQ(a.cancellations, b.cancellations);
    EXPECT_EQ(a.wasted_service.micros, b.wasted_service.micros);
    EXPECT_EQ(a.disk.slow_draws, b.disk.slow_draws);
    EXPECT_EQ(a.disk.service_time.micros, b.disk.service_time.micros);
    EXPECT_DOUBLE_EQ(a.p99_response_ms, b.p99_response_ms);
    EXPECT_DOUBLE_EQ(a.p999_response_ms, b.p999_response_ms);
}

TEST(Hedging, EveryIssuedHedgeIsWonOrLost) {
    core::EngineConfig config = tail_config();
    config.hedge.enabled = true;
    const core::RunReport r = run_with(config);
    ASSERT_GT(r.hedges_issued, 0u);
    EXPECT_EQ(r.hedges_won + r.hedges_lost, r.hedges_issued);
    // p999 sits at or above p99 by construction.
    EXPECT_GE(r.p999_response_ms, r.p99_response_ms);
}

TEST(Hedging, DisabledSpecLeavesCountersAndTraceUntouched) {
    // Hedging off must schedule nothing: same config twice is bit-identical
    // and every hedge counter stays zero (the serial golden-equivalence suite
    // pins the stronger cross-version guarantee).
    core::EngineConfig config = tail_config();
    const core::RunReport a = run_with(config);
    const core::RunReport b = run_with(config);
    EXPECT_EQ(a.makespan.micros, b.makespan.micros);
    EXPECT_EQ(a.hedges_issued, 0u);
    EXPECT_EQ(a.hedges_won, 0u);
    EXPECT_EQ(a.hedges_lost, 0u);
    EXPECT_EQ(a.cancellations, 0u);
    EXPECT_EQ(a.wasted_service.micros, 0);
    EXPECT_EQ(a.peak_hedges_outstanding, 0u);
}

// ---------------------------------------------------------------------------
// Budgets and caps.
// ---------------------------------------------------------------------------

TEST(Hedging, PerQueryBudgetBoundsHedgedReads) {
    core::EngineConfig config = tail_config();
    config.hedge.enabled = true;
    config.hedge.budget_per_query = 1;
    core::Engine engine(config);
    const core::RunReport r = engine.run(spread_workload(60));
    ASSERT_GT(r.hedges_issued, 0u);
    for (const core::QueryOutcome& o : engine.outcomes())
        EXPECT_LE(o.hedged_reads, 1u);
}

TEST(Hedging, OutstandingCapBoundsThePeakWatermark) {
    core::EngineConfig config = tail_config();
    config.hedge.enabled = true;
    config.hedge.max_outstanding = 1;
    const core::RunReport r = run_with(config);
    ASSERT_GT(r.hedges_issued, 0u);
    EXPECT_LE(r.peak_hedges_outstanding, 1u);
}

// ---------------------------------------------------------------------------
// Deadline budgets: graceful degradation instead of unbounded retries.
// ---------------------------------------------------------------------------

TEST(DeadlineBudget, StuckReadsDegradeInsteadOfRetryingPastBudget) {
    // Every read hangs for 2 s (stuck command) and then fails; the budget is
    // 1 s. At the first retry boundary every owner is already over budget, so
    // queries complete degraded with zero retries — never past the budget.
    core::EngineConfig config = tail_config();
    config.disk.heavy_tail = storage::HeavyTailSpec{};  // isolate the faults
    config.faults.transient_error_rate = 1.0;
    config.faults.stuck_read_rate = 1.0;
    config.faults.stuck_read_ms = 2000.0;
    config.deadline_budget_ms = 1000.0;
    const core::RunReport r = run_with(config, 12);
    ASSERT_EQ(r.queries, 12u);
    EXPECT_EQ(r.read_retries, 0u);
    EXPECT_EQ(r.deadline_misses, 12u);
    EXPECT_EQ(r.degraded_queries, 12u);
    EXPECT_GT(r.faults.stuck_reads, 0u);
    EXPECT_GT(r.faults.stuck_delay.micros, 0);
}

TEST(DeadlineBudget, GenerousBudgetChangesNothing) {
    core::EngineConfig faulty = tail_config();
    faulty.disk.heavy_tail = storage::HeavyTailSpec{};
    faulty.faults.transient_error_rate = 0.4;
    core::EngineConfig budgeted = faulty;
    budgeted.deadline_budget_ms = 1e9;  // never binds
    const core::RunReport a = run_with(faulty, 20);
    const core::RunReport b = run_with(budgeted, 20);
    ASSERT_GT(a.read_retries, 0u);
    EXPECT_EQ(a.makespan.micros, b.makespan.micros);
    EXPECT_EQ(a.read_retries, b.read_retries);
    EXPECT_EQ(b.deadline_misses, 0u);
}

TEST(DeadlineBudget, MissesAreFlaggedOnTheOutcome) {
    core::EngineConfig config = tail_config();
    config.disk.heavy_tail = storage::HeavyTailSpec{};
    config.faults.transient_error_rate = 1.0;
    config.faults.stuck_read_rate = 1.0;
    config.faults.stuck_read_ms = 2000.0;
    config.deadline_budget_ms = 1000.0;
    core::Engine engine(config);
    const core::RunReport r = engine.run(spread_workload(6));
    ASSERT_EQ(r.queries, 6u);
    for (const core::QueryOutcome& o : engine.outcomes()) {
        EXPECT_TRUE(o.deadline_missed);
        EXPECT_TRUE(o.degraded());
    }
}

// ---------------------------------------------------------------------------
// Retry circuit breaker.
// ---------------------------------------------------------------------------

TEST(CircuitBreaker, TotalRetryBudgetFailsFastAfterwards) {
    core::EngineConfig config = tail_config();
    config.disk.heavy_tail = storage::HeavyTailSpec{};
    config.faults.transient_error_rate = 1.0;  // every attempt fails
    config.retry.total_retry_budget = 3;
    const core::RunReport r = run_with(config, 12);
    ASSERT_EQ(r.queries, 12u);
    EXPECT_LE(r.read_retries, 3u);
    EXPECT_GT(r.retries_suppressed, 0u);
    EXPECT_EQ(r.degraded_queries, 12u);
}

TEST(CircuitBreaker, ZeroBudgetMeansUnlimitedRetries) {
    core::EngineConfig config = tail_config();
    config.disk.heavy_tail = storage::HeavyTailSpec{};
    config.faults.transient_error_rate = 1.0;
    config.retry.total_retry_budget = 0;  // off
    const core::RunReport r = run_with(config, 12);
    // Every query walks the full backoff ladder: (max_attempts - 1) retries
    // per demand read.
    EXPECT_EQ(r.retries_suppressed, 0u);
    EXPECT_GT(r.read_retries, 3u);
}

// ---------------------------------------------------------------------------
// Hedging composed with the other robustness machinery.
// ---------------------------------------------------------------------------

TEST(Hedging, SurvivesTransientFaultsAndStuckReads) {
    core::EngineConfig config = tail_config();
    config.hedge.enabled = true;
    config.faults.transient_error_rate = 0.3;
    config.faults.stuck_read_rate = 0.1;
    config.faults.stuck_read_ms = 500.0;
    const core::RunReport r = run_with(config);
    ASSERT_EQ(r.queries, 60u);
    EXPECT_EQ(r.hedges_won + r.hedges_lost, r.hedges_issued);
    // Repeat for bit-identical confirmation under the full fault mix.
    const core::RunReport r2 = run_with(config);
    EXPECT_EQ(r.makespan.micros, r2.makespan.micros);
    EXPECT_EQ(r.hedges_issued, r2.hedges_issued);
    EXPECT_EQ(r.read_retries, r2.read_retries);
    EXPECT_EQ(r.faults.stuck_reads, r2.faults.stuck_reads);
}

}  // namespace
}  // namespace jaws
