// Tests for sub-query execution (storage/database_node.h).
#include <gtest/gtest.h>

#include <cmath>

#include "storage/atom_store.h"
#include "storage/database_node.h"
#include "util/morton.h"

namespace jaws::storage {
namespace {

field::GridSpec small_grid() {
    field::GridSpec g;
    g.voxels_per_side = 64;
    g.atom_side = 16;
    g.ghost = 2;
    g.timesteps = 2;
    return g;
}

TEST(DatabaseNode, ChargesPerPosition) {
    DatabaseNode node(small_grid(), CostModel{.t_m_us = 40.0});
    SubQueryExec work;
    work.position_count = 100;
    const ExecOutcome out = node.execute(work, nullptr);
    EXPECT_EQ(out.compute_cost.micros, 4000);
    EXPECT_TRUE(out.samples.empty());
}

TEST(DatabaseNode, ExplicitPositionsOverrideCount) {
    DatabaseNode node(small_grid(), CostModel{.t_m_us = 10.0});
    SubQueryExec work;
    work.position_count = 999;  // ignored when explicit positions exist
    work.positions = {{0.1, 0.1, 0.1}, {0.2, 0.2, 0.2}};
    const ExecOutcome out = node.execute(work, nullptr);
    EXPECT_EQ(out.compute_cost.micros, 20);
}

TEST(DatabaseNode, ZeroPositionsZeroCost) {
    DatabaseNode node(small_grid(), CostModel{});
    const ExecOutcome out = node.execute(SubQueryExec{}, nullptr);
    EXPECT_EQ(out.compute_cost.micros, 0);
}

class DatabaseNodeWithData : public ::testing::Test {
  protected:
    DatabaseNodeWithData()
        : store_(AtomStoreSpec{small_grid(),
                               field::FieldSpec{.seed = 70, .modes = 6, .max_wavenumber = 3.0},
                               DiskSpec{},
                               /*io_channels=*/1,
                               /*materialize_data=*/true,
                               FaultSpec{}}),
          node_(small_grid(), CostModel{}) {}

    AtomStore store_;
    DatabaseNode node_;
};

TEST_F(DatabaseNodeWithData, InterpolatesVelocityAtPositions) {
    const util::Coord3 atom_coord{1, 1, 1};
    const AtomId atom{0, util::morton_encode(atom_coord)};
    const auto data = store_.read(atom).data;

    SubQueryExec work;
    work.atom = atom;
    work.order = field::InterpOrder::kLag4;
    work.kind = ComputeKind::kVelocity;
    const double extent = 0.25;  // atoms per side = 4
    work.positions = {{1.5 * extent, 1.5 * extent, 1.5 * extent},
                      {1.2 * extent, 1.7 * extent, 1.4 * extent}};
    const ExecOutcome out = node_.execute(work, data.get());
    ASSERT_EQ(out.samples.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        const field::FlowSample truth = store_.field().sample(work.positions[i], 0.0);
        EXPECT_NEAR(out.samples[i].velocity.x, truth.velocity.x, 5e-3);
        EXPECT_NEAR(out.samples[i].velocity.y, truth.velocity.y, 5e-3);
        EXPECT_NEAR(out.samples[i].pressure, truth.pressure, 5e-3);
    }
}

TEST_F(DatabaseNodeWithData, FlowStatsCollapsesToMagnitude) {
    const util::Coord3 atom_coord{2, 2, 2};
    const AtomId atom{1, util::morton_encode(atom_coord)};
    const auto data = store_.read(atom).data;

    SubQueryExec work;
    work.atom = atom;
    work.kind = ComputeKind::kFlowStats;
    const double extent = 0.25;
    work.positions = {{2.5 * extent, 2.5 * extent, 2.5 * extent}};
    const ExecOutcome out = node_.execute(work, data.get());
    ASSERT_EQ(out.samples.size(), 1u);
    const field::Vec3 truth =
        store_.field().velocity(work.positions[0], small_grid().sim_time(1));
    EXPECT_NEAR(out.samples[0].velocity.x, std::sqrt(truth.norm2()), 1e-2);
    EXPECT_DOUBLE_EQ(out.samples[0].velocity.y, 0.0);
}

TEST_F(DatabaseNodeWithData, NoSamplesWithoutExplicitPositions) {
    const AtomId atom{0, util::morton_encode(1, 0, 0)};
    const auto data = store_.read(atom).data;
    SubQueryExec work;
    work.atom = atom;
    work.position_count = 50;
    const ExecOutcome out = node_.execute(work, data.get());
    EXPECT_TRUE(out.samples.empty());
    EXPECT_GT(out.compute_cost.micros, 0);
}

}  // namespace
}  // namespace jaws::storage
