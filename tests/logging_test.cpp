// Tests for the leveled logger (util/logging.h).
#include <gtest/gtest.h>

#include "util/logging.h"

namespace jaws::util {
namespace {

class LoggingTest : public ::testing::Test {
  protected:
    void TearDown() override { set_log_level(LogLevel::kWarn); }
};

TEST_F(LoggingTest, DefaultLevelIsWarn) { EXPECT_EQ(log_level(), LogLevel::kWarn); }

TEST_F(LoggingTest, SetAndGetRoundTrip) {
    set_log_level(LogLevel::kDebug);
    EXPECT_EQ(log_level(), LogLevel::kDebug);
    set_log_level(LogLevel::kOff);
    EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LoggingTest, LevelsAreOrdered) {
    EXPECT_LT(LogLevel::kDebug, LogLevel::kInfo);
    EXPECT_LT(LogLevel::kInfo, LogLevel::kWarn);
    EXPECT_LT(LogLevel::kWarn, LogLevel::kError);
    EXPECT_LT(LogLevel::kError, LogLevel::kOff);
}

TEST_F(LoggingTest, EmitBelowThresholdDoesNotCrash) {
    set_log_level(LogLevel::kError);
    JAWS_LOG_DEBUG("test", "dropped %d", 1);
    JAWS_LOG_INFO("test", "dropped %s", "too");
    JAWS_LOG_WARN("test", "dropped");
}

TEST_F(LoggingTest, EmitAtThresholdDoesNotCrash) {
    set_log_level(LogLevel::kOff);  // silence even errors for the test run
    JAWS_LOG_ERROR("test", "formatted %d %s %f", 42, "str", 3.14);
}

TEST_F(LoggingTest, LongMessagesTruncateSafely) {
    set_log_level(LogLevel::kOff);
    std::string big(5000, 'x');
    JAWS_LOG_ERROR("test", "%s", big.c_str());
}

}  // namespace
}  // namespace jaws::util
