// Tests for the Needleman-Wunsch data-sharing alignment (sched/alignment.h).
#include <gtest/gtest.h>

#include "sched/alignment.h"
#include "util/morton.h"
#include "util/rng.h"

namespace jaws::sched {
namespace {

workload::Query query_on(std::uint32_t step, std::initializer_list<std::uint64_t> mortons) {
    workload::Query q;
    q.timestep = step;
    for (const std::uint64_t m : mortons)
        q.footprint.push_back(workload::AtomRequest{{step, m}, 10});
    std::sort(q.footprint.begin(), q.footprint.end(),
              [](const workload::AtomRequest& a, const workload::AtomRequest& b) {
                  return a.atom.morton < b.atom.morton;
              });
    return q;
}

workload::Job job_of(workload::JobId id, std::vector<workload::Query> queries) {
    workload::Job j;
    j.id = id;
    j.type = workload::JobType::kOrdered;
    for (std::size_t i = 0; i < queries.size(); ++i) {
        queries[i].id = id * 1000 + i;
        queries[i].seq_in_job = static_cast<std::uint32_t>(i);
        queries[i].job = id;
    }
    j.queries = std::move(queries);
    return j;
}

TEST(SharePredicate, RequiresSameTimestep) {
    const auto a = query_on(1, {5});
    const auto b = query_on(2, {5});
    EXPECT_FALSE(queries_share_data(a, b));
}

TEST(SharePredicate, DetectsIntersection) {
    const auto a = query_on(1, {3, 5, 9});
    const auto b = query_on(1, {1, 5, 12});
    EXPECT_TRUE(queries_share_data(a, b));
}

TEST(SharePredicate, DisjointFootprints) {
    const auto a = query_on(1, {1, 2, 3});
    const auto b = query_on(1, {4, 5, 6});
    EXPECT_FALSE(queries_share_data(a, b));
}

TEST(AlignJobs, EmptyJobsScoreZero) {
    const auto a = job_of(1, {});
    const auto b = job_of(2, {query_on(0, {1})});
    const Alignment al = align_jobs(a, b);
    EXPECT_EQ(al.score, 0u);
    EXPECT_TRUE(al.pairs.empty());
}

TEST(AlignJobs, IdenticalChainsAlignFully) {
    std::vector<workload::Query> qs;
    for (std::uint64_t i = 0; i < 5; ++i) qs.push_back(query_on(0, {i * 10}));
    const auto a = job_of(1, qs);
    const auto b = job_of(2, qs);
    const Alignment al = align_jobs(a, b);
    EXPECT_EQ(al.score, 5u);
    for (std::uint32_t i = 0; i < 5; ++i) {
        EXPECT_EQ(al.pairs[i].a_seq, i);
        EXPECT_EQ(al.pairs[i].b_seq, i);
    }
}

TEST(AlignJobs, OffsetSubsequenceFound) {
    // Job a visits R1 R2 R3 R4; job b visits R3 R4 R5 — paper Fig. 2 shape.
    const auto a = job_of(1, {query_on(0, {1}), query_on(0, {2}), query_on(0, {3}),
                              query_on(0, {4})});
    const auto b = job_of(2, {query_on(0, {3}), query_on(0, {4}), query_on(0, {5})});
    const Alignment al = align_jobs(a, b);
    EXPECT_EQ(al.score, 2u);
    ASSERT_EQ(al.pairs.size(), 2u);
    EXPECT_EQ(al.pairs[0].a_seq, 2u);  // a's R3
    EXPECT_EQ(al.pairs[0].b_seq, 0u);  // b's R3
    EXPECT_EQ(al.pairs[1].a_seq, 3u);
    EXPECT_EQ(al.pairs[1].b_seq, 1u);
}

TEST(AlignJobs, PairsAreStrictlyMonotone) {
    util::Rng rng(90);
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<workload::Query> qa, qb;
        for (int i = 0; i < 8; ++i) {
            qa.push_back(query_on(0, {rng.uniform_u64(6)}));
            qb.push_back(query_on(0, {rng.uniform_u64(6)}));
        }
        const Alignment al = align_jobs(job_of(1, qa), job_of(2, qb));
        for (std::size_t i = 1; i < al.pairs.size(); ++i) {
            ASSERT_LT(al.pairs[i - 1].a_seq, al.pairs[i].a_seq);
            ASSERT_LT(al.pairs[i - 1].b_seq, al.pairs[i].b_seq);
        }
        // Every aligned pair actually shares data.
        for (const AlignedPair& p : al.pairs)
            ASSERT_TRUE(queries_share_data(qa[p.a_seq], qb[p.b_seq]));
    }
}

class AlignmentOptimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AlignmentOptimality, MatchesBruteForce) {
    util::Rng rng(GetParam());
    for (int trial = 0; trial < 25; ++trial) {
        std::vector<workload::Query> qa, qb;
        const auto na = 2 + rng.uniform_u64(6);
        const auto nb = 2 + rng.uniform_u64(6);
        for (std::uint64_t i = 0; i < na; ++i)
            qa.push_back(query_on(0, {rng.uniform_u64(5), rng.uniform_u64(5)}));
        for (std::uint64_t i = 0; i < nb; ++i)
            qb.push_back(query_on(0, {rng.uniform_u64(5), rng.uniform_u64(5)}));
        const auto ja = job_of(1, qa);
        const auto jb = job_of(2, qb);
        ASSERT_EQ(align_jobs(ja, jb).score, max_sharing_alignment_bruteforce(ja, jb));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlignmentOptimality, ::testing::Values(11, 22, 33, 44));

TEST(AlignJobs, CrossTimestepChainsAlignPerStep) {
    // Two multi-step jobs over overlapping step ranges: only queries on the
    // same step can share.
    std::vector<workload::Query> qa, qb;
    for (std::uint32_t s = 0; s < 4; ++s) qa.push_back(query_on(s, {7}));
    for (std::uint32_t s = 2; s < 6; ++s) qb.push_back(query_on(s, {7}));
    const Alignment al = align_jobs(job_of(1, qa), job_of(2, qb));
    EXPECT_EQ(al.score, 2u);  // steps 2 and 3
}

}  // namespace
}  // namespace jaws::sched
