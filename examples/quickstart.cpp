// Quickstart: generate a Turbulence-like workload, run it through three
// schedulers (NoShare, LifeRaft, JAWS), and compare throughput and response
// time — the smallest end-to-end tour of the library.
//
//   $ ./quickstart [jobs] [seed]
//
// The dataset and costs are scaled-down defaults so the whole demo finishes
// in a couple of seconds; see bench/ for the paper-scale reproductions.
#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "workload/generator.h"

namespace {

jaws::core::EngineConfig small_config() {
    // Paper-scale dataset geometry (1024^3 grid, 4096 atoms per step, 31
    // steps); the data is lazy, so this costs nothing until atoms are read.
    return jaws::core::EngineConfig{};
}

}  // namespace

int main(int argc, char** argv) {
    const std::size_t jobs = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 120;
    const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

    using namespace jaws;

    // 1. A synthetic turbulence dataset (lazy — nothing is materialised yet).
    core::EngineConfig base = small_config();
    const field::SyntheticField field(base.field);

    // 2. A calibrated workload: bursty arrivals, ordered particle-tracking
    //    jobs with real flow-driven drift, batched statistics jobs.
    workload::WorkloadSpec wspec;
    wspec.jobs = jobs;
    wspec.seed = seed;
    const workload::Workload workload = workload::generate_workload(wspec, base.grid, field);
    std::printf("workload: %zu jobs, %zu queries\n", workload.jobs.size(),
                workload.total_queries());

    // 3. Run the same workload through the three schedulers of the paper.
    const auto run_with = [&](core::SchedulerSpec sched) {
        core::EngineConfig config = base;
        config.scheduler = sched;
        core::Engine engine(config);
        const core::RunReport report = engine.run(workload);
        std::printf("  %s\n", report.summary().c_str());
        return report;
    };

    std::puts("schedulers:");
    core::SchedulerSpec noshare;
    noshare.kind = core::SchedulerKind::kNoShare;
    const auto r_noshare = run_with(noshare);

    core::SchedulerSpec liferaft;
    liferaft.kind = core::SchedulerKind::kLifeRaft;
    liferaft.liferaft_alpha = 0.0;
    const auto r_liferaft = run_with(liferaft);

    core::SchedulerSpec jaws2;
    jaws2.kind = core::SchedulerKind::kJaws;
    const auto r_jaws = run_with(jaws2);

    std::printf("\nJAWS speedup over NoShare: %.2fx (LifeRaft: %.2fx)\n",
                r_jaws.throughput_qps / r_noshare.throughput_qps,
                r_liferaft.throughput_qps / r_noshare.throughput_qps);
    std::printf("gating: %zu edges admitted, %zu forced promotions\n",
                r_jaws.gating.edges_admitted, r_jaws.gating.forced_promotions);
    return 0;
}
