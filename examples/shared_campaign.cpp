// Shared campaign — job-aware scheduling in action.
//
// Several users launch near-identical particle-tracking campaigns over the
// same region of interest, staggered in time (the pattern Sec. IV's Fig. 2
// motivates). The example runs the same campaign through JAWS with and
// without job-awareness and shows what gating buys: aligned execution,
// fewer atom reads, and faster completion — plus the gating-graph statistics
// (alignments, admitted/rejected edges).
//
//   $ ./shared_campaign [users] [chain_length]
#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
    using namespace jaws;
    const std::size_t users = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 12;
    const double chain = argc > 2 ? std::strtod(argv[2], nullptr) : 24.0;

    core::EngineConfig base;  // paper-scale dataset
    base.cache.capacity_atoms = 64;  // tight cache: regions don't fit, so
                                     // unaligned jobs re-read them from disk
    const field::SyntheticField field(base.field);

    // A campaign: every job is an ordered chain over the same hotspot,
    // arriving staggered so that un-aligned execution re-reads the region.
    workload::WorkloadSpec wspec;
    wspec.jobs = users * 4;
    wspec.seed = 99;
    wspec.frac_single_step = 1.0;
    wspec.frac_full_span = 0.0;
    wspec.frac_ordered_single_step = 1.0;
    wspec.ordered_chain_mu = std::log(chain);
    wspec.ordered_chain_sigma = 0.1;
    wspec.hotspots = 2;
    wspec.hotspot_prob = 1.0;
    wspec.region_radius_mu = -2.0;  // ~40-atom regions
    wspec.mean_burst_gap_s = 10.0;
    wspec.mean_intra_burst_gap_s = 90.0;
    const workload::Workload workload = workload::generate_workload(wspec, base.grid, field);
    std::printf("campaign: %zu jobs, %zu queries, ~%.0f-query ordered chains\n\n",
                workload.jobs.size(), workload.total_queries(), chain);

    const auto run = [&](bool job_aware) {
        core::EngineConfig config = base;
        config.scheduler.kind = core::SchedulerKind::kJaws;
        config.scheduler.jaws.job_aware = job_aware;
        core::Engine engine(config);
        return engine.run(workload);
    };

    const core::RunReport without = run(false);
    const core::RunReport with = run(true);

    std::printf("%-24s %14s %14s\n", "", "JAWS_1 (no job)", "JAWS_2 (gated)");
    std::printf("%-24s %14.3f %14.3f\n", "throughput (q/s busy)", without.busy_throughput_qps,
                with.busy_throughput_qps);
    std::printf("%-24s %14.1f %14.1f\n", "mean response (s)",
                without.mean_response_ms / 1000.0, with.mean_response_ms / 1000.0);
    std::printf("%-24s %14llu %14llu\n", "atom reads",
                static_cast<unsigned long long>(without.atom_reads),
                static_cast<unsigned long long>(with.atom_reads));
    std::printf("%-24s %14.1f %14.1f\n", "mean job span (min)",
                without.mean_job_span_ms / 60000.0, with.mean_job_span_ms / 60000.0);

    const auto& g = with.gating;
    std::printf("\ngating graph: %zu pairwise alignments, %zu edges admitted\n",
                g.alignments_run, g.edges_admitted);
    std::printf("   rejected: %zu crossing/duplicate, %zu would-deadlock, "
                "%zu gating-number flags\n",
                g.edges_rejected_crossing, g.edges_rejected_deadlock,
                g.edges_rejected_gating_number);
    std::printf("   forced promotions (anti-stall): %zu  (0 means gating never "
                "wedged the schedule)\n",
                g.forced_promotions);
    if (without.atom_reads > with.atom_reads) {
        std::printf("\njob-awareness eliminated %llu redundant atom reads (%.1f%%)\n",
                    static_cast<unsigned long long>(without.atom_reads - with.atom_reads),
                    100.0 * static_cast<double>(without.atom_reads - with.atom_reads) /
                        static_cast<double>(without.atom_reads));
    }
    return 0;
}
