// Particle tracking — the paper's canonical ordered experiment, end to end
// with real data.
//
// A cloud of particles is seeded in a ball and tracked through the synthetic
// turbulence: at each time step the example queries the database for
// interpolated velocities at the current particle positions (the only thing
// a real Turbulence client can do), advances the particles, and moves to the
// next step — so every query genuinely depends on the previous one's result.
// At the end it compares the database-driven trajectory against advection
// with the analytic field and reports the cloud's dispersion statistics.
//
//   $ ./particle_tracking [particles] [steps]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/direct_executor.h"
#include "util/stats.h"
#include "workload/particle_tracker.h"

namespace {

jaws::core::EngineConfig tracking_config() {
    jaws::core::EngineConfig config;
    config.grid.voxels_per_side = 256;  // keep materialised atoms small
    config.grid.atom_side = 32;
    config.grid.ghost = 4;              // room for order-8 kernels
    config.grid.timesteps = 16;
    config.field.modes = 10;
    config.field.max_wavenumber = 4.0;
    config.cache.capacity_atoms = 64;
    return config;
}

double torus_distance(const jaws::field::Vec3& a, const jaws::field::Vec3& b) {
    const auto d1 = [](double x, double y) {
        const double d = std::fabs(x - y);
        return std::min(d, 1.0 - d);
    };
    const double dx = d1(a.x, b.x), dy = d1(a.y, b.y), dz = d1(a.z, b.z);
    return std::sqrt(dx * dx + dy * dy + dz * dz);
}

}  // namespace

int main(int argc, char** argv) {
    using namespace jaws;
    const std::size_t particles = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 512;
    const std::uint32_t steps = argc > 2 ? static_cast<std::uint32_t>(
                                               std::strtoul(argv[2], nullptr, 10))
                                         : 12;

    const core::EngineConfig config = tracking_config();
    core::DirectExecutor db(config);

    workload::ParticleTrackingSpec spec;
    spec.particles = particles;
    spec.seed_center = {0.5, 0.5, 0.5};
    spec.seed_radius = 0.05;
    std::vector<field::Vec3> cloud = workload::seed_particles(spec);
    std::vector<field::Vec3> truth_cloud = cloud;
    const field::Vec3 origin = spec.seed_center;

    std::printf("tracking %zu particles over %u steps (dt = %.4f s)\n\n", cloud.size(),
                steps, config.grid.dt);
    std::printf("%5s %12s %12s %10s %10s %12s\n", "step", "dispersion", "drift", "hits",
                "misses", "db-vs-truth");

    for (std::uint32_t step = 0; step + 1 < steps; ++step) {
        // --- the database round trip a real experiment performs ---
        const core::DirectResult result =
            db.evaluate(step, cloud, field::InterpOrder::kLag6);
        const double t = config.grid.sim_time(step);
        for (std::size_t i = 0; i < cloud.size(); ++i) {
            cloud[i] = field::Vec3{
                field::wrap01(cloud[i].x + config.grid.dt * result.samples[i].velocity.x),
                field::wrap01(cloud[i].y + config.grid.dt * result.samples[i].velocity.y),
                field::wrap01(cloud[i].z + config.grid.dt * result.samples[i].velocity.z)};
        }
        // --- ground truth with the analytic field, same integrator ---
        for (auto& p : truth_cloud) {
            const field::Vec3 v = db.field().velocity(p, t);
            p = field::Vec3{field::wrap01(p.x + config.grid.dt * v.x),
                            field::wrap01(p.y + config.grid.dt * v.y),
                            field::wrap01(p.z + config.grid.dt * v.z)};
        }

        // Cloud statistics: RMS dispersion about the seed centre, centre
        // drift, and the interpolation error versus the analytic path.
        util::RunningStats radius;
        field::Vec3 mean{};
        double max_err = 0.0;
        for (std::size_t i = 0; i < cloud.size(); ++i) {
            radius.add(torus_distance(cloud[i], origin));
            mean = mean + cloud[i];
            max_err = std::max(max_err, torus_distance(cloud[i], truth_cloud[i]));
        }
        mean = (1.0 / static_cast<double>(cloud.size())) * mean;
        std::printf("%5u %12.5f %12.5f %10llu %10llu %12.3e\n", step + 1, radius.mean(),
                    torus_distance(mean, origin),
                    static_cast<unsigned long long>(result.cache_hits),
                    static_cast<unsigned long long>(result.cache_misses), max_err);
    }

    const auto& cs = db.cache_stats();
    std::printf("\ncache: %.1f%% hit rate over the experiment (%llu hits, %llu misses)\n",
                100.0 * cs.hit_rate(), static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses));
    std::puts("dispersion grows with time while the database-driven trajectory stays\n"
              "within interpolation error of the analytic one — the data dependency\n"
              "of ordered jobs is real, not scripted.");
    return 0;
}
