// Cluster replay — the multi-node architecture of Fig. 7.
//
// Generates a trace, saves it to CSV (the shape of the production SQL log),
// reloads it, runs the job-identification heuristics against the ground
// truth, and finally replays the workload on a spatially partitioned
// Turbulence cluster where every node runs its own JAWS instance in
// parallel. Prints identification accuracy, per-node utilisation and the
// aggregate cluster report.
//
//   $ ./cluster_replay [nodes] [jobs]
#include <cstdio>
#include <cstdlib>

#include "core/cluster.h"
#include "workload/generator.h"
#include "workload/job_identifier.h"
#include "workload/trace.h"

int main(int argc, char** argv) {
    using namespace jaws;
    const std::size_t nodes = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4;
    const std::size_t jobs = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 150;

    core::ClusterConfig config;
    config.nodes = nodes;
    config.node.scheduler.kind = core::SchedulerKind::kJaws;
    const field::SyntheticField field(config.node.field);

    workload::WorkloadSpec wspec;
    wspec.jobs = jobs;
    wspec.seed = 2024;
    const workload::Workload workload =
        workload::generate_workload(wspec, config.node.grid, field);
    std::printf("trace: %zu jobs, %zu queries\n", workload.jobs.size(),
                workload.total_queries());

    // --- 1. the SQL-log view: flatten, round-trip through CSV ---
    const auto records = workload::flatten(workload);
    const std::string path = "/tmp/jaws_cluster_replay_trace.csv";
    workload::save_csv(path, records);
    const auto reloaded = workload::load_csv(path);
    std::printf("trace CSV round trip: %zu records -> %s\n", reloaded.size(), path.c_str());

    // --- 2. job identification, as the production scheduler must do ---
    const auto labels = workload::identify_jobs(reloaded);
    const auto quality = workload::evaluate_identification(reloaded, labels);
    std::printf("job identification: precision %.2f, recall %.2f, F1 %.2f, "
                "%.0f%% of jobs exact\n\n",
                quality.pair_precision, quality.pair_recall, quality.f1(),
                100.0 * quality.exact_jobs);

    // --- 3. the partitioned cluster replay ---
    core::TurbulenceCluster cluster(config);
    const core::ClusterReport report = cluster.run(workload);

    std::printf("%6s %10s %12s %12s %8s\n", "node", "queries", "tp(q/s)", "rt_mean(s)",
                "hit%");
    for (std::size_t n = 0; n < report.per_node.size(); ++n) {
        const core::RunReport& r = report.per_node[n];
        std::printf("%6zu %10zu %12.3f %12.1f %7.1f%%\n", n, r.queries,
                    r.busy_throughput_qps, r.mean_response_ms / 1000.0,
                    100.0 * r.cache.hit_rate());
    }
    std::printf("\ncluster: %.3f query-parts/s aggregate, makespan %.0f s, "
                "hit rate %.1f%%\n",
                report.total_throughput_qps, report.makespan.seconds(),
                100.0 * report.cache_hit_rate);
    std::puts("(spatial partitioning keeps each node's share Morton-contiguous, so\n"
              " per-node batches remain near-sequential on that node's disk)");

    // --- 4. the same replay with a node death and replicated ranges ---
    if (nodes >= 2) {
        core::ClusterConfig faulty = config;
        faulty.replication = 2;
        faulty.node.faults.node_down.push_back(
            storage::NodeDownEvent{util::NodeIndex{0}, util::SimTime::from_seconds(30.0)});
        core::TurbulenceCluster degraded_cluster(faulty);
        const core::ClusterReport degraded = degraded_cluster.run(workload);
        std::printf("\nwith node 0 dying at t=30s (replication 2): makespan %.0f s "
                    "(+%.0f%%), %zu failover(s), %zu query-parts requeued, %zu lost\n",
                    degraded.makespan.seconds(),
                    100.0 * (degraded.makespan.seconds() / report.makespan.seconds() - 1.0),
                    degraded.failovers, degraded.requeued_queries, degraded.lost_queries);
        std::puts("(the dead node's Morton range survives on its chained-declustering\n"
                  " replica, which replays the unfinished tail after draining its own share)");
    }
    return 0;
}
