// Adaptive starvation resistance — watching alpha track the workload.
//
// Replays the same trace at several saturation levels (the speed-up knob of
// Fig. 11) under JAWS's adaptive controller and under the two fixed extremes
// (alpha = 0, throughput-greedy; alpha = 1, arrival order). The point of
// Sec. V-A: one adaptive instance gets the throughput of alpha=0 when
// saturated and response times near alpha=1 when idle, without manual tuning.
//
//   $ ./adaptive_tradeoff [jobs]
#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
    using namespace jaws;
    const std::size_t jobs = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 150;

    core::EngineConfig base;
    const field::SyntheticField field(base.field);
    workload::WorkloadSpec wspec;
    wspec.jobs = jobs;
    wspec.seed = 31;
    const workload::Workload original =
        workload::generate_workload(wspec, base.grid, field);
    std::printf("trace: %zu queries\n\n", original.total_queries());

    const auto run = [&](const workload::Workload& w, bool adaptive, double alpha0) {
        core::EngineConfig config = base;
        config.scheduler.kind = core::SchedulerKind::kJaws;
        config.scheduler.jaws.adaptive_alpha = adaptive;
        config.scheduler.jaws.alpha.initial_alpha = alpha0;
        core::Engine engine(config);
        return engine.run(w);
    };

    std::printf("%-10s %-12s %12s %14s %10s\n", "speedup", "policy", "tp(q/s)",
                "rt_mean(s)", "alpha_end");
    for (const double speedup : {0.25, 1.0, 8.0}) {
        workload::Workload w = original;
        workload::apply_speedup(w, speedup);
        const core::RunReport greedy = run(w, false, 0.0);
        const core::RunReport arrival = run(w, false, 1.0);
        const core::RunReport adaptive = run(w, true, 0.5);
        std::printf("%-10.2f %-12s %12.3f %14.1f %10.2f\n", speedup, "alpha=0",
                    greedy.busy_throughput_qps, greedy.mean_response_ms / 1000.0, 0.0);
        std::printf("%-10.2f %-12s %12.3f %14.1f %10.2f\n", speedup, "alpha=1",
                    arrival.busy_throughput_qps, arrival.mean_response_ms / 1000.0, 1.0);
        std::printf("%-10.2f %-12s %12.3f %14.1f %10.2f\n\n", speedup, "adaptive",
                    adaptive.busy_throughput_qps, adaptive.mean_response_ms / 1000.0,
                    adaptive.final_alpha);
    }
    std::puts("the adaptive row should sit near the better fixed extreme at each\n"
              "saturation level — throughput-greedy when overloaded, age-biased\n"
              "when the system has headroom.");

    // Timeline view: watch the controller and the backlog evolve over one
    // saturated run (RunReport::timeline, sampled every 10 virtual minutes).
    {
        workload::Workload w = original;
        workload::apply_speedup(w, 8.0);
        core::EngineConfig config = base;
        config.scheduler.kind = core::SchedulerKind::kJaws;
        config.timeline_window_s = 600.0;
        core::Engine engine(config);
        const core::RunReport report = engine.run(w);
        std::printf("\ntimeline of the speedup-8 adaptive run (10-minute windows):\n");
        std::printf("%10s %10s %12s %8s %10s\n", "t(min)", "done", "rt_mean(s)", "alpha",
                    "backlog");
        for (const auto& point : report.timeline)
            std::printf("%10.0f %10llu %12.1f %8.2f %10zu\n",
                        point.window_end.seconds() / 60.0,
                        static_cast<unsigned long long>(point.completions),
                        point.mean_response_ms / 1000.0, point.alpha,
                        point.backlog_subqueries);
    }
    return 0;
}
