// Volume statistics — the paper's query class (1): "evaluating statistical
// arrays of turbulence quantities over the entire or parts of the volume".
//
// Scans a sub-volume at several time steps, printing the statistical array a
// turbulence scientist would pull (RMS velocity, kinetic energy, pressure
// moments) and the I/O behaviour of the Morton-ordered box scan: atoms are
// visited once each, and re-scanning an overlapping box hits the cache.
//
//   $ ./volume_statistics [samples_per_axis]
#include <cstdio>
#include <cstdlib>

#include "core/direct_executor.h"

int main(int argc, char** argv) {
    using namespace jaws;
    const std::uint32_t samples =
        argc > 1 ? static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10)) : 12;

    core::EngineConfig config;
    config.grid.voxels_per_side = 256;
    config.grid.atom_side = 32;
    config.grid.ghost = 4;
    config.grid.timesteps = 8;
    config.field.modes = 10;
    config.cache.capacity_atoms = 128;
    core::DirectExecutor db(config);

    const field::Vec3 lo{0.25, 0.25, 0.25}, hi{0.75, 0.75, 0.75};
    std::printf("statistical arrays over the box [%.2f,%.2f]^3, %u^3 samples per step\n\n",
                lo.x, hi.x, samples);
    std::printf("%5s %10s %10s %12s %12s %10s %10s\n", "step", "rms|u|", "0.5<u^2>",
                "<p>", "var(p)", "atoms", "cost(ms)");
    for (std::uint32_t step = 0; step < config.grid.timesteps; ++step) {
        const core::VolumeStats s = db.evaluate_box(step, lo, hi, samples);
        std::printf("%5u %10.4f %10.4f %12.5f %12.5f %10llu %10.1f\n", step,
                    s.rms_velocity, s.kinetic_energy, s.mean_pressure, s.pressure_variance,
                    static_cast<unsigned long long>(s.atoms_touched),
                    s.virtual_cost.millis());
    }

    // Re-scan an overlapping box at the last step: the shared atoms are
    // already cached, so the scan is mostly compute.
    const std::uint32_t last = config.grid.timesteps - 1;
    const core::VolumeStats again =
        db.evaluate_box(last, {0.3, 0.3, 0.3}, {0.8, 0.8, 0.8}, samples);
    std::printf("\noverlapping re-scan at step %u: cost %.1f ms over %llu atoms "
                "(cache absorbs the shared region)\n",
                last, again.virtual_cost.millis(),
                static_cast<unsigned long long>(again.atoms_touched));
    std::printf("cache: %.1f%% hit rate across the whole session\n",
                100.0 * db.cache_stats().hit_rate());
    return 0;
}
