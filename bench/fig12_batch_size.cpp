// Fig. 12 — Performance impact of varying batch size k in JAWS.
//
// Paper results: the optimum lies between k = 10 and 15; even k = 1 beats
// LifeRaft_2 thanks to job-awareness; beyond k = 20 performance degrades
// (cache flushing, scheduling conforms less to contention); and past ~50 the
// impact is marginal because only atoms with workload throughput above the
// step mean are eligible.
#include "bench_common.h"

int main(int argc, char** argv) {
    using namespace jaws;
    const std::size_t jobs = bench::jobs_from_args(argc, argv, 200);

    core::EngineConfig base = bench::base_config();
    const field::SyntheticField field(base.field);
    workload::WorkloadSpec wspec = bench::base_workload_spec();
    wspec.jobs = jobs;
    const workload::Workload workload = workload::generate_workload(wspec, base.grid, field);
    std::printf("# Fig. 12 reproduction: %zu jobs, %zu queries\n", workload.jobs.size(),
                workload.total_queries());

    // LifeRaft_2 reference line.
    core::EngineConfig lr = base;
    lr.scheduler = bench::liferaft_spec(0.0);
    const core::RunReport ref = bench::run_one(lr, workload);
    std::printf("LifeRaft_2 reference: tp=%.3f q/s\n\n", ref.busy_throughput_qps);

    std::printf("%6s %12s %12s %8s %10s\n", "k", "tp(q/s)", "rt_mean(ms)", "hit%", "reads");
    const std::size_t ks[] = {1, 2, 5, 10, 15, 20, 30, 50, 80};
    double best_tp = 0.0;
    std::size_t best_k = 0;
    for (const std::size_t k : ks) {
        core::EngineConfig config = base;
        config.scheduler = bench::jaws2_spec(k);
        const core::RunReport r = bench::run_one(config, workload);
        std::printf("%6zu %12.3f %12.1f %7.1f%% %10llu\n", k, r.busy_throughput_qps,
                    r.mean_response_ms, 100.0 * r.cache.hit_rate(),
                    static_cast<unsigned long long>(r.atom_reads));
        std::fflush(stdout);
        if (r.busy_throughput_qps > best_tp) {
            best_tp = r.busy_throughput_qps;
            best_k = k;
        }
    }
    std::printf("\nbest k = %zu (paper: optimum between 10 and 15)\n", best_k);
    return 0;
}
