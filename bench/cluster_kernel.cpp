// Cluster-kernel sweep — what one shared event kernel buys the cluster.
//
// The unified kernel (ClusterMode::kUnified) routes arrivals at event time,
// serves replicated atom reads from the chain member with the shallowest
// modeled disk queue, and absorbs node deaths in-line: the dead node's
// unfinished work contends for the survivors' modeled disks instead of being
// re-run after the fact. The legacy path (kLegacy) is the same cluster with
// N isolated engines and post-hoc recovery — the equivalence baseline.
//
// This harness sweeps workload skew x replication x node death x mode at
// equal seeds and reports, per cell: cluster makespan, the share of demand
// reads served by a replica, failover accounting, and — for the death rows —
// the survivors' disk utilisation before vs after the death (from the
// per-node timeline, so a rise is visible in-kernel, not a post-hoc sum).
//
// Everything runs on the virtual clock (wall_clock_overhead off), so
// repeated runs are bit-identical — including BENCH_cluster_kernel.json,
// which carries no wall-clock or timestamp fields by design.
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/cluster.h"

namespace {

struct SkewLevel {
    const char* name;
    bool hot_node;  ///< Concentrate every footprint atom onto one node's range.
};

struct Row {
    std::string skew;
    std::size_t replication = 1;
    bool death = false;
    bool unified = false;
    jaws::core::ClusterReport r;
    double survivor_util_before = 0.0;
    double survivor_util_after = 0.0;
};

constexpr std::size_t kNodes = 4;
constexpr std::size_t kDeadNode = 1;
constexpr double kDeathSeconds = 30.0;
/// Fig. 11's saturation knob: compress arrival gaps so queues actually form —
/// replica routing only matters when the owner's disk has a backlog to dodge.
constexpr double kSpeedup = 16.0;

jaws::core::ClusterConfig sweep_config(std::size_t replication, bool death,
                                       bool unified) {
    jaws::core::ClusterConfig config;
    config.node = jaws::bench::base_config();
    // Bit-identical repeats: keep every measurement on the virtual clock.
    config.node.cache.wall_clock_overhead = false;
    config.node.scheduler = jaws::bench::jaws2_spec();
    config.node.io_depth = 4;       // several reads in flight per node, so a
    config.node.compute_workers = 4;  // backlogged owner is visible at route time
    config.node.timeline_window_s = 5.0;
    config.nodes = kNodes;
    config.replication = replication;
    config.mode = unified ? jaws::core::ClusterMode::kUnified
                          : jaws::core::ClusterMode::kLegacy;
    if (death)
        config.node.faults.node_down.push_back(jaws::storage::NodeDownEvent{
            jaws::util::NodeIndex{static_cast<std::uint32_t>(kDeadNode)}, jaws::util::SimTime::from_seconds(kDeathSeconds)});
    return config;
}

std::uint64_t total_atom_reads(const jaws::core::ClusterReport& r) {
    std::uint64_t reads = 0;
    for (const auto& n : r.per_node) reads += n.atom_reads;
    for (const auto& n : r.recovery) reads += n.atom_reads;
    return reads;
}

double replica_share(const jaws::core::ClusterReport& r) {
    const std::uint64_t reads = total_atom_reads(r);
    return reads > 0 ? static_cast<double>(r.replica_reads) /
                           static_cast<double>(reads)
                     : 0.0;
}

/// Fold every footprint atom into `node`'s Morton range, spreading over the
/// whole range so the hot node's working set dwarfs its cache: the node's
/// *disk* becomes the cluster bottleneck (a hot cached region would not be),
/// which is the regime replica-aware routing exists for. Duplicate atoms
/// created by the fold are merged and footprints stay Morton-sorted.
void concentrate_on_node(jaws::workload::Workload& w, std::uint64_t atoms_per_step,
                         std::size_t node) {
    const std::uint64_t per = (atoms_per_step + kNodes - 1) / kNodes;
    const std::uint64_t lo = per * static_cast<std::uint64_t>(node);
    for (auto& job : w.jobs)
        for (auto& q : job.queries) {
            std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint64_t> folded;
            for (const auto& req : q.footprint)
                folded[{req.atom.timestep, lo + req.atom.morton % per}] +=
                    req.positions;
            q.footprint.clear();
            for (const auto& [key, positions] : folded)
                q.footprint.push_back(
                    {jaws::storage::AtomId{key.first, key.second}, positions});
        }
}

/// Mean disk utilisation of the surviving nodes' timeline windows ending
/// before (`after = false`) or after (`after = true`) the death instant.
double survivor_util(const jaws::core::ClusterReport& r, bool after) {
    const jaws::util::SimTime death =
        jaws::util::SimTime::from_seconds(kDeathSeconds);
    double sum = 0.0;
    std::size_t windows = 0;
    for (std::size_t n = 0; n < r.per_node.size(); ++n) {
        if (n == kDeadNode) continue;
        for (const auto& tp : r.per_node[n].timeline) {
            if ((tp.window_end > death) != after) continue;
            sum += tp.disk_utilization;
            ++windows;
        }
    }
    return windows > 0 ? sum / static_cast<double>(windows) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace jaws;
    const std::size_t jobs = bench::jobs_from_args(argc, argv, 120);

    const core::ClusterConfig probe = sweep_config(1, false, true);
    const field::SyntheticField field(probe.node.field);

    const SkewLevel skews[] = {
        {"uniform", false},    // the generator's calibrated spatial mix
        {"hot-node", true},    // every atom folded onto one node's range
    };

    std::printf("# Cluster kernel sweep: %zu nodes, %zu jobs, "
                "skew x replication x death x mode\n\n",
                kNodes, jobs);
    std::printf("%-8s %-4s %-6s %-8s %12s %10s %9s %6s %6s %7s %7s %6s\n", "skew",
                "rep", "death", "mode", "makespan(s)", "tp(q/s)", "replica%",
                "disk%", "cpu%", "failov", "requeue", "lost");

    std::vector<Row> rows;
    for (const SkewLevel& skew : skews) {
        workload::WorkloadSpec wspec = bench::base_workload_spec();
        wspec.jobs = jobs;
        workload::Workload workload =
            workload::generate_workload(wspec, probe.node.grid, field);
        workload::apply_speedup(workload, kSpeedup);
        if (skew.hot_node)
            concentrate_on_node(workload, probe.node.grid.atoms_per_step(),
                                kDeadNode);

        for (const std::size_t rep : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
            for (const bool death : {false, true}) {
                for (const bool unified : {false, true}) {
                    Row row;
                    row.skew = skew.name;
                    row.replication = rep;
                    row.death = death;
                    row.unified = unified;
                    const core::ClusterConfig config =
                        sweep_config(rep, death, unified);
                    row.r = core::TurbulenceCluster(config).run(workload);
                    if (death) {
                        row.survivor_util_before = survivor_util(row.r, false);
                        row.survivor_util_after = survivor_util(row.r, true);
                    }
                    std::printf("%-8s %-4zu %-6s %-8s %12.1f %10.3f %8.2f%% "
                                "%5.1f%% %5.1f%% %7zu %7zu %6zu\n",
                                row.skew.c_str(), rep, death ? "yes" : "no",
                                unified ? "unified" : "legacy",
                                row.r.makespan.seconds(),
                                row.r.total_throughput_qps,
                                100.0 * replica_share(row.r),
                                100.0 * row.r.mean_disk_utilization,
                                100.0 * row.r.mean_cpu_utilization,
                                row.r.failovers, row.r.requeued_queries,
                                row.r.lost_queries);
                    std::fflush(stdout);
                    rows.push_back(std::move(row));
                }
            }
        }
    }

    // Paired makespans: unified against its legacy twin (same workload, same
    // replication, no death) — the replica-aware-routing win under skew.
    std::printf("\n%-8s %-4s %14s %14s %9s\n", "skew", "rep", "legacy(s)",
                "unified(s)", "delta");
    for (std::size_t i = 0; i + 1 < rows.size(); i += 2) {
        if (rows[i].death) continue;
        const double legacy = rows[i].r.makespan.seconds();
        const double unified = rows[i + 1].r.makespan.seconds();
        std::printf("%-8s %-4zu %14.1f %14.1f %8.1f%%\n", rows[i].skew.c_str(),
                    rows[i].replication, legacy, unified,
                    100.0 * (unified - legacy) / legacy);
    }
    std::printf("\n(replication >= 2 lets the unified kernel serve the hot "
                "node's reads from\n replicas; on the death rows the "
                "survivors' disk utilisation rises in-kernel)\n");

    std::ofstream json("BENCH_cluster_kernel.json");
    json << "{\n"
         << "  \"bench\": \"cluster_kernel\",\n"
         << "  \"nodes\": " << kNodes << ",\n"
         << "  \"jobs\": " << jobs << ",\n"
         << "  \"death_node\": " << kDeadNode << ",\n"
         << "  \"death_s\": " << kDeathSeconds << ",\n"
         << "  \"note\": \"virtual-clock only: repeated runs at the same job "
            "count produce a byte-identical file; replica_share is replica-"
            "served demand reads over all demand reads; survivor_util_* are "
            "mean timeline disk utilisation of surviving nodes before/after "
            "the death\",\n"
         << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& row = rows[i];
        const core::ClusterReport& r = row.r;
        char buf[640];
        std::snprintf(
            buf, sizeof buf,
            "    {\"skew\": \"%s\", \"replication\": %zu, \"death\": %s, "
            "\"mode\": \"%s\", \"makespan_s\": %.3f, \"throughput_qps\": %.3f, "
            "\"replica_reads\": %llu, \"replica_share\": %.6f, "
            "\"rerouted_arrivals\": %llu, \"failovers\": %zu, "
            "\"requeued\": %zu, \"lost\": %zu, \"mean_disk_util\": %.6f, "
            "\"survivor_util_before\": %.6f, \"survivor_util_after\": %.6f}%s\n",
            row.skew.c_str(), row.replication, row.death ? "true" : "false",
            row.unified ? "unified" : "legacy", r.makespan.seconds(),
            r.total_throughput_qps,
            static_cast<unsigned long long>(r.replica_reads), replica_share(r),
            static_cast<unsigned long long>(r.rerouted_arrivals), r.failovers,
            r.requeued_queries, r.lost_queries, r.mean_disk_utilization,
            row.survivor_util_before, row.survivor_util_after,
            i + 1 < rows.size() ? "," : "");
        json << buf;
    }
    json << "  ]\n}\n";
    std::printf("\nwrote BENCH_cluster_kernel.json\n");
    return 0;
}
