// Fig. 11 — Sensitivity of performance to varying workload saturation.
//
// The speed-up knob compresses inter-job arrival gaps (speed-up 2 turns a
// 2-minute gap into 1 minute). Paper results: (a) JAWS_2 and LifeRaft_2 keep
// scaling with saturation while NoShare and LifeRaft_1 plateau early;
// (b) response times — NoShare is worst throughout, LifeRaft_2 starves
// queries even at low saturation, and JAWS adapts: it approaches LifeRaft_2's
// throughput when saturated and beats LifeRaft_1's response time at the
// lowest saturation.
#include "bench_common.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
    using namespace jaws;
    const std::size_t jobs = bench::jobs_from_args(argc, argv, 250);

    core::EngineConfig base = bench::base_config();
    const field::SyntheticField field(base.field);
    workload::WorkloadSpec wspec = bench::base_workload_spec();
    wspec.jobs = jobs;
    // The base trace is the saturated operating point; sweep both downward
    // (idle system) and upward (overload).
    const workload::Workload original =
        workload::generate_workload(wspec, base.grid, field);
    std::printf("# Fig. 11 reproduction: %zu jobs, %zu queries per cell\n",
                original.jobs.size(), original.total_queries());

    struct System {
        const char* label;
        core::SchedulerSpec spec;
    };
    const System systems[] = {
        {"NoShare", bench::noshare_spec()},
        {"LifeRaft_1", bench::liferaft_spec(1.0)},
        {"LifeRaft_2", bench::liferaft_spec(0.0)},
        {"JAWS_2", bench::jaws2_spec()},
    };
    const double speedups[] = {0.25, 0.5, 1.0, 2.0, 4.0, 8.0};

    std::printf("\n(a) query throughput (queries per busy second)\n");
    std::printf("%-12s", "speedup");
    for (const auto& s : systems) std::printf(" %12s", s.label);
    std::printf("\n");

    // Cache the reports for the response-time table.
    std::vector<std::vector<core::RunReport>> grid(std::size(speedups));
    for (std::size_t i = 0; i < std::size(speedups); ++i) {
        workload::Workload w = original;
        workload::apply_speedup(w, speedups[i]);
        std::printf("%-12.2f", speedups[i]);
        for (const auto& s : systems) {
            core::EngineConfig config = base;
            config.scheduler = s.spec;
            grid[i].push_back(bench::run_one(config, w));
            std::printf(" %12.3f", grid[i].back().busy_throughput_qps);
            std::fflush(stdout);
        }
        std::printf("\n");
    }

    std::printf("\n(b) mean query response time (seconds)\n");
    std::printf("%-12s", "speedup");
    for (const auto& s : systems) std::printf(" %12s", s.label);
    std::printf("\n");
    for (std::size_t i = 0; i < std::size(speedups); ++i) {
        std::printf("%-12.2f", speedups[i]);
        for (const auto& r : grid[i]) std::printf(" %12.1f", r.mean_response_ms / 1000.0);
        std::printf("\n");
    }

    std::printf("\n(adaptive alpha at end of run, JAWS_2 column)\n");
    std::printf("%-12s %8s\n", "speedup", "alpha");
    for (std::size_t i = 0; i < std::size(speedups); ++i)
        std::printf("%-12.2f %8.2f\n", speedups[i], grid[i].back().final_alpha);
    return 0;
}
