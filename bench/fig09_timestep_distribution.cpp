// Fig. 9 — Distribution of queries by time step accessed.
//
// Paper characterisation: ~70% of queries reuse data from about a dozen time
// steps clustered at the start and end of simulation time; a secondary spike
// sits around 0.25-0.4 s of simulation time; and access frequency trends
// downward with simulation time because jobs that iterate over all time often
// terminate midway. This bench prints the per-step histogram of the generated
// trace and checks each qualitative feature.
#include <algorithm>

#include "bench_common.h"

int main(int argc, char** argv) {
    using namespace jaws;
    const std::size_t jobs = bench::jobs_from_args(argc, argv, 1000);

    core::EngineConfig base = bench::base_config();
    const field::SyntheticField field(base.field);
    workload::WorkloadSpec wspec = bench::base_workload_spec();
    wspec.jobs = jobs;
    const workload::Workload workload = workload::generate_workload(wspec, base.grid, field);

    const auto counts = workload::queries_per_timestep(workload, base.grid.timesteps);
    std::uint64_t total = 0;
    for (const auto c : counts) total += c;
    if (total == 0) return 1;

    std::printf("# Fig. 9 reproduction: distribution of queries by time step\n");
    std::printf("%6s %12s %7s  histogram\n", "step", "queries", "frac");
    const std::uint64_t peak = *std::max_element(counts.begin(), counts.end());
    for (std::uint32_t t = 0; t < counts.size(); ++t) {
        const double frac = static_cast<double>(counts[t]) / static_cast<double>(total);
        const int bar = peak ? static_cast<int>(48.0 * static_cast<double>(counts[t]) /
                                                static_cast<double>(peak))
                             : 0;
        std::printf("%6u %12llu %6.1f%%  %.*s\n", t,
                    static_cast<unsigned long long>(counts[t]), 100.0 * frac, bar,
                    "################################################");
    }

    // Feature checks.
    std::vector<std::uint64_t> sorted(counts.begin(), counts.end());
    std::sort(sorted.rbegin(), sorted.rend());
    std::uint64_t top12 = 0;
    for (std::size_t i = 0; i < std::min<std::size_t>(12, sorted.size()); ++i)
        top12 += sorted[i];
    std::printf("\ntop-12 steps carry %5.1f%% of queries (paper: ~70%%)\n",
                100.0 * static_cast<double>(top12) / static_cast<double>(total));

    std::uint64_t first_half = 0;
    const std::size_t half = counts.size() / 2;
    for (std::size_t t = 0; t < half; ++t) first_half += counts[t];
    std::printf("first half of simulation time: %5.1f%% (downward trend => >50%%)\n",
                100.0 * static_cast<double>(first_half) / static_cast<double>(total));
    return 0;
}
