// Fig. 10 — Query throughput by scheduling algorithm.
//
// Paper result: JAWS_2 improves query throughput ~2.6x over NoShare; removing
// job-awareness (JAWS_1) costs ~30%; two-level scheduling contributes ~12%
// (JAWS_1 over LifeRaft_2); contention ordering contributes ~22% (LifeRaft_2
// over LifeRaft_1). This bench runs the five systems on the same calibrated
// trace and prints the throughput column plus the paper's derived ratios.
#include "bench_common.h"

int main(int argc, char** argv) {
    using namespace jaws;
    const std::size_t jobs = bench::jobs_from_args(argc, argv, 400);

    core::EngineConfig base = bench::base_config();
    const field::SyntheticField field(base.field);
    workload::WorkloadSpec wspec = bench::base_workload_spec();
    wspec.jobs = jobs;
    const workload::Workload workload = workload::generate_workload(wspec, base.grid, field);
    std::printf("# Fig. 10 reproduction: %zu jobs, %zu queries\n", workload.jobs.size(),
                workload.total_queries());

    struct Row {
        const char* label;
        core::SchedulerSpec spec;
        core::RunReport report;
    };
    Row rows[] = {
        {"NoShare", bench::noshare_spec(), {}},
        {"LifeRaft_1 (a=1)", bench::liferaft_spec(1.0), {}},
        {"LifeRaft_2 (a=0)", bench::liferaft_spec(0.0), {}},
        {"JAWS_1 (no job-aware)", bench::jaws1_spec(), {}},
        {"JAWS_2 (full)", bench::jaws2_spec(), {}},
    };

    bench::print_report_header();
    for (Row& row : rows) {
        core::EngineConfig config = base;
        config.scheduler = row.spec;
        row.report = bench::run_one(config, workload);
        row.report.scheduler_name = row.label;
        bench::print_report_row(row.report);
    }

    const double noshare = rows[0].report.busy_throughput_qps;
    const double lr1 = rows[1].report.busy_throughput_qps;
    const double lr2 = rows[2].report.busy_throughput_qps;
    const double jaws1 = rows[3].report.busy_throughput_qps;
    const double jaws2 = rows[4].report.busy_throughput_qps;
    std::printf("\n# ratios (paper targets in parentheses)\n");
    std::printf("JAWS_2 / NoShare     = %.2fx  (~2.6x)\n", jaws2 / noshare);
    std::printf("JAWS_2 / JAWS_1      = %.2fx  (~1.43x: job-awareness ~30%% drop)\n",
                jaws2 / jaws1);
    std::printf("JAWS_1 / LifeRaft_2  = %.2fx  (~1.12x: two-level ~12%%)\n", jaws1 / lr2);
    std::printf("LifeRaft_2/LifeRaft_1= %.2fx  (~1.22x: contention ordering ~22%%)\n",
                lr2 / lr1);
    std::printf("JAWS_2 / LifeRaft_2  = %.2fx  (~1.6x overall)\n", jaws2 / lr2);
    return 0;
}
