// Fig. 8 — Distribution of jobs by execution time.
//
// Paper characterisation: job durations are heavy-tailed; a majority (~63%)
// persist between one and thirty minutes. The paper's figure is derived from
// the production SQL log, whose per-job spans include queueing and execution
// on the live cluster — so we reproduce it the same way: run the generated
// trace through the engine (JAWS configuration) and histogram the measured
// wall span of every job (completion of its last query minus its arrival).
#include "bench_common.h"
#include "util/stats.h"

int main(int argc, char** argv) {
    using namespace jaws;
    const std::size_t jobs = bench::jobs_from_args(argc, argv, 400);

    core::EngineConfig base = bench::base_config();
    const field::SyntheticField field(base.field);
    workload::WorkloadSpec wspec = bench::base_workload_spec();
    wspec.jobs = jobs;
    const workload::Workload workload = workload::generate_workload(wspec, base.grid, field);

    core::EngineConfig config = base;
    config.scheduler = bench::jaws2_spec();
    const core::RunReport report = bench::run_one(config, workload);

    util::Histogram hist({0.0, 1.0, 5.0, 30.0, 60.0, 240.0});
    util::RunningStats stats;
    for (const double span_ms : report.job_span_ms) {
        const double minutes = span_ms / 60000.0;
        hist.add(minutes);
        stats.add(minutes);
    }
    std::size_t in_jobs = 0, total_queries = 0;
    for (const auto& job : workload.jobs) {
        total_queries += job.queries.size();
        if (job.queries.size() > 1) in_jobs += job.queries.size();
    }

    std::printf("# Fig. 8 reproduction: distribution of jobs by execution time\n");
    std::printf("# %zu jobs, %zu queries; mean duration %.1f min, max %.1f min\n",
                workload.jobs.size(), total_queries, stats.mean(), stats.max());
    std::printf("%s", hist.to_table("duration (minutes)").c_str());

    const double frac_1_30 = hist.fraction(1) + hist.fraction(2);
    std::printf("\nfraction of jobs lasting 1-30 min : %5.1f%%  (paper: ~63%%)\n",
                100.0 * frac_1_30);
    std::printf("fraction of queries in multi-query jobs: %5.1f%%  (paper: >95%%)\n",
                100.0 * static_cast<double>(in_jobs) / static_cast<double>(total_queries));
    return 0;
}
