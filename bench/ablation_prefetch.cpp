// Ablation C — Trajectory prefetching (paper Sec. VII, future work).
//
// "We can extrapolate the trajectory of jobs in time and space ... to predict
// which data atoms are accessed by subsequent queries." This ablation runs a
// tracking-heavy workload with prefetching off and on, across prefetch
// budgets, and reports prediction accuracy, speculative reads, response time
// and throughput — the payoff comes from converting the cold first read of
// each step's region into a cache hit issued ahead of the query.
#include "bench_common.h"

int main(int argc, char** argv) {
    using namespace jaws;
    const std::size_t jobs = bench::jobs_from_args(argc, argv, 120);

    core::EngineConfig base = bench::base_config();
    base.cache.capacity_atoms = 512;  // prefetched atoms must survive to pay off
    const field::SyntheticField field(base.field);

    // Tracking-heavy: multi-step ordered jobs with smooth trajectories, at
    // light load — prefetching can only mask latency with idle disk time to
    // spend, so this is the interactive-exploration regime, not saturation.
    workload::WorkloadSpec wspec = bench::base_workload_spec();
    wspec.jobs = jobs;
    wspec.frac_single_step = 0.0;
    wspec.frac_full_span = 0.4;
    wspec.drift_scale = 8.0;
    wspec.mean_burst_gap_s = 240.0;
    wspec.mean_intra_burst_gap_s = 60.0;
    wspec.mean_think_time_s = 4.0;
    const workload::Workload workload = workload::generate_workload(wspec, base.grid, field);
    std::printf("# Ablation C: trajectory prefetching; %zu tracking jobs, %zu queries\n\n",
                workload.jobs.size(), workload.total_queries());

    std::printf("%-14s %10s %12s %10s %10s %10s %8s\n", "prefetch", "tp(q/s)",
                "rt_mean(ms)", "hit%", "reads", "spec", "acc%");
    const std::size_t budgets[] = {0, 2, 4, 8, 16};
    for (const std::size_t budget : budgets) {
        core::EngineConfig config = base;
        config.scheduler = bench::jaws2_spec();
        config.prefetch.enabled = budget > 0;
        config.prefetch.max_atoms_per_batch = budget;
        const core::RunReport r = bench::run_one(config, workload);
        char label[24];
        std::snprintf(label, sizeof label, budget ? "%zu/batch" : "off", budget);
        std::printf("%-14s %10.3f %12.1f %9.1f%% %10llu %10llu %7.1f%%\n", label,
                    r.busy_throughput_qps, r.mean_response_ms,
                    100.0 * r.cache.hit_rate(),
                    static_cast<unsigned long long>(r.atom_reads),
                    static_cast<unsigned long long>(r.prefetch.prefetches),
                    100.0 * r.prefetch.accuracy());
        std::fflush(stdout);
    }
    std::printf(
        "\n(raw prediction quality is ~75%% on tracking footprints — see\n"
        " tests/prefetcher_test.cpp — but end-to-end conversion is bounded by\n"
        " idle disk time and by cache churn between prefetch and use: on a\n"
        " single saturated spindle, speculation cannot add capacity, it can\n"
        " only trade cache residency for latency masking. The interesting\n"
        " columns are hit%% (rises with budget) and acc%% (the conversion rate).)\n");
    return 0;
}
