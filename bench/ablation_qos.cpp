// Ablation D — Completion-time guarantees (paper Sec. VII, future work).
//
// "Predictable and fair completion time guarantees that are proportional to
// query size (e.g. short queries are delayed less than long queries) ...
// there is still elasticity in the workload that permits the reordering of
// queries to exploit data sharing." Every query gets a deadline of
// slack * its own estimated service time; the scheduler stays contention-
// ordered unless a deadline is at risk. We sweep the slack factor and report
// the miss rate, tardiness, rescue dispatches and the throughput retained
// relative to unconstrained JAWS.
#include "bench_common.h"

int main(int argc, char** argv) {
    using namespace jaws;
    const std::size_t jobs = bench::jobs_from_args(argc, argv, 200);

    core::EngineConfig base = bench::base_config();
    const field::SyntheticField field(base.field);
    workload::WorkloadSpec wspec = bench::base_workload_spec();
    wspec.jobs = jobs;
    const workload::Workload workload = workload::generate_workload(wspec, base.grid, field);
    std::printf("# Ablation D: completion-time guarantees; %zu queries\n\n",
                workload.total_queries());

    core::EngineConfig plain = base;
    plain.scheduler = bench::jaws2_spec();
    const core::RunReport unconstrained = bench::run_one(plain, workload);
    std::printf("unconstrained JAWS_2: tp=%.3f q/s, rt_mean=%.1f s\n\n",
                unconstrained.busy_throughput_qps,
                unconstrained.mean_response_ms / 1000.0);

    std::printf("%-10s %10s %12s %10s %12s %12s\n", "slack", "tp(q/s)", "tp vs free",
                "miss%", "tardy(ms)", "rescues");
    for (const double slack : {20.0, 50.0, 100.0, 300.0, 1000.0}) {
        core::EngineConfig config = base;
        config.scheduler = bench::jaws2_spec();
        config.scheduler.jaws.qos.enabled = true;
        config.scheduler.jaws.qos.slack_factor = slack;
        config.scheduler.jaws.qos.margin_ms = 3000.0;
        const core::RunReport r = bench::run_one(config, workload);
        std::printf("%-10.0f %10.3f %11.1f%% %9.1f%% %12.0f %12llu\n", slack,
                    r.busy_throughput_qps,
                    100.0 * r.busy_throughput_qps / unconstrained.busy_throughput_qps,
                    100.0 * r.qos.miss_rate(), r.qos.mean_tardiness_ms(),
                    static_cast<unsigned long long>(r.qos.edf_dispatches));
        std::fflush(stdout);
    }
    std::printf("\n(tighter guarantees trade throughput for punctuality; generous slack\n"
                " should approach the unconstrained throughput with near-zero misses)\n");
    return 0;
}
