// Table I — Performance and overhead of caching algorithms.
//
// Paper numbers (2 GB cache, JAWS scheduling):
//      policy   cache-hit   seconds/qry   overhead/qry
//      LRU-K       47%         1.62            -
//      SLRU        49%         1.56          < 1 ms
//      URC         54%         1.39            7 ms
// Exploiting workload knowledge buys URC ~7 points of hit rate and ~16% of
// query performance, SLRU ~2 points and ~4%, at single-digit-millisecond
// overhead. We run JAWS_2 over the same trace with each policy (plus plain
// LRU as an extra baseline) and report the same three columns; overhead is
// real measured wall time spent inside the policy, per completed query.
#include "bench_common.h"

int main(int argc, char** argv) {
    using namespace jaws;
    const std::size_t jobs = bench::jobs_from_args(argc, argv, 300);

    core::EngineConfig base = bench::base_config();
    const field::SyntheticField field(base.field);
    workload::WorkloadSpec wspec = bench::base_workload_spec();
    wspec.jobs = jobs;
    const workload::Workload workload = workload::generate_workload(wspec, base.grid, field);
    std::printf("# Table I reproduction: %zu jobs, %zu queries, cache %zu atoms\n",
                workload.jobs.size(), workload.total_queries(),
                base.cache.capacity_atoms);

    struct Row {
        const char* label;
        core::CachePolicy policy;
        core::RunReport report;
    };
    Row rows[] = {
        {"LRU", core::CachePolicy::kLru, {}},
        {"LRU-K", core::CachePolicy::kLruK, {}},
        {"SLRU", core::CachePolicy::kSlru, {}},
        {"2Q", core::CachePolicy::kTwoQ, {}},
        {"URC", core::CachePolicy::kUrc, {}},
    };

    std::printf("\n%-8s %10s %14s %14s\n", "policy", "cache-hit", "seconds/qry",
                "overhead/qry");
    for (Row& row : rows) {
        core::EngineConfig config = base;
        config.scheduler = bench::jaws2_spec();
        config.cache.policy = row.policy;
        row.report = bench::run_one(config, workload);
        const double busy_seconds_per_query = 1.0 / row.report.busy_throughput_qps;
        std::printf("%-8s %9.1f%% %14.3f %11.3f ms\n", row.label,
                    100.0 * row.report.cache.hit_rate(), busy_seconds_per_query,
                    row.report.cache_overhead_per_query_ms);
        std::fflush(stdout);
    }

    const double lruk = rows[1].report.busy_throughput_qps;
    const double slru = rows[2].report.busy_throughput_qps;
    const double urc = rows[4].report.busy_throughput_qps;
    std::printf("\nSLRU over LRU-K: %+5.1f%% query performance (paper: ~+4%%)\n",
                100.0 * (slru / lruk - 1.0));
    std::printf("URC  over LRU-K: %+5.1f%% query performance (paper: ~+16%%)\n",
                100.0 * (urc / lruk - 1.0));
    std::printf("hit-rate deltas: SLRU %+.1f pts, URC %+.1f pts (paper: +2, +7)\n",
                100.0 * (rows[2].report.cache.hit_rate() - rows[1].report.cache.hit_rate()),
                100.0 * (rows[4].report.cache.hit_rate() - rows[1].report.cache.hit_rate()));
    return 0;
}
