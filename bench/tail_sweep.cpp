// Tail-latency sweep — what hedged replica reads buy under heavy tails.
//
// The disk can draw seeded heavy-tailed service multipliers
// (DiskSpec::heavy_tail) and the fault injector can stall reads stuck
// (FaultSpec::stuck_read_rate); HedgeSpec counters that by duplicating a
// slow demand read on a replica channel and cancelling the loser. This
// harness sweeps tail severity x hedge policy x stuck-fault rate at equal
// seeds and reports the response-time distribution (p50/p95/p99/p999)
// alongside the price of hedging: duplicates issued/won, cancellations and
// the wasted service the cancelled losers had already rendered.
//
// Everything here runs on the virtual clock (wall_clock_overhead stays off),
// so repeated runs are bit-identical — including BENCH_tail_latency.json,
// which carries no wall-clock or timestamp fields by design.
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

struct TailLevel {
    const char* name;
    double rate;   ///< Probability a read draws a slow multiplier.
    double mu;     ///< lognormal_mu of the multiplier distribution.
    double sigma;  ///< lognormal_sigma.
};

struct Row {
    std::string tail;
    bool hedged;
    double stuck_rate;
    jaws::core::RunReport r;
};

jaws::core::EngineConfig sweep_config(const TailLevel& tail, bool hedged,
                                      double stuck_rate) {
    jaws::core::EngineConfig config = jaws::bench::base_config();
    // Bit-identical repeats: keep every measurement on the virtual clock.
    config.cache.wall_clock_overhead = false;
    config.scheduler = jaws::bench::jaws2_spec();
    config.io_depth = 4;  // hedges need a replica channel to land on
    config.compute_workers = 2;
    config.disk.heavy_tail.rate = tail.rate;
    config.disk.heavy_tail.lognormal_mu = tail.mu;
    config.disk.heavy_tail.lognormal_sigma = tail.sigma;
    config.disk.heavy_tail.seed = 0x7A11;
    config.faults.seed = 0xFA17;
    config.faults.stuck_read_rate = stuck_rate;
    config.faults.stuck_read_ms = 400.0;
    config.hedge.enabled = hedged;
    config.hedge.trigger_ewma_multiplier = 3.0;  // adaptive trigger (EWMA)
    config.hedge.max_outstanding = 4;
    config.hedge.budget_per_query = 2;
    return config;
}

double wasted_fraction(const jaws::core::RunReport& r) {
    const double busy = r.disk.total_busy().millis();
    return busy > 0.0 ? r.wasted_service.millis() / busy : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace jaws;
    const std::size_t jobs = bench::jobs_from_args(argc, argv, 200);

    const core::EngineConfig probe = sweep_config({"none", 0.0, 0.0, 0.0},
                                                  /*hedged=*/false, 0.0);
    const field::SyntheticField field(probe.field);
    workload::WorkloadSpec wspec = bench::base_workload_spec();
    wspec.jobs = jobs;
    const workload::Workload workload =
        workload::generate_workload(wspec, probe.grid, field);
    std::printf("# Tail sweep: JAWS_2, %zu queries, heavy-tail x hedge x stuck faults\n\n",
                workload.total_queries());

    const TailLevel tails[] = {
        {"none", 0.0, 0.0, 0.0},
        {"moderate", 0.05, 2.0, 0.75},
        {"severe", 0.15, 3.0, 0.5},
    };
    const double stuck_rates[] = {0.0, 0.02};

    std::printf("%-10s %-6s %-6s %9s %9s %9s %9s %8s %6s %6s %10s %8s\n", "tail",
                "hedge", "stuck", "p50(ms)", "p95(ms)", "p99(ms)", "p999(ms)",
                "hedges", "won", "cancel", "waste(ms)", "waste%");
    std::vector<Row> rows;
    for (const TailLevel& tail : tails) {
        for (const double stuck : stuck_rates) {
            for (const bool hedged : {false, true}) {
                Row row;
                row.tail = tail.name;
                row.hedged = hedged;
                row.stuck_rate = stuck;
                row.r = bench::run_one(sweep_config(tail, hedged, stuck), workload);
                std::printf("%-10s %-6s %-6.2f %9.1f %9.1f %9.1f %9.1f %8llu %6llu "
                            "%6llu %10.1f %7.2f%%\n",
                            row.tail.c_str(), hedged ? "on" : "off", stuck,
                            row.r.median_response_ms, row.r.p95_response_ms,
                            row.r.p99_response_ms, row.r.p999_response_ms,
                            static_cast<unsigned long long>(row.r.hedges_issued),
                            static_cast<unsigned long long>(row.r.hedges_won),
                            static_cast<unsigned long long>(row.r.cancellations),
                            row.r.wasted_service.millis(),
                            100.0 * wasted_fraction(row.r));
                std::fflush(stdout);
                rows.push_back(std::move(row));
            }
        }
    }

    // Paired p99 deltas: each hedged run against its unhedged twin (same
    // tail, same stuck rate, same seeds) — the headline tail-robustness win.
    std::printf("\n%-10s %-6s %12s %12s %10s\n", "tail", "stuck", "p99 off(ms)",
                "p99 on(ms)", "delta");
    for (std::size_t i = 0; i + 1 < rows.size(); i += 2) {
        const core::RunReport& off = rows[i].r;
        const core::RunReport& on = rows[i + 1].r;
        std::printf("%-10s %-6.2f %12.1f %12.1f %9.1f%%\n", rows[i].tail.c_str(),
                    rows[i].stuck_rate, off.p99_response_ms, on.p99_response_ms,
                    100.0 * (on.p99_response_ms - off.p99_response_ms) /
                        off.p99_response_ms);
    }
    std::printf("\n(hedging pays wasted duplicate service to cut the tail; the\n"
                " tail=none rows bound its overhead when nothing straggles)\n");

    std::ofstream json("BENCH_tail_latency.json");
    json << "{\n"
         << "  \"bench\": \"tail_sweep\",\n"
         << "  \"jobs\": " << jobs << ",\n"
         << "  \"queries\": " << workload.total_queries() << ",\n"
         << "  \"note\": \"virtual-clock only: repeated runs at the same job count "
            "produce a byte-identical file; wasted_fraction is cancelled-loser "
            "service over total disk busy time\",\n"
         << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& row = rows[i];
        const core::RunReport& r = row.r;
        char buf[640];
        std::snprintf(buf, sizeof buf,
                      "    {\"tail\": \"%s\", \"hedged\": %s, \"stuck_rate\": %.2f, "
                      "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
                      "\"p999_ms\": %.3f, \"mean_ms\": %.3f, "
                      "\"hedges_issued\": %llu, \"hedges_won\": %llu, "
                      "\"hedges_lost\": %llu, \"cancellations\": %llu, "
                      "\"wasted_service_ms\": %.3f, \"wasted_fraction\": %.6f, "
                      "\"slow_draws\": %llu, \"stuck_reads\": %llu, "
                      "\"deadline_misses\": %llu}%s\n",
                      row.tail.c_str(), row.hedged ? "true" : "false",
                      row.stuck_rate, r.median_response_ms, r.p95_response_ms,
                      r.p99_response_ms, r.p999_response_ms, r.mean_response_ms,
                      static_cast<unsigned long long>(r.hedges_issued),
                      static_cast<unsigned long long>(r.hedges_won),
                      static_cast<unsigned long long>(r.hedges_lost),
                      static_cast<unsigned long long>(r.cancellations),
                      r.wasted_service.millis(), wasted_fraction(r),
                      static_cast<unsigned long long>(r.disk.slow_draws),
                      static_cast<unsigned long long>(r.faults.stuck_reads),
                      static_cast<unsigned long long>(r.deadline_misses),
                      i + 1 < rows.size() ? "," : "");
        json << buf;
    }
    json << "  ]\n}\n";
    std::printf("\nwrote BENCH_tail_latency.json\n");
    return 0;
}
