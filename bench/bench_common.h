// Shared experiment-harness plumbing for the bench binaries.
//
// Every bench reproduces one table or figure of the paper against the same
// baseline configuration: the paper-scale dataset geometry (1024^3 grid,
// 4096 atoms/step, 31 steps), a 2 GB (256-atom) cache, k = 15, alpha_0 = 0.5,
// and the calibrated synthetic trace. Benches accept an optional job-count
// argument (and honour JAWS_BENCH_JOBS) so CI can run them quickly while the
// recorded results use the full scale.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/engine.h"
#include "workload/generator.h"

namespace jaws::bench {

/// Baseline engine configuration used by every experiment.
inline core::EngineConfig base_config() {
    core::EngineConfig config;  // defaults are already paper-scale
    // Benches report real policy overhead (Table I); tests keep the
    // deterministic virtual tick default.
    config.cache.wall_clock_overhead = true;
    return config;
}

/// Baseline workload spec (the "50k-query week" analogue).
inline workload::WorkloadSpec base_workload_spec() {
    workload::WorkloadSpec spec;
    spec.jobs = 1000;
    spec.seed = 7;
    return spec;
}

/// Job count from argv[1] or JAWS_BENCH_JOBS, defaulting to `fallback`.
inline std::size_t jobs_from_args(int argc, char** argv, std::size_t fallback) {
    if (argc > 1) return std::strtoull(argv[1], nullptr, 10);
    if (const char* env = std::getenv("JAWS_BENCH_JOBS"))
        return std::strtoull(env, nullptr, 10);
    return fallback;
}

/// The five scheduler columns of Fig. 10.
inline core::SchedulerSpec noshare_spec() {
    core::SchedulerSpec s;
    s.kind = core::SchedulerKind::kNoShare;
    return s;
}

inline core::SchedulerSpec liferaft_spec(double alpha) {
    core::SchedulerSpec s;
    s.kind = core::SchedulerKind::kLifeRaft;
    s.liferaft_alpha = alpha;
    return s;
}

/// JAWS_1: two-level + adaptive alpha, no job-awareness.
inline core::SchedulerSpec jaws1_spec(std::size_t k = 15) {
    core::SchedulerSpec s;
    s.kind = core::SchedulerKind::kJaws;
    s.jaws.batch_size_k = k;
    s.jaws.job_aware = false;
    return s;
}

/// JAWS_2: everything on.
inline core::SchedulerSpec jaws2_spec(std::size_t k = 15) {
    core::SchedulerSpec s;
    s.kind = core::SchedulerKind::kJaws;
    s.jaws.batch_size_k = k;
    s.jaws.job_aware = true;
    return s;
}

/// Run one configuration against `workload` and return the report.
inline core::RunReport run_one(const core::EngineConfig& config,
                               const workload::Workload& workload) {
    core::Engine engine(config);
    return engine.run(workload);
}

/// Print a standard table header/row for scheduler comparisons.
inline void print_report_header() {
    std::printf("%-22s %10s %12s %12s %8s %10s %8s\n", "scheduler", "tp(q/s)", "rt_mean(ms)",
                "rt_p95(ms)", "hit%", "reads", "alpha");
}

inline void print_report_row(const core::RunReport& r) {
    std::printf("%-22s %10.3f %12.1f %12.1f %7.1f%% %10llu %8.2f\n",
                r.scheduler_name.c_str(), r.busy_throughput_qps, r.mean_response_ms,
                r.p95_response_ms, 100.0 * r.cache.hit_rate(),
                static_cast<unsigned long long>(r.atom_reads), r.final_alpha);
}

}  // namespace jaws::bench
