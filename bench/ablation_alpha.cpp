// Ablation B — Adaptive age bias versus a grid of fixed alphas.
//
// Sec. V-A's claim: the controller makes incremental throughput/response-time
// trade-offs as saturation changes, so a single JAWS instance tracks the best
// fixed alpha at both ends of the saturation range without manual tuning.
// We run JAWS_2 with fixed alpha in {0, 0.25, 0.5, 0.75, 1} and with the
// adaptive controller, at low and high saturation, and report both metrics.
#include "bench_common.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
    using namespace jaws;
    const std::size_t jobs = bench::jobs_from_args(argc, argv, 200);

    core::EngineConfig base = bench::base_config();
    const field::SyntheticField field(base.field);
    workload::WorkloadSpec wspec = bench::base_workload_spec();
    wspec.jobs = jobs;
    const workload::Workload original =
        workload::generate_workload(wspec, base.grid, field);
    std::printf("# Ablation B: adaptive alpha vs fixed grid; %zu queries\n",
                original.total_queries());

    const double saturations[] = {0.25, 4.0};
    for (const double speedup : saturations) {
        workload::Workload w = original;
        workload::apply_speedup(w, speedup);
        std::printf("\n== speedup %.2f ==\n", speedup);
        std::printf("%-12s %12s %14s %10s\n", "alpha", "tp(q/s)", "rt_mean(s)", "a_end");

        for (const double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
            core::EngineConfig config = base;
            config.scheduler = bench::jaws2_spec();
            config.scheduler.jaws.adaptive_alpha = false;
            config.scheduler.jaws.alpha.initial_alpha = alpha;
            const core::RunReport r = bench::run_one(config, w);
            std::printf("%-12.2f %12.3f %14.1f %10.2f\n", alpha, r.busy_throughput_qps,
                        r.mean_response_ms / 1000.0, r.final_alpha);
            std::fflush(stdout);
        }
        core::EngineConfig config = base;
        config.scheduler = bench::jaws2_spec();  // adaptive on, alpha_0 = 0.5
        const core::RunReport r = bench::run_one(config, w);
        std::printf("%-12s %12.3f %14.1f %10.2f\n", "adaptive", r.busy_throughput_qps,
                    r.mean_response_ms / 1000.0, r.final_alpha);
    }
    std::printf("\n(adaptive should approach the best fixed alpha's throughput when\n"
                " saturated and the best fixed alpha's response time when idle)\n");
    return 0;
}
