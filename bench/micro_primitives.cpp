// Micro-benchmarks of the core primitives (google-benchmark).
//
// Not a paper figure: these pin the per-operation costs behind the
// experiment harnesses — Morton coding, the Needleman-Wunsch alignment, the
// B+ tree access path, replacement-policy operations and workload-queue
// maintenance — so performance regressions in the substrate are visible.
#include <benchmark/benchmark.h>

#include "cache/buffer_cache.h"
#include "cache/lru_k.h"
#include "cache/slru.h"
#include "sched/alignment.h"
#include "sched/workload_manager.h"
#include "storage/bptree.h"
#include "util/morton.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace {

using namespace jaws;

void BM_MortonEncode(benchmark::State& state) {
    util::Rng rng(1);
    std::uint32_t x = 0, y = 0, z = 0;
    for (auto _ : state) {
        x = static_cast<std::uint32_t>(rng()) & 0x1fffff;
        y = x ^ 0x5555;
        z = x ^ 0xaaaa;
        benchmark::DoNotOptimize(util::morton_encode(x, y, z));
    }
}
BENCHMARK(BM_MortonEncode);

void BM_MortonRoundTrip(benchmark::State& state) {
    util::Rng rng(2);
    for (auto _ : state) {
        const std::uint64_t code = rng() & ((1ULL << 63) - 1);
        benchmark::DoNotOptimize(util::morton_encode(util::morton_decode(code)));
    }
}
BENCHMARK(BM_MortonRoundTrip);

void BM_MortonBoxCover(benchmark::State& state) {
    const auto side = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            util::morton_box_cover({0, 0, 0}, {side - 1, side - 1, side - 1}));
    }
    state.SetItemsProcessed(state.iterations() * side * side * side);
}
BENCHMARK(BM_MortonBoxCover)->Arg(4)->Arg(8)->Arg(16);

void BM_BptreeInsert(benchmark::State& state) {
    for (auto _ : state) {
        state.PauseTiming();
        storage::BPlusTree tree;
        util::Rng rng(3);
        state.ResumeTiming();
        for (int i = 0; i < state.range(0); ++i)
            tree.insert(util::AtomKey{rng()}, storage::DiskExtent{0, 1});
        benchmark::DoNotOptimize(tree.size());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BptreeInsert)->Arg(1000)->Arg(10000);

void BM_BptreeFind(benchmark::State& state) {
    storage::BPlusTree tree;
    util::Rng rng(4);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 100000; ++i) {
        keys.push_back(rng());
        tree.insert(util::AtomKey{keys.back()}, storage::DiskExtent{0, 1});
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tree.find(util::AtomKey{keys[i++ % keys.size()]}));
    }
}
BENCHMARK(BM_BptreeFind);

void BM_BptreeScan(benchmark::State& state) {
    storage::BPlusTree tree;
    std::vector<std::pair<util::AtomKey, storage::DiskExtent>> records;
    for (std::uint64_t i = 0; i < 100000; ++i)
        records.emplace_back(util::AtomKey{i}, storage::DiskExtent{i, 1});
    tree.bulk_load(records);
    for (auto _ : state) {
        std::uint64_t sum = 0;
        tree.scan(util::AtomKey{1000},
                  util::AtomKey{1000 + static_cast<std::uint64_t>(state.range(0))},
                  [&](util::AtomKey k, const storage::DiskExtent&) {
                      sum += k.value();
                      return true;
                  });
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BptreeScan)->Arg(100)->Arg(10000);

workload::Job chain_job(std::size_t m, std::uint64_t seed) {
    field::GridSpec grid;
    field::SyntheticField field({seed});
    workload::WorkloadSpec spec;
    spec.jobs = 1;
    spec.seed = seed;
    spec.frac_single_step = 1.0;
    spec.frac_full_span = 0.0;
    spec.frac_ordered_single_step = 1.0;
    spec.ordered_chain_mu = std::log(static_cast<double>(m));
    spec.ordered_chain_sigma = 0.0;
    return workload::generate_workload(spec, grid, field).jobs.front();
}

void BM_NeedlemanWunsch(benchmark::State& state) {
    const auto m = static_cast<std::size_t>(state.range(0));
    const workload::Job a = chain_job(m, 7);
    const workload::Job b = chain_job(m, 8);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sched::align_jobs(a, b));
    }
    state.SetItemsProcessed(state.iterations() * m * m);
}
BENCHMARK(BM_NeedlemanWunsch)->Arg(16)->Arg(64);

void BM_CachePolicyChurn(benchmark::State& state) {
    // Insert/evict churn through a full cache, LRU-K vs SLRU.
    const bool slru = state.range(0) != 0;
    cache::BufferCache cache(
        256, slru ? std::unique_ptr<cache::ReplacementPolicy>(
                        std::make_unique<cache::SlruPolicy>(256))
                  : std::unique_ptr<cache::ReplacementPolicy>(
                        std::make_unique<cache::LruKPolicy>()));
    util::Rng rng(5);
    for (auto _ : state) {
        const storage::AtomId atom{static_cast<std::uint32_t>(rng.uniform_u64(31)),
                                   rng.uniform_u64(4096)};
        if (!cache.lookup(atom)) cache.insert(atom);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CachePolicyChurn)->Arg(0)->Arg(1);

void BM_WorkloadManagerEnqueueDrain(benchmark::State& state) {
    sched::CostConstants cost;
    sched::WorkloadManager manager(cost, nullptr, 0.5);
    util::Rng rng(6);
    std::uint64_t tick = 0;
    for (auto _ : state) {
        sched::SubQuery sub;
        sub.query = ++tick;
        sub.atom = storage::AtomId{static_cast<std::uint32_t>(rng.uniform_u64(31)),
                                   rng.uniform_u64(4096)};
        sub.positions = 100;
        sub.enqueue_time = util::SimTime::from_micros(static_cast<std::int64_t>(tick));
        manager.enqueue(sub);
        if (tick % 8 == 0) {
            const auto batch = manager.pick_two_level_batch(15, sub.enqueue_time);
            for (const auto& atom : batch) benchmark::DoNotOptimize(manager.drain_atom(atom));
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkloadManagerEnqueueDrain);

}  // namespace

BENCHMARK_MAIN();
