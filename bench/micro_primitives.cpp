// Micro-benchmarks of the core primitives (google-benchmark).
//
// Not a paper figure: these pin the per-operation costs behind the
// experiment harnesses — Morton coding, the Needleman-Wunsch alignment, the
// B+ tree access path, replacement-policy operations, workload-queue
// maintenance and the interpolation kernels — so performance regressions in
// the substrate are visible. Running the binary also performs a
// deterministic scalar-vs-batched interpolation sweep and writes
// BENCH_interp_kernel.json (samples/sec per order plus a digests_agree
// flag); CI gates on batched >= scalar for orders >= 4.
#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>

#include "cache/buffer_cache.h"
#include "cache/lru_k.h"
#include "cache/slru.h"
#include "core/metrics.h"
#include "field/batch_interpolator.h"
#include "field/interpolation.h"
#include "sched/alignment.h"
#include "sched/workload_manager.h"
#include "storage/bptree.h"
#include "util/morton.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace {

using namespace jaws;

void BM_MortonEncode(benchmark::State& state) {
    util::Rng rng(1);
    std::uint32_t x = 0, y = 0, z = 0;
    for (auto _ : state) {
        x = static_cast<std::uint32_t>(rng()) & 0x1fffff;
        y = x ^ 0x5555;
        z = x ^ 0xaaaa;
        benchmark::DoNotOptimize(util::morton_encode(x, y, z));
    }
}
BENCHMARK(BM_MortonEncode);

void BM_MortonRoundTrip(benchmark::State& state) {
    util::Rng rng(2);
    for (auto _ : state) {
        const std::uint64_t code = rng() & ((1ULL << 63) - 1);
        benchmark::DoNotOptimize(util::morton_encode(util::morton_decode(code)));
    }
}
BENCHMARK(BM_MortonRoundTrip);

void BM_MortonBoxCover(benchmark::State& state) {
    const auto side = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            util::morton_box_cover({0, 0, 0}, {side - 1, side - 1, side - 1}));
    }
    state.SetItemsProcessed(state.iterations() * side * side * side);
}
BENCHMARK(BM_MortonBoxCover)->Arg(4)->Arg(8)->Arg(16);

void BM_BptreeInsert(benchmark::State& state) {
    for (auto _ : state) {
        state.PauseTiming();
        storage::BPlusTree tree;
        util::Rng rng(3);
        state.ResumeTiming();
        for (int i = 0; i < state.range(0); ++i)
            tree.insert(util::AtomKey{rng()}, storage::DiskExtent{0, 1});
        benchmark::DoNotOptimize(tree.size());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BptreeInsert)->Arg(1000)->Arg(10000);

void BM_BptreeFind(benchmark::State& state) {
    storage::BPlusTree tree;
    util::Rng rng(4);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 100000; ++i) {
        keys.push_back(rng());
        tree.insert(util::AtomKey{keys.back()}, storage::DiskExtent{0, 1});
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tree.find(util::AtomKey{keys[i++ % keys.size()]}));
    }
}
BENCHMARK(BM_BptreeFind);

void BM_BptreeScan(benchmark::State& state) {
    storage::BPlusTree tree;
    std::vector<std::pair<util::AtomKey, storage::DiskExtent>> records;
    for (std::uint64_t i = 0; i < 100000; ++i)
        records.emplace_back(util::AtomKey{i}, storage::DiskExtent{i, 1});
    tree.bulk_load(records);
    for (auto _ : state) {
        std::uint64_t sum = 0;
        tree.scan(util::AtomKey{1000},
                  util::AtomKey{1000 + static_cast<std::uint64_t>(state.range(0))},
                  [&](util::AtomKey k, const storage::DiskExtent&) {
                      sum += k.value();
                      return true;
                  });
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BptreeScan)->Arg(100)->Arg(10000);

workload::Job chain_job(std::size_t m, std::uint64_t seed) {
    field::GridSpec grid;
    field::SyntheticField field({seed});
    workload::WorkloadSpec spec;
    spec.jobs = 1;
    spec.seed = seed;
    spec.frac_single_step = 1.0;
    spec.frac_full_span = 0.0;
    spec.frac_ordered_single_step = 1.0;
    spec.ordered_chain_mu = std::log(static_cast<double>(m));
    spec.ordered_chain_sigma = 0.0;
    return workload::generate_workload(spec, grid, field).jobs.front();
}

void BM_NeedlemanWunsch(benchmark::State& state) {
    const auto m = static_cast<std::size_t>(state.range(0));
    const workload::Job a = chain_job(m, 7);
    const workload::Job b = chain_job(m, 8);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sched::align_jobs(a, b));
    }
    state.SetItemsProcessed(state.iterations() * m * m);
}
BENCHMARK(BM_NeedlemanWunsch)->Arg(16)->Arg(64);

void BM_CachePolicyChurn(benchmark::State& state) {
    // Insert/evict churn through a full cache, LRU-K vs SLRU.
    const bool slru = state.range(0) != 0;
    cache::BufferCache cache(
        256, slru ? std::unique_ptr<cache::ReplacementPolicy>(
                        std::make_unique<cache::SlruPolicy>(256))
                  : std::unique_ptr<cache::ReplacementPolicy>(
                        std::make_unique<cache::LruKPolicy>()));
    util::Rng rng(5);
    for (auto _ : state) {
        const storage::AtomId atom{static_cast<std::uint32_t>(rng.uniform_u64(31)),
                                   rng.uniform_u64(4096)};
        if (!cache.lookup(atom)) cache.insert(atom);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CachePolicyChurn)->Arg(0)->Arg(1);

void BM_WorkloadManagerEnqueueDrain(benchmark::State& state) {
    sched::CostConstants cost;
    sched::WorkloadManager manager(cost, nullptr, 0.5);
    util::Rng rng(6);
    std::uint64_t tick = 0;
    for (auto _ : state) {
        sched::SubQuery sub;
        sub.query = ++tick;
        sub.atom = storage::AtomId{static_cast<std::uint32_t>(rng.uniform_u64(31)),
                                   rng.uniform_u64(4096)};
        sub.positions = 100;
        sub.enqueue_time = util::SimTime::from_micros(static_cast<std::int64_t>(tick));
        manager.enqueue(sub);
        if (tick % 8 == 0) {
            const auto batch = manager.pick_two_level_batch(15, sub.enqueue_time);
            for (const auto& atom : batch) benchmark::DoNotOptimize(manager.drain_atom(atom));
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkloadManagerEnqueueDrain);

// --- interpolation kernels: scalar vs batched ------------------------------

/// Production-like fixture: one atom_side=64 ghost=4 block (the paper-scale
/// geometry) and positions drawn uniformly inside the atom.
struct InterpFixture {
    static field::GridSpec interp_grid() {
        field::GridSpec g;
        g.voxels_per_side = 256;
        g.atom_side = 64;
        g.ghost = 4;
        g.timesteps = 2;
        return g;
    }

    InterpFixture()
        : grid(interp_grid()),
          field({.seed = 9, .modes = 6}),
          atom{1, 2, 3},
          block(grid, field, atom, 0) {
        util::Rng rng(11);
        const double extent = 1.0 / grid.atoms_per_side();
        positions.resize(20000);
        for (auto& p : positions)
            p = {(atom.x + rng.uniform()) * extent, (atom.y + rng.uniform()) * extent,
                 (atom.z + rng.uniform()) * extent};
    }

    field::GridSpec grid;
    field::SyntheticField field;
    util::Coord3 atom;
    field::VoxelBlock block;
    std::vector<field::Vec3> positions;
};

InterpFixture& interp_fixture() {
    static InterpFixture f;
    return f;
}

constexpr field::InterpOrder kInterpOrders[] = {
    field::InterpOrder::kLinear, field::InterpOrder::kLag4, field::InterpOrder::kLag6,
    field::InterpOrder::kLag8};

void BM_InterpScalar(benchmark::State& state) {
    const InterpFixture& f = interp_fixture();
    const auto order = static_cast<field::InterpOrder>(state.range(0));
    std::vector<field::FlowSample> out(f.positions.size());
    for (auto _ : state) {
        for (std::size_t i = 0; i < f.positions.size(); ++i)
            out[i] = field::interpolate(f.grid, f.block, f.atom, f.positions[i], order);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * f.positions.size());
}
BENCHMARK(BM_InterpScalar)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

void BM_InterpBatched(benchmark::State& state) {
    const InterpFixture& f = interp_fixture();
    const auto order = static_cast<field::InterpOrder>(state.range(0));
    field::BatchInterpolator batch;
    std::vector<field::FlowSample> out;
    for (auto _ : state) {
        batch.evaluate(f.grid, f.block, f.atom, f.positions, order, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * f.positions.size());
}
BENCHMARK(BM_InterpBatched)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

std::uint64_t sample_digest(const std::vector<field::FlowSample>& samples) {
    std::uint64_t h = core::kFnvOffset;
    for (const field::FlowSample& s : samples) {
        const double v[4] = {s.velocity.x, s.velocity.y, s.velocity.z, s.pressure};
        h = core::fnv1a64(h, v, sizeof v);
    }
    return h;
}

/// Deterministic scalar-vs-batched sweep; returns samples/sec as the best of
/// `reps` timed passes (best-of filters scheduler noise on shared CI hosts).
template <typename F>
double best_samples_per_sec(int reps, std::size_t n, F&& pass) {
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        pass();
        const double dt =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
        if (dt < best) best = dt;
    }
    return static_cast<double>(n) / best;
}

int run_interp_kernel_sweep() {
    const InterpFixture& f = interp_fixture();
    const std::size_t n = f.positions.size();
    std::printf("interpolation kernel sweep: %zu positions, atom_side=%u ghost=%u\n\n",
                n, f.grid.atom_side, f.grid.ghost);
    std::printf("%-8s %14s %14s %9s %12s\n", "order", "scalar(s/s)", "batched(s/s)",
                "speedup", "bit-ident");

    struct Row {
        int order;
        double scalar_sps, batched_sps;
        bool identical;
    };
    std::vector<Row> rows;
    bool digests_agree = true;
    field::BatchInterpolator batch;
    for (const field::InterpOrder order : kInterpOrders) {
        std::vector<field::FlowSample> scalar_out(n), batched_out;
        const double scalar_sps = best_samples_per_sec(5, n, [&] {
            for (std::size_t i = 0; i < n; ++i)
                scalar_out[i] =
                    field::interpolate(f.grid, f.block, f.atom, f.positions[i], order);
        });
        const double batched_sps = best_samples_per_sec(
            5, n, [&] { batch.evaluate(f.grid, f.block, f.atom, f.positions, order, batched_out); });
        const bool identical = sample_digest(scalar_out) == sample_digest(batched_out);
        digests_agree = digests_agree && identical;
        rows.push_back({static_cast<int>(order), scalar_sps, batched_sps, identical});
        std::printf("%-8d %14.0f %14.0f %8.2fx %12s\n", static_cast<int>(order),
                    scalar_sps, batched_sps, batched_sps / scalar_sps,
                    identical ? "yes" : "NO");
    }

    std::ofstream json("BENCH_interp_kernel.json");
    json << "{\n"
         << "  \"bench\": \"interp_kernel\",\n"
         << "  \"positions\": " << n << ",\n"
         << "  \"atom_side\": " << f.grid.atom_side << ",\n"
         << "  \"ghost\": " << f.grid.ghost << ",\n"
         << "  \"digests_agree\": " << (digests_agree ? "true" : "false") << ",\n"
         << "  \"note\": \"samples/sec is the best of 5 single-thread passes over "
            "one materialized production-geometry block; digests_agree requires the "
            "batched kernel to be bit-identical to the scalar kernel at every "
            "order\",\n"
         << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "    {\"order\": %d, \"scalar_sps\": %.0f, \"batched_sps\": %.0f, "
                      "\"speedup\": %.3f, \"bit_identical\": %s}%s\n",
                      rows[i].order, rows[i].scalar_sps, rows[i].batched_sps,
                      rows[i].batched_sps / rows[i].scalar_sps,
                      rows[i].identical ? "true" : "false", i + 1 < rows.size() ? "," : "");
        json << buf;
    }
    json << "  ]\n}\n";
    std::printf("\nwrote BENCH_interp_kernel.json\n\n");
    return digests_agree ? 0 : 1;
}

}  // namespace

// The interp sweep runs before the google-benchmark registrations so CI gets
// BENCH_interp_kernel.json from a plain `./micro_primitives` invocation; a
// digest mismatch fails the binary even if every micro-bench runs clean.
int main(int argc, char** argv) {
    const int sweep_rc = run_interp_kernel_sweep();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return sweep_rc;
}
