// Fault sweep — resilience of the scheduler under an unreliable substrate.
//
// The paper's evaluation assumes disks and nodes that never fail; this
// harness measures how gracefully the simulated stack degrades when they do.
// Three experiments:
//   1. transient read-error sweep: throughput/response/retry cost vs error
//      rate under bounded-exponential-backoff recovery;
//   2. straggler sweep: heavy-tailed latency spikes (no data loss) and their
//      effect on response time;
//   3. failover demo: a node death mid-run with and without replication,
//      reporting lost work vs the degraded makespan of a replica re-run.
// Deterministic: a fixed fault seed makes every row exactly reproducible.
#include "bench_common.h"

#include "core/cluster.h"

namespace {

void print_fault_header() {
    // service(s) is rendered disk work; fault(s) is injector-added delay —
    // the two are disjoint, so their drift apart is the fault tax itself.
    std::printf("%-10s %10s %12s %10s %10s %10s %12s %11s %10s\n", "rate", "tp(q/s)",
                "rt_mean(ms)", "retries", "failures", "degraded", "backoff(s)",
                "service(s)", "fault(s)");
}

void print_fault_row(double rate, const jaws::core::RunReport& r) {
    std::printf("%-10.2f %10.3f %12.1f %10llu %10llu %10llu %12.2f %11.1f %10.1f\n", rate,
                r.busy_throughput_qps, r.mean_response_ms,
                static_cast<unsigned long long>(r.read_retries),
                static_cast<unsigned long long>(r.read_failures),
                static_cast<unsigned long long>(r.degraded_queries),
                r.retry_backoff_time.seconds(), r.disk.service_time.seconds(),
                r.disk.fault_delay.seconds());
    std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
    using namespace jaws;
    const std::size_t jobs = bench::jobs_from_args(argc, argv, 200);

    core::EngineConfig base = bench::base_config();
    base.scheduler = bench::jaws2_spec();
    base.faults.seed = 0xFA17;
    const field::SyntheticField field(base.field);
    workload::WorkloadSpec wspec = bench::base_workload_spec();
    wspec.jobs = jobs;
    const workload::Workload workload = workload::generate_workload(wspec, base.grid, field);
    std::printf("# Fault sweep: JAWS_2, %zu queries, fault seed 0x%llx\n\n",
                workload.total_queries(),
                static_cast<unsigned long long>(base.faults.seed));

    // --- 1. transient read errors -----------------------------------------
    std::printf("[transient read errors, %zu-attempt retry with backoff]\n",
                base.retry.max_attempts);
    print_fault_header();
    for (const double rate : {0.0, 0.01, 0.05, 0.1, 0.2, 0.4}) {
        core::EngineConfig config = base;
        config.faults.transient_error_rate = rate;
        print_fault_row(rate, bench::run_one(config, workload));
    }

    // --- 2. straggler disk (latency spikes) -------------------------------
    std::printf("\n[latency spikes, mean %.0f ms, no data loss]\n", 50.0);
    print_fault_header();
    for (const double rate : {0.0, 0.02, 0.05, 0.1}) {
        core::EngineConfig config = base;
        config.faults.latency_spike_rate = rate;
        config.faults.latency_spike_mean_ms = 50.0;
        print_fault_row(rate, bench::run_one(config, workload));
    }

    // --- 3. node death and failover ---------------------------------------
    std::printf("\n[node death at t=60s on a 4-node cluster]\n");
    std::printf("%-14s %12s %10s %10s %10s %12s\n", "replication", "makespan(s)", "failovers",
                "requeued", "lost", "tp(q/s)");
    for (const std::size_t replication : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
        core::ClusterConfig cluster_config;
        cluster_config.node = base;
        cluster_config.nodes = 4;
        cluster_config.replication = replication;
        cluster_config.node.faults.node_down.push_back(
            storage::NodeDownEvent{util::NodeIndex{1}, util::SimTime::from_seconds(60.0)});
        core::TurbulenceCluster cluster(cluster_config);
        const core::ClusterReport r = cluster.run(workload);
        std::printf("%-14zu %12.1f %10zu %10zu %10zu %12.3f\n", replication,
                    r.makespan.seconds(), r.failovers, r.requeued_queries, r.lost_queries,
                    r.total_throughput_qps);
        std::fflush(stdout);
    }
    std::printf("\n(replication 1 drops the dead node's tail; replication >= 2 finishes\n"
                " every query at the cost of a longer, explicitly degraded makespan)\n");
    return 0;
}
