// Ablation A — Cost and payoff of the gating machinery as jobs scale.
//
// The paper bounds the dynamic-program phase at O(n^2 m^2) and the greedy
// merge at O(n^3 m^2) but argues the overhead is low in practice because the
// graph is sparse and completed queries are pruned. This ablation measures
// (1) the wall-clock cost of incrementally merging n concurrent ordered jobs
// of m queries each into the precedence graph, and (2) the scheduling payoff
// (edges admitted, atom reads saved) of gating on a burst-structured
// workload, as the number of jobs grows.
#include <chrono>

#include "bench_common.h"
#include "sched/precedence_graph.h"

namespace {

using namespace jaws;

/// n near-identical ordered jobs of m queries over one hotspot trajectory.
workload::Workload tracking_campaign(std::size_t n, std::size_t m,
                                     const field::GridSpec& grid,
                                     const field::SyntheticField& field) {
    workload::WorkloadSpec spec;
    spec.jobs = n;
    spec.seed = 99;
    spec.mean_jobs_per_burst = 4.0;
    spec.frac_single_step = 1.0;
    spec.frac_full_span = 0.0;
    spec.frac_ordered_single_step = 1.0;  // every job is an ordered chain
    spec.ordered_chain_mu = std::log(static_cast<double>(m));
    spec.ordered_chain_sigma = 0.0;
    spec.hotspots = 2;
    return workload::generate_workload(spec, grid, field);
}

}  // namespace

int main(int argc, char** argv) {
    const std::size_t max_jobs = bench::jobs_from_args(argc, argv, 32);
    core::EngineConfig base = bench::base_config();
    const field::SyntheticField field(base.field);

    std::printf("# Ablation A: gating graph cost/payoff vs number of jobs (m = 24)\n");
    std::printf("%8s %10s %12s %12s %14s\n", "jobs", "edges", "aligns", "merge(ms)",
                "reads saved");
    for (std::size_t n = 2; n <= max_jobs; n *= 2) {
        const workload::Workload w = tracking_campaign(n, 24, base.grid, field);

        // (1) pure graph cost: merge all jobs, measure wall time.
        sched::PrecedenceGraph graph(true);
        const auto start = std::chrono::steady_clock::now();
        for (const auto& job : w.jobs) graph.add_job(job);
        const double merge_ms =
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                      start)
                .count();

        // (2) payoff: full engine run with and without job-awareness.
        core::EngineConfig with = base;
        with.scheduler = bench::jaws2_spec();
        const core::RunReport r2 = bench::run_one(with, w);
        core::EngineConfig without = base;
        without.scheduler = bench::jaws1_spec();
        const core::RunReport r1 = bench::run_one(without, w);

        std::printf("%8zu %10zu %12zu %12.2f %14lld\n", n, graph.stats().edges_admitted,
                    graph.stats().alignments_run, merge_ms,
                    static_cast<long long>(r1.atom_reads) -
                        static_cast<long long>(r2.atom_reads));
        std::fflush(stdout);
    }
    std::printf("\n(merge cost should grow ~quadratically in jobs and stay in the\n"
                " milliseconds; reads saved should grow with job count)\n");
    return 0;
}
