// Overlapped-I/O ablation — what the event kernel's pipeline buys.
//
// The engine models a disk with `io_depth` service channels and a CPU pool
// with `compute_workers` workers; batch items flow read -> evaluate with up
// to io_depth items in flight, so deeper pipelines hide read latency behind
// evaluation of earlier items. This harness sweeps io_depth x compute_workers
// on a dense, cold-cache workload (the I/O-bound regime) and reports the
// makespan alongside the kernel's resource accounting: disk/CPU utilization
// and the fraction of the run where I/O and compute proceeded
// simultaneously. io_depth = 1, compute_workers = 1 is bit-identical to the
// pre-kernel serial engine and anchors the comparison.
//
// The second section measures the *real* parallel-evaluation path: a
// compute-bound materialized fixture where sub-query interpolation runs on
// util::ThreadPool, timed with util::wall_clock_ns (bench-only; tests stay on
// virtual time). Results land in BENCH_parallel_eval.json next to stdout.
//
// Also emits a machine-readable CSV block (prefixed `csv,`) for plotting.
#include <fstream>
#include <thread>

#include "bench_common.h"
#include "util/wallclock.h"

namespace {

jaws::core::EngineConfig overlap_config(std::size_t io_depth, std::size_t workers) {
    jaws::core::EngineConfig config = jaws::bench::base_config();
    config.scheduler = jaws::bench::jaws2_spec();
    config.io_depth = io_depth;
    config.compute_workers = workers;
    return config;
}

// Compute-bound materialized fixture: small grid, every query carries
// explicit positions, so real Lagrange interpolation dominates the run's
// wall time and the evaluation pool is the binding resource.
jaws::core::EngineConfig parallel_eval_config(std::size_t workers, bool pooled) {
    jaws::core::EngineConfig config;
    config.scheduler = jaws::bench::jaws2_spec();
    config.grid.voxels_per_side = 128;
    config.grid.atom_side = 32;
    config.grid.ghost = 4;
    config.grid.timesteps = 4;
    config.field.modes = 4;
    config.cache.capacity_atoms = 16;
    config.run_length = 25;
    config.io_depth = 2;
    config.compute_workers = workers;
    config.materialize_data = true;
    config.eval.parallel = pooled;
    config.eval.wall_clock_timing = true;
    return config;
}

struct EvalRow {
    std::size_t workers;
    bool pooled;
    double wall_ms;
    double wall_speedup;
    double eval_ms;
    double modeled_s;
    double modeled_speedup;
    std::uint64_t eval_tasks;
    std::uint64_t samples;
    std::uint64_t digest;
};

}  // namespace

int main(int argc, char** argv) {
    using namespace jaws;
    const std::size_t jobs = bench::jobs_from_args(argc, argv, 200);

    core::EngineConfig base = overlap_config(1, 1);
    const field::SyntheticField field(base.field);
    // Dense arrivals keep a backlog of due queries, so the disk rarely waits
    // on the workload and the pipeline depth is the binding constraint.
    workload::WorkloadSpec wspec = bench::base_workload_spec();
    wspec.jobs = jobs;
    wspec.mean_burst_gap_s = 0.05;
    wspec.mean_intra_burst_gap_s = 0.05;
    wspec.mean_think_time_s = 0.01;
    wspec.frac_single_step = 1.0;
    wspec.frac_ordered_single_step = 0.0;
    const workload::Workload workload = workload::generate_workload(wspec, base.grid, field);
    std::printf("# Overlap ablation: JAWS_2, %zu queries, dense unordered arrivals\n\n",
                workload.total_queries());

    const std::size_t depths[] = {1, 2, 4, 8};
    const std::size_t worker_counts[] = {1, 2};
    std::printf("%-8s %-8s %12s %10s %10s %10s %10s %10s\n", "depth", "workers",
                "makespan(s)", "tp(q/s)", "disk_util", "cpu_util", "overlap", "speedup");
    std::vector<std::string> csv;
    csv.push_back("csv,io_depth,compute_workers,makespan_s,throughput_qps,disk_util,"
                  "cpu_util,overlap_fraction,prefetch_aborted");
    double serial_makespan = 0.0;
    for (const std::size_t workers : worker_counts) {
        for (const std::size_t depth : depths) {
            const core::RunReport r =
                bench::run_one(overlap_config(depth, workers), workload);
            if (depth == 1 && workers == 1) serial_makespan = r.makespan.seconds();
            std::printf("%-8zu %-8zu %12.1f %10.3f %9.1f%% %9.1f%% %9.1f%% %9.2fx\n",
                        depth, workers, r.makespan.seconds(), r.throughput_qps,
                        100.0 * r.disk_utilization, 100.0 * r.cpu_utilization,
                        100.0 * r.overlap_fraction,
                        serial_makespan / r.makespan.seconds());
            std::fflush(stdout);
            char row[256];
            std::snprintf(row, sizeof row, "csv,%zu,%zu,%.6f,%.6f,%.6f,%.6f,%.6f,%llu",
                          depth, workers, r.makespan.seconds(), r.throughput_qps,
                          r.disk_utilization, r.cpu_utilization, r.overlap_fraction,
                          static_cast<unsigned long long>(r.prefetch_aborted));
            csv.push_back(row);
        }
    }
    std::printf("\n");
    for (const std::string& row : csv) std::printf("%s\n", row.c_str());
    std::printf("\n(depth 1 / 1 worker reproduces the serial engine exactly; speedup\n"
                " saturates once the slower resource is the bottleneck)\n");

    // ------------------------------------------------------------------
    // Parallel real evaluation: wall-clock sweep over compute_workers.
    // ------------------------------------------------------------------
    const std::size_t eval_jobs = jobs >= 200 ? 8 : (jobs > 0 ? jobs : 8);
    core::EngineConfig eval_base = parallel_eval_config(1, /*pooled=*/false);
    workload::WorkloadSpec espec;
    espec.jobs = eval_jobs;
    espec.seed = 5;
    // Heavy per-query interpolation (median ~8100 positions instead of the
    // trace's ~490) so the real Lagrange kernels dominate the wall time
    // (~80% of the run) and the pool is the binding resource.
    espec.positions_mu = 9.0;
    espec.min_positions = 4000;
    espec.max_positions = 60000;
    const field::SyntheticField efield(eval_base.field);
    workload::Workload ework = workload::generate_workload(espec, eval_base.grid, efield);
    workload::materialize_positions(ework, eval_base.grid, /*seed=*/17);

    std::printf("\n# Parallel evaluation: %zu jobs, materialized positions, "
                "%u hardware threads\n\n",
                eval_jobs, std::thread::hardware_concurrency());
    std::printf("%-8s %-8s %12s %10s %12s %12s %10s %12s\n", "workers", "pooled",
                "wall(ms)", "speedup", "eval(ms)", "modeled(s)", "m.speedup",
                "samples");

    std::vector<EvalRow> rows;
    const auto timed_run = [&](std::size_t workers, bool pooled) {
        const core::EngineConfig cfg = parallel_eval_config(workers, pooled);
        core::Engine engine(cfg);
        const std::uint64_t t0 = util::wall_clock_ns();
        const core::RunReport r = engine.run(ework);
        const std::uint64_t t1 = util::wall_clock_ns();
        EvalRow row;
        row.workers = workers;
        row.pooled = pooled;
        row.wall_ms = static_cast<double>(t1 - t0) / 1e6;
        row.eval_ms = static_cast<double>(r.eval_wall_ns) / 1e6;
        row.modeled_s = r.makespan.seconds();
        row.eval_tasks = r.eval_tasks;
        row.samples = r.samples_evaluated;
        row.digest = r.sample_digest;
        return row;
    };

    // The trace legitimately differs across worker counts (more modeled CPU
    // channels change the schedule); the invariant is pooled == inline at
    // the SAME count, so the sweep runs both at every count.
    double base_wall = 0.0, base_modeled = 0.0;
    bool digests_agree = true;
    for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}, std::size_t{8}}) {
        EvalRow inline_row = timed_run(workers, /*pooled=*/false);
        EvalRow pooled_row = timed_run(workers, /*pooled=*/true);
        if (workers == 1) {
            base_wall = inline_row.wall_ms;
            base_modeled = inline_row.modeled_s;
        }
        if (pooled_row.digest != inline_row.digest ||
            pooled_row.samples != inline_row.samples)
            digests_agree = false;
        rows.push_back(inline_row);
        rows.push_back(pooled_row);
    }
    for (EvalRow& row : rows) {
        row.wall_speedup = base_wall / row.wall_ms;
        row.modeled_speedup = base_modeled / row.modeled_s;
        std::printf("%-8zu %-8s %12.1f %9.2fx %12.1f %12.3f %9.2fx %12llu\n",
                    row.workers, row.pooled ? "yes" : "no", row.wall_ms,
                    row.wall_speedup, row.eval_ms, row.modeled_s,
                    row.modeled_speedup, static_cast<unsigned long long>(row.samples));
    }
    std::printf("\n(each pooled row must reproduce its inline twin's samples and digest;\n"
                " wall speedup is bounded by the machine's hardware threads)\n");
    if (!digests_agree)
        std::printf("WARNING: a pooled digest diverged from its inline twin!\n");

    std::ofstream json("BENCH_parallel_eval.json");
    json << "{\n"
         << "  \"bench\": \"parallel_eval\",\n"
         << "  \"jobs\": " << eval_jobs << ",\n"
         << "  \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n"
         << "  \"digests_agree\": " << (digests_agree ? "true" : "false") << ",\n"
         << "  \"note\": \"digests_agree compares each pooled run to the inline run "
            "at the same worker count; wall speedup is capped by hardware_threads — "
            "on machines with fewer cores than workers the modeled speedup shows "
            "the schedule-level scaling\",\n"
         << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const EvalRow& row = rows[i];
        char buf[512];
        std::snprintf(buf, sizeof buf,
                      "    {\"compute_workers\": %zu, \"pooled\": %s, "
                      "\"wall_ms\": %.3f, \"wall_speedup\": %.3f, "
                      "\"eval_wall_ms\": %.3f, "
                      "\"modeled_makespan_s\": %.6f, \"modeled_speedup\": %.3f, "
                      "\"eval_tasks\": %llu, \"samples\": %llu, "
                      "\"digest\": \"0x%llx\"}%s\n",
                      row.workers, row.pooled ? "true" : "false", row.wall_ms,
                      row.wall_speedup, row.eval_ms, row.modeled_s, row.modeled_speedup,
                      static_cast<unsigned long long>(row.eval_tasks),
                      static_cast<unsigned long long>(row.samples),
                      static_cast<unsigned long long>(row.digest),
                      i + 1 < rows.size() ? "," : "");
        json << buf;
    }
    json << "  ]\n}\n";
    std::printf("\nwrote BENCH_parallel_eval.json\n");
    return 0;
}
