// Overlapped-I/O ablation — what the event kernel's pipeline buys.
//
// The engine models a disk with `io_depth` service channels and a CPU pool
// with `compute_workers` workers; batch items flow read -> evaluate with up
// to io_depth items in flight, so deeper pipelines hide read latency behind
// evaluation of earlier items. This harness sweeps io_depth x compute_workers
// on a dense, cold-cache workload (the I/O-bound regime) and reports the
// makespan alongside the kernel's resource accounting: disk/CPU utilization
// and the fraction of the run where I/O and compute proceeded
// simultaneously. io_depth = 1, compute_workers = 1 is bit-identical to the
// pre-kernel serial engine and anchors the comparison.
//
// Also emits a machine-readable CSV block (prefixed `csv,`) for plotting.
#include "bench_common.h"

namespace {

jaws::core::EngineConfig overlap_config(std::size_t io_depth, std::size_t workers) {
    jaws::core::EngineConfig config = jaws::bench::base_config();
    config.scheduler = jaws::bench::jaws2_spec();
    config.io_depth = io_depth;
    config.compute_workers = workers;
    return config;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace jaws;
    const std::size_t jobs = bench::jobs_from_args(argc, argv, 200);

    core::EngineConfig base = overlap_config(1, 1);
    const field::SyntheticField field(base.field);
    // Dense arrivals keep a backlog of due queries, so the disk rarely waits
    // on the workload and the pipeline depth is the binding constraint.
    workload::WorkloadSpec wspec = bench::base_workload_spec();
    wspec.jobs = jobs;
    wspec.mean_burst_gap_s = 0.05;
    wspec.mean_intra_burst_gap_s = 0.05;
    wspec.mean_think_time_s = 0.01;
    wspec.frac_single_step = 1.0;
    wspec.frac_ordered_single_step = 0.0;
    const workload::Workload workload = workload::generate_workload(wspec, base.grid, field);
    std::printf("# Overlap ablation: JAWS_2, %zu queries, dense unordered arrivals\n\n",
                workload.total_queries());

    const std::size_t depths[] = {1, 2, 4, 8};
    const std::size_t worker_counts[] = {1, 2};
    std::printf("%-8s %-8s %12s %10s %10s %10s %10s %10s\n", "depth", "workers",
                "makespan(s)", "tp(q/s)", "disk_util", "cpu_util", "overlap", "speedup");
    std::vector<std::string> csv;
    csv.push_back("csv,io_depth,compute_workers,makespan_s,throughput_qps,disk_util,"
                  "cpu_util,overlap_fraction,prefetch_aborted");
    double serial_makespan = 0.0;
    for (const std::size_t workers : worker_counts) {
        for (const std::size_t depth : depths) {
            const core::RunReport r =
                bench::run_one(overlap_config(depth, workers), workload);
            if (depth == 1 && workers == 1) serial_makespan = r.makespan.seconds();
            std::printf("%-8zu %-8zu %12.1f %10.3f %9.1f%% %9.1f%% %9.1f%% %9.2fx\n",
                        depth, workers, r.makespan.seconds(), r.throughput_qps,
                        100.0 * r.disk_utilization, 100.0 * r.cpu_utilization,
                        100.0 * r.overlap_fraction,
                        serial_makespan / r.makespan.seconds());
            std::fflush(stdout);
            char row[256];
            std::snprintf(row, sizeof row, "csv,%zu,%zu,%.6f,%.6f,%.6f,%.6f,%.6f,%llu",
                          depth, workers, r.makespan.seconds(), r.throughput_qps,
                          r.disk_utilization, r.cpu_utilization, r.overlap_fraction,
                          static_cast<unsigned long long>(r.prefetch_aborted));
            csv.push_back(row);
        }
    }
    std::printf("\n");
    for (const std::string& row : csv) std::printf("%s\n", row.c_str());
    std::printf("\n(depth 1 / 1 worker reproduces the serial engine exactly; speedup\n"
                " saturates once the slower resource is the bottleneck)\n");
    return 0;
}
