file(REMOVE_RECURSE
  "CMakeFiles/particle_tracker_test.dir/particle_tracker_test.cpp.o"
  "CMakeFiles/particle_tracker_test.dir/particle_tracker_test.cpp.o.d"
  "particle_tracker_test"
  "particle_tracker_test.pdb"
  "particle_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/particle_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
