# Empty dependencies file for particle_tracker_test.
# This may be replaced when dependencies are built.
