# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for precedence_graph_test.
