file(REMOVE_RECURSE
  "CMakeFiles/precedence_graph_test.dir/precedence_graph_test.cpp.o"
  "CMakeFiles/precedence_graph_test.dir/precedence_graph_test.cpp.o.d"
  "precedence_graph_test"
  "precedence_graph_test.pdb"
  "precedence_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precedence_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
