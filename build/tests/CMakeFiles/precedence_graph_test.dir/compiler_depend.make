# Empty compiler generated dependencies file for precedence_graph_test.
# This may be replaced when dependencies are built.
