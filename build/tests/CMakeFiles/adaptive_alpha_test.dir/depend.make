# Empty dependencies file for adaptive_alpha_test.
# This may be replaced when dependencies are built.
