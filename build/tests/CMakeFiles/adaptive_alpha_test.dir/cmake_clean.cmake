file(REMOVE_RECURSE
  "CMakeFiles/adaptive_alpha_test.dir/adaptive_alpha_test.cpp.o"
  "CMakeFiles/adaptive_alpha_test.dir/adaptive_alpha_test.cpp.o.d"
  "adaptive_alpha_test"
  "adaptive_alpha_test.pdb"
  "adaptive_alpha_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_alpha_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
