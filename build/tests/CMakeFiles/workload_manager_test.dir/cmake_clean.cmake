file(REMOVE_RECURSE
  "CMakeFiles/workload_manager_test.dir/workload_manager_test.cpp.o"
  "CMakeFiles/workload_manager_test.dir/workload_manager_test.cpp.o.d"
  "workload_manager_test"
  "workload_manager_test.pdb"
  "workload_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
