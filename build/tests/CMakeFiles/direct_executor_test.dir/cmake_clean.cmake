file(REMOVE_RECURSE
  "CMakeFiles/direct_executor_test.dir/direct_executor_test.cpp.o"
  "CMakeFiles/direct_executor_test.dir/direct_executor_test.cpp.o.d"
  "direct_executor_test"
  "direct_executor_test.pdb"
  "direct_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/direct_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
