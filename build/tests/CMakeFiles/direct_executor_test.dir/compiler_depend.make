# Empty compiler generated dependencies file for direct_executor_test.
# This may be replaced when dependencies are built.
