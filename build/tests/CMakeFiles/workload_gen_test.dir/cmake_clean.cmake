file(REMOVE_RECURSE
  "CMakeFiles/workload_gen_test.dir/workload_gen_test.cpp.o"
  "CMakeFiles/workload_gen_test.dir/workload_gen_test.cpp.o.d"
  "workload_gen_test"
  "workload_gen_test.pdb"
  "workload_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
