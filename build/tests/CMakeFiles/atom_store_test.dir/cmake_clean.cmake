file(REMOVE_RECURSE
  "CMakeFiles/atom_store_test.dir/atom_store_test.cpp.o"
  "CMakeFiles/atom_store_test.dir/atom_store_test.cpp.o.d"
  "atom_store_test"
  "atom_store_test.pdb"
  "atom_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atom_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
