# Empty dependencies file for atom_store_test.
# This may be replaced when dependencies are built.
