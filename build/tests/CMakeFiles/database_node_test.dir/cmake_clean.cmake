file(REMOVE_RECURSE
  "CMakeFiles/database_node_test.dir/database_node_test.cpp.o"
  "CMakeFiles/database_node_test.dir/database_node_test.cpp.o.d"
  "database_node_test"
  "database_node_test.pdb"
  "database_node_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
