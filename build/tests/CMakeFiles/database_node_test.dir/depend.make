# Empty dependencies file for database_node_test.
# This may be replaced when dependencies are built.
