# Empty dependencies file for job_identifier_test.
# This may be replaced when dependencies are built.
