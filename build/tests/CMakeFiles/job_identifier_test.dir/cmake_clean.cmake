file(REMOVE_RECURSE
  "CMakeFiles/job_identifier_test.dir/job_identifier_test.cpp.o"
  "CMakeFiles/job_identifier_test.dir/job_identifier_test.cpp.o.d"
  "job_identifier_test"
  "job_identifier_test.pdb"
  "job_identifier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_identifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
