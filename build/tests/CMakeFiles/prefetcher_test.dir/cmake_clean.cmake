file(REMOVE_RECURSE
  "CMakeFiles/prefetcher_test.dir/prefetcher_test.cpp.o"
  "CMakeFiles/prefetcher_test.dir/prefetcher_test.cpp.o.d"
  "prefetcher_test"
  "prefetcher_test.pdb"
  "prefetcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
