# Empty compiler generated dependencies file for shared_campaign.
# This may be replaced when dependencies are built.
