file(REMOVE_RECURSE
  "CMakeFiles/shared_campaign.dir/shared_campaign.cpp.o"
  "CMakeFiles/shared_campaign.dir/shared_campaign.cpp.o.d"
  "shared_campaign"
  "shared_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
