file(REMOVE_RECURSE
  "CMakeFiles/volume_statistics.dir/volume_statistics.cpp.o"
  "CMakeFiles/volume_statistics.dir/volume_statistics.cpp.o.d"
  "volume_statistics"
  "volume_statistics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volume_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
