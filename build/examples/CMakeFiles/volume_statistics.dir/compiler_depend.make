# Empty compiler generated dependencies file for volume_statistics.
# This may be replaced when dependencies are built.
