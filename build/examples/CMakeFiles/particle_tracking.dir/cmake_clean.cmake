file(REMOVE_RECURSE
  "CMakeFiles/particle_tracking.dir/particle_tracking.cpp.o"
  "CMakeFiles/particle_tracking.dir/particle_tracking.cpp.o.d"
  "particle_tracking"
  "particle_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/particle_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
