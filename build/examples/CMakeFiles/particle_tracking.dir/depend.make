# Empty dependencies file for particle_tracking.
# This may be replaced when dependencies are built.
