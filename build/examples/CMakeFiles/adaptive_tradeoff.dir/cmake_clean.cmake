file(REMOVE_RECURSE
  "CMakeFiles/adaptive_tradeoff.dir/adaptive_tradeoff.cpp.o"
  "CMakeFiles/adaptive_tradeoff.dir/adaptive_tradeoff.cpp.o.d"
  "adaptive_tradeoff"
  "adaptive_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
