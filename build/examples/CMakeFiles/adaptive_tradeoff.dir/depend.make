# Empty dependencies file for adaptive_tradeoff.
# This may be replaced when dependencies are built.
