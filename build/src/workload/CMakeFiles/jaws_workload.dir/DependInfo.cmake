
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/jaws_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/jaws_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/job_identifier.cpp" "src/workload/CMakeFiles/jaws_workload.dir/job_identifier.cpp.o" "gcc" "src/workload/CMakeFiles/jaws_workload.dir/job_identifier.cpp.o.d"
  "/root/repo/src/workload/particle_tracker.cpp" "src/workload/CMakeFiles/jaws_workload.dir/particle_tracker.cpp.o" "gcc" "src/workload/CMakeFiles/jaws_workload.dir/particle_tracker.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/jaws_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/jaws_workload.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/jaws_util.dir/DependInfo.cmake"
  "/root/repo/build/src/field/CMakeFiles/jaws_field.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/jaws_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
