# Empty compiler generated dependencies file for jaws_workload.
# This may be replaced when dependencies are built.
