file(REMOVE_RECURSE
  "CMakeFiles/jaws_workload.dir/generator.cpp.o"
  "CMakeFiles/jaws_workload.dir/generator.cpp.o.d"
  "CMakeFiles/jaws_workload.dir/job_identifier.cpp.o"
  "CMakeFiles/jaws_workload.dir/job_identifier.cpp.o.d"
  "CMakeFiles/jaws_workload.dir/particle_tracker.cpp.o"
  "CMakeFiles/jaws_workload.dir/particle_tracker.cpp.o.d"
  "CMakeFiles/jaws_workload.dir/trace.cpp.o"
  "CMakeFiles/jaws_workload.dir/trace.cpp.o.d"
  "libjaws_workload.a"
  "libjaws_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaws_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
