file(REMOVE_RECURSE
  "libjaws_workload.a"
)
