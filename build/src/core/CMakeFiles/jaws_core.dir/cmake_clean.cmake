file(REMOVE_RECURSE
  "CMakeFiles/jaws_core.dir/cluster.cpp.o"
  "CMakeFiles/jaws_core.dir/cluster.cpp.o.d"
  "CMakeFiles/jaws_core.dir/direct_executor.cpp.o"
  "CMakeFiles/jaws_core.dir/direct_executor.cpp.o.d"
  "CMakeFiles/jaws_core.dir/engine.cpp.o"
  "CMakeFiles/jaws_core.dir/engine.cpp.o.d"
  "CMakeFiles/jaws_core.dir/metrics.cpp.o"
  "CMakeFiles/jaws_core.dir/metrics.cpp.o.d"
  "libjaws_core.a"
  "libjaws_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaws_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
