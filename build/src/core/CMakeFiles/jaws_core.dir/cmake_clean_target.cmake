file(REMOVE_RECURSE
  "libjaws_core.a"
)
