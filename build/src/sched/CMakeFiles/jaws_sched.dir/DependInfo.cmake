
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/adaptive_alpha.cpp" "src/sched/CMakeFiles/jaws_sched.dir/adaptive_alpha.cpp.o" "gcc" "src/sched/CMakeFiles/jaws_sched.dir/adaptive_alpha.cpp.o.d"
  "/root/repo/src/sched/alignment.cpp" "src/sched/CMakeFiles/jaws_sched.dir/alignment.cpp.o" "gcc" "src/sched/CMakeFiles/jaws_sched.dir/alignment.cpp.o.d"
  "/root/repo/src/sched/jaws.cpp" "src/sched/CMakeFiles/jaws_sched.dir/jaws.cpp.o" "gcc" "src/sched/CMakeFiles/jaws_sched.dir/jaws.cpp.o.d"
  "/root/repo/src/sched/liferaft.cpp" "src/sched/CMakeFiles/jaws_sched.dir/liferaft.cpp.o" "gcc" "src/sched/CMakeFiles/jaws_sched.dir/liferaft.cpp.o.d"
  "/root/repo/src/sched/noshare.cpp" "src/sched/CMakeFiles/jaws_sched.dir/noshare.cpp.o" "gcc" "src/sched/CMakeFiles/jaws_sched.dir/noshare.cpp.o.d"
  "/root/repo/src/sched/precedence_graph.cpp" "src/sched/CMakeFiles/jaws_sched.dir/precedence_graph.cpp.o" "gcc" "src/sched/CMakeFiles/jaws_sched.dir/precedence_graph.cpp.o.d"
  "/root/repo/src/sched/prefetcher.cpp" "src/sched/CMakeFiles/jaws_sched.dir/prefetcher.cpp.o" "gcc" "src/sched/CMakeFiles/jaws_sched.dir/prefetcher.cpp.o.d"
  "/root/repo/src/sched/subquery.cpp" "src/sched/CMakeFiles/jaws_sched.dir/subquery.cpp.o" "gcc" "src/sched/CMakeFiles/jaws_sched.dir/subquery.cpp.o.d"
  "/root/repo/src/sched/workload_manager.cpp" "src/sched/CMakeFiles/jaws_sched.dir/workload_manager.cpp.o" "gcc" "src/sched/CMakeFiles/jaws_sched.dir/workload_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/jaws_util.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/jaws_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/jaws_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/jaws_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/field/CMakeFiles/jaws_field.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
