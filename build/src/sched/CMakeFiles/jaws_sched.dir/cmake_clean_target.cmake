file(REMOVE_RECURSE
  "libjaws_sched.a"
)
