# Empty dependencies file for jaws_sched.
# This may be replaced when dependencies are built.
