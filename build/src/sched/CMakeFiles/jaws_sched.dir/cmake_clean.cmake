file(REMOVE_RECURSE
  "CMakeFiles/jaws_sched.dir/adaptive_alpha.cpp.o"
  "CMakeFiles/jaws_sched.dir/adaptive_alpha.cpp.o.d"
  "CMakeFiles/jaws_sched.dir/alignment.cpp.o"
  "CMakeFiles/jaws_sched.dir/alignment.cpp.o.d"
  "CMakeFiles/jaws_sched.dir/jaws.cpp.o"
  "CMakeFiles/jaws_sched.dir/jaws.cpp.o.d"
  "CMakeFiles/jaws_sched.dir/liferaft.cpp.o"
  "CMakeFiles/jaws_sched.dir/liferaft.cpp.o.d"
  "CMakeFiles/jaws_sched.dir/noshare.cpp.o"
  "CMakeFiles/jaws_sched.dir/noshare.cpp.o.d"
  "CMakeFiles/jaws_sched.dir/precedence_graph.cpp.o"
  "CMakeFiles/jaws_sched.dir/precedence_graph.cpp.o.d"
  "CMakeFiles/jaws_sched.dir/prefetcher.cpp.o"
  "CMakeFiles/jaws_sched.dir/prefetcher.cpp.o.d"
  "CMakeFiles/jaws_sched.dir/subquery.cpp.o"
  "CMakeFiles/jaws_sched.dir/subquery.cpp.o.d"
  "CMakeFiles/jaws_sched.dir/workload_manager.cpp.o"
  "CMakeFiles/jaws_sched.dir/workload_manager.cpp.o.d"
  "libjaws_sched.a"
  "libjaws_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaws_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
