file(REMOVE_RECURSE
  "CMakeFiles/jaws_util.dir/logging.cpp.o"
  "CMakeFiles/jaws_util.dir/logging.cpp.o.d"
  "CMakeFiles/jaws_util.dir/morton.cpp.o"
  "CMakeFiles/jaws_util.dir/morton.cpp.o.d"
  "CMakeFiles/jaws_util.dir/stats.cpp.o"
  "CMakeFiles/jaws_util.dir/stats.cpp.o.d"
  "CMakeFiles/jaws_util.dir/thread_pool.cpp.o"
  "CMakeFiles/jaws_util.dir/thread_pool.cpp.o.d"
  "libjaws_util.a"
  "libjaws_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaws_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
