file(REMOVE_RECURSE
  "libjaws_util.a"
)
