# Empty compiler generated dependencies file for jaws_util.
# This may be replaced when dependencies are built.
