
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/field/grid.cpp" "src/field/CMakeFiles/jaws_field.dir/grid.cpp.o" "gcc" "src/field/CMakeFiles/jaws_field.dir/grid.cpp.o.d"
  "/root/repo/src/field/interpolation.cpp" "src/field/CMakeFiles/jaws_field.dir/interpolation.cpp.o" "gcc" "src/field/CMakeFiles/jaws_field.dir/interpolation.cpp.o.d"
  "/root/repo/src/field/synthetic_field.cpp" "src/field/CMakeFiles/jaws_field.dir/synthetic_field.cpp.o" "gcc" "src/field/CMakeFiles/jaws_field.dir/synthetic_field.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/jaws_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
