file(REMOVE_RECURSE
  "CMakeFiles/jaws_field.dir/grid.cpp.o"
  "CMakeFiles/jaws_field.dir/grid.cpp.o.d"
  "CMakeFiles/jaws_field.dir/interpolation.cpp.o"
  "CMakeFiles/jaws_field.dir/interpolation.cpp.o.d"
  "CMakeFiles/jaws_field.dir/synthetic_field.cpp.o"
  "CMakeFiles/jaws_field.dir/synthetic_field.cpp.o.d"
  "libjaws_field.a"
  "libjaws_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaws_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
