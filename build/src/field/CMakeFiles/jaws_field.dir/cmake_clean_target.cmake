file(REMOVE_RECURSE
  "libjaws_field.a"
)
