# Empty dependencies file for jaws_field.
# This may be replaced when dependencies are built.
