file(REMOVE_RECURSE
  "CMakeFiles/jaws_storage.dir/atom_store.cpp.o"
  "CMakeFiles/jaws_storage.dir/atom_store.cpp.o.d"
  "CMakeFiles/jaws_storage.dir/bptree.cpp.o"
  "CMakeFiles/jaws_storage.dir/bptree.cpp.o.d"
  "CMakeFiles/jaws_storage.dir/database_node.cpp.o"
  "CMakeFiles/jaws_storage.dir/database_node.cpp.o.d"
  "CMakeFiles/jaws_storage.dir/disk_model.cpp.o"
  "CMakeFiles/jaws_storage.dir/disk_model.cpp.o.d"
  "libjaws_storage.a"
  "libjaws_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaws_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
