# Empty dependencies file for jaws_storage.
# This may be replaced when dependencies are built.
