file(REMOVE_RECURSE
  "libjaws_storage.a"
)
