
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/atom_store.cpp" "src/storage/CMakeFiles/jaws_storage.dir/atom_store.cpp.o" "gcc" "src/storage/CMakeFiles/jaws_storage.dir/atom_store.cpp.o.d"
  "/root/repo/src/storage/bptree.cpp" "src/storage/CMakeFiles/jaws_storage.dir/bptree.cpp.o" "gcc" "src/storage/CMakeFiles/jaws_storage.dir/bptree.cpp.o.d"
  "/root/repo/src/storage/database_node.cpp" "src/storage/CMakeFiles/jaws_storage.dir/database_node.cpp.o" "gcc" "src/storage/CMakeFiles/jaws_storage.dir/database_node.cpp.o.d"
  "/root/repo/src/storage/disk_model.cpp" "src/storage/CMakeFiles/jaws_storage.dir/disk_model.cpp.o" "gcc" "src/storage/CMakeFiles/jaws_storage.dir/disk_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/jaws_util.dir/DependInfo.cmake"
  "/root/repo/build/src/field/CMakeFiles/jaws_field.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
