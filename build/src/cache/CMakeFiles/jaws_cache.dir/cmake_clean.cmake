file(REMOVE_RECURSE
  "CMakeFiles/jaws_cache.dir/buffer_cache.cpp.o"
  "CMakeFiles/jaws_cache.dir/buffer_cache.cpp.o.d"
  "CMakeFiles/jaws_cache.dir/lru.cpp.o"
  "CMakeFiles/jaws_cache.dir/lru.cpp.o.d"
  "CMakeFiles/jaws_cache.dir/lru_k.cpp.o"
  "CMakeFiles/jaws_cache.dir/lru_k.cpp.o.d"
  "CMakeFiles/jaws_cache.dir/slru.cpp.o"
  "CMakeFiles/jaws_cache.dir/slru.cpp.o.d"
  "CMakeFiles/jaws_cache.dir/two_q.cpp.o"
  "CMakeFiles/jaws_cache.dir/two_q.cpp.o.d"
  "CMakeFiles/jaws_cache.dir/urc.cpp.o"
  "CMakeFiles/jaws_cache.dir/urc.cpp.o.d"
  "libjaws_cache.a"
  "libjaws_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaws_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
