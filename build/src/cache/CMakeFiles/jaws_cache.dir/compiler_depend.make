# Empty compiler generated dependencies file for jaws_cache.
# This may be replaced when dependencies are built.
