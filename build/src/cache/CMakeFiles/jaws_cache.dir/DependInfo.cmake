
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/buffer_cache.cpp" "src/cache/CMakeFiles/jaws_cache.dir/buffer_cache.cpp.o" "gcc" "src/cache/CMakeFiles/jaws_cache.dir/buffer_cache.cpp.o.d"
  "/root/repo/src/cache/lru.cpp" "src/cache/CMakeFiles/jaws_cache.dir/lru.cpp.o" "gcc" "src/cache/CMakeFiles/jaws_cache.dir/lru.cpp.o.d"
  "/root/repo/src/cache/lru_k.cpp" "src/cache/CMakeFiles/jaws_cache.dir/lru_k.cpp.o" "gcc" "src/cache/CMakeFiles/jaws_cache.dir/lru_k.cpp.o.d"
  "/root/repo/src/cache/slru.cpp" "src/cache/CMakeFiles/jaws_cache.dir/slru.cpp.o" "gcc" "src/cache/CMakeFiles/jaws_cache.dir/slru.cpp.o.d"
  "/root/repo/src/cache/two_q.cpp" "src/cache/CMakeFiles/jaws_cache.dir/two_q.cpp.o" "gcc" "src/cache/CMakeFiles/jaws_cache.dir/two_q.cpp.o.d"
  "/root/repo/src/cache/urc.cpp" "src/cache/CMakeFiles/jaws_cache.dir/urc.cpp.o" "gcc" "src/cache/CMakeFiles/jaws_cache.dir/urc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/jaws_util.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/jaws_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/field/CMakeFiles/jaws_field.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
