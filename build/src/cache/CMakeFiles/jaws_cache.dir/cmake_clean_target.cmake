file(REMOVE_RECURSE
  "libjaws_cache.a"
)
