# Empty compiler generated dependencies file for table1_caching.
# This may be replaced when dependencies are built.
