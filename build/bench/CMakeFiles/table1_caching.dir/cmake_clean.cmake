file(REMOVE_RECURSE
  "CMakeFiles/table1_caching.dir/table1_caching.cpp.o"
  "CMakeFiles/table1_caching.dir/table1_caching.cpp.o.d"
  "table1_caching"
  "table1_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
