file(REMOVE_RECURSE
  "CMakeFiles/fig08_job_distribution.dir/fig08_job_distribution.cpp.o"
  "CMakeFiles/fig08_job_distribution.dir/fig08_job_distribution.cpp.o.d"
  "fig08_job_distribution"
  "fig08_job_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_job_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
