# Empty dependencies file for fig09_timestep_distribution.
# This may be replaced when dependencies are built.
