# Empty dependencies file for fig11_saturation.
# This may be replaced when dependencies are built.
