file(REMOVE_RECURSE
  "CMakeFiles/fig11_saturation.dir/fig11_saturation.cpp.o"
  "CMakeFiles/fig11_saturation.dir/fig11_saturation.cpp.o.d"
  "fig11_saturation"
  "fig11_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
