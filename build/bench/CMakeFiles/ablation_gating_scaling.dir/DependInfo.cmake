
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_gating_scaling.cpp" "bench/CMakeFiles/ablation_gating_scaling.dir/ablation_gating_scaling.cpp.o" "gcc" "bench/CMakeFiles/ablation_gating_scaling.dir/ablation_gating_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/jaws_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/jaws_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/jaws_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/jaws_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/jaws_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/field/CMakeFiles/jaws_field.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/jaws_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
