file(REMOVE_RECURSE
  "CMakeFiles/ablation_gating_scaling.dir/ablation_gating_scaling.cpp.o"
  "CMakeFiles/ablation_gating_scaling.dir/ablation_gating_scaling.cpp.o.d"
  "ablation_gating_scaling"
  "ablation_gating_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gating_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
