#!/usr/bin/env python3
"""Determinism lint for the JAWS deterministic core.

Every scheduling/accounting result in this repository must be
bit-reproducible: the golden-pinned serial_equivalence_test, the Eq. 1
cost-model shapes, and the seeded fault schedules all assume that nothing in
the decision path reads ambient state. This lint statically bans the three
leak classes that have actually bitten us, inside
src/{core,sched,storage,cache,field}:

  wall-clock            std::chrono::{system,steady,high_resolution,...}_clock,
                        time()/clock()/gettimeofday()/clock_gettime() --
                        wall time must come only from the virtual clock
                        (util::SimTime) or the allowlisted util::wall_clock_ns
                        bench utility.
  ambient-random        rand()/srand(), std::random_device, and
                        default-constructed (unseeded) standard engines --
                        randomness must flow from an explicit seed
                        (util/rng.h).
  unordered-iteration   range-for over a std::unordered_map/unordered_set
                        declared in the same file -- hash-order iteration in
                        a decision path makes results depend on the standard
                        library's bucket layout. Membership tests and finds
                        are fine; only iteration is flagged.

Escape hatch: a line (or the line directly above it) carrying
    // jaws-lint: allow(<rule>)
suppresses that rule there. Every allow is expected to carry a justification
comment; provably order-independent scans (strict-total-order argmins,
sort-normalised collections) are the intended use.

Usage:
    scripts/lint_determinism.py [--root REPO_ROOT]   # lint the tree
    scripts/lint_determinism.py --self-test          # lint the linter

Exit codes: 0 clean, 1 violations found, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

LINTED_DIRS = [
    os.path.join("src", d)
    for d in ("core", "sched", "storage", "cache", "field", "workload")
]
SOURCE_EXTENSIONS = (".h", ".hpp", ".cpp", ".cc")

ALLOW_RE = re.compile(r"//\s*jaws-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

WALL_CLOCK_RE = re.compile(
    r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock"
    r"|file_clock|utc_clock|tai_clock|gps_clock)"
    r"|\bgettimeofday\s*\("
    r"|\bclock_gettime\s*\("
    r"|\btime\s*\(\s*(?:NULL|nullptr|0|&|\))"
    r"|\bclock\s*\(\s*\)"
    r"|\b(?:localtime|gmtime|mktime)\s*\("
)

AMBIENT_RANDOM_RE = re.compile(
    r"std::random_device"
    r"|\bsrand\s*\("
    r"|\brand\s*\(\s*\)"
    # Default-constructed (unseeded) standard engines: `std::mt19937 gen;`
    # or `std::mt19937 gen{};`. Seeded forms `gen(seed)` / `gen{seed}` pass.
    r"|\b(?:std::)?(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine"
    r"|ranlux24|ranlux48|ranlux24_base|ranlux48_base|knuth_b)\s+\w+\s*(?:;|\{\s*\})"
)

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(")
IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


class Violation:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving offsets and
    newlines so line numbers survive. Keeps `// jaws-lint:` directives out of
    pattern matching (they are read from the raw text separately)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def allowed_rules_by_line(raw_lines: list[str]) -> dict[int, set[str]]:
    """Rules allowed per 1-based line. A directive covers its own line and
    extends through any directly following comment-only/blank lines (the
    justification text) to the first code line after it, so multi-line
    justifications remain attached to the statement they cover."""
    allowed: dict[int, set[str]] = {}
    for lineno, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",")}
        allowed.setdefault(lineno, set()).update(rules)
        cursor = lineno + 1
        while cursor <= len(raw_lines):
            allowed.setdefault(cursor, set()).update(rules)
            stripped = raw_lines[cursor - 1].strip()
            if stripped != "" and not stripped.startswith("//"):
                break  # first code line reached: coverage ends here
            cursor += 1
    return allowed


def unordered_container_names(code: str) -> set[str]:
    """Names of variables/members declared with an unordered container type
    in this file. Handles multi-line declarations by tracking template
    angle-bracket depth from the `unordered_xxx<` occurrence."""
    names: set[str] = set()
    for m in UNORDERED_DECL_RE.finditer(code):
        i = m.end()  # just past '<'
        depth = 1
        n = len(code)
        while i < n and depth > 0:
            if code[i] == "<":
                depth += 1
            elif code[i] == ">":
                depth -= 1
            i += 1
        # Next identifier after the closing '>' is the declared name, unless
        # this is a nested type (e.g. a template argument) or a return type;
        # those are filtered by requiring a declarator-ish terminator.
        tail = code[i:i + 400]
        dm = re.match(r"\s*&?\s*([A-Za-z_][A-Za-z0-9_]*)\s*(;|=|\{|\[)", tail)
        if dm:
            names.add(dm.group(1))
    return names


def find_range_for_container(code: str, start: int) -> tuple[str, int] | None:
    """Given the offset of `for`, if it is a range-for, return the container
    expression text and the offset of the ':' separator."""
    i = code.find("(", start)
    if i < 0:
        return None
    depth = 1
    j = i + 1
    colon = -1
    n = len(code)
    while j < n and depth > 0:
        c = code[j]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
        elif c == ";" and depth == 1:
            return None  # classic three-clause for
        elif c == ":" and depth == 1 and colon < 0:
            # Skip '::' scope operators.
            if j + 1 < n and code[j + 1] == ":":
                j += 2
                continue
            if j > 0 and code[j - 1] == ":":
                j += 1
                continue
            colon = j
        j += 1
    if colon < 0 or depth != 0:
        return None
    return code[colon + 1:j - 1], colon


def lint_file(path: str, display_path: str,
              extra_container_names: set[str] | None = None) -> list[Violation]:
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        raw = f.read()
    raw_lines = raw.splitlines()
    allowed = allowed_rules_by_line(raw_lines)
    code = strip_comments_and_strings(raw)

    def line_of(offset: int) -> int:
        return code.count("\n", 0, offset) + 1

    def flag(rule: str, offset: int, message: str, out: list[Violation]) -> None:
        lineno = line_of(offset)
        if rule in allowed.get(lineno, set()):
            return
        out.append(Violation(display_path, lineno, rule, message))

    violations: list[Violation] = []

    for m in WALL_CLOCK_RE.finditer(code):
        flag("wall-clock", m.start(),
             f"wall-clock read `{m.group(0).strip()}` in deterministic core "
             "(use util::SimTime / an injected tick source)", violations)

    for m in AMBIENT_RANDOM_RE.finditer(code):
        flag("ambient-random", m.start(),
             f"ambient randomness `{m.group(0).strip()}` in deterministic core "
             "(seed explicitly via util/rng.h)", violations)

    container_names = unordered_container_names(code)
    if extra_container_names:
        container_names |= extra_container_names
    if container_names:
        for m in RANGE_FOR_RE.finditer(code):
            hit = find_range_for_container(code, m.start())
            if hit is None:
                continue
            expr, colon = hit
            idents = IDENT_RE.findall(expr)
            if not idents:
                continue
            name = idents[-1]  # e.g. `resident_`, `state.queues_`
            if name in container_names:
                flag("unordered-iteration", m.start(),
                     f"iteration over unordered container `{name}` in a "
                     "decision path (hash order is not deterministic across "
                     "standard libraries; sort first or justify with an "
                     "allow)", violations)
    return violations


def lint_tree(root: str) -> list[Violation]:
    violations: list[Violation] = []
    for rel_dir in LINTED_DIRS:
        base = os.path.join(root, rel_dir)
        if not os.path.isdir(base):
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if not name.endswith(SOURCE_EXTENSIONS):
                    continue
                path = os.path.join(dirpath, name)
                # A .cpp iterating members declared in its paired header
                # (foo.cpp <- foo.h) must still be caught: merge the
                # header's container names into the implementation's scan.
                extra: set[str] = set()
                stem = os.path.splitext(path)[0]
                if name.endswith((".cpp", ".cc")):
                    for header_ext in (".h", ".hpp"):
                        header = stem + header_ext
                        if os.path.isfile(header):
                            with open(header, "r", encoding="utf-8",
                                      errors="replace") as hf:
                                extra |= unordered_container_names(
                                    strip_comments_and_strings(hf.read()))
                violations.extend(
                    lint_file(path, os.path.relpath(path, root), extra))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


# --------------------------- self-test fixtures ---------------------------

SELFTEST_CASES = [
    # (filename, source, expected rules in file order)
    ("bad_clock.cpp",
     """#include <chrono>
void f() {
    auto t0 = std::chrono::steady_clock::now();
    auto t1 = std::chrono::system_clock::now();
    (void)t0; (void)t1;
}
""",
     ["wall-clock", "wall-clock"]),
    ("bad_ctime.cpp",
     """#include <ctime>
long f() { return time(nullptr) + clock(); }
""",
     ["wall-clock", "wall-clock"]),
    ("ok_simtime.cpp",
     """// sim_time/next_time must not trip the `time(` pattern.
struct G { double sim_time(unsigned t) const { return t * 0.1; } };
double f(const G& g) { return g.sim_time(3); }
""",
     []),
    ("bad_random.cpp",
     """#include <random>
#include <cstdlib>
int f() {
    std::random_device rd;
    std::mt19937 gen;
    srand(42);
    return rand() + static_cast<int>(gen()) + static_cast<int>(rd());
}
""",
     ["ambient-random", "ambient-random", "ambient-random", "ambient-random"]),
    ("ok_seeded.cpp",
     """#include <random>
unsigned f(unsigned seed) {
    std::mt19937 gen(seed);       // seeded: fine
    std::mt19937_64 g2{seed};     // seeded: fine
    return static_cast<unsigned>(gen() + g2());
}
""",
     []),
    ("ok_multi_rule_allow.cpp",
     """// One directive may list several hyphenated rules (the analyzer's
// raw-micros / raw-id-api / id-mixing waivers share this parser).
#include <chrono>
long f() {
    // jaws-lint: allow(wall-clock, raw-micros) -- fixture: list syntax.
    return std::chrono::steady_clock::now().time_since_epoch().count();
}
""",
     []),
    ("bad_unordered.cpp",
     """#include <unordered_map>
int f() {
    std::unordered_map<int, int> counts;
    int total = 0;
    for (const auto& [k, v] : counts) total += v;
    return total;
}
""",
     ["unordered-iteration"]),
    ("ok_unordered_lookup.cpp",
     """#include <unordered_map>
#include <vector>
int f(int key) {
    std::unordered_map<int, int> counts;
    std::vector<int> order;
    for (int v : order) key += v;          // vector iteration: fine
    auto it = counts.find(key);            // lookup: fine
    return it == counts.end() ? 0 : it->second;
}
""",
     []),
    ("ok_allowlisted.cpp",
     """#include <chrono>
#include <unordered_map>
int f() {
    // jaws-lint: allow(wall-clock) -- measurement sink, never fed back.
    auto t = std::chrono::steady_clock::now();
    (void)t;
    std::unordered_map<int, int> counts;
    int total = 0;
    // jaws-lint: allow(unordered-iteration) -- order-insensitive sum... almost.
    for (const auto& [k, v] : counts) total += v;
    return total;
}
""",
     []),
    ("bad_multiline_decl.cpp",
     """#include <unordered_map>
#include <cstdint>
struct Hash { unsigned long operator()(int) const { return 0; } };
struct S {
    std::unordered_map<int,
                       long,
                       Hash>
        resident_;
    long sum() const {
        long s = 0;
        for (const auto& [k, v] : resident_) s += v;
        return s;
    }
};
""",
     ["unordered-iteration"]),
    ("ok_strings_comments.cpp",
     """// std::chrono::steady_clock in a comment is fine.
const char* f() { return "std::random_device rand( time( "; }
""",
     []),
    ("ok_multiline_justification.cpp",
     """#include <unordered_map>
int f() {
    std::unordered_map<int, int> counts;
    int total = 0;
    // jaws-lint: allow(unordered-iteration) -- a justification that
    // spans several comment lines must keep the directive attached
    // to the statement below it.
    for (const auto& [k, v] : counts) total += v;
    return total;
}
""",
     []),
    ("paired.h",
     """#pragma once
#include <unordered_map>
struct Paired {
    long sum() const;
    std::unordered_map<int, long> residents_;
};
""",
     []),
    ("paired.cpp",
     """#include "paired.h"
long Paired::sum() const {
    long s = 0;
    for (const auto& [k, v] : residents_) s += v;  // member from the header
    return s;
}
""",
     ["unordered-iteration"]),
]

# Fixtures written into *other* linted subtrees, pinning LINTED_DIRS
# coverage itself: a regression that drops a directory from the walk makes
# these fixtures silently pass and fails the self-test.
DIR_COVERAGE_FIXTURES = [
    (os.path.join("src", "workload"), "bad_workload_wall_clock.cpp",
     """#include <ctime>
long stamp() { return static_cast<long>(time(nullptr)); }
""",
     ["wall-clock"]),
    (os.path.join("src", "workload"), "bad_workload_unordered.cpp",
     """#include <unordered_set>
int f() {
    std::unordered_set<int> users;
    int total = 0;
    for (int u : users) total += u;
    return total;
}
""",
     ["unordered-iteration"]),
]


def self_test() -> int:
    failures = 0
    with tempfile.TemporaryDirectory(prefix="jaws_lint_selftest_") as tmp:
        # Mirror a linted subtree so lint_tree picks the fixtures up.
        fixture_dir = os.path.join(tmp, "src", "core")
        os.makedirs(fixture_dir)
        for name, source, _expected in SELFTEST_CASES:
            with open(os.path.join(fixture_dir, name), "w", encoding="utf-8") as f:
                f.write(source)
        for rel_dir, name, source, _expected in DIR_COVERAGE_FIXTURES:
            os.makedirs(os.path.join(tmp, rel_dir), exist_ok=True)
            with open(os.path.join(tmp, rel_dir, name), "w",
                      encoding="utf-8") as f:
                f.write(source)
        found = lint_tree(tmp)
        by_file: dict[str, list[Violation]] = {}
        for v in found:
            by_file.setdefault(os.path.basename(v.path), []).append(v)
        all_cases = SELFTEST_CASES + [
            (name, source, expected)
            for _rel, name, source, expected in DIR_COVERAGE_FIXTURES
        ]
        for name, _source, expected in all_cases:
            got = [v.rule for v in by_file.get(name, [])]
            if got != expected:
                failures += 1
                print(f"SELF-TEST FAIL {name}: expected {expected}, got {got}",
                      file=sys.stderr)
                for v in by_file.get(name, []):
                    print(f"    {v}", file=sys.stderr)
    if failures == 0:
        total = len(SELFTEST_CASES) + len(DIR_COVERAGE_FIXTURES)
        print(f"lint_determinism self-test: {total} fixtures ok")
        return 0
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: the script's parent repo)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the linter's own fixture suite and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"lint_determinism: no src/ under {root}", file=sys.stderr)
        return 2

    violations = lint_tree(root)
    for v in violations:
        print(v)
    if violations:
        print(f"\nlint_determinism: {len(violations)} violation(s). "
              "Fix them or annotate with `// jaws-lint: allow(<rule>)` plus "
              "a justification.", file=sys.stderr)
        return 1
    print("lint_determinism: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
