#!/usr/bin/env python3
"""Build-time check that the batched interpolation stencil vectorizes.

field::BatchInterpolator promises a SIMD-friendly stencil *without
intrinsics*: fixed trip counts, unit-stride interleaved rows and four
independent accumulator chains arranged so the compiler's vectorizer does
the packing. That property is silent — a refactor can de-vectorize the
kernel and every test still passes, only ~2x slower. This check recompiles
the kernel TU with the compiler's vectorization report enabled and fails
unless the report attributes at least one vectorization to
batch_interpolator.cpp.

Compiler specifics:
  * GCC   -- recompile with `-fopt-info-vec-optimized`. The stencil's
             floating-point reductions cannot *loop*-vectorize without
             reordering (which bit-exactness forbids, see DESIGN.md), so the
             expected evidence is SLP: "basic block part vectorized using
             N byte vectors". A "loop vectorized" line also counts.
  * Clang -- recompile with `-Rpass=loop-vectorize -Rpass=slp-vectorize`
             and accept either remark.
  * other -- skip with exit 0 and a note; the property is still covered on
             the CI toolchain.

The compile command comes from the build tree's compile_commands.json, so
the check sees exactly the production flags (-O2, -ffp-contract=off, ...).

Usage:
    scripts/check_vectorization.py --compdb BUILD_DIR [--tu src/field/batch_interpolator.cpp]
    scripts/check_vectorization.py --self-test

Exit codes: 0 vectorized (or skipped), 1 not vectorized, 2 usage/internal.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shlex
import subprocess
import sys

DEFAULT_TU = "src/field/batch_interpolator.cpp"

# GCC attributes each optimization to file:line:col. SLP shows up as
# "basic block part vectorized"; a vectorized loop as "loop vectorized".
GCC_VEC_RE = re.compile(r"optimized:.*(basic block part vectorized|loop vectorized)")
# Clang: "remark: vectorized loop ..." / "remark: SLP vectorized ...".
CLANG_VEC_RE = re.compile(r"remark: .*(vectorized loop|SLP vectorized|Vectorized)")


def compiler_family(compiler: str) -> str:
    """'gcc', 'clang', or 'unknown' for the given compiler executable."""
    try:
        out = subprocess.run([compiler, "--version"], capture_output=True, text=True,
                             timeout=30, check=False).stdout
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    head = out.splitlines()[0].lower() if out else ""
    if "clang" in head:
        return "clang"
    if "gcc" in head or "g++" in head or "free software foundation" in out.lower():
        return "gcc"
    return "unknown"


def load_command(compdb_dir: str, tu_suffix: str) -> tuple[list[str], str] | None:
    """(argv, directory) of the compile command for the TU, or None."""
    path = os.path.join(compdb_dir, "compile_commands.json")
    with open(path, encoding="utf-8") as f:
        db = json.load(f)
    for entry in db:
        if entry["file"].endswith(tu_suffix):
            argv = entry.get("arguments") or shlex.split(entry["command"])
            return argv, entry["directory"]
    return None


def report_lines(argv: list[str], directory: str, family: str) -> str:
    """Recompile with the family's vectorization report; return its text."""
    cmd = list(argv)
    # Drop the object output: the recompile is report-only.
    while "-o" in cmd:
        i = cmd.index("-o")
        del cmd[i:i + 2]
    if family == "gcc":
        cmd.append("-fopt-info-vec-optimized")
    else:
        cmd += ["-Rpass=loop-vectorize", "-Rpass=slp-vectorize"]
    cmd += ["-o", os.devnull]
    proc = subprocess.run(cmd, cwd=directory, capture_output=True, text=True,
                          timeout=600, check=False)
    if proc.returncode != 0:
        raise RuntimeError(f"recompile failed ({proc.returncode}):\n{proc.stderr[-2000:]}")
    # GCC writes opt-info to stderr; clang writes remarks to stderr too.
    return proc.stderr + proc.stdout


def find_evidence(text: str, family: str, tu_basename: str) -> list[str]:
    """Vectorization-report lines attributed to the kernel TU."""
    pattern = GCC_VEC_RE if family == "gcc" else CLANG_VEC_RE
    hits = []
    for line in text.splitlines():
        if tu_basename in line and pattern.search(line):
            hits.append(line.strip())
    return hits


def self_test() -> int:
    gcc_sample = (
        "/root/repo/src/field/batch_interpolator.cpp:143:27: optimized: "
        "basic block part vectorized using 16 byte vectors\n"
        "/root/repo/src/field/other.cpp:9:1: optimized: loop vectorized\n"
        "/root/repo/src/field/batch_interpolator.cpp:90:5: note: not vectorized\n")
    hits = find_evidence(gcc_sample, "gcc", "batch_interpolator.cpp")
    assert len(hits) == 1, hits
    assert "16 byte vectors" in hits[0]
    assert not find_evidence(gcc_sample.replace("optimized:", "missed:"), "gcc",
                             "batch_interpolator.cpp")

    clang_sample = (
        "src/field/batch_interpolator.cpp:143:27: remark: SLP vectorized with "
        "cost -12 [-Rpass=slp-vectorize]\n"
        "src/field/batch_interpolator.cpp:80:5: remark: vectorized loop "
        "(vectorization width: 2) [-Rpass=loop-vectorize]\n")
    assert len(find_evidence(clang_sample, "clang", "batch_interpolator.cpp")) == 2

    assert GCC_VEC_RE.search("foo.cpp:1:1: optimized: loop vectorized using 32 byte vectors")
    print("check_vectorization self-test: OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--compdb", help="build directory containing compile_commands.json")
    parser.add_argument("--tu", default=DEFAULT_TU,
                        help=f"translation unit to check (default {DEFAULT_TU})")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.compdb:
        print("check_vectorization: --compdb is required (or --self-test)", file=sys.stderr)
        return 2

    found = load_command(args.compdb, args.tu)
    if found is None:
        print(f"check_vectorization: {args.tu} not found in compile_commands.json",
              file=sys.stderr)
        return 2
    argv, directory = found

    family = compiler_family(argv[0])
    if family == "unknown":
        print(f"check_vectorization: SKIP — unrecognised compiler '{argv[0]}' "
              "(vectorization is verified on the GCC/Clang CI toolchains)")
        return 0

    try:
        text = report_lines(argv, directory, family)
    except (RuntimeError, OSError, subprocess.TimeoutExpired) as err:
        print(f"check_vectorization: internal error: {err}", file=sys.stderr)
        return 2

    hits = find_evidence(text, family, os.path.basename(args.tu))
    if not hits:
        print(f"check_vectorization: FAIL — {family} reported no vectorization in "
              f"{args.tu}. The batched stencil has de-vectorized; see the header "
              "comment in src/field/batch_interpolator.h for the layout contract.",
              file=sys.stderr)
        relevant = [l for l in text.splitlines() if os.path.basename(args.tu) in l]
        for line in relevant[:20]:
            print(f"  {line.strip()}", file=sys.stderr)
        return 1

    print(f"check_vectorization: OK — {len(hits)} vectorized site(s) in {args.tu} "
          f"({family}):")
    for line in hits[:8]:
        print(f"  {line}")
    if len(hits) > 8:
        print(f"  ... and {len(hits) - 8} more")
    return 0


if __name__ == "__main__":
    sys.exit(main())
