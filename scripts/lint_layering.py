#!/usr/bin/env python3
"""Module-layering lint: the include graph must match the intended DAG.

The simulator is layered so that determinism contracts compose bottom-up:

    util  <  field  <  storage  <  cache  |  workload  <  sched  <  core

(util has no dependencies; cache and workload are siblings above storage;
sched sits above both because scheduling ranks workload::Job queries and
coordinates with the cache's utility oracle; core composes everything.)

This lint parses every `#include "module/..."` edge under src/ and rejects:

  upward-include   a module including a header from a module that is not in
                   its allowed dependency set (e.g. storage including sched)
                   -- upward edges invert the layering and eventually force
                   the cyclic-include workarounds this rule exists to prevent;
  unknown-module   an include of a quoted path whose first component is not a
                   known module (catches typos and accidental new top-level
                   directories);
  include-cycle    any cycle in the module-level include graph, reported with
                   the offending edge list. The allowed sets are acyclic by
                   construction, so a cycle implies upward-include too; the
                   separate rule makes the report actionable when the allowed
                   sets themselves are edited.

Waivers use the shared `// jaws-lint: allow(<rule>)` syntax on (or directly
above) the offending #include line.

Usage:
    scripts/lint_layering.py [--root REPO_ROOT]   # lint the tree
    scripts/lint_layering.py --self-test          # lint the linter

Exit codes: 0 clean, 1 violations found, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lint_determinism as ld  # shared waiver parsing

# module -> modules it may include (its own module is always allowed).
ALLOWED_DEPS: dict[str, set[str]] = {
    "util": set(),
    "field": {"util"},
    "storage": {"field", "util"},
    "cache": {"storage", "field", "util"},
    "workload": {"storage", "field", "util"},
    "sched": {"workload", "cache", "storage", "field", "util"},
    "core": {"sched", "workload", "cache", "storage", "field", "util"},
}

SOURCE_EXTENSIONS = (".h", ".hpp", ".cpp", ".cc")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.MULTILINE)

Violation = ld.Violation


def module_of_path(rel_path: str) -> str | None:
    parts = rel_path.replace(os.sep, "/").split("/")
    if len(parts) >= 3 and parts[0] == "src" and parts[1] in ALLOWED_DEPS:
        return parts[1]
    return None


def collect_edges(root: str):
    """Yield (display_path, line, from_module, include_path, to_module|None,
    allowed_rules) for every quoted include under src/."""
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for name in sorted(filenames):
            if not name.endswith(SOURCE_EXTENSIONS):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root)
            from_module = module_of_path(rel)
            if from_module is None:
                continue
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                raw = f.read()
            allowed = ld.allowed_rules_by_line(raw.splitlines())
            for m in INCLUDE_RE.finditer(raw):
                include_path = m.group(1)
                line = raw.count("\n", 0, m.start()) + 1
                first = include_path.split("/")[0]
                to_module = first if first in ALLOWED_DEPS else None
                if "/" not in include_path:
                    # Same-directory include ("foo.h"): stays in-module.
                    to_module = from_module
                yield rel, line, from_module, include_path, to_module, allowed


def lint_tree(root: str) -> list[Violation]:
    violations: list[Violation] = []
    edges: dict[tuple[str, str], tuple[str, int]] = {}  # module edge -> first site
    for rel, line, from_mod, inc, to_mod, allowed in collect_edges(root):
        if to_mod is None:
            if "unknown-module" not in allowed.get(line, set()):
                violations.append(Violation(
                    rel, line, "unknown-module",
                    f'#include "{inc}" does not start with a known module '
                    f"({', '.join(sorted(ALLOWED_DEPS))})"))
            continue
        if to_mod != from_mod and to_mod not in ALLOWED_DEPS[from_mod]:
            if "upward-include" not in allowed.get(line, set()):
                below = ", ".join(sorted(ALLOWED_DEPS[from_mod])) or "(nothing)"
                violations.append(Violation(
                    rel, line, "upward-include",
                    f"module `{from_mod}` must not include `{inc}`: "
                    f"`{from_mod}` may depend only on {below}"))
        if to_mod != from_mod:
            edges.setdefault((from_mod, to_mod), (rel, line))

    # Cycle detection over the *actual* module graph (independent of the
    # allowed sets, so it still guards the day those are loosened).
    graph: dict[str, set[str]] = {m: set() for m in ALLOWED_DEPS}
    for (a, b) in edges:
        graph[a].add(b)
    state: dict[str, int] = {}
    stack: list[str] = []

    def dfs(node: str) -> list[str] | None:
        state[node] = 1
        stack.append(node)
        for nxt in sorted(graph[node]):
            if state.get(nxt, 0) == 1:
                return stack[stack.index(nxt):] + [nxt]
            if state.get(nxt, 0) == 0:
                cycle = dfs(nxt)
                if cycle is not None:
                    return cycle
        state[node] = 2
        stack.pop()
        return None

    for mod in sorted(graph):
        if state.get(mod, 0) == 0:
            cycle = dfs(mod)
            if cycle is not None:
                first_edge = edges[(cycle[0], cycle[1])]
                violations.append(Violation(
                    first_edge[0], first_edge[1], "include-cycle",
                    "module include cycle: " + " -> ".join(cycle)))
                break

    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


# --------------------------- self-test fixtures ---------------------------

# (relative path, source, expected rules in file order)
SELFTEST_CASES = [
    ("src/util/ok_leaf.h", '#include "util/other.h"\n#include <vector>\n', []),
    ("src/storage/ok_down.h",
     '#include "field/grid.h"\n#include "util/morton.h"\n#include "local.h"\n', []),
    ("src/storage/bad_up.h", '#include "sched/scheduler.h"\n', ["upward-include"]),
    ("src/cache/bad_sibling.h", '#include "workload/job.h"\n', ["upward-include"]),
    ("src/field/bad_unknown.h", '#include "vendor/blas.h"\n', ["unknown-module"]),
    ("src/field/ok_waived.h",
     '// jaws-lint: allow(upward-include) -- fixture: sanctioned exception.\n'
     '#include "cache/buffer_cache.h"\n', []),
    ("src/core/ok_top.cpp",
     '#include "sched/scheduler.h"\n#include "workload/job.h"\n'
     '#include "util/sim_time.h"\n', []),
]

# A fixture tree whose *edges* form a cycle strictly inside the allowed sets
# is impossible (the sets are a partial order), so the cycle fixture also
# trips upward-include; expect both.
CYCLE_CASES = [
    ("src/util/a.h", '// jaws-lint: allow(upward-include) -- fixture.\n'
                     '#include "field/b.h"\n', []),
    ("src/field/b.h", '#include "util/a.h"\n', []),
]
CYCLE_EXPECTED_RULE = "include-cycle"


def write_fixture_tree(tmp: str, cases) -> None:
    for rel, source, _expected in cases:
        path = os.path.join(tmp, rel.replace("/", os.sep))
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(source)


def self_test() -> int:
    failures = 0
    with tempfile.TemporaryDirectory(prefix="jaws_layering_selftest_") as tmp:
        write_fixture_tree(tmp, SELFTEST_CASES)
        found = lint_tree(tmp)
        by_file: dict[str, list[Violation]] = {}
        for v in found:
            by_file.setdefault(v.path.replace(os.sep, "/"), []).append(v)
        for rel, _source, expected in SELFTEST_CASES:
            got = [v.rule for v in by_file.get(rel, [])]
            if got != expected:
                failures += 1
                print(f"SELF-TEST FAIL {rel}: expected {expected}, got {got}",
                      file=sys.stderr)
    with tempfile.TemporaryDirectory(prefix="jaws_layering_cycle_") as tmp:
        write_fixture_tree(tmp, CYCLE_CASES)
        found = lint_tree(tmp)
        rules = [v.rule for v in found]
        if rules != [CYCLE_EXPECTED_RULE]:
            failures += 1
            print(f"SELF-TEST FAIL cycle tree: expected "
                  f"['{CYCLE_EXPECTED_RULE}'], got {rules}", file=sys.stderr)
            for v in found:
                print(f"    {v}", file=sys.stderr)
    if failures == 0:
        print(f"lint_layering self-test: {len(SELFTEST_CASES) + 1} fixtures ok")
        return 0
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: the script's parent repo)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the linter's own fixture suite and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"lint_layering: no src/ under {root}", file=sys.stderr)
        return 2

    violations = lint_tree(root)
    for v in violations:
        print(v)
    if violations:
        print(f"\nlint_layering: {len(violations)} violation(s). Move the "
              "dependency down the stack, or waive a sanctioned exception "
              "with `// jaws-lint: allow(<rule>)` plus a justification.",
              file=sys.stderr)
        return 1
    print("lint_layering: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
