#!/usr/bin/env python3
"""Semantic static analyzer for the JAWS kernel discipline.

scripts/lint_determinism.py bans textual *patterns* (wall-clock reads, ambient
randomness, hash-order iteration over locally declared containers). This
analyzer checks the *semantic* contracts that plain patterns cannot see,
across src/{core,sched,storage,cache,field,workload,util}:

  kernel-blocking      no blocking or wall-clock call may be reachable from a
                       discrete-event handler (a lambda passed to
                       EventQueue::schedule / SimResource::submit /
                       set_idle_hook / set_observer, or assigned to a
                       SimResource::Job hook): the kernel runs handlers on the
                       virtual timeline, so a sleep, condition-variable wait,
                       join, or steady_clock::now() inside one either stalls
                       the simulation or leaks wall time into it. Calls are
                       followed through same-TU helper functions.
  unordered-iteration  range-for over std::unordered_{map,set,...} even when
                       the container hides behind a `using` alias, a typedef,
                       or an `auto` binding (the determinism lint only sees
                       direct declarations).
  float-equality       `==`/`!=` with a floating operand inside
                       src/{core,sched,storage,cache}: scheduling decisions
                       must not hinge on exact double identity unless the
                       site proves both sides are computed identically.
  narrowing-cast       static_cast to an integer narrower than 64 bits whose
                       operand involves SimTime/.micros tick arithmetic --
                       microsecond counters overflow int32 after ~36 minutes
                       of virtual time.
  clock-mutation       mutation of a util::VirtualClock (advance/advance_to/
                       reset) outside its owning file (src/util/sim_time.h):
                       only the event loop may move a clock.
  raw-micros           access to SimTime's raw `.micros` tick field outside
                       its owning file (src/util/sim_time.h): saturation
                       safety lives in SimTime's operators, so call sites
                       that reach around them re-open the signed-overflow UB
                       ISSUE 9 closed. Use the typed helpers (scaled_by,
                       minus_clamped, checked_sum) or raw_micros() at a
                       serialization/scoring boundary with a written waiver.
  raw-id-api           raw integer parameters named like identities (atom,
                       node, channel, self, primary, owner, replica, and
                       their _id/_idx/_index forms) in the public headers of
                       src/{core,sched,storage,workload}: identity-carrying
                       API surfaces must take util::AtomKey / util::NodeIndex
                       / util::ChannelIndex so id spaces cannot be swapped
                       silently. Raw coordinates (morton) and cardinalities
                       (nodes, channels) stay plain integers.
  id-mixing            arithmetic combining `.value()` escapes of *distinct*
                       strong id types (e.g. AtomKey + NodeIndex): unwrapping
                       two different id spaces into one expression is the
                       exact mixing bug the types exist to prevent.

Escape hatch (shared with the determinism lint): a line, or the line directly
above it, carrying
    // jaws-lint: allow(<rule>)
suppresses that rule there; each allow is expected to carry a written
justification proving the site safe.

Engines:
  libclang   AST-based, driven by `clang.cindex` over the build directory's
             compile_commands.json. Authoritative: resolves types through
             aliases and `auto`, receiver types, and cross-header call
             targets.
  internal   dependency-free tokenizer fallback so every rule stays
             enforceable (and self-testable) on machines without the libclang
             Python bindings. Same rules, same waivers; call reachability is
             limited to the translation unit's own file.

Usage:
    scripts/jaws_analyzer.py [--root R] [--compdb BUILDDIR]   # analyze tree
    scripts/jaws_analyzer.py --self-test                      # fixture suite
    scripts/jaws_analyzer.py --engine libclang ...            # force engine
    scripts/jaws_analyzer.py --require-libclang ...           # CI: no fallback

Exit codes: 0 clean, 1 violations found, 2 usage/internal error (including
--require-libclang when the libclang bindings are unavailable).
"""

from __future__ import annotations

import argparse
import glob
import os
import re
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lint_determinism as ld  # shared comment stripping, waivers, helpers

ANALYZED_DIRS = [
    os.path.join("src", d)
    for d in ("core", "sched", "storage", "cache", "field", "workload", "util")
]
FLOAT_EQ_MODULES = ("core", "sched", "storage", "cache", "field", "workload")
CLOCK_OWNER_FILES = {os.path.join("src", "util", "sim_time.h")}
SOURCE_EXTENSIONS = (".h", ".hpp", ".cpp", ".cc")

Violation = ld.Violation

KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "new",
    "delete", "else", "do", "assert", "static_assert", "alignof", "decltype",
    "case", "throw", "co_await", "co_return",
}

BLOCKING_RE = re.compile(
    r"std::this_thread::sleep_(?:for|until)"
    r"|\busleep\s*\(|\bnanosleep\s*\(|\bsleep\s*\("
    r"|\.(?:wait|wait_for|wait_until|join)\s*\("
    r"|std::chrono::(?:system_clock|steady_clock|high_resolution_clock)::now"
    r"|\bwall_clock_ns\s*\("
)
BLOCKING_NAMES = {
    "sleep_for", "sleep_until", "usleep", "nanosleep", "sleep", "wait",
    "wait_for", "wait_until", "join", "now", "wall_clock_ns",
}
HANDLER_CALL_RE = re.compile(
    r"\b(?:schedule|submit|set_idle_hook|set_observer)\s*\(")
HANDLER_ASSIGN_RE = re.compile(r"\.(?:on_start|on_complete|on_abort)\s*=")
CALLED_NAME_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")

ALIAS_RE = re.compile(
    r"\busing\s+([A-Za-z_]\w*)\s*=[^;=]*\bunordered_(?:map|set|multimap|multiset)\s*<")
TYPEDEF_RE = re.compile(
    r"\btypedef\b[^;]*\bunordered_(?:map|set|multimap|multiset)\s*<[^;]*?"
    r"\b([A-Za-z_]\w*)\s*;")
AUTO_BIND_RE = re.compile(r"\bauto\s*&?\s*([A-Za-z_]\w*)\s*=\s*([A-Za-z_]\w*)\s*;")

FLOAT_DECL_RE = re.compile(r"\b(?:double|float)\s+([A-Za-z_]\w*)")
FLOAT_LITERAL_RE = re.compile(
    r"\b(?:\d+\.\d*(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)\b|(?<![\w.])\.\d+\b")
EQ_RE = re.compile(r"(?<![=!<>+\-*/%&|^])(==|!=)(?!=)")
OPERAND_BOUNDARY_RE = re.compile(r"[(){};,?]|&&|\|\||\breturn\b|(?<![=!<>])=(?![=])")

NARROW_CAST_RE = re.compile(
    r"static_cast\s*<\s*((?:std::)?(?:u?int(?:8|16|32)_t|int|unsigned(?:\s+int)?"
    r"|short|unsigned\s+short|signed\s+char|unsigned\s+char|char))\s*>\s*\(")
TIME_OPERAND_RE = re.compile(r"\bmicros\b|\bSimTime\b")

VCLOCK_DECL_RE = re.compile(r"\b(?:util::)?VirtualClock\s*&?\s+([A-Za-z_]\w*)")
CLOCK_MUTATORS = ("advance_to", "advance", "reset")

# raw-micros: the tick field is the owner file's private business.
TIME_OWNER_FILES = {os.path.join("src", "util", "sim_time.h")}
RAW_MICROS_RE = re.compile(r"(?:\.|->)\s*micros\b")

# raw-id-api: identity-named raw-integer parameters in public headers.
ID_API_MODULES = ("core", "sched", "storage", "workload")
ID_PARAM_NAME_RE = re.compile(
    r"^(?:atom|node|channel|self|primary|owner|replica)"
    r"(?:_(?:id|idx|index))?$")
RAW_INT_PARAM_RE = re.compile(
    r"\b(?:const\s+)?(?:std::)?"
    r"(?:u?int(?:8|16|32|64)_t|size_t|ptrdiff_t"
    r"|unsigned(?:\s+(?:long\s+long|long|int|short|char))?"
    r"|long\s+long|long|int|short)"
    r"\s+([A-Za-z_]\w*)\b")
# Canonical spellings libclang reports for the same raw integer types.
RAW_INT_CANONICAL = {
    "int", "unsigned int", "long", "unsigned long", "long long",
    "unsigned long long", "short", "unsigned short", "char", "signed char",
    "unsigned char",
}

# id-mixing: `.value()` escapes of distinct strong id types in one
# arithmetic expression. Restricted to the canonical TypedId aliases so the
# internal and libclang engines agree on exactly which types participate.
ID_TYPE_NAMES = ("AtomKey", "NodeIndex", "ChannelIndex")
ID_DECL_RE = re.compile(
    r"\b(?:\w+::)*(" + "|".join(ID_TYPE_NAMES) + r")\b"
    r"(?:\s+const)?\s*&?\s*([A-Za-z_]\w*)")
ID_VALUE_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)(?:\.|->)value\s*\(\s*\)")
ARITH_OP_RE = re.compile(r"(?<![+\-*/%<>=!&|^])([+\-*/%])(?![+\-*/%=>])")
# Operand windows for id-mixing stop at statement-level boundaries only:
# `x.value()` ends in `)`, so the expression-level boundaries used by
# float-equality would hide every escape from its own operand window.
ID_MIX_BOUNDARY_RE = re.compile(
    r"[;{},?]|&&|\|\||\breturn\b|(?<![=!<>+\-*/%&|^])=(?![=])")

FUNC_HEAD_RE = re.compile(
    r"\b([A-Za-z_~]\w*)\s*\(((?:[^()]|\([^()]*\))*)\)\s*"
    r"(?:const\s*)?(?:noexcept(?:\s*\([^)]*\))?\s*)?(?:override\s*)?(?:final\s*)?"
    r"(?:->\s*[\w:<>&*,\s]+?)?(?:\s*:\s*[^{};]*)?\s*\{")


class AnalyzerError(RuntimeError):
    pass


def match_bracket(code: str, start: int, open_ch: str, close_ch: str) -> int | None:
    """Offset of the bracket closing the one at `start`, or None."""
    assert code[start] == open_ch
    depth = 0
    for i in range(start, len(code)):
        c = code[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i
    return None


def module_of(display_path: str) -> str:
    parts = display_path.replace(os.sep, "/").split("/")
    return parts[1] if len(parts) > 2 and parts[0] == "src" else ""


# ---------------------------------------------------------------------------
# Internal engine
# ---------------------------------------------------------------------------

def function_bodies(code: str) -> dict[str, list[tuple[int, int]]]:
    """Map function/method name -> body ranges defined in this text."""
    bodies: dict[str, list[tuple[int, int]]] = {}
    for m in FUNC_HEAD_RE.finditer(code):
        name = m.group(1).lstrip("~")
        if name in KEYWORDS:
            continue
        brace = m.end() - 1
        end = match_bracket(code, brace, "{", "}")
        if end is None:
            continue
        bodies.setdefault(name, []).append((brace + 1, end))
    return bodies


def lambda_bodies_in(code: str, start: int, end: int) -> list[tuple[int, int]]:
    """Body ranges of lambda expressions whose introducer lies in [start, end)."""
    out: list[tuple[int, int]] = []
    i = start
    n = len(code)
    while i < min(end, n):
        if code[i] != "[":
            i += 1
            continue
        j = i - 1
        while j >= 0 and code[j] in " \t\n":
            j -= 1
        if j >= 0 and (code[j].isalnum() or code[j] in "_)]"):
            i += 1  # array subscript, not a lambda introducer
            continue
        close = match_bracket(code, i, "[", "]")
        if close is None:
            i += 1
            continue
        k = close + 1
        while k < n and code[k] in " \t\n":
            k += 1
        if k < n and code[k] == "(":
            pclose = match_bracket(code, k, "(", ")")
            if pclose is None:
                i = close + 1
                continue
            k = pclose + 1
        m = re.match(
            r"\s*(?:mutable\s*)?(?:noexcept(?:\s*\([^)]*\))?\s*)?"
            r"(?:->\s*[\w:<>&*\s]+?)?\s*\{", code[k:])
        if not m:
            i = close + 1
            continue
        bstart = k + m.end() - 1
        bend = match_bracket(code, bstart, "{", "}")
        if bend is None:
            i = close + 1
            continue
        out.append((bstart + 1, bend))
        i = bstart + 1  # descend: nested lambdas are handlers too
    return out


def handler_ranges(code: str) -> list[tuple[int, int]]:
    """Body ranges of every event-handler lambda in this text."""
    ranges: list[tuple[int, int]] = []
    for m in HANDLER_CALL_RE.finditer(code):
        paren = code.find("(", m.end() - 1)
        if paren < 0:
            continue
        close = match_bracket(code, paren, "(", ")")
        if close is None:
            continue
        ranges.extend(lambda_bodies_in(code, paren + 1, close))
    for m in HANDLER_ASSIGN_RE.finditer(code):
        stmt_end = code.find(";", m.end())
        if stmt_end < 0:
            stmt_end = len(code)
        ranges.extend(lambda_bodies_in(code, m.end(), stmt_end))
    return ranges


def reachable_ranges(code: str) -> list[tuple[int, int]]:
    """Handler bodies plus the bodies of every same-file function reachable
    from them (transitively)."""
    ranges = handler_ranges(code)
    if not ranges:
        return []
    bodies = function_bodies(code)
    seen_names: set[str] = set()
    frontier = list(ranges)
    while frontier:
        lo, hi = frontier.pop()
        for m in CALLED_NAME_RE.finditer(code, lo, hi):
            name = m.group(1)
            if name in KEYWORDS or name in seen_names:
                continue
            seen_names.add(name)
            for body in bodies.get(name, []):
                frontier.append(body)
                ranges.append(body)
    return ranges


def unordered_names_through_aliases(code: str) -> set[str]:
    """Variables whose type is an unordered container, including through
    `using`/`typedef` aliases and single-step `auto` bindings."""
    alias_types = {m.group(1) for m in ALIAS_RE.finditer(code)}
    alias_types |= {m.group(1) for m in TYPEDEF_RE.finditer(code)}
    names = ld.unordered_container_names(code)
    for alias in alias_types:
        decl = re.compile(r"\b" + re.escape(alias) + r"\s*&?\s+([A-Za-z_]\w*)\s*(?:;|=|\{|\[)")
        names |= {m.group(1) for m in decl.finditer(code)}
    for m in AUTO_BIND_RE.finditer(code):
        if m.group(2) in names:
            names.add(m.group(1))
    return names


def float_names(code: str) -> set[str]:
    return {m.group(1) for m in FLOAT_DECL_RE.finditer(code)}


def operand_windows(code: str, start: int, end: int) -> tuple[str, str]:
    """Text of the (approximate) left and right operands of the binary
    operator spanning [start, end)."""
    left_src = code[max(0, start - 200):start]
    boundaries = [m.end() for m in OPERAND_BOUNDARY_RE.finditer(left_src)]
    left = left_src[boundaries[-1]:] if boundaries else left_src
    right_src = code[end:end + 200]
    m = OPERAND_BOUNDARY_RE.search(right_src)
    right = right_src[:m.start()] if m else right_src
    return left, right


def is_float_operand(text: str, floats: set[str]) -> bool:
    if FLOAT_LITERAL_RE.search(text):
        return True
    return any(ident in floats for ident in ld.IDENT_RE.findall(text))


def in_parameter_list(code: str, pos: int) -> bool:
    """True when `pos` sits inside a function's parameter parentheses: an
    unmatched `(` opens before it in the current statement and that paren is
    introduced by an identifier (the function name), not a control keyword."""
    depth = 0
    i = pos - 1
    while i >= 0:
        ch = code[i]
        if ch == ")":
            depth += 1
        elif ch == "(":
            if depth == 0:
                break
            depth -= 1
        elif ch in ";{}" and depth == 0:
            return False
        i -= 1
    else:
        return False
    j = i - 1
    while j >= 0 and code[j] in " \t\n":
        j -= 1
    end = j + 1
    while j >= 0 and (code[j].isalnum() or code[j] == "_"):
        j -= 1
    name = code[j + 1:end]
    return bool(name) and name not in KEYWORDS


def id_decl_types(code: str) -> dict[str, str]:
    """Variable/parameter name -> strong id type, for ID_TYPE_NAMES decls."""
    return {m.group(2): m.group(1) for m in ID_DECL_RE.finditer(code)}


def id_types_in(text: str, decls: dict[str, str]) -> set[str]:
    """Strong id types whose `.value()` escape appears in `text`."""
    return {decls[m.group(1)] for m in ID_VALUE_CALL_RE.finditer(text)
            if m.group(1) in decls}


def id_mix_windows(code: str, start: int, end: int) -> tuple[str, str]:
    """Left/right operand windows for id-mixing, cut at statement-level
    boundaries (see ID_MIX_BOUNDARY_RE)."""
    left_src = code[max(0, start - 200):start]
    boundaries = [m.end() for m in ID_MIX_BOUNDARY_RE.finditer(left_src)]
    left = left_src[boundaries[-1]:] if boundaries else left_src
    right_src = code[end:end + 200]
    m = ID_MIX_BOUNDARY_RE.search(right_src)
    right = right_src[:m.start()] if m else right_src
    return left, right


def analyze_file_internal(path: str, display_path: str,
                          header_code: str | None) -> list[Violation]:
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        raw = f.read()
    code = ld.strip_comments_and_strings(raw)
    merged = code if header_code is None else code  # header merged per-rule below

    def line_of(offset: int) -> int:
        return code.count("\n", 0, offset) + 1

    violations: list[Violation] = []

    # kernel-blocking: blocking primitives inside handler-reachable code.
    ranges = reachable_ranges(code)
    if ranges:
        flagged: set[int] = set()
        for m in BLOCKING_RE.finditer(code):
            if m.start() in flagged:
                continue
            if any(lo <= m.start() < hi for lo, hi in ranges):
                flagged.add(m.start())
                violations.append(Violation(
                    display_path, line_of(m.start()), "kernel-blocking",
                    f"blocking/wall-clock call `{m.group(0).strip()}` is "
                    "reachable from a discrete-event handler (handlers run on "
                    "the virtual timeline; model delays with "
                    "EventQueue::schedule instead)"))

    # unordered-iteration through aliases/typedefs/auto (plus direct decls,
    # so the same rule name covers both linters' findings).
    names = unordered_names_through_aliases(merged)
    if header_code is not None:
        names |= unordered_names_through_aliases(header_code)
    if names:
        for m in ld.RANGE_FOR_RE.finditer(code):
            hit = ld.find_range_for_container(code, m.start())
            if hit is None:
                continue
            expr, _colon = hit
            idents = ld.IDENT_RE.findall(expr)
            if idents and idents[-1] in names:
                violations.append(Violation(
                    display_path, line_of(m.start()), "unordered-iteration",
                    f"iteration over unordered container `{idents[-1]}` "
                    "(resolved through its declaration/alias); hash order is "
                    "not deterministic -- sort first or justify with an allow"))

    # float-equality in the decision modules.
    if module_of(display_path) in FLOAT_EQ_MODULES:
        floats = float_names(code)
        if header_code is not None:
            floats |= float_names(header_code)
        for m in EQ_RE.finditer(code):
            left, right = operand_windows(code, m.start(), m.end())
            if is_float_operand(left, floats) or is_float_operand(right, floats):
                violations.append(Violation(
                    display_path, line_of(m.start()), "float-equality",
                    f"floating-point `{m.group(1)}` in a scheduling/decision "
                    "module; exact double identity is rarely meaningful -- "
                    "compare with a tolerance or prove the operands are "
                    "computed identically in an allow justification"))

    # narrowing-cast on SimTime/tick arithmetic.
    for m in NARROW_CAST_RE.finditer(code):
        paren = code.rfind("(", 0, m.end())
        close = match_bracket(code, paren, "(", ")")
        arg = code[paren + 1:close] if close is not None else code[paren + 1:paren + 200]
        if TIME_OPERAND_RE.search(arg):
            violations.append(Violation(
                display_path, line_of(m.start()), "narrowing-cast",
                f"static_cast<{m.group(1)}> narrows SimTime/tick arithmetic "
                "(microsecond counts overflow 32 bits in ~36 virtual minutes; "
                "keep tick math in std::int64_t)"))

    # raw-micros: the tick field may only be touched by its owner file.
    rel = display_path.replace("/", os.sep)
    if rel not in TIME_OWNER_FILES:
        for m in RAW_MICROS_RE.finditer(code):
            violations.append(Violation(
                display_path, line_of(m.start()), "raw-micros",
                "raw `.micros` access outside src/util/sim_time.h bypasses "
                "SimTime's saturating operators; use the typed helpers "
                "(scaled_by, minus_clamped, checked_sum) or raw_micros() at "
                "a serialization boundary with an allow justification"))

    # raw-id-api: identity-named raw-integer parameters in public headers.
    if (display_path.endswith((".h", ".hpp"))
            and module_of(display_path) in ID_API_MODULES):
        for m in RAW_INT_PARAM_RE.finditer(code):
            name = m.group(1)
            if not ID_PARAM_NAME_RE.match(name):
                continue
            if not in_parameter_list(code, m.start()):
                continue
            violations.append(Violation(
                display_path, line_of(m.start(1)), "raw-id-api",
                f"parameter `{name}` carries an identity as a raw integer in "
                "a public header; take util::AtomKey / util::NodeIndex / "
                "util::ChannelIndex so id spaces cannot be swapped silently"))

    # id-mixing: arithmetic over `.value()` escapes of distinct id types.
    id_decls = id_decl_types(code)
    if header_code is not None:
        id_decls.update(id_decl_types(header_code))
    if id_decls:
        for m in ARITH_OP_RE.finditer(code):
            left, right = id_mix_windows(code, m.start(), m.end())
            lt = id_types_in(left, id_decls)
            rt = id_types_in(right, id_decls)
            if lt and rt and lt.isdisjoint(rt):
                violations.append(Violation(
                    display_path, line_of(m.start()), "id-mixing",
                    f"arithmetic mixes distinct id spaces "
                    f"({', '.join(sorted(lt))} vs {', '.join(sorted(rt))}); "
                    "unwrapping two different strong id types into one "
                    "expression defeats the typing"))

    # clock-mutation outside the owning file.
    if rel not in CLOCK_OWNER_FILES:
        clock_names = {m.group(1) for m in VCLOCK_DECL_RE.finditer(code)}
        if header_code is not None:
            clock_names |= {m.group(1) for m in VCLOCK_DECL_RE.finditer(header_code)}
        for name in sorted(clock_names):
            mut = re.compile(r"\b" + re.escape(name) + r"\.(" +
                             "|".join(CLOCK_MUTATORS) + r")\s*\(")
            for m in mut.finditer(code):
                violations.append(Violation(
                    display_path, line_of(m.start()), "clock-mutation",
                    f"`{name}.{m.group(1)}()` mutates a VirtualClock outside "
                    "the event loop; only the kernel may move a clock"))

    return violations


# ---------------------------------------------------------------------------
# libclang engine
# ---------------------------------------------------------------------------

def load_cindex():
    """Import clang.cindex and make sure the shared library loads. Raises
    AnalyzerError with an actionable message otherwise."""
    try:
        from clang import cindex  # type: ignore
    except ImportError as e:
        raise AnalyzerError(
            "libclang python bindings unavailable (pip/apt install "
            "python3-clang + libclang): " + str(e))
    try:
        cindex.Index.create()
        return cindex
    except Exception:
        pass
    candidates = sorted(
        glob.glob("/usr/lib/llvm-*/lib/libclang-*.so*")
        + glob.glob("/usr/lib/llvm-*/lib/libclang.so*")
        + glob.glob("/usr/lib/*/libclang-*.so*")
        + glob.glob("/usr/lib/*/libclang.so*"),
        reverse=True)
    for lib in candidates:
        try:
            cindex.Config.loaded = False
            cindex.Config.set_library_file(lib)
            cindex.Index.create()
            return cindex
        except Exception:
            continue
    raise AnalyzerError(
        "clang.cindex imports but no libclang shared library loads "
        "(apt install libclang1 or set CLANG_LIBRARY_FILE)")


def analyze_files_libclang(files: list[tuple[str, str]], compdb_dir: str | None,
                           default_args: list[str]) -> list[Violation]:
    """AST analysis of (path, display_path) pairs. Violations are reported
    only for locations inside the analyzed files themselves."""
    cindex = load_cindex()
    CK = cindex.CursorKind
    index = cindex.Index.create()
    compdb = None
    if compdb_dir and os.path.isfile(os.path.join(compdb_dir, "compile_commands.json")):
        try:
            compdb = cindex.CompilationDatabase.fromDirectory(compdb_dir)
        except cindex.CompilationDatabaseError:
            compdb = None

    violations: list[Violation] = []

    def args_for(path: str) -> list[str]:
        if compdb is not None:
            cmds = compdb.getCompileCommands(os.path.abspath(path))
            if cmds:
                args = list(cmds[0].arguments)[1:]  # drop the compiler itself
                # Drop the output/input file operands; keep flags.
                cleaned, skip = [], False
                for a in args:
                    if skip:
                        skip = False
                        continue
                    if a in ("-o", "-c"):
                        skip = a == "-o"
                        continue
                    if a == path or a == os.path.abspath(path):
                        continue
                    cleaned.append(a)
                return cleaned
        return default_args

    def canonical(type_obj) -> str:
        try:
            return type_obj.get_canonical().spelling
        except Exception:
            return ""

    def in_this_file(cursor, path: str) -> bool:
        loc = cursor.location
        return loc.file is not None and os.path.abspath(loc.file.name) == os.path.abspath(path)

    def walk(cursor):
        for child in cursor.get_children():
            yield child
            yield from walk(child)

    def qualified(cursor) -> str:
        parts = []
        c = cursor
        while c is not None and c.kind != CK.TRANSLATION_UNIT:
            if c.spelling:
                parts.append(c.spelling)
            c = c.semantic_parent
        return "::".join(reversed(parts))

    FLOATS = {"float", "double", "long double"}
    NARROW_INTS = {"int", "unsigned int", "short", "unsigned short",
                   "char", "signed char", "unsigned char"}
    WIDE_SOURCES = ("long", "long long", "unsigned long", "unsigned long long")

    for path, display_path in files:
        try:
            tu = index.parse(path, args=args_for(path))
        except Exception as e:  # parse failure: surface, don't silently skip
            raise AnalyzerError(f"libclang failed to parse {display_path}: {e}")

        def flag(cursor, rule: str, message: str):
            if not in_this_file(cursor, path):
                return
            violations.append(Violation(display_path, cursor.location.line,
                                        rule, message))

        # ---- kernel-blocking: handler lambdas and their call graph ----
        defs: dict[str, object] = {}
        for c in walk(tu.cursor):
            if c.kind in (CK.FUNCTION_DECL, CK.CXX_METHOD, CK.CONSTRUCTOR,
                          CK.FUNCTION_TEMPLATE) and c.is_definition():
                usr = c.get_usr()
                if usr:
                    defs[usr] = c

        handler_lambdas = []
        for c in walk(tu.cursor):
            if c.kind == CK.CALL_EXPR and c.spelling in (
                    "schedule", "submit", "set_idle_hook", "set_observer"):
                for sub in walk(c):
                    if sub.kind == CK.LAMBDA_EXPR:
                        handler_lambdas.append(sub)
            elif c.kind == CK.BINARY_OPERATOR:
                kids = list(c.get_children())
                if len(kids) == 2:
                    lhs_names = {k.spelling for k in walk(kids[0])} | {kids[0].spelling}
                    if lhs_names & {"on_start", "on_complete", "on_abort"}:
                        for sub in walk(kids[1]):
                            if sub.kind == CK.LAMBDA_EXPR:
                                handler_lambdas.append(sub)

        def scan_blocking(cursor, visited: set[str]):
            for c in walk(cursor):
                if c.kind != CK.CALL_EXPR:
                    continue
                name = c.spelling
                ref = c.referenced
                if name in BLOCKING_NAMES:
                    qual = qualified(ref) if ref is not None else name
                    blocking = (
                        "sleep" in name or name in ("usleep", "nanosleep",
                                                    "wall_clock_ns")
                        or (name in ("wait", "wait_for", "wait_until", "join")
                            and ("condition_variable" in qual or "thread" in qual
                                 or "future" in qual))
                        or (name == "now" and "clock" in qual
                            and "VirtualClock" not in qual))
                    if blocking:
                        flag(c, "kernel-blocking",
                             f"blocking/wall-clock call `{qual or name}` is "
                             "reachable from a discrete-event handler")
                if ref is not None:
                    usr = ref.get_usr()
                    if usr and usr not in visited and usr in defs:
                        visited.add(usr)
                        scan_blocking(defs[usr], visited)

        visited: set[str] = set()
        for lam in handler_lambdas:
            scan_blocking(lam, visited)

        def id_keys_of(node) -> set[str]:
            """Strong-id spaces unwrapped via `.value()` inside `node`.
            Keyed by TypedId tag (real tree) or plain type name (fixtures)."""
            keys: set[str] = set()
            for s in [node] + list(walk(node)):
                if s.kind != CK.CALL_EXPR or s.spelling != "value":
                    continue
                kids = list(s.get_children())
                if not kids:
                    continue
                base_kids = list(kids[0].get_children())
                base = base_kids[0] if base_kids else kids[0]
                t = canonical(base.type)
                tag = re.search(r"TypedId<\s*([^,>]+)", t)
                if tag:
                    keys.add(tag.group(1).strip().split("::")[-1])
                else:
                    short = t.replace("const ", "").strip().split("::")[-1]
                    if short in ID_TYPE_NAMES:
                        keys.add(short)
            return keys

        for c in walk(tu.cursor):
            if not in_this_file(c, path):
                continue
            # ---- unordered-iteration (canonical type sees through aliases) --
            if c.kind == CK.CXX_FOR_RANGE_STMT:
                kids = list(c.get_children())
                if len(kids) >= 2:
                    range_expr = kids[-2]
                    if "unordered_" in canonical(range_expr.type):
                        flag(c, "unordered-iteration",
                             "iteration over an unordered container (canonical "
                             f"type `{canonical(range_expr.type)[:80]}`); hash "
                             "order is not deterministic")
            # ---- float-equality / id-mixing (both live on binary ops) ----
            elif c.kind == CK.BINARY_OPERATOR:
                kids = list(c.get_children())
                if len(kids) == 2:
                    # The operator token is the one between the operands (the
                    # cursor's token set also contains operand tokens).
                    lhs_end = kids[0].extent.end.offset
                    rhs_start = kids[1].extent.start.offset
                    mid = [t.spelling for t in c.get_tokens()
                           if lhs_end <= t.extent.start.offset < rhs_start]
                    if (module_of(display_path) in FLOAT_EQ_MODULES
                            and ("==" in mid or "!=" in mid)
                            and any(canonical(k.type) in FLOATS for k in kids)):
                        flag(c, "float-equality",
                             "floating-point ==/!= in a scheduling/decision "
                             "module; compare with a tolerance or prove the "
                             "operands identical in an allow justification")
                    if {"+", "-", "*", "/", "%"} & set(mid):
                        lt, rt = id_keys_of(kids[0]), id_keys_of(kids[1])
                        if lt and rt and lt.isdisjoint(rt):
                            flag(c, "id-mixing",
                                 "arithmetic mixes distinct id spaces "
                                 f"({', '.join(sorted(lt))} vs "
                                 f"{', '.join(sorted(rt))}); unwrapping two "
                                 "different strong id types into one "
                                 "expression defeats the typing")
            # ---- narrowing-cast ----
            elif c.kind in (CK.CXX_STATIC_CAST_EXPR, CK.CSTYLE_CAST_EXPR):
                target = canonical(c.type)
                if target in NARROW_INTS:
                    kids = list(c.get_children())
                    src = kids[-1] if kids else None
                    if src is not None:
                        src_type = canonical(src.type)
                        mentions_time = any(
                            s.spelling == "micros" or "SimTime" in canonical(s.type)
                            for s in walk(src)) or "SimTime" in src_type
                        if mentions_time and (src_type in WIDE_SOURCES
                                              or "SimTime" in src_type
                                              or src_type in FLOATS):
                            flag(c, "narrowing-cast",
                                 f"cast to `{target}` narrows SimTime/tick "
                                 "arithmetic; keep tick math in std::int64_t")
            # ---- raw-micros ----
            elif c.kind == CK.MEMBER_REF_EXPR and c.spelling == "micros":
                ref = c.referenced
                parent = ref.semantic_parent if ref is not None else None
                if (parent is not None and parent.spelling == "SimTime"
                        and display_path.replace("/", os.sep)
                        not in TIME_OWNER_FILES):
                    flag(c, "raw-micros",
                         "raw `.micros` access outside src/util/sim_time.h "
                         "bypasses SimTime's saturating operators; use the "
                         "typed helpers or raw_micros() at a serialization "
                         "boundary with an allow justification")
            # ---- raw-id-api ----
            elif (c.kind == CK.PARM_DECL
                  and display_path.endswith((".h", ".hpp"))
                  and module_of(display_path) in ID_API_MODULES
                  and ID_PARAM_NAME_RE.match(c.spelling or "")):
                if (canonical(c.type).replace("const ", "").strip()
                        in RAW_INT_CANONICAL):
                    flag(c, "raw-id-api",
                         f"parameter `{c.spelling}` carries an identity as a "
                         "raw integer in a public header; take util::AtomKey "
                         "/ util::NodeIndex / util::ChannelIndex so id "
                         "spaces cannot be swapped silently")
            # ---- clock-mutation ----
            elif c.kind == CK.CALL_EXPR and c.spelling in CLOCK_MUTATORS:
                ref = c.referenced
                parent = ref.semantic_parent if ref is not None else None
                if (parent is not None and parent.spelling == "VirtualClock"
                        and display_path.replace("/", os.sep) not in CLOCK_OWNER_FILES):
                    flag(c, "clock-mutation",
                         f"`{c.spelling}()` mutates a VirtualClock outside the "
                         "event loop; only the kernel may move a clock")

    return violations


# ---------------------------------------------------------------------------
# Tree walking, waiver filtering, drivers
# ---------------------------------------------------------------------------

def tree_files(root: str) -> list[tuple[str, str]]:
    files: list[tuple[str, str]] = []
    for rel_dir in ANALYZED_DIRS:
        base = os.path.join(root, rel_dir)
        if not os.path.isdir(base):
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    path = os.path.join(dirpath, name)
                    files.append((path, os.path.relpath(path, root)))
    return files


def paired_header_code(path: str) -> str | None:
    if not path.endswith((".cpp", ".cc")):
        return None
    stem = os.path.splitext(path)[0]
    for ext in (".h", ".hpp"):
        header = stem + ext
        if os.path.isfile(header):
            with open(header, "r", encoding="utf-8", errors="replace") as f:
                return ld.strip_comments_and_strings(f.read())
    return None


def filter_waived(violations: list[Violation], root: str) -> list[Violation]:
    """Drop violations covered by `// jaws-lint: allow(<rule>)` directives."""
    allowed_cache: dict[str, dict[int, set[str]]] = {}
    kept: list[Violation] = []
    for v in violations:
        if v.path not in allowed_cache:
            full = v.path if os.path.isabs(v.path) else os.path.join(root, v.path)
            try:
                with open(full, "r", encoding="utf-8", errors="replace") as f:
                    allowed_cache[v.path] = ld.allowed_rules_by_line(
                        f.read().splitlines())
            except OSError:
                allowed_cache[v.path] = {}
        if v.rule not in allowed_cache[v.path].get(v.line, set()):
            kept.append(v)
    kept.sort(key=lambda v: (v.path, v.line, v.rule))
    return kept


def dedupe(violations: list[Violation]) -> list[Violation]:
    seen: set[tuple[str, int, str]] = set()
    out = []
    for v in violations:
        key = (v.path, v.line, v.rule)
        if key not in seen:
            seen.add(key)
            out.append(v)
    return out


def run_engine(engine: str, files: list[tuple[str, str]], root: str,
               compdb: str | None) -> list[Violation]:
    if engine == "libclang":
        raw = analyze_files_libclang(files, compdb, ["-std=c++20", "-xc++",
                                                     "-I", os.path.join(root, "src")])
    else:
        raw = []
        for path, display_path in files:
            raw.extend(analyze_file_internal(path, display_path,
                                             paired_header_code(path)))
    return dedupe(filter_waived(raw, root))


# ---------------------------------------------------------------------------
# Self-test fixtures: every rule, both ways, plus waivers.
# ---------------------------------------------------------------------------

FIXTURE_PRELUDE = """
namespace std {
struct mutex { void lock(); void unlock(); };
struct condition_variable { template <class L> void wait(L&); };
namespace chrono { struct steady_clock { static long now(); }; }
namespace this_thread { template <class D> void sleep_for(D); }
template <class K, class V> struct unordered_map {
    struct value_type { K first; V second; };
    value_type* begin(); value_type* end();
    const value_type* begin() const; const value_type* end() const;
};
template <class T> struct vector {
    T* begin(); T* end(); const T* begin() const; const T* end() const;
};
}  // namespace std
struct SimTime { long long micros; };
struct AtomKey { unsigned long long v; unsigned long long value() const; };
struct NodeIndex { unsigned v; unsigned value() const; };
struct ChannelIndex { unsigned long v; unsigned long value() const; };
struct VirtualClock {
    void advance(SimTime);
    void advance_to(SimTime);
    void reset();
    SimTime now() const;
};
struct EventQueue {
    template <class F> unsigned long schedule(SimTime, int, F);
};
"""

SELFTEST_CASES = [
    ("bad_blocking_direct.cpp", FIXTURE_PRELUDE + """
void f(EventQueue& q, SimTime t) {
    q.schedule(t, 0, [] { std::this_thread::sleep_for(5); });
}
""", ["kernel-blocking"]),
    ("bad_blocking_transitive.cpp", FIXTURE_PRELUDE + """
std::mutex m;
std::condition_variable cv;
void helper() { cv.wait(m); }
void f(EventQueue& q, SimTime t) {
    q.schedule(t, 0, [] { helper(); });
}
""", ["kernel-blocking"]),
    ("ok_blocking_unreachable.cpp", FIXTURE_PRELUDE + """
// Blocking outside any handler is the thread pool's business, not ours.
void shutdown_path() { std::this_thread::sleep_for(5); }
void f(EventQueue& q, SimTime t) {
    q.schedule(t, 0, [] { int x = 1; (void)x; });
}
""", []),
    ("ok_blocking_waived.cpp", FIXTURE_PRELUDE + """
void f(EventQueue& q, SimTime t) {
    q.schedule(t, 0, [] {
        // jaws-lint: allow(kernel-blocking) -- fixture: proven-safe site.
        std::this_thread::sleep_for(5);
    });
}
""", []),
    ("bad_unordered_alias.cpp", FIXTURE_PRELUDE + """
using AtomMap = std::unordered_map<int, int>;
int f(const AtomMap& unused) {
    AtomMap counts_;
    int total = 0;
    for (const auto& kv : counts_) total += kv.second;
    return total + (unused.begin() == unused.end() ? 0 : 1);
}
""", ["unordered-iteration"]),
    ("bad_unordered_auto.cpp", FIXTURE_PRELUDE + """
int f() {
    std::unordered_map<int, int> counts;
    auto& view = counts;
    int total = 0;
    for (const auto& kv : view) total += kv.second;
    return total;
}
""", ["unordered-iteration"]),
    ("ok_unordered_vector_alias.cpp", FIXTURE_PRELUDE + """
using Order = std::vector<int>;
int f() {
    Order order;
    int total = 0;
    for (int v : order) total += v;
    return total;
}
""", []),
    ("bad_float_eq.cpp", FIXTURE_PRELUDE + """
bool f(double utility, double best) { return utility == best; }
""", ["float-equality"]),
    ("bad_float_literal.cpp", FIXTURE_PRELUDE + """
int f(double alpha) {
    if (alpha != 1.0) return 2;
    return 3;
}
""", ["float-equality"]),
    ("ok_int_eq.cpp", FIXTURE_PRELUDE + """
bool f(int a, long long b, const std::vector<int>& v) {
    bool edge = v.begin() == v.end();
    return a == 3 && b != 7 && edge;
}
""", []),
    ("ok_float_eq_waived.cpp", FIXTURE_PRELUDE + """
bool f(double cached, double derived) {
    // jaws-lint: allow(float-equality) -- fixture: operands computed
    // identically, exact identity is the contract under test.
    return cached == derived;
}
""", []),
    ("bad_narrow_cast.cpp", FIXTURE_PRELUDE + """
// jaws-lint: allow(raw-micros) -- fixture: exercising the cast rule alone.
int f(SimTime t) { return static_cast<int>(t.micros); }
// jaws-lint: allow(raw-micros) -- fixture: exercising the cast rule alone.
unsigned g(SimTime t) { return static_cast<unsigned int>(t.micros / 1000); }
""", ["narrowing-cast", "narrowing-cast"]),
    ("ok_wide_cast.cpp", FIXTURE_PRELUDE + """
// jaws-lint: allow(raw-micros) -- fixture: exercising the cast rule alone.
long long f(SimTime t) { return static_cast<long long>(t.micros); }
// jaws-lint: allow(raw-micros) -- fixture: exercising the cast rule alone.
double g(SimTime t) { return static_cast<double>(t.micros); }
int h(int count) { return static_cast<int>(count + 1); }
""", []),
    ("bad_raw_micros.cpp", FIXTURE_PRELUDE + """
long long half_ticks(SimTime t) { return t.micros / 2; }
""", ["raw-micros"]),
    ("ok_raw_micros_waived.cpp", FIXTURE_PRELUDE + """
long long serialize(SimTime t) {
    // jaws-lint: allow(raw-micros) -- fixture: serialization boundary.
    return t.micros;
}
""", []),
    ("bad_raw_id_api.h", FIXTURE_PRELUDE + """
struct Router {
    void route(unsigned node,
               int channel);
    unsigned long owner_of(unsigned long long atom) const;
};
""", ["raw-id-api", "raw-id-api", "raw-id-api"]),
    ("ok_typed_id_api.h", FIXTURE_PRELUDE + """
struct Router {
    void route(NodeIndex node, AtomKey atom);
    NodeIndex owner_of(unsigned long long morton, unsigned long nodes) const;
};
""", []),
    ("bad_id_mixing.cpp", FIXTURE_PRELUDE + """
unsigned long long fold(AtomKey atom, NodeIndex node) {
    return atom.value() + node.value();
}
""", ["id-mixing"]),
    ("ok_id_same_space.cpp", FIXTURE_PRELUDE + """
unsigned ring_distance(NodeIndex a, NodeIndex b, AtomKey atom) {
    unsigned long long morton = atom.value() * 2;
    return a.value() - b.value() + static_cast<unsigned>(morton);
}
""", []),
    ("bad_clock_mutation.cpp", FIXTURE_PRELUDE + """
void f(VirtualClock& clock, SimTime t) { clock.advance(t); }
""", ["clock-mutation"]),
    ("ok_clock_reader.cpp", FIXTURE_PRELUDE + """
struct Cursor { void advance(SimTime); };
SimTime f(const VirtualClock& clock, Cursor& cur, SimTime t) {
    cur.advance(t);  // not a VirtualClock: free to move
    return clock.now();
}
""", []),
]

# Mutating a VirtualClock — and touching the raw `.micros` tick field —
# inside the owning file are the sanctioned sites.
OWNER_FIXTURE = ("sim_time.h", FIXTURE_PRELUDE + """
inline void tick(VirtualClock& clock, SimTime t) { clock.advance(t); }
inline long long ticks_of(SimTime t) { return t.micros; }
""", [])

# Fixtures written into other analyzed modules, pinning FLOAT_EQ_MODULES
# coverage: float identity must be flagged in field/ and workload/ too.
MODULE_FIXTURES = [
    (os.path.join("src", "field"), "bad_float_eq_field.cpp",
     FIXTURE_PRELUDE + """
bool f(double amplitude, double phase) { return amplitude == phase; }
""", ["float-equality"]),
    (os.path.join("src", "workload"), "bad_float_eq_workload.cpp",
     FIXTURE_PRELUDE + """
int f(double think_s) {
    if (think_s != 0.0) return 1;
    return 0;
}
""", ["float-equality"]),
]


def self_test(engines: list[str], root_hint: str) -> int:
    failures = 0
    ran: list[str] = []
    for engine in engines:
        with tempfile.TemporaryDirectory(prefix="jaws_analyzer_selftest_") as tmp:
            core_dir = os.path.join(tmp, "src", "core")
            util_dir = os.path.join(tmp, "src", "util")
            os.makedirs(core_dir)
            os.makedirs(util_dir)
            files: list[tuple[str, str]] = []
            for name, source, _expected in SELFTEST_CASES:
                path = os.path.join(core_dir, name)
                with open(path, "w", encoding="utf-8") as f:
                    f.write(source)
            owner_path = os.path.join(util_dir, OWNER_FIXTURE[0])
            with open(owner_path, "w", encoding="utf-8") as f:
                f.write(OWNER_FIXTURE[1])
            for rel_dir, name, source, _expected in MODULE_FIXTURES:
                os.makedirs(os.path.join(tmp, rel_dir), exist_ok=True)
                with open(os.path.join(tmp, rel_dir, name), "w",
                          encoding="utf-8") as f:
                    f.write(source)
            files = tree_files(tmp)
            try:
                found = run_engine(engine, files, tmp, None)
            except AnalyzerError as e:
                print(f"SELF-TEST FAIL ({engine}): {e}", file=sys.stderr)
                return 1
            by_file: dict[str, list[Violation]] = {}
            for v in found:
                by_file.setdefault(os.path.basename(v.path), []).append(v)
            module_cases = [(name, source, expected)
                            for _rel, name, source, expected in MODULE_FIXTURES]
            for name, _source, expected in (SELFTEST_CASES + [OWNER_FIXTURE]
                                            + module_cases):
                got = [v.rule for v in by_file.get(name, [])]
                if got != expected:
                    failures += 1
                    print(f"SELF-TEST FAIL ({engine}) {name}: expected "
                          f"{expected}, got {got}", file=sys.stderr)
                    for v in by_file.get(name, []):
                        print(f"    {v}", file=sys.stderr)
            ran.append(engine)
    if failures == 0:
        total = len(SELFTEST_CASES) + 1 + len(MODULE_FIXTURES)
        print(f"jaws_analyzer self-test: {total} fixtures ok "
              f"(engines: {', '.join(ran)})")
        return 0
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: the script's parent repo)")
    parser.add_argument("--compdb", default=None,
                        help="build dir holding compile_commands.json "
                             "(libclang engine; default: <root>/build)")
    parser.add_argument("--engine", choices=("auto", "libclang", "internal"),
                        default="auto",
                        help="auto = libclang when available, else internal")
    parser.add_argument("--require-libclang", action="store_true",
                        help="hard-fail (exit 2) instead of falling back to "
                             "the internal engine (CI)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the analyzer's own fixture suite and exit")
    args = parser.parse_args()

    root = args.root or os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

    libclang_available = True
    libclang_error = ""
    try:
        load_cindex()
    except AnalyzerError as e:
        libclang_available = False
        libclang_error = str(e)

    if args.engine == "libclang" or args.require_libclang:
        if not libclang_available:
            print(f"jaws_analyzer: libclang required but unavailable: "
                  f"{libclang_error}", file=sys.stderr)
            return 2
        engines = ["libclang"]
    elif args.engine == "internal":
        engines = ["internal"]
    else:  # auto
        engines = ["libclang"] if libclang_available else ["internal"]
        if not libclang_available:
            print("jaws_analyzer: note: libclang bindings unavailable "
                  f"({libclang_error}); using the internal engine. The AST "
                  "engine runs in CI.", file=sys.stderr)

    if args.self_test:
        # Always exercise the internal engine (it is the tested fallback);
        # add libclang when it can load.
        selftest_engines = ["internal"]
        if libclang_available and args.engine != "internal":
            selftest_engines.append("libclang")
        elif args.require_libclang:
            selftest_engines = ["internal", "libclang"]
        return self_test(selftest_engines, root)

    if not os.path.isdir(os.path.join(root, "src")):
        print(f"jaws_analyzer: no src/ under {root}", file=sys.stderr)
        return 2

    compdb = args.compdb or os.path.join(root, "build")
    try:
        violations = run_engine(engines[0], tree_files(root), root, compdb)
    except AnalyzerError as e:
        print(f"jaws_analyzer: {e}", file=sys.stderr)
        return 2

    for v in violations:
        print(v)
    if violations:
        print(f"\njaws_analyzer: {len(violations)} violation(s) "
              f"({engines[0]} engine). Fix them or annotate with "
              "`// jaws-lint: allow(<rule>)` plus a justification.",
              file=sys.stderr)
        return 1
    print(f"jaws_analyzer: clean ({engines[0]} engine)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
