#!/usr/bin/env bash
# Tier-1 verification: build + full test suite, optionally under sanitizers,
# plus a deterministic fault-sweep smoke run and the static gates.
#
#   scripts/check.sh            # plain RelWithDebInfo build + ctest + smoke
#   scripts/check.sh --asan     # same, built with address+UB sanitizers
#   scripts/check.sh --tsan     # same, built with the thread sanitizer
#   scripts/check.sh --audit    # same, with JAWS_AUDIT_BUILD contract audits
#   scripts/check.sh --intsan   # same, with -fsanitize=signed-integer-overflow
#                               # (proves SimTime saturation leaves no UB)
#   scripts/check.sh --tidy     # static gates only: determinism lint +
#                               # semantic analyzer + layering lint +
#                               # clang-tidy over compile_commands.json
#   scripts/check.sh --fast     # skip the sanitizer-unfriendly smoke run
#   scripts/check.sh --fuzz[=N] # build the libFuzzer harnesses (Clang only)
#                               # and run each over its seed corpus for N
#                               # seconds (default 30); crash artifacts land
#                               # in build-fuzzer/artifacts/<target>/
set -euo pipefail
cd "$(dirname "$0")/.."

preset=default
smoke=1
tidy=0
fuzz=0
fuzz_seconds=30
for arg in "$@"; do
    case "$arg" in
        --asan) preset=asan-ubsan ;;
        --tsan) preset=tsan ;;
        --audit) preset=audit ;;
        --intsan) preset=intsan ;;
        --tidy) tidy=1 ;;
        --fast) smoke=0 ;;
        --fuzz) fuzz=1 ;;
        --fuzz=*) fuzz=1; fuzz_seconds="${arg#--fuzz=}" ;;
        *) echo "usage: $0 [--asan|--tsan|--audit|--intsan|--tidy|--fuzz[=N]] [--fast]" >&2
           exit 2 ;;
    esac
done

echo "== determinism lint =="
python3 scripts/lint_determinism.py --self-test
python3 scripts/lint_determinism.py

echo "== module layering lint =="
python3 scripts/lint_layering.py --self-test
python3 scripts/lint_layering.py

echo "== semantic analyzer =="
# Content-stamped like clang-tidy below: the analyzer's input is the source
# tree plus the analyzer itself.
mkdir -p build
analyzer_stamp_file=build/analyzer.stamp
analyzer_stamp="$( (cat scripts/jaws_analyzer.py scripts/lint_determinism.py;
                    find src -type f \( -name '*.h' -o -name '*.cpp' \) -print0 |
                        sort -z | xargs -0 cat) | sha256sum | cut -d' ' -f1)"
if [[ -f "$analyzer_stamp_file" && "$(cat "$analyzer_stamp_file")" == "$analyzer_stamp" ]]; then
    echo "jaws_analyzer: cached clean run ($analyzer_stamp)"
else
    python3 scripts/jaws_analyzer.py --self-test
    python3 scripts/jaws_analyzer.py --compdb build
    echo "$analyzer_stamp" > "$analyzer_stamp_file"
fi

if [[ "$tidy" == 1 ]]; then
    echo "== configure (default, for compile_commands.json) =="
    cmake --preset default

    command -v clang-tidy >/dev/null 2>&1 || {
        echo "check.sh --tidy: clang-tidy not found on PATH" >&2
        echo "(CI installs it; locally: apt-get install clang-tidy)" >&2
        exit 3
    }

    # Cache: skip the run when nothing that feeds clang-tidy has changed --
    # including the build configuration (CMakeLists.txt / CMakePresets.json
    # change compile flags, and flags change diagnostics).
    # CI persists build/tidy.stamp keyed the same way.
    stamp_file=build/tidy.stamp
    stamp="$( (clang-tidy --version; cat .clang-tidy CMakeLists.txt CMakePresets.json;
               find src -name CMakeLists.txt -print0 | sort -z | xargs -0 cat;
               find src -type f \( -name '*.h' -o -name '*.cpp' \) -print0 |
                   sort -z | xargs -0 cat) | sha256sum | cut -d' ' -f1)"
    if [[ -f "$stamp_file" && "$(cat "$stamp_file")" == "$stamp" ]]; then
        echo "== clang-tidy: cached clean run ($stamp) =="
        exit 0
    fi

    echo "== clang-tidy (zero-warnings gate over src/) =="
    mapfile -t tidy_sources < <(find src -name '*.cpp' | sort)
    if command -v run-clang-tidy >/dev/null 2>&1; then
        run-clang-tidy -p build -quiet "${tidy_sources[@]}"
    else
        clang-tidy -p build --quiet "${tidy_sources[@]}"
    fi
    echo "$stamp" > "$stamp_file"
    echo "== clang-tidy clean =="
    exit 0
fi

if [[ "$fuzz" == 1 ]]; then
    command -v clang++ >/dev/null 2>&1 || {
        echo "check.sh --fuzz: clang++ not found on PATH" >&2
        echo "(libFuzzer needs Clang; the replay ctests cover the corpora" >&2
        echo " under any compiler: ctest -R FuzzReplay)" >&2
        exit 3
    }

    echo "== configure (fuzzer) =="
    cmake --preset fuzzer

    targets=(fuzz_event_queue fuzz_disk_model fuzz_config fuzz_trace)

    echo "== build (fuzzer) =="
    cmake --build --preset fuzzer -j "$(nproc)" --target "${targets[@]}"

    status=0
    for target in "${targets[@]}"; do
        artifacts="build-fuzzer/artifacts/$target"
        mkdir -p "$artifacts"
        echo "== fuzz $target (${fuzz_seconds}s) =="
        if ! "build-fuzzer/fuzz/$target" \
                -max_total_time="$fuzz_seconds" \
                -artifact_prefix="$artifacts/" \
                -print_final_stats=1 \
                "fuzz/corpus/$target"; then
            echo "check.sh --fuzz: $target found a crash; artifacts in $artifacts" >&2
            status=1
        fi
    done
    [[ "$status" == 0 ]] || exit "$status"
    echo "== fuzz smoke passed =="
    exit 0
fi

echo "== configure ($preset) =="
cmake --preset "$preset"

echo "== build =="
cmake --build --preset "$preset" -j "$(nproc)"

echo "== ctest =="
ctest --preset "$preset" -j "$(nproc)"

if [[ "$smoke" == 1 ]]; then
    build_dir=build
    case "$preset" in
        asan-ubsan) build_dir=build-asan ;;
        tsan) build_dir=build-tsan ;;
        audit) build_dir=build-audit ;;
        intsan) build_dir=build-intsan ;;
    esac
    echo "== fault sweep smoke (determinism) =="
    "$build_dir/bench/fault_sweep" 10 > /tmp/jaws_fault_sweep_a.txt
    "$build_dir/bench/fault_sweep" 10 > /tmp/jaws_fault_sweep_b.txt
    diff /tmp/jaws_fault_sweep_a.txt /tmp/jaws_fault_sweep_b.txt
    echo "fault sweep reproducible"
fi

echo "== all checks passed =="
