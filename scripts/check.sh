#!/usr/bin/env bash
# Tier-1 verification: build + full test suite, optionally under ASan/UBSan,
# plus a deterministic fault-sweep smoke run.
#
#   scripts/check.sh            # plain RelWithDebInfo build + ctest + smoke
#   scripts/check.sh --asan     # same, built with address+UB sanitizers
#   scripts/check.sh --fast     # skip the sanitizer-unfriendly smoke run
set -euo pipefail
cd "$(dirname "$0")/.."

preset=default
smoke=1
for arg in "$@"; do
    case "$arg" in
        --asan) preset=asan-ubsan ;;
        --fast) smoke=0 ;;
        *) echo "usage: $0 [--asan] [--fast]" >&2; exit 2 ;;
    esac
done

echo "== configure ($preset) =="
cmake --preset "$preset"

echo "== build =="
cmake --build --preset "$preset" -j "$(nproc)"

echo "== ctest =="
ctest --preset "$preset" -j "$(nproc)"

if [[ "$smoke" == 1 ]]; then
    build_dir=build
    [[ "$preset" == asan-ubsan ]] && build_dir=build-asan
    echo "== fault sweep smoke (determinism) =="
    "$build_dir/bench/fault_sweep" 10 > /tmp/jaws_fault_sweep_a.txt
    "$build_dir/bench/fault_sweep" 10 > /tmp/jaws_fault_sweep_b.txt
    diff /tmp/jaws_fault_sweep_a.txt /tmp/jaws_fault_sweep_b.txt
    echo "fault sweep reproducible"
fi

echo "== all checks passed =="
