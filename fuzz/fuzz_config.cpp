// Fuzz harness for config decoding and validation.
//
// Builds an EngineConfig / ClusterConfig from fuzzer bytes — mixing
// plausible in-range values with raw bit-pattern doubles (NaN, infinities,
// denormals, huge magnitudes) and extreme integers — and calls validate().
// The contract under test: validate() either accepts the config or throws
// std::invalid_argument with a descriptive message. Any other outcome
// (a crash, UB caught by the sanitizers, a different exception type) is a
// bug: Engine construction trusts validate() as its only gate against
// nonsensical input.
#include <cstdint>
#include <stdexcept>

#include "core/cluster.h"
#include "core/config.h"
#include "fuzz_input.h"
#include "util/sim_time.h"

namespace {

using jaws::core::CachePolicy;
using jaws::core::ClusterConfig;
using jaws::core::ClusterMode;
using jaws::core::EngineConfig;
using jaws::core::SchedulerKind;
using jaws::fuzz::FuzzInput;

/// Half the time a plausible value, half the time raw bits — validate()
/// must survive both and the fuzzer should explore both accept and reject
/// paths rather than drowning in one of them.
double fuzz_double(FuzzInput& in, double lo, double hi) {
    return in.boolean() ? in.unit_range(lo, hi) : in.raw_double();
}

void decode_engine(FuzzInput& in, EngineConfig& cfg) {
    // Grid geometry: small powers of two keep atoms_per_step() computable,
    // while the raw branch probes the divisibility / zero-size rejections.
    if (in.boolean()) {
        cfg.grid.voxels_per_side = 1u << in.below(11);
        cfg.grid.atom_side = 1u << in.below(8);
    } else {
        cfg.grid.voxels_per_side = in.u32();
        cfg.grid.atom_side = in.u32();
    }
    cfg.grid.ghost = static_cast<std::uint32_t>(in.below(256));
    cfg.grid.timesteps = static_cast<std::uint32_t>(in.below(64));
    cfg.grid.dt = fuzz_double(in, 0.0, 1.0);

    cfg.field.seed = in.u64();
    cfg.field.modes = in.below(64);
    cfg.field.max_wavenumber = fuzz_double(in, 0.0, 32.0);
    cfg.field.rms_velocity = fuzz_double(in, 0.0, 10.0);
    cfg.field.time_scale = fuzz_double(in, 0.0, 10.0);

    cfg.disk.settle_ms = fuzz_double(in, 0.0, 10.0);
    cfg.disk.seek_full_stroke_ms = fuzz_double(in, 0.0, 50.0);
    cfg.disk.transfer_mb_per_s = fuzz_double(in, 0.0, 1000.0);
    cfg.disk.capacity_bytes = in.u64();
    cfg.disk.heavy_tail.rate = fuzz_double(in, 0.0, 1.0);
    cfg.disk.heavy_tail.pareto = in.boolean();
    cfg.disk.heavy_tail.lognormal_mu = fuzz_double(in, -4.0, 4.0);
    cfg.disk.heavy_tail.lognormal_sigma = fuzz_double(in, 0.0, 4.0);
    cfg.disk.heavy_tail.pareto_alpha = fuzz_double(in, 0.0, 8.0);
    cfg.disk.heavy_tail.pareto_min = fuzz_double(in, 0.0, 16.0);

    cfg.io_depth = in.below(64);
    cfg.compute_workers = in.below(64);
    cfg.eval.parallel = in.boolean();
    cfg.eval.threads = in.below(64);

    cfg.compute.t_m_us = fuzz_double(in, 0.0, 1000.0);
    cfg.estimates.t_b_ms = fuzz_double(in, 0.0, 1000.0);
    cfg.estimates.t_m_ms = fuzz_double(in, 0.0, 10.0);
    cfg.estimates.atoms_per_step = in.u64();

    cfg.cache.policy = static_cast<CachePolicy>(in.below(8));
    cfg.cache.capacity_atoms = in.below(1 << 20);
    cfg.cache.slru_protected_fraction = fuzz_double(in, 0.0, 1.0);
    cfg.cache.lru_k = static_cast<unsigned>(in.below(16));
    cfg.cache.twoq_in_fraction = fuzz_double(in, 0.0, 1.0);

    cfg.scheduler.kind = static_cast<SchedulerKind>(in.below(5));
    cfg.scheduler.liferaft_alpha = fuzz_double(in, 0.0, 1.0);
    cfg.scheduler.jaws.batch_size_k = in.below(256);
    cfg.scheduler.jaws.two_level = in.boolean();
    cfg.scheduler.jaws.job_aware = in.boolean();
    cfg.scheduler.jaws.adaptive_alpha = in.boolean();
    cfg.scheduler.jaws.alpha.initial_alpha = fuzz_double(in, 0.0, 1.0);
    cfg.scheduler.jaws.alpha.run_length = in.below(1 << 12);
    cfg.scheduler.jaws.alpha.smoothing = fuzz_double(in, 0.0, 1.0);
    cfg.scheduler.jaws.alpha.stall_epsilon = fuzz_double(in, 0.0, 1.0);
    cfg.scheduler.jaws.alpha.explore_step = fuzz_double(in, 0.0, 1.0);
    cfg.scheduler.jaws.qos.enabled = in.boolean();
    cfg.scheduler.jaws.qos.slack_factor = fuzz_double(in, 0.0, 64.0);
    cfg.scheduler.jaws.qos.margin_ms = fuzz_double(in, 0.0, 60000.0);

    cfg.run_length = in.below(1 << 12);
    cfg.materialize_data = in.boolean();
    cfg.prefetch.enabled = in.boolean();
    cfg.prefetch.max_atoms_per_batch = in.below(64);
    cfg.prefetch.min_history = in.below(16);
    cfg.prefetch.max_centroid_jump = fuzz_double(in, 0.0, 2.0);
    cfg.timeline_window_s = fuzz_double(in, 0.0, 100.0);
    cfg.support_read_fraction = fuzz_double(in, 0.0, 1.0);
    cfg.dispatch_overhead_ms = fuzz_double(in, 0.0, 100.0);

    cfg.faults.seed = in.u64();
    cfg.faults.transient_error_rate = fuzz_double(in, 0.0, 1.0);
    cfg.faults.latency_spike_rate = fuzz_double(in, 0.0, 1.0);
    cfg.faults.latency_spike_mean_ms = fuzz_double(in, 0.0, 10000.0);
    cfg.faults.stuck_read_rate = fuzz_double(in, 0.0, 1.0);
    cfg.faults.stuck_read_ms = fuzz_double(in, 0.0, 10000.0);
    const std::size_t bad_ranges = in.below(4);
    for (std::size_t i = 0; i < bad_ranges; ++i) {
        jaws::storage::BadRange range;
        range.morton_begin = in.u64();
        range.morton_end = in.u64();
        cfg.faults.bad_ranges.push_back(range);
    }

    cfg.retry.max_attempts = in.below(32);
    cfg.retry.backoff_base_ms = fuzz_double(in, 0.0, 1000.0);
    cfg.retry.backoff_multiplier = fuzz_double(in, 0.0, 8.0);
    cfg.retry.backoff_cap_ms = fuzz_double(in, 0.0, 10000.0);
    cfg.retry.total_retry_budget = in.below(1 << 16);

    cfg.hedge.enabled = in.boolean();
    cfg.hedge.trigger_ms = fuzz_double(in, 0.0, 1000.0);
    cfg.hedge.trigger_ewma_multiplier = fuzz_double(in, 0.0, 16.0);
    cfg.hedge.ewma_alpha = fuzz_double(in, 0.0, 1.0);
    cfg.hedge.max_outstanding = in.below(64);
    cfg.hedge.budget_per_query = in.below(64);

    cfg.deadline_budget_ms = fuzz_double(in, 0.0, 60000.0);
    cfg.halt_at = jaws::util::SimTime{in.boolean() ? INT64_MAX : in.range(-10, 1 << 20)};
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    FuzzInput in(data, size);

    ClusterConfig cluster;
    decode_engine(in, cluster.node);
    cluster.nodes = in.below(17);  // includes the rejected 0-node case
    cluster.replication = in.below(21);
    cluster.mode = static_cast<ClusterMode>(in.below(3));
    const std::size_t downs = in.below(4);
    for (std::size_t i = 0; i < downs; ++i) {
        jaws::storage::NodeDownEvent ev;
        ev.node = jaws::util::NodeIndex{static_cast<std::uint32_t>(in.below(20))};
        ev.at = jaws::util::SimTime{in.range(-10, 1 << 20)};
        cluster.node.faults.node_down.push_back(ev);
    }

    // Accept or reject — never crash, never throw anything else.
    try {
        cluster.node.validate();
    } catch (const std::invalid_argument&) {
    }
    try {
        cluster.validate();
    } catch (const std::invalid_argument&) {
    }
    return 0;
}
