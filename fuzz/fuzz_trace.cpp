// Fuzz harness for the workload trace CSV parser.
//
// Feeds the raw fuzzer bytes to workload::parse_csv. The contract: any byte
// string either parses to records or throws std::runtime_error — never UB
// (the original sscanf-based parser had undefined behaviour on numeric
// overflow and cast unvalidated integers straight to enums), never any
// other exception. When the input does parse, formatting the records with
// to_csv and reparsing must reproduce them exactly: the parser accepts
// nothing it cannot round-trip.
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "fuzz_input.h"
#include "workload/trace.h"

namespace {

using jaws::workload::TraceRecord;

bool same_record(const TraceRecord& a, const TraceRecord& b) {
    return a.query == b.query && a.true_job == b.true_job &&
           a.seq_in_job == b.seq_in_job && a.user == b.user &&
           a.job_type == b.job_type && a.timestep == b.timestep &&
           a.kind == b.kind && a.positions == b.positions && a.atoms == b.atoms &&
           a.submit == b.submit;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    const std::string_view text(reinterpret_cast<const char*>(data), size);

    std::vector<TraceRecord> records;
    try {
        records = jaws::workload::parse_csv(text);
    } catch (const std::runtime_error&) {
        return 0;  // rejecting malformed input is the other half of the contract
    }

    // Accepted input must round-trip bit-exactly through the formatter.
    std::vector<TraceRecord> again;
    try {
        again = jaws::workload::parse_csv(jaws::workload::to_csv(records));
    } catch (const std::runtime_error&) {
        JAWS_FUZZ_REQUIRE(false, "parser rejected its own formatter's output");
    }
    JAWS_FUZZ_REQUIRE(again.size() == records.size(),
                      "round-trip changed the record count");
    for (std::size_t i = 0; i < records.size(); ++i)
        JAWS_FUZZ_REQUIRE(same_record(records[i], again[i]),
                          "round-trip changed a record");
    return 0;
}
