// Fuzz harness for storage::DiskModel.
//
// Decodes the input into a DiskSpec (including adversarial heavy-tail
// parameters) plus a program of read / charge_delay / cancel_tail /
// refund_delay / out-of-range operations, and mirrors the documented ledger
// in the harness:
//
//   * service_time and fault_delay never go negative and always equal the
//     mirrored ledger exactly (charges minus clamped refunds) — the "no
//     negative or double refunds" contract hedged-read cancellation relies
//     on;
//   * a read never costs less than its peek_cost (heavy-tail multipliers
//     are >= 1), and costs exactly peek_cost when the tail is disabled;
//   * request counters (requests, sequential, aborted, bytes, slow draws)
//     match the mirror, and reads on a nonexistent channel throw
//     std::out_of_range instead of corrupting head state.
#include <cstdint>
#include <stdexcept>

#include "fuzz_input.h"
#include "storage/disk_model.h"
#include "util/sim_time.h"

namespace {

using jaws::fuzz::FuzzInput;
using jaws::storage::DiskModel;
using jaws::storage::DiskSpec;
using jaws::util::ChannelIndex;
using jaws::util::SimTime;

constexpr int kMaxOps = 256;

DiskSpec decode_spec(FuzzInput& in) {
    DiskSpec spec;
    spec.settle_ms = in.unit_range(0.0, 10.0);
    spec.seek_full_stroke_ms = in.unit_range(0.0, 50.0);
    spec.transfer_mb_per_s = in.unit_range(0.1, 1000.0);
    spec.capacity_bytes = 1ULL << (20 + in.below(21));  // 1 MB .. 1 TB
    spec.heavy_tail.rate = in.boolean() ? in.unit_range(0.0, 1.0) : 0.0;
    spec.heavy_tail.pareto = in.boolean();
    spec.heavy_tail.lognormal_mu = in.unit_range(-2.0, 4.0);
    spec.heavy_tail.lognormal_sigma = in.unit_range(0.0, 3.0);
    spec.heavy_tail.pareto_alpha = in.unit_range(0.05, 5.0);
    spec.heavy_tail.pareto_min = in.unit_range(1.0, 10.0);
    spec.heavy_tail.seed = in.u64();
    return spec;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    FuzzInput in(data, size);
    const DiskSpec spec = decode_spec(in);
    const std::size_t channels = in.below(8) + 1;
    DiskModel disk(spec, channels);
    JAWS_FUZZ_REQUIRE(disk.channels() == channels, "channel count mismatch");

    // Mirrored ledger (the documented clamp semantics, applied externally).
    std::int64_t service_us = 0, fault_us = 0;
    std::uint64_t requests = 0, aborted = 0, bytes_total = 0;
    SimTime last_cost = SimTime::zero();

    for (int op = 0; op < kMaxOps && !in.exhausted(); ++op) {
        switch (in.below(6)) {
            case 0:
            case 1: {  // read, priced against peek_cost
                const std::uint64_t offset = in.u64() % (1ULL << 50);
                const std::uint64_t bytes = in.u64() % (1ULL << 30);
                const ChannelIndex channel{in.below(channels)};
                const SimTime peek = disk.peek_cost(offset, bytes, channel);
                const SimTime cost = disk.read(offset, bytes, channel);
                JAWS_FUZZ_REQUIRE(cost.micros >= 0, "negative read cost");
                JAWS_FUZZ_REQUIRE(cost >= peek,
                                  "read cost below the straggler-free peek");
                if (!spec.heavy_tail.enabled())
                    JAWS_FUZZ_REQUIRE(cost == peek,
                                      "read and peek disagree without a heavy tail");
                service_us += cost.micros;
                ++requests;
                bytes_total += bytes;
                last_cost = cost;
                break;
            }
            case 2: {  // charge_delay, including negative spans (must be ignored)
                const SimTime extra = SimTime::from_micros(in.range(-100000, 1000000));
                disk.charge_delay(extra);
                if (extra.micros > 0) fault_us += extra.micros;
                break;
            }
            case 3: {  // cancel_tail, including over- and negative refunds
                const std::int64_t tail =
                    in.boolean() ? in.range(-100000, 100000)
                                 : last_cost.micros + in.range(0, 1000);
                disk.cancel_tail(SimTime::from_micros(tail));
                service_us -= tail > 0 ? tail : 0;
                if (service_us < 0) service_us = 0;
                ++aborted;
                break;
            }
            case 4: {  // refund_delay, same clamp contract on the fault side
                const std::int64_t tail = in.range(-100000, 2000000);
                disk.refund_delay(SimTime::from_micros(tail));
                fault_us -= tail > 0 ? tail : 0;
                if (fault_us < 0) fault_us = 0;
                break;
            }
            case 5: {  // out-of-range channel must throw, not corrupt
                bool threw = false;
                try {
                    disk.read(in.u64(), 1024, ChannelIndex{channels + in.below(4)});
                } catch (const std::out_of_range&) {
                    threw = true;
                }
                JAWS_FUZZ_REQUIRE(threw, "out-of-range channel did not throw");
                break;
            }
        }
        const jaws::storage::DiskStats& s = disk.stats();
        JAWS_FUZZ_REQUIRE(s.service_time.micros == service_us,
                          "service_time diverged from the mirrored ledger");
        JAWS_FUZZ_REQUIRE(s.fault_delay.micros == fault_us,
                          "fault_delay diverged from the mirrored ledger");
        JAWS_FUZZ_REQUIRE(s.service_time.micros >= 0, "negative service_time");
        JAWS_FUZZ_REQUIRE(s.fault_delay.micros >= 0, "negative fault_delay");
        JAWS_FUZZ_REQUIRE(s.requests == requests, "request count mismatch");
        JAWS_FUZZ_REQUIRE(s.aborted_requests == aborted, "aborted count mismatch");
        JAWS_FUZZ_REQUIRE(s.bytes_read == bytes_total, "bytes_read mismatch");
        JAWS_FUZZ_REQUIRE(s.sequential_requests <= s.requests,
                          "more sequential requests than requests");
        JAWS_FUZZ_REQUIRE(s.slow_draws <= s.requests,
                          "more slow draws than requests");
        JAWS_FUZZ_REQUIRE(s.total_busy() == s.service_time + s.fault_delay,
                          "total_busy is not the sum of its parts");
    }

    disk.reset_stats();
    JAWS_FUZZ_REQUIRE(disk.stats().requests == 0 &&
                          disk.stats().service_time == SimTime::zero(),
                      "reset_stats left residue");
    return 0;
}
