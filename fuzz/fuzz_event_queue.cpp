// Fuzz harness for util::EventQueue + util::SimResource.
//
// Decodes the input into a program of schedule/cancel/run_one/submit/
// cancel-job/drain operations and checks the kernel against a simple
// reference model:
//
//   * every directly scheduled event fires exactly once, at its (clamped)
//     timestamp, never before its post tick, and in the documented
//     (time, priority, source, insertion) order relative to every other
//     directly scheduled event — interleaved resource completions cannot
//     reorder two model events because the comparator is a fixed total
//     order;
//   * cancel() returns exactly the model's liveness (false for executed,
//     cancelled or never-issued ids);
//   * every submitted resource job obeys the Job lifecycle (on_start at most
//     once, then exactly one of on_complete at started + duration or
//     on_abort with a sane unrendered remainder), SimResource::cancel()
//     returns the model's liveness, and after draining the accounting adds
//     up: started + discarded-while-waiting == submitted, completed +
//     aborted == started, busy-channel time <= channels * elapsed;
//   * audit() stays clean throughout (the default contract handler aborts
//     the process on a violation, which is exactly what a fuzzer wants).
#include <algorithm>
#include <cstdint>
#include <vector>

#include "fuzz_input.h"
#include "util/event_queue.h"
#include "util/sim_time.h"

namespace {

using jaws::fuzz::FuzzInput;
using jaws::util::EventQueue;
using jaws::util::SimResource;
using jaws::util::SimTime;

constexpr int kMaxOps = 512;
constexpr int kCompletionPriority = 1;
constexpr std::uint32_t kResourceSource = 4;

struct ModelEvent {
    SimTime expected_at;  ///< Scheduled time clamped to now() at post time.
    int priority = 0;
    std::uint32_t source = 0;
    std::uint64_t rank = 0;  ///< Insertion rank among model events.
    EventQueue::EventId id = 0;
    bool live = false;    ///< Scheduled, not yet fired or cancelled.
    bool fired = false;
};

struct ModelJob {
    SimResource::JobId id = 0;
    SimTime duration;
    bool started = false;
    bool completed = false;
    bool aborted = false;
    bool cancelled_waiting = false;  ///< cancel() removed it before service.
    SimTime started_at;
};

struct Harness {
    EventQueue queue;
    SimResource resource;
    std::vector<ModelEvent> events;
    std::vector<ModelJob> jobs;
    std::uint64_t next_rank = 0;

    explicit Harness(std::size_t channels)
        : resource(queue, channels, kCompletionPriority, kResourceSource) {}

    ModelJob& job_by_id(SimResource::JobId id) {
        for (ModelJob& j : jobs)
            if (j.id == id) return j;
        JAWS_FUZZ_REQUIRE(false, "callback for a job the model never submitted");
        __builtin_unreachable();
    }

    /// (time, priority, source, rank) strictly less-than — the documented
    /// EventQueue ordering restricted to model events.
    static bool key_less(const ModelEvent& a, const ModelEvent& b) {
        if (a.expected_at != b.expected_at) return a.expected_at < b.expected_at;
        if (a.priority != b.priority) return a.priority < b.priority;
        if (a.source != b.source) return a.source < b.source;
        return a.rank < b.rank;
    }

    void on_model_event_fired(std::size_t index) {
        ModelEvent& e = events[index];
        JAWS_FUZZ_REQUIRE(e.live && !e.fired, "event fired twice or after cancel");
        JAWS_FUZZ_REQUIRE(queue.now() == e.expected_at,
                          "event fired at a different tick than scheduled");
        // No live model event may precede this one in the documented order:
        // both were pending, so the earlier key must have popped first.
        for (const ModelEvent& other : events)
            if (other.live && !other.fired)
                JAWS_FUZZ_REQUIRE(!key_less(other, e),
                                  "event fired ahead of an earlier-keyed live event");
        e.live = false;
        e.fired = true;
        JAWS_FUZZ_REQUIRE(queue.last_source() == e.source,
                          "last_source() disagrees with the fired event");
    }

    void schedule_one(FuzzInput& in) {
        ModelEvent e;
        // Past times (negative delta) must clamp to now(); the model mirrors
        // the documented clamp.
        const SimTime at = queue.now() + SimTime::from_micros(in.range(-200, 1000));
        e.expected_at = std::max(at, queue.now());
        e.priority = static_cast<int>(in.below(4));
        e.source = static_cast<std::uint32_t>(in.below(4));
        e.rank = next_rank++;
        const std::size_t index = events.size();
        e.id = queue.schedule(at, e.priority, e.source,
                              [this, index] { on_model_event_fired(index); });
        e.live = true;
        events.push_back(e);
    }

    void cancel_event(FuzzInput& in) {
        if (events.empty() || in.boolean()) {
            // An id the queue never issued to us: ids at or above 1 << 60
            // can never collide with real ones (sequential from 0).
            JAWS_FUZZ_REQUIRE(!queue.cancel((1ULL << 60) + in.below(1024)),
                              "cancel of a never-issued id returned true");
            return;
        }
        ModelEvent& e = events[in.below(events.size())];
        const bool expected = e.live;
        JAWS_FUZZ_REQUIRE(queue.cancel(e.id) == expected,
                          "cancel() disagrees with model liveness");
        e.live = false;
    }

    void submit_job(FuzzInput& in) {
        jobs.push_back(ModelJob{});
        ModelJob& j = jobs.back();
        const std::size_t slot = jobs.size() - 1;
        j.duration = SimTime::from_micros(in.range(0, 500));
        SimResource::Job job;
        job.priority = static_cast<int>(in.below(3));
        job.preemptible = in.boolean();
        job.on_start = [this, slot](std::size_t channel) {
            ModelJob& job_state = jobs[slot];
            JAWS_FUZZ_REQUIRE(channel < resource.channels(), "bad channel index");
            JAWS_FUZZ_REQUIRE(!job_state.started, "on_start ran twice");
            JAWS_FUZZ_REQUIRE(!job_state.cancelled_waiting,
                              "cancelled-waiting job reached service");
            job_state.started = true;
            job_state.started_at = queue.now();
            return job_state.duration;
        };
        job.on_complete = [this, slot](std::size_t channel) {
            ModelJob& job_state = jobs[slot];
            JAWS_FUZZ_REQUIRE(channel < resource.channels(), "bad channel index");
            JAWS_FUZZ_REQUIRE(job_state.started, "on_complete before on_start");
            JAWS_FUZZ_REQUIRE(!job_state.completed && !job_state.aborted,
                              "job resolved twice");
            JAWS_FUZZ_REQUIRE(queue.now() == job_state.started_at + job_state.duration,
                              "completion at the wrong virtual instant");
            job_state.completed = true;
        };
        job.on_abort = [this, slot](std::size_t channel, SimTime remaining) {
            ModelJob& job_state = jobs[slot];
            JAWS_FUZZ_REQUIRE(channel < resource.channels(), "bad channel index");
            JAWS_FUZZ_REQUIRE(job_state.started, "on_abort before on_start");
            JAWS_FUZZ_REQUIRE(!job_state.completed && !job_state.aborted,
                              "job resolved twice");
            JAWS_FUZZ_REQUIRE(remaining.micros >= 0, "negative unrendered remainder");
            JAWS_FUZZ_REQUIRE(remaining <= job_state.duration,
                              "unrendered remainder exceeds the service time");
            job_state.aborted = true;
        };
        j.id = resource.submit(std::move(job));
    }

    void cancel_job(FuzzInput& in) {
        if (jobs.empty() || in.boolean()) {
            JAWS_FUZZ_REQUIRE(!resource.cancel((1ULL << 60) + in.below(1024)),
                              "cancel of a never-issued job id returned true");
            return;
        }
        // Snapshot liveness *before* the call: cancel() mutates the state.
        const SimResource::JobId id = jobs[in.below(jobs.size())].id;
        const ModelJob& j = job_by_id(id);
        const bool waiting = !j.started && !j.cancelled_waiting;
        const bool in_service = j.started && !j.completed && !j.aborted;
        const bool expected = waiting || in_service;
        JAWS_FUZZ_REQUIRE(resource.cancel(id) == expected,
                          "SimResource::cancel disagrees with model liveness");
        if (waiting) job_by_id(id).cancelled_waiting = true;
        // An in-service cancel resolves through on_abort (checked there).
    }

    void run_some(FuzzInput& in) {
        const int steps = static_cast<int>(in.below(8)) + 1;
        for (int i = 0; i < steps; ++i) {
            const SimTime before = queue.now();
            const bool had_events = !queue.empty();
            JAWS_FUZZ_REQUIRE(queue.run_one() == had_events,
                              "run_one() return disagrees with empty()");
            JAWS_FUZZ_REQUIRE(queue.now() >= before, "clock moved backwards");
        }
    }

    void check_pending_by_source() {
        std::size_t total = 0;
        for (std::uint32_t s = 0; s <= kResourceSource + 1; ++s)
            total += queue.pending_for(s);
        JAWS_FUZZ_REQUIRE(total == queue.pending(),
                          "per-source pending counts do not sum to pending()");
    }

    void drain() {
        // Every program drains: directly scheduled events are finite and
        // every job's service is finite, so the queue must empty within the
        // (generous) step budget.
        for (int i = 0; i < 1 << 16 && !queue.empty(); ++i) queue.run_one();
        JAWS_FUZZ_REQUIRE(queue.empty(), "queue failed to drain");
        JAWS_FUZZ_REQUIRE(resource.idle(), "resource busy after the queue drained");

        std::size_t started = 0, completed = 0, aborted = 0, discarded = 0;
        for (const ModelJob& j : jobs) {
            started += j.started;
            completed += j.completed;
            aborted += j.aborted;
            discarded += j.cancelled_waiting;
            JAWS_FUZZ_REQUIRE(j.started || j.cancelled_waiting,
                              "job neither serviced nor discarded after drain");
            if (j.started)
                JAWS_FUZZ_REQUIRE(j.completed || j.aborted,
                                  "started job never resolved");
        }
        JAWS_FUZZ_REQUIRE(started + discarded == jobs.size(),
                          "job conservation: started + discarded != submitted");
        JAWS_FUZZ_REQUIRE(completed + aborted == started,
                          "job conservation: completed + aborted != started");
        for (const ModelEvent& e : events)
            JAWS_FUZZ_REQUIRE(e.fired || !e.live,
                              "non-cancelled event never fired after drain");
        JAWS_FUZZ_REQUIRE(queue.audit(), "EventQueue audit failed after drain");
        JAWS_FUZZ_REQUIRE(resource.audit(), "SimResource audit failed after drain");
    }
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    FuzzInput in(data, size);
    Harness h(in.below(4) + 1);
    const SimTime start = h.queue.now();

    for (int op_count = 0; op_count < kMaxOps && !in.exhausted(); ++op_count) {
        switch (in.below(6)) {
            case 0:
            case 1: h.schedule_one(in); break;
            case 2: h.cancel_event(in); break;
            case 3: h.submit_job(in); break;
            case 4: h.cancel_job(in); break;
            case 5: h.run_some(in); break;
        }
        if ((op_count & 15) == 0) {
            JAWS_FUZZ_REQUIRE(h.queue.audit(), "EventQueue audit failed mid-program");
            JAWS_FUZZ_REQUIRE(h.resource.audit(), "SimResource audit failed mid-program");
            h.check_pending_by_source();
        }
    }
    h.drain();

    const SimTime elapsed = h.queue.now() - start;
    JAWS_FUZZ_REQUIRE(
        h.resource.busy_channel_time().micros <=
            static_cast<std::int64_t>(h.resource.channels()) * elapsed.micros,
        "busy-channel time exceeds channels * elapsed");
    JAWS_FUZZ_REQUIRE(h.resource.peak_busy_channels() <= h.resource.channels(),
                      "peak busy channels exceeds the channel count");
    return 0;
}
