// Standalone corpus replay driver.
//
// libFuzzer supplies its own main(); in non-fuzzer builds (any compiler,
// no -fsanitize=fuzzer) each harness links this file instead and becomes a
// plain executable that replays corpus files through LLVMFuzzerTestOneInput.
// Every fuzz entry point therefore runs as an ordinary ctest on every build
// configuration — including TSan and audit builds — keeping the corpus
// (and the crash regressions pinned in it) green without clang.
//
// Usage: <harness>_replay <file-or-directory>...
// Directories are replayed recursively in sorted order (deterministic
// output); with no arguments it exits 0 so an empty corpus is not an error.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

namespace fs = std::filesystem;

int replay_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "replay: cannot open %s\n", path.c_str());
        return 1;
    }
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    std::printf("replay: %s (%zu bytes)\n", path.c_str(), bytes.size());
    std::fflush(stdout);  // flush before a potential abort() in the harness
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                           bytes.size());
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    std::vector<fs::path> files;
    for (int i = 1; i < argc; ++i) {
        const fs::path arg(argv[i]);
        if (fs::is_directory(arg)) {
            for (const auto& entry : fs::recursive_directory_iterator(arg))
                if (entry.is_regular_file()) files.push_back(entry.path());
        } else {
            files.push_back(arg);
        }
    }
    std::sort(files.begin(), files.end());
    int failures = 0;
    for (const fs::path& f : files) failures += replay_file(f);
    std::printf("replay: %zu input(s), %d unreadable\n", files.size(), failures);
    return failures == 0 ? 0 : 1;
}
