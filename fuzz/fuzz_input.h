// Deterministic byte-stream decoder shared by the fuzz harnesses.
//
// A libFuzzer input is an arbitrary byte string; each harness decodes it
// into a *program* of operations against the system under test. The decoder
// is total — any byte string decodes to some valid program (draining to
// zeros past the end) — so the fuzzer never wastes executions on "parse
// errors" in the harness itself, and every corpus file replays identically
// in non-fuzzer builds (fuzz/replay_main.cpp).
//
// Harness checks use JAWS_FUZZ_REQUIRE, not assert(): the default build is
// RelWithDebInfo (-DNDEBUG), and a fuzz oracle that compiles away finds
// nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#define JAWS_FUZZ_REQUIRE(cond, msg)                                          \
    do {                                                                      \
        if (!(cond)) {                                                        \
            std::fprintf(stderr, "FUZZ REQUIRE FAILED %s:%d: %s -- %s\n",     \
                         __FILE__, __LINE__, #cond, (msg));                   \
            std::abort();                                                     \
        }                                                                     \
    } while (0)

namespace jaws::fuzz {

/// Little-endian cursor over the fuzzer's byte string. Reads past the end
/// yield zero bytes, so short inputs still decode to complete programs.
class FuzzInput {
  public:
    FuzzInput(const std::uint8_t* data, std::size_t size) noexcept
        : data_(data), size_(size) {}

    bool exhausted() const noexcept { return pos_ >= size_; }
    std::size_t remaining() const noexcept { return pos_ < size_ ? size_ - pos_ : 0; }

    std::uint8_t u8() noexcept { return next(); }

    std::uint16_t u16() noexcept {
        return static_cast<std::uint16_t>(next() | (next() << 8));
    }

    std::uint32_t u32() noexcept {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(next()) << (8 * i);
        return v;
    }

    std::uint64_t u64() noexcept {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(next()) << (8 * i);
        return v;
    }

    bool boolean() noexcept { return (next() & 1) != 0; }

    /// Uniform-ish value in [0, n). Modulo bias is irrelevant for fuzzing.
    std::uint64_t below(std::uint64_t n) noexcept { return n ? u64() % n : 0; }

    /// Uniform-ish value in the closed range [lo, hi].
    std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /// Double in [lo, hi) from 53 mantissa bits.
    double unit_range(double lo, double hi) noexcept {
        const double unit = static_cast<double>(u64() >> 11) * 0x1.0p-53;
        return lo + (hi - lo) * unit;
    }

    /// A double built straight from raw bits: may be NaN, an infinity, a
    /// denormal or a huge magnitude — the adversarial values a config
    /// decoder must survive.
    double raw_double() noexcept {
        const std::uint64_t bits = u64();
        double d;
        std::memcpy(&d, &bits, sizeof d);
        return d;
    }

    /// The undecoded remainder as text (trace-parser harness).
    std::string_view rest_as_text() const noexcept {
        return {reinterpret_cast<const char*>(data_ + pos_), remaining()};
    }

  private:
    std::uint8_t next() noexcept { return pos_ < size_ ? data_[pos_++] : 0; }

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

}  // namespace jaws::fuzz
