// Fuzz harness for the batched interpolation kernel.
//
// Decodes the input into a small grid spec (atom side, atoms per side,
// ghost width), a synthetic-field seed, an interpolation order the ghost
// region can support (order/2 <= ghost, the face-sample placement bound
// documented at kernel_window), and a batch of positions inside one atom —
// biased toward the adversarial placements: exactly on atom faces, in the
// ghost overlap, and on the torus wrap. The oracle is exact equivalence:
//
//   * field::BatchInterpolator must reproduce the scalar field::interpolate
//     result for every position, bit for bit (memcmp over FlowSample);
//   * the batched result must be invariant under any permutation of the
//     input batch (outputs land in input slots, so the Morton-blocked
//     traversal order must never leak into the results);
//   * every produced sample is finite (Lagrange weights of in-range fracs
//     are finite, and voxel data is bounded).
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "field/batch_interpolator.h"
#include "field/grid.h"
#include "field/interpolation.h"
#include "field/synthetic_field.h"
#include "fuzz_input.h"
#include "util/morton.h"

namespace {

using jaws::fuzz::FuzzInput;

constexpr std::size_t kMaxPositions = 64;

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    namespace field = jaws::field;
    FuzzInput in(data, size);

    field::GridSpec grid;
    grid.atom_side = 4u << in.below(3);              // 4, 8 or 16
    grid.ghost = static_cast<std::uint32_t>(in.range(2, 4));
    const auto aps = static_cast<std::uint32_t>(in.range(1, 4));
    grid.voxels_per_side = grid.atom_side * aps;
    grid.timesteps = 2;

    // Orders the ghost region can hold a face-adjacent window for: a sample
    // exactly on an atom face places its window order/2 voxels into the
    // ghost layer, so order/2 must not exceed ghost.
    field::InterpOrder orders[4];
    std::size_t norders = 0;
    for (const field::InterpOrder o : {field::InterpOrder::kLinear, field::InterpOrder::kLag4,
                                       field::InterpOrder::kLag6, field::InterpOrder::kLag8})
        if (static_cast<std::uint32_t>(o) / 2 <= grid.ghost) orders[norders++] = o;
    const field::InterpOrder order = orders[in.below(norders)];

    field::FieldSpec fspec;
    fspec.seed = in.u64();
    fspec.modes = static_cast<std::size_t>(in.range(1, 4));
    const field::SyntheticField synth(fspec);

    const jaws::util::Coord3 atom{static_cast<std::uint32_t>(in.below(aps)),
                                  static_cast<std::uint32_t>(in.below(aps)),
                                  static_cast<std::uint32_t>(in.below(aps))};
    const std::uint32_t t = static_cast<std::uint32_t>(in.below(grid.timesteps));
    const field::VoxelBlock block(grid, synth, atom, t);

    const std::size_t count = in.below(kMaxPositions) + 1;
    const double aext = 1.0 / aps;
    std::vector<field::Vec3> positions(count);
    for (field::Vec3& p : positions) {
        // Per-axis: an interior point, or snapped exactly to the lower/upper
        // atom face. The lower face of atom 0 sits at the torus wrap: its
        // sample window reads ghost voxels replicated from the far end of
        // the domain. The upper face of the *last* atom wraps to 0.0, which
        // belongs to atom 0, so that face is exercised as atom 0's lower
        // face instead (the position must stay inside the atom under test).
        const auto axis = [&](std::uint32_t atom_c) {
            switch (in.below(4)) {
                case 0:
                    if (atom_c + 1 < aps || aps == 1)
                        return field::wrap01((atom_c + 1.0) * aext);  // upper face
                    return atom_c * aext;
                case 1: return atom_c * aext;  // lower face
                default: return (atom_c + in.unit_range(0.0, 1.0)) * aext;
            }
        };
        p = field::Vec3{axis(atom.x), axis(atom.y), axis(atom.z)};
    }

    // Scalar reference, one position at a time.
    std::vector<field::FlowSample> scalar(count);
    for (std::size_t i = 0; i < count; ++i) {
        scalar[i] = field::interpolate(grid, block, atom, positions[i], order);
        JAWS_FUZZ_REQUIRE(std::isfinite(scalar[i].velocity.x) &&
                              std::isfinite(scalar[i].velocity.y) &&
                              std::isfinite(scalar[i].velocity.z) &&
                              std::isfinite(scalar[i].pressure),
                          "scalar interpolation produced a non-finite sample");
    }

    field::BatchInterpolator interp;
    std::vector<field::FlowSample> batched(count);
    interp.evaluate(grid, block, atom, positions.data(), count, order, batched.data());
    JAWS_FUZZ_REQUIRE(std::memcmp(batched.data(), scalar.data(),
                                  count * sizeof(field::FlowSample)) == 0,
                      "batched kernel diverged from the scalar reference");

    // Permutation invariance: evaluate a deterministic shuffle of the batch
    // and map the outputs back through the inverse permutation.
    std::vector<std::size_t> perm(count);
    for (std::size_t i = 0; i < count; ++i) perm[i] = i;
    for (std::size_t i = count; i > 1; --i) {
        const std::size_t j = in.below(i);
        std::swap(perm[i - 1], perm[j]);
    }
    std::vector<field::Vec3> shuffled(count);
    for (std::size_t i = 0; i < count; ++i) shuffled[i] = positions[perm[i]];
    std::vector<field::FlowSample> shuffled_out(count);
    interp.evaluate(grid, block, atom, shuffled.data(), count, order, shuffled_out.data());
    for (std::size_t i = 0; i < count; ++i)
        JAWS_FUZZ_REQUIRE(std::memcmp(&shuffled_out[i], &scalar[perm[i]],
                                      sizeof(field::FlowSample)) == 0,
                          "batched result depends on the input order");
    return 0;
}
