// Lagrange interpolation over atom voxel data.
//
// Turbulence queries evaluate velocity (and pressure) at arbitrary continuous
// positions using 4th/6th/8th-order Lagrange polynomial interpolation over the
// surrounding voxel samples (paper Sec. III-A; the 4-voxel ghost replication
// per atom face exists precisely so an 8th-order kernel can be evaluated from
// a single atom). This module implements the tensor-product kernels and the
// mapping from a continuous position to the sample window inside a VoxelBlock.
#pragma once

#include <cstdint>

#include "field/grid.h"
#include "field/synthetic_field.h"

namespace jaws::field {

/// Supported interpolation orders (number of sample points per axis).
enum class InterpOrder : std::uint8_t { kLinear = 2, kLag4 = 4, kLag6 = 6, kLag8 = 8 };

/// Half-width in voxels of the kernel for `order` (order/2). A position needs
/// samples from [base, base + order) per axis around itself.
std::uint32_t kernel_half_width(InterpOrder order) noexcept;

/// Compute the `order` 1-D Lagrange basis weights for a query point at
/// fractional offset `frac` in [0, 1) from the node at index order/2 - 1.
/// `weights` must have room for `order` doubles; they sum to 1.
void lagrange_weights(double frac, InterpOrder order, double* weights) noexcept;

/// Interpolate velocity + pressure at continuous torus position `p` from the
/// voxel payload of atom `atom` (time step already baked into `block`).
/// Requires the kernel to fit inside the block's ghost region, i.e.
/// kernel_half_width(order) <= grid.ghost + 1; callers pick grid specs that
/// satisfy this (the production layout does).
FlowSample interpolate(const GridSpec& grid, const VoxelBlock& block,
                       const util::Coord3& atom, const Vec3& p, InterpOrder order) noexcept;

}  // namespace jaws::field
