// Lagrange interpolation over atom voxel data.
//
// Turbulence queries evaluate velocity (and pressure) at arbitrary continuous
// positions using 4th/6th/8th-order Lagrange polynomial interpolation over the
// surrounding voxel samples (paper Sec. III-A; the 4-voxel ghost replication
// per atom face exists precisely so an 8th-order kernel can be evaluated from
// a single atom). This module implements the tensor-product kernels and the
// mapping from a continuous position to the sample window inside a VoxelBlock.
//
// Two evaluation paths share the placement and weight arithmetic here:
//   * interpolate()            — the scalar reference kernel, one position at
//                                a time;
//   * field::BatchInterpolator — the batched, cache-blocked, vectorizable
//                                kernel (batch_interpolator.h), bit-identical
//                                to the scalar path by construction.
#pragma once

#include <cstddef>
#include <cstdint>

#include "field/grid.h"
#include "field/synthetic_field.h"

namespace jaws::field {

/// Supported interpolation orders (number of sample points per axis).
enum class InterpOrder : std::uint8_t { kLinear = 2, kLag4 = 4, kLag6 = 6, kLag8 = 8 };

/// Half-width in voxels of the kernel for `order` (order/2). A position needs
/// samples from [base, base + order) per axis around itself.
std::uint32_t kernel_half_width(InterpOrder order) noexcept;

/// Compute the `order` 1-D Lagrange basis weights for a query point at
/// fractional offset `frac` in [0, 1) from the node at index order/2 - 1.
/// `weights` must have room for `order` doubles; they sum to 1 (audited, rate
/// limited, under JAWS_AUDIT_BUILD — see detail::audit_weight_sum).
void lagrange_weights(double frac, InterpOrder order, double* weights) noexcept;

/// Batched form: the `order` weights of every entry of `fracs` written
/// contiguously at stride `order` into the struct-of-arrays `plane`
/// (plane[i * order + j] = weight j of fracs[i]). Each entry is computed by
/// the same arithmetic as lagrange_weights, so the planes are bit-identical
/// to `count` scalar calls.
void lagrange_weight_planes(const double* fracs, std::size_t count, InterpOrder order,
                            double* plane) noexcept;

/// Placement of one position's order^3 sample window inside a VoxelBlock:
/// the local window origin per axis and the fractional offsets that feed
/// lagrange_weights. Factored out so the scalar and batched kernels place
/// the window with identical arithmetic (bit-exactness depends on it).
struct KernelWindow {
    std::int64_t lx0 = 0, ly0 = 0, lz0 = 0;  ///< Local origin inside the block.
    double fx = 0.0, fy = 0.0, fz = 0.0;     ///< Fractional offsets in [0, 1).
};

/// Compute the sample-window placement of torus position `p` inside the block
/// of atom `atom` for a kernel of `order`. The window is guaranteed inside
/// the block when kernel_half_width(order) <= grid.ghost (callers pick grid
/// specs that satisfy this; the production layout does).
KernelWindow kernel_window(const GridSpec& grid, const util::Coord3& atom, const Vec3& p,
                           InterpOrder order) noexcept;

/// Interpolate velocity + pressure at continuous torus position `p` from the
/// voxel payload of atom `atom` (time step already baked into `block`).
/// Requires the kernel to fit inside the block's ghost region, i.e.
/// kernel_half_width(order) <= grid.ghost + 1; callers pick grid specs that
/// satisfy this (the production layout does).
FlowSample interpolate(const GridSpec& grid, const VoxelBlock& block,
                       const util::Coord3& atom, const Vec3& p, InterpOrder order) noexcept;

namespace detail {
/// Rate-limited partition-of-unity audit: every 256th call re-sums a weight
/// vector and reports a contract violation when it strays from 1 (the header
/// contract "they sum to 1" was previously documented but unenforced).
/// Invoked from lagrange_weights under JAWS_AUDIT only; callable directly
/// from tests in any build.
void audit_weight_sum(const double* weights, int n) noexcept;
}  // namespace detail

}  // namespace jaws::field
