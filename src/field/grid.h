// Grid and atom geometry.
//
// The Turbulence database stores each time step as a cube of N^3 voxels,
// partitioned into atoms of `atom_side`^3 voxels (64^3 in production, with 4
// voxels of ghost replication per face so that interpolation kernels near an
// atom boundary can be evaluated from a single atom — paper Sec. III-A). This
// module owns all coordinate conversions between continuous torus positions,
// voxel indices, atom coordinates and Morton codes, plus the voxel payload
// type materialised from the synthetic field.
#pragma once

#include <cstdint>
#include <vector>

#include "field/synthetic_field.h"
#include "util/morton.h"

namespace jaws::field {

/// Static description of the gridded dataset.
struct GridSpec {
    std::uint32_t voxels_per_side = 1024;  ///< N: voxels per axis per time step.
    std::uint32_t atom_side = 64;          ///< Voxels per axis per atom.
    std::uint32_t ghost = 4;               ///< Ghost (replicated) voxels per face.
    std::uint32_t timesteps = 31;          ///< Stored time steps.
    double dt = 0.002;                     ///< Simulation seconds between steps.

    /// Atoms per axis (N / atom_side; N must be a multiple of atom_side).
    std::uint32_t atoms_per_side() const noexcept { return voxels_per_side / atom_side; }
    /// Atoms in one time step.
    std::uint64_t atoms_per_step() const noexcept {
        const std::uint64_t a = atoms_per_side();
        return a * a * a;
    }
    /// Atoms in the whole dataset.
    std::uint64_t total_atoms() const noexcept { return atoms_per_step() * timesteps; }
    /// Simulation time of step `t`.
    double sim_time(std::uint32_t t) const noexcept { return dt * t; }
    /// Nominal atom payload size in bytes (with ghost), 4 floats per voxel.
    std::uint64_t atom_bytes() const noexcept {
        const std::uint64_t side = atom_side + 2ULL * ghost;
        return side * side * side * 4 * sizeof(float);
    }

    /// Voxel containing the continuous torus position `p` in [0, 1)^3.
    util::Coord3 voxel_of(const Vec3& p) const noexcept;
    /// Continuous position of the centre of voxel `v`.
    Vec3 position_of(const util::Coord3& v) const noexcept;
    /// Atom coordinate (in [0, atoms_per_side)^3) containing voxel `v`.
    util::Coord3 atom_of_voxel(const util::Coord3& v) const noexcept;
    /// Morton code of the atom containing position `p`.
    std::uint64_t atom_morton_of(const Vec3& p) const noexcept;

    /// Morton codes of every atom whose voxels an interpolation kernel of
    /// half-width `half_width` voxels around `p` touches *beyond the ghost
    /// region* of p's own atom. The primary atom is always first. With the
    /// production ghost width of 4 a kernel of order <= 8 fits inside one
    /// atom, mirroring the paper's layout choice.
    std::vector<std::uint64_t> kernel_atoms(const Vec3& p, std::uint32_t half_width) const;
};

/// Materialised voxel payload of one atom: velocity + pressure for
/// (atom_side + 2*ghost)^3 voxels, stored channel-interleaved — 4 floats
/// (u, v, w, p) per voxel, x fastest. The interleaving is deliberate: the
/// batched interpolation kernel multiplies all four channels of a voxel by
/// one shared Lagrange weight, and keeping the channel group contiguous
/// lets the compiler's SLP vectoriser pack those four multiply-adds into
/// vector lanes (measured ~1.4x over split per-channel planes on this
/// kernel; see field/batch_interpolator.h and DESIGN.md).
class VoxelBlock {
  public:
    /// Floats per voxel in `data()` (u, v, w, p).
    static constexpr std::size_t kChannels = 4;

    /// Sample the synthetic `field` over atom `atom` (atom coordinates) of
    /// time step `t` under `grid`, including ghost voxels (periodic wrap).
    VoxelBlock(const GridSpec& grid, const SyntheticField& field, const util::Coord3& atom,
               std::uint32_t t);

    /// Extent per axis including ghosts.
    std::uint32_t extent() const noexcept { return extent_; }

    /// Flow sample at local coordinates (ghost included: 0 <= i < extent()).
    FlowSample at(std::uint32_t ix, std::uint32_t iy, std::uint32_t iz) const noexcept;

    /// Raw interleaved payload: voxel ordinal v (see voxel_index) holds its
    /// channels at data()[kChannels * v + 0..3].
    const float* data() const noexcept { return data_.data(); }

    /// Flat voxel ordinal of local coordinates (x fastest).
    std::size_t voxel_index(std::uint32_t ix, std::uint32_t iy,
                            std::uint32_t iz) const noexcept {
        return (static_cast<std::size_t>(iz) * extent_ + iy) * extent_ + ix;
    }

    /// Bytes of payload held.
    std::uint64_t bytes() const noexcept { return data_.size() * sizeof(float); }

  private:
    std::uint32_t extent_;
    std::vector<float> data_;  // kChannels floats per voxel, x fastest.
};

}  // namespace jaws::field
