#include "field/synthetic_field.h"

#include <cmath>
#include <numbers>

namespace jaws::field {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;

Vec3 cross(const Vec3& a, const Vec3& b) noexcept {
    return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}
}  // namespace

SyntheticField::SyntheticField(const FieldSpec& spec) : spec_(spec) {
    util::Rng rng(spec.seed);
    modes_.reserve(spec.modes);
    const auto kmax = static_cast<std::int64_t>(spec.max_wavenumber);
    while (modes_.size() < spec.modes) {
        // Integer wavevector (periodicity) with |k| <= kmax, excluding k = 0.
        const std::int64_t kx = rng.uniform_int(-kmax, kmax);
        const std::int64_t ky = rng.uniform_int(-kmax, kmax);
        const std::int64_t kz = rng.uniform_int(-kmax, kmax);
        if (kx == 0 && ky == 0 && kz == 0) continue;
        const Vec3 k{static_cast<double>(kx), static_cast<double>(ky),
                     static_cast<double>(kz)};
        if (k.norm2() > spec.max_wavenumber * spec.max_wavenumber) continue;
        // Random amplitude direction; only the component orthogonal to k
        // contributes to curl, and a k^(-5/6)-ish falloff gives the velocity a
        // decaying spectrum reminiscent of Kolmogorov scaling.
        Vec3 a{rng.normal(), rng.normal(), rng.normal()};
        const double falloff = std::pow(k.norm2(), -5.0 / 12.0);
        Mode m;
        m.wavevector = kTwoPi * k;
        m.amplitude = falloff * a;
        m.frequency = kTwoPi / spec.time_scale * std::sqrt(k.norm2()) * 0.35;
        m.phase = rng.uniform(0.0, kTwoPi);
        m.pressure_amp = falloff * rng.normal();
        modes_.push_back(m);
    }
    // Normalise to the requested RMS speed by sampling the field.
    util::Rng probe(spec.seed ^ 0x5bd1e995);
    double sum2 = 0.0;
    constexpr int kProbes = 256;
    for (int i = 0; i < kProbes; ++i) {
        const Vec3 p{probe.uniform(), probe.uniform(), probe.uniform()};
        sum2 += velocity(p, 0.0).norm2();
    }
    const double rms = std::sqrt(sum2 / kProbes);
    if (rms > 0.0) {
        const double scale = spec.rms_velocity / rms;
        for (auto& m : modes_) m.amplitude = scale * m.amplitude;
    }
}

Vec3 SyntheticField::velocity(const Vec3& p, double t) const noexcept {
    // u = curl A with A = sum a_m cos(k.x + w t + phi):
    // curl(a cos(theta)) = -sin(theta) (k x a).
    Vec3 u;
    for (const auto& m : modes_) {
        const double theta =
            m.wavevector.x * p.x + m.wavevector.y * p.y + m.wavevector.z * p.z +
            m.frequency * t + m.phase;
        const double s = -std::sin(theta);
        const Vec3 ka = cross(m.wavevector, m.amplitude);
        u = u + s * ka;
    }
    return u;
}

double SyntheticField::pressure(const Vec3& p, double t) const noexcept {
    double pr = 0.0;
    for (const auto& m : modes_) {
        const double theta =
            m.wavevector.x * p.x + m.wavevector.y * p.y + m.wavevector.z * p.z +
            m.frequency * t + m.phase;
        pr += m.pressure_amp * std::cos(theta);
    }
    return pr;
}

FlowSample SyntheticField::sample(const Vec3& p, double t) const noexcept {
    FlowSample out;
    for (const auto& m : modes_) {
        const double theta =
            m.wavevector.x * p.x + m.wavevector.y * p.y + m.wavevector.z * p.z +
            m.frequency * t + m.phase;
        const double c = std::cos(theta);
        const double s = -std::sin(theta);
        const Vec3 ka = cross(m.wavevector, m.amplitude);
        out.velocity = out.velocity + s * ka;
        out.pressure += m.pressure_amp * c;
    }
    return out;
}

double wrap01(double v) noexcept {
    v -= std::floor(v);
    // floor can leave exactly 1.0 for tiny negative inputs; fold it back.
    return v >= 1.0 ? 0.0 : v;
}

Vec3 advect_rk2(const SyntheticField& field, const Vec3& p, double t, double dt) noexcept {
    const Vec3 k1 = field.velocity(p, t);
    const Vec3 mid{wrap01(p.x + 0.5 * dt * k1.x), wrap01(p.y + 0.5 * dt * k1.y),
                   wrap01(p.z + 0.5 * dt * k1.z)};
    const Vec3 k2 = field.velocity(mid, t + 0.5 * dt);
    return Vec3{wrap01(p.x + dt * k2.x), wrap01(p.y + dt * k2.y), wrap01(p.z + dt * k2.z)};
}

}  // namespace jaws::field
