#include "field/interpolation.h"

#include <atomic>
#include <cassert>
#include <cmath>

#include "util/contracts.h"

namespace jaws::field {

std::uint32_t kernel_half_width(InterpOrder order) noexcept {
    return static_cast<std::uint32_t>(order) / 2;
}

void lagrange_weights(double frac, InterpOrder order, double* weights) noexcept {
    const int n = static_cast<int>(order);
    // Nodes sit at integer offsets d = -(n/2 - 1) ... n/2 relative to the
    // sample immediately at/below the query point; the query sits at `frac`.
    for (int i = 0; i < n; ++i) {
        const double xi = static_cast<double>(i - (n / 2 - 1));
        double w = 1.0;
        for (int j = 0; j < n; ++j) {
            if (j == i) continue;
            const double xj = static_cast<double>(j - (n / 2 - 1));
            w *= (frac - xj) / (xi - xj);
        }
        weights[i] = w;
    }
    JAWS_AUDIT(detail::audit_weight_sum(weights, n));
}

void lagrange_weight_planes(const double* fracs, std::size_t count, InterpOrder order,
                            double* plane) noexcept {
    const auto n = static_cast<std::size_t>(order);
    for (std::size_t i = 0; i < count; ++i)
        lagrange_weights(fracs[i], order, plane + i * n);
}

KernelWindow kernel_window(const GridSpec& grid, const util::Coord3& atom, const Vec3& p,
                           InterpOrder order) noexcept {
    const int n = static_cast<int>(order);
    // Continuous voxel-space coordinate: voxel i's sample sits at i + 0.5.
    const double gx = wrap01(p.x) * grid.voxels_per_side - 0.5;
    const double gy = wrap01(p.y) * grid.voxels_per_side - 0.5;
    const double gz = wrap01(p.z) * grid.voxels_per_side - 0.5;
    const auto base = [&](double g) { return static_cast<std::int64_t>(std::floor(g)); };
    const std::int64_t bx = base(gx), by = base(gy), bz = base(gz);

    // Local block index of global voxel g: g - (atom * atom_side - ghost).
    const auto local = [&](std::int64_t g, std::uint32_t atom_c) {
        return g - (static_cast<std::int64_t>(atom_c) * grid.atom_side -
                    static_cast<std::int64_t>(grid.ghost));
    };
    const std::int64_t off = n / 2 - 1;  // first node offset from base
    KernelWindow win;
    win.lx0 = local(bx - off, atom.x);
    win.ly0 = local(by - off, atom.y);
    win.lz0 = local(bz - off, atom.z);
    win.fx = gx - static_cast<double>(bx);
    win.fy = gy - static_cast<double>(by);
    win.fz = gz - static_cast<double>(bz);
    return win;
}

FlowSample interpolate(const GridSpec& grid, const VoxelBlock& block,
                       const util::Coord3& atom, const Vec3& p, InterpOrder order) noexcept {
    const int n = static_cast<int>(order);
    const KernelWindow win = kernel_window(grid, atom, p, order);

    double wx[8], wy[8], wz[8];
    lagrange_weights(win.fx, order, wx);
    lagrange_weights(win.fy, order, wy);
    lagrange_weights(win.fz, order, wz);

    const std::int64_t lx0 = win.lx0, ly0 = win.ly0, lz0 = win.lz0;
    assert(lx0 >= 0 && ly0 >= 0 && lz0 >= 0);
    assert(lx0 + n <= static_cast<std::int64_t>(block.extent()) &&
           ly0 + n <= static_cast<std::int64_t>(block.extent()) &&
           lz0 + n <= static_cast<std::int64_t>(block.extent()));

    FlowSample out;
    for (int iz = 0; iz < n; ++iz) {
        for (int iy = 0; iy < n; ++iy) {
            const double wyz = wy[iy] * wz[iz];
            for (int ix = 0; ix < n; ++ix) {
                const double w = wx[ix] * wyz;
                const FlowSample s =
                    block.at(static_cast<std::uint32_t>(lx0 + ix),
                             static_cast<std::uint32_t>(ly0 + iy),
                             static_cast<std::uint32_t>(lz0 + iz));
                out.velocity = out.velocity + w * s.velocity;
                out.pressure += w * s.pressure;
            }
        }
    }
    return out;
}

namespace detail {

void audit_weight_sum(const double* weights, int n) noexcept {
    // Sampled, not exhaustive: the kernel calls this three times per
    // position, so auditing every call would dominate audit-build runs.
    // Relaxed ordering is fine — the counter only thins the sampling.
    static std::atomic<std::uint64_t> calls{0};
    if ((calls.fetch_add(1, std::memory_order_relaxed) & 0xFF) != 0) return;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += weights[i];
    // The order-8 basis is the worst conditioned; its observed deviation
    // stays below 1e-13 for every frac in [0, 1) (pinned by the regression
    // test in interpolation_test.cpp). 1e-9 leaves margin for future
    // compilers while still catching any real drop of a basis term.
    // JAWS_AUDIT_CHECK, not JAWS_INVARIANT: the *invocation* is already
    // gated on the audit build (JAWS_AUDIT in lagrange_weights), and tests
    // call this helper directly in every build.
    JAWS_AUDIT_CHECK(std::isfinite(sum) && std::fabs(sum - 1.0) <= 1e-9,
                     "lagrange weights must sum to 1");
}

}  // namespace detail

}  // namespace jaws::field
