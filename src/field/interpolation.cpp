#include "field/interpolation.h"

#include <cassert>
#include <cmath>

namespace jaws::field {

std::uint32_t kernel_half_width(InterpOrder order) noexcept {
    return static_cast<std::uint32_t>(order) / 2;
}

void lagrange_weights(double frac, InterpOrder order, double* weights) noexcept {
    const int n = static_cast<int>(order);
    // Nodes sit at integer offsets d = -(n/2 - 1) ... n/2 relative to the
    // sample immediately at/below the query point; the query sits at `frac`.
    for (int i = 0; i < n; ++i) {
        const double xi = static_cast<double>(i - (n / 2 - 1));
        double w = 1.0;
        for (int j = 0; j < n; ++j) {
            if (j == i) continue;
            const double xj = static_cast<double>(j - (n / 2 - 1));
            w *= (frac - xj) / (xi - xj);
        }
        weights[i] = w;
    }
}

FlowSample interpolate(const GridSpec& grid, const VoxelBlock& block,
                       const util::Coord3& atom, const Vec3& p, InterpOrder order) noexcept {
    const int n = static_cast<int>(order);
    // Continuous voxel-space coordinate: voxel i's sample sits at i + 0.5.
    const double gx = wrap01(p.x) * grid.voxels_per_side - 0.5;
    const double gy = wrap01(p.y) * grid.voxels_per_side - 0.5;
    const double gz = wrap01(p.z) * grid.voxels_per_side - 0.5;
    const auto base = [&](double g) { return static_cast<std::int64_t>(std::floor(g)); };
    const std::int64_t bx = base(gx), by = base(gy), bz = base(gz);

    double wx[8], wy[8], wz[8];
    lagrange_weights(gx - static_cast<double>(bx), order, wx);
    lagrange_weights(gy - static_cast<double>(by), order, wy);
    lagrange_weights(gz - static_cast<double>(bz), order, wz);

    // Local block index of global voxel g: g - (atom * atom_side - ghost).
    const auto local = [&](std::int64_t g, std::uint32_t atom_c) {
        return g - (static_cast<std::int64_t>(atom_c) * grid.atom_side -
                    static_cast<std::int64_t>(grid.ghost));
    };
    const std::int64_t off = n / 2 - 1;  // first node offset from base
    const std::int64_t lx0 = local(bx - off, atom.x);
    const std::int64_t ly0 = local(by - off, atom.y);
    const std::int64_t lz0 = local(bz - off, atom.z);
    assert(lx0 >= 0 && ly0 >= 0 && lz0 >= 0);
    assert(lx0 + n <= static_cast<std::int64_t>(block.extent()) &&
           ly0 + n <= static_cast<std::int64_t>(block.extent()) &&
           lz0 + n <= static_cast<std::int64_t>(block.extent()));

    FlowSample out;
    for (int iz = 0; iz < n; ++iz) {
        for (int iy = 0; iy < n; ++iy) {
            const double wyz = wy[iy] * wz[iz];
            for (int ix = 0; ix < n; ++ix) {
                const double w = wx[ix] * wyz;
                const FlowSample s =
                    block.at(static_cast<std::uint32_t>(lx0 + ix),
                             static_cast<std::uint32_t>(ly0 + iy),
                             static_cast<std::uint32_t>(lz0 + iz));
                out.velocity = out.velocity + w * s.velocity;
                out.pressure += w * s.pressure;
            }
        }
    }
    return out;
}

}  // namespace jaws::field
