// Batched, SIMD-friendly Lagrange interpolation.
//
// The scalar kernel in interpolation.h evaluates one position at a time:
// per position it recomputes the window placement, gathers voxels through
// VoxelBlock::at() (four plane lookups and a struct round trip per voxel)
// and runs variable-trip-count loops the compiler cannot unroll. Profiles
// (BENCH_parallel_eval.json) put this kernel at ~2/3 of a materialized run's
// wall time, and on few-core hosts the evaluation thread pool cannot help.
//
// BatchInterpolator restructures the same computation over a whole batch of
// positions against one VoxelBlock:
//
//   1. *Morton-blocked traversal* — positions are sorted by the Morton code
//      of their local sample-window origin (stable, index tie-broken), so
//      consecutive stencils touch overlapping cache lines instead of
//      striding across the 6 MB block in arrival order.
//   2. *Struct-of-arrays weight planes* — the separable per-axis Lagrange
//      weights of the whole batch are computed up front into contiguous
//      wx/wy/wz planes (order doubles per position, lagrange_weight_planes),
//      not into per-position stack arrays.
//   3. *Fixed-trip-count vectorizable stencil* — the order^3 accumulation is
//      instantiated per order (template<int N>), reading unit-stride rows of
//      the VoxelBlock's interleaved payload with four independent accumulator
//      chains. All four channels of a voxel are contiguous and share one
//      weight, so the SLP vectoriser packs the channel multiply-adds into
//      vector lanes without intrinsics (scripts/check_vectorization.py pins
//      that the stencil actually vectorizes).
//
// Results are **bit-identical** to interpolate() called per position: window
// placement and weights share the scalar arithmetic (kernel_window /
// lagrange_weights), each output slot's accumulation chain runs in the same
// iz -> iy -> ix order with the same operand expressions, and the build pins
// -ffp-contract=off so no FMA contraction can split the two paths. Output
// slot i always corresponds to positions[i] regardless of the internal
// traversal order, so digests folded over outputs are order-independent of
// the blocking. The equivalence, property and fuzz suites pin all of this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "field/grid.h"
#include "field/interpolation.h"

namespace jaws::field {

/// Reusable batched evaluator. Holds scratch (weight planes, placement and
/// traversal arrays) that regrows to the largest batch seen, so steady-state
/// evaluation allocates nothing. Not thread-safe; use one instance per
/// thread (storage::DatabaseNode keeps a thread_local one).
class BatchInterpolator {
  public:
    /// Evaluate `count` positions of atom `atom` against `block`, writing
    /// out[i] for positions[i]. Same preconditions as interpolate(): every
    /// position falls inside the atom and the kernel fits the ghost region.
    void evaluate(const GridSpec& grid, const VoxelBlock& block, const util::Coord3& atom,
                  const Vec3* positions, std::size_t count, InterpOrder order,
                  FlowSample* out);

    /// Convenience overload: resizes `out` to positions.size().
    void evaluate(const GridSpec& grid, const VoxelBlock& block, const util::Coord3& atom,
                  const std::vector<Vec3>& positions, InterpOrder order,
                  std::vector<FlowSample>& out);

  private:
    /// Batches smaller than this skip the Morton sort: the key build + sort
    /// cost more than the locality they buy on a handful of stencils.
    static constexpr std::size_t kSortThreshold = 32;

    template <int N>
    void run(const VoxelBlock& block, FlowSample* out) const;

    /// Per-position window origin, packed for the sort/evaluate passes.
    struct Window {
        std::uint32_t lx0, ly0, lz0;
    };

    std::vector<Window> windows_;
    std::vector<double> fx_, fy_, fz_;  // per-axis fracs, SoA
    std::vector<double> wx_, wy_, wz_;  // weight planes, stride = order
    std::vector<std::uint64_t> seq_;    // (morton key << 32 | index) visit order
};

}  // namespace jaws::field
