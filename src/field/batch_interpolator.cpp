#include "field/batch_interpolator.h"

#include <algorithm>
#include <cassert>

#include "util/contracts.h"
#include "util/morton.h"

namespace jaws::field {

namespace {

/// Fixed-trip-count order^3 stencil over the block's interleaved payload.
/// Bit-identical to the scalar loop in interpolate(): same iz -> iy -> ix
/// order, same weight products, one accumulation chain per channel. Each
/// voxel's four channels sit contiguously and share one weight, so the SLP
/// vectoriser packs the four multiply-adds into vector lanes (measured ~1.4x
/// over split per-channel planes; pinned by scripts/check_vectorization.py).
template <int N>
FlowSample stencil(const VoxelBlock& block, std::uint32_t lx0, std::uint32_t ly0,
                   std::uint32_t lz0, const double* wx, const double* wy,
                   const double* wz) noexcept {
    const std::size_t ext = block.extent();
    const float* data = block.data();
    double au = 0.0, av = 0.0, aw = 0.0, ap = 0.0;
    for (int iz = 0; iz < N; ++iz) {
        for (int iy = 0; iy < N; ++iy) {
            const double wyz = wy[iy] * wz[iz];
            const std::size_t row =
                ((static_cast<std::size_t>(lz0 + static_cast<std::uint32_t>(iz)) * ext +
                  (ly0 + static_cast<std::uint32_t>(iy))) *
                     ext +
                 lx0) *
                VoxelBlock::kChannels;
            const float* r = data + row;
            for (int ix = 0; ix < N; ++ix) {
                const double wgt = wx[ix] * wyz;
                au += wgt * static_cast<double>(r[VoxelBlock::kChannels * ix + 0]);
                av += wgt * static_cast<double>(r[VoxelBlock::kChannels * ix + 1]);
                aw += wgt * static_cast<double>(r[VoxelBlock::kChannels * ix + 2]);
                ap += wgt * static_cast<double>(r[VoxelBlock::kChannels * ix + 3]);
            }
        }
    }
    FlowSample s;
    s.velocity = Vec3{au, av, aw};
    s.pressure = ap;
    return s;
}

}  // namespace

template <int N>
void BatchInterpolator::run(const VoxelBlock& block, FlowSample* out) const {
    for (const std::uint64_t packed : seq_) {
        const auto i = static_cast<std::size_t>(packed & 0xFFFFFFFFu);
        const Window& win = windows_[i];
        out[i] = stencil<N>(block, win.lx0, win.ly0, win.lz0, &wx_[i * N], &wy_[i * N],
                            &wz_[i * N]);
    }
}

void BatchInterpolator::evaluate(const GridSpec& grid, const VoxelBlock& block,
                                 const util::Coord3& atom, const Vec3* positions,
                                 std::size_t count, InterpOrder order, FlowSample* out) {
    const int n = static_cast<int>(order);
    windows_.resize(count);
    fx_.resize(count);
    fy_.resize(count);
    fz_.resize(count);
    seq_.resize(count);

    // Morton keys only pay off when the batch is large enough for the sort
    // to buy locality, and when the stencil is expensive enough to amortise
    // it: an 8-voxel linear stencil finishes faster than its key costs.
    // Traversal order never reaches the results (outputs land in input
    // slots), so this is a pure throughput decision.
    const bool blocked = count >= kSortThreshold && order != InterpOrder::kLinear;

    // Pass 1 — placement: window origin + fracs per position, shared
    // arithmetic with the scalar kernel.
    for (std::size_t i = 0; i < count; ++i) {
        const KernelWindow win = kernel_window(grid, atom, positions[i], order);
        assert(win.lx0 >= 0 && win.ly0 >= 0 && win.lz0 >= 0);
        JAWS_INVARIANT(win.lx0 >= 0 && win.ly0 >= 0 && win.lz0 >= 0 &&
                           win.lx0 + n <= static_cast<std::int64_t>(block.extent()) &&
                           win.ly0 + n <= static_cast<std::int64_t>(block.extent()) &&
                           win.lz0 + n <= static_cast<std::int64_t>(block.extent()),
                       "sample window must fit inside the block's ghost region");
        assert(win.lx0 + n <= static_cast<std::int64_t>(block.extent()) &&
               win.ly0 + n <= static_cast<std::int64_t>(block.extent()) &&
               win.lz0 + n <= static_cast<std::int64_t>(block.extent()));
        windows_[i] = Window{static_cast<std::uint32_t>(win.lx0),
                             static_cast<std::uint32_t>(win.ly0),
                             static_cast<std::uint32_t>(win.lz0)};
        fx_[i] = win.fx;
        fy_[i] = win.fy;
        fz_[i] = win.fz;
        // Pack (morton key | input index) into one integer so the traversal
        // sort is a plain integer sort — no comparator indirection, and the
        // low index bits give the stable tie-break for free. Window origins
        // fit in 10 bits per axis (extent <= 1024, checked below), so the
        // 30-bit Morton key and 32-bit index cannot collide.
        seq_[i] = blocked ? (util::morton_encode(windows_[i].lx0, windows_[i].ly0,
                                                 windows_[i].lz0)
                                << 32) |
                                static_cast<std::uint64_t>(i)
                          : static_cast<std::uint64_t>(i);
    }

    // Pass 2 — Morton-blocked traversal order. Outputs land in their input
    // slots, so this order is invisible in the results.
    if (blocked) {
        JAWS_INVARIANT(block.extent() <= 1024 && count <= 0xFFFFFFFFu,
                       "packed Morton sort keys need extent <= 1024 and 32-bit indices");
        assert(block.extent() <= 1024 && count <= 0xFFFFFFFFu);
        std::sort(seq_.begin(), seq_.end());
    }

    // Pass 3 — separable weights for the whole batch into SoA planes.
    const auto stride = static_cast<std::size_t>(n);
    wx_.resize(count * stride);
    wy_.resize(count * stride);
    wz_.resize(count * stride);
    lagrange_weight_planes(fx_.data(), count, order, wx_.data());
    lagrange_weight_planes(fy_.data(), count, order, wy_.data());
    lagrange_weight_planes(fz_.data(), count, order, wz_.data());

    // Pass 4 — fixed-trip-count stencils in blocked order.
    switch (order) {
        case InterpOrder::kLinear: run<2>(block, out); break;
        case InterpOrder::kLag4: run<4>(block, out); break;
        case InterpOrder::kLag6: run<6>(block, out); break;
        case InterpOrder::kLag8: run<8>(block, out); break;
    }
}

void BatchInterpolator::evaluate(const GridSpec& grid, const VoxelBlock& block,
                                 const util::Coord3& atom,
                                 const std::vector<Vec3>& positions, InterpOrder order,
                                 std::vector<FlowSample>& out) {
    out.resize(positions.size());
    evaluate(grid, block, atom, positions.data(), positions.size(), order, out.data());
}

}  // namespace jaws::field
