// Synthetic turbulence field.
//
// The paper's dataset is a 27 TB direct numerical simulation of isotropic
// turbulence (velocity + pressure on a 1024^3 grid over 1024 time steps). We
// cannot ship that, so this module synthesises a statistically turbulence-like
// field that is:
//   * divergence-free  — velocity is the curl of a random vector potential,
//     so particle advection behaves like an incompressible flow;
//   * deterministic    — fully determined by a seed, so experiments reproduce;
//   * analytic         — evaluable at any continuous (x, y, z, t) without
//     storing voxels, which lets the storage layer materialise atoms lazily.
//
// The substitution preserves what JAWS actually depends on: queries touch the
// same *atoms* regardless of voxel values, and particle-tracking jobs gain
// genuine data dependencies because the next query's positions are computed
// from velocities interpolated out of the previous query's result.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace jaws::field {

/// A 3-component velocity sample.
struct Vec3 {
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;

    friend Vec3 operator+(Vec3 a, Vec3 b) noexcept {
        return {a.x + b.x, a.y + b.y, a.z + b.z};
    }
    friend Vec3 operator-(Vec3 a, Vec3 b) noexcept {
        return {a.x - b.x, a.y - b.y, a.z - b.z};
    }
    friend Vec3 operator*(double s, Vec3 v) noexcept { return {s * v.x, s * v.y, s * v.z}; }
    double norm2() const noexcept { return x * x + y * y + z * z; }
};

/// One velocity + pressure sample.
struct FlowSample {
    Vec3 velocity;
    double pressure = 0.0;
};

/// Parameters of the synthetic field.
struct FieldSpec {
    std::uint64_t seed = 42;     ///< Determines all mode amplitudes/phases.
    std::size_t modes = 24;      ///< Number of Fourier modes in the potential.
    double max_wavenumber = 6.0; ///< Spectral support (integer wavevectors up to this).
    double rms_velocity = 1.0;   ///< Target root-mean-square speed.
    double time_scale = 1.0;     ///< Eddy turnover time controlling mode frequencies.
};

/// Periodic, incompressible synthetic flow on the unit torus [0, 1)^3.
///
/// velocity(x, t) = curl A(x, t) with
/// A(x, t) = sum_m a_m cos(2*pi*(k_m . x) + w_m t + phi_m),
/// which is divergence-free by construction. Pressure is a separate random
/// scalar sum with the same spectral support.
class SyntheticField {
  public:
    /// Build the mode table from `spec` (deterministic in spec.seed).
    explicit SyntheticField(const FieldSpec& spec = {});

    /// Velocity at continuous position `p` (torus coordinates) and time `t`.
    Vec3 velocity(const Vec3& p, double t) const noexcept;

    /// Pressure at continuous position `p` and time `t`.
    double pressure(const Vec3& p, double t) const noexcept;

    /// Velocity + pressure together (one trig pass over the modes).
    FlowSample sample(const Vec3& p, double t) const noexcept;

    /// The spec this field was built from.
    const FieldSpec& spec() const noexcept { return spec_; }

  private:
    struct Mode {
        Vec3 wavevector;   // 2*pi*k, k integer components
        Vec3 amplitude;    // vector-potential amplitude (orthogonalised below)
        double frequency;  // temporal angular frequency
        double phase;      // random phase offset
        double pressure_amp;
    };

    FieldSpec spec_;
    std::vector<Mode> modes_;
};

/// Advance `p` one explicit midpoint (RK2) step of length `dt` through the
/// field — the advection kernel used by particle-tracking jobs. Coordinates
/// wrap on the unit torus.
Vec3 advect_rk2(const SyntheticField& field, const Vec3& p, double t, double dt) noexcept;

/// Wrap a coordinate onto the unit torus [0, 1).
double wrap01(double v) noexcept;

}  // namespace jaws::field
