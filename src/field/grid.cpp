#include "field/grid.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace jaws::field {

util::Coord3 GridSpec::voxel_of(const Vec3& p) const noexcept {
    const auto clampv = [&](double v) {
        const auto n = static_cast<std::int64_t>(wrap01(v) * voxels_per_side);
        return static_cast<std::uint32_t>(
            std::clamp<std::int64_t>(n, 0, static_cast<std::int64_t>(voxels_per_side) - 1));
    };
    return util::Coord3{clampv(p.x), clampv(p.y), clampv(p.z)};
}

Vec3 GridSpec::position_of(const util::Coord3& v) const noexcept {
    const double inv = 1.0 / voxels_per_side;
    return Vec3{(v.x + 0.5) * inv, (v.y + 0.5) * inv, (v.z + 0.5) * inv};
}

util::Coord3 GridSpec::atom_of_voxel(const util::Coord3& v) const noexcept {
    return util::Coord3{v.x / atom_side, v.y / atom_side, v.z / atom_side};
}

std::uint64_t GridSpec::atom_morton_of(const Vec3& p) const noexcept {
    return util::morton_encode(atom_of_voxel(voxel_of(p)));
}

std::vector<std::uint64_t> GridSpec::kernel_atoms(const Vec3& p,
                                                  std::uint32_t half_width) const {
    const util::Coord3 v = voxel_of(p);
    const util::Coord3 a = atom_of_voxel(v);
    std::vector<std::uint64_t> out;
    out.push_back(util::morton_encode(a));
    if (half_width <= ghost) return out;  // kernel fits inside the ghost region

    // Kernel spills past the ghosts: include each face-neighbour atom whose
    // voxels the kernel reaches. `reach` is how many voxels past the ghost
    // region the kernel extends.
    const std::uint32_t reach = half_width - ghost;
    const std::uint32_t aps = atoms_per_side();
    const auto local = [&](std::uint32_t voxel) { return voxel % atom_side; };
    const auto add = [&](std::int64_t ax, std::int64_t ay, std::int64_t az) {
        // Periodic wrap of atom coordinates (the domain is a torus).
        const auto wrap = [&](std::int64_t c) {
            const auto m = static_cast<std::int64_t>(aps);
            return static_cast<std::uint32_t>(((c % m) + m) % m);
        };
        const std::uint64_t code = util::morton_encode(wrap(ax), wrap(ay), wrap(az));
        if (std::find(out.begin(), out.end(), code) == out.end()) out.push_back(code);
    };
    const bool lo_x = local(v.x) < reach, hi_x = local(v.x) + reach >= atom_side;
    const bool lo_y = local(v.y) < reach, hi_y = local(v.y) + reach >= atom_side;
    const bool lo_z = local(v.z) < reach, hi_z = local(v.z) + reach >= atom_side;
    for (int dx = lo_x ? -1 : 0; dx <= (hi_x ? 1 : 0); ++dx)
        for (int dy = lo_y ? -1 : 0; dy <= (hi_y ? 1 : 0); ++dy)
            for (int dz = lo_z ? -1 : 0; dz <= (hi_z ? 1 : 0); ++dz) {
                if (dx == 0 && dy == 0 && dz == 0) continue;
                add(static_cast<std::int64_t>(a.x) + dx, static_cast<std::int64_t>(a.y) + dy,
                    static_cast<std::int64_t>(a.z) + dz);
            }
    return out;
}

VoxelBlock::VoxelBlock(const GridSpec& grid, const SyntheticField& field,
                       const util::Coord3& atom, std::uint32_t t)
    : extent_(grid.atom_side + 2 * grid.ghost) {
    assert(atom.x < grid.atoms_per_side() && atom.y < grid.atoms_per_side() &&
           atom.z < grid.atoms_per_side());
    data_.resize(static_cast<std::size_t>(extent_) * extent_ * extent_ * kChannels);
    const double sim_t = grid.sim_time(t);
    const double inv = 1.0 / grid.voxels_per_side;
    const auto n = static_cast<std::int64_t>(grid.voxels_per_side);
    std::size_t w = 0;
    for (std::uint32_t iz = 0; iz < extent_; ++iz) {
        for (std::uint32_t iy = 0; iy < extent_; ++iy) {
            for (std::uint32_t ix = 0; ix < extent_; ++ix) {
                // Global voxel index with periodic wrap (ghosts may be
                // outside the atom and outside the grid).
                const auto gv = [&](std::uint32_t atom_c, std::uint32_t local) {
                    const std::int64_t g = static_cast<std::int64_t>(atom_c) *
                                               grid.atom_side +
                                           static_cast<std::int64_t>(local) -
                                           grid.ghost;
                    return ((g % n) + n) % n;
                };
                const Vec3 p{(static_cast<double>(gv(atom.x, ix)) + 0.5) * inv,
                             (static_cast<double>(gv(atom.y, iy)) + 0.5) * inv,
                             (static_cast<double>(gv(atom.z, iz)) + 0.5) * inv};
                const FlowSample s = field.sample(p, sim_t);
                data_[w + 0] = static_cast<float>(s.velocity.x);
                data_[w + 1] = static_cast<float>(s.velocity.y);
                data_[w + 2] = static_cast<float>(s.velocity.z);
                data_[w + 3] = static_cast<float>(s.pressure);
                w += kChannels;
            }
        }
    }
}

FlowSample VoxelBlock::at(std::uint32_t ix, std::uint32_t iy, std::uint32_t iz) const noexcept {
    const std::size_t i = kChannels * voxel_index(ix, iy, iz);
    FlowSample s;
    s.velocity = Vec3{data_[i + 0], data_[i + 1], data_[i + 2]};
    s.pressure = data_[i + 3];
    return s;
}

}  // namespace jaws::field
