#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

namespace jaws::util {

void RunningStats::add(double x) noexcept {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto n = static_cast<double>(n_ + other.n_);
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / n;
    mean_ = (mean_ * static_cast<double>(n_) + other.mean_ * static_cast<double>(other.n_)) / n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    n_ += other.n_;
}

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
    assert(edges_.size() >= 2);
    assert(std::is_sorted(edges_.begin(), edges_.end()));
    counts_.assign(edges_.size() + 1, 0);
}

void Histogram::add(double x) noexcept {
    ++total_;
    const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
    // upper_bound index 0 => below first edge (underflow slot 0);
    // index edges_.size() => at/above last edge (overflow slot).
    ++counts_[static_cast<std::size_t>(it - edges_.begin())];
}

double Histogram::fraction(std::size_t i) const noexcept {
    return total_ ? static_cast<double>(count(i)) / static_cast<double>(total_) : 0.0;
}

std::string Histogram::to_table(const std::string& value_label) const {
    std::string out;
    char line[160];
    std::snprintf(line, sizeof line, "%-24s %12s %8s\n", value_label.c_str(), "count", "frac");
    out += line;
    for (std::size_t i = 0; i < bins(); ++i) {
        std::snprintf(line, sizeof line, "[%10.3g, %10.3g) %12llu %7.1f%%\n", lower_edge(i),
                      upper_edge(i), static_cast<unsigned long long>(count(i)),
                      100.0 * fraction(i));
        out += line;
    }
    if (underflow() || overflow()) {
        std::snprintf(line, sizeof line, "under=%llu over=%llu\n",
                      static_cast<unsigned long long>(underflow()),
                      static_cast<unsigned long long>(overflow()));
        out += line;
    }
    return out;
}

double percentile(std::vector<double> sample, double p) {
    if (sample.empty()) return std::numeric_limits<double>::quiet_NaN();
    std::sort(sample.begin(), sample.end());
    const double rank = (p / 100.0) * static_cast<double>(sample.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, sample.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

std::string format_quantile(double value) {
    if (!std::isfinite(value)) return "n/a";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", value);
    return buf;
}

}  // namespace jaws::util
