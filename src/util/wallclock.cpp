#include "util/wallclock.h"

#include <chrono>

namespace jaws::util {

std::uint64_t wall_clock_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

}  // namespace jaws::util
