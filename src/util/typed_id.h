// Strongly-typed identifiers.
//
// The cluster and storage layers juggle several integer identity spaces —
// clustered-index atom keys, node indices, disk channel indices — that were
// historically plain uint64_t/uint32_t/size_t and therefore silently
// interconvertible. A Morton code passed where a node index was expected
// compiles fine and corrupts routing. TypedId wraps each space in a distinct
// zero-cost type: construction from the raw representation is explicit,
// extraction goes through `value()`, and no arithmetic or cross-type
// conversion exists, so mixing two id spaces is a compile error. The
// `raw-id-api` and `id-mixing` analyzer passes (scripts/jaws_analyzer.py)
// enforce that public APIs in the linted modules use these types rather than
// raw integers.
//
// Weak aliases with a single producer and consumer (workload::QueryId,
// util::EventId) intentionally stay plain integers — they never cross a
// module boundary where confusion is possible.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace jaws::util {

/// A zero-cost strong wrapper over an integer representation. `Tag` is an
/// (incomplete) marker type that makes each instantiation a distinct type.
template <class Tag, class Rep>
class TypedId {
  public:
    using rep = Rep;

    constexpr TypedId() noexcept = default;
    explicit constexpr TypedId(Rep value) noexcept : value_(value) {}

    /// The raw representation, for indexing, serialization and hashing.
    constexpr Rep value() const noexcept { return value_; }

    friend constexpr bool operator==(TypedId, TypedId) noexcept = default;
    friend constexpr auto operator<=>(TypedId, TypedId) noexcept = default;

    /// Hash functor so a TypedId can key unordered containers.
    struct Hash {
        std::size_t operator()(TypedId id) const noexcept {
            return std::hash<Rep>{}(id.value_);
        }
    };

    /// Stream output (gtest failure messages, bench logs).
    friend std::ostream& operator<<(std::ostream& os, TypedId id) {
        return os << id.value_;
    }

  private:
    Rep value_{};
};

/// Composite 64-bit clustered-index key of an atom — (timestep << 40) |
/// morton, produced by storage::AtomId::key(). Distinct from a bare Morton
/// code, which is a spatial coordinate, not an identity.
using AtomKey = TypedId<struct AtomKeyTag, std::uint64_t>;

/// Index of a node within a TurbulenceCluster, in [0, ClusterConfig::nodes).
/// 32-bit on purpose: event-queue sources are 32-bit, and
/// ClusterConfig::validate() rejects node counts that would not fit.
using NodeIndex = TypedId<struct NodeIndexTag, std::uint32_t>;

/// Index of an I/O channel within one node's DiskModel.
using ChannelIndex = TypedId<struct ChannelIndexTag, std::size_t>;

}  // namespace jaws::util
