// Streaming statistics, histograms and smoothing.
//
// The experiment harness reports throughput, response-time and cache-hit
// figures; the adaptive age-bias controller (paper Sec. V-A) smooths per-run
// measurements with an EWMA. These helpers are shared across all of them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace jaws::util {

/// Welford-style single-pass accumulator for mean/variance/min/max.
class RunningStats {
  public:
    /// Add one observation.
    void add(double x) noexcept;

    /// Number of observations so far.
    std::size_t count() const noexcept { return n_; }
    /// Arithmetic mean (0 if empty).
    double mean() const noexcept { return n_ ? mean_ : 0.0; }
    /// Unbiased sample variance (0 if fewer than two observations).
    double variance() const noexcept;
    /// Sample standard deviation.
    double stddev() const noexcept;
    /// Smallest observation (0 if empty).
    double min() const noexcept { return n_ ? min_ : 0.0; }
    /// Largest observation (0 if empty).
    double max() const noexcept { return n_ ? max_ : 0.0; }
    /// Sum of observations.
    double sum() const noexcept { return sum_; }

    /// Merge another accumulator into this one (parallel reduction).
    void merge(const RunningStats& other) noexcept;

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/// Fixed-edge histogram. Edges are user-supplied bin boundaries; values below
/// the first edge go to an underflow bin and values at/above the last edge to
/// an overflow bin. Used for the Fig. 8 / Fig. 9 workload characterisations.
class Histogram {
  public:
    /// Construct from ascending bin edges (at least two).
    explicit Histogram(std::vector<double> edges);

    /// Count one value.
    void add(double x) noexcept;

    /// Number of interior bins (edges.size() - 1).
    std::size_t bins() const noexcept { return counts_.size() - 2; }
    /// Count in interior bin `i` in [0, bins()).
    std::uint64_t count(std::size_t i) const noexcept { return counts_[i + 1]; }
    /// Count below the first edge.
    std::uint64_t underflow() const noexcept { return counts_.front(); }
    /// Count at/above the last edge.
    std::uint64_t overflow() const noexcept { return counts_.back(); }
    /// Total number of values added.
    std::uint64_t total() const noexcept { return total_; }
    /// Fraction of all values landing in interior bin `i`.
    double fraction(std::size_t i) const noexcept;
    /// Lower/upper edge of interior bin `i`.
    double lower_edge(std::size_t i) const noexcept { return edges_[i]; }
    double upper_edge(std::size_t i) const noexcept { return edges_[i + 1]; }

    /// Render an ASCII table with one row per interior bin.
    std::string to_table(const std::string& value_label) const;

  private:
    std::vector<double> edges_;
    std::vector<std::uint64_t> counts_;  // [underflow, bins..., overflow]
    std::uint64_t total_ = 0;
};

/// Exact percentile of a sample (sorts a copy; fine at our sample sizes).
/// `p` in [0, 100]. Returns NaN for an empty sample — an empty distribution
/// has no percentiles, and 0.0 would read as "zero latency" in reports
/// (render it with format_quantile()).
double percentile(std::vector<double> sample, double p);

/// Render a percentile value for report tables: fixed-point with one decimal,
/// or "n/a" when the value is NaN/infinite (empty sample).
std::string format_quantile(double value);

/// Exponentially weighted moving average with weight `alpha` on the newest
/// observation: y_i = alpha * x_i + (1 - alpha) * y_{i-1}. The paper's
/// controller uses alpha = 0.2 (Sec. V-A).
class Ewma {
  public:
    explicit Ewma(double alpha) noexcept : alpha_(alpha) {}

    /// Fold in an observation and return the smoothed value. The first
    /// observation initialises the average (rt'(0) = rt(0) in the paper).
    double update(double x) noexcept {
        value_ = primed_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
        primed_ = true;
        return value_;
    }

    /// Current smoothed value (0 before any update).
    double value() const noexcept { return value_; }
    /// Whether at least one observation has been folded in.
    bool primed() const noexcept { return primed_; }
    /// Forget all history.
    void reset() noexcept {
        value_ = 0.0;
        primed_ = false;
    }

  private:
    double alpha_;
    double value_ = 0.0;
    bool primed_ = false;
};

}  // namespace jaws::util
