// Virtual (simulated) time.
//
// All experiment clocks in this repository are *virtual*: reading an atom from
// the simulated disk or evaluating positions advances a VirtualClock by the
// modelled cost instead of sleeping. This is what lets the benches reproduce
// the paper's multi-hour workloads in seconds, deterministically. Time is kept
// as integer microseconds to avoid floating-point drift in long runs.
//
// Arithmetic on SimTime is *overflow-safe*: `+`, `-`, `+=`, `-=` and
// `scaled_by` saturate at the int64 microsecond range instead of wrapping
// (signed overflow would be UB). Under the audit preset (JAWS_AUDIT_BUILD)
// any saturation additionally reports a contract violation, so simulations
// that silently hit the rail are caught in CI. Call sites outside this header
// must not touch the raw `.micros` field — the `raw-micros` analyzer pass
// (scripts/jaws_analyzer.py) enforces that; use the typed helpers below
// (`scaled_by`, `minus_clamped`, `checked_sum`, `raw_micros()`) instead.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <string>

#include "util/contracts.h"

namespace jaws::util {

/// A point or span of virtual time, in integer microseconds.
struct SimTime {
    std::int64_t micros = 0;

    static constexpr SimTime zero() noexcept { return SimTime{0}; }
    /// Saturation rails. `max()` doubles as the "never"/"no deadline"
    /// sentinel across the engine and cluster layers.
    static constexpr SimTime max() noexcept {
        return SimTime{std::numeric_limits<std::int64_t>::max()};
    }
    static constexpr SimTime min() noexcept {
        return SimTime{std::numeric_limits<std::int64_t>::min()};
    }
    static constexpr SimTime from_micros(std::int64_t us) noexcept { return SimTime{us}; }
    // Round to the nearest microsecond (half away from zero, like llround):
    // truncation would drop up to 1 us per conversion, and those errors
    // accumulate over the millions of conversions in a long run. Saturating:
    // NaN maps to zero and magnitudes beyond the int64 microsecond range
    // clamp to the extremes — std::llround's result is unspecified there,
    // and heavy-tail specs can legally price a single request past it
    // (found by fuzz/fuzz_disk_model.cpp).
    static SimTime from_millis(double ms) noexcept { return from_real_micros(ms * 1e3); }
    static SimTime from_seconds(double s) noexcept { return from_real_micros(s * 1e6); }
    static SimTime from_real_micros(double us) noexcept {
        // Just below 2^63 (~9.223e18); llround is well-defined within it.
        constexpr double bound = 9.2e18;
        if (std::isnan(us)) return zero();
        if (us >= bound) return max();
        if (us <= -bound) return min();
        return SimTime{std::llround(us)};
    }

    /// Raw microsecond count, for serialization and scoring only. Prefer the
    /// arithmetic helpers for anything that computes with the value.
    constexpr std::int64_t raw_micros() const noexcept { return micros; }

    constexpr double seconds() const noexcept { return static_cast<double>(micros) * 1e-6; }
    constexpr double millis() const noexcept { return static_cast<double>(micros) * 1e-3; }

    /// Saturating addition. Release builds clamp to the rails; audit builds
    /// additionally report a contract violation (compile-time overflow in a
    /// constant expression is a hard error either way).
    friend constexpr SimTime operator+(SimTime a, SimTime b) noexcept {
        std::int64_t sum = 0;
        if (__builtin_add_overflow(a.micros, b.micros, &sum)) {
            JAWS_INVARIANT(false, "SimTime addition overflowed; saturating");
            return b.micros > 0 ? max() : min();
        }
        return SimTime{sum};
    }
    /// Saturating subtraction (same trap-and-clamp policy as `+`).
    friend constexpr SimTime operator-(SimTime a, SimTime b) noexcept {
        std::int64_t diff = 0;
        if (__builtin_sub_overflow(a.micros, b.micros, &diff)) {
            JAWS_INVARIANT(false, "SimTime subtraction overflowed; saturating");
            return b.micros < 0 ? max() : min();
        }
        return SimTime{diff};
    }
    constexpr SimTime& operator+=(SimTime o) noexcept { return *this = *this + o; }
    constexpr SimTime& operator-=(SimTime o) noexcept { return *this = *this - o; }

    /// Saturating scalar multiply: per-unit cost times an integer count
    /// (e.g. per-read latency times a miss count).
    constexpr SimTime scaled_by(std::int64_t factor) const noexcept {
        std::int64_t prod = 0;
        if (__builtin_mul_overflow(micros, factor, &prod)) {
            JAWS_INVARIANT(false, "SimTime scale overflowed; saturating");
            return ((micros < 0) == (factor < 0)) ? max() : min();
        }
        return SimTime{prod};
    }

    /// `max(0, *this - max(0, o))`: subtract a charge that may be partially
    /// or fully unapplied, never going negative. The disk model's tail
    /// cancellation and delay refunds are the canonical users.
    constexpr SimTime minus_clamped(SimTime o) const noexcept {
        const SimTime charged = o > zero() ? o : zero();
        const SimTime rest = *this - charged;
        return rest > zero() ? rest : zero();
    }

    /// Saturating sum of any number of spans (each pairwise step saturates,
    /// so a partial overflow cannot cancel back into range).
    template <class... Rest>
    static constexpr SimTime checked_sum(SimTime first, Rest... rest) noexcept {
        SimTime total = first;
        ((total += rest), ...);
        return total;
    }

    friend constexpr auto operator<=>(SimTime, SimTime) = default;
};

/// Render as a human-readable duration (used by bench output).
inline std::string to_string(SimTime t) {
    const double s = t.seconds();
    if (s < 1e-3) return std::to_string(t.micros) + "us";
    if (s < 1.0) return std::to_string(t.micros / 1000) + "ms";
    return std::to_string(s) + "s";
}

/// Monotonically advancing virtual clock shared by the engine, the disk model
/// and the schedulers. Only the engine's event loop advances it.
class VirtualClock {
  public:
    /// Current virtual time.
    SimTime now() const noexcept { return now_; }

    /// Advance by a non-negative span (charging a modelled cost). Saturates
    /// at SimTime::max() like all SimTime arithmetic.
    void advance(SimTime dt) noexcept {
        if (dt > SimTime::zero()) now_ += dt;
    }

    /// Jump forward to an absolute time (e.g. the next query arrival). Never
    /// moves backwards.
    void advance_to(SimTime t) noexcept {
        if (t > now_) now_ = t;
    }

    /// Reset to zero (between experiment repetitions).
    void reset() noexcept { now_ = SimTime::zero(); }

  private:
    SimTime now_ = SimTime::zero();
};

}  // namespace jaws::util
