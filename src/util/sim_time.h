// Virtual (simulated) time.
//
// All experiment clocks in this repository are *virtual*: reading an atom from
// the simulated disk or evaluating positions advances a VirtualClock by the
// modelled cost instead of sleeping. This is what lets the benches reproduce
// the paper's multi-hour workloads in seconds, deterministically. Time is kept
// as integer microseconds to avoid floating-point drift in long runs.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace jaws::util {

/// A point or span of virtual time, in integer microseconds.
struct SimTime {
    std::int64_t micros = 0;

    static constexpr SimTime zero() noexcept { return SimTime{0}; }
    static constexpr SimTime from_micros(std::int64_t us) noexcept { return SimTime{us}; }
    // Round to the nearest microsecond (half away from zero, like llround):
    // truncation would drop up to 1 us per conversion, and those errors
    // accumulate over the millions of conversions in a long run. Saturating:
    // NaN maps to zero and magnitudes beyond the int64 microsecond range
    // clamp to the extremes — std::llround's result is unspecified there,
    // and heavy-tail specs can legally price a single request past it
    // (found by fuzz/fuzz_disk_model.cpp).
    static SimTime from_millis(double ms) noexcept { return from_real_micros(ms * 1e3); }
    static SimTime from_seconds(double s) noexcept { return from_real_micros(s * 1e6); }
    static SimTime from_real_micros(double us) noexcept {
        // Just below 2^63 (~9.223e18); llround is well-defined within it.
        constexpr double bound = 9.2e18;
        if (std::isnan(us)) return zero();
        if (us >= bound) return SimTime{std::numeric_limits<std::int64_t>::max()};
        if (us <= -bound) return SimTime{std::numeric_limits<std::int64_t>::min()};
        return SimTime{std::llround(us)};
    }

    constexpr double seconds() const noexcept { return static_cast<double>(micros) * 1e-6; }
    constexpr double millis() const noexcept { return static_cast<double>(micros) * 1e-3; }

    friend constexpr SimTime operator+(SimTime a, SimTime b) noexcept {
        return SimTime{a.micros + b.micros};
    }
    friend constexpr SimTime operator-(SimTime a, SimTime b) noexcept {
        return SimTime{a.micros - b.micros};
    }
    constexpr SimTime& operator+=(SimTime o) noexcept {
        micros += o.micros;
        return *this;
    }
    friend constexpr auto operator<=>(SimTime, SimTime) = default;
};

/// Render as a human-readable duration (used by bench output).
inline std::string to_string(SimTime t) {
    const double s = t.seconds();
    if (s < 1e-3) return std::to_string(t.micros) + "us";
    if (s < 1.0) return std::to_string(t.micros / 1000) + "ms";
    return std::to_string(s) + "s";
}

/// Monotonically advancing virtual clock shared by the engine, the disk model
/// and the schedulers. Only the engine's event loop advances it.
class VirtualClock {
  public:
    /// Current virtual time.
    SimTime now() const noexcept { return now_; }

    /// Advance by a non-negative span (charging a modelled cost).
    void advance(SimTime dt) noexcept {
        if (dt.micros > 0) now_ += dt;
    }

    /// Jump forward to an absolute time (e.g. the next query arrival). Never
    /// moves backwards.
    void advance_to(SimTime t) noexcept {
        if (t > now_) now_ = t;
    }

    /// Reset to zero (between experiment repetitions).
    void reset() noexcept { now_ = SimTime::zero(); }

  private:
    SimTime now_ = SimTime::zero();
};

}  // namespace jaws::util
