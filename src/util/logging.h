// Lightweight leveled logging.
//
// Benches and examples narrate progress through this logger; tests silence it.
// Output goes to stderr so bench tables on stdout stay machine-parsable.
#pragma once

#include <cstdarg>
#include <string_view>

namespace jaws::util {

/// Severity levels, ascending.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set the global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;

/// Current global threshold.
LogLevel log_level() noexcept;

/// printf-style log statement. `tag` names the emitting subsystem. Thread
/// safe: concurrent calls never interleave within one emitted line.
void logf(LogLevel level, std::string_view tag, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 3, 4)))
#endif
    ;

/// Receives fully formatted log records instead of the default stderr
/// writer. Called with the logger's internal mutex held — keep sinks cheap
/// and never log from inside one.
using LogSink = void (*)(LogLevel level, std::string_view tag, std::string_view message);

/// Install `sink` as the output target (nullptr restores stderr).
void set_log_sink(LogSink sink) noexcept;

}  // namespace jaws::util

#define JAWS_LOG_DEBUG(tag, ...) ::jaws::util::logf(::jaws::util::LogLevel::kDebug, tag, __VA_ARGS__)
#define JAWS_LOG_INFO(tag, ...) ::jaws::util::logf(::jaws::util::LogLevel::kInfo, tag, __VA_ARGS__)
#define JAWS_LOG_WARN(tag, ...) ::jaws::util::logf(::jaws::util::LogLevel::kWarn, tag, __VA_ARGS__)
#define JAWS_LOG_ERROR(tag, ...) ::jaws::util::logf(::jaws::util::LogLevel::kError, tag, __VA_ARGS__)
