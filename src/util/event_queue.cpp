#include "util/event_queue.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace jaws::util {

// --------------------------------------------------------------------------
// EventQueue
// --------------------------------------------------------------------------

void EventQueue::reset_to(SimTime t) {
    if (!handlers_.empty())
        throw std::logic_error("EventQueue::reset_to: events still pending");
    while (!heap_.empty()) heap_.pop();  // drop cancelled tombstones
    now_ = t;
}

EventQueue::EventId EventQueue::schedule(SimTime at, int priority, Handler fn) {
    const EventId id = next_id_++;
    if (at < now_) at = now_;  // the past is immutable; fire as soon as possible
    heap_.push(Entry{at, priority, id});
    handlers_.emplace(id, std::move(fn));
    return id;
}

bool EventQueue::cancel(EventId id) { return handlers_.erase(id) > 0; }

void EventQueue::drop_cancelled() {
    while (!heap_.empty() && handlers_.find(heap_.top().seq) == handlers_.end())
        heap_.pop();
}

SimTime EventQueue::next_time() const {
    const_cast<EventQueue*>(this)->drop_cancelled();
    assert(!heap_.empty());
    return heap_.top().at;
}

bool EventQueue::run_one() {
    drop_cancelled();
    if (heap_.empty()) return false;
    const Entry top = heap_.top();
    heap_.pop();
    auto it = handlers_.find(top.seq);
    assert(it != handlers_.end());
    Handler fn = std::move(it->second);
    handlers_.erase(it);
    now_ = top.at;  // monotone: entries are never scheduled before now_
    fn();
    return true;
}

// --------------------------------------------------------------------------
// SimResource
// --------------------------------------------------------------------------

SimResource::SimResource(EventQueue& events, std::size_t channels,
                         int completion_priority)
    : events_(events), completion_priority_(completion_priority) {
    if (channels == 0)
        throw std::invalid_argument("SimResource: at least one channel required");
    channels_.resize(channels);
    last_change_ = events_.now();
}

std::size_t SimResource::queued() const noexcept {
    std::size_t n = 0;
    for (const auto& [pri, q] : waiting_) n += q.size();
    return n;
}

SimTime SimResource::busy_channel_time() const {
    const SimTime now = events_.now();
    return busy_integral_ +
           SimTime{static_cast<std::int64_t>(busy_) * (now - last_change_).micros};
}

void SimResource::note_busy_change(std::size_t delta_sign) {
    if (observer_) observer_();  // old busy count still visible to the observer
    const SimTime now = events_.now();
    busy_integral_ +=
        SimTime{static_cast<std::int64_t>(busy_) * (now - last_change_).micros};
    last_change_ = now;
    busy_ = delta_sign ? busy_ + 1 : busy_ - 1;
}

void SimResource::submit(Job job) {
    // A free channel serves immediately.
    for (std::size_t c = 0; c < channels_.size(); ++c) {
        if (!channels_[c].busy) {
            start_on(c, std::move(job));
            return;
        }
    }
    // No free channel: a non-preemptible job may evict a preemptible one
    // mid-service (a demand read cancelling a speculative prefetch).
    if (!job.preemptible) {
        for (std::size_t c = 0; c < channels_.size(); ++c) {
            Channel& ch = channels_[c];
            if (!ch.busy || !ch.preemptible) continue;
            events_.cancel(ch.completion);
            const SimTime remaining = ch.started + ch.duration - events_.now();
            Job aborted = std::move(ch.job);
            if (aborted.on_abort) aborted.on_abort(c, remaining);
            // The channel stays busy (no count change): it switches jobs.
            ch.preemptible = job.preemptible;
            ch.started = events_.now();
            ch.job = std::move(job);
            ch.duration = ch.job.on_start ? ch.job.on_start(c) : SimTime::zero();
            const std::size_t chan = c;
            ch.completion = events_.schedule(ch.started + ch.duration,
                                             completion_priority_,
                                             [this, chan] { finish(chan); });
            return;
        }
    }
    waiting_[job.priority].push_back(std::move(job));
}

void SimResource::start_on(std::size_t channel, Job&& job) {
    Channel& ch = channels_[channel];
    assert(!ch.busy);
    note_busy_change(1);
    ch.busy = true;
    ch.preemptible = job.preemptible;
    ch.started = events_.now();
    ch.job = std::move(job);
    ch.duration = ch.job.on_start ? ch.job.on_start(channel) : SimTime::zero();
    ch.completion = events_.schedule(ch.started + ch.duration, completion_priority_,
                                     [this, channel] { finish(channel); });
}

void SimResource::finish(std::size_t channel) {
    Channel& ch = channels_[channel];
    assert(ch.busy);
    note_busy_change(0);
    ch.busy = false;
    Job done = std::move(ch.job);
    // Serve the waiting queue before running the completion handler so a job
    // submitted *from* the handler cannot jump ahead of queued work.
    for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
        if (it->second.empty()) continue;
        Job next = std::move(it->second.front());
        it->second.pop_front();
        if (it->second.empty()) waiting_.erase(it);
        start_on(channel, std::move(next));
        break;
    }
    if (done.on_complete) done.on_complete(channel);
    if (has_free_channel() && waiting_.empty() && idle_hook_) idle_hook_();
}

}  // namespace jaws::util
