#include "util/event_queue.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "util/contracts.h"

namespace jaws::util {

// --------------------------------------------------------------------------
// EventQueue
// --------------------------------------------------------------------------

void EventQueue::reset_to(SimTime t) {
    if (!handlers_.empty())
        throw std::logic_error("EventQueue::reset_to: events still pending");
    heap_.clear();  // drop cancelled tombstones
    now_ = t;
}

void EventQueue::set_perturbation(const TiePerturbation& p) {
    if (!handlers_.empty() || next_id_ != 0 || schedule_count_ != 0)
        throw std::logic_error(
            "EventQueue::set_perturbation: queue already issued events");
    perturb_ = p;
    next_id_ = p.id_offset;
}

EventQueue::EventId EventQueue::schedule(SimTime at, int priority,
                                         std::uint32_t source, Handler fn) {
    const EventId id = next_id_++;
    if (at < now_) at = now_;  // the past is immutable; fire as soon as possible
    heap_.push_back(Entry{at, priority, source, id, tie_rank(id, priority)});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<Entry>{});
    handlers_.emplace(id, Record{std::move(fn), source});
    if (source >= pending_by_source_.size()) pending_by_source_.resize(source + 1, 0);
    ++pending_by_source_[source];
    if (perturb_.tombstone_stride != 0 &&
        ++schedule_count_ % perturb_.tombstone_stride == 0) {
        // A handler-less entry: dropped silently when it surfaces, but it
        // disturbs the heap's internal layout until then — flushing out any
        // client observably coupled to that layout.
        const EventId ghost = next_id_++;
        heap_.push_back(Entry{at, priority, source, ghost, tie_rank(ghost, priority)});
        std::push_heap(heap_.begin(), heap_.end(), std::greater<Entry>{});
    }
    JAWS_AUDIT((++audit_tick_ & 63) == 0 && audit());
    return id;
}

std::uint64_t EventQueue::tie_rank(EventId id, int priority) const noexcept {
    const bool permuted = priority >= 0 && priority < 64 &&
                          ((perturb_.permute_priorities >> priority) & 1) != 0;
    return permuted ? id ^ perturb_.salt : id;
}

void EventQueue::note_source_gone(std::uint32_t source) {
    assert(source < pending_by_source_.size() && pending_by_source_[source] > 0);
    --pending_by_source_[source];
}

bool EventQueue::cancel(EventId id) {
    auto it = handlers_.find(id);
    if (it == handlers_.end()) return false;
    note_source_gone(it->second.source);
    handlers_.erase(it);
    return true;
}

void EventQueue::drop_cancelled() {
    while (!heap_.empty() && handlers_.find(heap_.front().seq) == handlers_.end()) {
        std::pop_heap(heap_.begin(), heap_.end(), std::greater<Entry>{});
        heap_.pop_back();
    }
}

SimTime EventQueue::next_time() const {
    const_cast<EventQueue*>(this)->drop_cancelled();
    assert(!heap_.empty());
    return heap_.front().at;
}

bool EventQueue::run_one() {
    drop_cancelled();
    if (heap_.empty()) return false;
    const Entry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<Entry>{});
    heap_.pop_back();
    auto it = handlers_.find(top.seq);
    assert(it != handlers_.end());
    Handler fn = std::move(it->second.fn);
    note_source_gone(it->second.source);
    handlers_.erase(it);
    last_source_ = top.source;
    now_ = top.at;  // monotone: entries are never scheduled before now_
    JAWS_AUDIT((++audit_tick_ & 63) == 0 && audit());
    fn();
    return true;
}

bool EventQueue::audit() const {
    bool ok = true;
    const auto check = [&](bool cond, const char* expr, const char* msg) {
        if (!cond) {
            ok = false;
            contract_violation(__FILE__, __LINE__, expr, msg);
        }
    };
    check(std::is_heap(heap_.begin(), heap_.end(), std::greater<Entry>{}),
          "is_heap(heap_)", "EventQueue: heap order violated");
    std::unordered_set<EventId> seen;
    std::size_t live = 0;
    for (const Entry& e : heap_) {
        check(seen.insert(e.seq).second, "unique(entry.seq)",
              "EventQueue: duplicate event id in heap");
        check(e.seq < next_id_, "entry.seq < next_id_",
              "EventQueue: entry id ahead of the id counter");
        const auto rec = handlers_.find(e.seq);
        if (rec == handlers_.end()) continue;  // tombstone
        ++live;
        check(e.at >= now_, "entry.at >= now()",
              "EventQueue: pending event scheduled behind the clock");
        check(rec->second.source == e.source, "entry.source == record.source",
              "EventQueue: heap entry and handler disagree on source");
    }
    // Every live handler id must have exactly one heap entry, or it can
    // never fire (ids are unique, so equality of counts proves the map).
    check(live == handlers_.size(), "live heap entries == handlers",
          "EventQueue: dangling handler with no heap entry");
    std::size_t by_source = 0;
    for (const std::size_t n : pending_by_source_) by_source += n;
    check(by_source == handlers_.size(), "sum(pending_by_source) == handlers",
          "EventQueue: per-source pending counts out of sync");
    return ok;
}

// --------------------------------------------------------------------------
// SimResource
// --------------------------------------------------------------------------

SimResource::SimResource(EventQueue& events, std::size_t channels,
                         int completion_priority, std::uint32_t source)
    : events_(events), completion_priority_(completion_priority), source_(source) {
    if (channels == 0)
        throw std::invalid_argument("SimResource: at least one channel required");
    channels_.resize(channels);
    last_change_ = events_.now();
}

std::size_t SimResource::queued() const noexcept {
    std::size_t n = 0;
    for (const auto& [pri, q] : waiting_) n += q.size();
    return n;
}

SimTime SimResource::busy_channel_time() const {
    const SimTime now = events_.now();
    return busy_integral_ +
           (now - last_change_).scaled_by(static_cast<std::int64_t>(busy_));
}

void SimResource::note_busy_change(std::size_t delta_sign) {
    if (observer_) observer_();  // old busy count still visible to the observer
    const SimTime now = events_.now();
    busy_integral_ +=
        (now - last_change_).scaled_by(static_cast<std::int64_t>(busy_));
    last_change_ = now;
    busy_ = delta_sign ? busy_ + 1 : busy_ - 1;
    peak_busy_ = std::max(peak_busy_, busy_);
}

SimResource::JobId SimResource::submit(Job job) {
    const JobId id = next_job_id_++;
    // A free channel serves immediately.
    for (std::size_t c = 0; c < channels_.size(); ++c) {
        if (!channels_[c].busy) {
            start_on(c, id, std::move(job));
            JAWS_AUDIT(audit());
            return id;
        }
    }
    // No free channel: a non-preemptible job may evict a preemptible one
    // mid-service (a demand read cancelling a speculative prefetch).
    if (!job.preemptible) {
        for (std::size_t c = 0; c < channels_.size(); ++c) {
            Channel& ch = channels_[c];
            if (!ch.busy || !ch.preemptible) continue;
            events_.cancel(ch.completion);
            const SimTime remaining = ch.started + ch.duration - events_.now();
            Job aborted = std::move(ch.job);
            if (aborted.on_abort) aborted.on_abort(c, remaining);
            // The channel stays busy (no count change): it switches jobs.
            ch.preemptible = job.preemptible;
            ch.started = events_.now();
            ch.id = id;
            ch.job = std::move(job);
            ch.duration = ch.job.on_start ? ch.job.on_start(c) : SimTime::zero();
            const std::size_t chan = c;
            ch.completion = events_.schedule(ch.started + ch.duration,
                                             completion_priority_, source_,
                                             [this, chan] { finish(chan); });
            JAWS_AUDIT(audit());
            return id;
        }
    }
    waiting_[job.priority].push_back(Waiting{id, std::move(job)});
    JAWS_AUDIT(audit());
    return id;
}

bool SimResource::cancel(JobId id) {
    // In service: unwind the channel as finish() would, but run on_abort with
    // the unrendered tail instead of on_complete.
    for (std::size_t c = 0; c < channels_.size(); ++c) {
        Channel& ch = channels_[c];
        if (!ch.busy || ch.id != id) continue;
        events_.cancel(ch.completion);
        const SimTime remaining = ch.started + ch.duration - events_.now();
        note_busy_change(0);
        ch.busy = false;
        Job aborted = std::move(ch.job);
        backfill(c);
        JAWS_AUDIT(audit());
        if (aborted.on_abort) aborted.on_abort(c, remaining);
        if (has_free_channel() && waiting_.empty() && idle_hook_) idle_hook_();
        return true;
    }
    // Still waiting: remove silently (service never started).
    for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
        auto& q = it->second;
        for (auto w = q.begin(); w != q.end(); ++w) {
            if (w->id != id) continue;
            q.erase(w);
            if (q.empty()) waiting_.erase(it);
            JAWS_AUDIT(audit());
            return true;
        }
    }
    return false;  // already completed, aborted or cancelled
}

void SimResource::start_on(std::size_t channel, JobId id, Job&& job) {
    Channel& ch = channels_[channel];
    assert(!ch.busy);
    note_busy_change(1);
    ch.busy = true;
    ch.preemptible = job.preemptible;
    ch.started = events_.now();
    ch.id = id;
    ch.job = std::move(job);
    ch.duration = ch.job.on_start ? ch.job.on_start(channel) : SimTime::zero();
    ch.completion = events_.schedule(ch.started + ch.duration, completion_priority_,
                                     source_, [this, channel] { finish(channel); });
}

void SimResource::backfill(std::size_t channel) {
    // Serve the waiting queue before running the finished job's handler so a
    // job submitted *from* the handler cannot jump ahead of queued work.
    for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
        if (it->second.empty()) continue;
        Waiting next = std::move(it->second.front());
        it->second.pop_front();
        if (it->second.empty()) waiting_.erase(it);
        start_on(channel, next.id, std::move(next.job));
        break;
    }
}

void SimResource::finish(std::size_t channel) {
    Channel& ch = channels_[channel];
    assert(ch.busy);
    note_busy_change(0);
    ch.busy = false;
    Job done = std::move(ch.job);
    backfill(channel);
    JAWS_AUDIT(audit());
    if (done.on_complete) done.on_complete(channel);
    if (has_free_channel() && waiting_.empty() && idle_hook_) idle_hook_();
}

bool SimResource::audit() const {
    bool ok = true;
    const auto check = [&](bool cond, const char* expr, const char* msg) {
        if (!cond) {
            ok = false;
            contract_violation(__FILE__, __LINE__, expr, msg);
        }
    };
    const SimTime now = events_.now();
    std::size_t busy_count = 0;
    for (const Channel& ch : channels_) {
        if (!ch.busy) continue;
        ++busy_count;
        check(events_.pending(ch.completion), "events_.pending(ch.completion)",
              "SimResource: busy channel without a live completion event");
        check(ch.started + ch.duration >= now, "ch.started + ch.duration >= now",
              "SimResource: busy channel's service already elapsed");
        check(ch.started <= now, "ch.started <= now",
              "SimResource: channel service starts in the future");
    }
    check(busy_count == busy_, "busy channel flags == busy_",
          "SimResource: busy count out of sync with channel flags");
    check(peak_busy_ >= busy_ && peak_busy_ <= channels_.size(),
          "busy_ <= peak_busy_ <= channels()",
          "SimResource: peak busy-channel watermark out of range");
    for (const auto& [pri, q] : waiting_)
        check(!q.empty(), "!waiting_[pri].empty()",
              "SimResource: empty priority class retained in waiting map");
    // Work only queues while every channel is busy (submit() drains free
    // channels first; finish() backfills from the queue).
    if (queued() > 0)
        check(busy_ == channels_.size(), "queued() implies all channels busy",
              "SimResource: jobs waiting while a channel is free");
    check(last_change_ <= now, "last_change_ <= now",
          "SimResource: busy integral accounted ahead of the clock");
    check(busy_integral_ >= SimTime::zero(), "busy_integral_ >= 0",
          "SimResource: negative busy-time integral");
    return ok;
}

}  // namespace jaws::util
