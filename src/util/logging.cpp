#include "util/logging.h"

#include <atomic>
#include <cstdio>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace jaws::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

/// Serialises sink swaps against emission so a record never reaches a sink
/// that was uninstalled mid-format, and concurrent lines never interleave.
Mutex g_sink_mu;
LogSink g_sink GUARDED_BY(g_sink_mu) = nullptr;

const char* level_name(LogLevel level) noexcept {
    switch (level) {
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarn: return "WARN";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF";
    }
    return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_log_sink(LogSink sink) noexcept {
    MutexLock lock(g_sink_mu);
    g_sink = sink;
}

void logf(LogLevel level, std::string_view tag, const char* fmt, ...) {
    if (level < log_level()) return;
    char message[1024];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(message, sizeof message, fmt, args);
    va_end(args);
    MutexLock lock(g_sink_mu);
    if (g_sink != nullptr) {
        g_sink(level, tag, message);
        return;
    }
    std::fprintf(stderr, "[%s] %.*s: %s\n", level_name(level), static_cast<int>(tag.size()),
                 tag.data(), message);
}

}  // namespace jaws::util
