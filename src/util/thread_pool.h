// Minimal work-stealing-free thread pool.
//
// The cluster facade (paper Fig. 7: one JAWS instance per database node) runs
// node engines in parallel, and some benches sweep parameters concurrently.
// This pool provides the standard submit/future interface with a fixed worker
// count; all synchronisation is internal and statically checked by Clang's
// thread-safety analysis (util/thread_annotations.h).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace jaws::util {

/// Fixed-size thread pool executing submitted tasks FIFO.
class ThreadPool {
  public:
    /// Spawn `workers` threads (defaults to hardware concurrency, min 1).
    explicit ThreadPool(std::size_t workers = 0);

    /// Drains outstanding tasks, then joins all workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Number of worker threads.
    std::size_t size() const noexcept { return threads_.size(); }

    /// Submit a callable; returns a future for its result.
    template <typename F, typename... Args>
    auto submit(F&& f, Args&&... args)
        -> std::future<std::invoke_result_t<F, Args...>> {
        using R = std::invoke_result_t<F, Args...>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            [fn = std::forward<F>(f),
             ... captured = std::forward<Args>(args)]() mutable {
                return std::invoke(std::move(fn), std::move(captured)...);
            });
        std::future<R> fut = task->get_future();
        {
            MutexLock lock(mutex_);
            queue_.emplace_back([task]() { (*task)(); });
        }
        cv_.notify_one();
        return fut;
    }

    /// Block until every task submitted so far has finished.
    void wait_idle() EXCLUDES(mutex_);

  private:
    void worker_loop() EXCLUDES(mutex_);

    std::vector<std::thread> threads_;
    Mutex mutex_;
    CondVar cv_;       ///< Signalled on submit and stop.
    CondVar idle_cv_;  ///< Signalled when the pool drains fully.
    std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
    std::size_t active_ GUARDED_BY(mutex_) = 0;
    bool stop_ GUARDED_BY(mutex_) = false;
};

}  // namespace jaws::util
