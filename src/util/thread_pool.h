// Minimal work-stealing-free thread pool.
//
// The cluster facade (paper Fig. 7: one JAWS instance per database node) runs
// node engines in parallel, and some benches sweep parameters concurrently.
// This pool provides the standard submit/future interface with a fixed worker
// count; all synchronisation is internal.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace jaws::util {

/// Fixed-size thread pool executing submitted tasks FIFO.
class ThreadPool {
  public:
    /// Spawn `workers` threads (defaults to hardware concurrency, min 1).
    explicit ThreadPool(std::size_t workers = 0);

    /// Drains outstanding tasks, then joins all workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Number of worker threads.
    std::size_t size() const noexcept { return threads_.size(); }

    /// Submit a callable; returns a future for its result.
    template <typename F, typename... Args>
    auto submit(F&& f, Args&&... args)
        -> std::future<std::invoke_result_t<F, Args...>> {
        using R = std::invoke_result_t<F, Args...>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            [fn = std::forward<F>(f),
             ... captured = std::forward<Args>(args)]() mutable {
                return std::invoke(std::move(fn), std::move(captured)...);
            });
        std::future<R> fut = task->get_future();
        {
            std::lock_guard lock(mutex_);
            queue_.emplace_back([task]() { (*task)(); });
        }
        cv_.notify_one();
        return fut;
    }

    /// Block until every task submitted so far has finished.
    void wait_idle();

  private:
    void worker_loop();

    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::condition_variable idle_cv_;
    std::size_t active_ = 0;
    bool stop_ = false;
};

}  // namespace jaws::util
