// Minimal work-stealing-free thread pool.
//
// The cluster facade (paper Fig. 7: one JAWS instance per database node) runs
// node engines in parallel, the engine dispatches sub-query evaluation onto a
// pool (core/engine.h), and some benches sweep parameters concurrently. This
// pool provides the standard submit/future interface with a fixed worker
// count; all synchronisation is internal and statically checked by Clang's
// thread-safety analysis (util/thread_annotations.h).
//
// Lifecycle contract: shutdown() (or destruction) drains every task accepted
// so far and joins the workers; a submit() that arrives after shutdown began
// is rejected deterministically with std::runtime_error rather than being
// queued onto workers that may already have exited (which would leave its
// future forever unready).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace jaws::util {

/// Fixed-size thread pool executing submitted tasks FIFO.
class ThreadPool {
  public:
    /// Spawn `workers` threads (defaults to hardware concurrency, min 1).
    explicit ThreadPool(std::size_t workers = 0);

    /// Drains outstanding tasks, then joins all workers (via shutdown()).
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Number of worker threads the pool was built with.
    std::size_t size() const noexcept { return workers_; }

    /// Submit a callable; returns a future for its result. Throws
    /// std::runtime_error if the pool has been shut down — tasks must never
    /// be queued behind workers that will not run them.
    template <typename F, typename... Args>
    auto submit(F&& f, Args&&... args)
        -> std::future<std::invoke_result_t<F, Args...>> {
        using R = std::invoke_result_t<F, Args...>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            [fn = std::forward<F>(f),
             ... captured = std::forward<Args>(args)]() mutable {
                return std::invoke(std::move(fn), std::move(captured)...);
            });
        std::future<R> fut = task->get_future();
        {
            MutexLock lock(mutex_);
            if (stop_)
                throw std::runtime_error("ThreadPool::submit: pool is shut down");
            queue_.emplace_back([task]() { (*task)(); });
        }
        cv_.notify_one();
        return fut;
    }

    /// Block until every task submitted so far has finished.
    void wait_idle() EXCLUDES(mutex_);

    /// Stop accepting tasks, finish everything already queued, join all
    /// workers. Idempotent: later calls (and the destructor) return once the
    /// first caller has drained the pool. After shutdown(), submit() throws.
    void shutdown() EXCLUDES(mutex_);

  private:
    void worker_loop() EXCLUDES(mutex_);

    std::size_t workers_ = 0;  ///< Fixed at construction.
    Mutex mutex_;
    CondVar cv_;       ///< Signalled on submit and stop.
    CondVar idle_cv_;  ///< Signalled when the pool drains fully.
    std::vector<std::thread> threads_ GUARDED_BY(mutex_);
    std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
    std::size_t active_ GUARDED_BY(mutex_) = 0;
    bool stop_ GUARDED_BY(mutex_) = false;
};

}  // namespace jaws::util
