// 3-D Morton (Z-order) encoding.
//
// The Turbulence database partitions each 1024^3 time step into 64^3-voxel
// atoms and lays the atoms out on disk in Morton order: interleaving the bits
// of the (x, y, z) atom coordinates yields a space-filling curve that keeps
// spatially adjacent atoms close on disk (paper Sec. III-A). This header
// provides branch-free encode/decode for up to 21 bits per axis (63-bit
// codes), plus helpers for iterating the Morton codes covering an axis-aligned
// box, which the query pre-processor uses to sort sub-queries.
#pragma once

#include <cstdint>
#include <vector>

namespace jaws::util {

/// Packed 3-D integer coordinate (atom or voxel coordinates).
struct Coord3 {
    std::uint32_t x = 0;
    std::uint32_t y = 0;
    std::uint32_t z = 0;

    friend bool operator==(const Coord3&, const Coord3&) = default;
};

/// Maximum number of bits per axis representable in a 64-bit Morton code.
inline constexpr unsigned kMortonBitsPerAxis = 21;

/// Spread the low 21 bits of `v` so that each input bit lands at 3x its
/// original position (bit i -> bit 3i). Building block of `morton_encode`.
std::uint64_t morton_spread(std::uint32_t v) noexcept;

/// Inverse of `morton_spread`: gather every third bit back into a dense word.
std::uint32_t morton_compact(std::uint64_t v) noexcept;

/// Interleave (x, y, z) into a Morton code. Bit layout (LSB first) is
/// x0 y0 z0 x1 y1 z1 ... — x occupies the least-significant lane, matching the
/// convention that the x axis varies fastest along the curve.
std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y, std::uint32_t z) noexcept;

/// Convenience overload of `morton_encode` for a packed coordinate.
std::uint64_t morton_encode(const Coord3& c) noexcept;

/// Recover the (x, y, z) coordinate from a Morton code.
Coord3 morton_decode(std::uint64_t code) noexcept;

/// All Morton codes of the atoms inside the closed box [lo, hi] (inclusive on
/// both ends, per axis), returned in ascending Morton order. Used to enumerate
/// the atoms touched by a spatial range query.
std::vector<std::uint64_t> morton_box_cover(const Coord3& lo, const Coord3& hi);

/// The 6-connected (face-adjacent) neighbours of the atom at `code` within the
/// cube [0, side)^3. Neighbours outside the cube are omitted. Used by the
/// storage layer to model interpolation-kernel spill into adjacent atoms.
std::vector<std::uint64_t> morton_face_neighbors(std::uint64_t code, std::uint32_t side);

}  // namespace jaws::util
