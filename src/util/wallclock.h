// The one sanctioned wall-clock read.
//
// Simulation, scheduling and accounting code must be bit-reproducible, so
// scripts/lint_determinism.py bans wall-clock reads inside
// src/{core,sched,storage,cache,field}. Real elapsed-time measurement is
// still needed by the benches (Table I's overhead column measures actual
// nanoseconds spent inside cache policies); this utility is the explicitly
// allowlisted source they inject (e.g. via BufferCache::set_tick_source).
#pragma once

#include <cstdint>

namespace jaws::util {

/// Monotonic wall-clock nanoseconds (arbitrary epoch). Not reproducible
/// across runs by construction — inject only into measurement sinks that
/// never feed back into scheduling decisions.
std::uint64_t wall_clock_ns();

}  // namespace jaws::util
