// Clang Thread Safety Analysis annotation macros.
//
// Wrappers over Clang's capability attributes (see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Under Clang with
// -Wthread-safety the compiler statically checks that every access to a
// GUARDED_BY member happens with the named capability held; under any other
// compiler the macros expand to nothing. The `werror` preset turns the
// diagnostics fatal, making lock discipline a build-time contract rather
// than a convention.
//
// Use together with util/mutex.h, which provides the annotated Mutex /
// MutexLock / CondVar types these attributes bind to.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define JAWS_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define JAWS_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

/// Marks a class as a capability (e.g. a mutex type). `x` names the
/// capability kind in diagnostics ("mutex", "role", ...).
#define CAPABILITY(x) JAWS_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define SCOPED_CAPABILITY JAWS_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member readable/writable only with capability `x` held.
#define GUARDED_BY(x) JAWS_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is protected by capability `x`.
#define PT_GUARDED_BY(x) JAWS_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Declares a required lock ordering between capabilities.
#define ACQUIRED_BEFORE(...) \
    JAWS_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
    JAWS_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Function requires the listed capabilities to be held on entry (and does
/// not release them).
#define REQUIRES(...) \
    JAWS_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
    JAWS_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function acquires the listed capabilities and holds them on return.
#define ACQUIRE(...) \
    JAWS_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
    JAWS_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// Function releases the listed capabilities (held on entry).
#define RELEASE(...) \
    JAWS_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
    JAWS_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
    JAWS_THREAD_ANNOTATION_ATTRIBUTE(release_generic_capability(__VA_ARGS__))

/// Function attempts acquisition; first argument is the success value.
#define TRY_ACQUIRE(...) \
    JAWS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
    JAWS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held
/// (deadlock prevention for non-reentrant locks).
#define EXCLUDES(...) JAWS_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the calling thread holds the capability.
#define ASSERT_CAPABILITY(x) JAWS_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
    JAWS_THREAD_ANNOTATION_ATTRIBUTE(assert_shared_capability(x))

/// Function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) JAWS_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disables analysis for one function (e.g. unavoidable
/// aliasing the analysis cannot see through). Use sparingly and justify.
#define NO_THREAD_SAFETY_ANALYSIS \
    JAWS_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
