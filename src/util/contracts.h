// Debug contracts: machine-checked invariants behind a build flag.
//
// The determinism lint and the semantic analyzer (scripts/jaws_analyzer.py)
// guard the *code shape* of the kernel contract; this header guards the
// *runtime state*. Core containers (EventQueue, SimResource, BufferCache,
// PrecedenceGraph, WorkloadManager) expose an `audit()` method that
// exhaustively re-derives their redundant state — heap order, channel
// accounting, byte conservation, graph acyclicity — and reports the first
// inconsistency through the contract handler. Audits are ordinary methods
// (tests call them in any build); the *automatic* invocation at state
// transitions is compiled only when the JAWS_AUDIT_BUILD CMake option is on,
// FoundationDB-style: the simulation preset pays for aggressive self-checks,
// the default build pays nothing.
//
//   JAWS_INVARIANT(cond, msg)  in audit builds: evaluate `cond`, report a
//                              contract violation when false. No-op (and
//                              `cond` unevaluated) otherwise.
//   JAWS_AUDIT(expr)           in audit builds: evaluate `expr` (typically
//                              `state.audit()`). No-op otherwise.
//
// Violations go through a process-wide handler so tests can assert that an
// audit *fires* without dying; the default handler prints the failing
// expression with its location and aborts.
#pragma once

#include <cstdint>

namespace jaws::util {

/// Callback invoked on a failed JAWS_INVARIANT. `expr` is the stringified
/// condition, `msg` the human explanation.
using ContractHandler = void (*)(const char* file, int line, const char* expr,
                                 const char* msg);

/// Install a violation handler (tests). nullptr restores the default
/// print-and-abort handler. Returns the previously installed handler.
ContractHandler set_contract_handler(ContractHandler handler) noexcept;

/// Number of contract violations reported so far (monotone; never reset).
/// Lets tests assert "this sequence audits clean" without a handler.
std::uint64_t contract_violations() noexcept;

/// Report a violation through the installed handler. Called by the macros
/// and by audit() methods; callable directly from always-compiled code.
void contract_violation(const char* file, int line, const char* expr,
                        const char* msg);

namespace detail {
/// Used by JAWS_INVARIANT so `cond` is evaluated exactly once.
inline bool contract_check(bool ok, const char* file, int line,
                           const char* expr, const char* msg) {
    if (!ok) contract_violation(file, line, expr, msg);
    return ok;
}
}  // namespace detail

}  // namespace jaws::util

#if defined(JAWS_AUDIT_BUILD) && JAWS_AUDIT_BUILD
#define JAWS_INVARIANT(cond, msg) \
    (void)::jaws::util::detail::contract_check((cond), __FILE__, __LINE__, #cond, (msg))
#define JAWS_AUDIT(expr) (void)(expr)
#else
#define JAWS_INVARIANT(cond, msg) ((void)0)
#define JAWS_AUDIT(expr) ((void)0)
#endif

/// Always-on variant for audit() bodies: audit() is callable in every build
/// (tests invoke it directly), so its checks must not compile away.
#define JAWS_AUDIT_CHECK(cond, msg) \
    (void)::jaws::util::detail::contract_check((cond), __FILE__, __LINE__, #cond, (msg))
