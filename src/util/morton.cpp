#include "util/morton.h"

#include <algorithm>
#include <cassert>

namespace jaws::util {

std::uint64_t morton_spread(std::uint32_t v) noexcept {
    // Classic parallel-prefix bit spreading for 21-bit inputs.
    std::uint64_t x = v & 0x1fffff;  // keep 21 bits
    x = (x | (x << 32)) & 0x1f00000000ffffULL;
    x = (x | (x << 16)) & 0x1f0000ff0000ffULL;
    x = (x | (x << 8)) & 0x100f00f00f00f00fULL;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3ULL;
    x = (x | (x << 2)) & 0x1249249249249249ULL;
    return x;
}

std::uint32_t morton_compact(std::uint64_t v) noexcept {
    std::uint64_t x = v & 0x1249249249249249ULL;
    x = (x ^ (x >> 2)) & 0x10c30c30c30c30c3ULL;
    x = (x ^ (x >> 4)) & 0x100f00f00f00f00fULL;
    x = (x ^ (x >> 8)) & 0x1f0000ff0000ffULL;
    x = (x ^ (x >> 16)) & 0x1f00000000ffffULL;
    x = (x ^ (x >> 32)) & 0x1fffffULL;
    return static_cast<std::uint32_t>(x);
}

std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y, std::uint32_t z) noexcept {
    return morton_spread(x) | (morton_spread(y) << 1) | (morton_spread(z) << 2);
}

std::uint64_t morton_encode(const Coord3& c) noexcept { return morton_encode(c.x, c.y, c.z); }

Coord3 morton_decode(std::uint64_t code) noexcept {
    return Coord3{morton_compact(code), morton_compact(code >> 1), morton_compact(code >> 2)};
}

std::vector<std::uint64_t> morton_box_cover(const Coord3& lo, const Coord3& hi) {
    std::vector<std::uint64_t> out;
    if (lo.x > hi.x || lo.y > hi.y || lo.z > hi.z) return out;
    out.reserve(static_cast<std::size_t>(hi.x - lo.x + 1) * (hi.y - lo.y + 1) *
                (hi.z - lo.z + 1));
    for (std::uint32_t z = lo.z; z <= hi.z; ++z)
        for (std::uint32_t y = lo.y; y <= hi.y; ++y)
            for (std::uint32_t x = lo.x; x <= hi.x; ++x)
                out.push_back(morton_encode(x, y, z));
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::uint64_t> morton_face_neighbors(std::uint64_t code, std::uint32_t side) {
    const Coord3 c = morton_decode(code);
    std::vector<std::uint64_t> out;
    out.reserve(6);
    const auto push = [&](std::int64_t x, std::int64_t y, std::int64_t z) {
        if (x < 0 || y < 0 || z < 0) return;
        if (x >= side || y >= side || z >= side) return;
        out.push_back(morton_encode(static_cast<std::uint32_t>(x),
                                    static_cast<std::uint32_t>(y),
                                    static_cast<std::uint32_t>(z)));
    };
    push(static_cast<std::int64_t>(c.x) - 1, c.y, c.z);
    push(static_cast<std::int64_t>(c.x) + 1, c.y, c.z);
    push(c.x, static_cast<std::int64_t>(c.y) - 1, c.z);
    push(c.x, static_cast<std::int64_t>(c.y) + 1, c.z);
    push(c.x, c.y, static_cast<std::int64_t>(c.z) - 1);
    push(c.x, c.y, static_cast<std::int64_t>(c.z) + 1);
    return out;
}

}  // namespace jaws::util
