#include "util/thread_pool.h"

#include <algorithm>

namespace jaws::util {

ThreadPool::ThreadPool(std::size_t workers) {
    if (workers == 0) workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    workers_ = workers;
    // Workers entering worker_loop() block on the mutex until spawning is
    // done, so the vector is never mutated concurrently with itself.
    MutexLock lock(mutex_);
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mutex_);
            while (!stop_ && queue_.empty()) cv_.wait(mutex_);
            if (queue_.empty()) return;  // stop requested and fully drained
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        task();
        {
            MutexLock lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
        }
    }
}

void ThreadPool::wait_idle() {
    MutexLock lock(mutex_);
    while (!queue_.empty() || active_ != 0) idle_cv_.wait(mutex_);
}

void ThreadPool::shutdown() {
    // The first caller claims the worker threads and joins them; every later
    // caller (including the destructor after an explicit shutdown) finds the
    // vector empty and waits for the drain via wait_idle() below. Claiming
    // under the lock and joining outside it avoids deadlocking against
    // workers that need the mutex to observe stop_.
    std::vector<std::thread> claimed;
    {
        MutexLock lock(mutex_);
        stop_ = true;
        claimed.swap(threads_);
    }
    cv_.notify_all();
    for (std::thread& t : claimed) t.join();
    if (claimed.empty()) wait_idle();
}

}  // namespace jaws::util
