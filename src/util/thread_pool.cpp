#include "util/thread_pool.h"

#include <algorithm>

namespace jaws::util {

ThreadPool::ThreadPool(std::size_t workers) {
    if (workers == 0) workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        MutexLock lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mutex_);
            while (!stop_ && queue_.empty()) cv_.wait(mutex_);
            if (queue_.empty()) return;  // stop requested and fully drained
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        task();
        {
            MutexLock lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
        }
    }
}

void ThreadPool::wait_idle() {
    MutexLock lock(mutex_);
    while (!queue_.empty() || active_ != 0) idle_cv_.wait(mutex_);
}

}  // namespace jaws::util
