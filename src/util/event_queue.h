// Discrete-event simulation kernel.
//
// The engine used to advance one implicit timeline (`clock_.advance(io)` then
// `clock_.advance(compute)`), which structurally serialises I/O and compute
// and can never reproduce the paper's production behaviour: a SQL Server node
// over a RAID-5 stripe set where atom reads proceed concurrently with batch
// evaluation (Sec. III, Fig. 7). This header extracts the two pieces a real
// simulator core needs, following LifeRaft's and Dell'Amico's job-scheduling
// simulators (PAPERS.md):
//
//   * EventQueue — a deterministic time-ordered event queue. Events fire in
//     (time, priority, source, insertion order) order: ties at the same
//     virtual instant are broken first by an explicit priority class (so e.g.
//     a node death always precedes a same-instant arrival), then by the
//     scheduling *source* (the cluster node id when N nodes share one queue —
//     without this, cross-node ties would depend on construction order), and
//     finally FIFO by insertion, which makes every run bit-reproducible.
//   * SimResource — a modelled server with a configurable number of parallel
//     service channels and a priority waiting queue (a disk with `io_depth`
//     RAID channels, a CPU pool with `compute_workers` workers). Jobs marked
//     preemptible (speculative prefetch reads) can be cancelled mid-service
//     when a non-preemptible job (a demand read) needs the channel.
//
// All time is virtual (util::SimTime); running the kernel never sleeps.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "util/sim_time.h"

namespace jaws::util {

/// Perturbation of the same-tick tie-break, for the schedule-perturbation
/// determinism checker (tests/perturbation_test.cpp). The documented
/// ordering contract fixes (time, priority, source) — insertion order is
/// only the *arbitrary-but-stable* last resort for commutative event
/// classes. A correct kernel client therefore produces bit-identical
/// reports under any permutation of that last component for commutative
/// classes, under any constant offset of the raw event ids, and under any
/// tombstone entries disturbing the heap's internal layout. The checker
/// runs workloads under several such perturbations and asserts digest
/// equality; a client that secretly depends on insertion order, raw id
/// values or heap layout is flushed out. Service *completions* are
/// order-bearing (RunReport::sample_digest folds in completion-event
/// order) and must not be listed in `permute_priorities`.
struct TiePerturbation {
    /// XOR-ed into the insertion rank of permuted classes (a bijection, so
    /// same-tick ties are permuted, never collided).
    std::uint64_t salt = 0;
    /// Bit p set => permute the insertion-order tie-break of priority class
    /// p (engine classes: kPriArrival, kPriVisibility, kPriDispatch are
    /// commutative; kPriService completions are not).
    std::uint64_t permute_priorities = 0;
    /// Constant offset applied to every issued EventId.
    std::uint64_t id_offset = 0;
    /// Every Nth schedule also pushes a handler-less tombstone entry,
    /// perturbing heap layout without firing anything (0 = off).
    std::uint32_t tombstone_stride = 0;
};

/// Deterministic time-ordered event queue with stable FIFO tie-breaking.
class EventQueue {
  public:
    using EventId = std::uint64_t;
    using Handler = std::function<void()>;

    /// Current virtual time (the timestamp of the last event run).
    SimTime now() const noexcept { return now_; }

    /// Set the clock without running events (start of a run). Only valid
    /// while no events are pending.
    void reset_to(SimTime t);

    /// Install a tie-break perturbation (see TiePerturbation). Only valid
    /// on a fresh queue — before the first schedule() — so every event of
    /// the run is perturbed consistently.
    void set_perturbation(const TiePerturbation& p);

    /// Schedule `fn` at virtual time `at` (clamped to now(): the kernel
    /// cannot schedule into the past). Events at equal times fire in
    /// ascending `priority`, then ascending `source`, then in insertion
    /// order. `source` identifies the scheduling domain — the cluster node id
    /// when several nodes share one queue — so same-tick ties across nodes
    /// break deterministically by node rather than by construction order.
    /// Returns an id usable with cancel().
    EventId schedule(SimTime at, int priority, std::uint32_t source, Handler fn);

    /// Single-domain convenience: schedule with source 0.
    EventId schedule(SimTime at, int priority, Handler fn) {
        return schedule(at, priority, 0, std::move(fn));
    }

    /// Cancel a pending event. Returns false if it already ran or was
    /// cancelled. O(1); the heap entry is lazily discarded.
    bool cancel(EventId id);

    /// Whether `id` names a pending (scheduled, not yet run or cancelled)
    /// event. Audits use this to prove completion events are still live.
    bool pending(EventId id) const { return handlers_.find(id) != handlers_.end(); }

    /// Whether any non-cancelled event is pending.
    bool empty() const noexcept { return handlers_.empty(); }

    /// Number of pending (non-cancelled) events.
    std::size_t pending() const noexcept { return handlers_.size(); }

    /// Number of pending events scheduled with `source`. The cluster kernel
    /// uses this to decide when a node is genuinely idle (nothing of its own
    /// left to fire) versus merely waiting on another node's events.
    std::size_t pending_for(std::uint32_t source) const noexcept {
        return source < pending_by_source_.size() ? pending_by_source_[source] : 0;
    }

    /// Source of the event most recently fired by run_one(). Undefined
    /// before the first event runs.
    std::uint32_t last_source() const noexcept { return last_source_; }

    /// Timestamp of the next pending event. Requires !empty().
    SimTime next_time() const;

    /// Advance the clock to the earliest pending event and run its handler.
    /// Returns false (and leaves the clock alone) when no event is pending.
    bool run_one();

    /// Exhaustive self-check (audit builds call this automatically at
    /// transitions; tests call it directly): heap order, monotone timestamps
    /// (no live entry behind the clock), exactly one heap entry per live
    /// handler id, no duplicate ids, id counter ahead of every entry.
    /// Reports through util::contract_violation; returns true when clean.
    bool audit() const;

  private:
    struct Entry {
        SimTime at;
        int priority;
        std::uint32_t source;
        EventId seq;
        /// Insertion-order tie-break rank: seq, XOR-salted for priority
        /// classes permuted by the installed TiePerturbation.
        std::uint64_t tie;

        bool operator>(const Entry& o) const noexcept {
            if (at != o.at) return at > o.at;
            if (priority != o.priority) return priority > o.priority;
            if (source != o.source) return source > o.source;
            return tie > o.tie;
        }
    };

    struct Record {
        Handler fn;
        std::uint32_t source;
    };

    void drop_cancelled();
    void note_source_gone(std::uint32_t source);
    std::uint64_t tie_rank(EventId id, int priority) const noexcept;

    // A min-heap kept by std::push_heap/pop_heap over a plain vector (rather
    // than std::priority_queue) so audit() can scan the pending entries.
    std::vector<Entry> heap_;
    std::unordered_map<EventId, Record> handlers_;
    // Live event count per source, indexed by source id (sources are small
    // dense node ids); grown on demand.
    std::vector<std::size_t> pending_by_source_;
    std::uint32_t last_source_ = 0;
    EventId next_id_ = 0;
    SimTime now_ = SimTime::zero();
    TiePerturbation perturb_;
    std::uint64_t schedule_count_ = 0;  ///< Drives the tombstone stride.
    // Rate limiter for the automatic audits of JAWS_AUDIT_BUILD: a full
    // audit is O(pending), so auditing every transition would make large
    // audit-build runs quadratic. Unused in normal builds.
    std::uint64_t audit_tick_ = 0;
};

/// A modelled hardware resource: `channels` parallel service channels in
/// front of a priority waiting queue. Service durations are decided when
/// service *starts* (a disk read's cost depends on where that channel's head
/// is by then), and completion fires as a kernel event. Busy-channel time is
/// integrated continuously so callers can report utilisation.
class SimResource {
  public:
    /// Identifies a submitted job for cancel(); 0 is never a valid id.
    using JobId = std::uint64_t;

    /// One request. `on_start` runs when a channel begins service and returns
    /// the service duration; `on_complete` runs when service finishes.
    /// `on_abort` runs instead of `on_complete` when an *in-service* job is
    /// cancelled — preempted mid-service (preemptible jobs only) or
    /// explicitly cancel()led (any job) — with the service time *not*
    /// rendered as argument. A job cancelled while still waiting is silently
    /// discarded: its service never started, so there is nothing to unwind.
    struct Job {
        int priority = 0;         ///< Waiting-queue class; lower serves first.
        bool preemptible = false; ///< May be cancelled for a non-preemptible job.
        std::function<SimTime(std::size_t channel)> on_start;
        std::function<void(std::size_t channel)> on_complete;
        std::function<void(std::size_t channel, SimTime remaining)> on_abort;
    };

    /// `completion_priority` is the EventQueue priority class used for
    /// service-completion events; `source` tags those events' scheduling
    /// domain (the owning cluster node id on a shared queue).
    SimResource(EventQueue& events, std::size_t channels, int completion_priority,
                std::uint32_t source = 0);

    /// Scheduling domain this resource's completion events are tagged with.
    std::uint32_t source() const noexcept { return source_; }

    /// Submit a request: starts service immediately on a free channel,
    /// preempts a running preemptible job if the new job is non-preemptible
    /// and no channel is free, and queues otherwise. Returns an id usable
    /// with cancel().
    JobId submit(Job job);

    /// Cancel a submitted job: a waiting job is removed from the queue
    /// (nothing started, no callbacks); an in-service job has its completion
    /// event cancelled, its on_abort run with the unrendered remainder, and
    /// its channel immediately backfilled from the waiting queue — the
    /// straggler-cancellation path of hedged reads. Returns false when the
    /// job already completed, aborted, or was cancelled (safe to race
    /// against completion at the same virtual instant: first resolution
    /// wins, the loser is a no-op).
    bool cancel(JobId id);

    std::size_t channels() const noexcept { return channels_.size(); }
    std::size_t busy_channels() const noexcept { return busy_; }
    /// Most channels ever simultaneously in service. This is the modeled
    /// concurrency a run actually achieved — the ceiling on any real-thread
    /// speedup the engine's evaluation pool can extract from it.
    std::size_t peak_busy_channels() const noexcept { return peak_busy_; }
    std::size_t queued() const noexcept;
    bool has_free_channel() const noexcept { return busy_ < channels_.size(); }
    bool idle() const noexcept { return busy_ == 0 && queued() == 0; }

    /// Integral of busy channels over virtual time (channel-time), for
    /// utilisation reporting.
    SimTime busy_channel_time() const;

    /// Called immediately *before* every busy-channel-count change, while the
    /// old count is still observable (the engine uses this to integrate
    /// cross-resource overlap).
    void set_observer(std::function<void()> observer) { observer_ = std::move(observer); }

    /// Called whenever a channel goes idle with an empty waiting queue (the
    /// engine uses this to issue background prefetch reads).
    void set_idle_hook(std::function<void()> hook) { idle_hook_ = std::move(hook); }

    /// Exhaustive channel-accounting self-check: busy_ matches the per-channel
    /// flags, every busy channel's completion event is still pending and ends
    /// at or after now, the waiting map holds no empty class queues, and the
    /// busy-time integral never runs ahead of wall (virtual) time. Reports
    /// through util::contract_violation; returns true when clean.
    bool audit() const;

  private:
    struct Channel {
        bool busy = false;
        bool preemptible = false;
        SimTime started;
        SimTime duration;
        EventQueue::EventId completion = 0;
        JobId id = 0;
        Job job;
    };

    struct Waiting {
        JobId id = 0;
        Job job;
    };

    void start_on(std::size_t channel, JobId id, Job&& job);
    void finish(std::size_t channel);
    /// Pull the next waiting job (if any) onto the now-free `channel`.
    void backfill(std::size_t channel);
    void note_busy_change(std::size_t delta_sign);

    EventQueue& events_;
    int completion_priority_;
    std::uint32_t source_;
    std::vector<Channel> channels_;
    std::map<int, std::deque<Waiting>> waiting_;
    JobId next_job_id_ = 1;
    std::size_t busy_ = 0;
    std::size_t peak_busy_ = 0;
    // Busy-channel integral: accumulated up to last_change_, plus busy_ *
    // (now - last_change_) on read.
    mutable SimTime busy_integral_;
    SimTime last_change_;
    std::function<void()> observer_;
    std::function<void()> idle_hook_;
};

}  // namespace jaws::util
