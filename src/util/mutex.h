// Annotated synchronisation primitives.
//
// Thin wrappers over std::mutex / std::condition_variable carrying the Clang
// thread-safety attributes from util/thread_annotations.h, so that
// -Wthread-safety can statically verify lock discipline on every structure
// that uses them. std::mutex itself is not annotated as a capability by
// libstdc++, hence the wrappers; they add no state and no overhead beyond
// the underlying primitives.
//
// Idiom:
//
//   class Account {
//       util::Mutex mu_;
//       std::int64_t balance_ GUARDED_BY(mu_) = 0;
//     public:
//       void deposit(std::int64_t v) { util::MutexLock lock(mu_); balance_ += v; }
//   };
//
// Condition waits use the predicate-free CondVar::wait(Mutex&) in a while
// loop, so the predicate itself is evaluated in code the analysis can see
// holds the mutex:
//
//   util::MutexLock lock(mu_);
//   while (queue_.empty()) cv_.wait(mu_);
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace jaws::util {

class CondVar;

/// A std::mutex annotated as a thread-safety capability.
class CAPABILITY("mutex") Mutex {
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() ACQUIRE() { mu_.lock(); }
    void unlock() RELEASE() { mu_.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    friend class CondVar;
    std::mutex mu_;
};

/// RAII lock over Mutex (annotated std::lock_guard equivalent).
class SCOPED_CAPABILITY MutexLock {
  public:
    explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~MutexLock() RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

  private:
    Mutex& mu_;
};

/// Condition variable usable with Mutex.
class CondVar {
  public:
    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

    /// Atomically releases `mu`, blocks, and reacquires `mu` before
    /// returning. The caller must hold `mu` (checked by the analysis);
    /// callers loop on their predicate around this call.
    void wait(Mutex& mu) REQUIRES(mu) {
        std::unique_lock<std::mutex> inner(mu.mu_, std::adopt_lock);
        cv_.wait(inner);
        inner.release();  // still locked: ownership returns to the caller
    }

  private:
    std::condition_variable cv_;
};

}  // namespace jaws::util
