// Deterministic pseudo-random number generation.
//
// Every stochastic component in this repository (the synthetic turbulence
// field, the workload generator, particle seeding) draws from this generator
// so that a fixed seed reproduces a bit-identical experiment. We use
// xoshiro256** seeded through splitmix64 — fast, high quality, and trivially
// embeddable without the weight of <random> engines — plus the handful of
// distributions the workload model needs (uniform, exponential, log-normal,
// Zipf, Poisson).
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace jaws::util {

/// splitmix64 step: used to expand a single 64-bit seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies the bare minimum of UniformRandomBitGenerator
/// so it can also be handed to standard algorithms when needed.
class Rng {
  public:
    using result_type = std::uint64_t;

    /// Construct from a 64-bit seed; splitmix64 whitens it into 256-bit state.
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept { reseed(seed); }

    /// Reset the stream to the one produced by `seed`.
    void reseed(std::uint64_t seed) noexcept {
        for (auto& word : state_) word = splitmix64(seed);
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~0ULL; }

    /// Next raw 64-bit draw.
    result_type operator()() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1).
    double uniform() noexcept { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

    /// Uniform integer in [0, n). Unbiased via rejection (Lemire-style is
    /// overkill here; modulo bias is negligible for our n but we reject anyway).
    std::uint64_t uniform_u64(std::uint64_t n) noexcept {
        assert(n > 0);
        const std::uint64_t limit = max() - max() % n;
        std::uint64_t draw;
        do { draw = (*this)(); } while (draw >= limit);
        return draw % n;
    }

    /// Uniform integer in the closed range [lo, hi].
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
        assert(lo <= hi);
        return lo + static_cast<std::int64_t>(
                        uniform_u64(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /// Bernoulli trial with success probability `p`.
    bool bernoulli(double p) noexcept { return uniform() < p; }

    /// Exponential variate with the given mean (inter-arrival gaps).
    double exponential(double mean) noexcept {
        return -mean * std::log1p(-uniform());
    }

    /// Standard normal via Box–Muller (one value per call; simple and stateless).
    double normal(double mean = 0.0, double stddev = 1.0) noexcept {
        const double u1 = 1.0 - uniform();  // avoid log(0)
        const double u2 = uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
    }

    /// Log-normal variate parameterised by the underlying normal's mu/sigma.
    /// Job durations in the Turbulence workload are heavy-tailed (Fig. 8);
    /// a log-normal reproduces the reported histogram shape well.
    double lognormal(double mu, double sigma) noexcept {
        return std::exp(normal(mu, sigma));
    }

    /// Zipf-distributed rank in [0, n) with exponent `s` (inverse-CDF on the
    /// generalized harmonic weights, computed by linear scan; our n is small).
    std::uint64_t zipf(std::uint64_t n, double s) noexcept {
        assert(n > 0);
        double total = 0.0;
        for (std::uint64_t k = 1; k <= n; ++k) total += std::pow(static_cast<double>(k), -s);
        double target = uniform() * total;
        for (std::uint64_t k = 1; k <= n; ++k) {
            target -= std::pow(static_cast<double>(k), -s);
            if (target <= 0.0) return k - 1;
        }
        return n - 1;
    }

    /// Poisson variate (Knuth's method; fine for small means).
    std::uint64_t poisson(double mean) noexcept {
        const double limit = std::exp(-mean);
        double p = 1.0;
        std::uint64_t k = 0;
        do {
            ++k;
            p *= uniform();
        } while (p > limit);
        return k - 1;
    }

    /// Fork a statistically independent child stream (for per-job randomness).
    Rng split() noexcept { return Rng((*this)() ^ 0xA5A5A5A5DEADBEEFULL); }

  private:
    static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
};

}  // namespace jaws::util
