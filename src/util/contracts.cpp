#include "util/contracts.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace jaws::util {

namespace {

void default_handler(const char* file, int line, const char* expr, const char* msg) {
    std::fprintf(stderr, "JAWS contract violation at %s:%d\n  check: %s\n  %s\n",
                 file, line, expr, msg);
    std::abort();
}

std::atomic<ContractHandler> g_handler{&default_handler};
std::atomic<std::uint64_t> g_violations{0};

}  // namespace

ContractHandler set_contract_handler(ContractHandler handler) noexcept {
    return g_handler.exchange(handler != nullptr ? handler : &default_handler);
}

std::uint64_t contract_violations() noexcept {
    return g_violations.load(std::memory_order_relaxed);
}

void contract_violation(const char* file, int line, const char* expr,
                        const char* msg) {
    g_violations.fetch_add(1, std::memory_order_relaxed);
    g_handler.load()(file, line, expr, msg);
}

}  // namespace jaws::util
