// Database node executor.
//
// In the Turbulence cluster each node evaluates "sub-queries": lists of
// positions that all fall within one atom, executed in a single pass over
// that atom's data (paper Sec. III-B). This executor performs that evaluation:
// it charges the per-position computation cost T_m on the virtual clock and —
// when the atom's voxel payload is materialised — actually interpolates
// velocity/pressure at each position, so example programs obtain real values.
#pragma once

#include <cstdint>
#include <vector>

#include "field/grid.h"
#include "field/interpolation.h"
#include "storage/atom.h"
#include "util/sim_time.h"

namespace jaws::storage {

/// What a sub-query computes at each position.
enum class ComputeKind : std::uint8_t {
    kVelocity,  ///< Interpolated velocity vector.
    kPressure,  ///< Interpolated pressure.
    kFlowStats, ///< Aggregate statistics of velocity magnitude over positions.
};

/// Virtual-time cost constants of computation (T_m in Eq. 1).
struct CostModel {
    double t_m_us = 40.0;  ///< Virtual microseconds of compute per position.
};

/// One unit of executable work: positions of a single query falling inside a
/// single atom. `positions` may be empty for descriptor-only workloads, in
/// which case `position_count` carries the cardinality.
struct SubQueryExec {
    AtomId atom;
    std::uint64_t position_count = 0;
    std::vector<field::Vec3> positions;  ///< Optional explicit positions.
    field::InterpOrder order = field::InterpOrder::kLag4;
    ComputeKind kind = ComputeKind::kVelocity;

    /// Effective number of positions (explicit list wins when present).
    std::uint64_t count() const noexcept {
        return positions.empty() ? position_count : positions.size();
    }
};

/// Result of executing one sub-query.
struct ExecOutcome {
    util::SimTime compute_cost;                ///< Virtual compute time charged.
    std::vector<field::FlowSample> samples;    ///< Per-position results (if data given).
};

/// Stateless executor bound to a grid geometry and cost model.
///
/// `batched` selects the evaluation kernel for materialised sub-queries:
/// the batched SIMD-friendly field::BatchInterpolator (default) or the
/// historical per-position scalar loop. The two are bit-identical — the
/// knob exists for A/B benchmarking and the equivalence suites, not because
/// results differ (core::EvalSpec::batch plumbs it through the engine).
class DatabaseNode {
  public:
    DatabaseNode(const field::GridSpec& grid, const CostModel& cost, bool batched = true)
        : grid_(grid), cost_(cost), batched_(batched) {}

    /// Execute `work` against `data` (the atom's voxel payload, or null for
    /// descriptor-only execution). Cost is charged either way; samples are
    /// produced only when both data and explicit positions are present.
    ExecOutcome execute(const SubQueryExec& work, const field::VoxelBlock* data) const;

    /// Virtual compute time `work` will be charged (T_m per position, Eq. 1),
    /// without evaluating anything. The engine charges this on SimResource as
    /// the authoritative service duration while the real interpolation runs
    /// on the evaluation pool; execute() charges exactly the same amount, so
    /// the virtual trace is identical whether evaluation is inline or pooled.
    util::SimTime modeled_cost(const SubQueryExec& work) const noexcept;

    /// The cost model in effect.
    const CostModel& cost_model() const noexcept { return cost_; }

    /// Whether materialised sub-queries run through the batched kernel.
    bool batched() const noexcept { return batched_; }

  private:
    field::GridSpec grid_;
    CostModel cost_;
    bool batched_;
};

}  // namespace jaws::storage
