#include "storage/bptree.h"

#include <algorithm>
#include <cassert>

namespace jaws::storage {

struct BPlusTree::Node {
    bool leaf;
    Internal* parent = nullptr;

    explicit Node(bool is_leaf) : leaf(is_leaf) {}
};

struct BPlusTree::Leaf : BPlusTree::Node {
    Leaf() : Node(true) {}

    std::vector<util::AtomKey> keys;
    std::vector<DiskExtent> values;
    Leaf* next = nullptr;
};

struct BPlusTree::Internal : BPlusTree::Node {
    Internal() : Node(false) {}

    // children.size() == keys.size() + 1; subtree children[i] holds keys
    // < keys[i]; children[i+1] holds keys >= keys[i].
    std::vector<util::AtomKey> keys;
    std::vector<Node*> children;
};

BPlusTree::BPlusTree() {
    auto* leaf = new Leaf();
    root_ = leaf;
    first_leaf_ = leaf;
    height_ = 1;
}

BPlusTree::~BPlusTree() { destroy(); }

BPlusTree::BPlusTree(BPlusTree&& other) noexcept
    : root_(other.root_),
      first_leaf_(other.first_leaf_),
      size_(other.size_),
      height_(other.height_) {
    other.root_ = nullptr;
    other.first_leaf_ = nullptr;
    other.size_ = 0;
    other.height_ = 0;
}

BPlusTree& BPlusTree::operator=(BPlusTree&& other) noexcept {
    if (this != &other) {
        destroy();
        root_ = other.root_;
        first_leaf_ = other.first_leaf_;
        size_ = other.size_;
        height_ = other.height_;
        other.root_ = nullptr;
        other.first_leaf_ = nullptr;
        other.size_ = 0;
        other.height_ = 0;
    }
    return *this;
}

void BPlusTree::destroy() {
    // Iterative post-order delete (nested node types are private, so the
    // traversal lives here rather than in a free helper).
    std::vector<Node*> stack;
    if (root_ != nullptr) stack.push_back(root_);
    while (!stack.empty()) {
        Node* node = stack.back();
        stack.pop_back();
        if (!node->leaf) {
            auto* internal = static_cast<Internal*>(node);
            stack.insert(stack.end(), internal->children.begin(), internal->children.end());
            delete internal;
        } else {
            delete static_cast<Leaf*>(node);
        }
    }
    root_ = nullptr;
    first_leaf_ = nullptr;
    size_ = 0;
    height_ = 0;
}

BPlusTree::Leaf* BPlusTree::find_leaf(util::AtomKey key) const {
    Node* node = root_;
    while (!node->leaf) {
        auto* internal = static_cast<Internal*>(node);
        const auto it =
            std::upper_bound(internal->keys.begin(), internal->keys.end(), key);
        node = internal->children[static_cast<std::size_t>(it - internal->keys.begin())];
    }
    return static_cast<Leaf*>(node);
}

void BPlusTree::insert(util::AtomKey key, const DiskExtent& value) {
    Leaf* leaf = find_leaf(key);
    const auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
    const auto idx = static_cast<std::size_t>(it - leaf->keys.begin());
    if (it != leaf->keys.end() && *it == key) {
        leaf->values[idx] = value;  // overwrite
        return;
    }
    leaf->keys.insert(it, key);
    leaf->values.insert(leaf->values.begin() + static_cast<std::ptrdiff_t>(idx), value);
    ++size_;

    if (leaf->keys.size() <= kLeafCapacity) return;

    // Split the leaf in half; the right sibling's first key separates them.
    auto* right = new Leaf();
    const std::size_t half = leaf->keys.size() / 2;
    right->keys.assign(leaf->keys.begin() + static_cast<std::ptrdiff_t>(half),
                       leaf->keys.end());
    right->values.assign(leaf->values.begin() + static_cast<std::ptrdiff_t>(half),
                         leaf->values.end());
    leaf->keys.resize(half);
    leaf->values.resize(half);
    right->next = leaf->next;
    leaf->next = right;
    insert_into_parent(leaf, right->keys.front(), right);
}

void BPlusTree::insert_into_parent(Node* left, util::AtomKey sep, Node* right) {
    if (left->parent == nullptr) {
        auto* new_root = new Internal();
        new_root->keys.push_back(sep);
        new_root->children = {left, right};
        left->parent = new_root;
        right->parent = new_root;
        root_ = new_root;
        ++height_;
        return;
    }
    Internal* parent = left->parent;
    const auto it = std::upper_bound(parent->keys.begin(), parent->keys.end(), sep);
    const auto idx = static_cast<std::size_t>(it - parent->keys.begin());
    parent->keys.insert(it, sep);
    parent->children.insert(parent->children.begin() + static_cast<std::ptrdiff_t>(idx) + 1,
                            right);
    right->parent = parent;

    if (parent->children.size() <= kFanout) return;

    // Split the internal node; the median separator moves up.
    auto* sibling = new Internal();
    const std::size_t mid = parent->keys.size() / 2;
    const util::AtomKey up_key = parent->keys[mid];
    sibling->keys.assign(parent->keys.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
                         parent->keys.end());
    sibling->children.assign(parent->children.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
                             parent->children.end());
    for (auto* child : sibling->children) child->parent = sibling;
    parent->keys.resize(mid);
    parent->children.resize(mid + 1);
    insert_into_parent(parent, up_key, sibling);
}

std::optional<DiskExtent> BPlusTree::find(util::AtomKey key) const {
    const Leaf* leaf = find_leaf(key);
    const auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
    if (it == leaf->keys.end() || *it != key) return std::nullopt;
    return leaf->values[static_cast<std::size_t>(it - leaf->keys.begin())];
}

void BPlusTree::scan(util::AtomKey lo, util::AtomKey hi,
                     const std::function<bool(util::AtomKey, const DiskExtent&)>& visit) const {
    const Leaf* leaf = find_leaf(lo);
    while (leaf != nullptr) {
        for (std::size_t i = 0; i < leaf->keys.size(); ++i) {
            const util::AtomKey k = leaf->keys[i];
            if (k < lo) continue;
            if (k > hi) return;
            if (!visit(k, leaf->values[i])) return;
        }
        leaf = leaf->next;
    }
}

void BPlusTree::bulk_load(const std::vector<std::pair<util::AtomKey, DiskExtent>>& records) {
    assert(std::is_sorted(records.begin(), records.end(),
                          [](const auto& a, const auto& b) { return a.first < b.first; }));
    destroy();
    if (records.empty()) {
        auto* leaf = new Leaf();
        root_ = leaf;
        first_leaf_ = leaf;
        height_ = 1;
        return;
    }

    // Pack leaves at ~3/4 occupancy so subsequent inserts don't split at once.
    const std::size_t per_leaf = std::max<std::size_t>(1, kLeafCapacity * 3 / 4);
    std::vector<Node*> level;
    std::vector<util::AtomKey> level_min;  // smallest key under each node
    Leaf* prev = nullptr;
    for (std::size_t i = 0; i < records.size(); i += per_leaf) {
        auto* leaf = new Leaf();
        const std::size_t end = std::min(records.size(), i + per_leaf);
        for (std::size_t j = i; j < end; ++j) {
            leaf->keys.push_back(records[j].first);
            leaf->values.push_back(records[j].second);
        }
        if (prev != nullptr)
            prev->next = leaf;
        else
            first_leaf_ = leaf;
        prev = leaf;
        level.push_back(leaf);
        level_min.push_back(leaf->keys.front());
    }
    size_ = records.size();
    height_ = 1;

    const std::size_t per_internal = std::max<std::size_t>(2, kFanout * 3 / 4);
    while (level.size() > 1) {
        std::vector<Node*> next_level;
        std::vector<util::AtomKey> next_min;
        for (std::size_t i = 0; i < level.size(); i += per_internal) {
            auto* internal = new Internal();
            const std::size_t end = std::min(level.size(), i + per_internal);
            for (std::size_t j = i; j < end; ++j) {
                if (j > i) internal->keys.push_back(level_min[j]);
                internal->children.push_back(level[j]);
                level[j]->parent = internal;
            }
            next_level.push_back(internal);
            next_min.push_back(level_min[i]);
        }
        level = std::move(next_level);
        level_min = std::move(next_min);
        ++height_;
    }
    root_ = level.front();
    root_->parent = nullptr;
}

bool BPlusTree::check_invariants() const {
    // Walk the leaf chain: keys strictly ascending, count matches size().
    std::size_t seen = 0;
    util::AtomKey last{};
    bool first = true;
    for (const Leaf* leaf = first_leaf_; leaf != nullptr; leaf = leaf->next) {
        if (leaf->keys.size() != leaf->values.size()) return false;
        for (const util::AtomKey k : leaf->keys) {
            if (!first && k <= last) return false;
            last = k;
            first = false;
            ++seen;
        }
    }
    if (seen != size_) return false;

    // Every key must be findable through the tree.
    for (const Leaf* leaf = first_leaf_; leaf != nullptr; leaf = leaf->next)
        for (const util::AtomKey k : leaf->keys)
            if (find_leaf(k) != leaf) return false;
    return true;
}

}  // namespace jaws::storage
