// Clustered B+ tree.
//
// The production Turbulence database retrieves atoms through a clustered
// B+ tree access path keyed on the combination of Morton index and time step
// (paper Sec. III-A). This is a from-scratch, in-memory B+ tree with the
// operations the storage layer needs: point lookup, insertion, ordered range
// scans, and bulk loading from sorted input. Keys are the composite 64-bit
// AtomId keys; values are disk extents.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "util/typed_id.h"

namespace jaws::storage {

/// Location of a record on the simulated disk.
struct DiskExtent {
    std::uint64_t offset = 0;  ///< Byte offset of the record.
    std::uint64_t length = 0;  ///< Record length in bytes.

    friend bool operator==(const DiskExtent&, const DiskExtent&) = default;
};

/// In-memory B+ tree from clustered-index AtomKeys to DiskExtent values.
/// Leaves are linked for ordered scans. Fanout is fixed at compile time.
class BPlusTree {
  public:
    static constexpr std::size_t kFanout = 64;  ///< Max children per internal node.
    static constexpr std::size_t kLeafCapacity = 64;  ///< Max records per leaf.

    BPlusTree();
    ~BPlusTree();
    BPlusTree(BPlusTree&&) noexcept;
    BPlusTree& operator=(BPlusTree&&) noexcept;
    BPlusTree(const BPlusTree&) = delete;
    BPlusTree& operator=(const BPlusTree&) = delete;

    /// Insert or overwrite the record for `key`.
    void insert(util::AtomKey key, const DiskExtent& value);

    /// Point lookup; nullopt if the key is absent.
    std::optional<DiskExtent> find(util::AtomKey key) const;

    /// Visit every record with key in [lo, hi] in ascending key order; the
    /// visitor returns false to stop early.
    void scan(util::AtomKey lo, util::AtomKey hi,
              const std::function<bool(util::AtomKey, const DiskExtent&)>& visit) const;

    /// Replace the contents with `records`, which must be sorted by key and
    /// free of duplicates. Builds a packed tree bottom-up in O(n).
    void bulk_load(const std::vector<std::pair<util::AtomKey, DiskExtent>>& records);

    /// Number of records.
    std::size_t size() const noexcept { return size_; }
    /// Height of the tree (1 for a single leaf).
    std::size_t height() const noexcept { return height_; }

    /// Internal invariant check (keys ordered, node occupancy within bounds,
    /// leaf chain consistent). Used by tests; returns false on violation.
    bool check_invariants() const;

  private:
    struct Node;
    struct Leaf;
    struct Internal;

    Leaf* find_leaf(util::AtomKey key) const;
    void insert_into_parent(Node* left, util::AtomKey sep, Node* right);
    void destroy();

    Node* root_ = nullptr;
    Leaf* first_leaf_ = nullptr;
    std::size_t size_ = 0;
    std::size_t height_ = 0;
};

}  // namespace jaws::storage
