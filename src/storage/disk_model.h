// Simulated disk.
//
// The paper's cost model (Eq. 1) charges a constant T_b for reading an atom
// from disk because atoms are equal-sized; underneath, the production system
// is a RAID-5 stripe set whose effective cost has a seek component that grows
// with head movement and a transfer component proportional to bytes. This
// model reproduces both: callers get a virtual-time cost per request, and the
// scheduler's Morton-ordered batching visibly reduces the seek component —
// the mechanism the paper's layout choice exists to exploit.
//
// The model exposes `channels` independent service channels (the RAID array's
// command parallelism): each channel keeps its own head position, so
// concurrent requests dispatched by the event kernel's SimResource do not
// interfere with each other's seek state. Request *queuing* lives in the
// SimResource that fronts this model; the DiskModel itself only prices and
// accounts individual requests.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/sim_time.h"
#include "util/typed_id.h"

namespace jaws::storage {

/// Heavy-tailed service-time mode: with probability `rate` a read draws a
/// slowdown multiplier (>= 1) and its service cost is scaled by it. This
/// models the stragglers of a real RAID array — degraded parity reads,
/// firmware GC stalls, vibrating spindles — whose *tail*, not mean, decides
/// interactive latency. Draws are pure hashes of (seed, per-model request
/// index): the same request sequence always straggles identically, so runs
/// stay bit-reproducible. `rate == 0` (the default) is indistinguishable
/// from a model without the feature.
struct HeavyTailSpec {
    double rate = 0.0;              ///< Probability a read draws a slow multiplier.
    bool pareto = false;            ///< Pareto draws instead of lognormal.
    double lognormal_mu = 1.0;      ///< Mean of log(multiplier) (lognormal mode).
    double lognormal_sigma = 0.75;  ///< Stddev of log(multiplier).
    double pareto_alpha = 1.5;      ///< Pareto shape (smaller = heavier tail).
    double pareto_min = 2.0;        ///< Pareto minimum multiplier (>= 1).
    std::uint64_t seed = 0x7E11;    ///< Draw stream seed.

    bool enabled() const noexcept { return rate > 0.0; }
};

/// Tunable parameters of the simulated disk. The seek cost is
/// settle + full_stroke * sqrt(distance / capacity): reads that are close on
/// disk (Morton-adjacent atoms of one time step) pay almost nothing beyond
/// settle, while jumps across time steps (tens of GB apart under the
/// clustered layout) pay several milliseconds — the physical reason the
/// Morton space-filling layout and Morton-ordered batches matter (paper
/// Sec. III-A).
struct DiskSpec {
    double settle_ms = 1.0;            ///< Fixed head-settle cost of any seek.
    double seek_full_stroke_ms = 14.0; ///< Additional cost of a full-stroke seek.
    double transfer_mb_per_s = 250.0;  ///< Sustained (RAID-aggregate) transfer rate.
    std::uint64_t capacity_bytes = 1ULL << 40;  ///< Addressable range (stroke scaling);
                                                ///< AtomStore sets it to the layout size.
    HeavyTailSpec heavy_tail;          ///< Straggler service draws (default: off).
};

/// Aggregate request accounting. `service_time` (positioning + transfer
/// actually rendered) and `fault_delay` (injected straggler time) are
/// *disjoint*: total time the disk spent on requests is their sum.
struct DiskStats {
    std::uint64_t requests = 0;
    std::uint64_t sequential_requests = 0;  ///< Requests starting where a head was.
    std::uint64_t aborted_requests = 0;     ///< Requests cancelled mid-service
                                            ///< (preempted speculative reads).
    std::uint64_t bytes_read = 0;
    std::uint64_t slow_draws = 0;  ///< Reads that drew a heavy-tail multiplier.
    util::SimTime service_time;  ///< Positioning + transfer time rendered.
    util::SimTime fault_delay;   ///< Injected straggler time (disjoint).
    util::SimTime slow_service_extra;  ///< Extra service time heavy-tail draws
                                       ///< added (a subset of service_time).

    /// Total virtual time the disk spent on requests.
    util::SimTime total_busy() const noexcept { return service_time + fault_delay; }
};

/// Multi-channel disk with per-channel positional state. Not thread-safe;
/// each database node owns its own disk (matching the one-JAWS-instance-
/// per-node layout).
class DiskModel {
  public:
    explicit DiskModel(const DiskSpec& spec = {}, std::size_t channels = 1)
        : spec_(spec), heads_(channels ? channels : 1, 0) {}

    /// Cost of reading `bytes` at `offset` on `channel`, advancing that
    /// channel's head. Sequential reads (offset == channel head) pay no seek.
    /// Under DiskSpec::heavy_tail the cost may additionally carry a seeded
    /// straggler multiplier (so read() can exceed peek_cost(), which always
    /// prices the straggler-free case the scheduler's estimates assume).
    util::SimTime read(std::uint64_t offset, std::uint64_t bytes,
                       util::ChannelIndex channel = util::ChannelIndex{0});

    /// Cost the same read would incur, without performing it.
    util::SimTime peek_cost(std::uint64_t offset, std::uint64_t bytes,
                            util::ChannelIndex channel = util::ChannelIndex{0}) const;

    /// Account injected extra service time (fault-injector latency spikes).
    /// Kept disjoint from service_time — see DiskStats. A non-positive span
    /// is ignored: a negative "extra" would silently *refund* fault delay
    /// through the charging entry point (found by fuzz/fuzz_disk_model.cpp).
    void charge_delay(util::SimTime extra) noexcept {
        if (extra > util::SimTime::zero()) stats_.fault_delay += extra;
    }

    /// A request already counted by read() was cancelled mid-service
    /// (preempted speculative read, hedged-out straggler): return the
    /// unrendered tail of its service time so busy accounting reflects what
    /// the disk actually did. Clamped in both directions: a tail larger than
    /// the service time charged so far (double cancel of the same request)
    /// can never drive the aggregate negative, and a *negative* tail —
    /// which would silently inflate service_time through the refund entry
    /// point (found by fuzz/fuzz_disk_model.cpp) — is treated as zero.
    void cancel_tail(util::SimTime unrendered) noexcept {
        ++stats_.aborted_requests;
        stats_.service_time = stats_.service_time.minus_clamped(unrendered);
    }

    /// Give back injected delay (charge_delay) that a cancelled request never
    /// actually waited out. The counterpart of cancel_tail for the
    /// fault_delay side of the ledger, keeping the two disjoint after mixed
    /// cancels; clamped the same way (never negative, negative tails ignored).
    void refund_delay(util::SimTime unrendered) noexcept {
        stats_.fault_delay = stats_.fault_delay.minus_clamped(unrendered);
    }

    /// Number of independent service channels.
    std::size_t channels() const noexcept { return heads_.size(); }

    /// Lifetime request statistics.
    const DiskStats& stats() const noexcept { return stats_; }

    /// Reset statistics (head positions are kept).
    void reset_stats() noexcept { stats_ = DiskStats{}; }

    /// The spec the model was built with.
    const DiskSpec& spec() const noexcept { return spec_; }

  private:
    /// Straggler multiplier (>= 1) for draw index `n`; 1.0 when the draw
    /// does not straggle.
    double slow_multiplier(std::uint64_t n) const noexcept;

    DiskSpec spec_;
    DiskStats stats_;
    std::vector<std::uint64_t> heads_;
    std::uint64_t draws_ = 0;  ///< Heavy-tail draw index (one per read).
};

}  // namespace jaws::storage
