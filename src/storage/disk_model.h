// Simulated disk.
//
// The paper's cost model (Eq. 1) charges a constant T_b for reading an atom
// from disk because atoms are equal-sized; underneath, the production system
// is a RAID-5 stripe set whose effective cost has a seek component that grows
// with head movement and a transfer component proportional to bytes. This
// model reproduces both: callers get a virtual-time cost per request, and the
// scheduler's Morton-ordered batching visibly reduces the seek component —
// the mechanism the paper's layout choice exists to exploit.
#pragma once

#include <cstdint>

#include "util/sim_time.h"

namespace jaws::storage {

/// Tunable parameters of the simulated disk. The seek cost is
/// settle + full_stroke * sqrt(distance / capacity): reads that are close on
/// disk (Morton-adjacent atoms of one time step) pay almost nothing beyond
/// settle, while jumps across time steps (tens of GB apart under the
/// clustered layout) pay several milliseconds — the physical reason the
/// Morton space-filling layout and Morton-ordered batches matter (paper
/// Sec. III-A).
struct DiskSpec {
    double settle_ms = 1.0;            ///< Fixed head-settle cost of any seek.
    double seek_full_stroke_ms = 14.0; ///< Additional cost of a full-stroke seek.
    double transfer_mb_per_s = 250.0;  ///< Sustained (RAID-aggregate) transfer rate.
    std::uint64_t capacity_bytes = 1ULL << 40;  ///< Addressable range (stroke scaling);
                                                ///< AtomStore sets it to the layout size.
};

/// Aggregate request accounting.
struct DiskStats {
    std::uint64_t requests = 0;
    std::uint64_t sequential_requests = 0;  ///< Requests starting where the head was.
    std::uint64_t bytes_read = 0;
    util::SimTime busy_time;  ///< Total virtual time spent servicing requests.
    util::SimTime fault_delay;  ///< Injected straggler time (part of busy_time).
};

/// Single-head disk with positional state. Not thread-safe; each database
/// node owns its own disk (matching the one-JAWS-instance-per-node layout).
class DiskModel {
  public:
    explicit DiskModel(const DiskSpec& spec = {}) : spec_(spec) {}

    /// Cost of reading `bytes` at `offset`, advancing the head. Sequential
    /// reads (offset == current head) pay no seek.
    util::SimTime read(std::uint64_t offset, std::uint64_t bytes);

    /// Cost the same read would incur, without performing it.
    util::SimTime peek_cost(std::uint64_t offset, std::uint64_t bytes) const;

    /// Account injected extra service time (fault-injector latency spikes)
    /// against this disk's busy-time statistics.
    void charge_delay(util::SimTime extra) noexcept {
        stats_.busy_time += extra;
        stats_.fault_delay += extra;
    }

    /// Lifetime request statistics.
    const DiskStats& stats() const noexcept { return stats_; }

    /// Reset statistics (head position is kept).
    void reset_stats() noexcept { stats_ = DiskStats{}; }

    /// The spec the model was built with.
    const DiskSpec& spec() const noexcept { return spec_; }

  private:
    DiskSpec spec_;
    DiskStats stats_;
    std::uint64_t head_ = 0;
};

}  // namespace jaws::storage
