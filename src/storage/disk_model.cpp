#include "storage/disk_model.h"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace jaws::storage {

util::SimTime DiskModel::peek_cost(std::uint64_t offset, std::uint64_t bytes,
                                   std::size_t channel) const {
    if (channel >= heads_.size())
        throw std::out_of_range("DiskModel::peek_cost: no such channel");
    const std::uint64_t head = heads_[channel];
    double ms = 0.0;
    if (offset != head) {
        const double distance =
            static_cast<double>(offset > head ? offset - head : head - offset);
        const double stroke_frac =
            std::min(1.0, distance / static_cast<double>(spec_.capacity_bytes));
        // Seek time grows sub-linearly with distance (classic sqrt model).
        ms += spec_.settle_ms + spec_.seek_full_stroke_ms * std::sqrt(stroke_frac);
    }
    ms += static_cast<double>(bytes) / (spec_.transfer_mb_per_s * 1e6) * 1e3;
    return util::SimTime::from_millis(ms);
}

util::SimTime DiskModel::read(std::uint64_t offset, std::uint64_t bytes,
                              std::size_t channel) {
    const util::SimTime cost = peek_cost(offset, bytes, channel);
    ++stats_.requests;
    if (offset == heads_[channel]) ++stats_.sequential_requests;
    stats_.bytes_read += bytes;
    stats_.service_time += cost;
    heads_[channel] = offset + bytes;
    return cost;
}

}  // namespace jaws::storage
