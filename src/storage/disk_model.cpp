#include "storage/disk_model.h"

#include <cmath>
#include <cstdlib>
#include <numbers>
#include <stdexcept>

#include "util/rng.h"

namespace jaws::storage {

namespace {
/// Uniform [0, 1) from hash(seed, draw index, stream) — stateless, so equal
/// request sequences straggle identically regardless of what else happened.
double hash_uniform(std::uint64_t seed, std::uint64_t n,
                    std::uint64_t stream) noexcept {
    std::uint64_t state = seed;
    state ^= util::splitmix64(state) ^ n;
    state ^= util::splitmix64(state) ^ stream;
    return static_cast<double>(util::splitmix64(state) >> 11) * 0x1.0p-53;
}
}  // namespace

double DiskModel::slow_multiplier(std::uint64_t n) const noexcept {
    const HeavyTailSpec& ht = spec_.heavy_tail;
    if (hash_uniform(ht.seed, n, 1) >= ht.rate) return 1.0;
    const double u = hash_uniform(ht.seed, n, 2);
    double mult;
    if (ht.pareto) {
        // Inverse-CDF Pareto: min * (1 - u)^(-1/alpha).
        mult = ht.pareto_min * std::pow(1.0 - u, -1.0 / ht.pareto_alpha);
    } else {
        // Lognormal via Box-Muller on two further hash streams.
        const double v = hash_uniform(ht.seed, n, 3);
        const double z = std::sqrt(-2.0 * std::log1p(-u)) *
                         std::cos(2.0 * std::numbers::pi * v);
        mult = std::exp(ht.lognormal_mu + ht.lognormal_sigma * z);
    }
    // Cap the slowdown: a legal spec (pareto_alpha near zero, or a huge
    // lognormal sigma) can otherwise draw an unbounded — even infinite —
    // multiplier whose priced service time overflows the integer virtual
    // clock when accumulated (found by fuzz/fuzz_disk_model.cpp). A
    // million-fold straggler is already far past anything hedging or
    // cancellation must distinguish.
    constexpr double kMaxSlowMultiplier = 1e6;
    return std::clamp(mult, 1.0, kMaxSlowMultiplier);
}

util::SimTime DiskModel::peek_cost(std::uint64_t offset, std::uint64_t bytes,
                                   util::ChannelIndex channel) const {
    if (channel.value() >= heads_.size())
        throw std::out_of_range("DiskModel::peek_cost: no such channel");
    const std::uint64_t head = heads_[channel.value()];
    double ms = 0.0;
    if (offset != head) {
        const double distance =
            static_cast<double>(offset > head ? offset - head : head - offset);
        const double stroke_frac =
            std::min(1.0, distance / static_cast<double>(spec_.capacity_bytes));
        // Seek time grows sub-linearly with distance (classic sqrt model).
        ms += spec_.settle_ms + spec_.seek_full_stroke_ms * std::sqrt(stroke_frac);
    }
    ms += static_cast<double>(bytes) / (spec_.transfer_mb_per_s * 1e6) * 1e3;
    return util::SimTime::from_millis(ms);
}

util::SimTime DiskModel::read(std::uint64_t offset, std::uint64_t bytes,
                              util::ChannelIndex channel) {
    util::SimTime cost = peek_cost(offset, bytes, channel);
    ++stats_.requests;
    if (offset == heads_[channel.value()]) ++stats_.sequential_requests;
    stats_.bytes_read += bytes;
    if (spec_.heavy_tail.enabled()) {
        const double mult = slow_multiplier(draws_++);
        if (mult > 1.0) {
            const util::SimTime slowed =
                util::SimTime::from_millis(cost.millis() * mult);
            ++stats_.slow_draws;
            stats_.slow_service_extra += slowed - cost;
            cost = slowed;
        }
    }
    stats_.service_time += cost;
    heads_[channel.value()] = offset + bytes;
    return cost;
}

}  // namespace jaws::storage
