#include "storage/disk_model.h"

#include <cmath>
#include <cstdlib>

namespace jaws::storage {

util::SimTime DiskModel::peek_cost(std::uint64_t offset, std::uint64_t bytes) const {
    double ms = 0.0;
    if (offset != head_) {
        const double distance =
            static_cast<double>(offset > head_ ? offset - head_ : head_ - offset);
        const double stroke_frac =
            std::min(1.0, distance / static_cast<double>(spec_.capacity_bytes));
        // Seek time grows sub-linearly with distance (classic sqrt model).
        ms += spec_.settle_ms + spec_.seek_full_stroke_ms * std::sqrt(stroke_frac);
    }
    ms += static_cast<double>(bytes) / (spec_.transfer_mb_per_s * 1e6) * 1e3;
    return util::SimTime::from_millis(ms);
}

util::SimTime DiskModel::read(std::uint64_t offset, std::uint64_t bytes) {
    const util::SimTime cost = peek_cost(offset, bytes);
    ++stats_.requests;
    if (offset == head_) ++stats_.sequential_requests;
    stats_.bytes_read += bytes;
    stats_.busy_time += cost;
    head_ = offset + bytes;
    return cost;
}

}  // namespace jaws::storage
