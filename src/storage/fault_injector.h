// Deterministic fault injection for the simulated storage substrate.
//
// The production Turbulence cluster (SQL Server over RAID-5) survives slow
// disks, transient read errors and node loss; the scheduler's claims must
// hold under those faults, not only on a perfect substrate. This module
// injects such faults *deterministically on the virtual clock*: every
// decision is a pure hash of (seed, atom, attempt), so a faulty run is
// exactly reproducible regardless of read interleaving, and a fully zeroed
// FaultSpec is indistinguishable from no injector at all (no RNG stream is
// consumed, no virtual time is charged).
//
// Fault classes modelled (paper context: the public turbulence database
// cluster and LifeRaft deployments, PAPERS.md):
//   * transient read errors — a read fails but an immediate or backed-off
//     retry may succeed (media hiccups, RAID timeouts);
//   * latency spikes — a read succeeds but a straggling spindle charges
//     extra virtual time (degraded RAID reads, contention from scrubbing);
//   * permanent bad ranges — contiguous Morton ranges whose atoms never
//     read successfully (lost stripes beyond parity reconstruction);
//   * node-down events — a database node dies at a virtual time (consumed
//     by TurbulenceCluster, which re-runs the node's unfinished work on
//     surviving replicas).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/atom.h"
#include "util/sim_time.h"
#include "util/typed_id.h"

namespace jaws::storage {

/// Contiguous range of Morton codes whose atoms are permanently unreadable
/// (every time step). Inclusive on both ends.
struct BadRange {
    std::uint64_t morton_begin = 0;
    std::uint64_t morton_end = 0;
};

/// One node of the cluster dies at virtual time `at`; its unfinished work
/// fails over to surviving replicas (see TurbulenceCluster).
struct NodeDownEvent {
    util::NodeIndex node;
    util::SimTime at;
};

/// Seeded description of every fault the run injects. Default-constructed ==
/// fault-free: the storage path short-circuits and behaves bit-identically
/// to a build without the fault layer.
struct FaultSpec {
    std::uint64_t seed = 0xFA17;

    /// Probability that any single read attempt fails transiently.
    double transient_error_rate = 0.0;

    /// Probability that a (successful) read straggles, and the mean of the
    /// exponentially distributed extra latency it then charges.
    double latency_spike_rate = 0.0;
    double latency_spike_mean_ms = 50.0;

    /// Probability that a (successful) read gets *stuck*: the request is
    /// eventually answered but only after a large fixed stall (a hung RAID
    /// command being error-recovered, an I/O path reset). Unlike latency
    /// spikes, the stall is constant and huge — exactly the straggler class
    /// hedged replica reads exist to cut off.
    double stuck_read_rate = 0.0;
    double stuck_read_ms = 2000.0;

    /// Permanently unreadable Morton ranges ("bad sectors").
    std::vector<BadRange> bad_ranges;

    /// Cluster-level node deaths (ignored by single-node engines).
    std::vector<NodeDownEvent> node_down;

    /// Whether any storage-level fault can fire (node_down is cluster-level
    /// and does not by itself enable the storage path).
    bool storage_faults_enabled() const noexcept {
        return transient_error_rate > 0.0 || latency_spike_rate > 0.0 ||
               stuck_read_rate > 0.0 || !bad_ranges.empty();
    }
};

/// What the injector decided for one read attempt.
struct FaultOutcome {
    bool failed = false;     ///< The attempt returns no data.
    bool permanent = false;  ///< Retrying can never succeed (bad range).
    bool stuck = false;      ///< The attempt stalled for a stuck-read delay.
    util::SimTime extra_latency;  ///< Straggler delay charged on success
                                  ///< (spike + stuck stall combined).
};

/// Injection accounting (folded into RunReport::faults).
struct FaultStats {
    std::uint64_t transient_faults = 0;  ///< Read attempts failed transiently.
    std::uint64_t permanent_faults = 0;  ///< Read attempts hitting a bad range.
    std::uint64_t latency_spikes = 0;    ///< Successful-but-straggling reads.
    std::uint64_t stuck_reads = 0;       ///< Read attempts that stalled stuck.
    util::SimTime spike_delay;           ///< Total spike straggler time injected.
    util::SimTime stuck_delay;           ///< Total stuck-read stall time (disjoint).
};

/// Deterministic per-read fault source. Decisions depend only on
/// (spec.seed, atom, per-atom attempt index), never on call order across
/// atoms, so two runs with the same seed produce bit-identical fault
/// schedules even if the scheduler interleaves reads differently.
class FaultInjector {
  public:
    explicit FaultInjector(const FaultSpec& spec) : spec_(spec) {}

    /// Decide the fate of the next read attempt against `id`, advancing that
    /// atom's attempt counter. Call only when enabled().
    FaultOutcome on_read(const AtomId& id);

    /// Whether any storage fault can fire (callers skip the layer otherwise).
    bool enabled() const noexcept { return spec_.storage_faults_enabled(); }

    /// Whether `id` falls in a permanently bad Morton range.
    bool permanently_bad(const AtomId& id) const noexcept;

    const FaultSpec& spec() const noexcept { return spec_; }
    const FaultStats& stats() const noexcept { return stats_; }

  private:
    /// Uniform [0, 1) drawn from hash(seed, atom key, attempt, stream).
    double hash_uniform(const AtomId& id, std::uint64_t attempt,
                        std::uint64_t stream) const noexcept;

    FaultSpec spec_;
    FaultStats stats_;
    std::unordered_map<AtomId, std::uint64_t, AtomIdHash> attempts_;
};

}  // namespace jaws::storage
