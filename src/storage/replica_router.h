// Replica-aware read routing for the unified cluster kernel.
//
// The paper's production cluster lays atoms out by chained declustering
// (Li et al., PAPERS.md): the range owned by node n is replicated on nodes
// n+1 .. n+k-1 (mod N). PR 6 already exploited replicas *within* one node
// (hedged duplicate reads on another disk channel); this interface exposes
// them *across* nodes: when every node shares one event kernel, a demand read
// for an atom may be served by any surviving member of its replica chain, and
// the kernel picks the replica whose modelled disk queue is shallowest —
// replication as a load-balancing mechanism, not just a durability one.
//
// The engine stays ignorant of cluster topology: it asks its router (if any)
// where to send each demand or hedge read and gets back concrete storage
// (AtomStore) and modelled-disk (SimResource) targets plus the serving node
// id for accounting. A standalone engine has no router and serves everything
// locally — byte-identical to the pre-cluster behaviour.
//
// All node identities here are strong util::NodeIndex values and atoms are
// identified by AtomId — the raw-integer signatures this interface used to
// have let a Morton code or a size_t node index slip through unconverted
// (see ISSUE 9); the raw-id-api analyzer pass keeps it that way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/atom_store.h"
#include "util/event_queue.h"
#include "util/typed_id.h"

namespace jaws::storage {

/// Concrete targets for one routed read: the store that renders the bytes
/// and models the cost, the disk resource the read contends on, and the
/// serving node (for replica-served accounting).
struct ReadRoute {
    AtomStore* store = nullptr;
    util::SimResource* disk = nullptr;
    util::NodeIndex node;
};

/// Cross-node read router. Implemented by the unified cluster kernel;
/// standalone engines run without one and route every read to themselves.
class ReplicaRouter {
  public:
    virtual ~ReplicaRouter() = default;

    /// Route a demand read for `atom` issued by node `self`. Must return a
    /// valid route (the implementation falls back to `self` when no replica
    /// of the atom's chain survives — the read then fails like any read on a
    /// dead store would).
    virtual ReadRoute route_read(util::NodeIndex self, const AtomId& atom) = 0;

    /// Route a hedge (duplicate) read for `atom` whose primary was routed to
    /// `primary`. Implementations should prefer a surviving replica other
    /// than `primary` so the hedge rides independent hardware; with no
    /// alternative the hedge lands back on `primary`'s disk (a different
    /// channel, as in the single-node hedging of PR 6).
    virtual ReadRoute route_hedge(util::NodeIndex self, const AtomId& atom,
                                  util::NodeIndex primary) = 0;

    /// Distinct disks that can currently serve node `self`'s demand reads:
    /// the surviving members of its own range's replica chain (>= 1; a node
    /// always reaches its own disk while alive). The engine widens its read
    /// pipeline window by this factor — replication multiplies the I/O
    /// concurrency a node can keep in flight, not just where each read
    /// lands. The default (1) preserves standalone behaviour bit-exactly.
    virtual std::size_t read_concurrency(util::NodeIndex self) const {
        (void)self;
        return 1;
    }
};

/// The chained-declustering replica chain for a range owned by `owner`:
/// {owner, owner+1, ..., owner+replication-1} mod nodes, in preference
/// order. `replication` is clamped to `nodes` (a chain never wraps onto
/// itself twice).
inline std::vector<util::NodeIndex> replica_chain(util::NodeIndex owner,
                                                  std::size_t replication,
                                                  std::size_t nodes) {
    std::vector<util::NodeIndex> chain;
    if (nodes == 0) return chain;
    if (replication > nodes) replication = nodes;
    chain.reserve(replication);
    for (std::size_t i = 0; i < replication; ++i)
        chain.push_back(util::NodeIndex{
            static_cast<std::uint32_t>((owner.value() + i) % nodes)});
    return chain;
}

}  // namespace jaws::storage
