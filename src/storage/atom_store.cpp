#include "storage/atom_store.h"

#include <stdexcept>
#include <vector>

#include "util/morton.h"

namespace jaws::storage {

AtomStore::AtomStore(const AtomStoreSpec& spec)
    : spec_(spec), field_(spec.field), disk_(
          [&spec] {
              // Scale seek strokes to the actual layout size so cross-time-step
              // distances cost what they should.
              DiskSpec d = spec.disk;
              d.capacity_bytes = std::max<std::uint64_t>(
                  1, spec.grid.total_atoms() * spec.grid.atom_bytes());
              return d;
          }(),
          spec.io_channels),
      faults_(spec.faults) {
    // Lay atoms out in clustered key order: each time step's atoms are
    // contiguous and Morton-sorted, mirroring the production layout that
    // makes Morton-ordered batches near-sequential on disk.
    const std::uint64_t bytes = spec_.grid.atom_bytes();
    const std::uint32_t aps = spec_.grid.atoms_per_side();
    std::vector<std::uint64_t> codes;
    codes.reserve(spec_.grid.atoms_per_step());
    codes = util::morton_box_cover(util::Coord3{0, 0, 0},
                                   util::Coord3{aps - 1, aps - 1, aps - 1});
    std::vector<std::pair<AtomKey, DiskExtent>> records;
    records.reserve(spec_.grid.total_atoms());
    std::uint64_t offset = 0;
    for (std::uint32_t t = 0; t < spec_.grid.timesteps; ++t) {
        for (const std::uint64_t code : codes) {
            records.emplace_back(AtomId{t, code}.key(), DiskExtent{offset, bytes});
            offset += bytes;
        }
    }
    index_.bulk_load(records);
}

bool AtomStore::contains(const AtomId& id) const {
    return index_.find(id.key()).has_value();
}

ReadResult AtomStore::read(const AtomId& id, util::ChannelIndex channel) {
    const auto extent = index_.find(id.key());
    if (!extent) throw std::out_of_range("AtomStore::read: atom outside dataset");
    ReadResult result;
    result.io_cost = disk_.read(extent->offset, extent->length, channel);
    if (faults_.enabled()) {
        const FaultOutcome fault = faults_.on_read(id);
        // Injected stalls (stuck commands; spikes on successful reads) are
        // paid whether or not the request then fails: the channel was held.
        if (fault.extra_latency > util::SimTime::zero()) {
            disk_.charge_delay(fault.extra_latency);
            result.io_cost += fault.extra_latency;
            result.fault_delay = fault.extra_latency;
        }
        if (fault.failed) {
            // The disk still moved its head and spent the service time; the
            // request just returned no usable data.
            result.failed = true;
            result.permanent = fault.permanent;
            return result;
        }
    }
    if (spec_.materialize_data) {
        result.data = std::make_shared<field::VoxelBlock>(
            spec_.grid, field_, util::morton_decode(id.morton), id.timestep);
    }
    return result;
}

}  // namespace jaws::storage
