// Atom identity.
//
// The atom — a 64^3-voxel block of one time step — is the fundamental unit of
// I/O and of scheduling in the Turbulence database (paper Sec. III-A). Atoms
// are identified by (time step, Morton code of the atom's spatial position);
// that pair is also the clustered index key, so atoms that are adjacent along
// the Morton curve within a time step are adjacent on disk.
#pragma once

#include <cstdint>
#include <functional>

#include "util/typed_id.h"

namespace jaws::storage {

/// Strong clustered-index key type (see util/typed_id.h).
using AtomKey = util::AtomKey;

/// Identifies one atom in the dataset.
struct AtomId {
    std::uint32_t timestep = 0;  ///< Time step index in [0, GridSpec::timesteps).
    std::uint64_t morton = 0;    ///< Morton code of the atom's spatial coordinate.

    friend bool operator==(const AtomId&, const AtomId&) = default;
    friend auto operator<=>(const AtomId&, const AtomId&) = default;

    /// Composite 64-bit clustered-index key: time step in the high bits so a
    /// key-ordered scan walks each time step along the Morton curve, matching
    /// the production layout (B+ tree keyed on Morton index + time step).
    AtomKey key() const noexcept {
        return AtomKey{(static_cast<std::uint64_t>(timestep) << 40) |
                       (morton & 0xFFFFFFFFFFULL)};
    }

    /// Inverse of `key()`.
    static AtomId from_key(AtomKey k) noexcept {
        return AtomId{static_cast<std::uint32_t>(k.value() >> 40),
                      k.value() & 0xFFFFFFFFFFULL};
    }
};

/// Hash functor so AtomId can key unordered containers.
struct AtomIdHash {
    std::size_t operator()(const AtomId& id) const noexcept {
        std::uint64_t x = id.key().value();
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 33;
        return static_cast<std::size_t>(x);
    }
};

}  // namespace jaws::storage
