// Atom store: the simulated persistent layer of one database node.
//
// Lays atoms out on the simulated disk in clustered (time step, Morton) key
// order, indexes them with the B+ tree, and serves reads by charging the disk
// model and — when data materialisation is enabled — synthesising the atom's
// voxel payload from the synthetic turbulence field. Scheduling-scale
// experiments run with materialisation off (the voxel values cannot change
// which atoms a query touches, only the examples need real data), which keeps
// a 127k-atom dataset addressable on a laptop.
#pragma once

#include <memory>
#include <optional>

#include "field/grid.h"
#include "field/synthetic_field.h"
#include "storage/atom.h"
#include "storage/bptree.h"
#include "storage/disk_model.h"
#include "storage/fault_injector.h"

namespace jaws::storage {

/// Result of one atom read.
struct ReadResult {
    util::SimTime io_cost;  ///< Virtual time the disk spent on this read.
    /// The injected-delay portion of io_cost (latency spikes, stuck-read
    /// stalls). Cancellation accounting refunds this part to the disk's
    /// fault_delay ledger and the rest to service_time, keeping the two
    /// disjoint when a hedged read is cancelled mid-stall.
    util::SimTime fault_delay;
    std::shared_ptr<const field::VoxelBlock> data;  ///< Payload; null when not materialising.
    bool failed = false;     ///< Injected fault: no data was returned.
    bool permanent = false;  ///< Retrying can never succeed (bad Morton range).
};

/// Configuration of an AtomStore.
struct AtomStoreSpec {
    field::GridSpec grid;        ///< Dataset geometry.
    field::FieldSpec field;      ///< Synthetic-field parameters.
    DiskSpec disk;               ///< Disk model parameters.
    std::size_t io_channels = 1; ///< Concurrent disk service channels (RAID depth).
    bool materialize_data = false;  ///< Synthesize voxel payloads on read.
    FaultSpec faults;            ///< Deterministic fault injection (default: none).
};

/// One node's atom storage: clustered B+ tree over a simulated disk, with
/// lazy synthetic materialisation.
class AtomStore {
  public:
    explicit AtomStore(const AtomStoreSpec& spec);

    /// Read one atom: looks up the extent in the B+ tree, charges the disk's
    /// `channel`, and synthesises the payload if materialisation is enabled.
    /// Throws std::out_of_range for an atom outside the dataset. When fault
    /// injection is configured the attempt may come back `failed` (the disk
    /// time is still charged — the head moved) or carry straggler latency
    /// already folded into `io_cost`.
    ReadResult read(const AtomId& id, util::ChannelIndex channel = util::ChannelIndex{0});

    /// Whether `id` denotes an atom of this dataset.
    bool contains(const AtomId& id) const;

    /// Dataset geometry.
    const field::GridSpec& grid() const noexcept { return spec_.grid; }
    /// The synthetic flow field (examples use it as ground truth).
    const field::SyntheticField& field() const noexcept { return field_; }
    /// Disk statistics.
    const DiskStats& disk_stats() const noexcept { return disk_.stats(); }
    /// The disk model itself (the engine's abort accounting needs it).
    DiskModel& disk() noexcept { return disk_; }
    /// Reset disk statistics between experiment repetitions.
    void reset_stats() noexcept { disk_.reset_stats(); }
    /// The underlying index (exposed for tests and micro-benches).
    const BPlusTree& index() const noexcept { return index_; }
    /// Injected-fault accounting (all zero when no faults are configured).
    const FaultStats& fault_stats() const noexcept { return faults_.stats(); }
    /// The fault source (tests and the engine's permanent-failure handling).
    const FaultInjector& faults() const noexcept { return faults_; }

  private:
    AtomStoreSpec spec_;
    field::SyntheticField field_;
    BPlusTree index_;
    DiskModel disk_;
    FaultInjector faults_;
};

}  // namespace jaws::storage
