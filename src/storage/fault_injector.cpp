#include "storage/fault_injector.h"

#include <cmath>

#include "util/rng.h"

namespace jaws::storage {

bool FaultInjector::permanently_bad(const AtomId& id) const noexcept {
    for (const BadRange& r : spec_.bad_ranges)
        if (id.morton >= r.morton_begin && id.morton <= r.morton_end) return true;
    return false;
}

double FaultInjector::hash_uniform(const AtomId& id, std::uint64_t attempt,
                                   std::uint64_t stream) const noexcept {
    // splitmix64 over the concatenated identity: order-independent across
    // atoms, distinct per attempt and per decision stream.
    std::uint64_t state = spec_.seed;
    state ^= util::splitmix64(state) ^ id.key().value();
    state ^= util::splitmix64(state) ^ attempt;
    state ^= util::splitmix64(state) ^ stream;
    return static_cast<double>(util::splitmix64(state) >> 11) * 0x1.0p-53;
}

FaultOutcome FaultInjector::on_read(const AtomId& id) {
    FaultOutcome out;
    if (permanently_bad(id)) {
        ++stats_.permanent_faults;
        out.failed = true;
        out.permanent = true;
        return out;
    }
    const std::uint64_t attempt = attempts_[id]++;
    // Stuck command first: the stall is paid whether the command eventually
    // returns data or errors out — a hung RAID command under error recovery
    // holds the caller either way (the hang hedged reads exist to cut off).
    if (spec_.stuck_read_rate > 0.0 &&
        hash_uniform(id, attempt, 4) < spec_.stuck_read_rate) {
        const auto stall = util::SimTime::from_millis(spec_.stuck_read_ms);
        out.stuck = true;
        out.extra_latency += stall;
        ++stats_.stuck_reads;
        stats_.stuck_delay += stall;
    }
    if (spec_.transient_error_rate > 0.0 &&
        hash_uniform(id, attempt, 1) < spec_.transient_error_rate) {
        ++stats_.transient_faults;
        out.failed = true;
        return out;
    }
    if (spec_.latency_spike_rate > 0.0 &&
        hash_uniform(id, attempt, 2) < spec_.latency_spike_rate) {
        // Exponential spike magnitude via inverse CDF on a third hash stream.
        const double u = hash_uniform(id, attempt, 3);
        const auto spike = util::SimTime::from_millis(
            -spec_.latency_spike_mean_ms * std::log1p(-u));
        out.extra_latency += spike;
        ++stats_.latency_spikes;
        stats_.spike_delay += spike;
    }
    return out;
}

}  // namespace jaws::storage
