#include "storage/database_node.h"

#include <cmath>

#include "util/morton.h"

namespace jaws::storage {

util::SimTime DatabaseNode::modeled_cost(const SubQueryExec& work) const noexcept {
    return util::SimTime::from_micros(
        static_cast<std::int64_t>(cost_.t_m_us * static_cast<double>(work.count())));
}

ExecOutcome DatabaseNode::execute(const SubQueryExec& work,
                                  const field::VoxelBlock* data) const {
    ExecOutcome out;
    out.compute_cost = modeled_cost(work);
    if (data == nullptr || work.positions.empty()) return out;

    const util::Coord3 atom_coord = util::morton_decode(work.atom.morton);
    out.samples.reserve(work.positions.size());
    for (const auto& p : work.positions) {
        field::FlowSample s = field::interpolate(grid_, *data, atom_coord, p, work.order);
        if (work.kind == ComputeKind::kFlowStats) {
            // Collapse to magnitude in the velocity.x slot; aggregation over
            // positions happens in the caller, which sees all samples.
            const double mag = std::sqrt(s.velocity.norm2());
            s.velocity = field::Vec3{mag, 0.0, 0.0};
        }
        out.samples.push_back(s);
    }
    return out;
}

}  // namespace jaws::storage
