#include "storage/database_node.h"

#include <cmath>

#include "field/batch_interpolator.h"
#include "util/morton.h"

namespace jaws::storage {

util::SimTime DatabaseNode::modeled_cost(const SubQueryExec& work) const noexcept {
    return util::SimTime::from_micros(
        static_cast<std::int64_t>(cost_.t_m_us * static_cast<double>(work.count())));
}

ExecOutcome DatabaseNode::execute(const SubQueryExec& work,
                                  const field::VoxelBlock* data) const {
    ExecOutcome out;
    out.compute_cost = modeled_cost(work);
    if (data == nullptr || work.positions.empty()) return out;

    const util::Coord3 atom_coord = util::morton_decode(work.atom.morton);
    out.samples.resize(work.positions.size());
    if (batched_) {
        // One scratch arena per thread: execute() runs concurrently on the
        // evaluation pool, and the interpolator's weight planes amortise
        // across every sub-query a worker evaluates.
        thread_local field::BatchInterpolator interp;
        interp.evaluate(grid_, *data, atom_coord, work.positions.data(),
                        work.positions.size(), work.order, out.samples.data());
    } else {
        for (std::size_t i = 0; i < work.positions.size(); ++i)
            out.samples[i] =
                field::interpolate(grid_, *data, atom_coord, work.positions[i], work.order);
    }
    if (work.kind == ComputeKind::kFlowStats) {
        // Collapse to magnitude in the velocity.x slot; aggregation over
        // positions happens in the caller, which sees all samples.
        for (field::FlowSample& s : out.samples) {
            const double mag = std::sqrt(s.velocity.norm2());
            s.velocity = field::Vec3{mag, 0.0, 0.0};
        }
    }
    return out;
}

}  // namespace jaws::storage
