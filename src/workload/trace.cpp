#include "workload/trace.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace jaws::workload {

std::vector<TraceRecord> flatten(const Workload& workload, const NominalCost& cost) {
    std::vector<TraceRecord> out;
    out.reserve(workload.total_queries());
    for (const auto& job : workload.jobs) {
        util::SimTime clock = job.arrival;
        for (const auto& q : job.queries) {
            TraceRecord r;
            r.query = q.id;
            r.true_job = job.id;
            r.seq_in_job = q.seq_in_job;
            r.user = q.user;
            r.job_type = job.type;
            r.timestep = q.timestep;
            r.kind = q.kind;
            r.positions = q.total_positions();
            r.atoms = static_cast<std::uint32_t>(q.footprint.size());
            if (job.type == JobType::kOrdered) {
                // Ordered queries are submitted after the predecessor's
                // result returns plus the user's think time.
                clock += q.seq_in_job == 0 ? util::SimTime::zero() : q.think_time;
                r.submit = clock;
                const double exec_ms = cost.t_b_ms * static_cast<double>(r.atoms) +
                                       cost.t_m_us * 1e-3 * static_cast<double>(r.positions);
                clock += util::SimTime::from_millis(exec_ms);
            } else {
                // Batched queries are submitted together with a small stagger.
                r.submit = job.arrival + q.think_time;
            }
            out.push_back(r);
        }
    }
    std::sort(out.begin(), out.end(), [](const TraceRecord& a, const TraceRecord& b) {
        return a.submit == b.submit ? a.query < b.query : a.submit < b.submit;
    });
    return out;
}

void save_csv(const std::string& path, const std::vector<TraceRecord>& records) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) throw std::runtime_error("save_csv: cannot open " + path);
    std::fprintf(f, "query,job,seq,user,job_type,timestep,kind,positions,atoms,submit_us\n");
    for (const auto& r : records) {
        std::fprintf(f, "%llu,%llu,%u,%u,%u,%u,%u,%llu,%u,%lld\n",
                     static_cast<unsigned long long>(r.query),
                     static_cast<unsigned long long>(r.true_job), r.seq_in_job, r.user,
                     static_cast<unsigned>(r.job_type), r.timestep,
                     static_cast<unsigned>(r.kind),
                     static_cast<unsigned long long>(r.positions), r.atoms,
                     static_cast<long long>(r.submit.micros));
    }
    std::fclose(f);
}

std::vector<TraceRecord> load_csv(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) throw std::runtime_error("load_csv: cannot open " + path);
    std::vector<TraceRecord> out;
    char line[512];
    bool header = true;
    while (std::fgets(line, sizeof line, f) != nullptr) {
        if (header) {  // skip the header row
            header = false;
            continue;
        }
        TraceRecord r;
        unsigned long long query = 0, job = 0, positions = 0;
        long long submit = 0;
        unsigned seq = 0, user = 0, job_type = 0, timestep = 0, kind = 0, atoms = 0;
        const int n = std::sscanf(line, "%llu,%llu,%u,%u,%u,%u,%u,%llu,%u,%lld", &query, &job,
                                  &seq, &user, &job_type, &timestep, &kind, &positions, &atoms,
                                  &submit);
        if (n != 10) {
            std::fclose(f);
            throw std::runtime_error("load_csv: malformed row in " + path);
        }
        r.query = query;
        r.true_job = job;
        r.seq_in_job = seq;
        r.user = static_cast<UserId>(user);
        r.job_type = static_cast<JobType>(job_type);
        r.timestep = timestep;
        r.kind = static_cast<storage::ComputeKind>(kind);
        r.positions = positions;
        r.atoms = atoms;
        r.submit = util::SimTime::from_micros(submit);
        out.push_back(r);
    }
    std::fclose(f);
    return out;
}

}  // namespace jaws::workload
