#include "workload/trace.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>

namespace jaws::workload {

std::vector<TraceRecord> flatten(const Workload& workload, const NominalCost& cost) {
    std::vector<TraceRecord> out;
    out.reserve(workload.total_queries());
    for (const auto& job : workload.jobs) {
        util::SimTime clock = job.arrival;
        for (const auto& q : job.queries) {
            TraceRecord r;
            r.query = q.id;
            r.true_job = job.id;
            r.seq_in_job = q.seq_in_job;
            r.user = q.user;
            r.job_type = job.type;
            r.timestep = q.timestep;
            r.kind = q.kind;
            r.positions = q.total_positions();
            r.atoms = static_cast<std::uint32_t>(q.footprint.size());
            if (job.type == JobType::kOrdered) {
                // Ordered queries are submitted after the predecessor's
                // result returns plus the user's think time.
                clock += q.seq_in_job == 0 ? util::SimTime::zero() : q.think_time;
                r.submit = clock;
                const double exec_ms = cost.t_b_ms * static_cast<double>(r.atoms) +
                                       cost.t_m_us * 1e-3 * static_cast<double>(r.positions);
                clock += util::SimTime::from_millis(exec_ms);
            } else {
                // Batched queries are submitted together with a small stagger.
                r.submit = job.arrival + q.think_time;
            }
            out.push_back(r);
        }
    }
    std::sort(out.begin(), out.end(), [](const TraceRecord& a, const TraceRecord& b) {
        return a.submit == b.submit ? a.query < b.query : a.submit < b.submit;
    });
    return out;
}

std::string to_csv(const std::vector<TraceRecord>& records) {
    std::string out = "query,job,seq,user,job_type,timestep,kind,positions,atoms,submit_us\n";
    char row[256];
    for (const auto& r : records) {
        const int n = std::snprintf(
            row, sizeof row, "%llu,%llu,%u,%u,%u,%u,%u,%llu,%u,%lld\n",
            static_cast<unsigned long long>(r.query),
            static_cast<unsigned long long>(r.true_job), r.seq_in_job, r.user,
            static_cast<unsigned>(r.job_type), r.timestep, static_cast<unsigned>(r.kind),
            static_cast<unsigned long long>(r.positions), r.atoms,
            static_cast<long long>(r.submit.raw_micros()));
        out.append(row, static_cast<std::size_t>(n));
    }
    return out;
}

void save_csv(const std::string& path, const std::vector<TraceRecord>& records) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) throw std::runtime_error("save_csv: cannot open " + path);
    const std::string text = to_csv(records);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

namespace {

[[noreturn]] void malformed(std::size_t lineno, const std::string& what) {
    throw std::runtime_error("parse_csv: line " + std::to_string(lineno) + ": " + what);
}

/// Parse one comma-terminated integer field. The whole field must be
/// consumed by the parse (no stray bytes, no sign on unsigned columns —
/// std::from_chars rejects both, and reports overflow as an error instead
/// of the undefined behaviour std::sscanf has on out-of-range input).
template <typename T>
T parse_field(std::string_view& row, std::size_t lineno, const char* name,
              bool last = false) {
    const std::size_t comma = row.find(',');
    if (last != (comma == std::string_view::npos))
        malformed(lineno, last ? "trailing fields after `" + std::string(name) + "`"
                               : "row ends before `" + std::string(name) + "`");
    const std::string_view field = row.substr(0, comma);
    if (field.empty()) malformed(lineno, "empty `" + std::string(name) + "` field");
    T value{};
    const auto [end, ec] =
        std::from_chars(field.data(), field.data() + field.size(), value);
    if (ec == std::errc::result_out_of_range)
        malformed(lineno, "`" + std::string(name) + "` out of range: " +
                              std::string(field));
    if (ec != std::errc{} || end != field.data() + field.size())
        malformed(lineno, "`" + std::string(name) + "` is not a valid integer: " +
                              std::string(field));
    row.remove_prefix(last ? row.size() : comma + 1);
    return value;
}

}  // namespace

std::vector<TraceRecord> parse_csv(std::string_view text) {
    std::vector<TraceRecord> out;
    std::size_t lineno = 0;
    while (!text.empty()) {
        const std::size_t nl = text.find('\n');
        std::string_view row = text.substr(0, nl);
        text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);
        ++lineno;
        if (!row.empty() && row.back() == '\r') row.remove_suffix(1);  // CRLF traces
        if (lineno == 1) {
            if (row.empty()) malformed(lineno, "missing header row");
            continue;  // header row (column names, never parsed as data)
        }
        if (row.empty()) {
            if (text.empty()) break;  // trailing newline at end of file
            malformed(lineno, "blank row inside the trace");
        }
        TraceRecord r;
        r.query = parse_field<QueryId>(row, lineno, "query");
        r.true_job = parse_field<JobId>(row, lineno, "job");
        r.seq_in_job = parse_field<std::uint32_t>(row, lineno, "seq");
        r.user = parse_field<UserId>(row, lineno, "user");
        const auto job_type = parse_field<std::uint8_t>(row, lineno, "job_type");
        if (job_type > static_cast<std::uint8_t>(JobType::kBatched))
            malformed(lineno, "job_type " + std::to_string(job_type) +
                                  " names no JobType enumerator");
        r.job_type = static_cast<JobType>(job_type);
        r.timestep = parse_field<std::uint32_t>(row, lineno, "timestep");
        const auto kind = parse_field<std::uint8_t>(row, lineno, "kind");
        if (kind > static_cast<std::uint8_t>(storage::ComputeKind::kFlowStats))
            malformed(lineno, "kind " + std::to_string(kind) +
                                  " names no ComputeKind enumerator");
        r.kind = static_cast<storage::ComputeKind>(kind);
        r.positions = parse_field<std::uint64_t>(row, lineno, "positions");
        r.atoms = parse_field<std::uint32_t>(row, lineno, "atoms");
        r.submit = util::SimTime::from_micros(
            parse_field<std::int64_t>(row, lineno, "submit_us", /*last=*/true));
        out.push_back(r);
    }
    return out;
}

std::vector<TraceRecord> load_csv(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) throw std::runtime_error("load_csv: cannot open " + path);
    std::string text;
    char buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) throw std::runtime_error("load_csv: read error on " + path);
    return parse_csv(text);
}

}  // namespace jaws::workload
