#include "workload/job_identifier.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>

namespace jaws::workload {

namespace {

/// An open per-user session the heuristics may extend.
struct Session {
    JobId label;
    storage::ComputeKind kind;
    std::uint32_t last_step;
    std::int32_t step_direction = 0;  ///< -1/0/+1 observed iteration direction.
    util::SimTime last_submit;
    std::size_t queries = 1;
};

}  // namespace

std::vector<JobId> identify_jobs(const std::vector<TraceRecord>& records,
                                 const JobIdentifierConfig& config) {
    // Records must be scanned in submission order; flatten() guarantees it,
    // but re-derive the order defensively without copying the records.
    std::vector<std::size_t> order(records.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return records[a].submit < records[b].submit;
    });

    std::vector<JobId> assignment(records.size(), kNoJob);
    std::unordered_map<UserId, std::vector<Session>> open;
    JobId next_label = 1;
    const auto max_gap = util::SimTime::from_seconds(config.max_gap_s);

    for (const std::size_t idx : order) {
        const TraceRecord& r = records[idx];
        auto& sessions = open[r.user];

        // Expire sessions that have been silent too long.
        std::erase_if(sessions,
                      [&](const Session& s) { return r.submit - s.last_submit > max_gap; });

        // Pick the best matching open session: same operation, and a time
        // step reachable from the session's trajectory (same step for
        // batched-style repetition, or a contiguous step for ordered
        // iteration, honouring the observed direction).
        Session* best = nullptr;
        std::int64_t best_score = -1;
        for (auto& s : sessions) {
            if (s.kind != r.kind) continue;
            const auto dstep = static_cast<std::int64_t>(r.timestep) -
                               static_cast<std::int64_t>(s.last_step);
            const bool step_ok =
                dstep == 0 ||
                (std::llabs(dstep) <= config.max_step_jump &&
                 (s.step_direction == 0 || s.step_direction == (dstep > 0 ? 1 : -1)));
            if (!step_ok) continue;
            // Prefer the most recently active candidate.
            const std::int64_t score = s.last_submit.raw_micros();
            if (score > best_score) {
                best_score = score;
                best = &s;
            }
        }

        if (best != nullptr) {
            assignment[idx] = best->label;
            const auto dstep = static_cast<std::int64_t>(r.timestep) -
                               static_cast<std::int64_t>(best->last_step);
            if (dstep != 0) best->step_direction = dstep > 0 ? 1 : -1;
            best->last_step = r.timestep;
            best->last_submit = r.submit;
            ++best->queries;
            continue;
        }

        // No session fits: open a new one (bounded per user; drop the oldest).
        Session s;
        s.label = next_label++;
        s.kind = r.kind;
        s.last_step = r.timestep;
        s.last_submit = r.submit;
        assignment[idx] = s.label;
        sessions.push_back(s);
        if (sessions.size() > config.max_open_sessions_per_user)
            sessions.erase(sessions.begin());
    }
    return assignment;
}

IdentificationQuality evaluate_identification(const std::vector<TraceRecord>& records,
                                              const std::vector<JobId>& assignment) {
    assert(records.size() == assignment.size());
    IdentificationQuality q;
    if (records.empty()) return q;

    // Contingency counts: pairs sharing a true job, an inferred job, or both.
    // n_{tc} = records with true job t and inferred cluster c.
    std::map<std::pair<JobId, JobId>, std::uint64_t> cell;
    std::unordered_map<JobId, std::uint64_t> true_size, cluster_size;
    for (std::size_t i = 0; i < records.size(); ++i) {
        ++cell[{records[i].true_job, assignment[i]}];
        ++true_size[records[i].true_job];
        ++cluster_size[assignment[i]];
    }
    const auto pairs = [](std::uint64_t n) { return n * (n - 1) / 2; };
    std::uint64_t both = 0, same_true = 0, same_cluster = 0;
    for (const auto& [key, n] : cell) both += pairs(n);
    for (const auto& [t, n] : true_size) same_true += pairs(n);
    for (const auto& [c, n] : cluster_size) same_cluster += pairs(n);
    q.pair_precision =
        same_cluster ? static_cast<double>(both) / static_cast<double>(same_cluster) : 1.0;
    q.pair_recall =
        same_true ? static_cast<double>(both) / static_cast<double>(same_true) : 1.0;

    // Exact recovery: a true job is exact iff some cluster contains exactly
    // its records and nothing else.
    std::uint64_t exact = 0;
    for (const auto& [key, n] : cell) {
        const auto& [t, c] = key;
        if (true_size.at(t) == n && cluster_size.at(c) == n) ++exact;
    }
    q.exact_jobs = static_cast<double>(exact) / static_cast<double>(true_size.size());
    return q;
}

}  // namespace jaws::workload
