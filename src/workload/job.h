// Jobs.
//
// A job is a collection of queries belonging to the same experiment (paper
// Sec. IV). Ordered jobs carry data dependencies — each query may only run
// after its predecessor, because its inputs are computed from the
// predecessor's results (e.g. particle tracking). Batched jobs' queries are
// mutually independent. Over 95 % of Turbulence queries belong to jobs.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/query.h"

namespace jaws::workload {

/// Execution-order constraint class of a job (paper Sec. IV).
enum class JobType : std::uint8_t {
    kOrdered,  ///< Queries form a dependency chain; strict sequence.
    kBatched,  ///< Queries are independent; any order.
};

/// One experiment: an ordered list of queries sharing a JobId.
struct Job {
    JobId id = 0;
    UserId user = 0;
    JobType type = JobType::kOrdered;
    util::SimTime arrival;  ///< When the job (and its first query) is submitted.
    std::vector<Query> queries;

    /// Total positions over all queries.
    std::uint64_t total_positions() const noexcept {
        std::uint64_t n = 0;
        for (const auto& q : queries) n += q.total_positions();
        return n;
    }

    /// Distinct time steps the job touches (queries are step-sorted for
    /// ordered jobs, so this is cheap but handles any order).
    std::uint32_t timestep_span() const noexcept {
        if (queries.empty()) return 0;
        std::uint32_t lo = queries.front().timestep, hi = lo;
        for (const auto& q : queries) {
            lo = q.timestep < lo ? q.timestep : lo;
            hi = q.timestep > hi ? q.timestep : hi;
        }
        return hi - lo + 1;
    }
};

/// A full generated workload: jobs sorted by arrival time.
struct Workload {
    std::vector<Job> jobs;

    /// Total query count.
    std::size_t total_queries() const noexcept {
        std::size_t n = 0;
        for (const auto& j : jobs) n += j.queries.size();
        return n;
    }
};

}  // namespace jaws::workload
