// Job identification heuristics (paper Sec. IV-A).
//
// The production scheduler does not receive job labels: users submit bare
// queries, and JAWS infers which queries belong to the same experiment "using
// a combination of user IDs, spatial or temporal operation performed, time
// steps queried, and wall-clock time between consecutive queries". This
// module implements those heuristics over a flattened trace and provides an
// evaluation harness that scores the inferred grouping against the generator's
// ground-truth job labels ("heuristic, but highly accurate in practice").
#pragma once

#include <cstddef>
#include <vector>

#include "workload/trace.h"

namespace jaws::workload {

/// Tunables of the identification heuristics.
struct JobIdentifierConfig {
    double max_gap_s = 900.0;      ///< A longer silence ends the user's session.
    std::uint32_t max_step_jump = 1;  ///< Allowed |timestep delta| for ordered chains.
    std::size_t max_open_sessions_per_user = 8;  ///< Concurrent experiments per user.
};

/// Inferred job label for each record (parallel to `records`). Labels are
/// arbitrary but consistent; records sharing a label were judged to belong to
/// the same job.
std::vector<JobId> identify_jobs(const std::vector<TraceRecord>& records,
                                 const JobIdentifierConfig& config = {});

/// Accuracy of an inferred grouping versus ground truth.
struct IdentificationQuality {
    double pair_precision = 0.0;  ///< P(same true job | same inferred job).
    double pair_recall = 0.0;     ///< P(same inferred job | same true job).
    double exact_jobs = 0.0;      ///< Fraction of true jobs recovered exactly.

    double f1() const noexcept {
        const double d = pair_precision + pair_recall;
        return d > 0.0 ? 2.0 * pair_precision * pair_recall / d : 0.0;
    }
};

/// Score `assignment` (from identify_jobs) against the records' true_job
/// labels using pairwise precision/recall and exact-job recovery.
IdentificationQuality evaluate_identification(const std::vector<TraceRecord>& records,
                                              const std::vector<JobId>& assignment);

}  // namespace jaws::workload
