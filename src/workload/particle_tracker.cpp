#include "workload/particle_tracker.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "util/rng.h"

namespace jaws::workload {

std::vector<field::Vec3> seed_particles(const ParticleTrackingSpec& spec) {
    util::Rng rng(spec.seed);
    std::vector<field::Vec3> cloud;
    cloud.reserve(spec.particles);
    while (cloud.size() < spec.particles) {
        // Rejection-sample the unit ball, then scale/translate onto the torus.
        const double x = rng.uniform(-1.0, 1.0);
        const double y = rng.uniform(-1.0, 1.0);
        const double z = rng.uniform(-1.0, 1.0);
        if (x * x + y * y + z * z > 1.0) continue;
        cloud.push_back(field::Vec3{field::wrap01(spec.seed_center.x + x * spec.seed_radius),
                                    field::wrap01(spec.seed_center.y + y * spec.seed_radius),
                                    field::wrap01(spec.seed_center.z + z * spec.seed_radius)});
    }
    return cloud;
}

std::vector<field::Vec3> advect_cloud(const field::SyntheticField& field,
                                      const std::vector<field::Vec3>& cloud, double t,
                                      double dt) {
    std::vector<field::Vec3> next;
    next.reserve(cloud.size());
    for (const auto& p : cloud) next.push_back(field::advect_rk2(field, p, t, dt));
    return next;
}

std::vector<AtomRequest> footprint_of_positions(const field::GridSpec& grid,
                                                std::uint32_t timestep,
                                                const std::vector<field::Vec3>& positions) {
    std::unordered_map<std::uint64_t, std::uint64_t> counts;
    for (const auto& p : positions) ++counts[grid.atom_morton_of(p)];
    std::vector<AtomRequest> out;
    out.reserve(counts.size());
    // jaws-lint: allow(unordered-iteration) -- order normalised by the
    // Morton sort directly below; the emitted footprint never sees it.
    for (const auto& [code, n] : counts)
        out.push_back(AtomRequest{storage::AtomId{timestep, code}, n});
    std::sort(out.begin(), out.end(), [](const AtomRequest& a, const AtomRequest& b) {
        return a.atom.morton < b.atom.morton;
    });
    return out;
}

Job make_particle_tracking_job(const ParticleTrackingSpec& spec, const field::GridSpec& grid,
                               const field::SyntheticField& field, JobId id, UserId user,
                               util::SimTime arrival) {
    assert(spec.steps >= 1);
    Job job;
    job.id = id;
    job.user = user;
    job.type = JobType::kOrdered;
    job.arrival = arrival;

    std::vector<field::Vec3> cloud = seed_particles(spec);
    std::uint32_t step = spec.start_step;
    for (std::uint32_t i = 0; i < spec.steps; ++i) {
        Query q;
        q.id = 0;  // assigned by the caller when merged into a workload
        q.job = id;
        q.seq_in_job = i;
        q.user = user;
        q.timestep = step;
        q.kind = storage::ComputeKind::kVelocity;
        q.order = spec.order;
        q.think_time = i == 0 ? util::SimTime::zero() : util::SimTime::from_seconds(1.0);
        q.positions = cloud;
        q.footprint = footprint_of_positions(grid, step, cloud);
        job.queries.push_back(std::move(q));

        if (i + 1 == spec.steps) break;
        const double dt = grid.dt * spec.direction;
        cloud = advect_cloud(field, cloud, grid.sim_time(step), dt);
        const std::int64_t next =
            static_cast<std::int64_t>(step) + spec.direction;
        assert(next >= 0 && next < static_cast<std::int64_t>(grid.timesteps));
        step = static_cast<std::uint32_t>(next);
    }
    return job;
}

}  // namespace jaws::workload
