// Particle-tracking jobs (the paper's canonical ordered workflow).
//
// "To track the movement of particles over time, the positions of particles
// at the next time step depend on the state of the particles computed from
// the previous time step" (Sec. IV). This module builds ordered jobs whose
// queries carry *explicit* particle positions: a cloud is seeded in a ball,
// and each subsequent query's positions are obtained by advecting the cloud
// through the synthetic flow — a genuine, result-driven data dependency. Jobs
// built here feed the example programs and the integration tests; the bulk
// workload generator uses a cheaper drift approximation of the same process.
#pragma once

#include <cstdint>
#include <vector>

#include "field/grid.h"
#include "field/synthetic_field.h"
#include "workload/job.h"

namespace jaws::workload {

/// Parameters of one tracking experiment.
struct ParticleTrackingSpec {
    std::uint64_t seed = 11;
    std::size_t particles = 512;       ///< Cloud size.
    field::Vec3 seed_center{0.5, 0.5, 0.5};
    double seed_radius = 0.05;         ///< Seeding ball radius (torus units).
    std::uint32_t start_step = 0;      ///< First time step queried.
    std::uint32_t steps = 8;           ///< Number of queries (time steps visited).
    int direction = 1;                 ///< +1 forward, -1 backward in time.
    field::InterpOrder order = field::InterpOrder::kLag4;
};

/// Seed a particle cloud uniformly in the spec's ball.
std::vector<field::Vec3> seed_particles(const ParticleTrackingSpec& spec);

/// Advect every particle one step of `dt` through `field` at time `t` (RK2).
std::vector<field::Vec3> advect_cloud(const field::SyntheticField& field,
                                      const std::vector<field::Vec3>& cloud, double t,
                                      double dt);

/// Group explicit positions into a Morton-sorted atom footprint for `timestep`.
std::vector<AtomRequest> footprint_of_positions(const field::GridSpec& grid,
                                                std::uint32_t timestep,
                                                const std::vector<field::Vec3>& positions);

/// Build a fully materialised ordered job: queries carry explicit positions,
/// precomputed by advecting the cloud with the analytic field (the ground
/// truth a live experiment would converge to). `arrival` stamps the job.
Job make_particle_tracking_job(const ParticleTrackingSpec& spec, const field::GridSpec& grid,
                               const field::SyntheticField& field, JobId id, UserId user,
                               util::SimTime arrival);

}  // namespace jaws::workload
