// Synthetic workload generator calibrated to the paper's trace (Sec. VI-A).
//
// The paper evaluates JAWS on a 50 k-query (~1 k-job) week of the Turbulence
// SQL log. We cannot ship that log, so this generator synthesises a workload
// reproducing every aggregate property the paper reports:
//   * >= 95 % of queries belong to multi-query jobs;
//   * job durations are heavy-tailed with ~63 % lasting 1-30 minutes (Fig. 8);
//   * 88 % of jobs touch a single time step, ~3 % iterate over the full span,
//     and full-span jobs may terminate early, producing the downward trend in
//     access frequency (Fig. 9);
//   * ~70 % of queries hit a dozen "hot" time steps clustered at the start
//     and end of simulation time, with a secondary mid-range spike (Fig. 9);
//   * arrivals are bursty, and jobs within a burst come from the same user
//     and revisit the same regions/steps — the temporal overlap that makes
//     batching and caching pay off;
//   * ordered jobs drift their region with the actual synthetic flow, so
//     consecutive queries have the genuine data dependence of particle
//     tracking (including forward-and-backward passes over time).
// A `speedup` transform compresses inter-job gaps, reproducing Fig. 11's
// workload-saturation axis.
#pragma once

#include <cstdint>

#include "field/grid.h"
#include "field/synthetic_field.h"
#include "workload/job.h"

namespace jaws::workload {

/// Generator calibration knobs (defaults reproduce the paper's trace shape).
struct WorkloadSpec {
    std::uint64_t seed = 7;

    std::size_t jobs = 1000;              ///< Number of jobs to generate.
    std::size_t users = 30;               ///< Distinct user IDs (Zipf-shared).

    // --- arrival process (bursty) ---
    double mean_burst_gap_s = 4.0;        ///< Virtual seconds between bursts.
    double mean_jobs_per_burst = 4.0;     ///< Jobs spawned per burst (>= 1).
    double mean_intra_burst_gap_s = 120.0;  ///< Stagger of jobs inside a burst.

    // --- job shape ---
    double frac_single_step = 0.88;       ///< Jobs touching one time step.
    double frac_full_span = 0.03;         ///< Jobs iterating over all steps.
    double full_span_survival = 0.97;     ///< Per-step survival of full-span jobs.
    double frac_ordered_single_step = 0.35;  ///< Single-step jobs that are ordered chains.
    double mean_passes = 1.6;             ///< Forward/backward passes of span jobs.
    double batched_queries_mu = 3.9;      ///< ln-median of batched job query count (~50).
    double batched_queries_sigma = 0.9;
    double ordered_chain_mu = 3.0;        ///< ln-median of single-step ordered chain length.
    double ordered_chain_sigma = 0.8;

    // --- per-query shape ---
    double positions_mu = 6.2;            ///< ln-median of positions per query (~490).
    double positions_sigma = 0.9;
    std::uint64_t min_positions = 16;
    std::uint64_t max_positions = 20000;
    double region_radius_mu = -2.4;       ///< ln-median region radius (~0.09 of domain).
    double region_radius_sigma = 0.4;
    double drift_scale = 48.0;            ///< Region drift per step, in units of flow displacement.
    double mean_think_time_s = 0.5;       ///< Gap after a predecessor's result (scripted clients).

    // --- spatial / temporal skew ---
    std::size_t hotspots = 4;             ///< Regions of interest shared by users.
    double hotspot_prob = 0.9;            ///< Job anchors on a hotspot vs uniform.
    double hot_step_weight = 3.2;        ///< Relative weight of the hot end-steps.
    std::size_t hot_steps_per_end = 6;    ///< Hot steps at each end of the range.
    double spike_weight = 4.0;            ///< Mid-range spike relative weight.
    double trend_slope = 0.5;             ///< Downward trend of the baseline weight.
};

/// Generate a workload against `grid`, drawing region drift from `field`.
/// Jobs come back sorted by arrival time with globally unique query IDs.
Workload generate_workload(const WorkloadSpec& spec, const field::GridSpec& grid,
                           const field::SyntheticField& field);

/// Populate explicit positions for every query so materialised runs produce
/// real interpolated samples: each footprint entry receives exactly its
/// `positions` count of uniform draws inside that atom's box, so the engine
/// regroups them onto the same atoms and the footprint — hence the entire
/// virtual trace — is unchanged by materialisation. Draws are seeded per
/// query id, independent of job order. Existing positions are replaced.
void materialize_positions(Workload& workload, const field::GridSpec& grid,
                           std::uint64_t seed = 7);

/// Reorder every query's materialised positions into Morton-blocked order:
/// primary key the Morton code of the owning atom, secondary key the Morton
/// code of the global voxel containing the position (stable for ties). This
/// is the traversal order the batched interpolation kernel uses internally
/// (field::BatchInterpolator), so pre-blocked queries hand the evaluation
/// path cache-friendly runs even before the kernel's own sort. Footprints
/// and the virtual trace are untouched (the positions are a permutation and
/// atom grouping is order-insensitive), but the engine folds samples in
/// position order, so sample digests differ from arrival-order runs: benches
/// and interactive exploration opt in; the golden fixtures do not.
void morton_block_positions(Workload& workload, const field::GridSpec& grid);

/// Rescale inter-job arrival gaps by 1/speedup (Fig. 11's saturation knob):
/// speedup 2 makes a job submitted 2 virtual minutes after its predecessor
/// arrive after 1. Think times inside jobs are unchanged.
void apply_speedup(Workload& workload, double speedup);

/// Per-time-step query counts (Fig. 9's characterisation).
std::vector<std::uint64_t> queries_per_timestep(const Workload& workload,
                                                std::uint32_t timesteps);

}  // namespace jaws::workload
