#include "workload/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/morton.h"
#include "util/rng.h"

namespace jaws::workload {

namespace {

using field::Vec3;

/// Weight of each time step for job placement, shaped per Fig. 9: hot
/// clusters at both ends, a mid-range spike (~0.25-0.4 of the range), and a
/// declining baseline.
std::vector<double> timestep_weights(const WorkloadSpec& spec, std::uint32_t timesteps) {
    std::vector<double> w(timesteps, 1.0);
    for (std::uint32_t t = 0; t < timesteps; ++t) {
        const double frac = timesteps > 1 ? static_cast<double>(t) / (timesteps - 1) : 0.0;
        w[t] = 1.0 - spec.trend_slope * frac;  // downward trend
        if (t < spec.hot_steps_per_end || t + spec.hot_steps_per_end >= timesteps)
            w[t] += spec.hot_step_weight;
        if (frac >= 0.28 && frac <= 0.42) w[t] += spec.spike_weight;  // mid spike
    }
    return w;
}

std::uint32_t sample_weighted(util::Rng& rng, const std::vector<double>& weights) {
    double total = 0.0;
    for (const double w : weights) total += w;
    double target = rng.uniform() * total;
    for (std::uint32_t i = 0; i < weights.size(); ++i) {
        target -= weights[i];
        if (target <= 0.0) return i;
    }
    return static_cast<std::uint32_t>(weights.size() - 1);
}

/// Compute the atom footprint of a spherical position cloud: atoms covering
/// the ball around `center` with radius `radius`, positions apportioned by a
/// Gaussian of the atom-centre distance. Footprint is Morton-sorted.
std::vector<AtomRequest> make_footprint(const field::GridSpec& grid, std::uint32_t timestep,
                                        const Vec3& center, double radius,
                                        std::uint64_t total_positions) {
    const std::uint32_t aps = grid.atoms_per_side();
    const double atom_extent = 1.0 / static_cast<double>(aps);
    // Atom-coordinate box covering the ball (with torus wrap).
    const auto lo_atom = [&](double c) {
        return static_cast<std::int64_t>(std::floor((c - radius) / atom_extent));
    };
    const auto hi_atom = [&](double c) {
        return static_cast<std::int64_t>(std::floor((c + radius) / atom_extent));
    };
    const double sigma = std::max(radius * 0.5, 1e-6);

    struct Weighted {
        std::uint64_t code;
        double weight;
    };
    std::vector<Weighted> atoms;
    for (std::int64_t az = lo_atom(center.z); az <= hi_atom(center.z); ++az) {
        for (std::int64_t ay = lo_atom(center.y); ay <= hi_atom(center.y); ++ay) {
            for (std::int64_t ax = lo_atom(center.x); ax <= hi_atom(center.x); ++ax) {
                // Distance from the cloud centre to this atom's centre,
                // shortest-image on the torus.
                const auto dist1 = [&](std::int64_t a, double c) {
                    const double ac = (static_cast<double>(a) + 0.5) * atom_extent;
                    double d = std::fabs(ac - c);
                    return std::min(d, 1.0 - d);
                };
                const double dx = dist1(ax, center.x), dy = dist1(ay, center.y),
                             dz = dist1(az, center.z);
                const double d2 = dx * dx + dy * dy + dz * dz;
                // Skip atoms well outside the ball (their weight is ~0).
                const double reach = radius + 0.87 * atom_extent;  // half diagonal
                if (d2 > reach * reach) continue;
                const double weight = std::exp(-d2 / (2.0 * sigma * sigma));
                const auto wrap = [&](std::int64_t a) {
                    const auto m = static_cast<std::int64_t>(aps);
                    return static_cast<std::uint32_t>(((a % m) + m) % m);
                };
                atoms.push_back({util::morton_encode(wrap(ax), wrap(ay), wrap(az)), weight});
            }
        }
    }
    if (atoms.empty()) {
        atoms.push_back({grid.atom_morton_of(center), 1.0});
    }
    // Wrapping can alias distinct box cells onto the same atom; merge them.
    std::sort(atoms.begin(), atoms.end(),
              [](const Weighted& a, const Weighted& b) { return a.code < b.code; });
    std::vector<Weighted> merged;
    for (const auto& a : atoms) {
        if (!merged.empty() && merged.back().code == a.code)
            merged.back().weight += a.weight;
        else
            merged.push_back(a);
    }

    double total_weight = 0.0;
    for (const auto& a : merged) total_weight += a.weight;
    std::vector<AtomRequest> out;
    out.reserve(merged.size());
    std::uint64_t assigned = 0;
    for (const auto& a : merged) {
        auto n = static_cast<std::uint64_t>(
            std::llround(static_cast<double>(total_positions) * a.weight / total_weight));
        if (n == 0) continue;
        n = std::min(n, total_positions - assigned);
        if (n == 0) break;
        out.push_back(AtomRequest{storage::AtomId{timestep, a.code}, n});
        assigned += n;
    }
    if (out.empty()) {
        out.push_back(AtomRequest{storage::AtomId{timestep, merged.front().code},
                                  std::max<std::uint64_t>(1, total_positions)});
        assigned = out.front().positions;
    } else if (assigned < total_positions) {
        out.front().positions += total_positions - assigned;  // rounding remainder
    }
    return out;
}

/// State shared while building one job's query sequence.
struct JobBuilder {
    const WorkloadSpec& spec;
    const field::GridSpec& grid;
    const field::SyntheticField& field;
    util::Rng& rng;
    QueryId& next_query_id;

    std::uint64_t positions_per_query() const {
        const double draw = rng.lognormal(spec.positions_mu, spec.positions_sigma);
        const auto n = static_cast<std::uint64_t>(draw);
        return std::clamp(n, spec.min_positions, spec.max_positions);
    }

    Query make_query(Job& job, std::uint32_t timestep, const Vec3& center, double radius,
                     storage::ComputeKind kind, util::SimTime think) {
        Query q;
        q.id = next_query_id++;
        q.job = job.id;
        q.seq_in_job = static_cast<std::uint32_t>(job.queries.size());
        q.user = job.user;
        q.timestep = timestep;
        q.kind = kind;
        q.order = rng.bernoulli(0.2) ? field::InterpOrder::kLag8 : field::InterpOrder::kLag4;
        q.think_time = think;
        q.footprint = make_footprint(grid, timestep, center, radius, positions_per_query());
        return q;
    }

    /// Drift the region centre with the flow at `timestep`, amplified by
    /// drift_scale so footprints move on atom scales.
    Vec3 drift(const Vec3& center, std::uint32_t timestep) const {
        const Vec3 v = field.velocity(center, grid.sim_time(timestep));
        const double dt = spec.drift_scale * grid.dt;
        return Vec3{field::wrap01(center.x + dt * v.x), field::wrap01(center.y + dt * v.y),
                    field::wrap01(center.z + dt * v.z)};
    }

    util::SimTime think() const {
        return util::SimTime::from_seconds(rng.exponential(spec.mean_think_time_s));
    }
};

}  // namespace

Workload generate_workload(const WorkloadSpec& spec, const field::GridSpec& grid,
                           const field::SyntheticField& field) {
    util::Rng rng(spec.seed);
    const std::uint32_t timesteps = grid.timesteps;
    const std::vector<double> step_weights = timestep_weights(spec, timesteps);

    // Shared regions of interest (turbulent structures users keep revisiting).
    std::vector<Vec3> hotspots;
    hotspots.reserve(spec.hotspots);
    for (std::size_t i = 0; i < spec.hotspots; ++i)
        hotspots.push_back(Vec3{rng.uniform(), rng.uniform(), rng.uniform()});

    Workload out;
    out.jobs.reserve(spec.jobs);
    QueryId next_query_id = 1;
    JobId next_job_id = 1;
    double now_s = 0.0;

    while (out.jobs.size() < spec.jobs) {
        // --- one burst: same user, same neighbourhood of interest ---
        now_s += rng.exponential(spec.mean_burst_gap_s);
        const auto burst_user = static_cast<UserId>(rng.zipf(spec.users, 1.1));
        const std::size_t burst_jobs = std::min(
            spec.jobs - out.jobs.size(), 1 + static_cast<std::size_t>(rng.poisson(
                                                 std::max(0.0, spec.mean_jobs_per_burst - 1))));
        const std::uint32_t burst_step = sample_weighted(rng, step_weights);
        const bool burst_on_hotspot = rng.bernoulli(spec.hotspot_prob);
        const Vec3 burst_center =
            burst_on_hotspot ? hotspots[rng.uniform_u64(hotspots.size())]
                             : Vec3{rng.uniform(), rng.uniform(), rng.uniform()};
        // A burst is one user's campaign: the same experiment re-run with
        // jittered inputs, so every job of the burst shares its shape. This
        // is what makes cross-job alignment (gating) worthwhile.
        const double burst_shape = rng.uniform();
        const bool burst_ordered_single = rng.bernoulli(spec.frac_ordered_single_step);
        const auto burst_span = static_cast<std::uint32_t>(std::min<std::int64_t>(
            timesteps, 2 + static_cast<std::int64_t>(rng.uniform_u64(9))));
        const auto burst_chain = std::max<std::uint64_t>(
            2, static_cast<std::uint64_t>(
                   rng.lognormal(spec.ordered_chain_mu, spec.ordered_chain_sigma)));

        double job_time_s = now_s;
        for (std::size_t b = 0; b < burst_jobs; ++b) {
            if (b > 0) job_time_s += rng.exponential(spec.mean_intra_burst_gap_s);

            Job job;
            job.id = next_job_id++;
            job.user = burst_user;
            job.arrival = util::SimTime::from_seconds(job_time_s);

            // Jitter the burst anchor a little per job so concurrent jobs
            // overlap heavily but not identically.
            const double radius =
                rng.lognormal(spec.region_radius_mu, spec.region_radius_sigma);
            Vec3 center{field::wrap01(burst_center.x + rng.normal(0.0, radius * 0.4)),
                        field::wrap01(burst_center.y + rng.normal(0.0, radius * 0.4)),
                        field::wrap01(burst_center.z + rng.normal(0.0, radius * 0.4))};

            JobBuilder builder{spec, grid, field, rng, next_query_id};
            const double shape = burst_shape;
            if (shape < spec.frac_full_span) {
                // Full-span ordered job: iterate over all steps, possibly in
                // several forward/backward passes, with per-step early
                // termination (the paper's downward access trend).
                job.type = JobType::kOrdered;
                const auto passes = std::max<std::uint64_t>(
                    1, rng.poisson(std::max(0.0, spec.mean_passes - 1)) + 1);
                std::uint32_t step = 0;
                int direction = 1;
                bool alive = true;
                for (std::uint64_t pass = 0; pass < passes && alive; ++pass) {
                    for (std::uint32_t i = 0; i < timesteps && alive; ++i) {
                        job.queries.push_back(builder.make_query(
                            job, step, center, radius, storage::ComputeKind::kVelocity,
                            job.queries.empty() ? util::SimTime::zero() : builder.think()));
                        center = builder.drift(center, step);
                        if (!rng.bernoulli(spec.full_span_survival)) alive = false;
                        if (i + 1 < timesteps)
                            step = static_cast<std::uint32_t>(
                                static_cast<std::int64_t>(step) + direction);
                    }
                    direction = -direction;  // track backwards on the next pass
                }
            } else if (shape < spec.frac_full_span + (1.0 - spec.frac_single_step -
                                                      spec.frac_full_span)) {
                // Mid-range ordered job over a contiguous handful of steps.
                job.type = JobType::kOrdered;
                const std::uint32_t span = burst_span;
                std::uint32_t step = std::min(burst_step, timesteps - span);
                for (std::uint32_t i = 0; i < span; ++i) {
                    job.queries.push_back(builder.make_query(
                        job, step + i, center, radius, storage::ComputeKind::kVelocity,
                        job.queries.empty() ? util::SimTime::zero() : builder.think()));
                    center = builder.drift(center, step + i);
                }
            } else if (burst_ordered_single) {
                // Single-step ordered chain: iterative refinement where each
                // query's region comes from the previous result.
                job.type = JobType::kOrdered;
                const std::uint64_t n = burst_chain;
                for (std::uint64_t i = 0; i < n; ++i) {
                    job.queries.push_back(builder.make_query(
                        job, burst_step, center, radius, storage::ComputeKind::kVelocity,
                        job.queries.empty() ? util::SimTime::zero() : builder.think()));
                    center = builder.drift(center, burst_step);
                }
            } else {
                // Single-step batched job: independent statistics queries over
                // (near-)static regions, all submitted together.
                job.type = JobType::kBatched;
                const auto n = std::max<std::uint64_t>(
                    1, static_cast<std::uint64_t>(
                           rng.lognormal(spec.batched_queries_mu, spec.batched_queries_sigma)));
                for (std::uint64_t i = 0; i < n; ++i) {
                    const Vec3 jitter{field::wrap01(center.x + rng.normal(0.0, radius * 0.3)),
                                      field::wrap01(center.y + rng.normal(0.0, radius * 0.3)),
                                      field::wrap01(center.z + rng.normal(0.0, radius * 0.3))};
                    job.queries.push_back(builder.make_query(
                        job, burst_step, jitter, radius, storage::ComputeKind::kFlowStats,
                        util::SimTime::from_seconds(rng.uniform(0.0, 1.0))));
                }
            }
            out.jobs.push_back(std::move(job));
        }
        // Bursts overlap: intra-burst staggers do not advance the global
        // clock, only the inter-burst gap does.
    }

    std::sort(out.jobs.begin(), out.jobs.end(),
              [](const Job& a, const Job& b) { return a.arrival < b.arrival; });
    return out;
}

void materialize_positions(Workload& workload, const field::GridSpec& grid,
                           std::uint64_t seed) {
    const double atom_extent = 1.0 / static_cast<double>(grid.atoms_per_side());
    for (Job& job : workload.jobs) {
        for (Query& q : job.queries) {
            // Per-query stream: materialisation is stable under job
            // reordering, partitioning and re-runs.
            util::Rng rng(seed ^ (q.id * 0x9E3779B97F4A7C15ULL));
            q.positions.clear();
            q.positions.reserve(q.total_positions());
            for (const AtomRequest& req : q.footprint) {
                const util::Coord3 c = util::morton_decode(req.atom.morton);
                for (std::uint64_t i = 0; i < req.positions; ++i)
                    q.positions.push_back(Vec3{
                        (static_cast<double>(c.x) + rng.uniform()) * atom_extent,
                        (static_cast<double>(c.y) + rng.uniform()) * atom_extent,
                        (static_cast<double>(c.z) + rng.uniform()) * atom_extent});
            }
        }
    }
}

void morton_block_positions(Workload& workload, const field::GridSpec& grid) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> keyed;  // (atom, voxel) Morton
    std::vector<std::uint32_t> order;
    std::vector<Vec3> blocked;
    for (Job& job : workload.jobs) {
        for (Query& q : job.queries) {
            const std::size_t n = q.positions.size();
            keyed.resize(n);
            order.resize(n);
            for (std::size_t i = 0; i < n; ++i) {
                keyed[i] = {grid.atom_morton_of(q.positions[i]),
                            util::morton_encode(grid.voxel_of(q.positions[i]))};
                order[i] = static_cast<std::uint32_t>(i);
            }
            std::sort(order.begin(), order.end(),
                      [&keyed](std::uint32_t a, std::uint32_t b) {
                          return keyed[a] != keyed[b] ? keyed[a] < keyed[b] : a < b;
                      });
            blocked.resize(n);
            for (std::size_t i = 0; i < n; ++i) blocked[i] = q.positions[order[i]];
            q.positions.swap(blocked);
        }
    }
}

void apply_speedup(Workload& workload, double speedup) {
    if (!(speedup > 0.0))
        throw std::invalid_argument("apply_speedup: speedup must be positive, got " +
                                    std::to_string(speedup));
    if (workload.jobs.empty()) return;
    util::SimTime prev_orig = workload.jobs.front().arrival;
    util::SimTime prev_new = workload.jobs.front().arrival;
    for (std::size_t i = 1; i < workload.jobs.size(); ++i) {
        const util::SimTime orig = workload.jobs[i].arrival;
        const auto gap = static_cast<double>((orig - prev_orig).raw_micros()) / speedup;
        prev_new = prev_new + util::SimTime::from_micros(static_cast<std::int64_t>(gap));
        prev_orig = orig;
        workload.jobs[i].arrival = prev_new;
    }
}

std::vector<std::uint64_t> queries_per_timestep(const Workload& workload,
                                                std::uint32_t timesteps) {
    std::vector<std::uint64_t> counts(timesteps, 0);
    for (const auto& job : workload.jobs)
        for (const auto& q : job.queries)
            if (q.timestep < timesteps) ++counts[q.timestep];
    return counts;
}

}  // namespace jaws::workload
