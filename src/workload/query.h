// Queries.
//
// A Turbulence query supplies a list of positions within one time step and an
// operation to evaluate at each (paper Sec. III-A/B). For scheduling, all
// that matters is the query's *atom footprint* — which atoms it touches and
// how many positions fall in each — so queries carry that footprint directly;
// explicit positions are optional and only populated for the example programs
// that compute real values. The pre-processor (sched module) turns footprints
// into sub-queries.
#pragma once

#include <cstdint>
#include <vector>

#include "field/interpolation.h"
#include "field/synthetic_field.h"
#include "storage/atom.h"
#include "storage/database_node.h"
#include "util/sim_time.h"

namespace jaws::workload {

using QueryId = std::uint64_t;
using JobId = std::uint64_t;
using UserId = std::uint32_t;

/// Sentinel for "not part of any job".
inline constexpr JobId kNoJob = ~JobId{0};

/// One atom touched by a query, with the number of query positions inside it.
struct AtomRequest {
    storage::AtomId atom;
    std::uint64_t positions = 0;
};

/// A single query: positions in one time step evaluated with one operation.
struct Query {
    QueryId id = 0;
    JobId job = kNoJob;
    std::uint32_t seq_in_job = 0;  ///< Position within the job's sequence.
    UserId user = 0;
    std::uint32_t timestep = 0;
    storage::ComputeKind kind = storage::ComputeKind::kVelocity;
    field::InterpOrder order = field::InterpOrder::kLag4;

    /// Virtual gap between the predecessor query's completion and this
    /// query's submission (user think time). The first query of a job uses
    /// the job's arrival time instead.
    util::SimTime think_time;

    /// Atoms touched, with per-atom position counts. Morton-sorted per
    /// time step by the generator.
    std::vector<AtomRequest> footprint;

    /// Optional explicit positions (example programs only).
    std::vector<field::Vec3> positions;

    /// Total positions across the footprint.
    std::uint64_t total_positions() const noexcept {
        std::uint64_t n = 0;
        for (const auto& r : footprint) n += r.positions;
        return n;
    }
};

}  // namespace jaws::workload
