// Flattened query traces.
//
// The production system logs every query with its user, operation, time step
// and wall-clock submission time; the paper's workload analysis (Figs. 8-9)
// and its job-identification heuristics (Sec. IV-A) both operate on that SQL
// log. This module flattens a generated Workload into per-query records with
// nominal submission timestamps (arrival + accumulated think/execution
// estimates), and round-trips records through CSV so traces can be saved,
// inspected and replayed.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "workload/job.h"

namespace jaws::workload {

/// One row of the flattened query log.
struct TraceRecord {
    QueryId query = 0;
    JobId true_job = kNoJob;     ///< Ground-truth job (hidden from identification).
    std::uint32_t seq_in_job = 0;
    UserId user = 0;
    JobType job_type = JobType::kOrdered;
    std::uint32_t timestep = 0;
    storage::ComputeKind kind = storage::ComputeKind::kVelocity;
    std::uint64_t positions = 0;
    std::uint32_t atoms = 0;     ///< Footprint size in atoms.
    util::SimTime submit;        ///< Nominal wall-clock submission time.
};

/// Cost estimate used to synthesise nominal submission times: each query is
/// assumed to take atoms * t_b_ms + positions * t_m_us before the user's
/// think time elapses and the next query of the job is submitted.
struct NominalCost {
    double t_b_ms = 25.0;
    double t_m_us = 5.0;
};

/// Flatten `workload` into submission-time-ordered records.
std::vector<TraceRecord> flatten(const Workload& workload, const NominalCost& cost = {});

/// Format records as CSV text (header + one row per record) — the exact
/// bytes save_csv writes, exposed so parse_csv round-trips can be checked
/// without touching the filesystem.
std::string to_csv(const std::vector<TraceRecord>& records);

/// Write records as CSV (header + one row per record).
void save_csv(const std::string& path, const std::vector<TraceRecord>& records);

/// Parse CSV trace text (header line + one row per record). The strict
/// counterpart of save_csv: every row must carry exactly the ten numeric
/// fields, each fully consumed by an in-range integer parse, and the two
/// enum columns (job_type, kind) must name declared enumerators — a trace
/// is an *input* in the production framing, so malformed bytes must be
/// rejected with std::runtime_error (never UB, never a silently truncated
/// or enum-invalid record). Fuzzed directly by fuzz/fuzz_trace.cpp.
std::vector<TraceRecord> parse_csv(std::string_view text);

/// Read records back from CSV; throws std::runtime_error on malformed input
/// (parse_csv semantics) or an unreadable file.
std::vector<TraceRecord> load_csv(const std::string& path);

}  // namespace jaws::workload
