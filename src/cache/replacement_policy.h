// Replacement-policy interface and the scheduler-knowledge oracle.
//
// JAWS manages a 2 GB atom cache externally from the database (paper Sec. VI)
// and studies three policies: the LRU-K baseline (what SQL Server uses),
// SLRU, and URC. URC "coordinates caching decisions with scheduling" — it
// needs the scheduler's workload-throughput ranking, which it obtains through
// the UtilityOracle interface implemented by the workload manager. Keeping
// the oracle abstract lets the cache library stay independent of any specific
// scheduler.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/atom.h"

namespace jaws::cache {

/// Read-only view of the scheduler's contention state, consumed by URC.
class UtilityOracle {
  public:
    virtual ~UtilityOracle() = default;

    /// Workload-throughput metric U_t of `atom` (Eq. 1); 0 when no requests
    /// are pending against it.
    virtual double atom_utility(const storage::AtomId& atom) const = 0;

    /// Mean U_t over all atoms of time step `t` that have pending work.
    virtual double timestep_mean_utility(std::uint32_t t) const = 0;
};

/// Eviction-ordering strategy plugged into BufferCache. The cache owns
/// membership; the policy only orders it. All hooks refer to resident atoms.
class ReplacementPolicy {
  public:
    virtual ~ReplacementPolicy() = default;

    /// A new atom became resident.
    virtual void on_insert(const storage::AtomId& atom) = 0;

    /// A resident atom was accessed (cache hit).
    virtual void on_access(const storage::AtomId& atom) = 0;

    /// Choose the resident atom to evict. Called only when non-empty.
    virtual storage::AtomId pick_victim() = 0;

    /// The atom chosen by pick_victim() (or invalidated externally) left the
    /// cache; forget its residency state.
    virtual void on_evict(const storage::AtomId& atom) = 0;

    /// End of one workload run (r consecutive queries). SLRU performs its
    /// protected-segment promotion here; others ignore it.
    virtual void on_run_boundary() {}

    /// Self-check against the cache's ground truth (audit builds and tests):
    /// `resident` is the cache's resident set in sorted order; the policy
    /// verifies its own bookkeeping tracks exactly that set and its internal
    /// structures are mutually consistent, reporting inconsistencies through
    /// util::contract_violation. Returns true when clean.
    virtual bool audit(const std::vector<storage::AtomId>& resident) const {
        (void)resident;
        return true;
    }

    /// Human-readable policy name for reports.
    virtual std::string name() const = 0;
};

}  // namespace jaws::cache
