#include "cache/lru.h"

#include <cassert>

namespace jaws::cache {

void LruPolicy::on_insert(const storage::AtomId& atom) {
    assert(!where_.contains(atom));
    order_.push_front(atom);
    where_[atom] = order_.begin();
}

void LruPolicy::on_access(const storage::AtomId& atom) {
    const auto it = where_.find(atom);
    assert(it != where_.end());
    order_.splice(order_.begin(), order_, it->second);
}

storage::AtomId LruPolicy::pick_victim() {
    assert(!order_.empty());
    return order_.back();
}

void LruPolicy::on_evict(const storage::AtomId& atom) {
    const auto it = where_.find(atom);
    assert(it != where_.end());
    order_.erase(it->second);
    where_.erase(it);
}

}  // namespace jaws::cache
