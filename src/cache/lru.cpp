#include "cache/lru.h"

#include <algorithm>
#include <cassert>

#include "util/contracts.h"

namespace jaws::cache {

void LruPolicy::on_insert(const storage::AtomId& atom) {
    assert(!where_.contains(atom));
    order_.push_front(atom);
    where_[atom] = order_.begin();
}

void LruPolicy::on_access(const storage::AtomId& atom) {
    const auto it = where_.find(atom);
    assert(it != where_.end());
    order_.splice(order_.begin(), order_, it->second);
}

storage::AtomId LruPolicy::pick_victim() {
    assert(!order_.empty());
    return order_.back();
}

void LruPolicy::on_evict(const storage::AtomId& atom) {
    const auto it = where_.find(atom);
    assert(it != where_.end());
    order_.erase(it->second);
    where_.erase(it);
}

bool LruPolicy::audit(const std::vector<storage::AtomId>& resident) const {
    bool ok = true;
    const auto check = [&](bool cond, const char* expr, const char* msg) {
        if (!cond) {
            ok = false;
            util::contract_violation(__FILE__, __LINE__, expr, msg);
        }
        return cond;
    };
    check(where_.size() == resident.size() && order_.size() == resident.size(),
          "LRU tracks exactly the resident set",
          "LruPolicy: tracked size diverged from the cache's resident set");
    for (auto it = order_.begin(); it != order_.end(); ++it) {
        const auto slot = where_.find(*it);
        check(slot != where_.end() && slot->second == it,
              "where_[atom] points at its order_ node",
              "LruPolicy: recency-list node unlinked from the index");
        check(std::binary_search(resident.begin(), resident.end(), *it),
              "order_ member is resident",
              "LruPolicy: tracking an atom the cache does not hold");
    }
    return ok;
}

}  // namespace jaws::cache
