#include "cache/buffer_cache.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

#include "util/contracts.h"

namespace jaws::cache {

namespace {
/// RAII timer adding elapsed ticks to a counter on destruction. With no
/// tick source installed it charges exactly one virtual tick per timed
/// section, keeping overhead accounting deterministic.
class OverheadTimer {
  public:
    OverheadTimer(std::uint64_t& sink, TickSource ticks) noexcept
        : sink_(sink), ticks_(ticks), start_(ticks != nullptr ? ticks() : 0) {}
    ~OverheadTimer() { sink_ += ticks_ != nullptr ? ticks_() - start_ : 1; }

    OverheadTimer(const OverheadTimer&) = delete;
    OverheadTimer& operator=(const OverheadTimer&) = delete;

  private:
    std::uint64_t& sink_;
    TickSource ticks_;
    std::uint64_t start_;
};
}  // namespace

BufferCache::BufferCache(std::size_t capacity_atoms,
                         std::unique_ptr<ReplacementPolicy> policy)
    : capacity_(capacity_atoms == 0 ? 1 : capacity_atoms), policy_(std::move(policy)) {
    assert(policy_ != nullptr);
}

bool BufferCache::lookup(const storage::AtomId& atom) {
    const auto it = resident_.find(atom);
    if (it == resident_.end()) {
        ++stats_.misses;
        return false;
    }
    ++stats_.hits;
    OverheadTimer timer(stats_.policy_overhead_ns, ticks_);
    policy_->on_access(atom);
    return true;
}

std::optional<storage::AtomId> BufferCache::insert(
    const storage::AtomId& atom, std::shared_ptr<const field::VoxelBlock> payload) {
    const auto it = resident_.find(atom);
    if (it != resident_.end()) {
        if (payload != nullptr) it->second = std::move(payload);
        return std::nullopt;
    }
    std::optional<storage::AtomId> evicted;
    if (resident_.size() >= capacity_) {
        OverheadTimer timer(stats_.policy_overhead_ns, ticks_);
        const storage::AtomId victim = policy_->pick_victim();
        policy_->on_evict(victim);
        const auto erased = resident_.erase(victim);
        assert(erased == 1);
        (void)erased;
        ++stats_.evictions;
        ++evicted_;
        evicted = victim;
    }
    resident_.emplace(atom, std::move(payload));
    ++admitted_;
    {
        OverheadTimer timer(stats_.policy_overhead_ns, ticks_);
        policy_->on_insert(atom);
    }
    JAWS_AUDIT((++audit_tick_ & 63) == 0 && audit());
    return evicted;
}

bool BufferCache::contains(const storage::AtomId& atom) const {
    return resident_.contains(atom);
}

std::shared_ptr<const field::VoxelBlock> BufferCache::payload(
    const storage::AtomId& atom) const {
    const auto it = resident_.find(atom);
    return it == resident_.end() ? nullptr : it->second;
}

void BufferCache::run_boundary() {
    OverheadTimer timer(stats_.policy_overhead_ns, ticks_);
    policy_->on_run_boundary();
}

std::vector<storage::AtomId> BufferCache::sorted_residents() const {
    std::vector<storage::AtomId> atoms;
    atoms.reserve(resident_.size());
    // jaws-lint: allow(unordered-iteration) -- order normalised by the sort below.
    for (const auto& [atom, payload] : resident_) atoms.push_back(atom);
    std::sort(atoms.begin(), atoms.end());
    return atoms;
}

void BufferCache::clear() {
    // Notify the policy in key order, not hash order: eviction callbacks
    // mutate policy state (e.g. LRU-K's retained-history FIFO), so the
    // notification order must not depend on the hash table's layout.
    for (const storage::AtomId& atom : sorted_residents()) policy_->on_evict(atom);
    cleared_ += resident_.size();
    resident_.clear();
    JAWS_AUDIT(audit());
}

bool BufferCache::audit() const {
    bool ok = true;
    const auto check = [&](bool cond, const char* expr, const char* msg) {
        if (!cond) {
            ok = false;
            util::contract_violation(__FILE__, __LINE__, expr, msg);
        }
    };
    check(resident_.size() <= capacity_, "size() <= capacity()",
          "BufferCache: resident set exceeds capacity");
    // Atom conservation: everything ever admitted is evicted, cleared, or
    // still resident — nothing is lost and nothing double-counted.
    check(admitted_ == evicted_ + cleared_ + resident_.size(),
          "admitted == evicted + cleared + resident",
          "BufferCache: atom conservation violated");
    // An eviction happens only on the miss path, after a failed lookup or a
    // direct insert; admissions can never outnumber misses plus direct
    // inserts, and evictions can never outnumber admissions.
    check(evicted_ <= admitted_, "evicted <= admitted",
          "BufferCache: more evictions than admissions");
    const std::vector<storage::AtomId> atoms = sorted_residents();
    check(policy_->audit(atoms), "policy_->audit(resident)",
          "BufferCache: replacement-policy state diverged from residency");
    return ok;
}

}  // namespace jaws::cache
