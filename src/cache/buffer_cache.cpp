#include "cache/buffer_cache.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

namespace jaws::cache {

namespace {
/// RAII timer adding elapsed ticks to a counter on destruction. With no
/// tick source installed it charges exactly one virtual tick per timed
/// section, keeping overhead accounting deterministic.
class OverheadTimer {
  public:
    OverheadTimer(std::uint64_t& sink, TickSource ticks) noexcept
        : sink_(sink), ticks_(ticks), start_(ticks != nullptr ? ticks() : 0) {}
    ~OverheadTimer() { sink_ += ticks_ != nullptr ? ticks_() - start_ : 1; }

    OverheadTimer(const OverheadTimer&) = delete;
    OverheadTimer& operator=(const OverheadTimer&) = delete;

  private:
    std::uint64_t& sink_;
    TickSource ticks_;
    std::uint64_t start_;
};
}  // namespace

BufferCache::BufferCache(std::size_t capacity_atoms,
                         std::unique_ptr<ReplacementPolicy> policy)
    : capacity_(capacity_atoms == 0 ? 1 : capacity_atoms), policy_(std::move(policy)) {
    assert(policy_ != nullptr);
}

bool BufferCache::lookup(const storage::AtomId& atom) {
    const auto it = resident_.find(atom);
    if (it == resident_.end()) {
        ++stats_.misses;
        return false;
    }
    ++stats_.hits;
    OverheadTimer timer(stats_.policy_overhead_ns, ticks_);
    policy_->on_access(atom);
    return true;
}

std::optional<storage::AtomId> BufferCache::insert(
    const storage::AtomId& atom, std::shared_ptr<const field::VoxelBlock> payload) {
    const auto it = resident_.find(atom);
    if (it != resident_.end()) {
        if (payload != nullptr) it->second = std::move(payload);
        return std::nullopt;
    }
    std::optional<storage::AtomId> evicted;
    if (resident_.size() >= capacity_) {
        OverheadTimer timer(stats_.policy_overhead_ns, ticks_);
        const storage::AtomId victim = policy_->pick_victim();
        policy_->on_evict(victim);
        const auto erased = resident_.erase(victim);
        assert(erased == 1);
        (void)erased;
        ++stats_.evictions;
        evicted = victim;
    }
    resident_.emplace(atom, std::move(payload));
    OverheadTimer timer(stats_.policy_overhead_ns, ticks_);
    policy_->on_insert(atom);
    return evicted;
}

bool BufferCache::contains(const storage::AtomId& atom) const {
    return resident_.contains(atom);
}

std::shared_ptr<const field::VoxelBlock> BufferCache::payload(
    const storage::AtomId& atom) const {
    const auto it = resident_.find(atom);
    return it == resident_.end() ? nullptr : it->second;
}

void BufferCache::run_boundary() {
    OverheadTimer timer(stats_.policy_overhead_ns, ticks_);
    policy_->on_run_boundary();
}

void BufferCache::clear() {
    // Notify the policy in key order, not hash order: eviction callbacks
    // mutate policy state (e.g. LRU-K's retained-history FIFO), so the
    // notification order must not depend on the hash table's layout.
    std::vector<storage::AtomId> atoms;
    atoms.reserve(resident_.size());
    // jaws-lint: allow(unordered-iteration) -- order normalised by the sort below.
    for (const auto& [atom, payload] : resident_) atoms.push_back(atom);
    std::sort(atoms.begin(), atoms.end());
    for (const storage::AtomId& atom : atoms) policy_->on_evict(atom);
    resident_.clear();
}

}  // namespace jaws::cache
