#include "cache/buffer_cache.h"

#include <cassert>
#include <chrono>
#include <utility>

namespace jaws::cache {

namespace {
/// RAII timer adding elapsed wall nanoseconds to a counter on destruction.
class OverheadTimer {
  public:
    explicit OverheadTimer(std::uint64_t& sink) noexcept
        : sink_(sink), start_(std::chrono::steady_clock::now()) {}
    ~OverheadTimer() {
        sink_ += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start_)
                .count());
    }

  private:
    std::uint64_t& sink_;
    std::chrono::steady_clock::time_point start_;
};
}  // namespace

BufferCache::BufferCache(std::size_t capacity_atoms,
                         std::unique_ptr<ReplacementPolicy> policy)
    : capacity_(capacity_atoms == 0 ? 1 : capacity_atoms), policy_(std::move(policy)) {
    assert(policy_ != nullptr);
}

bool BufferCache::lookup(const storage::AtomId& atom) {
    const auto it = resident_.find(atom);
    if (it == resident_.end()) {
        ++stats_.misses;
        return false;
    }
    ++stats_.hits;
    OverheadTimer timer(stats_.policy_overhead_ns);
    policy_->on_access(atom);
    return true;
}

std::optional<storage::AtomId> BufferCache::insert(
    const storage::AtomId& atom, std::shared_ptr<const field::VoxelBlock> payload) {
    const auto it = resident_.find(atom);
    if (it != resident_.end()) {
        if (payload != nullptr) it->second = std::move(payload);
        return std::nullopt;
    }
    std::optional<storage::AtomId> evicted;
    if (resident_.size() >= capacity_) {
        OverheadTimer timer(stats_.policy_overhead_ns);
        const storage::AtomId victim = policy_->pick_victim();
        policy_->on_evict(victim);
        const auto erased = resident_.erase(victim);
        assert(erased == 1);
        (void)erased;
        ++stats_.evictions;
        evicted = victim;
    }
    resident_.emplace(atom, std::move(payload));
    OverheadTimer timer(stats_.policy_overhead_ns);
    policy_->on_insert(atom);
    return evicted;
}

bool BufferCache::contains(const storage::AtomId& atom) const {
    return resident_.contains(atom);
}

std::shared_ptr<const field::VoxelBlock> BufferCache::payload(
    const storage::AtomId& atom) const {
    const auto it = resident_.find(atom);
    return it == resident_.end() ? nullptr : it->second;
}

void BufferCache::run_boundary() {
    OverheadTimer timer(stats_.policy_overhead_ns);
    policy_->on_run_boundary();
}

void BufferCache::clear() {
    for (const auto& [atom, payload] : resident_) policy_->on_evict(atom);
    resident_.clear();
}

}  // namespace jaws::cache
