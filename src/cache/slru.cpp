#include "cache/slru.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "util/contracts.h"

namespace jaws::cache {

SlruPolicy::SlruPolicy(std::size_t capacity_atoms, double protected_fraction)
    : protected_cap_(std::max<std::size_t>(
          1, static_cast<std::size_t>(static_cast<double>(capacity_atoms) *
                                      protected_fraction))) {}

void SlruPolicy::on_insert(const storage::AtomId& atom) {
    assert(!slots_.contains(atom));
    probationary_.push_front(atom);
    slots_[atom] = Slot{probationary_.begin(), false, 1};
}

void SlruPolicy::on_access(const storage::AtomId& atom) {
    const auto it = slots_.find(atom);
    assert(it != slots_.end());
    Slot& slot = it->second;
    ++slot.run_accesses;
    auto& segment = slot.is_protected ? protected_ : probationary_;
    segment.splice(segment.begin(), segment, slot.where);
}

storage::AtomId SlruPolicy::pick_victim() {
    // Victims come from the probationary segment's LRU end; the protected
    // segment is only raided when nothing is on probation.
    if (!probationary_.empty()) return probationary_.back();
    assert(!protected_.empty());
    return protected_.back();
}

void SlruPolicy::on_evict(const storage::AtomId& atom) {
    const auto it = slots_.find(atom);
    assert(it != slots_.end());
    auto& segment = it->second.is_protected ? protected_ : probationary_;
    segment.erase(it->second.where);
    slots_.erase(it);
}

void SlruPolicy::demote_to_probationary_mru(const storage::AtomId& atom) {
    Slot& slot = slots_.at(atom);
    assert(slot.is_protected);
    protected_.erase(slot.where);
    probationary_.push_front(atom);
    slot.where = probationary_.begin();
    slot.is_protected = false;
}

void SlruPolicy::on_run_boundary() {
    // Promote the most frequently accessed atoms of the finished run into the
    // protected segment (paper: "at the end of each run of the workload, SLRU
    // promotes the most frequently accessed atoms").
    std::vector<std::pair<std::uint64_t, storage::AtomId>> ranked;
    ranked.reserve(slots_.size());
    // jaws-lint: allow(unordered-iteration) -- the sort below imposes a total
    // order (count desc, atom id asc), so hash layout cannot leak into the
    // promotion cutoff.
    for (const auto& [atom, slot] : slots_)
        if (slot.run_accesses > 0) ranked.emplace_back(slot.run_accesses, atom);
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return a.second < b.second;  // break count ties deterministically
    });

    const std::size_t take = std::min(protected_cap_, ranked.size());
    // Demote current protected members not re-promoted this run.
    std::vector<storage::AtomId> keep;
    keep.reserve(take);
    for (std::size_t i = 0; i < take; ++i) keep.push_back(ranked[i].second);

    std::vector<storage::AtomId> to_demote;
    for (const auto& atom : protected_)
        if (std::find(keep.begin(), keep.end(), atom) == keep.end())
            to_demote.push_back(atom);
    for (const auto& atom : to_demote) demote_to_probationary_mru(atom);

    // Promote the winners (most frequent ends up at the protected MRU end).
    for (std::size_t i = take; i-- > 0;) {
        const storage::AtomId atom = ranked[i].second;
        Slot& slot = slots_.at(atom);
        if (slot.is_protected) {
            protected_.splice(protected_.begin(), protected_, slot.where);
        } else {
            probationary_.erase(slot.where);
            protected_.push_front(atom);
            slot.where = protected_.begin();
            slot.is_protected = true;
        }
    }
    // jaws-lint: allow(unordered-iteration) -- order-insensitive reset.
    for (auto& [atom, slot] : slots_) slot.run_accesses = 0;
}

bool SlruPolicy::audit(const std::vector<storage::AtomId>& resident) const {
    bool ok = true;
    const auto check = [&](bool cond, const char* expr, const char* msg) {
        if (!cond) {
            ok = false;
            util::contract_violation(__FILE__, __LINE__, expr, msg);
        }
        return cond;
    };
    check(slots_.size() == resident.size() &&
              probationary_.size() + protected_.size() == resident.size(),
          "segments partition the resident set",
          "SlruPolicy: segment sizes diverged from the cache's resident set");
    check(protected_.size() <= protected_cap_, "|protected| <= protected_cap",
          "SlruPolicy: protected segment over capacity");
    const auto walk = [&](const std::list<storage::AtomId>& segment, bool is_protected) {
        for (auto it = segment.begin(); it != segment.end(); ++it) {
            const auto slot = slots_.find(*it);
            const bool linked = slot != slots_.end() &&
                                slot->second.is_protected == is_protected &&
                                slot->second.where == it;
            check(linked, "slot matches its segment node",
                  "SlruPolicy: segment node unlinked from the slot index");
            check(std::binary_search(resident.begin(), resident.end(), *it),
                  "segment member is resident",
                  "SlruPolicy: tracking an atom the cache does not hold");
        }
    };
    walk(probationary_, false);
    walk(protected_, true);
    return ok;
}

}  // namespace jaws::cache
