// Segmented LRU (paper Sec. V-B variant).
//
// The cache is split into a probationary segment and a small protected
// segment (5–10 % of capacity). Both segments are recency-ordered. Unlike
// textbook SLRU, the paper's variant promotes at *run boundaries*: at the end
// of each run of the workload the most frequently accessed atoms move into
// the protected segment, and atoms squeezed out of it re-enter the
// probationary segment at its MRU end. Frequently re-queried regions of
// interest (e.g. highly strained turbulent structures) thus survive one-shot
// scans of a whole time step. Overhead is near zero because promotion happens
// once per run.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "cache/replacement_policy.h"

namespace jaws::cache {

/// SLRU with run-boundary promotion by access frequency.
class SlruPolicy final : public ReplacementPolicy {
  public:
    /// `capacity_atoms` is the cache capacity this policy serves (needed to
    /// size the protected segment); `protected_fraction` defaults to the 5 %
    /// used in the paper's Table I.
    explicit SlruPolicy(std::size_t capacity_atoms, double protected_fraction = 0.05);

    void on_insert(const storage::AtomId& atom) override;
    void on_access(const storage::AtomId& atom) override;
    storage::AtomId pick_victim() override;
    void on_evict(const storage::AtomId& atom) override;
    void on_run_boundary() override;
    std::string name() const override { return "SLRU"; }
    bool audit(const std::vector<storage::AtomId>& resident) const override;

    /// Number of atoms currently in the protected segment (for tests).
    std::size_t protected_size() const noexcept { return protected_.size(); }

  private:
    struct Slot {
        std::list<storage::AtomId>::iterator where;
        bool is_protected = false;
        std::uint64_t run_accesses = 0;
    };

    void demote_to_probationary_mru(const storage::AtomId& atom);

    std::size_t protected_cap_;
    // Front = MRU.
    std::list<storage::AtomId> probationary_;
    std::list<storage::AtomId> protected_;
    std::unordered_map<storage::AtomId, Slot, storage::AtomIdHash> slots_;
};

}  // namespace jaws::cache
