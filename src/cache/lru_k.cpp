#include "cache/lru_k.h"

#include <cassert>
#include <limits>

#include "util/contracts.h"

namespace jaws::cache {

LruKPolicy::LruKPolicy(unsigned k, std::size_t retained_history)
    : k_(k == 0 ? 1 : k), retained_cap_(retained_history) {}

void LruKPolicy::touch(const storage::AtomId& atom) {
    History& h = history_[atom];
    h.refs.push_front(++tick_);
    while (h.refs.size() > k_) h.refs.pop_back();
}

std::uint64_t LruKPolicy::kth_ref(const History& h) const noexcept {
    return h.refs.size() < k_ ? 0 : h.refs.back();
}

void LruKPolicy::on_insert(const storage::AtomId& atom) {
    assert(!resident_.contains(atom));
    resident_.insert(atom);
    touch(atom);
}

void LruKPolicy::on_access(const storage::AtomId& atom) {
    assert(resident_.contains(atom));
    touch(atom);
}

storage::AtomId LruKPolicy::pick_victim() {
    assert(!resident_.empty());
    // Evict the resident atom with the oldest (smallest) K-th reference;
    // atoms with fewer than K references (kth_ref == 0) are preferred, with
    // the least recent first reference breaking ties.
    const storage::AtomId* victim = nullptr;
    std::uint64_t best_k = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t best_recent = std::numeric_limits<std::uint64_t>::max();
    // jaws-lint: allow(unordered-iteration) -- the minimised key
    // (kth_ref, recent, atom id) is a strict total order over residents
    // (recency ticks are unique), so the scan's result is independent of
    // the hash table's iteration order.
    for (const auto& atom : resident_) {
        const History& h = history_.at(atom);
        const std::uint64_t kd = kth_ref(h);
        const std::uint64_t recent = h.refs.front();
        const bool better =
            victim == nullptr || kd < best_k ||
            (kd == best_k &&
             (recent < best_recent || (recent == best_recent && atom < *victim)));
        if (better) {
            best_k = kd;
            best_recent = recent;
            victim = &atom;
        }
    }
    return *victim;
}

void LruKPolicy::on_evict(const storage::AtomId& atom) {
    const auto erased = resident_.erase(atom);
    assert(erased == 1);
    (void)erased;
    // Retain the history per LRU-K so a quick re-admission keeps its rank,
    // but bound the table.
    retained_fifo_.push_back(atom);
    while (retained_fifo_.size() > retained_cap_) {
        const storage::AtomId old = retained_fifo_.front();
        retained_fifo_.pop_front();
        if (!resident_.contains(old)) history_.erase(old);
    }
}

bool LruKPolicy::audit(const std::vector<storage::AtomId>& resident) const {
    bool ok = true;
    const auto check = [&](bool cond, const char* expr, const char* msg) {
        if (!cond) {
            ok = false;
            util::contract_violation(__FILE__, __LINE__, expr, msg);
        }
        return cond;
    };
    check(resident_.size() == resident.size(),
          "LRU-K tracks exactly the resident set",
          "LruKPolicy: tracked size diverged from the cache's resident set");
    for (const storage::AtomId& atom : resident) {
        check(resident_.contains(atom), "resident atom tracked",
              "LruKPolicy: resident atom missing from the tracked set");
        const auto h = history_.find(atom);
        if (!check(h != history_.end(), "resident atom has history",
                   "LruKPolicy: resident atom without a reference history"))
            continue;
        const auto& refs = h->second.refs;
        check(!refs.empty() && refs.size() <= k_, "1 <= |refs| <= k",
              "LruKPolicy: reference history out of bounds");
        bool decreasing = true;
        for (std::size_t i = 1; i < refs.size(); ++i)
            decreasing = decreasing && refs[i - 1] > refs[i];
        check(decreasing && refs.front() <= tick_,
              "refs strictly decreasing and <= tick",
              "LruKPolicy: reference history out of order");
    }
    check(retained_fifo_.size() <= retained_cap_ + resident.size(),
          "retained history bounded",
          "LruKPolicy: retained-history FIFO exceeds its bound");
    return ok;
}

}  // namespace jaws::cache
