// Plain least-recently-used replacement.
//
// Not evaluated in the paper's Table I by itself, but the natural baseline
// below LRU-K and the building block SLRU's segments are made of; also used
// by tests to pin down BufferCache semantics.
#pragma once

#include <list>
#include <unordered_map>

#include "cache/replacement_policy.h"

namespace jaws::cache {

/// Classic LRU: evict the least recently inserted-or-accessed atom.
class LruPolicy final : public ReplacementPolicy {
  public:
    void on_insert(const storage::AtomId& atom) override;
    void on_access(const storage::AtomId& atom) override;
    storage::AtomId pick_victim() override;
    void on_evict(const storage::AtomId& atom) override;
    std::string name() const override { return "LRU"; }
    bool audit(const std::vector<storage::AtomId>& resident) const override;

  private:
    // Front = most recently used; back = victim.
    std::list<storage::AtomId> order_;
    std::unordered_map<storage::AtomId, std::list<storage::AtomId>::iterator,
                       storage::AtomIdHash>
        where_;
};

}  // namespace jaws::cache
