// Externally managed atom cache.
//
// Mirrors the paper's experimental setup (Sec. VI): a fixed-capacity cache of
// whole atoms managed outside the database, with a pluggable replacement
// policy. Capacity is counted in atoms (the production 2 GB cache holds 256
// 8 MB atoms). The cache times every policy call through an injected tick
// source: by default a deterministic virtual counter (one tick per timed
// section), so cache accounting is bit-reproducible; benches that want
// Table I's real "Overhead/Qry" column inject util::wall_clock_ns via
// set_tick_source (the only sanctioned wall-clock path, see
// scripts/lint_determinism.py).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "cache/replacement_policy.h"
#include "field/grid.h"
#include "storage/atom.h"

namespace jaws::cache {

/// Hit/miss/eviction accounting plus policy overhead.
struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// Ticks spent inside the policy: wall nanoseconds when a wall-clock
    /// tick source is installed, else deterministic virtual ticks (one per
    /// policy call section).
    std::uint64_t policy_overhead_ns = 0;

    double hit_rate() const noexcept {
        const std::uint64_t total = hits + misses;
        return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
    }
};

/// Monotonic tick counter for overhead timing (see util::wall_clock_ns for
/// the wall-clock instance). nullptr selects the deterministic virtual
/// counter.
using TickSource = std::uint64_t (*)();

/// Fixed-capacity cache of atoms with pluggable replacement.
class BufferCache {
  public:
    /// `capacity_atoms` must be >= 1; the cache takes ownership of `policy`.
    BufferCache(std::size_t capacity_atoms, std::unique_ptr<ReplacementPolicy> policy);

    /// Install the tick source used to time policy calls (nullptr restores
    /// the deterministic virtual counter). Benches inject
    /// util::wall_clock_ns here; reproducible runs keep the default.
    void set_tick_source(TickSource ticks) noexcept { ticks_ = ticks; }

    /// Probe for `atom`. On a hit, notifies the policy and returns true.
    /// On a miss returns false (caller performs the I/O and calls insert).
    bool lookup(const storage::AtomId& atom);

    /// Make `atom` resident (with optional payload), evicting if full.
    /// Inserting an already-resident atom just refreshes its payload.
    /// Returns the evicted victim, if any, so callers can propagate the
    /// residency change (phi flip) to the scheduler.
    std::optional<storage::AtomId> insert(
        const storage::AtomId& atom,
        std::shared_ptr<const field::VoxelBlock> payload = nullptr);

    /// Whether `atom` is resident (no policy notification; no stats change).
    bool contains(const storage::AtomId& atom) const;

    /// Payload of a resident atom (null if absent or payload-less).
    std::shared_ptr<const field::VoxelBlock> payload(const storage::AtomId& atom) const;

    /// Forward a run boundary to the policy (SLRU promotion point).
    void run_boundary();

    /// Drop everything (between experiment repetitions).
    void clear();

    /// Number of resident atoms.
    std::size_t size() const noexcept { return resident_.size(); }
    /// Capacity in atoms.
    std::size_t capacity() const noexcept { return capacity_; }
    /// Accounting so far.
    const CacheStats& stats() const noexcept { return stats_; }
    /// Reset accounting (residency is kept).
    void reset_stats() noexcept { stats_ = CacheStats{}; }
    /// Name of the installed policy.
    std::string policy_name() const { return policy_->name(); }

    /// Exhaustive accounting self-check (automatic at transitions in audit
    /// builds; callable from tests in any build): capacity respected, atom
    /// conservation (every atom ever admitted was either evicted, cleared,
    /// or is still resident), stats coherence, and the policy's own
    /// bookkeeping matched against the cache's resident set. Reports through
    /// util::contract_violation; returns true when clean.
    bool audit() const;

  private:
    /// Resident atom ids in sorted order (hash-order-independent snapshots
    /// for clear()'s policy notifications and audit()'s policy check).
    std::vector<storage::AtomId> sorted_residents() const;

    std::size_t capacity_;
    TickSource ticks_ = nullptr;  ///< nullptr = deterministic virtual ticks.
    std::unique_ptr<ReplacementPolicy> policy_;
    std::unordered_map<storage::AtomId, std::shared_ptr<const field::VoxelBlock>,
                       storage::AtomIdHash>
        resident_;
    CacheStats stats_;
    // Conservation ledger for audit(): new residencies ever admitted, atoms
    // evicted, atoms dropped by clear(). Kept apart from stats_ (which
    // reset_stats() zeroes) so the balance holds at every instant.
    std::uint64_t admitted_ = 0;
    std::uint64_t evicted_ = 0;
    std::uint64_t cleared_ = 0;
    std::uint64_t audit_tick_ = 0;  ///< Rate limiter for automatic audits.
};

}  // namespace jaws::cache
