#include "cache/urc.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "util/contracts.h"

namespace jaws::cache {

void UrcPolicy::on_insert(const storage::AtomId& atom) {
    assert(!resident_.contains(atom));
    resident_.insert(atom);
    last_touch_[atom] = ++tick_;
}

void UrcPolicy::on_access(const storage::AtomId& atom) {
    assert(resident_.contains(atom));
    last_touch_[atom] = ++tick_;
}

storage::AtomId UrcPolicy::pick_victim() {
    assert(!resident_.empty());
    // Rank by (mean U_t of the atom's time step, atom's own U_t, recency):
    // evict the atom minimising that tuple. A linear scan over residents
    // (a few hundred atoms) keeps the structure simple; its real cost is
    // measured by the cache's overhead timer.
    const storage::AtomId* victim = nullptr;
    double best_step = std::numeric_limits<double>::max();
    double best_atom = std::numeric_limits<double>::max();
    std::uint64_t best_touch = std::numeric_limits<std::uint64_t>::max();
    std::unordered_map<std::uint32_t, double> step_mean;
    // jaws-lint: allow(unordered-iteration) -- the minimised key
    // (step mean, atom utility, last touch, atom id) is a strict total
    // order over residents (touch ticks are unique), so the winner does
    // not depend on hash iteration order.
    for (const auto& atom : resident_) {
        const auto found = step_mean.find(atom.timestep);
        const double mean = found != step_mean.end()
                                ? found->second
                                : (step_mean[atom.timestep] =
                                       oracle_.timestep_mean_utility(atom.timestep));
        const double own = oracle_.atom_utility(atom);
        const std::uint64_t touch = last_touch_.at(atom);
        // jaws-lint: allow(float-equality) -- exact tie-breaks: mean and own
        // are computed identically for every resident of a step, so equal
        // doubles really are the same value; a tolerance would make the
        // victim depend on scan order.
        const bool step_tie = mean == best_step, atom_tie = own == best_atom;
        const bool better =
            victim == nullptr || mean < best_step ||
            (step_tie &&
             (own < best_atom ||
              (atom_tie &&
               (touch < best_touch || (touch == best_touch && atom < *victim)))));
        if (better) {
            best_step = mean;
            best_atom = own;
            best_touch = touch;
            victim = &atom;
        }
    }
    return *victim;
}

void UrcPolicy::on_evict(const storage::AtomId& atom) {
    resident_.erase(atom);
    last_touch_.erase(atom);
}

bool UrcPolicy::audit(const std::vector<storage::AtomId>& resident) const {
    bool ok = true;
    const auto check = [&](bool cond, const char* expr, const char* msg) {
        if (!cond) {
            ok = false;
            util::contract_violation(__FILE__, __LINE__, expr, msg);
        }
        return cond;
    };
    check(resident_.size() == resident.size() &&
              last_touch_.size() == resident.size(),
          "URC tracks exactly the resident set",
          "UrcPolicy: tracked size diverged from the cache's resident set");
    for (const storage::AtomId& atom : resident) {
        check(resident_.contains(atom), "resident atom tracked",
              "UrcPolicy: resident atom missing from the tracked set");
        const auto touch = last_touch_.find(atom);
        check(touch != last_touch_.end() && touch->second <= tick_,
              "resident atom has a valid touch tick",
              "UrcPolicy: recency tick missing or ahead of the counter");
    }
    return ok;
}

}  // namespace jaws::cache
