#include "cache/urc.h"

#include <cassert>
#include <limits>

namespace jaws::cache {

void UrcPolicy::on_insert(const storage::AtomId& atom) {
    assert(!resident_.contains(atom));
    resident_.insert(atom);
    last_touch_[atom] = ++tick_;
}

void UrcPolicy::on_access(const storage::AtomId& atom) {
    assert(resident_.contains(atom));
    last_touch_[atom] = ++tick_;
}

storage::AtomId UrcPolicy::pick_victim() {
    assert(!resident_.empty());
    // Rank by (mean U_t of the atom's time step, atom's own U_t, recency):
    // evict the atom minimising that tuple. A linear scan over residents
    // (a few hundred atoms) keeps the structure simple; its real cost is
    // measured by the cache's overhead timer.
    const storage::AtomId* victim = nullptr;
    double best_step = std::numeric_limits<double>::max();
    double best_atom = std::numeric_limits<double>::max();
    std::uint64_t best_touch = std::numeric_limits<std::uint64_t>::max();
    std::unordered_map<std::uint32_t, double> step_mean;
    // jaws-lint: allow(unordered-iteration) -- the minimised key
    // (step mean, atom utility, last touch, atom id) is a strict total
    // order over residents (touch ticks are unique), so the winner does
    // not depend on hash iteration order.
    for (const auto& atom : resident_) {
        const auto found = step_mean.find(atom.timestep);
        const double mean = found != step_mean.end()
                                ? found->second
                                : (step_mean[atom.timestep] =
                                       oracle_.timestep_mean_utility(atom.timestep));
        const double own = oracle_.atom_utility(atom);
        const std::uint64_t touch = last_touch_.at(atom);
        const bool better =
            victim == nullptr || mean < best_step ||
            (mean == best_step &&
             (own < best_atom ||
              (own == best_atom &&
               (touch < best_touch || (touch == best_touch && atom < *victim)))));
        if (better) {
            best_step = mean;
            best_atom = own;
            best_touch = touch;
            victim = &atom;
        }
    }
    return *victim;
}

void UrcPolicy::on_evict(const storage::AtomId& atom) {
    resident_.erase(atom);
    last_touch_.erase(atom);
}

}  // namespace jaws::cache
