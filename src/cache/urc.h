// Utility Ranked Caching (paper Sec. V-B).
//
// URC incorporates full knowledge of pending workload requests: it evicts the
// atom likely to be used farthest in the future according to the scheduler's
// own ranking. Because JAWS's two-level framework evaluates a batch of k
// atoms from one time step together, atoms that will be used together must be
// cached together — so URC evicts (1) from the resident time step with the
// lowest *mean* workload throughput, and (2) within that time step, the atom
// with the lowest individual workload throughput U_t. The ranking is read
// through the UtilityOracle at eviction time; the measured cost of that read
// is exactly the "Overhead/Qry" Table I reports for URC.
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "cache/replacement_policy.h"

namespace jaws::cache {

/// Scheduler-coordinated eviction. Requires a live oracle outliving the policy.
class UrcPolicy final : public ReplacementPolicy {
  public:
    explicit UrcPolicy(const UtilityOracle& oracle) : oracle_(oracle) {}

    void on_insert(const storage::AtomId& atom) override;
    void on_access(const storage::AtomId& atom) override;
    storage::AtomId pick_victim() override;
    void on_evict(const storage::AtomId& atom) override;
    std::string name() const override { return "URC"; }
    bool audit(const std::vector<storage::AtomId>& resident) const override;

  private:
    const UtilityOracle& oracle_;
    std::unordered_set<storage::AtomId, storage::AtomIdHash> resident_;
    // Recency tick breaks ties among zero-utility atoms (evict oldest first).
    std::unordered_map<storage::AtomId, std::uint64_t, storage::AtomIdHash> last_touch_;
    std::uint64_t tick_ = 0;
};

}  // namespace jaws::cache
