// LRU-K replacement (O'Neil, O'Neil & Weikum, SIGMOD '93).
//
// The paper's baseline: SQL Server's page replacement is "a variant of LRU-K"
// (Sec. II / Table I). LRU-K evicts the page whose K-th most recent reference
// is oldest — pages referenced fewer than K times rank as infinitely old, so
// one-shot scans cannot flush frequently reused atoms. We keep a bounded
// retained-history table for recently evicted atoms, as the original paper
// prescribes, so re-admitted atoms do not lose their reference history.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "cache/replacement_policy.h"

namespace jaws::cache {

/// LRU-K with retained history. K defaults to 2 (the classical choice).
class LruKPolicy final : public ReplacementPolicy {
  public:
    /// `k` >= 1; `retained_history` bounds the number of evicted atoms whose
    /// reference history we remember.
    explicit LruKPolicy(unsigned k = 2, std::size_t retained_history = 4096);

    void on_insert(const storage::AtomId& atom) override;
    void on_access(const storage::AtomId& atom) override;
    storage::AtomId pick_victim() override;
    void on_evict(const storage::AtomId& atom) override;
    std::string name() const override { return "LRU-" + std::to_string(k_); }
    bool audit(const std::vector<storage::AtomId>& resident) const override;

  private:
    struct History {
        // Most recent reference first; at most k_ entries.
        std::deque<std::uint64_t> refs;
    };

    void touch(const storage::AtomId& atom);
    /// Backward K-distance: the time of the K-th most recent reference, or 0
    /// ("infinitely old") if the atom has fewer than K references.
    std::uint64_t kth_ref(const History& h) const noexcept;

    unsigned k_;
    std::size_t retained_cap_;
    std::uint64_t tick_ = 0;
    std::unordered_map<storage::AtomId, History, storage::AtomIdHash> history_;
    std::unordered_set<storage::AtomId, storage::AtomIdHash> resident_;
    // FIFO of evicted atoms whose history is retained, for bounded cleanup.
    std::deque<storage::AtomId> retained_fifo_;
};

}  // namespace jaws::cache
