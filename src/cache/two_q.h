// 2Q replacement (Johnson & Shasha, VLDB '94 — the paper's reference [23],
// one of the two works its SLRU variant is "inspired by").
//
// Simplified 2Q: new atoms enter a FIFO probationary queue (A1in). Atoms
// evicted from A1in leave a *ghost* entry (A1out) remembering that they were
// seen; a re-reference while ghosted admits the atom directly into the main
// LRU (Am). Atoms re-referenced while still in A1in stay there (correlated
// references do not promote). One-shot scans therefore flow through A1in
// without disturbing Am, while genuinely re-used atoms accumulate in it —
// scan resistance with O(1) operations.
#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>
#include <unordered_set>

#include "cache/replacement_policy.h"

namespace jaws::cache {

/// Simplified 2Q with ghost history.
class TwoQPolicy final : public ReplacementPolicy {
  public:
    /// `capacity_atoms` sizes the A1in share and the ghost list:
    /// |A1in| <= in_fraction * capacity, |A1out| <= capacity ghosts.
    explicit TwoQPolicy(std::size_t capacity_atoms, double in_fraction = 0.25);

    void on_insert(const storage::AtomId& atom) override;
    void on_access(const storage::AtomId& atom) override;
    storage::AtomId pick_victim() override;
    void on_evict(const storage::AtomId& atom) override;
    std::string name() const override { return "2Q"; }
    bool audit(const std::vector<storage::AtomId>& resident) const override;

    /// Segment sizes for tests.
    std::size_t a1in_size() const noexcept { return a1in_.size(); }
    std::size_t am_size() const noexcept { return am_.size(); }
    std::size_t ghost_size() const noexcept { return a1out_.size(); }

  private:
    struct Slot {
        std::list<storage::AtomId>::iterator where;
        bool in_am = false;
    };

    void remember_ghost(const storage::AtomId& atom);

    std::size_t in_cap_;
    std::size_t ghost_cap_;
    // Front = newest (A1in FIFO) / most recently used (Am LRU).
    std::list<storage::AtomId> a1in_;
    std::list<storage::AtomId> am_;
    std::unordered_map<storage::AtomId, Slot, storage::AtomIdHash> slots_;
    // Ghosts: membership set + FIFO for bounded forgetting.
    std::unordered_set<storage::AtomId, storage::AtomIdHash> a1out_;
    std::list<storage::AtomId> a1out_fifo_;
};

}  // namespace jaws::cache
