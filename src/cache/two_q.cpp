#include "cache/two_q.h"

#include <algorithm>
#include <cassert>

namespace jaws::cache {

TwoQPolicy::TwoQPolicy(std::size_t capacity_atoms, double in_fraction)
    : in_cap_(std::max<std::size_t>(
          1, static_cast<std::size_t>(static_cast<double>(capacity_atoms) * in_fraction))),
      ghost_cap_(std::max<std::size_t>(1, capacity_atoms)) {}

void TwoQPolicy::remember_ghost(const storage::AtomId& atom) {
    if (a1out_.insert(atom).second) {
        a1out_fifo_.push_back(atom);
        while (a1out_fifo_.size() > ghost_cap_) {
            a1out_.erase(a1out_fifo_.front());
            a1out_fifo_.pop_front();
        }
    }
}

void TwoQPolicy::on_insert(const storage::AtomId& atom) {
    assert(!slots_.contains(atom));
    const bool ghosted = a1out_.contains(atom);
    if (ghosted) {
        // Seen before and evicted from A1in: this is real re-use — admit to Am.
        am_.push_front(atom);
        slots_[atom] = Slot{am_.begin(), true};
    } else {
        a1in_.push_front(atom);
        slots_[atom] = Slot{a1in_.begin(), false};
    }
}

void TwoQPolicy::on_access(const storage::AtomId& atom) {
    const auto it = slots_.find(atom);
    assert(it != slots_.end());
    if (it->second.in_am) {
        am_.splice(am_.begin(), am_, it->second.where);  // LRU refresh
    }
    // A1in accesses are treated as correlated references: no promotion, no
    // reordering (FIFO), exactly as 2Q prescribes.
}

storage::AtomId TwoQPolicy::pick_victim() {
    // Evict from A1in while it exceeds its share (or Am is empty); ghost the
    // victim so a prompt re-reference promotes it next time.
    if (!a1in_.empty() && (a1in_.size() > in_cap_ || am_.empty())) return a1in_.back();
    if (!am_.empty()) return am_.back();
    assert(!a1in_.empty());
    return a1in_.back();
}

void TwoQPolicy::on_evict(const storage::AtomId& atom) {
    const auto it = slots_.find(atom);
    assert(it != slots_.end());
    if (it->second.in_am) {
        am_.erase(it->second.where);
    } else {
        a1in_.erase(it->second.where);
        remember_ghost(atom);
    }
    slots_.erase(it);
}

}  // namespace jaws::cache
