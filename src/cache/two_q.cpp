#include "cache/two_q.h"

#include <algorithm>
#include <cassert>

#include "util/contracts.h"

namespace jaws::cache {

TwoQPolicy::TwoQPolicy(std::size_t capacity_atoms, double in_fraction)
    : in_cap_(std::max<std::size_t>(
          1, static_cast<std::size_t>(static_cast<double>(capacity_atoms) * in_fraction))),
      ghost_cap_(std::max<std::size_t>(1, capacity_atoms)) {}

void TwoQPolicy::remember_ghost(const storage::AtomId& atom) {
    if (a1out_.insert(atom).second) {
        a1out_fifo_.push_back(atom);
        while (a1out_fifo_.size() > ghost_cap_) {
            a1out_.erase(a1out_fifo_.front());
            a1out_fifo_.pop_front();
        }
    }
}

void TwoQPolicy::on_insert(const storage::AtomId& atom) {
    assert(!slots_.contains(atom));
    const bool ghosted = a1out_.contains(atom);
    if (ghosted) {
        // Seen before and evicted from A1in: this is real re-use — admit to Am.
        am_.push_front(atom);
        slots_[atom] = Slot{am_.begin(), true};
    } else {
        a1in_.push_front(atom);
        slots_[atom] = Slot{a1in_.begin(), false};
    }
}

void TwoQPolicy::on_access(const storage::AtomId& atom) {
    const auto it = slots_.find(atom);
    assert(it != slots_.end());
    if (it->second.in_am) {
        am_.splice(am_.begin(), am_, it->second.where);  // LRU refresh
    }
    // A1in accesses are treated as correlated references: no promotion, no
    // reordering (FIFO), exactly as 2Q prescribes.
}

storage::AtomId TwoQPolicy::pick_victim() {
    // Evict from A1in while it exceeds its share (or Am is empty); ghost the
    // victim so a prompt re-reference promotes it next time.
    if (!a1in_.empty() && (a1in_.size() > in_cap_ || am_.empty())) return a1in_.back();
    if (!am_.empty()) return am_.back();
    assert(!a1in_.empty());
    return a1in_.back();
}

void TwoQPolicy::on_evict(const storage::AtomId& atom) {
    const auto it = slots_.find(atom);
    assert(it != slots_.end());
    if (it->second.in_am) {
        am_.erase(it->second.where);
    } else {
        a1in_.erase(it->second.where);
        remember_ghost(atom);
    }
    slots_.erase(it);
}

bool TwoQPolicy::audit(const std::vector<storage::AtomId>& resident) const {
    bool ok = true;
    const auto check = [&](bool cond, const char* expr, const char* msg) {
        if (!cond) {
            ok = false;
            util::contract_violation(__FILE__, __LINE__, expr, msg);
        }
        return cond;
    };
    check(slots_.size() == resident.size() &&
              a1in_.size() + am_.size() == resident.size(),
          "A1in and Am partition the resident set",
          "TwoQPolicy: queue sizes diverged from the cache's resident set");
    const auto walk = [&](const std::list<storage::AtomId>& queue, bool in_am) {
        for (auto it = queue.begin(); it != queue.end(); ++it) {
            const auto slot = slots_.find(*it);
            const bool linked = slot != slots_.end() && slot->second.in_am == in_am &&
                                slot->second.where == it;
            check(linked, "slot matches its queue node",
                  "TwoQPolicy: queue node unlinked from the slot index");
            check(std::binary_search(resident.begin(), resident.end(), *it),
                  "queue member is resident",
                  "TwoQPolicy: tracking an atom the cache does not hold");
        }
    };
    walk(a1in_, false);
    walk(am_, true);
    check(a1out_.size() == a1out_fifo_.size() && a1out_.size() <= ghost_cap_,
          "ghost set matches its FIFO and is bounded",
          "TwoQPolicy: ghost bookkeeping inconsistent");
    for (const storage::AtomId& ghost : a1out_fifo_)
        check(a1out_.contains(ghost), "ghost FIFO member is in the ghost set",
              "TwoQPolicy: ghost FIFO entry missing from the ghost set");
    return ok;
}

}  // namespace jaws::cache
