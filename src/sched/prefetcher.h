// Trajectory prefetching (paper Sec. VII, future work).
//
// "We can extrapolate the trajectory of jobs in time and space (i.e. the
// velocity of the bounding box or time step delta between consecutive
// queries) to predict which data atoms are accessed by subsequent queries.
// This can also help mask the cost of random reads by pre-fetching large
// amounts of data."
//
// The predictor watches each ordered job's completed queries, fits the
// motion of its footprint centroid and its time-step delta, and predicts the
// atom set of the *next* query: the current footprint translated by the
// observed displacement at the predicted step. The engine turns predictions
// into speculative reads appended to dispatched batches (bounded per batch),
// so a prediction that comes true converts a future cold read into a cache
// hit.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/atom.h"
#include "workload/job.h"

namespace jaws::sched {

/// Prefetcher tunables.
struct PrefetchConfig {
    bool enabled = false;
    std::size_t max_atoms_per_batch = 8;   ///< Speculative reads per dispatch.
    std::size_t min_history = 2;           ///< Completed queries before predicting.
    double max_centroid_jump = 0.25;       ///< Ignore erratic jobs (torus units/step).
};

/// Accuracy accounting.
struct PrefetchStats {
    std::uint64_t predictions = 0;     ///< Atom predictions issued.
    std::uint64_t prefetches = 0;      ///< Speculative reads actually performed.
    std::uint64_t hits = 0;            ///< Prefetched atoms later requested.
    std::uint64_t wasted = 0;          ///< Prefetched atoms evicted untouched.
    std::uint64_t aborted = 0;         ///< Speculative reads preempted mid-service
                                       ///< by a demand read (no data cached).

    double accuracy() const noexcept {
        const std::uint64_t settled = hits + wasted;
        return settled ? static_cast<double>(hits) / static_cast<double>(settled) : 0.0;
    }
};

/// Predicts the next query's atoms for ordered jobs from their observed
/// spatial/temporal trajectory.
class TrajectoryPrefetcher {
  public:
    explicit TrajectoryPrefetcher(const PrefetchConfig& config, std::uint32_t atoms_per_side)
        : config_(config), atoms_per_side_(atoms_per_side) {}

    /// Observe a completed query of an ordered job. `footprint` is the
    /// query's atom list; the centroid and step delta feed the motion model.
    void observe(workload::JobId job, std::uint32_t seq, std::uint32_t timestep,
                 const std::vector<workload::AtomRequest>& footprint);

    /// A job finished (or was abandoned); drop its trajectory state.
    void forget(workload::JobId job);

    /// Predicted atoms of `job`'s next query, best first; empty if the model
    /// has too little history or the trajectory is erratic. Marks the
    /// returned atoms as issued predictions for accuracy accounting.
    std::vector<storage::AtomId> predict(workload::JobId job);

    /// The engine performed a speculative read of `atom`.
    void on_prefetched(const storage::AtomId& atom);
    /// A speculative read of `atom` was cancelled mid-service (its disk
    /// channel was preempted by a demand read); nothing was cached.
    void on_aborted(const storage::AtomId& atom);
    /// A demand request touched `atom` (was it one of ours?).
    void on_demand_access(const storage::AtomId& atom);
    /// `atom` left the cache (prefetch wasted if never touched).
    void on_evicted(const storage::AtomId& atom);

    const PrefetchStats& stats() const noexcept { return stats_; }
    const PrefetchConfig& config() const noexcept { return config_; }

  private:
    struct Trajectory {
        bool primed = false;
        std::uint32_t last_seq = 0;
        std::uint32_t last_step = 0;
        double cx = 0.0, cy = 0.0, cz = 0.0;   ///< Last footprint centroid.
        double vx = 0.0, vy = 0.0, vz = 0.0;   ///< Centroid displacement/query.
        std::int32_t step_delta = 0;           ///< Observed time-step stride.
        std::vector<std::uint64_t> last_mortons;  ///< Last footprint shape.
        bool have_velocity = false;
    };

    PrefetchConfig config_;
    std::uint32_t atoms_per_side_;
    std::unordered_map<workload::JobId, Trajectory> trajectories_;
    std::unordered_map<storage::AtomId, bool, storage::AtomIdHash> outstanding_;
    PrefetchStats stats_;
};

}  // namespace jaws::sched
