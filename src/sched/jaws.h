// The JAWS scheduler (paper Secs. IV-V).
//
// Extends LifeRaft with, independently switchable:
//   * two-level scheduling — pick the time step with the highest mean
//     workload throughput, then a batch of up to k above-mean atoms of that
//     step, Morton-ordered (Sec. V, Fig. 6);
//   * adaptive starvation resistance — the run-based alpha controller
//     (Sec. V-A);
//   * job-awareness — the precedence/gating graph that delays queries so
//     that cross-job queries touching the same atoms enter the workload
//     queues together (Sec. IV).
// The paper's JAWS_1 is {two-level, adaptive} and JAWS_2 adds job-awareness.
#pragma once

#include <unordered_map>

#include "sched/adaptive_alpha.h"
#include "sched/precedence_graph.h"
#include "sched/qos.h"
#include "sched/scheduler.h"

namespace jaws::sched {

/// Feature switches and parameters of a JAWS instance.
struct JawsConfig {
    std::size_t batch_size_k = 15;    ///< Atoms per two-level batch.
    bool two_level = true;            ///< Use the two-level framework.
    bool job_aware = true;            ///< Build gating edges (JAWS_2).
    bool adaptive_alpha = true;       ///< Run the alpha controller.
    AdaptiveAlphaConfig alpha;        ///< Controller settings (initial alpha etc.).
    QosConfig qos;                    ///< Optional completion-time guarantees.
};

/// Full job-aware scheduler.
class JawsScheduler final : public Scheduler {
  public:
    JawsScheduler(const CostConstants& cost, const cache::BufferCache* cache,
                  const JawsConfig& config);

    std::string name() const override;
    void on_job_submitted(const workload::Job& job) override;
    void on_query_visible(const workload::Query& query, util::SimTime now) override;
    void on_query_completed(workload::QueryId query, util::SimTime response,
                            util::SimTime now) override;
    void on_residency_changed(const storage::AtomId& atom) override;
    std::vector<SubQuery> purge_atom(const storage::AtomId& atom) override {
        return manager_.drain_atom(atom);
    }
    std::vector<BatchItem> next_batch(util::SimTime now) override;
    bool has_pending() const override { return !manager_.empty(); }
    std::size_t pending_count() const override { return manager_.pending_subqueries(); }
    bool unstick(util::SimTime now) override;
    double current_alpha() const override { return manager_.alpha(); }
    const GatingStats* gating_stats() const override { return &graph_.stats(); }

    /// QoS accounting (meaningful only when config.qos.enabled).
    const QosStats* qos_stats() const override { return &qos_stats_; }

    /// Oracle/tests access.
    WorkloadManager& manager() noexcept { return manager_; }
    /// Gating graph introspection (tests, benches).
    const PrecedenceGraph& graph() const noexcept { return graph_; }
    /// Alpha controller introspection.
    const AdaptiveAlphaController& controller() const noexcept { return controller_; }

  private:
    void enqueue_query(workload::QueryId id, util::SimTime now);

    JawsConfig config_;
    std::unique_ptr<CacheResidencyProbe> probe_;
    WorkloadManager manager_;
    PrecedenceGraph graph_;
    AdaptiveAlphaController controller_;
    std::unordered_map<workload::QueryId, const workload::Query*> queries_;
    std::unordered_map<workload::QueryId, util::SimTime> deadlines_;
    QosStats qos_stats_;
};

}  // namespace jaws::sched
